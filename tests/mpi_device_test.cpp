// Device-layer internals observed through the public API: pin-down cache,
// famine conversion accounting, unexpected-queue census, mixed protocol
// ordering, statistics plumbing.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/communicator.hpp"
#include "mpi/world.hpp"

using namespace mvflow;
using namespace mvflow::mpi;

namespace {

WorldConfig two_ranks(flowctl::Scheme scheme = flowctl::Scheme::user_static,
                      int prepost = 16) {
  WorldConfig cfg;
  cfg.num_ranks = 2;
  cfg.flow.scheme = scheme;
  cfg.flow.prepost = prepost;
  return cfg;
}

}  // namespace

TEST(RegCache, RepeatedRendezvousFromSameBufferHitsCache) {
  World world(two_ranks());
  world.run([&](Communicator& comm) {
    std::vector<std::byte> buf(64 * 1024);
    for (int i = 0; i < 10; ++i) {
      if (comm.rank() == 0) comm.send(buf, 1, 0);
      else comm.recv(buf, 0, 0);
    }
  });
  const auto& s = world.device(0).stats();
  EXPECT_EQ(s.reg_cache_misses, 1u) << "one pin for ten sends of one buffer";
  EXPECT_EQ(s.reg_cache_hits, 9u);
}

TEST(RegCache, DisabledCacheRegistersEveryTime) {
  WorldConfig cfg = two_ranks();
  cfg.device.reg_cache = false;
  World world(cfg);
  world.run([&](Communicator& comm) {
    std::vector<std::byte> buf(64 * 1024);
    for (int i = 0; i < 5; ++i) {
      if (comm.rank() == 0) comm.send(buf, 1, 0);
      else comm.recv(buf, 0, 0);
    }
  });
  EXPECT_EQ(world.device(0).stats().reg_cache_misses, 5u);
  EXPECT_EQ(world.device(0).stats().reg_cache_hits, 0u);
}

TEST(RegCache, PinCostShowsUpInSimulatedTime) {
  auto run_once = [&](bool cache) {
    WorldConfig cfg = two_ranks();
    cfg.device.reg_cache = cache;
    World world(cfg);
    return world.run([&](Communicator& comm) {
      std::vector<std::byte> buf(256 * 1024);
      for (int i = 0; i < 8; ++i) {
        if (comm.rank() == 0) comm.send(buf, 1, 0);
        else comm.recv(buf, 0, 0);
      }
    });
  };
  const auto with_cache = run_once(true);
  const auto without = run_once(false);
  EXPECT_GT(without.count(), with_cache.count())
      << "re-pinning every transfer must cost simulated time";
}

TEST(FamineConversion, CountsSmallSendsTurnedRendezvous) {
  World world(two_ranks(flowctl::Scheme::user_static, 8));
  world.run([&](Communicator& comm) {
    std::vector<std::int64_t> vals(64);
    std::iota(vals.begin(), vals.end(), 0);
    if (comm.rank() == 0) {
      std::vector<RequestPtr> reqs;
      for (auto& v : vals) reqs.push_back(comm.isend_n(&v, 1, 1, 0));
      comm.wait_all(reqs);
    } else {
      std::int64_t v;
      for (int i = 0; i < 64; ++i) comm.recv_n(&v, 1, 0, 0);
    }
  });
  const auto& s = world.device(0).stats();
  EXPECT_GT(s.small_converted_to_rndv, 0u);
  // Conversions also count as rendezvous starts and carry the optimistic bit.
  EXPECT_GE(s.rndv_started, s.small_converted_to_rndv);
  std::uint64_t optimistic = 0;
  for (const auto& c : world.collect_stats().connections)
    optimistic += c.flow.optimistic_rts;
  EXPECT_GT(optimistic, 0u);
}

TEST(UnexpectedQueue, CensusTracksDepth) {
  World world(two_ranks(flowctl::Scheme::hardware, 64));
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      std::int64_t v = 7;
      for (int i = 0; i < 30; ++i) comm.send_n(&v, 1, 1, i);
    } else {
      comm.compute(sim::microseconds(200));  // let all 30 arrive unexpected
      std::int64_t v;
      // Drain in reverse-tag order so every message waits in the queue.
      for (int i = 29; i >= 0; --i) comm.recv_n(&v, 1, 0, i);
    }
  });
  EXPECT_GE(world.device(1).stats().max_unexpected, 30u);
}

TEST(MixedProtocols, EagerAndRendezvousInterleaveInOrder) {
  World world(two_ranks());
  world.run([&](Communicator& comm) {
    const std::size_t big = 100 * 1024;
    if (comm.rank() == 0) {
      for (int i = 0; i < 6; ++i) {
        if (i % 2 == 0) {
          const std::int64_t v = i;
          comm.send_n(&v, 1, 1, 0);  // eager
        } else {
          std::vector<double> payload(big / sizeof(double), i * 1.0);
          comm.send(std::as_bytes(std::span<const double>(payload)), 1, 0);
        }
      }
    } else {
      comm.compute(sim::microseconds(50));
      for (int i = 0; i < 6; ++i) {
        if (i % 2 == 0) {
          std::int64_t v = -1;
          comm.recv_n(&v, 1, 0, 0);
          EXPECT_EQ(v, i) << "same-tag messages must match in send order";
        } else {
          std::vector<double> payload(big / sizeof(double));
          comm.recv(std::as_writable_bytes(std::span<double>(payload)), 0, 0);
          EXPECT_DOUBLE_EQ(payload[0], i * 1.0);
          EXPECT_DOUBLE_EQ(payload.back(), i * 1.0);
        }
      }
    }
  });
}

TEST(Requests, TestPollsWithoutBlocking) {
  World world(two_ranks());
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.compute(sim::microseconds(40));
      const std::int64_t v = 11;
      comm.send_n(&v, 1, 1, 0);
    } else {
      std::int64_t v = 0;
      auto req = comm.irecv_n(&v, 1, 0, 0);
      int polls = 0;
      while (!comm.test(req)) {
        ++polls;
        comm.compute(sim::microseconds(1));
      }
      EXPECT_GT(polls, 5) << "message only lands after ~40us of polling";
      EXPECT_EQ(v, 11);
    }
  });
}

TEST(WorldStats, ConnectionReportsCoverAllPairs) {
  WorldConfig cfg;
  cfg.num_ranks = 4;
  World world(cfg);
  world.run([](Communicator& comm) { comm.barrier(); });
  const auto stats = world.collect_stats();
  // 4 ranks x 4 endpoints each (including self).
  EXPECT_EQ(stats.connections.size(), 16u);
  EXPECT_EQ(stats.devices.size(), 4u);
  EXPECT_GT(stats.fabric.data_packets, 0u);
  EXPECT_GT(stats.elapsed.count(), 0);
  for (const auto& c : stats.connections) {
    EXPECT_GE(c.rank, 0);
    EXPECT_LT(c.rank, 4);
    EXPECT_GE(c.peer, 0);
    EXPECT_LT(c.peer, 4);
  }
}

TEST(WorldStats, CreditedMessageAccountingConsistent) {
  World world(two_ranks(flowctl::Scheme::user_static, 4));
  world.run([&](Communicator& comm) {
    std::vector<std::byte> buf(32);
    for (int i = 0; i < 50; ++i) {
      if (comm.rank() == 0) comm.send(buf, 1, 0);
      else comm.recv(buf, 0, 0);
    }
  });
  const auto stats = world.collect_stats();
  for (const auto& c : stats.connections) {
    EXPECT_EQ(c.flow.backlog_entered, c.flow.backlog_dispatched)
        << "everything backlogged must eventually dispatch";
    EXPECT_GE(c.flow.credited_sent,
              c.flow.backlog_dispatched);
  }
}

TEST(WorldLifecycle, RunTwiceIsRejected) {
  World world(two_ranks());
  world.run([](Communicator&) {});
  EXPECT_THROW(world.run([](Communicator&) {}), std::logic_error);
}

TEST(WorldLifecycle, BodyExceptionPropagates) {
  World world(two_ranks());
  EXPECT_THROW(world.run([](Communicator& comm) {
                 if (comm.rank() == 1) throw std::runtime_error("app bug");
                 std::vector<std::byte> b(8);
                 comm.recv(b, 1, 0);
               }),
               std::runtime_error);
}
