// Fault injection + transport reliability tests: deterministic loss,
// scripted drops, corruption NAKs, link flaps, retransmission timers,
// sequence NAKs, retry-limit error semantics, and inertness of the whole
// machinery when disabled.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "ib/fabric.hpp"
#include "sim/engine.hpp"

using namespace mvflow::ib;
using namespace mvflow::sim;

namespace {

/// Fabric config with the reliability protocol switched on (the seed's
/// default keeps it off for bit-identical lossless behavior).
FabricConfig reliable_config() {
  FabricConfig cfg;
  cfg.transport_timeout = microseconds(50);
  return cfg;
}

class FaultFixture : public ::testing::Test {
 protected:
  FaultFixture() { reset(reliable_config()); }

  void reset(FabricConfig cfg, int nodes = 2) {
    fabric_.reset();
    engine_ = std::make_unique<Engine>();
    fabric_ = std::make_unique<Fabric>(*engine_, cfg, nodes);
    cq_a_ = fabric_->hca(0).create_cq();
    cq_b_ = fabric_->hca(1).create_cq();
    qp_a_ = fabric_->hca(0).create_qp(cq_a_, cq_a_);
    qp_b_ = fabric_->hca(1).create_qp(cq_b_, cq_b_);
    Fabric::connect(*qp_a_, *qp_b_);

    src_.assign(1 << 20, std::byte{0});
    dst_.assign(1 << 20, std::byte{0});
    for (std::size_t i = 0; i < src_.size(); ++i)
      src_[i] = static_cast<std::byte>(i * 131 + 11);
    mr_src_ = fabric_->hca(0).register_memory(
        src_, Access::local_read | Access::local_write | Access::remote_read);
    mr_dst_ = fabric_->hca(1).register_memory(
        dst_, Access::local_read | Access::local_write | Access::remote_write |
                  Access::remote_read);
  }

  void post_send_a(std::uint32_t len, std::uint64_t wr_id = 1,
                   std::size_t offset = 0) {
    SendWr wr;
    wr.wr_id = wr_id;
    wr.opcode = WrOpcode::send;
    wr.local_addr = src_.data() + offset;
    wr.length = len;
    wr.lkey = mr_src_.lkey;
    qp_a_->post_send(wr);
  }

  void post_recv_b(std::uint32_t len, std::size_t offset = 0,
                   std::uint64_t wr_id = 100) {
    RecvWr wr;
    wr.wr_id = wr_id;
    wr.local_addr = dst_.data() + offset;
    wr.length = len;
    wr.lkey = mr_dst_.lkey;
    qp_b_->post_recv(wr);
  }

  std::vector<Completion> drain(CompletionQueue& cq) {
    std::vector<Completion> out;
    while (auto wc = cq.poll()) out.push_back(*wc);
    return out;
  }

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<Fabric> fabric_;
  std::shared_ptr<CompletionQueue> cq_a_, cq_b_;
  std::shared_ptr<QueuePair> qp_a_, qp_b_;
  std::vector<std::byte> src_, dst_;
  MemoryRegionHandle mr_src_, mr_dst_;
};

/// Run a fixed lossy workload and return the fabric stats.
FabricStats run_lossy_workload(std::uint64_t seed) {
  Engine engine;
  FabricConfig cfg = reliable_config();
  cfg.fault.loss_prob = 0.05;
  cfg.fault.seed = seed;
  Fabric fabric(engine, cfg, 2);
  auto cq_a = fabric.hca(0).create_cq();
  auto cq_b = fabric.hca(1).create_cq();
  auto qp_a = fabric.hca(0).create_qp(cq_a, cq_a);
  auto qp_b = fabric.hca(1).create_qp(cq_b, cq_b);
  Fabric::connect(*qp_a, *qp_b);

  std::vector<std::byte> src(1 << 16), dst(1 << 16);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::byte>(i);
  auto mr_src = fabric.hca(0).register_memory(
      src, Access::local_read | Access::local_write);
  auto mr_dst = fabric.hca(1).register_memory(
      dst, Access::local_read | Access::local_write);

  for (int i = 0; i < 40; ++i) {
    RecvWr rwr;
    rwr.wr_id = 100 + i;
    rwr.local_addr = dst.data() + 1024u * i;
    rwr.length = 1024;
    rwr.lkey = mr_dst.lkey;
    qp_b->post_recv(rwr);
  }
  for (int i = 0; i < 40; ++i) {
    SendWr swr;
    swr.wr_id = static_cast<std::uint64_t>(i);
    swr.local_addr = src.data() + 1024u * i;
    swr.length = 1024;
    swr.lkey = mr_src.lkey;
    qp_a->post_send(swr);
  }
  engine.run();
  return fabric.stats();
}

}  // namespace

// ---------------------------------------------------------- determinism --

TEST(FaultDeterminism, SameSeedSameFaultPattern) {
  const FabricStats first = run_lossy_workload(42);
  const FabricStats second = run_lossy_workload(42);
  EXPECT_GT(first.lost_packets, 0u) << "5% loss over ~80 packets must fire";
  EXPECT_EQ(first, second) << "identical seeds must replay identical faults";
}

TEST(FaultDeterminism, DifferentSeedDifferentPattern) {
  const FabricStats first = run_lossy_workload(42);
  const FabricStats second = run_lossy_workload(43);
  // Loss landing on different packets changes retransmission traffic.
  EXPECT_NE(first, second);
}

// ---------------------------------------------------------- random loss --

TEST_F(FaultFixture, LossySweepDeliversEverythingInOrder) {
  FabricConfig cfg = reliable_config();
  cfg.fault.loss_prob = 0.08;
  reset(cfg);
  constexpr int kCount = 30;
  for (int i = 0; i < kCount; ++i) post_recv_b(4096, 4096u * i, 100 + i);
  for (int i = 0; i < kCount; ++i)
    post_send_a(2048, static_cast<std::uint64_t>(i), 2048u * i);
  engine_->run();

  const auto wcs_b = drain(*cq_b_);
  ASSERT_EQ(wcs_b.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_TRUE(wcs_b[i].ok());
    EXPECT_EQ(wcs_b[i].wr_id, 100u + i) << "loss must not reorder delivery";
    EXPECT_EQ(std::memcmp(dst_.data() + 4096u * i, src_.data() + 2048u * i,
                          2048),
              0);
  }
  EXPECT_GT(fabric_->stats().lost_packets, 0u);
  EXPECT_GT(qp_a_->stats().retransmitted_messages, 0u);
  EXPECT_EQ(drain(*cq_a_).size(), static_cast<std::size_t>(kCount));
}

// -------------------------------------------------------- scripted drop --

TEST_F(FaultFixture, ScriptedDropTriggersSeqNak) {
  // Drop exactly the second data packet: the responder sees packet 3 of the
  // message arrive after a gap and NAKs, and the requester replays without
  // waiting for the full transport timeout.
  FabricConfig cfg = reliable_config();
  cfg.transport_timeout = milliseconds(5);  // so a timer path would be slow
  ScriptedFault f;
  f.src_node = 0;
  f.dst_node = 1;
  f.kind = static_cast<int>(PacketKind::data);
  f.skip = 1;
  cfg.fault.scripted.push_back(f);
  reset(cfg);

  const std::uint32_t len = 3 * 2048;  // 3 packets
  post_recv_b(1 << 16);
  post_send_a(len);
  engine_->run();

  const auto wcs_b = drain(*cq_b_);
  ASSERT_EQ(wcs_b.size(), 1u);
  EXPECT_TRUE(wcs_b[0].ok());
  EXPECT_EQ(std::memcmp(dst_.data(), src_.data(), len), 0);
  EXPECT_EQ(fabric_->stats().scripted_faults_fired, 1u);
  EXPECT_GE(qp_b_->stats().seq_naks_sent, 1u);
  EXPECT_GE(qp_a_->stats().seq_naks_received, 1u);
  // NAK-driven recovery must beat the 5 ms retransmission timer.
  EXPECT_LT(engine_->now(), TimePoint(milliseconds(5)));
}

TEST_F(FaultFixture, LostAckRecoveredByTimer) {
  // Drop the ACK: the data arrived, so the responder re-ACKs the replayed
  // (duplicate) message and the requester completes on the retry.
  FabricConfig cfg = reliable_config();
  ScriptedFault f;
  f.src_node = 1;
  f.dst_node = 0;
  f.kind = static_cast<int>(PacketKind::ack);
  cfg.fault.scripted.push_back(f);
  reset(cfg);

  post_recv_b(4096);
  post_send_a(512);
  engine_->run();

  ASSERT_EQ(drain(*cq_b_).size(), 1u);
  const auto wcs_a = drain(*cq_a_);
  ASSERT_EQ(wcs_a.size(), 1u);
  EXPECT_TRUE(wcs_a[0].ok());
  EXPECT_GE(qp_a_->stats().transport_retries, 1u);
  EXPECT_EQ(std::memcmp(dst_.data(), src_.data(), 512), 0);
}

TEST_F(FaultFixture, LostReadResponseRecoveredByTimer) {
  FabricConfig cfg = reliable_config();
  ScriptedFault f;
  f.src_node = 1;
  f.dst_node = 0;
  f.kind = static_cast<int>(PacketKind::rdma_read_resp);
  cfg.fault.scripted.push_back(f);
  reset(cfg);
  for (int i = 0; i < 4000; ++i) dst_[i] = static_cast<std::byte>(i % 249);

  SendWr wr;
  wr.wr_id = 45;
  wr.opcode = WrOpcode::rdma_read;
  wr.local_addr = src_.data() + 100000;
  wr.length = 4000;
  wr.lkey = mr_src_.lkey;
  wr.remote_addr = dst_.data();
  wr.rkey = mr_dst_.rkey;
  qp_a_->post_send(wr);
  engine_->run();

  const auto wcs_a = drain(*cq_a_);
  ASSERT_EQ(wcs_a.size(), 1u);
  EXPECT_TRUE(wcs_a[0].ok());
  EXPECT_EQ(wcs_a[0].opcode, WcOpcode::rdma_read);
  EXPECT_EQ(std::memcmp(src_.data() + 100000, dst_.data(), 4000), 0);
  EXPECT_GE(qp_a_->stats().transport_retries, 1u);
}

// ---------------------------------------------------------- corruption --

TEST_F(FaultFixture, CorruptedPacketDroppedAndNacked) {
  FabricConfig cfg = reliable_config();
  ScriptedFault f;
  f.src_node = 0;
  f.dst_node = 1;
  f.kind = static_cast<int>(PacketKind::data);
  f.corrupt = true;
  cfg.fault.scripted.push_back(f);
  reset(cfg);

  post_recv_b(4096);
  post_send_a(256);
  engine_->run();

  const auto wcs_b = drain(*cq_b_);
  ASSERT_EQ(wcs_b.size(), 1u);
  EXPECT_TRUE(wcs_b[0].ok());
  EXPECT_EQ(std::memcmp(dst_.data(), src_.data(), 256), 0)
      << "payload must come from the clean retransmission";
  EXPECT_EQ(fabric_->stats().corrupted_packets, 1u);
  EXPECT_EQ(qp_b_->stats().corrupt_packets_received, 1u);
}

// ----------------------------------------------------------- link flaps --

TEST_F(FaultFixture, SendsRideThroughLinkFlap) {
  FabricConfig cfg = reliable_config();
  LinkFlap flap;
  flap.node = 1;
  flap.down = TimePoint(microseconds(2));
  flap.up = TimePoint(microseconds(400));
  cfg.fault.flaps.push_back(flap);
  reset(cfg);

  constexpr int kCount = 10;
  for (int i = 0; i < kCount; ++i) post_recv_b(4096, 4096u * i, 100 + i);
  for (int i = 0; i < kCount; ++i)
    post_send_a(1024, static_cast<std::uint64_t>(i), 1024u * i);
  engine_->run();

  const auto wcs_b = drain(*cq_b_);
  ASSERT_EQ(wcs_b.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_TRUE(wcs_b[i].ok());
    EXPECT_EQ(std::memcmp(dst_.data() + 4096u * i, src_.data() + 1024u * i,
                          1024),
              0);
  }
  EXPECT_GT(fabric_->stats().flap_dropped_packets, 0u);
  EXPECT_GT(qp_a_->stats().transport_retries, 0u);
  EXPECT_GE(engine_->now(), TimePoint(microseconds(400)))
      << "completion can only happen after the link comes back";
}

// ----------------------------------------------------------- retry limit --

TEST_F(FaultFixture, TransportRetryLimitErrorsQp) {
  FabricConfig cfg = reliable_config();
  cfg.transport_retry_limit = 3;
  // Link down forever: every attempt (original + 3 retries) is lost.
  LinkFlap flap;
  flap.node = 1;
  flap.down = TimePoint(Duration{0});
  flap.up = TimePoint(seconds(100));
  cfg.fault.flaps.push_back(flap);
  reset(cfg);

  post_recv_b(4096);
  post_send_a(128);
  engine_->run();

  const auto wcs_a = drain(*cq_a_);
  ASSERT_EQ(wcs_a.size(), 1u);
  EXPECT_EQ(wcs_a[0].status, WcStatus::transport_retry_exceeded);
  EXPECT_EQ(qp_a_->state(), QpState::error);
  EXPECT_EQ(qp_a_->stats().transport_retries, 3u);

  // The errored QP flushes every later post instead of hanging.
  post_send_a(64, 77);
  const auto flushed = drain(*cq_a_);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].status, WcStatus::flushed);
  EXPECT_EQ(flushed[0].wr_id, 77u);
}

TEST_F(FaultFixture, InfiniteTransportRetrySurvivesLongOutage) {
  FabricConfig cfg = reliable_config();
  cfg.transport_retry_limit = -1;
  LinkFlap flap;
  flap.node = 1;
  flap.down = TimePoint(Duration{0});
  flap.up = TimePoint(milliseconds(30));
  cfg.fault.flaps.push_back(flap);
  reset(cfg);

  post_recv_b(4096);
  post_send_a(128);
  engine_->run();

  const auto wcs_a = drain(*cq_a_);
  ASSERT_EQ(wcs_a.size(), 1u);
  EXPECT_TRUE(wcs_a[0].ok());
  EXPECT_EQ(qp_a_->state(), QpState::ready);
  EXPECT_GT(qp_a_->stats().transport_retries, 1u)
      << "the backoff must have cycled several times during 30 ms down";
  EXPECT_EQ(std::memcmp(dst_.data(), src_.data(), 128), 0);
}

// Dedicated finite-RNR-retry coverage: the error status surfaces and the
// QP then flushes subsequent posts (both send and recv side).
TEST_F(FaultFixture, RnrRetryExhaustionFlushesSubsequentPosts) {
  FabricConfig cfg;  // transport timer off: pure RNR path
  cfg.rnr_retry_limit = 1;
  reset(cfg);

  post_send_a(64, 5);  // receiver never posts a buffer
  engine_->run();

  const auto wcs_a = drain(*cq_a_);
  ASSERT_EQ(wcs_a.size(), 1u);
  EXPECT_EQ(wcs_a[0].status, WcStatus::rnr_retry_exceeded);
  EXPECT_EQ(wcs_a[0].wr_id, 5u);
  EXPECT_EQ(qp_a_->state(), QpState::error);
  EXPECT_EQ(qp_a_->stats().rnr_naks_received, 2u);  // initial + 1 retry

  post_send_a(64, 6);
  post_send_a(64, 7);
  engine_->run();
  const auto flushed = drain(*cq_a_);
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_EQ(flushed[0].status, WcStatus::flushed);
  EXPECT_EQ(flushed[0].wr_id, 6u);
  EXPECT_EQ(flushed[1].status, WcStatus::flushed);
  EXPECT_EQ(flushed[1].wr_id, 7u);

  // The untouched peer QP still flushes its own posted work once errored
  // via modify_error (graceful-teardown path used by the MPI layer).
  qp_b_->modify_error();
  RecvWr rwr;
  rwr.wr_id = 900;
  rwr.local_addr = dst_.data();
  rwr.length = 4096;
  rwr.lkey = mr_dst_.lkey;
  qp_b_->post_recv(rwr);
  const auto flushed_b = drain(*cq_b_);
  ASSERT_EQ(flushed_b.size(), 1u);
  EXPECT_EQ(flushed_b[0].status, WcStatus::flushed);
}

// ------------------------------------------------------------- inertness --

TEST(FaultInertness, DisabledMachineryIsBitIdentical) {
  // The same workload with (a) the seed's defaults and (b) defaults plus an
  // explicitly zeroed fault config must agree on every observable: fabric
  // stats, QP stats, payloads, and final simulated time.
  auto run = [](bool touch_fault_config, FabricStats& stats_out,
                QpStats& qp_out, TimePoint& end_out,
                std::vector<std::byte>& payload_out) {
    Engine engine;
    FabricConfig cfg;
    if (touch_fault_config) {
      cfg.fault.loss_prob = 0.0;
      cfg.fault.corrupt_prob = 0.0;
      cfg.fault.seed = 999;  // unused when probabilities are zero
    }
    Fabric fabric(engine, cfg, 2);
    auto cq_a = fabric.hca(0).create_cq();
    auto cq_b = fabric.hca(1).create_cq();
    auto qp_a = fabric.hca(0).create_qp(cq_a, cq_a);
    auto qp_b = fabric.hca(1).create_qp(cq_b, cq_b);
    Fabric::connect(*qp_a, *qp_b);
    std::vector<std::byte> src(1 << 15), dst(1 << 15);
    for (std::size_t i = 0; i < src.size(); ++i)
      src[i] = static_cast<std::byte>(3 * i + 1);
    auto mr_src = fabric.hca(0).register_memory(
        src, Access::local_read | Access::local_write);
    auto mr_dst = fabric.hca(1).register_memory(
        dst, Access::local_read | Access::local_write);
    for (int i = 0; i < 8; ++i) {
      RecvWr rwr;
      rwr.wr_id = 100 + i;
      rwr.local_addr = dst.data() + 4096u * i;
      rwr.length = 4096;
      rwr.lkey = mr_dst.lkey;
      qp_b->post_recv(rwr);
    }
    for (int i = 0; i < 8; ++i) {
      SendWr swr;
      swr.wr_id = static_cast<std::uint64_t>(i);
      swr.local_addr = src.data() + 4096u * i;
      swr.length = 3000;
      swr.lkey = mr_src.lkey;
      qp_a->post_send(swr);
    }
    engine.run();
    stats_out = fabric.stats();
    qp_out = qp_a->stats();
    end_out = engine.now();
    payload_out = dst;
  };

  FabricStats fs_a, fs_b;
  QpStats qs_a, qs_b;
  TimePoint end_a, end_b;
  std::vector<std::byte> d_a, d_b;
  run(false, fs_a, qs_a, end_a, d_a);
  run(true, fs_b, qs_b, end_b, d_b);

  EXPECT_EQ(fs_a, fs_b);
  EXPECT_EQ(end_a, end_b);
  EXPECT_EQ(d_a, d_b);
  EXPECT_EQ(qs_a.packets_sent, qs_b.packets_sent);
  EXPECT_EQ(qs_a.retransmitted_messages, qs_b.retransmitted_messages);
  EXPECT_EQ(fs_a.lost_packets, 0u);
  EXPECT_EQ(fs_a.corrupted_packets, 0u);
  EXPECT_EQ(qs_a.transport_retries, 0u);
  EXPECT_EQ(qs_a.seq_naks_received, 0u);
}
