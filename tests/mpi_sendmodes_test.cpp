// MPI send modes (paper §3.1 lists Standard, Synchronous, Buffered, Ready)
// and the dynamic scheme's decay extension (paper §4.3 future work).
#include <gtest/gtest.h>

#include <vector>

#include "mpi/communicator.hpp"
#include "mpi/world.hpp"

using namespace mvflow;
using namespace mvflow::mpi;

namespace {

WorldConfig two_ranks(int prepost = 32) {
  WorldConfig cfg;
  cfg.num_ranks = 2;
  cfg.flow.prepost = prepost;
  return cfg;
}

}  // namespace

TEST(SendModes, SynchronousUsesRendezvousEvenForSmall) {
  World world(two_ranks());
  world.run([&](Communicator& comm) {
    std::vector<std::byte> buf(16);
    if (comm.rank() == 0) {
      comm.ssend(buf, 1, 0);
    } else {
      comm.recv(buf, 0, 0);
    }
  });
  EXPECT_EQ(world.device(0).stats().rndv_started, 1u);
}

TEST(SendModes, SynchronousCompletesOnlyAfterReceiverArrives) {
  World world(two_ranks());
  std::int64_t send_done_ns = 0;
  constexpr std::int64_t kRecvDelayNs = 500'000;  // 500 us
  world.run([&](Communicator& comm) {
    std::vector<std::byte> buf(16);
    if (comm.rank() == 0) {
      comm.ssend(buf, 1, 0);
      send_done_ns = comm.now().count();
    } else {
      comm.compute(sim::Duration(kRecvDelayNs));
      comm.recv(buf, 0, 0);
    }
  });
  EXPECT_GE(send_done_ns, kRecvDelayNs)
      << "ssend must not complete before the matching receive is posted";
}

TEST(SendModes, StandardEagerCompletesBeforeReceiverArrives) {
  World world(two_ranks());
  std::int64_t send_done_ns = 0;
  constexpr std::int64_t kRecvDelayNs = 500'000;
  world.run([&](Communicator& comm) {
    std::vector<std::byte> buf(16);
    if (comm.rank() == 0) {
      comm.send(buf, 1, 0);
      send_done_ns = comm.now().count();
    } else {
      comm.compute(sim::Duration(kRecvDelayNs));
      comm.recv(buf, 0, 0);
    }
  });
  EXPECT_LT(send_done_ns, kRecvDelayNs)
      << "standard small send is buffered and completes locally";
}

TEST(SendModes, BufferedRejectsOversizedPayload) {
  World world(two_ranks());
  EXPECT_THROW(world.run([&](Communicator& comm) {
                 if (comm.rank() != 0) return;
                 std::vector<std::byte> big(1 << 16);
                 comm.bsend(big, 1, 0);
               }),
               std::invalid_argument);
}

TEST(SendModes, ReadyAndBufferedDeliverCorrectly) {
  World world(two_ranks());
  world.run([&](Communicator& comm) {
    std::vector<double> v{1.25, 2.5};
    if (comm.rank() == 0) {
      comm.bsend(std::as_bytes(std::span<const double>(v)), 1, 1);
      comm.compute(sim::microseconds(50));  // receiver posts by now
      comm.rsend(std::as_bytes(std::span<const double>(v)), 1, 2);
    } else {
      std::vector<double> a(2), b(2);
      auto r1 = comm.irecv(std::as_writable_bytes(std::span<double>(a)), 0, 1);
      auto r2 = comm.irecv(std::as_writable_bytes(std::span<double>(b)), 0, 2);
      comm.wait(r1);
      comm.wait(r2);
      EXPECT_EQ(a, v);
      EXPECT_EQ(b, v);
    }
  });
}

TEST(DynamicDecay, PoolShrinksAfterBurstSubsides) {
  WorldConfig cfg = two_ranks(2);
  cfg.flow.scheme = flowctl::Scheme::user_dynamic;
  cfg.flow.allow_decay = true;
  cfg.flow.decay_idle_msgs = 50;
  World world(cfg);
  int posted_after_burst = 0;
  int posted_at_end = 0;
  world.run([&](Communicator& comm) {
    std::vector<std::int64_t> vals(200);
    if (comm.rank() == 0) {
      // Phase 1: a burst that forces the pool to grow.
      std::vector<RequestPtr> reqs;
      for (int i = 0; i < 200; ++i) {
        vals[static_cast<std::size_t>(i)] = i;
        reqs.push_back(comm.isend_n(&vals[static_cast<std::size_t>(i)], 1, 1, 0));
      }
      comm.wait_all(reqs);
      // Phase 2: a long, calm ping-pong phase.
      std::int64_t v = 0;
      for (int i = 0; i < 400; ++i) {
        comm.send_n(&v, 1, 1, 1);
        comm.recv_n(&v, 1, 1, 1);
      }
    } else {
      std::int64_t v = -1;
      for (int i = 0; i < 200; ++i) comm.recv_n(&v, 1, 0, 0);
      posted_after_burst = world.device(1).flow(0).current_posted();
      for (int i = 0; i < 400; ++i) {
        comm.recv_n(&v, 1, 0, 1);
        comm.send_n(&v, 1, 0, 1);
      }
      posted_at_end = world.device(1).flow(0).current_posted();
    }
  });
  EXPECT_GT(posted_after_burst, 2) << "burst must grow the pool";
  EXPECT_LT(posted_at_end, posted_after_burst) << "idle phase must shrink it";
  std::uint64_t decays = 0;
  for (const auto& c : world.collect_stats().connections)
    decays += c.flow.decay_events;
  EXPECT_GT(decays, 0u);
}

TEST(DynamicDecay, DisabledByDefault) {
  WorldConfig cfg = two_ranks(1);
  cfg.flow.scheme = flowctl::Scheme::user_dynamic;
  World world(cfg);
  world.run([&](Communicator& comm) {
    std::vector<std::int64_t> vals(100);
    if (comm.rank() == 0) {
      std::vector<RequestPtr> reqs;
      for (int i = 0; i < 100; ++i)
        reqs.push_back(comm.isend_n(&vals[static_cast<std::size_t>(i)], 1, 1, 0));
      comm.wait_all(reqs);
      std::int64_t v = 0;
      for (int i = 0; i < 300; ++i) {
        comm.send_n(&v, 1, 1, 1);
        comm.recv_n(&v, 1, 1, 1);
      }
    } else {
      std::int64_t v = -1;
      for (int i = 0; i < 100; ++i) comm.recv_n(&v, 1, 0, 0);
      for (int i = 0; i < 300; ++i) {
        comm.recv_n(&v, 1, 0, 1);
        comm.send_n(&v, 1, 0, 1);
      }
    }
  });
  std::uint64_t decays = 0;
  for (const auto& c : world.collect_stats().connections)
    decays += c.flow.decay_events;
  EXPECT_EQ(decays, 0u) << "decay is the paper's future work: off by default";
}

TEST(DynamicDecay, GrowthCancelsPendingDecay) {
  flowctl::Config cfg;
  cfg.scheme = flowctl::Scheme::user_dynamic;
  cfg.prepost = 1;
  cfg.allow_decay = true;
  cfg.decay_idle_msgs = 3;
  flowctl::ConnectionFlow f(cfg);
  f.on_backlogged_flag();  // pool 1 -> 2
  EXPECT_FALSE(f.take_decay_slot());
  EXPECT_FALSE(f.take_decay_slot());
  EXPECT_FALSE(f.take_decay_slot());  // decay armed for the next repost
  f.on_backlogged_flag();             // pressure returns: pool 2 -> 3
  EXPECT_FALSE(f.take_decay_slot()) << "growth must cancel the armed decay";
  EXPECT_EQ(f.current_posted(), 3);
}
