// Integration tests of the three schemes' observable behaviour through the
// full MPI + fabric stack: backlogs, ECM generation, rendezvous fallback,
// dynamic growth, hardware RNR storms, and deadlock freedom at tiny pools.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/communicator.hpp"
#include "mpi/world.hpp"

using namespace mvflow;
using namespace mvflow::mpi;

namespace {

WorldConfig make_config(flowctl::Scheme scheme, int prepost) {
  WorldConfig cfg;
  cfg.num_ranks = 2;
  cfg.flow.scheme = scheme;
  cfg.flow.prepost = prepost;
  return cfg;
}

/// One-way flood: rank 0 fires `count` small nonblocking sends at rank 1,
/// which only starts receiving after `rx_delay`.
void one_way_flood(World& world, int count,
                   sim::Duration rx_delay = sim::Duration::zero()) {
  world.run([&, count, rx_delay](Communicator& comm) {
    std::vector<std::int64_t> vals(static_cast<std::size_t>(count));
    if (comm.rank() == 0) {
      std::vector<RequestPtr> reqs;
      for (int i = 0; i < count; ++i) {
        vals[i] = i;
        reqs.push_back(comm.isend_n(&vals[i], 1, 1, 0));
      }
      comm.wait_all(reqs);
    } else {
      if (rx_delay > sim::Duration::zero()) comm.compute(rx_delay);
      for (int i = 0; i < count; ++i) {
        std::int64_t v = -1;
        comm.recv_n(&v, 1, 0, 0);
        ASSERT_EQ(v, i) << "flood must arrive complete and in order";
      }
    }
  });
}

}  // namespace

TEST(StaticScheme, NoBacklogWithinCreditLimit) {
  World world(make_config(flowctl::Scheme::user_static, 64));
  one_way_flood(world, 32);
  const auto stats = world.collect_stats();
  EXPECT_EQ(stats.total_backlogged(), 0u);
  EXPECT_EQ(stats.total_rnr_naks(), 0u);
}

TEST(StaticScheme, BacklogEngagesBeyondCredits) {
  World world(make_config(flowctl::Scheme::user_static, 8));
  one_way_flood(world, 64);
  const auto stats = world.collect_stats();
  EXPECT_GT(stats.total_backlogged(), 0u);
  // User-level flow control means the hardware never has to intervene.
  EXPECT_EQ(stats.total_rnr_naks(), 0u);
}

TEST(StaticScheme, FamineConvertsSmallSendsToRendezvous) {
  World world(make_config(flowctl::Scheme::user_static, 4));
  one_way_flood(world, 32);
  EXPECT_GT(world.device(0).stats().small_converted_to_rndv, 0u)
      << "paper 4.2: only Rendezvous is used when there are no credits";
}

TEST(StaticScheme, OneWayTrafficGeneratesEcms) {
  World world(make_config(flowctl::Scheme::user_static, 8));
  one_way_flood(world, 200);
  const auto stats = world.collect_stats();
  EXPECT_GT(stats.total_ecm(), 0u)
      << "asymmetric pattern must fall back to explicit credit messages";
}

TEST(StaticScheme, SymmetricPingPongNeedsNoEcms) {
  World world(make_config(flowctl::Scheme::user_static, 8));
  world.run([&](Communicator& comm) {
    std::vector<std::byte> buf(16);
    for (int i = 0; i < 200; ++i) {
      if (comm.rank() == 0) {
        comm.send(buf, 1, 0);
        comm.recv(buf, 1, 0);
      } else {
        comm.recv(buf, 0, 0);
        comm.send(buf, 0, 0);
      }
    }
  });
  const auto stats = world.collect_stats();
  EXPECT_EQ(stats.total_ecm(), 0u)
      << "piggybacking must carry all credit information (paper 4.2)";
  EXPECT_EQ(stats.total_backlogged(), 0u);
}

TEST(StaticScheme, SurvivesPrepostOfOne) {
  World world(make_config(flowctl::Scheme::user_static, 1));
  one_way_flood(world, 50);  // would deadlock without the capped threshold
  const auto stats = world.collect_stats();
  EXPECT_GT(stats.total_ecm(), 0u);
}

TEST(DynamicScheme, GrowsPoolUnderFlood) {
  World world(make_config(flowctl::Scheme::user_dynamic, 1));
  one_way_flood(world, 100);
  const auto stats = world.collect_stats();
  EXPECT_GT(stats.max_posted_buffers(), 1) << "dynamic scheme must adapt";
  std::uint64_t growth = 0;
  for (const auto& c : stats.connections) growth += c.flow.growth_events;
  EXPECT_GT(growth, 0u);
}

TEST(DynamicScheme, StaysSmallWhenTrafficIsLight) {
  World world(make_config(flowctl::Scheme::user_dynamic, 4));
  world.run([&](Communicator& comm) {
    std::vector<std::byte> buf(16);
    for (int i = 0; i < 50; ++i) {
      if (comm.rank() == 0) {
        comm.send(buf, 1, 0);
        comm.recv(buf, 1, 0);
      } else {
        comm.recv(buf, 0, 0);
        comm.send(buf, 0, 0);
      }
    }
  });
  EXPECT_EQ(world.collect_stats().max_posted_buffers(), 4)
      << "buffer efficiency: no growth without backlog pressure";
}

TEST(DynamicScheme, AdaptsFasterThanStaticUnderFlood) {
  const int kCount = 200;
  auto run_one = [&](flowctl::Scheme scheme) {
    World world(make_config(scheme, 4));
    one_way_flood(world, kCount);
    return world.collect_stats().elapsed;
  };
  const auto t_static = run_one(flowctl::Scheme::user_static);
  const auto t_dynamic = run_one(flowctl::Scheme::user_dynamic);
  EXPECT_LT(t_dynamic.count(), t_static.count())
      << "dynamic must beat static once the window exceeds the pool";
}

TEST(HardwareScheme, FloodTriggersRnrRetries) {
  World world(make_config(flowctl::Scheme::hardware, 4));
  one_way_flood(world, 100, sim::microseconds(100));
  const auto stats = world.collect_stats();
  EXPECT_GT(stats.total_rnr_naks(), 0u);
  EXPECT_GT(stats.total_retransmitted_messages(), 0u);
  EXPECT_EQ(stats.total_backlogged(), 0u) << "no MPI-level flow control";
  EXPECT_EQ(stats.total_ecm(), 0u);
}

TEST(HardwareScheme, NoRnrWithEnoughBuffers) {
  World world(make_config(flowctl::Scheme::hardware, 128));
  one_way_flood(world, 100);
  const auto stats = world.collect_stats();
  EXPECT_EQ(stats.total_rnr_naks(), 0u);
  EXPECT_EQ(stats.total_messages(),
            world.collect_stats().total_messages());  // self-consistency
}

TEST(HardwareScheme, SurvivesPrepostOfOne) {
  World world(make_config(flowctl::Scheme::hardware, 1));
  one_way_flood(world, 50, sim::microseconds(50));
  const auto stats = world.collect_stats();
  EXPECT_GT(stats.total_rnr_naks(), 0u);
}

TEST(AllSchemes, IdenticalResultsAcrossSchemes) {
  // The schemes must be invisible to correctness: same data, any scheme.
  for (auto scheme : {flowctl::Scheme::hardware, flowctl::Scheme::user_static,
                      flowctl::Scheme::user_dynamic}) {
    World world(make_config(scheme, 2));
    std::vector<double> received;
    world.run([&](Communicator& comm) {
      if (comm.rank() == 0) {
        for (int i = 0; i < 40; ++i) {
          const double v = i * 1.5;
          comm.send_n(&v, 1, 1, 0);
        }
      } else {
        for (int i = 0; i < 40; ++i) {
          double v = 0;
          comm.recv_n(&v, 1, 0, 0);
          received.push_back(v);
        }
      }
    });
    ASSERT_EQ(received.size(), 40u) << flowctl::to_string(scheme);
    for (int i = 0; i < 40; ++i)
      ASSERT_DOUBLE_EQ(received[i], i * 1.5) << flowctl::to_string(scheme);
  }
}

TEST(AllSchemes, DeterministicElapsedTime) {
  for (auto scheme : {flowctl::Scheme::hardware, flowctl::Scheme::user_static,
                      flowctl::Scheme::user_dynamic}) {
    auto run_one = [&] {
      World world(make_config(scheme, 3));
      one_way_flood(world, 60);
      return world.collect_stats().elapsed;
    };
    EXPECT_EQ(run_one(), run_one()) << flowctl::to_string(scheme);
  }
}

TEST(OnDemand, ConnectionsCreatedLazily) {
  WorldConfig cfg;
  cfg.num_ranks = 4;
  cfg.on_demand_connections = true;
  World world(cfg);
  world.run([&](Communicator& comm) {
    // Only the 0 <-> 1 pair ever talks.
    std::vector<std::byte> buf(8);
    if (comm.rank() == 0) comm.send(buf, 1, 0);
    if (comm.rank() == 1) comm.recv(buf, 0, 0);
  });
  EXPECT_EQ(world.device(0).endpoint_count(), 1u);
  EXPECT_EQ(world.device(1).endpoint_count(), 1u);
  EXPECT_EQ(world.device(2).endpoint_count(), 0u);
  EXPECT_EQ(world.device(3).endpoint_count(), 0u);
}

TEST(OnDemand, EagerModeWiresAllPairs) {
  WorldConfig cfg;
  cfg.num_ranks = 4;
  World world(cfg);
  // Every rank has an endpoint to every rank including itself.
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(world.device(r).endpoint_count(), 4u);
}
