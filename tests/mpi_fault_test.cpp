// MPI-layer fault tolerance: riding out link flaps on the RC reliability
// protocol, graceful failure (error-status requests, no hangs) when the
// transport gives up, and automatic QP recovery with wire-level replay.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mpi/communicator.hpp"
#include "mpi/world.hpp"

using namespace mvflow;
using namespace mvflow::mpi;

namespace {

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 131 + seed * 17) & 0xff);
  return v;
}

WorldConfig reliable_two_ranks() {
  WorldConfig cfg;
  cfg.num_ranks = 2;
  cfg.flow.prepost = 32;
  cfg.fabric.transport_timeout = sim::microseconds(50);
  cfg.fabric.transport_retry_limit = -1;  // ride out any outage
  return cfg;
}

sim::TimePoint at_us(std::int64_t us) {
  return sim::TimePoint(sim::microseconds(us));
}

}  // namespace

// Acceptance: point-to-point traffic completes across a link flap, with the
// retransmission machinery visibly doing the work.
TEST(MpiFault, Pt2PtCompletesAcrossLinkFlap) {
  WorldConfig cfg = reliable_two_ranks();
  ib::LinkFlap flap;
  flap.node = 1;
  flap.down = at_us(10);
  flap.up = at_us(300);
  cfg.fabric.fault.flaps.push_back(flap);
  World world(cfg);

  constexpr int kIters = 20;
  const auto ping = pattern(1024, 2);
  const auto pong = pattern(1024, 3);
  world.run([&](Communicator& comm) {
    std::vector<std::byte> buf(1024);
    for (int i = 0; i < kIters; ++i) {
      if (comm.rank() == 0) {
        comm.send(ping, 1, i);
        comm.recv(buf, 1, i);
        EXPECT_EQ(buf, pong);
      } else {
        comm.recv(buf, 0, i);
        EXPECT_EQ(buf, ping);
        comm.send(pong, 0, i);
      }
    }
  });

  const auto stats = world.collect_stats();
  EXPECT_GT(stats.fabric.flap_dropped_packets, 0u)
      << "the flap must actually interrupt traffic";
  const auto qp01 = world.device(0).qp_stats(1);
  EXPECT_GT(qp01.retransmitted_messages, 0u);
  EXPECT_GT(qp01.transport_retries, 0u);
  EXPECT_GE(stats.elapsed, sim::microseconds(300))
      << "the exchange cannot finish before the link returns";
  EXPECT_EQ(world.device(0).stats().requests_failed, 0u);
  EXPECT_EQ(world.device(1).stats().requests_failed, 0u);
}

// Acceptance: when the transport retry limit is exhausted and reconnection
// is off, outstanding requests complete with error status — no hang, no
// crash, both ranks run to the end.
TEST(MpiFault, GracefulFailureWhenRetriesExhausted) {
  WorldConfig cfg = reliable_two_ranks();
  cfg.fabric.transport_retry_limit = 2;
  ib::LinkFlap flap;  // permanent outage
  flap.node = 1;
  flap.down = at_us(0);
  flap.up = sim::TimePoint(sim::seconds(100));
  cfg.fabric.fault.flaps.push_back(flap);
  World world(cfg);

  bool r0_done = false, r1_done = false;
  world.run([&](Communicator& comm) {
    const Rank other = 1 - comm.rank();
    const auto data = pattern(512, comm.rank());
    std::vector<std::byte> buf(512);
    auto sreq = comm.isend(data, other, 7);
    auto rreq = comm.irecv(buf, other, 7);
    comm.wait(sreq);
    comm.wait(rreq);
    EXPECT_TRUE(rreq->complete());
    EXPECT_TRUE(rreq->failed()) << "nothing can arrive over a dead link";
    // A send posted after the failure is detected must fail fast too.
    auto late = comm.isend(data, other, 8);
    comm.wait(late);
    EXPECT_TRUE(late->failed());
    (comm.rank() == 0 ? r0_done : r1_done) = true;
  });

  EXPECT_TRUE(r0_done);
  EXPECT_TRUE(r1_done);
  for (Rank r = 0; r < 2; ++r) {
    const auto& ds = world.device(r).stats();
    EXPECT_GE(ds.endpoint_failures, 1u);
    EXPECT_GT(ds.requests_failed, 0u);
    EXPECT_GT(ds.error_completions, 0u);
    EXPECT_EQ(ds.reconnects, 0u);
  }
}

// A flap in the middle of NAS-style neighbor traffic completes under every
// flow-control scheme, with the payloads intact.
TEST(MpiFault, FlapCompletesUnderAllSchemes) {
  for (const auto scheme : {flowctl::Scheme::hardware, flowctl::Scheme::user_static,
                            flowctl::Scheme::user_dynamic}) {
    SCOPED_TRACE(flowctl::to_string(scheme));
    WorldConfig cfg;
    cfg.num_ranks = 3;
    cfg.flow.scheme = scheme;
    cfg.flow.prepost = 16;
    cfg.fabric.transport_timeout = sim::microseconds(50);
    cfg.fabric.transport_retry_limit = -1;
    ib::LinkFlap flap;
    flap.node = 1;
    flap.down = at_us(20);
    flap.up = at_us(250);
    cfg.fabric.fault.flaps.push_back(flap);
    World world(cfg);

    constexpr int kRounds = 12;
    world.run([&](Communicator& comm) {
      // Ring shift each round, CG/LU-style neighbor exchange.
      const Rank next = (comm.rank() + 1) % comm.size();
      const Rank prev = (comm.rank() + comm.size() - 1) % comm.size();
      std::vector<std::byte> buf(800);
      for (int r = 0; r < kRounds; ++r) {
        const auto mine = pattern(800, comm.rank() * 100 + r);
        const auto want = pattern(800, prev * 100 + r);
        comm.sendrecv(mine, next, r, buf, prev, r);
        EXPECT_EQ(buf, want);
      }
    });

    const auto stats = world.collect_stats();
    EXPECT_GT(stats.fabric.flap_dropped_packets, 0u);
    EXPECT_GT(stats.total_retransmitted_messages(), 0u);
  }
}

// Tentpole part 3: with auto_reconnect on, retry exhaustion tears the QP
// down, rebuilds the pair, replays unacknowledged wire traffic, and the
// application never notices beyond the added latency.
TEST(MpiFault, AutoReconnectRidesThroughRetryExhaustion) {
  WorldConfig cfg = reliable_two_ranks();
  cfg.fabric.transport_retry_limit = 1;  // give up fast, recover instead
  cfg.device.auto_reconnect = true;
  ib::LinkFlap flap;
  flap.node = 1;
  flap.down = at_us(10);
  flap.up = sim::TimePoint(sim::milliseconds(2));
  cfg.fabric.fault.flaps.push_back(flap);
  World world(cfg);

  constexpr int kIters = 8;
  const auto ping = pattern(900, 5);
  const auto pong = pattern(900, 6);
  world.run([&](Communicator& comm) {
    std::vector<std::byte> buf(900);
    for (int i = 0; i < kIters; ++i) {
      if (comm.rank() == 0) {
        comm.send(ping, 1, i);
        comm.recv(buf, 1, i);
        EXPECT_EQ(buf, pong);
      } else {
        comm.recv(buf, 0, i);
        EXPECT_EQ(buf, ping);
        comm.send(pong, 0, i);
      }
    }
  });

  const auto& d0 = world.device(0).stats();
  const auto& d1 = world.device(1).stats();
  EXPECT_GE(d0.reconnects + d1.reconnects, 1u);
  EXPECT_GE(d0.replayed_wire_msgs + d1.replayed_wire_msgs, 1u);
  EXPECT_EQ(d0.requests_failed, 0u);
  EXPECT_EQ(d0.endpoint_failures, 0u) << "recovery must pre-empt failure";
  EXPECT_FALSE(world.device(0).endpoint_failed(1));
  EXPECT_FALSE(world.device(1).endpoint_failed(0));
}

// Duplicate suppression: replays that the receiver already applied are
// counted and dropped, never delivered twice to the application.
TEST(MpiFault, ReplaysAreDeduplicated) {
  WorldConfig cfg = reliable_two_ranks();
  cfg.fabric.transport_retry_limit = 1;
  cfg.device.auto_reconnect = true;
  ib::LinkFlap flap;
  // Down only for rank 0's *second* batch: messages delivered before the
  // flap may be replayed after recovery and must be deduplicated.
  flap.node = 1;
  flap.down = at_us(30);
  flap.up = sim::TimePoint(sim::milliseconds(1));
  cfg.fabric.fault.flaps.push_back(flap);
  World world(cfg);

  constexpr int kMsgs = 24;
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        const auto m = pattern(256, i);
        comm.send(m, 1, i);
      }
      std::vector<std::byte> done(1);
      comm.recv(done, 1, 999);
    } else {
      std::vector<std::byte> buf(256);
      for (int i = 0; i < kMsgs; ++i) {
        const Status st = comm.recv(buf, 0, i);
        EXPECT_EQ(st.tag, i) << "delivery order must survive recovery";
        EXPECT_EQ(buf, pattern(256, i));
      }
      std::vector<std::byte> done(1, std::byte{1});
      comm.send(done, 0, 999);
    }
  });

  const auto& d0 = world.device(0).stats();
  const auto& d1 = world.device(1).stats();
  EXPECT_GE(d0.reconnects + d1.reconnects, 1u);
  EXPECT_EQ(d0.requests_failed + d1.requests_failed, 0u);
}

// Determinism end to end: the same seeded loss pattern under the full MPI
// stack reproduces identical timing and identical fault statistics.
TEST(MpiFault, SeededLossIsDeterministicThroughMpiStack) {
  auto run_once = [](sim::Duration& elapsed, ib::FabricStats& fabric) {
    WorldConfig cfg = reliable_two_ranks();
    cfg.fabric.fault.loss_prob = 0.03;
    cfg.fabric.fault.seed = 1234;
    World world(cfg);
    world.run([&](Communicator& comm) {
      std::vector<std::byte> buf(512);
      for (int i = 0; i < 15; ++i) {
        if (comm.rank() == 0) {
          comm.send(pattern(512, i), 1, i);
          comm.recv(buf, 1, i);
        } else {
          comm.recv(buf, 0, i);
          comm.send(pattern(512, i), 0, i);
        }
      }
    });
    const auto stats = world.collect_stats();
    elapsed = stats.elapsed;
    fabric = stats.fabric;
  };

  sim::Duration e1, e2;
  ib::FabricStats f1, f2;
  run_once(e1, f1);
  run_once(e2, f2);
  EXPECT_GT(f1.lost_packets, 0u);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(e1, e2);
}

// With the fault machinery configured but inert (all probabilities zero,
// transport timer off), MPI-level results are identical to the defaults.
TEST(MpiFault, InertFaultConfigDoesNotPerturbMpi) {
  auto run_once = [](bool touch_config, sim::Duration& elapsed,
                     ib::FabricStats& fabric) {
    WorldConfig cfg;
    cfg.num_ranks = 2;
    cfg.flow.prepost = 16;
    if (touch_config) {
      cfg.fabric.fault.loss_prob = 0.0;
      cfg.fabric.fault.seed = 77;
    }
    World world(cfg);
    // Eager-sized messages: the rendezvous path pins user buffers, and the
    // pin-down cache's hit pattern depends on heap addresses, which makes
    // elapsed time incomparable across separate World instances.
    world.run([&](Communicator& comm) {
      std::vector<std::byte> buf(1500);
      for (int i = 0; i < 10; ++i) {
        if (comm.rank() == 0) {
          comm.send(pattern(1500, i), 1, i);
        } else {
          comm.recv(buf, 0, i);
        }
      }
    });
    const auto stats = world.collect_stats();
    elapsed = stats.elapsed;
    fabric = stats.fabric;
  };

  sim::Duration e1, e2;
  ib::FabricStats f1, f2;
  run_once(false, e1, f1);
  run_once(true, e2, f2);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(f1.lost_packets, 0u);
}
