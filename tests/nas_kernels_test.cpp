// End-to-end NAS proxy runs: every kernel must numerically verify under
// every flow-control scheme and at both generous and tiny buffer pools —
// flow control must never change results, only timing.
#include <gtest/gtest.h>

#include "nas/kernel.hpp"

using namespace mvflow;
using namespace mvflow::nas;

namespace {

struct NasParam {
  App app;
  flowctl::Scheme scheme;
  int prepost;
};

std::string param_name(const ::testing::TestParamInfo<NasParam>& info) {
  return std::string(to_string(info.param.app)) + "_" +
         std::string(flowctl::to_string(info.param.scheme)) + "_pre" +
         std::to_string(info.param.prepost);
}

class NasKernels : public ::testing::TestWithParam<NasParam> {};

NasParams quick_params() {
  NasParams p;
  p.iterations = 3;  // shrink for test latency; benches use defaults
  return p;
}

}  // namespace

TEST_P(NasKernels, VerifiesUnderScheme) {
  mpi::WorldConfig cfg;
  cfg.num_ranks = 0;  // per-app default (8, BT/SP: 16)
  cfg.flow.scheme = GetParam().scheme;
  cfg.flow.prepost = GetParam().prepost;
  const KernelResult r = run_app(GetParam().app, cfg, quick_params());
  EXPECT_TRUE(r.verified) << to_string(r.app) << " metric=" << r.metric;
  EXPECT_GT(r.elapsed.count(), 0);
  EXPECT_GT(r.stats.total_messages(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, NasKernels,
    ::testing::Values(
        // Generous pool, all schemes.
        NasParam{App::is, flowctl::Scheme::user_static, 100},
        NasParam{App::ft, flowctl::Scheme::user_static, 100},
        NasParam{App::lu, flowctl::Scheme::user_static, 100},
        NasParam{App::cg, flowctl::Scheme::user_static, 100},
        NasParam{App::mg, flowctl::Scheme::user_static, 100},
        NasParam{App::bt, flowctl::Scheme::user_static, 100},
        NasParam{App::sp, flowctl::Scheme::user_static, 100},
        NasParam{App::is, flowctl::Scheme::hardware, 100},
        NasParam{App::lu, flowctl::Scheme::hardware, 100},
        NasParam{App::mg, flowctl::Scheme::hardware, 100},
        NasParam{App::is, flowctl::Scheme::user_dynamic, 100},
        NasParam{App::lu, flowctl::Scheme::user_dynamic, 100},
        // Tiny pool: the paper's extreme case (prepost = 1).
        NasParam{App::is, flowctl::Scheme::user_static, 1},
        NasParam{App::lu, flowctl::Scheme::user_static, 1},
        NasParam{App::cg, flowctl::Scheme::user_static, 1},
        NasParam{App::lu, flowctl::Scheme::user_dynamic, 1},
        NasParam{App::mg, flowctl::Scheme::user_dynamic, 1},
        NasParam{App::lu, flowctl::Scheme::hardware, 1},
        NasParam{App::ft, flowctl::Scheme::hardware, 1}),
    param_name);

TEST(NasCensus, LuDominatesSmallMessageCount) {
  // LU must send far more (small) messages than FT at equal iterations —
  // the property behind the paper's Table 1 / Table 2 contrasts.
  mpi::WorldConfig cfg;
  cfg.num_ranks = 0;
  cfg.flow.prepost = 100;
  NasParams p;
  p.iterations = 3;
  const auto lu = run_app(App::lu, cfg, p);
  const auto ft = run_app(App::ft, cfg, p);
  EXPECT_GT(lu.stats.total_messages(), 3 * ft.stats.total_messages());
}

TEST(NasCensus, DynamicLuGrowsDeepest) {
  mpi::WorldConfig cfg;
  cfg.num_ranks = 0;
  cfg.flow.scheme = flowctl::Scheme::user_dynamic;
  cfg.flow.prepost = 1;
  NasParams p;
  p.iterations = 3;
  const auto lu = run_app(App::lu, cfg, p);
  const auto cg = run_app(App::cg, cfg, p);
  ASSERT_TRUE(lu.verified);
  ASSERT_TRUE(cg.verified);
  EXPECT_GT(lu.stats.max_posted_buffers(), 4 * cg.stats.max_posted_buffers())
      << "LU's pipelined bursts need a much deeper pool (paper Table 2)";
}

TEST(NasDeterminism, SameConfigSameElapsed) {
  mpi::WorldConfig cfg;
  cfg.num_ranks = 0;
  cfg.flow.prepost = 4;
  NasParams p;
  p.iterations = 2;
  const auto a = run_app(App::cg, cfg, p);
  const auto b = run_app(App::cg, cfg, p);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.metric, b.metric);
  EXPECT_EQ(a.stats.total_messages(), b.stats.total_messages());
}
