// Observability layer: metrics registry round-trip, flight-recorder ring
// semantics, Chrome trace well-formedness, and the ISSUE's end-to-end
// acceptance scenarios (trace/metric agreement on a NAS LU run; backlog
// episodes visible at prepost=10 and absent at prepost=100).
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "mpi/communicator.hpp"
#include "mpi/world.hpp"
#include "nas/kernel.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace obs = mvflow::obs;
namespace mpi = mvflow::mpi;
namespace nas = mvflow::nas;
namespace sim = mvflow::sim;

namespace {

// The flight recorder is world-owned: tests enable tracing on a World's
// own recorder (World::recorder()) before run() and read it back after.
// Nothing here touches process-global state, so fixtures cannot leak
// instrumentation into each other.

mpi::WorldConfig two_rank_config(int prepost) {
  mpi::WorldConfig cfg;
  cfg.num_ranks = 2;
  cfg.flow.scheme = mvflow::flowctl::Scheme::user_static;
  cfg.flow.prepost = prepost;
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------- registry --

TEST(MetricsRegistry, InstrumentsAreStableAndFindOrCreate) {
  obs::MetricsRegistry reg;
  std::uint64_t& c = reg.counter("events.total");
  c = 41;
  ++reg.counter("events.total");  // same instrument
  EXPECT_EQ(reg.counter("events.total"), 42u);

  reg.gauge("engine.load") = 0.75;
  reg.running_stats("lat").add(10.0);
  reg.running_stats("lat").add(20.0);
  reg.histogram("sizes", 0.0, 100.0, 10).add(55.0);

  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.get("events.total"), 42.0);
  EXPECT_EQ(snap.get("engine.load"), 0.75);
  EXPECT_EQ(snap.get("lat.count"), 2.0);
  EXPECT_EQ(snap.get("lat.mean"), 15.0);
  EXPECT_EQ(snap.get("sizes.count"), 1.0);
  EXPECT_TRUE(snap.has("sizes.p50"));
}

TEST(MetricsRegistry, SourcesPrefixAndRemove) {
  obs::MetricsRegistry reg;
  const auto id = reg.add_source(
      "rank0.", [](const obs::MetricsRegistry::EmitFn& emit) {
        emit("flow.ecm_sent", 7.0);
      });
  reg.add_source("rank1.", [](const obs::MetricsRegistry::EmitFn& emit) {
    emit("flow.ecm_sent", 3.0);
  });
  obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.get("rank0.flow.ecm_sent"), 7.0);
  EXPECT_EQ(snap.get("rank1.flow.ecm_sent"), 3.0);
  EXPECT_EQ(snap.sum_suffix(".ecm_sent"), 10.0);
  EXPECT_EQ(snap.count_suffix(".ecm_sent"), 2u);

  reg.remove_source(id);
  snap = reg.snapshot();
  EXPECT_FALSE(snap.has("rank0.flow.ecm_sent"));
  EXPECT_EQ(reg.source_count(), 1u);
}

TEST(MetricsRegistry, SnapshotJsonRoundTripsBitExactly) {
  obs::MetricsRegistry reg;
  reg.counter("a.big") = 1234567890123456789ull;
  reg.gauge("b.pi") = 3.141592653589793;
  reg.gauge("c.tiny") = 1.0e-300;
  reg.gauge("d.negative") = -0.0625;
  reg.gauge("e \"quoted\"\n") = 1.0;  // name needing JSON escaping

  const obs::Snapshot snap = reg.snapshot();
  const auto parsed = obs::Snapshot::from_json(snap.to_json());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->values.size(), snap.values.size());
  for (std::size_t i = 0; i < snap.values.size(); ++i) {
    EXPECT_EQ(parsed->values[i].first, snap.values[i].first);
    EXPECT_EQ(parsed->values[i].second, snap.values[i].second) << "index " << i;
  }
}

TEST(MetricsRegistry, FromJsonRejectsMalformedDocuments) {
  EXPECT_FALSE(obs::Snapshot::from_json("").has_value());
  EXPECT_FALSE(obs::Snapshot::from_json("{\"metrics\": 3}").has_value());
  EXPECT_FALSE(obs::Snapshot::from_json("{\"metrics\": {\"a\": \"x\"}}").has_value());
  EXPECT_FALSE(obs::Snapshot::from_json("{\"metrics\": {}} trailing").has_value());
  EXPECT_TRUE(obs::Snapshot::from_json("{\"metrics\": {}}").has_value());
}

// ------------------------------------------------------------ flight ring --

TEST(FlightRecorder, RingOverwritesOldestAtCapacity) {
  obs::FlightRecorder rec;
  rec.enable(8);
  for (int i = 0; i < 12; ++i) {
    rec.record(sim::TimePoint(i), obs::Ev::msg_posted, 0, 1, 5,
               static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.dropped(), 4u);
  EXPECT_EQ(rec.recorded(), 12u);
  EXPECT_EQ(rec.count(obs::Ev::msg_posted), 12u);

  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 8u);
  EXPECT_EQ(evs.front().a, 4u);  // events 0..3 were evicted
  EXPECT_EQ(evs.back().a, 11u);
  for (std::size_t i = 1; i < evs.size(); ++i) {
    EXPECT_LT(evs[i - 1].t, evs[i].t) << "oldest-first order";
  }
}

TEST(FlightRecorder, DisabledRecorderRecordsNothing) {
  obs::FlightRecorder rec;
  rec.record(sim::TimePoint(1), obs::Ev::ecm_sent, 0, 1, 2, 0, 0);
  EXPECT_FALSE(rec.enabled());
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);

  rec.enable(4);
  rec.record(sim::TimePoint(2), obs::Ev::ecm_sent, 0, 1, 2, 0, 0);
  rec.disable();
  rec.record(sim::TimePoint(3), obs::Ev::ecm_sent, 0, 1, 2, 0, 0);
  EXPECT_EQ(rec.recorded(), 1u);
}

TEST(FlightRecorder, LatencyBreakdownAccumulates) {
  obs::FlightRecorder rec;
  rec.enable(4);
  rec.note_post_to_wire(sim::Duration(100));
  rec.note_post_to_wire(sim::Duration(300));
  rec.note_wire_to_ack(sim::Duration(5000));
  rec.note_backlog_residency(sim::Duration(70000));
  EXPECT_EQ(rec.latency().post_to_wire.count(), 2u);
  EXPECT_EQ(rec.latency().post_to_wire.mean(), 200.0);
  EXPECT_EQ(rec.latency().wire_to_ack.count(), 1u);
  EXPECT_EQ(rec.latency().backlog_residency.count(), 1u);
  rec.clear();
  EXPECT_EQ(rec.latency().post_to_wire.count(), 0u);
}

TEST(FlightRecorder, CsvCarriesLastKnownValues) {
  obs::FlightRecorder rec;
  rec.enable(16);
  rec.record(sim::TimePoint(10), obs::Ev::credit_grant, 0, 1, 3, 5, 5);
  rec.record(sim::TimePoint(20), obs::Ev::backlog_enter, 0, 1, 3, 2, 0);
  rec.record(sim::TimePoint(30), obs::Ev::msg_posted, 0, 1, 3, 1, 64);  // not sampled
  std::ostringstream csv;
  rec.export_credit_csv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("time_ns,rank,peer,event,credits,backlog_depth"),
            std::string::npos);
  EXPECT_NE(text.find("10,0,1,credit_grant,5,0"), std::string::npos);
  EXPECT_NE(text.find("20,0,1,backlog_enter,0,2"), std::string::npos);
  EXPECT_EQ(text.find("msg_posted"), std::string::npos);
}

// ------------------------------------------------------- end-to-end trace --

TEST(ChromeTrace, PingPongProducesWellFormedTrace) {
  mpi::World world(two_rank_config(/*prepost=*/16));
  world.recorder().enable(1u << 16);
  world.run([](mpi::Communicator& comm) {
    std::byte buf[256];
    std::memset(buf, 0, sizeof buf);
    for (int i = 0; i < 8; ++i) {
      if (comm.rank() == 0) {
        comm.send(buf, 1, 7);
        comm.recv(buf, 1, 7);
      } else {
        comm.recv(buf, 0, 7);
        comm.send(buf, 0, 7);
      }
    }
  });

  const obs::FlightRecorder& rec = world.recorder();
  ASSERT_GT(rec.size(), 0u);
  std::ostringstream os;
  rec.export_chrome_trace(os);
  const auto doc = obs::json::parse(os.str());
  ASSERT_TRUE(doc.has_value()) << "trace must be valid JSON";
  const obs::json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array.empty());

  std::size_t instants = 0;
  double last_ts = 0.0;
  for (const auto& e : events->array) {
    ASSERT_TRUE(e.is_object());
    const obs::json::Value* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->is_string());
    const obs::json::Value* name = e.find("name");
    ASSERT_NE(name, nullptr);
    ASSERT_TRUE(name->is_string());
    ASSERT_NE(e.find("pid"), nullptr);
    if (ph->string == "M") continue;  // metadata carries no ts
    const obs::json::Value* ts = e.find("ts");
    ASSERT_NE(ts, nullptr);
    ASSERT_TRUE(ts->is_number());
    EXPECT_GE(ts->number, last_ts) << "timestamps must be non-decreasing";
    last_ts = ts->number;
    if (ph->string == "i") ++instants;
  }
  EXPECT_GT(instants, 0u);

  // Both ranks posted, transmitted, delivered and retired messages.
  EXPECT_GT(rec.count(obs::Ev::msg_posted), 0u);
  EXPECT_GT(rec.count(obs::Ev::msg_on_wire), 0u);
  EXPECT_GT(rec.count(obs::Ev::msg_delivered), 0u);
  EXPECT_GT(rec.count(obs::Ev::msg_acked), 0u);
  EXPECT_GT(rec.latency().post_to_wire.count(), 0u);
  EXPECT_GT(rec.latency().wire_to_ack.count(), 0u);
}

namespace {

/// Drive one NAS LU run on a caller-owned World so the test can read the
/// World's recorder afterwards (run_app hides its World, and with it the
/// trace). Mirrors run_app's harness for the one app these tests use.
struct TracedLuRun {
  nas::AppOutcome outcome;
  mpi::WorldStats stats;
  obs::Snapshot metrics;
};

TracedLuRun run_lu_traced(mpi::World& world, const nas::NasParams& params) {
  TracedLuRun r;
  world.run([&](mpi::Communicator& comm) {
    const nas::AppOutcome local = nas::run_lu(comm, params);
    if (comm.rank() == 0) r.outcome = local;
  });
  r.stats = world.collect_stats();
  r.metrics = world.metrics().snapshot();
  return r;
}

}  // namespace

TEST(ChromeTrace, LuEcmEventsMatchFlowCounters) {
  // ISSUE acceptance: on a NAS LU static-scheme run, the number of
  // ecm_sent instants in the exported trace equals the flowctl layer's
  // aggregate ecm_sent counter, and the metrics snapshot agrees.
  nas::NasParams params;
  params.iterations = 2;
  auto cfg = two_rank_config(/*prepost=*/10);
  cfg.num_ranks = nas::default_ranks(nas::App::lu);
  mpi::World world(cfg);
  world.recorder().enable(1u << 20);
  const TracedLuRun r = run_lu_traced(world, params);
  ASSERT_TRUE(r.outcome.verified);

  const std::uint64_t flow_ecm = r.stats.total_ecm();
  EXPECT_EQ(world.recorder().count(obs::Ev::ecm_sent), flow_ecm);
  EXPECT_EQ(r.metrics.sum_suffix(".flow.ecm_sent"),
            static_cast<double>(flow_ecm));

  // And the exported trace carries exactly that many ecm_sent instants.
  std::ostringstream os;
  world.recorder().export_chrome_trace(os);
  const auto doc = obs::json::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  const obs::json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::uint64_t ecm_instants = 0;
  for (const auto& e : events->array) {
    const obs::json::Value* name = e.find("name");
    const obs::json::Value* ph = e.find("ph");
    if (name && ph && ph->string == "i" && name->string == "ecm_sent")
      ++ecm_instants;
  }
  EXPECT_EQ(ecm_instants, flow_ecm);
  EXPECT_EQ(world.recorder().dropped(), 0u) << "ring must not have wrapped";
}

TEST(CreditTimeSeries, BacklogEpisodesOnlyUnderSmallPools) {
  // A starved credit pool shows backlog episodes on LU's bursty wavefront;
  // a roomy one shows none. The paper contrasts prepost 10 vs 100 on
  // full-size NAS grids; this scaled-down LU has a burst depth of ~8, so
  // the starved side sits below that to actually exhaust the pool.
  nas::NasParams params;
  params.iterations = 2;

  auto starved = two_rank_config(/*prepost=*/6);
  starved.num_ranks = nas::default_ranks(nas::App::lu);
  mpi::World small_world(starved);
  small_world.recorder().enable(1u << 20);
  const TracedLuRun small = run_lu_traced(small_world, params);
  ASSERT_TRUE(small.outcome.verified);
  EXPECT_GT(small_world.recorder().count(obs::Ev::backlog_enter), 0u);
  std::ostringstream csv_small;
  small_world.recorder().export_credit_csv(csv_small);
  EXPECT_NE(csv_small.str().find("backlog_enter"), std::string::npos);

  auto roomy = two_rank_config(/*prepost=*/100);
  roomy.num_ranks = nas::default_ranks(nas::App::lu);
  mpi::World big_world(roomy);
  big_world.recorder().enable(1u << 20);
  const TracedLuRun big = run_lu_traced(big_world, params);
  ASSERT_TRUE(big.outcome.verified);
  EXPECT_EQ(big_world.recorder().count(obs::Ev::backlog_enter), 0u);
  std::ostringstream csv_big;
  big_world.recorder().export_credit_csv(csv_big);
  EXPECT_EQ(csv_big.str().find("backlog_enter"), std::string::npos);
}

TEST(WorldMetrics, SnapshotCoversEveryLayer) {
  mpi::World world(two_rank_config(/*prepost=*/16));
  world.run([](mpi::Communicator& comm) {
    std::byte buf[64] = {};
    if (comm.rank() == 0) comm.send(buf, 1, 1);
    else comm.recv(buf, 0, 1);
  });
  const obs::Snapshot snap = world.metrics().snapshot();
  EXPECT_GT(snap.get("engine.executed"), 0.0);
  EXPECT_GT(snap.get("fabric.packets"), 0.0);
  EXPECT_GT(snap.get("msg_pool.acquires"), 0.0);
  EXPECT_TRUE(snap.has("rank0.device.eager_sent"));
  EXPECT_TRUE(snap.has("rank1.device.eager_sent"));
  EXPECT_TRUE(snap.has("rank0.peer1.flow.credited_sent"));
  EXPECT_TRUE(snap.has("rank0.peer1.qp.messages_sent"));
  EXPECT_TRUE(snap.has("latency.post_to_wire.count"));
  EXPECT_GT(snap.sum_suffix(".flow.total_messages"), 0.0);
}
