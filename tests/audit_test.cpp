// Invariant auditor + progress watchdog + chaos campaign (DESIGN.md §15).
//
// Four claims under test:
//   1. Arming the auditor changes *when* checks run, never what the
//      protocol computes: the fig2/fig3 golden hashes reproduce bit-for-bit
//      with MVFLOW_AUDIT on, at every engine mode.
//   2. A deliberately corrupted credit counter is caught, and the
//      AuditError names the right connection and section.
//   3. A genuine silent stall (nonzero backlog, zero progress) trips the
//      watchdog with the stuck connection identified, on both engines.
//   4. The chaos campaign is violation-free and byte-identical across
//      runner widths, and the minimizer shrinks a planted credit bug to a
//      <= 10-event scripted reproducer.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bw_figure.hpp"
#include "exp/chaos.hpp"
#include "fig_latency.hpp"
#include "mpi/communicator.hpp"
#include "mpi/world.hpp"
#include "obs/audit.hpp"
#include "sim/watchdog.hpp"

using namespace mvflow;
using namespace mvflow::mpi;

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Same constants the golden-determinism test pins (recorded from the seed
// engine). The auditor must reproduce them exactly: its ledger counters are
// maintained unconditionally, and the armed checks are read-only.
constexpr std::uint64_t kFig2GoldenHash = 9228963969060808259ull;
constexpr std::uint64_t kFig3GoldenHash = 7566288777037796131ull;

constexpr int kHeap4 = static_cast<int>(sim::SchedKind::heap4);
constexpr int kCalendar = static_cast<int>(sim::SchedKind::calendar);

}  // namespace

// ---- 1. differential: audit-on is bit-identical to audit-off ----------

TEST(AuditDifferential, Fig2GoldenWithAuditorArmed) {
  const bench::EngineMode serial{
      .engine_threads = 0, .scheduler = kHeap4, .audit = 1};
  EXPECT_EQ(fnv1a(bench::build_fig2_table(200, nullptr, 1, serial).to_string()),
            kFig2GoldenHash);
  const bench::EngineMode sharded{
      .engine_threads = 2, .scheduler = kCalendar, .audit = 1};
  EXPECT_EQ(
      fnv1a(bench::build_fig2_table(200, nullptr, 1, sharded).to_string()),
      kFig2GoldenHash);
}

TEST(AuditDifferential, Fig3GoldenWithAuditorArmed) {
  const bench::EngineMode serial{
      .engine_threads = 0, .scheduler = kCalendar, .audit = 1};
  EXPECT_EQ(fnv1a(bench::build_bw_table(4, 100, true, nullptr, 1, serial)
                      .to_string()),
            kFig3GoldenHash);
  const bench::EngineMode sharded{
      .engine_threads = 2, .scheduler = kHeap4, .audit = 1};
  EXPECT_EQ(fnv1a(bench::build_bw_table(4, 100, true, nullptr, 4, sharded)
                      .to_string()),
            kFig3GoldenHash);
}

// ---- 2. negative: corrupted counters are caught and named --------------

namespace {

/// Clean pingpong world the corruption tests poke afterwards.
void run_clean_pingpong(World& world) {
  world.run([](Communicator& comm) {
    std::vector<std::byte> buf(256);
    for (int i = 0; i < 10; ++i) {
      if (comm.rank() == 0) {
        comm.send(buf, 1, i);
        comm.recv(buf, 1, i);
      } else {
        comm.recv(buf, 0, i);
        comm.send(buf, 0, i);
      }
    }
  });
}

}  // namespace

TEST(AuditNegative, PhantomCreditNamesConnectionAndSection) {
  WorldConfig cfg;
  cfg.num_ranks = 2;
  cfg.flow.scheme = flowctl::Scheme::user_static;
  cfg.flow.prepost = 8;
  World world(cfg);
  run_clean_pingpong(world);
  ASSERT_NO_THROW(world.audit_sweep());

  // A phantom credit on rank 0's sender side toward rank 1: the class of
  // miscount (duplicated credit grant) the auditor exists for.
  world.device(0).debug_flow(1).debug_add_credits_unaccounted(1);
  try {
    world.audit_sweep();
    FAIL() << "corrupted credit count must not pass the sweep";
  } catch (const obs::AuditError& e) {
    EXPECT_EQ(e.section(), "credit-conservation");
    EXPECT_EQ(e.src(), 0);
    EXPECT_EQ(e.dst(), 1);
    EXPECT_NE(std::string(e.what()).find("conservation equation"),
              std::string::npos)
        << e.what();
  }
}

TEST(AuditNegative, ReverseDirectionNamesTheOtherEndpoint) {
  WorldConfig cfg;
  cfg.num_ranks = 2;
  cfg.flow.scheme = flowctl::Scheme::user_dynamic;
  cfg.flow.prepost = 8;
  World world(cfg);
  run_clean_pingpong(world);
  ASSERT_NO_THROW(world.audit_sweep());

  world.device(1).debug_flow(0).debug_add_credits_unaccounted(2);
  try {
    world.audit_sweep();
    FAIL() << "corrupted credit count must not pass the sweep";
  } catch (const obs::AuditError& e) {
    EXPECT_EQ(e.section(), "credit-conservation");
    EXPECT_EQ(e.src(), 1);
    EXPECT_EQ(e.dst(), 0);
  }
}

// ---- satellite: failed backlog returns its slots to the books ----------

// When retry exhaustion kills a connection with sends still backlogged
// (the optimistic-famine bug class), the failure path must account every
// queued send as `backlog_failed` — the books close, nothing hangs, and
// the post-mortem sweep still passes on the dead endpoint.
TEST(AuditNegative, FailedBacklogIsAccountedNotLeaked) {
  WorldConfig cfg;
  cfg.num_ranks = 2;
  cfg.flow.scheme = flowctl::Scheme::user_dynamic;
  cfg.flow.prepost = 4;
  cfg.fabric.transport_timeout = sim::microseconds(50);
  cfg.fabric.transport_retry_limit = 2;
  ib::LinkFlap flap;  // permanent outage
  flap.node = 1;
  flap.down = sim::TimePoint(sim::microseconds(0));
  flap.up = sim::TimePoint(sim::seconds(100));
  cfg.fabric.fault.flaps.push_back(flap);
  World world(cfg);

  // Both ranks send: rank 1 must push traffic of its own so its endpoint
  // detects the dead link too (a pure receiver would otherwise wait on a
  // wire that never errors locally).
  constexpr int kSends = 30;
  world.run([&](Communicator& comm) {
    const Rank other = 1 - comm.rank();
    std::vector<std::byte> payload(512);
    std::vector<std::byte> buf(512);
    std::vector<RequestPtr> reqs;
    const int sends = comm.rank() == 0 ? kSends : 1;
    for (int i = 0; i < sends; ++i)
      reqs.push_back(comm.isend(payload, other, i));
    reqs.push_back(comm.irecv(buf, other, 0));
    comm.wait_all(reqs);
    for (const auto& r : reqs) EXPECT_TRUE(r->complete());
    EXPECT_TRUE(reqs.back()->failed());
  });

  bool found = false;
  for (const auto& conn : world.collect_stats().connections) {
    if (conn.rank == 0 && conn.peer == 1) {
      found = true;
      EXPECT_GT(conn.flow.backlog_entered, 0u);
      EXPECT_GT(conn.flow.backlog_failed, 0u)
          << "cleared backlog must be booked as failed, not leaked";
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GE(world.device(0).stats().endpoint_failures, 1u);
  // The books must close even on the dead connection.
  EXPECT_NO_THROW(world.audit_sweep());
}

// ---- 3. watchdog: silent stalls are diagnosed, not timed out -----------

namespace {

/// A world where rank 0's stream to rank 1 goes silently dead: the first
/// data packet is dropped with the transport timer off, so every later
/// message is discarded as a sequence gap and no credit ever returns.
/// Rank 2 keeps the engine busy (pure compute) so the event queue never
/// drains — without the watchdog this runs until the 30 s deadlock
/// ceiling; with it, the stall is diagnosed within the horizon.
WorldConfig stalled_world_config(int engine_threads) {
  WorldConfig cfg;
  cfg.num_ranks = 3;
  cfg.flow.scheme = flowctl::Scheme::user_static;
  cfg.flow.prepost = 4;
  cfg.engine_threads = engine_threads;
  // transport_timeout stays 0: no retransmission, the drop is permanent.
  ib::ScriptedFault drop;
  drop.src_node = 0;
  drop.dst_node = 1;
  drop.kind = static_cast<int>(ib::PacketKind::data);
  cfg.fabric.fault.scripted.push_back(drop);
  cfg.run = exp::RunConfig{};
  cfg.run.watchdog_horizon_us = 500;
  return cfg;
}

std::vector<World::RankBody> stalled_bodies() {
  return {
      [](Communicator& comm) {
        std::vector<std::byte> payload(256);
        std::vector<RequestPtr> reqs;
        for (int i = 0; i < 12; ++i)
          reqs.push_back(comm.isend(payload, 1, i));
        comm.wait_all(reqs);
      },
      [](Communicator& comm) {
        std::vector<std::byte> buf(256);
        for (int i = 0; i < 12; ++i) comm.recv(buf, 0, i);
      },
      [](Communicator& comm) {
        // ~4 ms of standalone compute: far past the 500 us horizon.
        for (int i = 0; i < 4000; ++i) comm.compute(sim::microseconds(1));
      },
  };
}

}  // namespace

TEST(Watchdog, DiagnosesSilentStallSerial) {
  WorldConfig cfg = stalled_world_config(0);
  const std::string dump = ::testing::TempDir() + "/watchdog_serial.json";
  std::remove(dump.c_str());
  cfg.run.watchdog_dump_path = dump;
  World world(cfg);
  try {
    world.run(stalled_bodies());
    FAIL() << "stalled run must trip the watchdog";
  } catch (const sim::WatchdogError& e) {
    EXPECT_EQ(e.src(), 0);
    EXPECT_EQ(e.dst(), 1);
    EXPECT_NE(std::string(e.what()).find("backlog"), std::string::npos)
        << e.what();
  }
  std::FILE* f = std::fopen(dump.c_str(), "r");
  EXPECT_NE(f, nullptr) << "stall must dump the metrics registry";
  if (f) std::fclose(f);
}

TEST(Watchdog, DiagnosesSilentStallSharded) {
  WorldConfig cfg = stalled_world_config(2);
  World world(cfg);
  try {
    world.run(stalled_bodies());
    FAIL() << "stalled run must trip the watchdog";
  } catch (const sim::WatchdogError& e) {
    EXPECT_EQ(e.src(), 0);
    EXPECT_EQ(e.dst(), 1);
  }
}

// ---- 4. chaos campaign + minimization ----------------------------------

TEST(ChaosCampaign, SmallGridZeroViolationsAndRunnerIdentity) {
  // A trimmed grid (loss + corrupt profiles, both engines, both schedulers,
  // two schemes) — the full sweep is the bench binary's job.
  std::vector<exp::chaos::CellSpec> cells;
  const auto profiles = exp::chaos::default_profiles();
  for (const auto scheme :
       {flowctl::Scheme::user_static, flowctl::Scheme::user_dynamic}) {
    for (std::size_t p = 0; p < 2; ++p) {  // loss, corrupt
      for (const int threads : {0, 2}) {
        exp::chaos::CellSpec c;
        c.scheme = scheme;
        c.profile = profiles[p];
        c.scheduler =
            threads == 0 ? sim::SchedKind::heap4 : sim::SchedKind::calendar;
        c.engine_threads = threads;
        c.seed = 40 + p;
        c.workload.name = "allpairs";
        c.workload.params["bytes"] = 512;
        c.workload.params["rounds"] = 2;
        cells.push_back(std::move(c));
      }
    }
  }
  const auto j1 = exp::chaos::run_campaign(cells, 1);
  const auto j4 = exp::chaos::run_campaign(cells, 4);
  ASSERT_EQ(j1.size(), cells.size());
  for (std::size_t i = 0; i < j1.size(); ++i) {
    EXPECT_FALSE(j1[i].violation) << j1[i].label << ": " << j1[i].what;
    EXPECT_EQ(j1[i].result_line(), j4[i].result_line())
        << "runner width changed a cell result";
  }
}

TEST(ChaosCampaign, PlantedCreditBugIsCaughtAndMinimized) {
  exp::chaos::CellSpec spec;
  spec.scheme = flowctl::Scheme::user_static;
  spec.profile.name = "inject-bug";
  spec.profile.loss = 0.35;
  spec.profile.transport_retry_limit = 1;
  spec.profile.auto_reconnect = true;
  spec.profile.serial_only = true;
  spec.seed = 3;
  spec.ranks = 2;
  spec.workload.name = "pingpong";
  spec.workload.params["bytes"] = 2048;
  spec.workload.params["iters"] = 40;
  spec.debug_skew_reconnect_credit = 1;

  const exp::chaos::CellResult r = exp::chaos::run_cell(spec, true);
  ASSERT_TRUE(r.violation) << "planted reconnect skew must trip the auditor";
  EXPECT_EQ(r.kind, "audit") << r.what;
  ASSERT_FALSE(r.recorded.empty());

  const exp::chaos::MinimizeOutcome m =
      exp::chaos::minimize_failure(spec, r.recorded);
  ASSERT_TRUE(m.reproduced)
      << "recorded fault script must reproduce with randomness off";
  EXPECT_EQ(m.kind, "audit") << m.what;
  EXPECT_LE(m.script.size(), 10u)
      << "minimizer must shrink the reproducer to a handful of events";
  EXPECT_LT(m.script.size(), r.recorded.size());
}
