#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"

using namespace mvflow::sim;

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(TimePoint(30), [&] { order.push_back(3); });
  eng.schedule_at(TimePoint(10), [&] { order.push_back(1); });
  eng.schedule_at(TimePoint(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), TimePoint(30));
}

TEST(Engine, TieBreaksByScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    eng.schedule_at(TimePoint(100), [&order, i] { order.push_back(i); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NestedSchedulingFromCallbacks) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(TimePoint(10), [&] {
    order.push_back(1);
    eng.schedule_after(Duration(5), [&] { order.push_back(2); });
  });
  eng.schedule_at(TimePoint(12), [&] { order.push_back(10); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 10, 2}));
}

TEST(Engine, RejectsPastEvents) {
  Engine eng;
  eng.schedule_at(TimePoint(10), [] {});
  eng.run();
  EXPECT_THROW(eng.schedule_at(TimePoint(5), [] {}), std::invalid_argument);
}

TEST(Engine, CancelPreventsExecution) {
  Engine eng;
  bool ran = false;
  auto h = eng.schedule_at(TimePoint(10), [&] { ran = true; });
  h.cancel();
  eng.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(eng.executed_events(), 0u);
}

TEST(Engine, CancelAfterExecutionIsHarmless) {
  Engine eng;
  bool ran = false;
  auto h = eng.schedule_at(TimePoint(10), [&] { ran = true; });
  eng.run();
  EXPECT_TRUE(ran);
  h.cancel();  // no-op
}

TEST(Engine, StopHaltsAtEventBoundary) {
  Engine eng;
  int count = 0;
  for (int i = 1; i <= 10; ++i)
    eng.schedule_at(TimePoint(i), [&] {
      if (++count == 3) eng.stop();
    });
  eng.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(eng.pending_events(), 7u);
}

TEST(Engine, RunUntilLeavesLaterEvents) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(TimePoint(10), [&] { order.push_back(1); });
  eng.schedule_at(TimePoint(20), [&] { order.push_back(2); });
  eng.schedule_at(TimePoint(30), [&] { order.push_back(3); });
  eng.run_until(TimePoint(20));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(eng.now(), TimePoint(20));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, RunUntilAdvancesClockOnEmptyQueue) {
  Engine eng;
  eng.run_until(TimePoint(1000));
  EXPECT_EQ(eng.now(), TimePoint(1000));
}

TEST(Resource, SerializesOverlappingReservations) {
  Resource r;
  EXPECT_EQ(r.reserve(TimePoint(0), Duration(10)), TimePoint(0));
  // Requested at t=5 but the resource is busy until 10.
  EXPECT_EQ(r.reserve(TimePoint(5), Duration(10)), TimePoint(10));
  // Requested well after it is free: starts on request.
  EXPECT_EQ(r.reserve(TimePoint(100), Duration(5)), TimePoint(100));
  EXPECT_EQ(r.busy_until(), TimePoint(105));
  EXPECT_EQ(r.total_busy(), Duration(25));
  EXPECT_EQ(r.uses(), 3u);
}

TEST(Time, TransferTimeRoundsUp) {
  // 1000 bytes at 1 GB/s = 1000 ns (+1 for the ceiling).
  EXPECT_EQ(transfer_time(1000, 1e9).count(), 1001);
  EXPECT_GT(transfer_time(1, 1e12).count(), 0);
}

TEST(Time, Formatting) {
  EXPECT_EQ(format_time(TimePoint(500)), "500ns");
  EXPECT_EQ(format_time(TimePoint(12'345)), "12.345us");
  EXPECT_EQ(format_time(TimePoint(12'345'678)), "12.346ms");
}
