#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"

using namespace mvflow::sim;

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(TimePoint(30), [&] { order.push_back(3); });
  eng.schedule_at(TimePoint(10), [&] { order.push_back(1); });
  eng.schedule_at(TimePoint(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), TimePoint(30));
}

TEST(Engine, TieBreaksByScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    eng.schedule_at(TimePoint(100), [&order, i] { order.push_back(i); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NestedSchedulingFromCallbacks) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(TimePoint(10), [&] {
    order.push_back(1);
    eng.schedule_after(Duration(5), [&] { order.push_back(2); });
  });
  eng.schedule_at(TimePoint(12), [&] { order.push_back(10); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 10, 2}));
}

TEST(Engine, RejectsPastEvents) {
  Engine eng;
  eng.schedule_at(TimePoint(10), [] {});
  eng.run();
  EXPECT_THROW(eng.schedule_at(TimePoint(5), [] {}), std::invalid_argument);
}

TEST(Engine, CancelPreventsExecution) {
  Engine eng;
  bool ran = false;
  auto h = eng.schedule_at(TimePoint(10), [&] { ran = true; });
  h.cancel();
  eng.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(eng.executed_events(), 0u);
}

TEST(Engine, CancelAfterExecutionIsHarmless) {
  Engine eng;
  bool ran = false;
  auto h = eng.schedule_at(TimePoint(10), [&] { ran = true; });
  eng.run();
  EXPECT_TRUE(ran);
  h.cancel();  // no-op
}

TEST(Engine, HandleOutlivingEngineIsSafe) {
  // A handle holder (e.g. a QP's timer) may be torn down after the engine.
  // The stale handle must read invalid and cancel as a no-op instead of
  // dereferencing the destroyed engine.
  EventHandle pending, fired;
  {
    Engine eng;
    pending = eng.schedule_at(TimePoint(10), [] {});
    fired = eng.schedule_at(TimePoint(5), [] {});
    eng.run_until(TimePoint(7));
    EXPECT_TRUE(pending.valid());
    EXPECT_FALSE(fired.valid());
  }
  EXPECT_FALSE(pending.valid());
  EXPECT_FALSE(fired.valid());
  pending.cancel();  // no-op, must not crash
  fired.cancel();
}

TEST(Engine, StopHaltsAtEventBoundary) {
  Engine eng;
  int count = 0;
  for (int i = 1; i <= 10; ++i)
    eng.schedule_at(TimePoint(i), [&] {
      if (++count == 3) eng.stop();
    });
  eng.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(eng.pending_events(), 7u);
}

TEST(Engine, RunUntilLeavesLaterEvents) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(TimePoint(10), [&] { order.push_back(1); });
  eng.schedule_at(TimePoint(20), [&] { order.push_back(2); });
  eng.schedule_at(TimePoint(30), [&] { order.push_back(3); });
  eng.run_until(TimePoint(20));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(eng.now(), TimePoint(20));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, RunUntilAdvancesClockOnEmptyQueue) {
  Engine eng;
  eng.run_until(TimePoint(1000));
  EXPECT_EQ(eng.now(), TimePoint(1000));
}

TEST(Engine, HandleInvalidDuringAndAfterFire) {
  Engine eng;
  EventHandle h;
  bool valid_during = true;
  h = eng.schedule_at(TimePoint(1), [&] {
    valid_during = h.valid();
    h.cancel();  // self-cancel while executing: must be a no-op
  });
  EXPECT_TRUE(h.valid());
  eng.run();
  EXPECT_FALSE(valid_during);  // own handle reads fired inside the callback
  EXPECT_FALSE(h.valid());
  EXPECT_EQ(eng.perf_stats().cancelled_before_fire, 0u);
}

TEST(Engine, CancelledSlotReuseKeepsOldHandlesInvalid) {
  Engine eng;
  bool a = false;
  bool b = false;
  auto h1 = eng.schedule_at(TimePoint(10), [&] { a = true; });
  h1.cancel();
  // The slot is immediately reusable; the next event takes it at a newer
  // generation, so the stale handle must not be able to disturb it.
  auto h2 = eng.schedule_at(TimePoint(20), [&] { b = true; });
  EXPECT_FALSE(h1.valid());
  EXPECT_TRUE(h2.valid());
  h1.cancel();  // stale: no-op
  eng.run();
  EXPECT_FALSE(a);
  EXPECT_TRUE(b);
  EXPECT_EQ(eng.perf_stats().cancelled_before_fire, 1u);
}

TEST(Engine, RunUntilSkipsCancelledTopWithoutOverrunning) {
  Engine eng;
  bool late = false;
  auto h = eng.schedule_at(TimePoint(10), [] {});
  eng.schedule_at(TimePoint(50), [&] { late = true; });
  h.cancel();
  // The cancelled entry sits at the top of the heap; run_until must reap it
  // without letting the t=50 event through the t=20 horizon.
  EXPECT_EQ(eng.run_until(TimePoint(20)), 0u);
  EXPECT_FALSE(late);
  EXPECT_EQ(eng.pending_events(), 1u);
  eng.run();
  EXPECT_TRUE(late);
}

TEST(Engine, PoolRecyclesSlotsAcrossGenerations) {
  Engine eng;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 10; ++i) eng.schedule_after(Duration(1 + i), [] {});
    eng.run();
  }
  const EnginePerfStats& p = eng.perf_stats();
  EXPECT_EQ(p.scheduled, 1000u);
  EXPECT_EQ(p.executed, 1000u);
  EXPECT_EQ(p.pool_reuses + p.pool_allocs, 1000u);
  // Only the first round's peak population can grow the slab; everything
  // after comes off the freelist.
  EXPECT_LE(p.pool_allocs, 10u);
  EXPECT_GT(p.pool_hit_rate(), 0.98);
  EXPECT_LE(p.peak_heap_depth, 10u);
}

// Randomized differential test: drive the engine with an interleaved
// schedule/cancel/run_until workload and check every observable — firing
// order, pending count, handle validity — against a naive reference model
// (a flat list scanned and sorted per run). Seeded, so failures reproduce.
TEST(EngineStress, RandomizedScheduleCancelRunMatchesReferenceModel) {
  std::mt19937 rng(0xC0FFEEu);
  Engine eng;

  struct RefEvent {
    std::int64_t t;
    std::uint64_t seq;  // schedule order: the documented tie-break
    int id;
    bool cancelled = false;
    bool fired = false;
  };
  std::vector<RefEvent> model;
  std::vector<std::pair<int, EventHandle>> handles;
  std::vector<int> fired;           // ids in actual firing order
  std::vector<int> expected_fired;  // ids the model says should have fired
  std::uint64_t next_seq = 0;
  int next_id = 0;
  std::int64_t now = 0;

  auto advance_model_to = [&](std::int64_t limit) {
    std::vector<RefEvent*> due;
    for (RefEvent& e : model) {
      if (!e.cancelled && !e.fired && e.t <= limit) due.push_back(&e);
    }
    std::sort(due.begin(), due.end(), [](const RefEvent* a, const RefEvent* b) {
      return a->t != b->t ? a->t < b->t : a->seq < b->seq;
    });
    for (RefEvent* e : due) {
      e->fired = true;
      expected_fired.push_back(e->id);
    }
  };

  for (int step = 0; step < 10000; ++step) {
    const std::uint32_t op = rng() % 100u;
    if (op < 60) {
      const std::int64_t t = now + static_cast<std::int64_t>(rng() % 1000u);
      const int id = next_id++;
      EventHandle h =
          eng.schedule_at(TimePoint(t), [&fired, id] { fired.push_back(id); });
      EXPECT_TRUE(h.valid());
      model.push_back(RefEvent{t, next_seq++, id});
      handles.emplace_back(id, h);
    } else if (op < 85 && !handles.empty()) {
      auto& [id, h] = handles[rng() % handles.size()];
      const bool was_pending = h.valid();
      h.cancel();
      EXPECT_FALSE(h.valid());
      if (was_pending) {
        for (RefEvent& e : model) {
          if (e.id == id) e.cancelled = true;
        }
      }
    } else {
      const std::int64_t limit = now + static_cast<std::int64_t>(rng() % 1500u);
      eng.run_until(TimePoint(limit));
      now = limit;
      advance_model_to(limit);
      ASSERT_EQ(fired, expected_fired) << "divergence at step " << step;
      std::size_t live = 0;
      for (const RefEvent& e : model) {
        if (!e.cancelled && !e.fired) ++live;
      }
      ASSERT_EQ(eng.pending_events(), live) << "pending count at step " << step;
    }
  }

  eng.run();  // drain the tail
  advance_model_to(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(fired, expected_fired);
  EXPECT_EQ(eng.pending_events(), 0u);
  // Every handle must agree the game is over.
  for (auto& [id, h] : handles) EXPECT_FALSE(h.valid());
  // The workload cycles slots constantly; the pool must be serving nearly
  // all of them from the freelist.
  EXPECT_GT(eng.perf_stats().pool_hit_rate(), 0.9);
}

TEST(Engine, CausalTokenInheritedThroughScheduling) {
  // DESIGN.md §16: an event inherits the causal token current at its
  // schedule_at call; dispatch re-establishes it for the callback (so
  // nested schedules propagate it) and restores the scheduler's token
  // afterwards. The profiler's whole chain-walking rests on this.
  Engine eng;
  std::uint64_t seen_direct = 0;
  std::uint64_t seen_nested = 0;
  std::uint64_t seen_uncaused = ~0ull;
  eng.set_cause(42);
  eng.schedule_at(TimePoint(10), [&] {
    seen_direct = eng.cause();
    // Nested event scheduled with no explicit token: inherits 42 from the
    // firing callback's re-established context.
    eng.schedule_after(Duration(5), [&] { seen_nested = eng.cause(); });
  });
  eng.set_cause(0);
  // Scheduled after the token was cleared: must observe "no cause", not a
  // stale 42 leaking across unrelated events.
  eng.schedule_at(TimePoint(20), [&] { seen_uncaused = eng.cause(); });
  eng.run();
  EXPECT_EQ(seen_direct, 42u);
  EXPECT_EQ(seen_nested, 42u);
  EXPECT_EQ(seen_uncaused, 0u);
  EXPECT_EQ(eng.cause(), 0u) << "dispatch must restore the scheduler token";
}

TEST(Resource, SerializesOverlappingReservations) {
  Resource r;
  EXPECT_EQ(r.reserve(TimePoint(0), Duration(10)), TimePoint(0));
  // Requested at t=5 but the resource is busy until 10.
  EXPECT_EQ(r.reserve(TimePoint(5), Duration(10)), TimePoint(10));
  // Requested well after it is free: starts on request.
  EXPECT_EQ(r.reserve(TimePoint(100), Duration(5)), TimePoint(100));
  EXPECT_EQ(r.busy_until(), TimePoint(105));
  EXPECT_EQ(r.total_busy(), Duration(25));
  EXPECT_EQ(r.uses(), 3u);
}

TEST(Time, TransferTimeRoundsUp) {
  // 1000 bytes at 1 GB/s = 1000 ns (+1 for the ceiling).
  EXPECT_EQ(transfer_time(1000, 1e9).count(), 1001);
  EXPECT_GT(transfer_time(1, 1e12).count(), 0);
}

TEST(Time, Formatting) {
  EXPECT_EQ(format_time(TimePoint(500)), "500ns");
  EXPECT_EQ(format_time(TimePoint(12'345)), "12.345us");
  EXPECT_EQ(format_time(TimePoint(12'345'678)), "12.346ms");
}
