// Point-to-point MPI semantics over the simulated fabric: blocking and
// nonblocking transfers, tag matching, wildcards, ordering, eager vs
// rendezvous, self-sends.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/communicator.hpp"
#include "mpi/world.hpp"

using namespace mvflow;
using namespace mvflow::mpi;

namespace {

WorldConfig two_ranks(flowctl::Scheme scheme = flowctl::Scheme::user_static,
                      int prepost = 32) {
  WorldConfig cfg;
  cfg.num_ranks = 2;
  cfg.flow.scheme = scheme;
  cfg.flow.prepost = prepost;
  return cfg;
}

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 131 + seed * 17) & 0xff);
  return v;
}

}  // namespace

TEST(Pt2Pt, BlockingSendRecvSmall) {
  World world(two_ranks());
  const auto data = pattern(64);
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(data, 1, 5);
    } else {
      std::vector<std::byte> buf(64);
      const Status st = comm.recv(buf, 0, 5);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 5);
      EXPECT_EQ(st.bytes, 64u);
      EXPECT_EQ(buf, data);
    }
  });
}

TEST(Pt2Pt, LargeMessageUsesRendezvous) {
  World world(two_ranks());
  const auto data = pattern(256 * 1024);
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(data, 1, 0);
    } else {
      std::vector<std::byte> buf(256 * 1024);
      const Status st = comm.recv(buf, 0, 0);
      EXPECT_EQ(st.bytes, 256u * 1024);
      EXPECT_EQ(buf, data);
    }
  });
  EXPECT_EQ(world.device(0).stats().rndv_started, 1u);
  // The only eager traffic is the finalize barrier's token.
  EXPECT_EQ(world.device(0).stats().eager_sent, 1u);
}

TEST(Pt2Pt, EagerThresholdBoundary) {
  World world(two_ranks());
  const auto max_eager = world.config().device.eager_max_payload();
  const auto small = pattern(max_eager, 3);
  const auto big = pattern(max_eager + 1, 4);
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(small, 1, 1);
      comm.send(big, 1, 2);
    } else {
      std::vector<std::byte> b1(max_eager), b2(max_eager + 1);
      comm.recv(b1, 0, 1);
      comm.recv(b2, 0, 2);
      EXPECT_EQ(b1, small);
      EXPECT_EQ(b2, big);
    }
  });
  // One user eager message plus the finalize barrier's token.
  EXPECT_EQ(world.device(0).stats().eager_sent, 2u);
  EXPECT_EQ(world.device(0).stats().rndv_started, 1u);
}

TEST(Pt2Pt, ZeroByteMessages) {
  World world(two_ranks());
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send({}, 1, 7);
    } else {
      const Status st = comm.recv({}, 0, 7);
      EXPECT_EQ(st.bytes, 0u);
    }
  });
}

TEST(Pt2Pt, UnexpectedMessagesMatchInArrivalOrder) {
  World world(two_ranks());
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        const double v = 10.0 + i;
        comm.send_n(&v, 1, 1, 3);  // same tag, five messages
      }
    } else {
      comm.compute(sim::microseconds(200));  // let them all arrive unexpected
      for (int i = 0; i < 5; ++i) {
        double v = 0;
        comm.recv_n(&v, 1, 0, 3);
        EXPECT_DOUBLE_EQ(v, 10.0 + i) << "FIFO order between a pair";
      }
    }
  });
}

TEST(Pt2Pt, TagSelectsAmongPending) {
  World world(two_ranks());
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::int64_t a = 111, b = 222;
      comm.send_n(&a, 1, 1, 10);
      comm.send_n(&b, 1, 1, 20);
    } else {
      comm.compute(sim::microseconds(100));
      std::int64_t v = 0;
      comm.recv_n(&v, 1, 0, 20);  // pick the second by tag
      EXPECT_EQ(v, 222);
      comm.recv_n(&v, 1, 0, 10);
      EXPECT_EQ(v, 111);
    }
  });
}

TEST(Pt2Pt, AnySourceAndAnyTagWildcards) {
  WorldConfig cfg;
  cfg.num_ranks = 3;
  World world(cfg);
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      int got_from[2] = {0, 0};
      for (int i = 0; i < 2; ++i) {
        std::int64_t v = 0;
        const Status st = comm.recv_n(&v, 1, kAnySource, kAnyTag);
        EXPECT_EQ(v, 1000 + st.source);
        got_from[st.source - 1] = 1;
      }
      EXPECT_EQ(got_from[0] + got_from[1], 2);
    } else {
      const std::int64_t v = 1000 + comm.rank();
      comm.send_n(&v, 1, 0, comm.rank());
    }
  });
}

TEST(Pt2Pt, NonblockingOverlap) {
  World world(two_ranks());
  const auto data = pattern(100000, 9);
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      auto req = comm.isend(data, 1, 0);
      comm.compute(sim::microseconds(50));  // overlap with the transfer
      comm.wait(req);
    } else {
      std::vector<std::byte> buf(100000);
      auto req = comm.irecv(buf, 0, 0);
      comm.compute(sim::microseconds(50));
      comm.wait(req);
      EXPECT_EQ(buf, data);
    }
  });
}

TEST(Pt2Pt, WaitAllManyInFlight) {
  World world(two_ranks(flowctl::Scheme::user_static, 64));
  constexpr int kN = 32;
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<std::int64_t> vals(kN);
      std::iota(vals.begin(), vals.end(), 0);
      std::vector<RequestPtr> reqs;
      for (int i = 0; i < kN; ++i)
        reqs.push_back(comm.isend_n(&vals[i], 1, 1, i));
      comm.wait_all(reqs);
    } else {
      std::vector<std::int64_t> out(kN, -1);
      std::vector<RequestPtr> reqs;
      for (int i = 0; i < kN; ++i)
        reqs.push_back(comm.irecv_n(&out[i], 1, 0, i));
      comm.wait_all(reqs);
      for (int i = 0; i < kN; ++i) EXPECT_EQ(out[i], i);
    }
  });
}

TEST(Pt2Pt, SendToSelfViaLoopback) {
  World world(two_ranks());
  world.run([&](Communicator& comm) {
    if (comm.rank() != 0) return;
    const auto data = pattern(512, 6);
    std::vector<std::byte> buf(512);
    auto rreq = comm.irecv(buf, 0, 42);
    auto sreq = comm.isend(data, 0, 42);
    comm.wait(sreq);
    comm.wait(rreq);
    EXPECT_EQ(buf, data);
  });
}

TEST(Pt2Pt, SendrecvExchangesBothWays) {
  World world(two_ranks());
  world.run([&](Communicator& comm) {
    const double mine = 1.5 + comm.rank();
    double theirs = 0;
    const Rank other = 1 - comm.rank();
    comm.sendrecv(std::as_bytes(std::span<const double>(&mine, 1)), other, 0,
                  std::as_writable_bytes(std::span<double>(&theirs, 1)), other, 0);
    EXPECT_DOUBLE_EQ(theirs, 1.5 + other);
  });
}

TEST(Pt2Pt, PingPongLatencyInPaperRegime) {
  World world(two_ranks());
  constexpr int kIters = 100;
  const auto elapsed = world.run([&](Communicator& comm) {
    std::vector<std::byte> buf(4);
    for (int i = 0; i < kIters; ++i) {
      if (comm.rank() == 0) {
        comm.send(buf, 1, 0);
        comm.recv(buf, 1, 0);
      } else {
        comm.recv(buf, 0, 0);
        comm.send(buf, 0, 0);
      }
    }
  });
  const double one_way_us = sim::to_us(elapsed) / (2.0 * kIters);
  // The paper's send/recv-based MPI: small-message latency in the
  // handful-to-teens of microseconds.
  EXPECT_GT(one_way_us, 3.0);
  EXPECT_LT(one_way_us, 25.0);
}

TEST(Pt2Pt, DeadlockDetected) {
  World world(two_ranks());
  EXPECT_THROW(world.run([&](Communicator& comm) {
                 std::vector<std::byte> buf(8);
                 comm.recv(buf, 1 - comm.rank(), 0);  // both recv, nobody sends
               }),
               DeadlockError);
}

TEST(Pt2Pt, TruncationIsAnError) {
  World world(two_ranks());
  EXPECT_THROW(world.run([&](Communicator& comm) {
                 if (comm.rank() == 0) {
                   const auto data = pattern(128);
                   comm.send(data, 1, 0);
                 } else {
                   std::vector<std::byte> tiny(16);
                   comm.recv(tiny, 0, 0);
                 }
               }),
               std::invalid_argument);
}
