// Connection-count scaling coverage (DESIGN.md §17): the flat lazy
// connection table must keep idle connections at literally zero progress
// cost, the dense QP slot table must survive reconnect churn without
// fragmenting, the incremental world aggregates must agree with a full
// per-connection re-sum, and the on-demand × checkpoint/restore ×
// auto-reconnect combination must stay bit-exact on the serial path at
// N >= 256 ranks (the sharded engine require()s on-demand off, so the
// serial path is the only one that ever sees this combination).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/run_config.hpp"
#include "ib/fabric.hpp"
#include "mpi/checkpoint.hpp"
#include "mpi/communicator.hpp"
#include "mpi/workload.hpp"
#include "mpi/world.hpp"
#include "sim/engine.hpp"

namespace {

using namespace mvflow;
namespace ckpt = mpi::ckpt;

mpi::WorldConfig big_world(int ranks) {
  mpi::WorldConfig cfg;
  cfg.run = exp::RunConfig{};  // tests never honour ambient env exports
  cfg.num_ranks = ranks;
  cfg.on_demand_connections = true;
  cfg.flow.scheme = flowctl::Scheme::user_dynamic;
  cfg.flow.prepost = 8;
  return cfg;
}

mpi::WorkloadSpec hotspot_spec(int actives, int rounds) {
  mpi::WorkloadSpec spec;
  spec.name = "hotspot";
  spec.params["actives"] = actives;
  spec.params["rounds"] = rounds;
  spec.params["bytes"] = 128;
  return spec;
}

}  // namespace

// ---- lazy connection table -------------------------------------------

// 256 configured ranks, 6 of them talking to a hub: only the 6 hub-side
// and 6 spoke-side connections may exist. Idle ranks never create an
// endpoint, so their per-poll progress cost is structurally zero — there
// is no connection to walk (the bench measures the same property as a
// wall-clock invariance; this is the exact structural form).
TEST(ConnScaling, HotspotAt256RanksOnlyActiveConnectionsExist) {
  constexpr int kRanks = 256;
  constexpr int kActives = 6;
  mpi::WorldConfig cfg = big_world(kRanks);
  cfg.run.audit = true;  // arms the aggregate cross-check in collect_stats
  mpi::World world(cfg);
  world.run(mpi::make_workload(hotspot_spec(kActives, /*rounds=*/12)));

  EXPECT_EQ(world.device(0).endpoint_count(), static_cast<std::size_t>(kActives));
  for (int r = 1; r <= kActives; ++r) {
    EXPECT_EQ(world.device(r).endpoint_count(), 1u) << "spoke " << r;
    EXPECT_TRUE(world.device(r).has_endpoint(0));
  }
  for (int r = kActives + 1; r < kRanks; ++r) {
    ASSERT_EQ(world.device(r).endpoint_count(), 0u) << "idle rank " << r;
  }

  const mpi::WorldStats stats = world.collect_stats();
  EXPECT_EQ(stats.connections.size(), static_cast<std::size_t>(2 * kActives));
  // 12 rounds x 6 spokes x 2 credited messages, plus control traffic.
  EXPECT_GE(stats.total_messages(), 12u * kActives * 2u);
}

// The cached world totals must be exactly the per-connection re-sum (the
// same identity MVFLOW_AUDIT checks inside collect_stats, restated here
// from the public report so the accessors themselves are covered).
TEST(ConnScaling, CachedTotalsMatchPerConnectionResum) {
  mpi::WorldConfig cfg;
  cfg.run = exp::RunConfig{};
  cfg.num_ranks = 8;
  cfg.flow.scheme = flowctl::Scheme::user_dynamic;
  cfg.flow.prepost = 4;  // small pool => backlog + ECM + growth traffic
  mpi::World world(cfg);
  mpi::WorkloadSpec spec;
  spec.name = "allpairs";
  spec.params["rounds"] = 12;
  spec.params["bytes"] = 512;
  world.run(mpi::make_workload(spec));

  const mpi::WorldStats stats = world.collect_stats();
  std::uint64_t ecm = 0, msgs = 0, backlog = 0, rnr = 0, retx = 0;
  int max_posted = 0;
  for (const mpi::ConnectionReport& c : stats.connections) {
    ecm += c.flow.ecm_sent;
    msgs += c.flow.total_messages();
    backlog += c.flow.backlog_entered;
    rnr += c.qp.rnr_naks_received;
    retx += c.qp.retransmitted_messages;
    max_posted = std::max(max_posted, c.flow.max_posted);
  }
  EXPECT_EQ(stats.total_ecm(), ecm);
  EXPECT_EQ(stats.total_messages(), msgs);
  EXPECT_EQ(stats.total_backlogged(), backlog);
  EXPECT_EQ(stats.total_rnr_naks(), rnr);
  EXPECT_EQ(stats.total_retransmitted_messages(), retx);
  EXPECT_EQ(stats.max_posted_buffers(), max_posted);
  EXPECT_GT(msgs, 0u);
}

// ---- dense QP slots under churn --------------------------------------

// Reconnect churn destroys and recreates QPs; the HCA's slot table must
// stay dense (freelist reuse, no growth past the peak live count) and the
// QPN index must resolve every survivor. The density invariant itself is
// a util::require inside create_qp/destroy_qp — this test drives enough
// churn to catch a fragmenting regression, then checks resolution.
TEST(ConnScaling, QpSlotsStayDenseAfterChurn) {
  sim::Engine eng;
  ib::Fabric fabric(eng, ib::FabricConfig{}, /*nodes=*/2);
  ib::Hca& hca = fabric.hca(0);
  auto cq = hca.create_cq();

  std::vector<ib::QpNumber> live;
  for (int i = 0; i < 8; ++i) live.push_back(hca.create_qp(cq, cq)->qpn());
  // Destroy from the middle, the front, and the back, then refill.
  for (const int victim : {4, 0, 5}) {
    hca.destroy_qp(live[static_cast<std::size_t>(victim)]);
    live.erase(live.begin() + victim);
  }
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i) live.push_back(hca.create_qp(cq, cq)->qpn());
    for (int i = 0; i < 3; ++i) {
      hca.destroy_qp(live[static_cast<std::size_t>(round % 2)]);
      live.erase(live.begin() + (round % 2));
    }
  }
  for (const ib::QpNumber qpn : live) {
    ib::QueuePair* qp = hca.find_qp(qpn);
    ASSERT_NE(qp, nullptr);
    EXPECT_EQ(qp->qpn(), qpn);
  }
  // A destroyed QPN must resolve to nothing, not to a slot reuser.
  const ib::QpNumber gone = live.back();
  hca.destroy_qp(gone);
  EXPECT_EQ(hca.find_qp(gone), nullptr);
}

// ---- on-demand x checkpoint/restore x auto-reconnect at N >= 256 ------

// The full combination at scale, serial path: a 256-rank on-demand world
// under packet loss with auto-reconnect, snapshotted mid-run, killed, and
// resumed. The resumed run must match the uninterrupted faulted run
// bit-for-bit (metrics registry JSON equality), proving the lazy table,
// the QPN index rebind on reconnect, and the incremental aggregates all
// survive capture/replay at a connection count the eager path never sees.
TEST(ConnScaling, OnDemandCheckpointReconnectAt256Ranks) {
  constexpr int kRanks = 256;
  mpi::WorldConfig cfg = big_world(kRanks);
  cfg.fabric.transport_timeout = sim::microseconds(30);
  cfg.fabric.transport_retry_limit = 2;
  cfg.fabric.fault.loss_prob = 0.005;  // background retransmit pressure
  cfg.fabric.fault.seed = 0xc0ffee42;
  // Deterministic reconnect trigger: spoke 1 goes dark long enough to
  // exhaust the transport retries, so auto-reconnect must rebuild the pair.
  ib::LinkFlap flap;
  flap.node = 1;
  flap.down = sim::TimePoint(sim::microseconds(60));
  flap.up = sim::TimePoint(sim::milliseconds(2));
  cfg.fabric.fault.flaps.push_back(flap);
  cfg.device.auto_reconnect = true;

  const mpi::WorkloadSpec spec = hotspot_spec(/*actives=*/6, /*rounds=*/40);

  const ckpt::RunResult ref = ckpt::run_reference(cfg, spec);
  const std::uint64_t total =
      static_cast<std::uint64_t>(ref.metrics.get("engine.executed", 0.0));
  ASSERT_GT(total, 1000u);
  EXPECT_GT(ref.stats.fabric.lost_packets, 0u);
  std::uint64_t reconnects = 0;
  for (const mpi::DeviceStats& d : ref.stats.devices) reconnects += d.reconnects;
  EXPECT_GT(reconnects, 0u) << "fault params too mild to force a QP error";

  ckpt::RestoreOptions crash;
  crash.checkpoint_path = ::testing::TempDir() + "mvflow_conn_scaling_256.ck";
  crash.checkpoint_events = {total / 3};
  crash.kill_at = (2 * total) / 3;
  const ckpt::RunResult crashed = ckpt::run_reference(cfg, spec, crash);
  EXPECT_TRUE(crashed.aborted);

  const ckpt::RunResult resumed =
      ckpt::restore_run(ckpt::read_snapshot(crash.checkpoint_path));
  EXPECT_FALSE(resumed.aborted);
  EXPECT_EQ(ref.elapsed.count(), resumed.elapsed.count());
  EXPECT_EQ(ref.metrics.to_json(), resumed.metrics.to_json());
}
