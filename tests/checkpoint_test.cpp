// Checkpoint/restart coverage (DESIGN.md §13): container round-trip,
// crash-safety negatives (truncated / bit-flipped / wrong-version /
// bad-magic files must be rejected with a diagnostic, never half-applied),
// the golden checkpoint-determinism property (uninterrupted run ==
// checkpoint-at-k + restore, in-process and across processes via the
// mvflow_ckpt binary), the checkpoint-fork sweep, the churn
// kill->restore->reconnect path, and the restore audit's divergence
// detection.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "exp/run_config.hpp"
#include "mpi/checkpoint.hpp"
#include "mpi/workload.hpp"
#include "mpi/world.hpp"
#include "util/serial.hpp"

namespace {

using namespace mvflow;
namespace ckpt = mpi::ckpt;
using util::serial::SnapshotError;

std::string tmp_path(const std::string& leaf) {
  return ::testing::TempDir() + "mvflow_ckpt_test_" + leaf;
}

mpi::WorkloadSpec pingpong_spec(std::int64_t iters = 120) {
  mpi::WorkloadSpec spec;
  spec.name = "pingpong";
  spec.params["iters"] = iters;
  spec.params["bytes"] = 64;
  return spec;
}

mpi::WorldConfig small_world(int ranks = 2) {
  mpi::WorldConfig cfg;
  cfg.run = exp::RunConfig{};  // tests never honour ambient env exports
  cfg.num_ranks = ranks;
  cfg.flow.scheme = flowctl::Scheme::user_dynamic;
  cfg.flow.prepost = 10;
  return cfg;
}

std::uint64_t executed_events(const obs::Snapshot& m) {
  return static_cast<std::uint64_t>(m.get("engine.executed", 0.0));
}

/// Two runs are bit-identical iff the flattened metrics registries (every
/// counter, stat, histogram bucket) serialize to the same JSON text.
void expect_identical(const ckpt::RunResult& a, const ckpt::RunResult& b) {
  EXPECT_EQ(a.elapsed.count(), b.elapsed.count());
  EXPECT_EQ(a.metrics.to_json(), b.metrics.to_json());
}

/// Write one checkpoint from a from-scratch run and return its path.
std::string write_checkpoint(const mpi::WorldConfig& cfg,
                             const mpi::WorkloadSpec& spec, std::uint64_t k,
                             const std::string& leaf) {
  const std::string path = tmp_path(leaf);
  ckpt::RestoreOptions opts;
  opts.checkpoint_path = path;
  opts.checkpoint_events = {k};
  ckpt::run_reference(cfg, spec, opts);
  return path;
}

std::vector<std::byte> read_bytes(const std::string& path) {
  return util::serial::read_file(path);
}

void write_bytes(const std::string& path, const std::vector<std::byte>& b) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(b.data()),
          static_cast<std::streamsize>(b.size()));
}

// ---- container round-trip --------------------------------------------

TEST(CheckpointContainer, EncodeDecodeRoundTrip) {
  const std::string path =
      write_checkpoint(small_world(), pingpong_spec(), 400, "roundtrip.ck");
  const std::vector<std::byte> file = read_bytes(path);
  const ckpt::WorldSnapshot snap = ckpt::decode(file);

  EXPECT_EQ(snap.workload.name, "pingpong");
  EXPECT_EQ(snap.workload.param("iters", 0), 120);
  EXPECT_GE(snap.barrier, 400u);
  EXPECT_EQ(snap.config.num_ranks, 2);
  EXPECT_EQ(snap.config.flow.scheme, flowctl::Scheme::user_dynamic);
  EXPECT_EQ(snap.state.size(), 5u);  // engine/fabric/devices/metrics/trace

  // decode() must be lossless: re-encoding reproduces the file byte-exactly.
  EXPECT_EQ(ckpt::encode(snap), file);
}

TEST(CheckpointContainer, InspectablePerSectionNames) {
  EXPECT_EQ(ckpt::section_name(ckpt::kSecEngine), "engine");
  EXPECT_EQ(ckpt::section_name(ckpt::kSecDevices), "devices");
  EXPECT_NE(ckpt::section_name(0xdeadbeef).find("unknown"),
            std::string::npos);
}

// ---- crash-safety negatives ------------------------------------------

class CheckpointCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = write_checkpoint(small_world(), pingpong_spec(), 300,
                             "corrupt.ck");
    blob_ = read_bytes(path_);
    ASSERT_GT(blob_.size(), 64u);
  }

  /// Expect read_snapshot(path) to throw a SnapshotError whose message
  /// contains `needle` — the "clear diagnostic" part of the contract.
  void expect_rejected(const std::string& mutated_leaf,
                       const std::vector<std::byte>& bytes,
                       const std::string& needle) {
    const std::string bad = tmp_path(mutated_leaf);
    write_bytes(bad, bytes);
    try {
      ckpt::read_snapshot(bad);
      FAIL() << "corrupted snapshot was accepted";
    } catch (const SnapshotError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "diagnostic was: " << e.what();
    }
  }

  std::string path_;
  std::vector<std::byte> blob_;
};

TEST_F(CheckpointCorruption, TruncatedFileRejected) {
  std::vector<std::byte> cut(blob_.begin(),
                             blob_.begin() + blob_.size() / 2);
  expect_rejected("truncated.ck", cut, "payload");
}

TEST_F(CheckpointCorruption, TruncatedHeaderRejected) {
  std::vector<std::byte> cut(blob_.begin(), blob_.begin() + 10);
  expect_rejected("headless.ck", cut, "header");
}

TEST_F(CheckpointCorruption, BitFlipRejected) {
  std::vector<std::byte> flipped = blob_;
  flipped[flipped.size() / 2] ^= std::byte{0x10};
  expect_rejected("bitflip.ck", flipped, "CRC");
}

TEST_F(CheckpointCorruption, WrongVersionRejected) {
  std::vector<std::byte> wrong = blob_;
  wrong[8] = std::byte{0x7f};  // version u32 follows the 8-byte magic
  expect_rejected("version.ck", wrong, "version");
}

TEST_F(CheckpointCorruption, BadMagicRejected) {
  std::vector<std::byte> wrong = blob_;
  wrong[0] = std::byte{'X'};
  expect_rejected("magic.ck", wrong, "magic");
}

TEST_F(CheckpointCorruption, MissingFileRejected) {
  EXPECT_THROW(ckpt::read_snapshot(tmp_path("does_not_exist.ck")),
               SnapshotError);
}

// ---- determinism ------------------------------------------------------

// Arming checkpoints must not perturb the run it observes: the world with
// a checkpoint watchpoint finishes bit-identical to one without.
TEST(CheckpointDeterminism, CaptureIsNonInvasive) {
  const ckpt::RunResult plain =
      ckpt::run_reference(small_world(), pingpong_spec());
  ckpt::RestoreOptions opts;
  opts.checkpoint_path = tmp_path("noninvasive.ck");
  opts.checkpoint_events = {500};
  const ckpt::RunResult observed =
      ckpt::run_reference(small_world(), pingpong_spec(), opts);
  expect_identical(plain, observed);
}

// The tentpole property, in-process: for several split points k, the run
// that checkpoints at k and the fresh world restored from that snapshot
// finish with identical elapsed time and identical metrics registries.
TEST(CheckpointDeterminism, RestoreBitIdenticalAtSeveralK) {
  const ckpt::RunResult ref =
      ckpt::run_reference(small_world(), pingpong_spec());
  const std::uint64_t total = executed_events(ref.metrics);
  ASSERT_GT(total, 100u);

  for (const std::uint64_t k :
       {total / 5, total / 2, (total * 4) / 5}) {
    const std::string path = write_checkpoint(
        small_world(), pingpong_spec(), k, "split_" + std::to_string(k));
    const ckpt::WorldSnapshot snap = ckpt::read_snapshot(path);
    EXPECT_GE(snap.barrier, k);
    const ckpt::RunResult resumed = ckpt::restore_run(snap);
    expect_identical(ref, resumed);
  }
}

// Same property with the flight recorder armed: the trace ring is part of
// the audited state, so replay must reproduce it event-for-event.
TEST(CheckpointDeterminism, RestoreWithTraceArmed) {
  mpi::WorldConfig cfg = small_world();
  cfg.run.trace_path = "/dev/null";  // arms the recorder via the config path

  ckpt::RestoreOptions opts;
  opts.checkpoint_path = tmp_path("traced.ck");
  opts.checkpoint_events = {600};
  const ckpt::RunResult ref =
      ckpt::run_reference(cfg, pingpong_spec(), opts);

  const ckpt::WorldSnapshot snap = ckpt::read_snapshot(opts.checkpoint_path);
  EXPECT_TRUE(snap.trace_armed);
  const ckpt::RunResult resumed = ckpt::restore_run(snap);
  EXPECT_EQ(ref.elapsed.count(), resumed.elapsed.count());
  EXPECT_EQ(ref.metrics.to_json(), resumed.metrics.to_json());
}

// A chain of checkpoints: restore from k1 while writing k2, then restore
// k2 — both generations must land on the reference outcome.
TEST(CheckpointDeterminism, CheckpointOfARestoredRun) {
  const ckpt::RunResult ref =
      ckpt::run_reference(small_world(), pingpong_spec());
  const std::uint64_t total = executed_events(ref.metrics);

  const std::string first = write_checkpoint(small_world(), pingpong_spec(),
                                             total / 4, "chain1.ck");
  ckpt::RestoreOptions opts;
  opts.checkpoint_path = tmp_path("chain2.ck");
  opts.checkpoint_events = {(total * 3) / 4};
  const ckpt::RunResult mid =
      ckpt::restore_run(ckpt::read_snapshot(first), opts);
  expect_identical(ref, mid);

  const ckpt::RunResult last =
      ckpt::restore_run(ckpt::read_snapshot(opts.checkpoint_path));
  expect_identical(ref, last);
}

// ---- audit divergence -------------------------------------------------

// A snapshot whose state bytes do not match the replay must be refused
// with a diagnostic naming the diverging section. Tampering with a state
// section in memory (the container CRC only guards the file) is the
// cheapest way to force that divergence deliberately.
TEST(CheckpointAudit, TamperedStateSectionIsNamedAndRejected) {
  const std::string path = write_checkpoint(small_world(), pingpong_spec(),
                                            500, "tamper.ck");
  ckpt::WorldSnapshot snap = ckpt::read_snapshot(path);
  for (auto& s : snap.state) {
    if (s.tag != ckpt::kSecDevices) continue;
    ASSERT_FALSE(s.bytes.empty());
    s.bytes[s.bytes.size() / 2] ^= std::byte{0x01};
  }
  try {
    ckpt::restore_run(snap);
    FAIL() << "diverged restore was accepted";
  } catch (const SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("devices"), std::string::npos) << what;
    EXPECT_NE(what.find("diverged"), std::string::npos) << what;
  }
}

// A barrier beyond the run's total events can never be reached — the
// restore must fail loudly, not return a half-replayed world.
TEST(CheckpointAudit, UnreachableBarrierRejected) {
  const std::string path = write_checkpoint(small_world(), pingpong_spec(),
                                            400, "unreachable.ck");
  ckpt::WorldSnapshot snap = ckpt::read_snapshot(path);
  snap.barrier = 100000000;  // far past the workload's lifetime
  EXPECT_THROW(ckpt::restore_run(snap), SnapshotError);
}

// An unknown workload name must be rejected with the registry listing.
TEST(CheckpointAudit, UnknownWorkloadRejected) {
  const std::string path = write_checkpoint(small_world(), pingpong_spec(),
                                            400, "unknown_wl.ck");
  ckpt::WorldSnapshot snap = ckpt::read_snapshot(path);
  snap.workload.name = "no_such_workload";
  try {
    ckpt::restore_run(snap);
    FAIL() << "unknown workload was accepted";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("no_such_workload"),
              std::string::npos);
  }
}

// ---- fork sweep -------------------------------------------------------

// One warm snapshot, three flow-control tunings branched at the barrier.
// Results must be identical whether the branches run serially or on four
// SweepRunner threads (job-order contract), and retuning must actually
// change the downstream outcome for at least one branch.
TEST(CheckpointFork, ThreeBranchesSerialEqualsParallel) {
  mpi::WorldConfig cfg = small_world();
  cfg.flow.ecm_threshold = 5;
  cfg.flow.growth_step = 1;
  mpi::WorkloadSpec spec;
  spec.name = "bw";
  spec.params["bytes"] = 256;
  spec.params["window"] = 24;
  spec.params["reps"] = 30;

  const ckpt::RunResult ref = ckpt::run_reference(cfg, spec);
  const std::uint64_t warm = executed_events(ref.metrics) / 4;
  const std::string path =
      write_checkpoint(cfg, spec, warm, "fork.ck");

  std::vector<ckpt::ForkBranch> branches(3);
  branches[0].label = "baseline";
  branches[1].label = "eager-growth";
  branches[1].tune.ecm_threshold = 1;
  branches[1].tune.growth_step = 8;
  branches[2].label = "exp-growth";
  branches[2].tune.exponential_growth = true;
  branches[2].tune.ecm_threshold = 2;

  const auto serial = ckpt::fork_sweep(path, branches, /*jobs=*/1);
  const auto parallel = ckpt::fork_sweep(path, branches, /*jobs=*/4);
  ASSERT_EQ(serial.size(), 3u);
  ASSERT_EQ(parallel.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(serial[i].label, branches[i].label);
    EXPECT_EQ(serial[i].label, parallel[i].label);
    EXPECT_EQ(serial[i].elapsed.count(), parallel[i].elapsed.count());
    EXPECT_EQ(serial[i].metrics.to_json(), parallel[i].metrics.to_json());
  }
  // The untouched branch reproduces the uninterrupted reference...
  EXPECT_EQ(serial[0].elapsed.count(), ref.elapsed.count());
  EXPECT_EQ(serial[0].metrics.to_json(), ref.metrics.to_json());
  // ...and the retuned branches genuinely diverge from it.
  EXPECT_NE(serial[1].metrics.to_json(), serial[0].metrics.to_json());
}

// ---- churn ------------------------------------------------------------

// Mid-flight kill, then restore from the snapshot written before the
// crash: the resumed world must complete and match the uninterrupted
// faulted run bit-for-bit, with auto-reconnect healing any QP errors.
TEST(CheckpointChurn, KillRestoreMatchesUninterrupted) {
  mpi::WorldConfig cfg = small_world(3);
  cfg.fabric.transport_timeout = sim::microseconds(30);
  cfg.fabric.transport_retry_limit = 3;
  cfg.fabric.fault.loss_prob = 0.005;
  cfg.fabric.fault.seed = 0xdeadfa11;
  cfg.device.auto_reconnect = true;

  mpi::WorkloadSpec spec;
  spec.name = "soak";
  spec.params["rounds"] = 48;
  spec.params["bytes"] = 256;

  const ckpt::RunResult ref = ckpt::run_reference(cfg, spec);
  const std::uint64_t total = executed_events(ref.metrics);
  ASSERT_GT(total, 1000u);

  // Crash run: snapshot at 1/3, die at 2/3.
  ckpt::RestoreOptions crash;
  crash.checkpoint_path = tmp_path("churn.ck");
  crash.checkpoint_events = {total / 3};
  crash.kill_at = (2 * total) / 3;
  const ckpt::RunResult crashed = ckpt::run_reference(cfg, spec, crash);
  EXPECT_TRUE(crashed.aborted);
  EXPECT_LT(executed_events(crashed.metrics), total);

  const ckpt::RunResult resumed =
      ckpt::restore_run(ckpt::read_snapshot(crash.checkpoint_path));
  EXPECT_FALSE(resumed.aborted);
  expect_identical(ref, resumed);
  EXPECT_GT(resumed.stats.fabric.lost_packets, 0u);
}

// ---- env plumbing -----------------------------------------------------

TEST(CheckpointEnv, ParseCheckpointRequest) {
  exp::RunConfig rc;
  EXPECT_TRUE(rc.parse_checkpoint("/tmp/x.ck@100"));
  EXPECT_EQ(rc.checkpoint_path, "/tmp/x.ck");
  ASSERT_EQ(rc.checkpoint_events.size(), 1u);
  EXPECT_EQ(rc.checkpoint_events[0], 100u);

  EXPECT_TRUE(rc.parse_checkpoint("/tmp/y.ck@10,20,30"));
  EXPECT_EQ(rc.checkpoint_events.size(), 3u);
  EXPECT_EQ(rc.checkpoint_events[2], 30u);

  EXPECT_FALSE(rc.parse_checkpoint("no-at-sign"));
  EXPECT_FALSE(rc.parse_checkpoint("/tmp/z.ck@"));
  EXPECT_FALSE(rc.parse_checkpoint("/tmp/z.ck@12,junk"));
  EXPECT_TRUE(rc.checkpoint_path.empty());
}

TEST(CheckpointEnv, WorkloadRegistry) {
  EXPECT_TRUE(mpi::workload_registered("pingpong"));
  EXPECT_TRUE(mpi::workload_registered("soak"));
  EXPECT_FALSE(mpi::workload_registered("nope"));
  EXPECT_THROW(mpi::make_workload(mpi::WorkloadSpec{"nope", {}}),
               SnapshotError);
}

// ---- sharded worlds (DESIGN.md §14) ------------------------------------
//
// Parallel worlds checkpoint at window barriers — the only instants where
// every shard is quiescent and cross-shard state is fully applied. The
// snapshot carries the engine mode (engine_threads / scheduler travel in
// the config section), the engine section holds one sub-state per shard,
// and — the worker-count-invariance property — a snapshot captured under
// one worker count must restore bit-identically under any other, because
// the worker count never influences the event order.

mpi::WorldConfig sharded_small_world(int threads,
                                     int scheduler = -1) {
  mpi::WorldConfig cfg = small_world(/*ranks=*/4);
  cfg.engine_threads = threads;
  if (scheduler >= 0) cfg.scheduler = static_cast<sim::SchedKind>(scheduler);
  return cfg;
}

mpi::WorkloadSpec allpairs_spec() {
  mpi::WorkloadSpec spec;
  spec.name = "allpairs";
  spec.params["rounds"] = 5;
  spec.params["bytes"] = 1500;
  return spec;
}

TEST(CheckpointSharded, RoundTripCarriesEngineMode) {
  const std::string path = write_checkpoint(
      sharded_small_world(2), allpairs_spec(), 250, "sharded_mode.ck");
  const ckpt::WorldSnapshot snap = ckpt::read_snapshot(path);
  EXPECT_EQ(snap.config.engine_threads, 2);
  EXPECT_EQ(snap.config.num_ranks, 4);
  // Barrier-aligned capture: at least the requested count, not exactly it.
  EXPECT_GE(snap.barrier, 250u);
}

TEST(CheckpointSharded, RestoreAuditPasses) {
  const std::string path = write_checkpoint(
      sharded_small_world(2), allpairs_spec(), 250, "sharded_restore.ck");
  const ckpt::WorldSnapshot snap = ckpt::read_snapshot(path);
  const ckpt::RunResult restored = ckpt::restore_run(snap);
  const ckpt::RunResult reference =
      ckpt::run_reference(sharded_small_world(2), allpairs_spec());
  expect_identical(restored, reference);
}

TEST(CheckpointSharded, RestoreAtDifferentWorkerCountIsBitIdentical) {
  // Captured at 2 workers, restored at 1, 4 and 8: the audit replays the
  // workload under the new worker count and byte-compares every section
  // against the snapshot — passing proves the snapshot bytes are a pure
  // function of the world, not of the thread schedule that produced them.
  const std::string path = write_checkpoint(
      sharded_small_world(2), allpairs_spec(), 250, "sharded_workers.ck");
  const ckpt::RunResult reference =
      ckpt::run_reference(sharded_small_world(2), allpairs_spec());
  for (const int workers : {1, 4, 8}) {
    ckpt::WorldSnapshot snap = ckpt::read_snapshot(path);
    snap.config.engine_threads = workers;
    const ckpt::RunResult restored = ckpt::restore_run(snap);
    expect_identical(restored, reference);
  }
}

TEST(CheckpointSharded, SchedulerAgnosticAcrossRestore) {
  // Snapshot under heap4, audit the replay under the calendar queue: the
  // engine encoding is scheduler-agnostic by design, so this must pass.
  const std::string path = write_checkpoint(
      sharded_small_world(2, static_cast<int>(sim::SchedKind::heap4)),
      allpairs_spec(), 250, "sharded_sched.ck");
  ckpt::WorldSnapshot snap = ckpt::read_snapshot(path);
  snap.config.scheduler = sim::SchedKind::calendar;
  const ckpt::RunResult restored = ckpt::restore_run(snap);
  const ckpt::RunResult reference = ckpt::run_reference(
      sharded_small_world(2, static_cast<int>(sim::SchedKind::calendar)),
      allpairs_spec());
  expect_identical(restored, reference);
}

TEST(CheckpointSharded, ChurnKillRestoreResumes) {
  // The churn shape in a parallel world: seed run killed mid-flight at a
  // barrier past its checkpoint, then restored and run to completion —
  // matching the uninterrupted sharded run bit for bit.
  const std::string path = tmp_path("sharded_churn.ck");
  ckpt::RestoreOptions seed;
  seed.checkpoint_path = path;
  seed.checkpoint_events = {250};
  seed.kill_at = 450;
  const ckpt::RunResult killed =
      ckpt::run_reference(sharded_small_world(2), allpairs_spec(), seed);
  EXPECT_TRUE(killed.aborted);

  const ckpt::RunResult resumed =
      ckpt::restore_run(ckpt::read_snapshot(path));
  const ckpt::RunResult reference =
      ckpt::run_reference(sharded_small_world(2), allpairs_spec());
  expect_identical(resumed, reference);
}

// ---- fresh process ----------------------------------------------------

#ifdef MVFLOW_CKPT_BIN

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::string all((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  return all;
}

std::string result_line(const std::string& text) {
  std::size_t pos = text.find("RESULT ");
  if (pos == std::string::npos) return "";
  const std::size_t end = text.find('\n', pos);
  return text.substr(pos, end - pos);
}

int run_cli(const std::string& args, const std::string& out_path) {
  const std::string cmd =
      std::string(MVFLOW_CKPT_BIN) + " " + args + " > " + out_path + " 2>&1";
  const int rc = std::system(cmd.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

// The golden cross-process property: a run checkpointed at k in one
// process and restored in a *different* process prints the exact same
// RESULT line (events, elapsed, metrics fingerprint) as the uninterrupted
// run. This is restore-in-a-fresh-process, end to end.
TEST(CheckpointProcess, RestoreInFreshProcessIsBitIdentical) {
  const std::string ck = tmp_path("proc.ck");
  const std::string ref_out = tmp_path("proc_ref.txt");
  const std::string res_out = tmp_path("proc_res.txt");

  ASSERT_EQ(run_cli("run --workload=pingpong --iters=150 --bytes=32 "
                    "--checkpoint=" + ck + "@800",
                    ref_out), 0);
  const std::string ref_line = result_line(slurp(ref_out));
  ASSERT_FALSE(ref_line.empty());

  ASSERT_EQ(run_cli("restore " + ck, res_out), 0);
  const std::string res_line = result_line(slurp(res_out));
  EXPECT_EQ(ref_line, res_line) << "restore output:\n" << slurp(res_out);
}

// Corrupt files must be refused by the CLI with exit code 3 and a
// SNAPSHOT_ERROR diagnostic — the restore path never limps onward.
TEST(CheckpointProcess, CliRejectsCorruptSnapshotWithExit3) {
  const std::string ck = tmp_path("proc_bad.ck");
  const std::string out = tmp_path("proc_bad.txt");
  ASSERT_EQ(run_cli("run --workload=pingpong --iters=60 --checkpoint=" + ck +
                    "@300", out), 0);

  std::vector<std::byte> blob = util::serial::read_file(ck);
  blob[blob.size() - 3] ^= std::byte{0x40};
  {
    std::ofstream f(ck, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  }
  EXPECT_EQ(run_cli("restore " + ck, out), 3);
  EXPECT_NE(slurp(out).find("SNAPSHOT_ERROR"), std::string::npos);
}

#endif  // MVFLOW_CKPT_BIN

}  // namespace
