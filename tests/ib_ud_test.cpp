// Unreliable Datagram transport: connectionless sends, silent drops, MTU
// limit — the contrast with RC that motivates the paper's flow-control
// study (and its §8 future work on other transport services).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "ib/fabric.hpp"
#include "sim/engine.hpp"

using namespace mvflow::ib;
using namespace mvflow::sim;

namespace {

class UdFixture : public ::testing::Test {
 protected:
  UdFixture() : fabric_(engine_, FabricConfig{}, 3) {
    for (int n = 0; n < 3; ++n) {
      cq_[n] = fabric_.hca(n).create_cq();
      qp_[n] = fabric_.hca(n).create_qp(cq_[n], cq_[n], QpType::ud);
      buf_[n].assign(1 << 16, std::byte{0});
      mr_[n] = fabric_.hca(n).register_memory(
          buf_[n], Access::local_read | Access::local_write);
    }
  }

  void post_recv(int node, std::uint64_t wr_id = 100) {
    RecvWr wr;
    wr.wr_id = wr_id;
    wr.local_addr = buf_[node].data();
    wr.length = 4096;
    wr.lkey = mr_[node].lkey;
    qp_[node]->post_recv(wr);
  }

  void send(int from, int to, std::uint32_t len, std::uint64_t wr_id = 1) {
    for (std::uint32_t i = 0; i < len; ++i)
      buf_[from][i] = static_cast<std::byte>(i * 7 + from);
    SendWr wr;
    wr.wr_id = wr_id;
    wr.local_addr = buf_[from].data();
    wr.length = len;
    wr.lkey = mr_[from].lkey;
    wr.dest_node = to;
    wr.dest_qpn = qp_[to]->qpn();
    qp_[from]->post_send(wr);
  }

  Engine engine_;
  Fabric fabric_;
  std::shared_ptr<CompletionQueue> cq_[3];
  std::shared_ptr<QueuePair> qp_[3];
  std::vector<std::byte> buf_[3];
  MemoryRegionHandle mr_[3];
};

}  // namespace

TEST_F(UdFixture, ConnectionlessDelivery) {
  EXPECT_TRUE(qp_[0]->connected()) << "UD QPs are usable without a connection";
  post_recv(1);
  send(0, 1, 256);
  engine_.run();

  auto wc = cq_[1]->poll();
  ASSERT_TRUE(wc.has_value());
  EXPECT_TRUE(wc->ok());
  EXPECT_EQ(wc->byte_len, 256u);
  EXPECT_EQ(wc->src_qp, qp_[0]->qpn());
  EXPECT_EQ(std::memcmp(buf_[1].data(), buf_[0].data(), 256), 0);
  // Sender got a local completion (no ACK exists on UD).
  auto swc = cq_[0]->poll();
  ASSERT_TRUE(swc.has_value());
  EXPECT_TRUE(swc->ok());
}

TEST_F(UdFixture, SenderMayReuseBufferAfterPostCompletion) {
  // The UD send completion is generated at post time, which transfers
  // buffer ownership back to the app immediately — so bytes scribbled over
  // the source buffer before the datagram is delivered must not leak into
  // the receiver. (Delivery happens in a later engine event; the payload
  // is snapshotted at post time.)
  post_recv(1);
  send(0, 1, 256);
  std::vector<std::byte> expected(buf_[0].begin(), buf_[0].begin() + 256);
  ASSERT_TRUE(cq_[0]->poll().has_value()) << "UD send completes at post";
  std::fill(buf_[0].begin(), buf_[0].begin() + 256, std::byte{0xEE});
  engine_.run();

  auto wc = cq_[1]->poll();
  ASSERT_TRUE(wc.has_value());
  EXPECT_TRUE(wc->ok());
  EXPECT_EQ(std::memcmp(buf_[1].data(), expected.data(), 256), 0)
      << "receiver must see the bytes as posted, not the overwrite";
}

TEST_F(UdFixture, OneQpTalksToManyPeers) {
  post_recv(1);
  post_recv(2);
  send(0, 1, 64, 11);
  send(0, 2, 64, 12);
  engine_.run();
  EXPECT_FALSE(cq_[1]->empty());
  EXPECT_FALSE(cq_[2]->empty());
}

TEST_F(UdFixture, NoBufferMeansSilentDropNotRetry) {
  send(0, 1, 128);  // nothing posted at node 1
  engine_.run();
  EXPECT_TRUE(cq_[1]->empty());
  EXPECT_EQ(qp_[1]->stats().packets_dropped, 1u);
  EXPECT_EQ(qp_[1]->stats().rnr_naks_sent, 0u)
      << "UD has no RNR NAK: drops are silent (contrast with RC)";
  EXPECT_EQ(qp_[0]->stats().retransmitted_messages, 0u);
  // A later receive does NOT resurrect the datagram.
  post_recv(1);
  engine_.run();
  EXPECT_TRUE(cq_[1]->empty());
}

TEST_F(UdFixture, MtuLimitEnforced) {
  post_recv(1);
  EXPECT_THROW(send(0, 1, fabric_.config().mtu + 1), std::invalid_argument);
  EXPECT_NO_THROW(send(0, 1, fabric_.config().mtu > 4096 ? 4096 : fabric_.config().mtu));
}

TEST_F(UdFixture, DestinationRequired) {
  SendWr wr;
  wr.local_addr = buf_[0].data();
  wr.length = 8;
  wr.lkey = mr_[0].lkey;
  EXPECT_THROW(qp_[0]->post_send(wr), std::invalid_argument);  // dest_node=-1
}

TEST_F(UdFixture, BadLkeyCompletesWithErrorWithoutKillingQp) {
  SendWr wr;
  wr.wr_id = 9;
  wr.local_addr = buf_[0].data();
  wr.length = 8;
  wr.lkey = mr_[0].lkey + 999;
  wr.dest_node = 1;
  wr.dest_qpn = qp_[1]->qpn();
  qp_[0]->post_send(wr);
  auto wc = cq_[0]->poll();
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->status, WcStatus::local_protection_error);
  // UD QP keeps working afterwards.
  post_recv(1);
  send(0, 1, 16);
  engine_.run();
  EXPECT_FALSE(cq_[1]->empty());
}

TEST_F(UdFixture, TruncationErrorsTheReceive) {
  RecvWr wr;
  wr.wr_id = 55;
  wr.local_addr = buf_[1].data();
  wr.length = 32;  // too small
  wr.lkey = mr_[1].lkey;
  qp_[1]->post_recv(wr);
  send(0, 1, 128);
  engine_.run();
  auto wc = cq_[1]->poll();
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->status, WcStatus::length_error);
}
