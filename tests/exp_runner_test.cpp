// exp::SweepRunner: the thread-pool sweep executor and the de-globalized
// state it depends on. Covers the runner's ordering/exception contract, the
// -j1 inline path, concurrent Worlds exercising the sharded live-engine
// registry and world-owned flight recorders, and the headline determinism
// claim: reduced figure sweeps and seeded fault-injection sweeps are
// byte/count-identical at every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bw_figure.hpp"
#include "exp/run_config.hpp"
#include "exp/runner.hpp"
#include "fig_latency.hpp"
#include "mpi/communicator.hpp"
#include "mpi/world.hpp"
#include "sim/engine.hpp"

namespace exp = mvflow::exp;
namespace mpi = mvflow::mpi;
namespace obs = mvflow::obs;
namespace sim = mvflow::sim;

namespace {

/// Spin until `arrived` reaches `expected`: forces two pool jobs to overlap
/// in time so the cross-thread isolation tests actually run concurrently.
void rendezvous(std::atomic<int>& arrived, int expected) {
  arrived.fetch_add(1);
  while (arrived.load() < expected) std::this_thread::yield();
}

mpi::WorldConfig pingpong_config() {
  mpi::WorldConfig cfg;
  cfg.num_ranks = 2;
  cfg.flow.scheme = mvflow::flowctl::Scheme::user_static;
  cfg.flow.prepost = 16;
  cfg.run = cfg.run.quiet();
  return cfg;
}

/// One deterministic two-rank ping-pong world; returns simulated elapsed
/// ns. When `posted` is given, the world's recorder is enabled and the
/// msg_posted count written back.
long long pingpong_elapsed_ns(int iters, std::uint64_t* posted = nullptr) {
  mpi::World world(pingpong_config());
  if (posted != nullptr) world.recorder().enable(1u << 12);
  const auto elapsed = world.run([iters](mpi::Communicator& comm) {
    std::byte buf[64];
    std::memset(buf, 0, sizeof buf);
    for (int i = 0; i < iters; ++i) {
      if (comm.rank() == 0) {
        comm.send(buf, 1, 0);
        comm.recv(buf, 1, 0);
      } else {
        comm.recv(buf, 0, 0);
        comm.send(buf, 0, 0);
      }
    }
  });
  if (posted != nullptr) *posted = world.recorder().count(obs::Ev::msg_posted);
  return elapsed.count();
}

}  // namespace

// ----------------------------------------------------------- thread counts --

TEST(SweepRunner, ResolvesThreadCounts) {
  EXPECT_EQ(exp::SweepRunner(1).threads(), 1);
  EXPECT_EQ(exp::SweepRunner(5).threads(), 5);
  const int hw = exp::SweepRunner::hardware_threads();
  EXPECT_GE(hw, 1);
  EXPECT_EQ(exp::SweepRunner(0).threads(), hw);
  EXPECT_EQ(exp::SweepRunner(-3).threads(), hw);
}

// ------------------------------------------------------- ordering contract --

TEST(SweepRunner, ResultsComeBackInJobOrder) {
  constexpr int kJobs = 64;
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back([i] {
      // Uneven per-job work so a racy implementation would interleave.
      volatile int sink = 0;
      for (int k = 0; k < (i * 7919) % 5000; ++k) sink += k;
      return i;
    });
  }
  const std::vector<int> out = exp::run_parallel(jobs, 8);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kJobs));
  for (int i = 0; i < kJobs; ++i) EXPECT_EQ(out[i], i);
}

TEST(SweepRunner, SerialPathRunsInlineAndInOrder) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> order;
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back([i, caller, &order] {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      order.push_back(i);
      return i * 10;
    });
  }
  const auto out = exp::SweepRunner(1).run<int>(jobs);
  EXPECT_EQ(out, (std::vector<int>{0, 10, 20, 30}));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SweepRunner, VoidOverloadRunsEveryJob) {
  std::atomic<int> hits{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 37; ++i) jobs.push_back([&hits] { hits.fetch_add(1); });
  exp::run_parallel(jobs, 4);
  EXPECT_EQ(hits.load(), 37);
}

// ------------------------------------------------------ exception contract --

TEST(SweepRunner, SerialExceptionPropagatesImmediately) {
  std::vector<int> ran;
  std::vector<std::function<int()>> jobs;
  jobs.push_back([&ran] { ran.push_back(0); return 0; });
  jobs.push_back([]() -> int { throw std::runtime_error("boom 1"); });
  jobs.push_back([&ran] { ran.push_back(2); return 2; });
  EXPECT_THROW(exp::SweepRunner(1).run<int>(jobs), std::runtime_error);
  // Serial semantics: nothing after the throwing job runs.
  EXPECT_EQ(ran, (std::vector<int>{0}));
}

TEST(SweepRunner, ParallelRethrowsLowestIndexedException) {
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 12; ++i) {
    if (i == 3 || i == 7) {
      jobs.push_back([i]() -> int {
        throw std::runtime_error("boom " + std::to_string(i));
      });
    } else {
      jobs.push_back([i] { return i; });
    }
  }
  // Jobs are handed out in index order, so job 3 always runs and its
  // exception is the lowest-indexed capture regardless of scheduling.
  try {
    (void)exp::SweepRunner(4).run<int>(jobs);
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

// --------------------------------------- concurrent worlds, shared registry --

TEST(SweepRunner, ConcurrentEnginesShareTheLiveRegistrySafely) {
  // Two engines on two pool threads concurrently register, schedule,
  // cancel, and die; stale handles are cancelled after their engine is
  // gone. This is the regression test for the sharded live-engine
  // registry (a single unsynchronized registry corrupts under exactly
  // this pattern).
  std::atomic<int> arrived{0};
  std::vector<std::function<sim::EventHandle()>> jobs;
  for (int j = 0; j < 2; ++j) {
    jobs.push_back([&arrived]() -> sim::EventHandle {
      rendezvous(arrived, 2);
      sim::EventHandle stale;
      {
        sim::Engine eng;
        int fired = 0;
        std::vector<sim::EventHandle> handles;
        for (int i = 0; i < 200; ++i) {
          handles.push_back(
              eng.schedule_at(sim::TimePoint(i + 1), [&fired] { ++fired; }));
        }
        for (int i = 0; i < 200; i += 2) handles[i].cancel();
        stale = handles[1];  // survives the engine
        eng.run();
        EXPECT_EQ(fired, 100);
        EXPECT_FALSE(stale.valid());  // fired already
      }
      return stale;  // engine destroyed: handle must degrade to a no-op
    });
  }
  auto stale = exp::run_parallel(jobs, 2);
  for (auto& h : stale) {
    EXPECT_FALSE(h.valid());
    h.cancel();  // dead-engine cancel: must not touch freed memory
  }
}

TEST(SweepRunner, TwoWorldsOnTwoThreadsStayDeterministic) {
  // The same World config run twice concurrently must produce the exact
  // simulated elapsed time it produces serially: nothing about a
  // neighbouring world on another pool thread may leak in.
  const long long serial = pingpong_elapsed_ns(32);
  std::atomic<int> arrived{0};
  std::vector<std::function<long long()>> jobs;
  for (int j = 0; j < 2; ++j) {
    jobs.push_back([&arrived] {
      rendezvous(arrived, 2);
      return pingpong_elapsed_ns(32);
    });
  }
  const auto out = exp::run_parallel(jobs, 2);
  EXPECT_EQ(out[0], serial);
  EXPECT_EQ(out[1], serial);
}

TEST(SweepRunner, RecordersStayIsolatedAcrossConcurrentWorlds) {
  // Each world owns its flight recorder and binds it thread-locally; two
  // tracing worlds running at once must each see exactly their own
  // events. Different iteration counts make cross-talk detectable.
  std::uint64_t posted_small = 0, posted_large = 0;
  pingpong_elapsed_ns(4, &posted_small);
  pingpong_elapsed_ns(9, &posted_large);
  ASSERT_GT(posted_small, 0u);
  ASSERT_NE(posted_small, posted_large);

  std::atomic<int> arrived{0};
  std::vector<std::function<std::uint64_t()>> jobs;
  for (const int iters : {4, 9}) {
    jobs.push_back([iters, &arrived] {
      rendezvous(arrived, 2);
      std::uint64_t posted = 0;
      pingpong_elapsed_ns(iters, &posted);
      return posted;
    });
  }
  const auto out = exp::run_parallel(jobs, 2);
  EXPECT_EQ(out[0], posted_small);
  EXPECT_EQ(out[1], posted_large);
}

// ------------------------------------------------- sweep-level determinism --

TEST(SweepDeterminism, ReducedFigTablesIdenticalAcrossJobCounts) {
  const std::string fig2_serial =
      mvflow::bench::build_fig2_table(/*iters=*/20).to_string();
  EXPECT_EQ(mvflow::bench::build_fig2_table(20, nullptr, 4).to_string(),
            fig2_serial);
  EXPECT_EQ(mvflow::bench::build_fig2_table(20, nullptr, 8).to_string(),
            fig2_serial);

  const std::string fig3_serial =
      mvflow::bench::build_bw_table(/*msg_bytes=*/4, /*prepost=*/100,
                                    /*blocking=*/true)
          .to_string();
  EXPECT_EQ(mvflow::bench::build_bw_table(4, 100, true, nullptr, 4).to_string(),
            fig3_serial);
}

TEST(SweepDeterminism, SeededFaultSweepIdenticalSerialAndParallel) {
  // Fault injection draws from a per-world seeded RNG, so lost-packet and
  // retransmission counts are part of the determinism contract too.
  struct FaultCounts {
    std::uint64_t lost = 0;
    std::uint64_t retx = 0;
    long long elapsed_ns = 0;
    bool operator==(const FaultCounts&) const = default;
  };
  const auto sweep = [](int n_threads) {
    std::vector<std::function<FaultCounts()>> cells;
    for (const double loss : {0.01, 0.03, 0.05}) {
      mpi::WorldConfig cfg = pingpong_config();
      cfg.fabric.transport_timeout = sim::microseconds(50);
      cfg.fabric.transport_retry_limit = -1;
      cfg.fabric.fault.loss_prob = loss;
      cfg.fabric.fault.seed = 0xfee1deadu;
      cells.push_back([cfg] {
        mpi::World world(cfg);
        const auto elapsed = world.run([](mpi::Communicator& comm) {
          std::byte buf[512];
          std::memset(buf, 0, sizeof buf);
          for (int i = 0; i < 24; ++i) {
            if (comm.rank() == 0) {
              comm.send(buf, 1, 0);
              comm.recv(buf, 1, 0);
            } else {
              comm.recv(buf, 0, 0);
              comm.send(buf, 0, 0);
            }
          }
        });
        const auto stats = world.collect_stats();
        return FaultCounts{stats.fabric.lost_packets,
                           stats.total_retransmitted_messages(),
                           elapsed.count()};
      });
    }
    return exp::run_parallel(cells, n_threads);
  };

  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  std::uint64_t total_lost = 0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;
    total_lost += serial[i].lost;
  }
  EXPECT_GT(total_lost, 0u) << "sweep must actually exercise fault paths";
}

// ------------------------------------------------------------- run config --

TEST(RunConfig, QuietClearsExportsButKeepsCapacity) {
  exp::RunConfig cfg;
  cfg.metrics_path = "m.json";
  cfg.trace_path = "t.json";
  cfg.trace_csv_path = "t.csv";
  cfg.trace_capacity = 1234;
  EXPECT_TRUE(cfg.trace_enabled());
  const exp::RunConfig q = cfg.quiet();
  EXPECT_FALSE(q.trace_enabled());
  EXPECT_TRUE(q.metrics_path.empty());
  EXPECT_TRUE(q.trace_path.empty());
  EXPECT_TRUE(q.trace_csv_path.empty());
  EXPECT_EQ(q.trace_capacity, 1234u);
  EXPECT_EQ(&exp::RunConfig::process(), &exp::RunConfig::process());
}
