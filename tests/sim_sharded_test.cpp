// Conservative parallel DES coverage (DESIGN.md §14): the ShardedEngine
// window protocol at the engine level, and the tentpole determinism claim
// at the world level — a sharded world's results are bit-identical at every
// worker count (t1 == t2 == t4 == t8), under either scheduler, because the
// shard map is fixed by world shape and the barrier drain order is a pure
// function of window content. The serial engine stays the golden reference;
// its results are compared where the topology makes the two interleavings
// provably coincide (single-source downlinks).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/run_config.hpp"
#include "mpi/communicator.hpp"
#include "mpi/workload.hpp"
#include "mpi/world.hpp"
#include "sim/sharded.hpp"
#include "util/serial.hpp"

namespace {

using namespace mvflow;

// ---- ShardedEngine: window protocol ----------------------------------

TEST(ShardedEngine, RequiresPositiveLookahead) {
  sim::ShardedEngine se(2, 1, sim::SchedKind::heap4);
  EXPECT_THROW(se.run_until(sim::TimePoint(1000)), std::invalid_argument);
}

TEST(ShardedEngine, ShardLocalEventsRunAndClocksAlign) {
  sim::ShardedEngine se(2, 1, sim::SchedKind::heap4);
  se.set_lookahead(sim::Duration(100));
  int fired = 0;
  se.shard(0).schedule_at(sim::TimePoint(10), [&fired] { ++fired; });
  se.shard(1).schedule_at(sim::TimePoint(750), [&fired] { ++fired; });
  se.run_until(sim::TimePoint(1000));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(se.total_executed(), 2u);
  // Like Engine::run_until, every shard clock advances to the horizon.
  EXPECT_EQ(se.shard(0).now(), sim::TimePoint(1000));
  EXPECT_EQ(se.shard(1).now(), sim::TimePoint(1000));
}

TEST(ShardedEngine, CrossPostsDrainInCanonicalKeyOrder) {
  sim::ShardedEngine se(2, 1, sim::SchedKind::heap4);
  se.set_lookahead(sim::Duration(100));
  std::vector<int> order;
  // Shard 1's post carries the smaller key: the barrier drain must apply it
  // first even though shard 0's event fired earlier in simulated time.
  se.shard(0).schedule_at(sim::TimePoint(10), [&se, &order] {
    se.post(0, sim::TimePoint(200), [&order] { order.push_back(1); });
  });
  se.shard(1).schedule_at(sim::TimePoint(20), [&se, &order] {
    se.post(1, sim::TimePoint(150), [&order] { order.push_back(2); });
  });
  se.run_until(sim::TimePoint(1000));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(se.stats().cross_posts, 2u);
  EXPECT_GE(se.stats().windows, 1u);
}

TEST(ShardedEngine, WatchpointFiresAtFirstBarrierReachingCount) {
  sim::ShardedEngine se(2, 1, sim::SchedKind::heap4);
  se.set_lookahead(sim::Duration(10));
  // A chain on each shard, far enough apart in time that windows stay small.
  for (std::size_t s = 0; s < 2; ++s) {
    for (int i = 0; i < 8; ++i) {
      se.shard(s).schedule_at(sim::TimePoint(100 * (i + 1)), [] {});
    }
  }
  std::uint64_t seen_at = 0;
  se.set_watchpoint(5, [&se, &seen_at] { seen_at = se.total_executed(); });
  se.run_until(sim::TimePoint(10'000));
  EXPECT_GE(seen_at, 5u);
  EXPECT_LE(seen_at, 16u);
}

TEST(ShardedEngine, RequestStopExitsAtNextBarrier) {
  sim::ShardedEngine se(2, 1, sim::SchedKind::heap4);
  se.set_lookahead(sim::Duration(10));
  int fired = 0;
  se.shard(0).schedule_at(sim::TimePoint(10), [&] {
    ++fired;
    se.request_stop();
  });
  se.shard(0).schedule_at(sim::TimePoint(5'000), [&] { ++fired; });
  se.run_until(sim::TimePoint(10'000));
  EXPECT_EQ(fired, 1);  // the far event stays pending
  EXPECT_EQ(se.shard(0).pending_events(), 1u);
}

TEST(ShardedEngine, ShardExceptionRethrownAtBarrier) {
  sim::ShardedEngine se(2, 2, sim::SchedKind::heap4);
  se.set_lookahead(sim::Duration(10));
  se.shard(1).schedule_at(sim::TimePoint(10),
                          [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(se.run_until(sim::TimePoint(1000)), std::runtime_error);
}

// Per-shard event journals (each shard writes only its own vector, so the
// recording itself is race-free) must not depend on the worker count.
TEST(ShardedEngine, WorkerCountInvariantShardJournals) {
  const auto run_with_workers = [](std::size_t workers) {
    constexpr std::size_t kShards = 4;
    sim::ShardedEngine se(kShards, workers, sim::SchedKind::heap4);
    se.set_lookahead(sim::Duration(50));
    std::vector<std::vector<std::int64_t>> journal(kShards);
    for (std::size_t s = 0; s < kShards; ++s) {
      // Seed a self-rescheduling chain plus cross posts to the next shard.
      auto chain = [&se, &journal, s](sim::TimePoint t, int depth,
                                      auto&& self) -> void {
        journal[s].push_back(t.count());
        if (depth == 0) return;
        se.shard(s).schedule_at(t + sim::Duration(30 + (std::int64_t)s),
                                [&se, &journal, s, t, depth, self] {
                                  self(t + sim::Duration(30 + (std::int64_t)s),
                                       depth - 1, self);
                                });
        se.post(s, t + sim::Duration(60), [&se, &journal, s, t] {
          const std::size_t dst = (s + 1) % kShards;
          se.shard(dst).schedule_at(t + sim::Duration(60), [&journal, dst, t] {
            journal[dst].push_back(-(t.count() + 60));
          });
        });
      };
      se.shard(s).schedule_at(sim::TimePoint(10 * ((std::int64_t)s + 1)),
                              [&, s, chain] {
                                chain(sim::TimePoint(10 * ((std::int64_t)s + 1)),
                                      12, chain);
                              });
    }
    se.run_until(sim::TimePoint(100'000));
    return journal;
  };
  const auto j1 = run_with_workers(1);
  EXPECT_EQ(run_with_workers(2), j1);
  EXPECT_EQ(run_with_workers(4), j1);
}

// ---- sharded World: the tentpole determinism claim --------------------

mpi::WorldConfig sharded_world(int ranks, int threads,
                               sim::SchedKind kind = sim::SchedKind::heap4) {
  mpi::WorldConfig cfg;
  cfg.run = exp::RunConfig{};  // tests never honour ambient env exports
  cfg.num_ranks = ranks;
  cfg.engine_threads = threads;
  cfg.scheduler = kind;
  cfg.flow.scheme = flowctl::Scheme::user_dynamic;
  cfg.flow.prepost = 6;  // small pool => credit pressure, backlogs, ECMs
  return cfg;
}

mpi::WorkloadSpec allpairs_spec() {
  mpi::WorkloadSpec spec;
  spec.name = "allpairs";
  spec.params["rounds"] = 6;
  spec.params["bytes"] = 3000;  // eager+rendezvous mix around the 2KB buffer
  return spec;
}

/// Everything a run produces, as comparable bytes: elapsed time, the full
/// metrics registry (engine, fabric, flow, latency counters), the engine
/// dispatch state, and — when tracing — the serialized recorder state.
struct Fingerprint {
  std::int64_t elapsed_ns = 0;
  std::string metrics_json;
  std::vector<std::byte> engine_state;
  std::vector<std::byte> trace_state;
  std::uint64_t trace_recorded = 0;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint run_sharded(int threads, sim::SchedKind kind,
                        bool trace = false) {
  mpi::World world(sharded_world(4, threads, kind));
  if (trace) {
    world.recorder().enable(1 << 16);
    for (std::size_t s = 0; s < 4; ++s) world.shard_recorder(s).enable(1 << 16);
  }
  world.set_workload(allpairs_spec());
  Fingerprint fp;
  fp.elapsed_ns = world.run_workload().count();
  fp.metrics_json = world.metrics().snapshot().to_json();
  util::serial::BufWriter eng;
  world.serialize_engine_state(eng);
  fp.engine_state = eng.take();
  if (trace) {
    util::serial::BufWriter trc;
    world.serialize_trace_state(trc);
    fp.trace_state = trc.take();
    fp.trace_recorded = world.merged_trace().recorded();
  }
  return fp;
}

TEST(ShardedWorld, BitIdenticalAcrossWorkerCounts) {
  const Fingerprint t1 = run_sharded(1, sim::SchedKind::heap4);
  EXPECT_GT(t1.elapsed_ns, 0);
  EXPECT_EQ(run_sharded(2, sim::SchedKind::heap4), t1);
  EXPECT_EQ(run_sharded(4, sim::SchedKind::heap4), t1);
  EXPECT_EQ(run_sharded(8, sim::SchedKind::heap4), t1);
}

TEST(ShardedWorld, SchedulerChoiceInvisibleToResults) {
  EXPECT_EQ(run_sharded(2, sim::SchedKind::calendar),
            run_sharded(2, sim::SchedKind::heap4));
}

TEST(ShardedWorld, TracedRunsAgreeAcrossWorkerCounts) {
  const Fingerprint a = run_sharded(1, sim::SchedKind::heap4, /*trace=*/true);
  const Fingerprint b = run_sharded(4, sim::SchedKind::heap4, /*trace=*/true);
  EXPECT_GT(a.trace_recorded, 0u);
  EXPECT_EQ(a, b);
}

// With two ranks every switch downlink has exactly one source shard, so
// the barrier's at_switch drain order coincides with the serial engine's
// transmit-time order and the two modes are bit-identical — the sharded
// engine reproduces the golden reference exactly on this topology.
TEST(ShardedWorld, TwoRankPingpongMatchesSerialReference) {
  const auto run_pingpong = [](int threads) {
    mpi::WorldConfig cfg = sharded_world(2, threads);
    mpi::World world(cfg);
    mpi::WorkloadSpec spec;
    spec.name = "pingpong";
    spec.params["iters"] = 150;
    spec.params["bytes"] = 512;
    world.set_workload(spec);
    const std::int64_t elapsed = world.run_workload().count();
    const mpi::WorldStats st = world.collect_stats();
    return std::tuple(elapsed, st.fabric, st.total_messages(),
                      st.total_ecm(), st.total_backlogged());
  };
  EXPECT_EQ(run_pingpong(0), run_pingpong(2));
}

TEST(ShardedWorld, AbortAtWatchpointStopsAtBarrier) {
  mpi::World world(sharded_world(4, 2));
  world.set_workload(allpairs_spec());
  world.set_event_watchpoint(500, [&world] { world.abort_run(); });
  const sim::Duration elapsed = world.run_workload();
  EXPECT_TRUE(world.aborted());
  EXPECT_GT(elapsed.count(), 0);
  EXPECT_GE(world.executed_events(), 500u);
}

TEST(ShardedWorld, RejectsOnDemandConnections) {
  mpi::WorldConfig cfg = sharded_world(2, 2);
  cfg.on_demand_connections = true;
  EXPECT_THROW(mpi::World world(cfg), std::invalid_argument);
}

// Random fault injection now runs on the sharded engine (one dedicated RNG
// stream per source node, chaos campaigns depend on it); what stays
// rejected is auto-reconnect under faults (recover_pair mutates both
// shards) and scripted faults that do not pin their source node.
TEST(ShardedWorld, AcceptsRandomFaultInjection) {
  mpi::WorldConfig cfg = sharded_world(2, 2);
  cfg.fabric.fault.loss_prob = 0.05;
  cfg.fabric.transport_timeout = sim::microseconds(50);
  cfg.fabric.transport_retry_limit = -1;
  mpi::World world(cfg);
  world.set_workload(allpairs_spec());
  EXPECT_GT(world.run_workload().count(), 0);
  EXPECT_GT(world.collect_stats().fabric.lost_packets, 0u)
      << "the sharded injector must actually drop packets";
}

TEST(ShardedWorld, RejectsAutoReconnectUnderFaultInjection) {
  mpi::WorldConfig cfg = sharded_world(2, 2);
  cfg.fabric.fault.loss_prob = 0.01;
  cfg.device.auto_reconnect = true;
  EXPECT_THROW(mpi::World world(cfg), std::invalid_argument);
}

TEST(ShardedWorld, RejectsUnpinnedScriptedFault) {
  mpi::WorldConfig cfg = sharded_world(2, 2);
  cfg.fabric.fault.scripted.push_back(ib::ScriptedFault{});  // src_node = -1
  EXPECT_THROW(mpi::World world(cfg), std::invalid_argument);
}

}  // namespace
