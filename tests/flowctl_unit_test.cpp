// Unit and property tests for the flow-control state machines, in
// isolation from the MPI device.
#include <gtest/gtest.h>

#include "flowctl/flowctl.hpp"
#include "util/rng.hpp"

using namespace mvflow::flowctl;

TEST(FlowctlScheme, ParseAndPrintRoundTrip) {
  for (Scheme s : {Scheme::hardware, Scheme::user_static, Scheme::user_dynamic}) {
    const auto parsed = parse_scheme(to_string(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(parse_scheme("bogus").has_value());
  EXPECT_EQ(parse_scheme("hw"), Scheme::hardware);
}

TEST(FlowctlConfig, RejectsBadValues) {
  Config cfg;
  cfg.prepost = 0;
  EXPECT_THROW(ConnectionFlow{cfg}, std::invalid_argument);
  cfg = Config{};
  cfg.max_prepost = cfg.prepost - 1;
  EXPECT_THROW(ConnectionFlow{cfg}, std::invalid_argument);
}

TEST(FlowctlStatic, CreditsStartAtPrepost) {
  Config cfg;
  cfg.scheme = Scheme::user_static;
  cfg.prepost = 7;
  ConnectionFlow f(cfg);
  EXPECT_EQ(f.credits(), 7);
  EXPECT_EQ(f.current_posted(), 7);
  EXPECT_EQ(f.initial_posted(), 7);
}

TEST(FlowctlStatic, AcquireExhaustsThenFails) {
  Config cfg;
  cfg.prepost = 3;
  ConnectionFlow f(cfg);
  EXPECT_TRUE(f.try_acquire_credit());
  EXPECT_TRUE(f.try_acquire_credit());
  EXPECT_TRUE(f.try_acquire_credit());
  EXPECT_FALSE(f.credit_available());
  EXPECT_FALSE(f.try_acquire_credit());
  EXPECT_EQ(f.counters().credited_sent, 3u);
  f.add_credits(2);
  EXPECT_TRUE(f.try_acquire_credit());
  EXPECT_EQ(f.credits(), 1);
}

TEST(FlowctlHardware, NeverBlocksAndKeepsNoState) {
  Config cfg;
  cfg.scheme = Scheme::hardware;
  cfg.prepost = 1;
  ConnectionFlow f(cfg);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(f.credit_available());
    EXPECT_TRUE(f.try_acquire_credit());
  }
  EXPECT_FALSE(f.on_credited_repost()) << "hardware scheme never sends ECMs";
  EXPECT_EQ(f.take_return_credits(), 0);
  EXPECT_EQ(f.on_backlogged_flag(), 0);
  EXPECT_EQ(f.counters().credited_sent, 1000u);
}

TEST(FlowctlStatic, EcmThresholdSuppressesUntilReached) {
  Config cfg;
  cfg.prepost = 10;
  cfg.ecm_threshold = 5;
  ConnectionFlow f(cfg);
  EXPECT_FALSE(f.on_credited_repost());  // 1
  EXPECT_FALSE(f.on_credited_repost());  // 2
  EXPECT_FALSE(f.on_credited_repost());  // 3
  EXPECT_FALSE(f.on_credited_repost());  // 4
  EXPECT_TRUE(f.on_credited_repost());   // 5 -> fire
  EXPECT_EQ(f.take_return_credits(), 5);
  EXPECT_EQ(f.pending_return_credits(), 0);
}

TEST(FlowctlStatic, PiggybackDrainsAccumulatorBeforeThreshold) {
  Config cfg;
  cfg.prepost = 10;
  cfg.ecm_threshold = 5;
  ConnectionFlow f(cfg);
  f.on_credited_repost();
  f.on_credited_repost();
  EXPECT_EQ(f.take_return_credits(), 2);  // an outgoing message carries them
  EXPECT_FALSE(f.on_credited_repost()) << "accumulator restarted";
}

TEST(FlowctlStatic, EffectiveThresholdCappedByPoolSize) {
  // With a pool of 1 and threshold 5, a strict threshold would suppress
  // credit return forever and deadlock a one-way pattern.
  Config cfg;
  cfg.prepost = 1;
  cfg.ecm_threshold = 5;
  ConnectionFlow f(cfg);
  EXPECT_TRUE(f.on_credited_repost()) << "must fire at pool size";
  EXPECT_EQ(f.take_return_credits(), 1);
}

TEST(FlowctlDynamic, GrowsLinearlyOnBacklogFlag) {
  Config cfg;
  cfg.scheme = Scheme::user_dynamic;
  cfg.prepost = 1;
  cfg.growth_step = 2;
  ConnectionFlow f(cfg);
  EXPECT_EQ(f.current_posted(), 1);
  EXPECT_EQ(f.on_backlogged_flag(), 2);
  EXPECT_EQ(f.current_posted(), 3);
  EXPECT_EQ(f.on_backlogged_flag(), 2);
  EXPECT_EQ(f.current_posted(), 5);
  EXPECT_EQ(f.counters().growth_events, 2u);
  EXPECT_EQ(f.counters().max_posted, 5);
  // New buffers become returnable credits immediately.
  EXPECT_EQ(f.pending_return_credits(), 4);
}

TEST(FlowctlDynamic, ExponentialGrowthDoubles) {
  Config cfg;
  cfg.scheme = Scheme::user_dynamic;
  cfg.prepost = 2;
  cfg.exponential_growth = true;
  ConnectionFlow f(cfg);
  EXPECT_EQ(f.on_backlogged_flag(), 2);  // 2 -> 4
  EXPECT_EQ(f.on_backlogged_flag(), 4);  // 4 -> 8
  EXPECT_EQ(f.current_posted(), 8);
}

TEST(FlowctlDynamic, GrowthStopsAtCap) {
  Config cfg;
  cfg.scheme = Scheme::user_dynamic;
  cfg.prepost = 1;
  cfg.growth_step = 4;
  cfg.max_prepost = 6;
  ConnectionFlow f(cfg);
  EXPECT_EQ(f.on_backlogged_flag(), 4);  // 1 -> 5
  EXPECT_EQ(f.on_backlogged_flag(), 1);  // clipped: 5 -> 6
  EXPECT_EQ(f.on_backlogged_flag(), 0);  // at cap
  EXPECT_EQ(f.current_posted(), 6);
}

TEST(FlowctlStatic, StaticNeverGrows) {
  Config cfg;
  cfg.scheme = Scheme::user_static;
  cfg.prepost = 4;
  ConnectionFlow f(cfg);
  EXPECT_EQ(f.on_backlogged_flag(), 0);
  EXPECT_EQ(f.current_posted(), 4);
  EXPECT_EQ(f.counters().max_posted, 4);
}

// Property: under any interleaving of sends, reposts, piggyback transfers
// and growth, credits are conserved:
//   sender credits + in-flight credited + receiver accumulated == pool size.
TEST(FlowctlProperty, CreditConservationUnderRandomTraffic) {
  mvflow::util::Xoshiro256 rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    Config cfg;
    cfg.scheme = (trial % 2 == 0) ? Scheme::user_static : Scheme::user_dynamic;
    cfg.prepost = 1 + static_cast<int>(rng.below(16));
    cfg.ecm_threshold = 1 + static_cast<int>(rng.below(8));
    cfg.growth_step = 1 + static_cast<int>(rng.below(4));
    ConnectionFlow sender(cfg);   // sender role toward peer
    ConnectionFlow receiver(cfg); // receiver role at peer
    int in_flight = 0;   // credited messages sent, not yet processed
    int in_transit = 0;  // credits taken from receiver, not yet delivered

    auto invariant = [&] {
      return sender.credits() + in_flight + in_transit +
                 receiver.pending_return_credits() ==
             receiver.current_posted();
    };
    ASSERT_TRUE(invariant());

    for (int step = 0; step < 2000; ++step) {
      switch (rng.below(4)) {
        case 0:  // try to send a credited message
          if (sender.try_acquire_credit()) ++in_flight;
          break;
        case 1:  // receiver processes + reposts one message
          if (in_flight > 0) {
            --in_flight;
            receiver.on_credited_repost();
          }
          break;
        case 2: {  // credits travel back (piggyback or ECM)
          const int c = receiver.take_return_credits();
          in_transit += c;
          break;
        }
        case 3:  // credit message arrives at sender
          if (in_transit > 0) {
            sender.add_credits(in_transit);
            in_transit = 0;
          }
          break;
      }
      // Occasionally the dynamic receiver grows.
      if (cfg.scheme == Scheme::user_dynamic && rng.below(37) == 0) {
        receiver.on_backlogged_flag();
      }
      ASSERT_TRUE(invariant()) << "trial " << trial << " step " << step;
    }
  }
}
