// Collectives correctness across rank counts (including non powers of two)
// and flow-control schemes.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/communicator.hpp"
#include "mpi/world.hpp"

using namespace mvflow;
using namespace mvflow::mpi;

namespace {

struct CollParam {
  int ranks;
  flowctl::Scheme scheme;
};

std::string param_name(const ::testing::TestParamInfo<CollParam>& info) {
  return std::to_string(info.param.ranks) + "ranks_" +
         std::string(flowctl::to_string(info.param.scheme));
}

class Collectives : public ::testing::TestWithParam<CollParam> {
 protected:
  WorldConfig make_config() const {
    WorldConfig cfg;
    cfg.num_ranks = GetParam().ranks;
    cfg.flow.scheme = GetParam().scheme;
    cfg.flow.prepost = 16;
    return cfg;
  }
};

}  // namespace

TEST_P(Collectives, BarrierSynchronizes) {
  World world(make_config());
  const int p = world.num_ranks();
  std::vector<std::int64_t> after_barrier_ns(p);
  std::vector<std::int64_t> work_ns(p);
  world.run([&](Communicator& comm) {
    // Stagger ranks; the barrier must not release anyone before the
    // slowest arrives.
    work_ns[comm.rank()] = 1000 * (comm.rank() + 1);
    comm.compute(sim::Duration(work_ns[comm.rank()]));
    comm.barrier();
    after_barrier_ns[comm.rank()] = comm.now().count();
  });
  const std::int64_t slowest = *std::max_element(work_ns.begin(), work_ns.end());
  for (int r = 0; r < p; ++r) {
    EXPECT_GE(after_barrier_ns[r], slowest) << "rank " << r << " left early";
  }
}

TEST_P(Collectives, BcastFromEveryRoot) {
  World world(make_config());
  const int p = world.num_ranks();
  world.run([&](Communicator& comm) {
    for (Rank root = 0; root < p; ++root) {
      std::vector<double> data(17, comm.rank() == root ? root * 3.5 : -1.0);
      comm.bcast_n(data.data(), data.size(), root);
      for (double v : data) EXPECT_DOUBLE_EQ(v, root * 3.5);
    }
  });
}

TEST_P(Collectives, BcastLargePayload) {
  World world(make_config());
  world.run([&](Communicator& comm) {
    std::vector<std::int64_t> data(20000);  // 160 KB -> rendezvous
    if (comm.rank() == 0) std::iota(data.begin(), data.end(), 7);
    comm.bcast_n(data.data(), data.size(), 0);
    for (std::size_t i = 0; i < data.size(); ++i)
      ASSERT_EQ(data[i], static_cast<std::int64_t>(i) + 7);
  });
}

TEST_P(Collectives, AllreduceSumMatchesSerial) {
  World world(make_config());
  const int p = world.num_ranks();
  world.run([&](Communicator& comm) {
    std::vector<double> v(9);
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] = comm.rank() * 100.0 + static_cast<double>(i);
    comm.allreduce(std::span<double>(v), OpSum{});
    for (std::size_t i = 0; i < v.size(); ++i) {
      double expect = 0;
      for (int r = 0; r < p; ++r) expect += r * 100.0 + static_cast<double>(i);
      EXPECT_DOUBLE_EQ(v[i], expect);
    }
  });
}

TEST_P(Collectives, AllreduceMaxAndScalars) {
  World world(make_config());
  const int p = world.num_ranks();
  world.run([&](Communicator& comm) {
    EXPECT_DOUBLE_EQ(comm.allreduce_max(static_cast<double>(comm.rank())),
                     static_cast<double>(p - 1));
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(1.0), static_cast<double>(p));
    EXPECT_EQ(comm.allreduce_sum(static_cast<std::int64_t>(comm.rank())),
              static_cast<std::int64_t>(p) * (p - 1) / 2);
  });
}

TEST_P(Collectives, ReduceToNonzeroRoot) {
  World world(make_config());
  const int p = world.num_ranks();
  const Rank root = p - 1;
  world.run([&](Communicator& comm) {
    std::vector<std::int64_t> v{comm.rank() + 1};
    comm.reduce_inplace(std::span<std::int64_t>(v), OpSum{}, root);
    if (comm.rank() == root) {
      EXPECT_EQ(v[0], static_cast<std::int64_t>(p) * (p + 1) / 2);
    }
  });
}

TEST_P(Collectives, AllgatherDistributesAllBlocks) {
  World world(make_config());
  const int p = world.num_ranks();
  world.run([&](Communicator& comm) {
    std::vector<std::int64_t> mine{comm.rank() * 10, comm.rank() * 10 + 1};
    std::vector<std::int64_t> all(static_cast<std::size_t>(2 * p), -1);
    comm.allgather(std::as_bytes(std::span<const std::int64_t>(mine)),
                   std::as_writable_bytes(std::span<std::int64_t>(all)));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[2 * r], r * 10);
      EXPECT_EQ(all[2 * r + 1], r * 10 + 1);
    }
  });
}

TEST_P(Collectives, AlltoallPermutesBlocks) {
  World world(make_config());
  const int p = world.num_ranks();
  world.run([&](Communicator& comm) {
    std::vector<std::int64_t> send(static_cast<std::size_t>(p));
    std::vector<std::int64_t> recv(static_cast<std::size_t>(p), -1);
    for (int r = 0; r < p; ++r) send[r] = comm.rank() * 1000 + r;
    comm.alltoall(std::as_bytes(std::span<const std::int64_t>(send)),
                  std::as_writable_bytes(std::span<std::int64_t>(recv)),
                  sizeof(std::int64_t));
    for (int r = 0; r < p; ++r)
      EXPECT_EQ(recv[r], r * 1000 + comm.rank()) << "block from rank " << r;
  });
}

TEST_P(Collectives, AlltoallvVariableSizes) {
  World world(make_config());
  const int p = world.num_ranks();
  world.run([&](Communicator& comm) {
    const auto np = static_cast<std::size_t>(p);
    // Rank r sends (r + d + 1) int64s to rank d.
    std::vector<std::size_t> scounts(np), sdispls(np), rcounts(np), rdispls(np);
    std::size_t stotal = 0, rtotal = 0;
    for (int d = 0; d < p; ++d) {
      scounts[d] = sizeof(std::int64_t) * static_cast<std::size_t>(comm.rank() + d + 1);
      sdispls[d] = stotal;
      stotal += scounts[d];
      rcounts[d] = sizeof(std::int64_t) * static_cast<std::size_t>(d + comm.rank() + 1);
      rdispls[d] = rtotal;
      rtotal += rcounts[d];
    }
    std::vector<std::int64_t> send(stotal / sizeof(std::int64_t));
    std::vector<std::int64_t> recv(rtotal / sizeof(std::int64_t), -1);
    for (int d = 0; d < p; ++d) {
      auto* block = send.data() + sdispls[d] / sizeof(std::int64_t);
      const auto n = scounts[d] / sizeof(std::int64_t);
      for (std::size_t i = 0; i < n; ++i)
        block[i] = comm.rank() * 1000000 + d * 1000 + static_cast<std::int64_t>(i);
    }
    comm.alltoallv(reinterpret_cast<const std::byte*>(send.data()), scounts,
                   sdispls, reinterpret_cast<std::byte*>(recv.data()), rcounts,
                   rdispls);
    for (int s = 0; s < p; ++s) {
      auto* block = recv.data() + rdispls[s] / sizeof(std::int64_t);
      const auto n = rcounts[s] / sizeof(std::int64_t);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(block[i],
                  s * 1000000 + comm.rank() * 1000 + static_cast<std::int64_t>(i));
    }
  });
}

TEST_P(Collectives, GatherAndScatterRoundTrip) {
  World world(make_config());
  const int p = world.num_ranks();
  world.run([&](Communicator& comm) {
    const auto np = static_cast<std::size_t>(p);
    std::vector<double> mine{comm.rank() + 0.25};
    std::vector<double> all(np, -1);
    comm.gather(std::as_bytes(std::span<const double>(mine)),
                std::as_writable_bytes(std::span<double>(all)), 0);
    if (comm.rank() == 0) {
      for (int r = 0; r < p; ++r) EXPECT_DOUBLE_EQ(all[r], r + 0.25);
      for (int r = 0; r < p; ++r) all[r] = r * 2.0;
    }
    std::vector<double> back(1, -1);
    comm.scatter(std::as_bytes(std::span<const double>(all)),
                 std::as_writable_bytes(std::span<double>(back)), 0);
    EXPECT_DOUBLE_EQ(back[0], comm.rank() * 2.0);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, Collectives,
    ::testing::Values(CollParam{1, flowctl::Scheme::user_static},
                      CollParam{2, flowctl::Scheme::user_static},
                      CollParam{5, flowctl::Scheme::user_static},
                      CollParam{8, flowctl::Scheme::user_static},
                      CollParam{8, flowctl::Scheme::hardware},
                      CollParam{8, flowctl::Scheme::user_dynamic},
                      CollParam{7, flowctl::Scheme::user_dynamic},
                      CollParam{16, flowctl::Scheme::user_static}),
    param_name);
