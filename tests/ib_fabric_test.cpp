// Fabric-level behaviour: link serialization and contention, store-and-
// forward timing, multi-QP fairness, loopback, end-to-end credit pacing.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <vector>

#include "ib/fabric.hpp"
#include "sim/engine.hpp"

using namespace mvflow::ib;
using namespace mvflow::sim;

namespace {

struct Flow {
  std::shared_ptr<CompletionQueue> cq_src, cq_dst;
  std::shared_ptr<QueuePair> qp_src, qp_dst;
  std::vector<std::byte> src, dst;
  MemoryRegionHandle mr_src, mr_dst;
};

Flow make_flow(Fabric& fabric, int a, int b, std::size_t bytes) {
  Flow f;
  f.cq_src = fabric.hca(a).create_cq();
  f.cq_dst = fabric.hca(b).create_cq();
  f.qp_src = fabric.hca(a).create_qp(f.cq_src, f.cq_src);
  f.qp_dst = fabric.hca(b).create_qp(f.cq_dst, f.cq_dst);
  Fabric::connect(*f.qp_src, *f.qp_dst);
  f.src.assign(bytes, std::byte{0x5a});
  f.dst.assign(bytes, std::byte{0});
  f.mr_src = fabric.hca(a).register_memory(
      f.src, Access::local_read | Access::local_write);
  f.mr_dst = fabric.hca(b).register_memory(
      f.dst, Access::local_read | Access::local_write);
  return f;
}

void post_pair(Flow& f, std::uint32_t len) {
  RecvWr rwr;
  rwr.wr_id = 1;
  rwr.local_addr = f.dst.data();
  rwr.length = static_cast<std::uint32_t>(f.dst.size());
  rwr.lkey = f.mr_dst.lkey;
  f.qp_dst->post_recv(rwr);
  SendWr swr;
  swr.wr_id = 2;
  swr.local_addr = f.src.data();
  swr.length = len;
  swr.lkey = f.mr_src.lkey;
  f.qp_src->post_send(swr);
}

}  // namespace

TEST(Fabric, TwoSendersShareTheReceiverDownlink) {
  // Node 2's downlink is one FIFO pipe: two simultaneous 256 KB transfers
  // from nodes 0 and 1 must take about twice as long as one.
  Engine eng;
  Fabric fabric(eng, FabricConfig{}, 3);
  const std::uint32_t len = 256 * 1024;

  auto run_case = [&](bool both) {
    Engine e2;
    Fabric f2(e2, FabricConfig{}, 3);
    Flow fa = make_flow(f2, 0, 2, len);
    post_pair(fa, len);
    if (both) {
      Flow fb = make_flow(f2, 1, 2, len);
      post_pair(fb, len);
      e2.run();
      return e2.now();
    }
    e2.run();
    return e2.now();
  };
  const auto t_one = run_case(false);
  const auto t_two = run_case(true);
  EXPECT_GT(t_two.count(), static_cast<std::int64_t>(1.8 * t_one.count()));
  EXPECT_LT(t_two.count(), static_cast<std::int64_t>(2.2 * t_one.count()));
}

TEST(Fabric, DisjointPathsDoNotContend) {
  // 0->1 and 2->3 share nothing; running both takes as long as one.
  const std::uint32_t len = 256 * 1024;
  auto run_case = [&](bool both) {
    Engine eng;
    Fabric fabric(eng, FabricConfig{}, 4);
    Flow fa = make_flow(fabric, 0, 1, len);
    std::optional<Flow> fb;  // must outlive eng.run()
    post_pair(fa, len);
    if (both) {
      fb.emplace(make_flow(fabric, 2, 3, len));
      post_pair(*fb, len);
    }
    eng.run();
    return eng.now();
  };
  EXPECT_EQ(run_case(false), run_case(true));
}

TEST(Fabric, StoreAndForwardDelayMatchesModel) {
  // One 100-byte message: arrival = wqe + per-packet tx + 2x serialization
  // + 2x wire + switch + rx processing. Recompute from config and compare.
  Engine eng;
  FabricConfig cfg;
  Fabric fabric(eng, cfg, 2);
  Flow f = make_flow(fabric, 0, 1, 4096);
  post_pair(f, 100);
  eng.run();  // ends when the ACK lands back at the sender

  const auto ser_data =
      cfg.per_packet_tx + transfer_time(100 + cfg.data_header_bytes,
                                        cfg.bandwidth_bps);
  const auto ser_ack =
      cfg.per_packet_tx + transfer_time(cfg.ack_bytes, cfg.bandwidth_bps);
  const auto one_way = [&](Duration ser) {
    return ser + cfg.wire_latency + cfg.switch_latency + ser +
           cfg.wire_latency + cfg.rx_process;
  };
  const auto expect = cfg.tx_wqe_process + one_way(ser_data) + one_way(ser_ack);
  EXPECT_EQ(eng.now().count(), expect.count());
}

TEST(Fabric, LoopbackSkipsTheSwitch) {
  Engine eng;
  FabricConfig cfg;
  Fabric fabric(eng, cfg, 2);
  Flow f = make_flow(fabric, 0, 0, 4096);  // same node
  post_pair(f, 100);
  eng.run();
  // Loopback: serialization once, no wire or switch latency.
  const auto remote_floor = 2 * cfg.wire_latency + cfg.switch_latency;
  EXPECT_LT(eng.now().count(),
            (cfg.tx_wqe_process + remote_floor * 2).count() + 3000);
  ASSERT_FALSE(f.cq_dst->empty());
}

TEST(Fabric, UplinkBusyTimeAccountsForTraffic) {
  Engine eng;
  FabricConfig cfg;
  Fabric fabric(eng, cfg, 2);
  Flow f = make_flow(fabric, 0, 1, 1 << 20);
  post_pair(f, 1 << 20);
  eng.run();
  // The 1 MB payload crossed node 0's uplink: busy time >= transfer time.
  EXPECT_GE(fabric.uplink_busy(0).count(),
            transfer_time(1 << 20, cfg.bandwidth_bps).count());
  // Node 1's uplink carried only ACKs.
  EXPECT_LT(fabric.uplink_busy(1).count(), fabric.uplink_busy(0).count() / 10);
}

TEST(Fabric, DestroyedQpDropsTrafficSilently) {
  Engine eng;
  Fabric fabric(eng, FabricConfig{}, 2);
  Flow f = make_flow(fabric, 0, 1, 4096);
  const QpNumber dst_qpn = f.qp_dst->qpn();
  post_pair(f, 64);
  fabric.hca(1).destroy_qp(dst_qpn);
  f.qp_dst.reset();
  EXPECT_NO_THROW(eng.run());  // packets dropped, no crash
  EXPECT_TRUE(f.cq_src->empty()) << "no ACK can come back";
}

TEST(Fabric, E2ePacingLimitsOutstandingSends) {
  // With strict pacing on, a sender that learned "2 credits" holds back.
  FabricConfig cfg;
  cfg.e2e_credit_pacing = true;
  Engine eng;
  Fabric fabric(eng, cfg, 2);
  Flow f = make_flow(fabric, 0, 1, 1 << 16);

  // Prime: responder has 3 buffers; send one message to learn credits.
  for (int i = 0; i < 3; ++i) {
    RecvWr rwr;
    rwr.wr_id = 100 + i;
    rwr.local_addr = f.dst.data();
    rwr.length = 512;
    rwr.lkey = f.mr_dst.lkey;
    f.qp_dst->post_recv(rwr);
  }
  SendWr swr;
  swr.wr_id = 1;
  swr.local_addr = f.src.data();
  swr.length = 16;
  swr.lkey = f.mr_src.lkey;
  f.qp_src->post_send(swr);
  eng.run();
  EXPECT_EQ(f.qp_src->stats().last_advertised_credits, 2);

  // Now queue 10 more sends with only 2 buffers posted: pacing must keep
  // the flood from drowning the responder — at most advertised+2 on the
  // wire, so no out-of-sequence drops beyond the probe losses.
  for (int i = 0; i < 10; ++i) f.qp_src->post_send(swr);
  eng.run_until(eng.now() + microseconds(5));
  EXPECT_LE(f.qp_src->pending_send_count() > 0 ? 1 : 0, 1);
  EXPECT_GT(f.qp_src->pending_send_count(), 0u)
      << "some sends must still be held back by pacing";
}

TEST(Fabric, WireBytesBySize) {
  Engine eng;
  FabricConfig cfg;
  Fabric fabric(eng, cfg, 2);
  Packet data;
  data.kind = PacketKind::data;
  data.payload_bytes = 1000;
  EXPECT_EQ(fabric.wire_bytes(data), 1000 + cfg.data_header_bytes);
  Packet ack;
  ack.kind = PacketKind::ack;
  EXPECT_EQ(fabric.wire_bytes(ack), cfg.ack_bytes);
}

TEST(Fabric, RejectsInvalidConfig) {
  Engine eng;
  FabricConfig bad;
  bad.mtu = 16;
  EXPECT_THROW(Fabric(eng, bad, 2), std::invalid_argument);
  EXPECT_THROW(Fabric(eng, FabricConfig{}, 0), std::invalid_argument);
}
