// Numerical spot checks of the NAS proxies beyond their built-in
// verification: cross-scheme metric equality (flow control must never
// change answers), scale/iteration behaviour, and census expectations.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "exp/runner.hpp"
#include "nas/kernel.hpp"

using namespace mvflow;
using namespace mvflow::nas;

namespace {

KernelResult quick(App app, flowctl::Scheme scheme, int prepost, int iters = 2,
                   std::uint64_t seed = 42) {
  mpi::WorldConfig cfg;
  cfg.num_ranks = 0;
  cfg.flow.scheme = scheme;
  cfg.flow.prepost = prepost;
  cfg.run = cfg.run.quiet();  // jobs may run concurrently: no export races
  NasParams p;
  p.iterations = iters;
  p.seed = seed;
  return run_app(app, cfg, p);
}

}  // namespace

TEST(NasNumerics, MetricsIdenticalAcrossSchemes) {
  // The metric is a pure function of the math; buffers and schemes must
  // not leak into it. This is the suite's heaviest fixture (7 apps x 3
  // scheme configs), so the 21 independent worlds run on the sweep
  // runner; assertions happen on the main thread, in app order.
  std::vector<std::function<KernelResult()>> jobs;
  for (App app : kAllApps) {
    jobs.push_back([app] { return quick(app, flowctl::Scheme::hardware, 100); });
    jobs.push_back([app] { return quick(app, flowctl::Scheme::user_static, 4); });
    jobs.push_back(
        [app] { return quick(app, flowctl::Scheme::user_dynamic, 1); });
  }
  const exp::SweepRunner runner;  // hardware concurrency
  const auto results = runner.run<KernelResult>(jobs);

  std::size_t i = 0;
  for (App app : kAllApps) {
    const auto& a = results[i];
    const auto& b = results[i + 1];
    const auto& c = results[i + 2];
    i += 3;
    EXPECT_EQ(a.metric, b.metric) << to_string(app);
    EXPECT_EQ(a.metric, c.metric) << to_string(app);
    EXPECT_TRUE(a.verified && b.verified && c.verified) << to_string(app);
  }
}

TEST(NasNumerics, SeedChangesIsAndFtData) {
  const auto a = quick(App::is, flowctl::Scheme::user_static, 100, 2, 1);
  const auto b = quick(App::is, flowctl::Scheme::user_static, 100, 2, 2);
  EXPECT_TRUE(a.verified && b.verified);
  // IS metric counts sorted keys: equal totals. FT differs per seed.
  const auto fa = quick(App::ft, flowctl::Scheme::user_static, 100, 2, 1);
  const auto fb = quick(App::ft, flowctl::Scheme::user_static, 100, 2, 2);
  EXPECT_TRUE(fa.verified && fb.verified);
  EXPECT_LT(fa.metric, 1e-9);
  EXPECT_LT(fb.metric, 1e-9);
}

TEST(NasNumerics, CgResidualShrinksWithIterations) {
  const auto few = quick(App::cg, flowctl::Scheme::user_static, 100, 4);
  const auto many = quick(App::cg, flowctl::Scheme::user_static, 100, 16);
  EXPECT_LT(many.metric, few.metric);
  EXPECT_LT(many.metric, 1e-6);
}

TEST(NasNumerics, MgResidualRatioShrinksWithCycles) {
  const auto few = quick(App::mg, flowctl::Scheme::user_static, 100, 2);
  const auto many = quick(App::mg, flowctl::Scheme::user_static, 100, 5);
  EXPECT_LT(many.metric, few.metric);
  EXPECT_LT(many.metric, 0.05);
}

TEST(NasNumerics, LuChecksumFiniteAndIterationDependent) {
  const auto a = quick(App::lu, flowctl::Scheme::user_static, 100, 2);
  const auto b = quick(App::lu, flowctl::Scheme::user_static, 100, 4);
  EXPECT_TRUE(std::isfinite(a.metric));
  EXPECT_NE(a.metric, b.metric);
}

TEST(NasCensus, RendezvousHeavyAppsMoveMostBytesByRdma) {
  // FT's transposes are large: the fabric must carry far more data bytes
  // than the MPI message count suggests (RDMA payloads, not eager copies).
  const auto ft = quick(App::ft, flowctl::Scheme::user_static, 100, 3);
  EXPECT_GT(ft.stats.fabric.wire_bytes,
            ft.stats.total_messages() * 2048)
      << "bulk payload must dwarf the 2KB control-buffer traffic";
}

TEST(NasCensus, LuIsSmallMessageDominated) {
  const auto lu = quick(App::lu, flowctl::Scheme::user_static, 100, 3);
  const double bytes_per_msg =
      static_cast<double>(lu.stats.fabric.wire_bytes) /
      static_cast<double>(lu.stats.total_messages());
  EXPECT_LT(bytes_per_msg, 512.0) << "LU's traffic is boundary lines";
}

TEST(NasCensus, HardwareAndUserLevelSendSameDataMessages) {
  // Scheme changes control traffic (ECMs), never data traffic.
  const auto hw = quick(App::cg, flowctl::Scheme::hardware, 100, 3);
  const auto st = quick(App::cg, flowctl::Scheme::user_static, 100, 3);
  std::uint64_t hw_credited = 0, st_credited = 0;
  for (const auto& c : hw.stats.connections) hw_credited += c.flow.credited_sent;
  for (const auto& c : st.stats.connections) st_credited += c.flow.credited_sent;
  EXPECT_EQ(hw_credited, st_credited);
}
