#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/check.hpp"
#include "util/flat_fifo.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace mu = mvflow::util;

TEST(FlatFifo, FifoOrderAcrossFillDrainCycles) {
  mu::FlatFifo<int> q;
  int next_push = 0, next_pop = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (int i = 0; i < 17; ++i) q.push_back(next_push++);
    while (!q.empty()) {
      EXPECT_EQ(q.front(), next_pop++);
      q.pop_front();
    }
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(FlatFifo, PushFrontReusesDeadSlotAndKeepsOrder) {
  mu::FlatFifo<int> q;
  q.push_back(1);
  q.push_back(2);
  q.pop_front();    // dead slot in front of the cursor
  q.push_front(9);  // rewind into it
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.front(), 9);
  q.pop_front();
  EXPECT_EQ(q.front(), 2);
}

namespace {

/// Counts constructed-and-not-yet-destroyed instances, so the tests can
/// observe how many elements (live + dead moved-from slots) a FlatFifo is
/// actually holding storage for.
struct Counted {
  static int live;
  Counted() { ++live; }
  Counted(const Counted&) { ++live; }
  Counted(Counted&&) noexcept { ++live; }
  Counted& operator=(const Counted&) = default;
  Counted& operator=(Counted&&) noexcept = default;
  ~Counted() { --live; }
};
int Counted::live = 0;

}  // namespace

TEST(FlatFifo, PersistentlyNonEmptyQueueStaysBounded) {
  // A queue that never fully drains (e.g. a CQ filled faster than it is
  // polled) must not accumulate O(total pushed) dead slots: pop_front
  // compacts once the dead prefix outweighs the live tail, destroying the
  // moved-from elements it pinned.
  {
    mu::FlatFifo<Counted> q;
    q.push_back(Counted{});
    for (int i = 0; i < 100'000; ++i) {
      q.push_back(Counted{});
      q.pop_front();  // depth stays at 1, queue never empties
      EXPECT_LE(Counted::live, 256) << "dead prefix not being reclaimed";
    }
    EXPECT_EQ(q.size(), 1u);
  }
  EXPECT_EQ(Counted::live, 0);
}

TEST(Check, CheckThrowsLogicError) {
  EXPECT_NO_THROW(mu::check(true));
  EXPECT_THROW(mu::check(false, "boom"), std::logic_error);
}

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_NO_THROW(mu::require(true));
  EXPECT_THROW(mu::require(false, "bad"), std::invalid_argument);
}

TEST(Rng, SplitMixIsDeterministic) {
  mu::SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroDeterministicPerSeed) {
  mu::Xoshiro256 a(7), b(7), c(8);
  bool all_same = true;
  for (int i = 0; i < 64; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    if (va != c()) all_same = false;
  }
  EXPECT_FALSE(all_same) << "different seeds must give different streams";
}

TEST(Rng, UniformInUnitInterval) {
  mu::Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, BelowStaysInRange) {
  mu::Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u) << "1000 draws should hit every value in [0,10)";
}

TEST(RunningStats, MeanAndVariance) {
  mu::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  mu::RunningStats all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    all.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  mu::RunningStats a, b;
  a.add(1.0);
  a.merge(b);  // empty rhs
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // empty lhs
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Histogram, BucketsAndBoundaries) {
  mu::Histogram h(0.0, 10.0, 10);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bucket 0
  h.add(9.999);  // bucket 9
  h.add(10.0);   // overflow (hi is exclusive)
  h.add(5.0);    // bucket 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.bucket(5), 1u);
}

TEST(Histogram, QuantileApproximation) {
  mu::Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
}

TEST(Histogram, QuantileEmptyReturnsLoForAllQ) {
  const mu::Histogram h(10.0, 20.0, 5);
  EXPECT_EQ(h.quantile(0.0), 10.0);
  EXPECT_EQ(h.quantile(0.5), 10.0);
  EXPECT_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileSingleBucketMidpointAtExtremes) {
  mu::Histogram h(0.0, 100.0, 10);
  h.add(42.0);  // lands in [40, 50): midpoint 45
  EXPECT_EQ(h.quantile(0.0), 45.0);
  EXPECT_EQ(h.quantile(0.5), 45.0);
  EXPECT_EQ(h.quantile(1.0), 45.0);
}

TEST(Histogram, QuantileUnderflowOnly) {
  mu::Histogram h(0.0, 100.0, 10);
  h.add(-5.0);
  // All mass below the range: q=0 pins to lo, and q=1 has no occupied
  // bucket or overflow to report, so it falls back to lo as well.
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, QuantileOverflowOnly) {
  mu::Histogram h(0.0, 100.0, 10);
  h.add(250.0);
  EXPECT_EQ(h.quantile(0.0), 100.0);
  EXPECT_EQ(h.quantile(1.0), 100.0);
}

TEST(Histogram, QuantileMixedExtremesPinToBounds) {
  mu::Histogram h(0.0, 100.0, 10);
  h.add(-1.0);   // underflow
  h.add(55.0);   // in range
  h.add(300.0);  // overflow
  EXPECT_EQ(h.quantile(0.0), 0.0);    // underflow present -> lo
  EXPECT_EQ(h.quantile(1.0), 100.0);  // overflow present -> hi
  EXPECT_EQ(h.quantile(0.5), 55.0);   // midpoint of [50, 60)
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(mu::Histogram(5.0, 5.0, 10), std::invalid_argument);
  EXPECT_THROW(mu::Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Table, AlignsAndFormats) {
  mu::Table t({"name", "value"});
  t.add("latency", 12.5);
  t.add("count", std::size_t{42});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("latency"), std::string::npos);
  EXPECT_NE(s.find("12.500"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  mu::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, ScientificForExtremes) {
  EXPECT_EQ(mu::Table::format_cell(1.5e9), "1.500e+09");
  EXPECT_EQ(mu::Table::format_cell(0.0), "0.000");
}

TEST(Options, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=5", "--verbose", "pos1", "--rate=2.5"};
  mu::Options o(5, argv);
  EXPECT_EQ(o.get_int("n", 0), 5);
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(o.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(o.get_or("missing", "dflt"), "dflt");
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "pos1");
}

TEST(Options, ParsesShortOptions) {
  const char* argv[] = {"prog", "-j4", "-x=7", "-v", "-n", "9"};
  mu::Options o(6, argv);
  EXPECT_EQ(o.get_int("j", 0), 4);   // glued value
  EXPECT_EQ(o.get_int("x", 0), 7);   // '=' separator
  EXPECT_TRUE(o.get_bool("v", false));  // bare flag
  EXPECT_EQ(o.get_int("n", 0), 9);   // space-separated value
  EXPECT_TRUE(o.positional().empty());
}

TEST(Options, ShortOptionsLeaveNegativeNumbersPositional) {
  const char* argv[] = {"prog", "-5", "-j", "-2"};
  mu::Options o(4, argv);
  // "-5" is a positional, and bare "-j" followed by "-2" stays a flag
  // (the lookahead refuses dash-leading values).
  EXPECT_TRUE(o.get_bool("j", false));
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "-5");
  EXPECT_EQ(o.positional()[1], "-2");
}

TEST(Options, TracksUnusedKeys) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  mu::Options o(3, argv);
  (void)o.get_int("used", 0);
  const auto unused = o.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}
