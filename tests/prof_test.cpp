// Causal critical-path profiler tests (DESIGN.md §16): exactness of the
// six-way latency split, the cross-subsystem audit against the flight
// recorder, serial-vs-sharded bit-identity of the profile document, the
// zero-record disarmed contract, the deterministic chain-id join key, and
// the export surfaces (profile JSON, flow arrows, "prof." metrics).
//
// Also home to the shard-merge identity tests: the merged LatencyBreakdown
// and the merged event ring from a sharded run must match a serial run of
// the same workload exactly, for both paper workload shapes (Figure 2
// ping-pong, Figure 3 blocking bandwidth).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "exp/run_config.hpp"
#include "mpi/communicator.hpp"
#include "mpi/protocol.hpp"
#include "mpi/world.hpp"
#include "obs/prof.hpp"
#include "obs/recorder.hpp"

using namespace mvflow;

namespace {

constexpr std::size_t kMsgBytes = 4;
constexpr int kFloodCount = 40;

mpi::WorldConfig prof_config(int ranks, int prepost, int engine_threads = 0) {
  mpi::WorldConfig cfg;
  cfg.num_ranks = ranks;
  cfg.flow.scheme = flowctl::Scheme::user_static;
  cfg.flow.prepost = prepost;
  cfg.engine_threads = engine_threads;
  cfg.run = exp::RunConfig{};  // tests must ignore ambient MVFLOW_* exports
  cfg.profile = true;
  return cfg;
}

void enable_all_recorders(mpi::World& world) {
  world.recorder().enable(obs::FlightRecorder::kDefaultCapacity);
  if (world.is_sharded()) {
    for (int s = 0; s < world.num_ranks(); ++s) {
      world.shard_recorder(static_cast<std::size_t>(s))
          .enable(obs::FlightRecorder::kDefaultCapacity);
    }
  }
}

/// Credit-starved one-way flood: with a tiny prepost every send after the
/// first few waits on an ECM round-trip, so all six segment kinds except
/// retransmit show up in the profile.
void starved_flood(mpi::Communicator& comm) {
  std::vector<std::byte> buf(kMsgBytes);
  if (comm.rank() == 0) {
    for (int i = 0; i < kFloodCount; ++i) {
      comm.send(std::span<const std::byte>(buf.data(), kMsgBytes), 1, 0);
    }
  } else if (comm.rank() == 1) {
    for (int i = 0; i < kFloodCount; ++i) {
      comm.recv(std::span<std::byte>(buf.data(), kMsgBytes), 0, 0);
    }
  }
}

obs::ProfileAnalysis starved_analysis(int engine_threads,
                                      std::unique_ptr<mpi::World>* out_world =
                                          nullptr) {
  auto world = std::make_unique<mpi::World>(prof_config(2, 2, engine_threads));
  enable_all_recorders(*world);
  world->run(starved_flood);
  obs::ProfileAnalysis a = world->prof_analysis();
  if (out_world != nullptr) *out_world = std::move(world);
  return a;
}

/// The deterministic join/causal key: (src, dst, per-connection sequence),
/// the same packing mpi::Device uses for the engine's causal token and the
/// flow-arrow ids.
std::uint64_t chain_id(std::int16_t src, std::int16_t dst,
                       std::uint64_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(src)) << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(dst)) << 32) |
         (seq & 0xffffffffull);
}

}  // namespace

// ------------------------------------------------------------ attribution --

TEST(ProfAttribution, SegmentsSumExactlyToE2e) {
  std::unique_ptr<mpi::World> world;
  obs::ProfileAnalysis a = starved_analysis(0, &world);
  ASSERT_NE(world, nullptr);
  EXPECT_TRUE(a.exact);
  ASSERT_GT(a.messages.size(), 0u);
  for (const obs::MessageProfile& m : a.messages) {
    EXPECT_EQ(m.attributed(), m.e2e())
        << "message r" << m.src << "->r" << m.dst << " seq " << m.seq;
  }
  // Σ over the run telescopes the same way.
  EXPECT_EQ(a.payload.attributed(), a.payload.e2e_ns);
  EXPECT_EQ(a.control.attributed(), a.control.e2e_ns);
  // A prepost=2 flood is credit famine by construction: the profile must
  // show credit-stall / ECM round-trip time, not just wire time.
  EXPECT_GT(a.payload.seg[static_cast<int>(obs::Segment::credit_stall)] +
                a.payload.seg[static_cast<int>(obs::Segment::ecm_rtt)],
            0);
  // Cross-subsystem audit: raw sums equal the recorder's accumulators.
  EXPECT_TRUE(obs::audit_against(a, world->merged_latency()));
}

TEST(ProfAttribution, CriticalPathAndConnectionsPopulated) {
  obs::ProfileAnalysis a = starved_analysis(0);
  ASSERT_FALSE(a.critical_path.empty());
  for (const obs::CriticalStep& s : a.critical_path) {
    EXPECT_GE(s.ns, 0);
    EXPECT_NE(s.seq, obs::kProfNoSeq);
  }
  // Per-connection blame partitions the payload total exactly, and the
  // flood direction (r0 -> r1) must dominate it. (The teardown handshake
  // contributes a couple of messages on other directions.)
  std::int64_t blamed = 0;
  std::int64_t forward = 0;
  for (const obs::ConnectionBlame& c : a.connections) {
    blamed += c.totals.e2e_ns;
    if (c.src == 0 && c.dst == 1) forward = c.totals.e2e_ns;
  }
  EXPECT_EQ(blamed, a.payload.e2e_ns);
  EXPECT_GT(forward, a.payload.e2e_ns / 2);
}

TEST(ProfAttribution, ProfileBitIdenticalAcrossEngines) {
  const std::string serial =
      obs::profile_to_json(starved_analysis(0), "starved");
  for (int threads : {1, 2, 4}) {
    const std::string sharded =
        obs::profile_to_json(starved_analysis(threads), "starved");
    EXPECT_EQ(sharded, serial) << "engine_threads=" << threads;
  }
}

TEST(ProfAttribution, DisarmedProfilerRecordsNothing) {
  mpi::WorldConfig cfg = prof_config(2, 2);
  cfg.profile = false;
  mpi::World world(cfg);
  world.run(starved_flood);
  EXPECT_FALSE(world.profiler().enabled());
  EXPECT_TRUE(world.merged_prof().records().empty());
  EXPECT_TRUE(world.prof_analysis().messages.empty());
}

TEST(ProfAttribution, DevRecvCarriesDeterministicChainId) {
  mpi::World world(prof_config(2, 2));
  world.run(starved_flood);
  const obs::Profiler merged = world.merged_prof();
  std::size_t checked = 0;
  for (const obs::ProfRecord& r : merged.records()) {
    if (r.family != obs::ProfFamily::dev_recv) continue;
    if (r.msg_kind != static_cast<std::uint8_t>(mpi::MsgKind::eager_data))
      continue;
    ASSERT_NE(r.seq, obs::kProfNoSeq);
    // The receive-side record's aux is the engine causal token at arrival,
    // which the sender stamped as its own chain id at post_send.
    EXPECT_EQ(r.aux, chain_id(r.src, r.dst, r.seq));
    ++checked;
  }
  // At least the whole flood (the teardown handshake may add a couple).
  EXPECT_GE(checked, static_cast<std::size_t>(kFloodCount));
}

// ----------------------------------------------------------------- exports --

TEST(ProfExport, ProfileDocumentRoundTrips) {
  obs::ProfileAnalysis a = starved_analysis(0);
  const std::string path = "prof_test_export.json";
  ASSERT_TRUE(obs::write_profile(path, a, "unit"));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("mvflow.prof.v1"), std::string::npos);
  EXPECT_NE(doc.find("\"label\""), std::string::npos);
  EXPECT_NE(doc.find("credit_stall"), std::string::npos);
  EXPECT_NE(doc.find("critical_path"), std::string::npos);
  EXPECT_EQ(doc, obs::profile_to_json(a, "unit"));
  std::remove(path.c_str());
  // "-" means stdout and must always succeed (no file to fail to open).
  EXPECT_TRUE(obs::write_profile("-", a, "unit"));
}

TEST(ProfExport, FlowArrowsPairUpAcrossRanks) {
  obs::ProfileAnalysis a = starved_analysis(0);
  const std::vector<obs::FlowArrowEvent> flows = obs::flow_events(a);
  ASSERT_FALSE(flows.empty());
  for (std::size_t i = 1; i < flows.size(); ++i) {
    EXPECT_LE(flows[i - 1].t, flows[i].t) << "arrows must be time-sorted";
  }
  // Every id appears exactly twice: one "s" endpoint on the sender's track
  // and one "f" endpoint on the receiver's, begin no later than finish.
  std::map<std::uint64_t, std::vector<obs::FlowArrowEvent>> by_id;
  for (const obs::FlowArrowEvent& f : flows) by_id[f.id].push_back(f);
  for (const auto& [id, pair] : by_id) {
    ASSERT_EQ(pair.size(), 2u) << "id " << id;
    const obs::FlowArrowEvent& s = pair[0].begin ? pair[0] : pair[1];
    const obs::FlowArrowEvent& f = pair[0].begin ? pair[1] : pair[0];
    EXPECT_TRUE(s.begin);
    EXPECT_FALSE(f.begin);
    EXPECT_LE(s.t, f.t);
    EXPECT_NE(s.rank, f.rank);
  }
  EXPECT_EQ(by_id.size(), a.messages.size());
}

TEST(ProfExport, MetricsRegistryExposesBlameAndQuantiles) {
  std::unique_ptr<mpi::World> world;
  (void)starved_analysis(0, &world);
  ASSERT_NE(world, nullptr);
  const obs::Snapshot snap = world->metrics().snapshot();
  EXPECT_EQ(snap.get("prof.exact", -1.0), 1.0);
  EXPECT_GT(snap.get("prof.messages"), 0.0);
  EXPECT_GT(snap.get("prof.e2e_ns"), 0.0);
  EXPECT_TRUE(snap.has("prof.credit_stall_ns"));
  EXPECT_TRUE(snap.has("prof.conn.r0_r1.e2e_ns"));
  EXPECT_TRUE(snap.has("prof.link.up.r0.e2e_ns"));
  EXPECT_TRUE(snap.has("prof.link.down.r1.e2e_ns"));
  // Histogram quantiles are derived gauges in the same snapshot (the
  // recorder's latency source), p50/p90/p99 all present.
  EXPECT_GT(snap.count_suffix(".p50_ns"), 0u);
  EXPECT_GT(snap.count_suffix(".p90_ns"), 0u);
  EXPECT_GT(snap.count_suffix(".p99_ns"), 0u);
}

TEST(ProfExport, CsvEscapeQuotesSeparatorsAndQuotes) {
  EXPECT_EQ(obs::csv_escape("plain"), "plain");
  EXPECT_EQ(obs::csv_escape(""), "");
  EXPECT_EQ(obs::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(obs::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(obs::csv_escape("line\nbreak"), "\"line\nbreak\"");
}

// ------------------------------------------------------------ shard merge --

namespace {

using EventKey = std::tuple<std::int64_t, int, std::int16_t, std::int16_t,
                            std::uint32_t, std::uint64_t, std::int64_t>;

std::vector<EventKey> canonical_events(const mpi::World& world) {
  const std::vector<obs::TraceEvent> evs = world.merged_trace().events();
  std::vector<EventKey> keys;
  keys.reserve(evs.size());
  for (const obs::TraceEvent& e : evs) {
    keys.emplace_back(e.t.count(), static_cast<int>(e.kind), e.rank, e.peer,
                      e.qpn, e.a, e.b);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<std::pair<std::string, double>> latency_values(
    const mpi::World& world) {
  std::vector<std::pair<std::string, double>> out;
  world.merged_latency().visit([&out](std::string_view name, double v) {
    out.emplace_back(std::string(name), v);
  });
  return out;
}

/// Run `workload` serially and with one shard per rank, both recorders
/// armed, and require the merged latency accumulators and the canonically
/// sorted event multisets to match exactly (satellite of DESIGN.md §16:
/// shard-merged observability equals serial observability).
template <typename Fn>
void expect_shard_merge_identical(int ranks, int prepost, Fn&& workload) {
  std::vector<EventKey> serial_events;
  std::vector<std::pair<std::string, double>> serial_latency;
  for (int threads : {0, ranks}) {
    mpi::WorldConfig cfg;
    cfg.num_ranks = ranks;
    cfg.flow.scheme = flowctl::Scheme::user_static;
    cfg.flow.prepost = prepost;
    cfg.engine_threads = threads;
    cfg.run = exp::RunConfig{};
    mpi::World world(cfg);
    enable_all_recorders(world);
    world.run(workload);
    if (threads == 0) {
      serial_events = canonical_events(world);
      serial_latency = latency_values(world);
      ASSERT_FALSE(serial_events.empty());
      continue;
    }
    ASSERT_TRUE(world.is_sharded());
    EXPECT_EQ(canonical_events(world), serial_events)
        << "event multiset diverged at engine_threads=" << threads;
    const auto sharded_latency = latency_values(world);
    ASSERT_EQ(sharded_latency.size(), serial_latency.size());
    for (std::size_t i = 0; i < serial_latency.size(); ++i) {
      const auto& [name, serial_v] = serial_latency[i];
      EXPECT_EQ(sharded_latency[i].first, name);
      if (name.ends_with(".mean_ns")) {
        // Means divide double sums whose addition order differs between a
        // serial accumulator and per-shard partials merged afterwards;
        // everything else (counts, min/max, bucket-derived quantiles) is
        // exact, and the event-multiset check above already proved the
        // underlying samples identical.
        EXPECT_DOUBLE_EQ(sharded_latency[i].second, serial_v) << name;
      } else {
        EXPECT_EQ(sharded_latency[i].second, serial_v) << name;
      }
    }
  }
}

}  // namespace

TEST(ShardMerge, Fig2PingPongObservabilityIdentical) {
  // Figure 2's shape: 1 KiB ping-pong, run on two independent pairs so the
  // 4-shard engine actually exercises cross-shard delivery both ways.
  expect_shard_merge_identical(4, 100, [](mpi::Communicator& comm) {
    std::vector<std::byte> buf(1024);
    const int partner = comm.rank() ^ 1;
    for (int i = 0; i < 30; ++i) {
      if ((comm.rank() & 1) == 0) {
        comm.send(std::span<const std::byte>(buf.data(), buf.size()), partner,
                  0);
        comm.recv(std::span<std::byte>(buf.data(), buf.size()), partner, 0);
      } else {
        comm.recv(std::span<std::byte>(buf.data(), buf.size()), partner, 0);
        comm.send(std::span<const std::byte>(buf.data(), buf.size()), partner,
                  0);
      }
    }
  });
}

TEST(ShardMerge, Fig3BlockingBwObservabilityIdentical) {
  // Figure 3's shape: credit-limited one-way blocking streams, which drive
  // the backlog and ECM event kinds through the merge path as well.
  expect_shard_merge_identical(4, 8, [](mpi::Communicator& comm) {
    std::vector<std::byte> buf(kMsgBytes);
    const int partner = comm.rank() ^ 1;
    if ((comm.rank() & 1) == 0) {
      for (int i = 0; i < kFloodCount; ++i) {
        comm.send(std::span<const std::byte>(buf.data(), kMsgBytes), partner,
                  0);
      }
    } else {
      for (int i = 0; i < kFloodCount; ++i) {
        comm.recv(std::span<std::byte>(buf.data(), kMsgBytes), partner, 0);
      }
    }
  });
}
