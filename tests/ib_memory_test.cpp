#include <gtest/gtest.h>

#include <vector>

#include "ib/memory.hpp"

using namespace mvflow::ib;

namespace {

std::vector<std::byte> make_buf(std::size_t n) {
  return std::vector<std::byte>(n);
}

}  // namespace

TEST(MemoryRegistry, RegisterAssignsDistinctKeys) {
  MemoryRegistry reg;
  auto a = make_buf(64);
  auto b = make_buf(64);
  const auto ha = reg.register_region(a, Access::local_read);
  const auto hb = reg.register_region(b, Access::local_read);
  EXPECT_TRUE(ha.valid());
  EXPECT_NE(ha.lkey, hb.lkey);
  EXPECT_NE(ha.rkey, hb.rkey);
  EXPECT_NE(ha.lkey, ha.rkey);
  EXPECT_EQ(reg.region_count(), 2u);
  EXPECT_EQ(reg.registered_bytes(), 128u);
}

TEST(MemoryRegistry, RejectsEmptyRegion) {
  MemoryRegistry reg;
  std::vector<std::byte> empty;
  EXPECT_THROW(reg.register_region(empty, Access::local_read),
               std::invalid_argument);
}

TEST(MemoryRegistry, LocalCheckEnforcesBounds) {
  MemoryRegistry reg;
  auto buf = make_buf(128);
  const auto h = reg.register_region(buf, Access::local_read);
  EXPECT_TRUE(reg.check_local(buf.data(), 128, h.lkey, Access::local_read));
  EXPECT_TRUE(reg.check_local(buf.data() + 64, 64, h.lkey, Access::local_read));
  // One byte past the end.
  EXPECT_FALSE(reg.check_local(buf.data() + 64, 65, h.lkey, Access::local_read));
  // Before the start.
  EXPECT_FALSE(reg.check_local(buf.data() - 1, 4, h.lkey, Access::local_read));
  // Wrong key.
  EXPECT_FALSE(reg.check_local(buf.data(), 4, h.lkey + 999, Access::local_read));
}

TEST(MemoryRegistry, LocalCheckEnforcesAccessRights) {
  MemoryRegistry reg;
  auto buf = make_buf(64);
  const auto h = reg.register_region(buf, Access::local_read);
  EXPECT_TRUE(reg.check_local(buf.data(), 8, h.lkey, Access::local_read));
  EXPECT_FALSE(reg.check_local(buf.data(), 8, h.lkey, Access::local_write));
}

TEST(MemoryRegistry, RemoteCheckUsesRkeyAndRights) {
  MemoryRegistry reg;
  auto buf = make_buf(256);
  const auto h = reg.register_region(
      buf, Access::local_read | Access::local_write | Access::remote_write);
  EXPECT_TRUE(reg.check_remote(buf.data(), 256, h.rkey, Access::remote_write));
  EXPECT_FALSE(reg.check_remote(buf.data(), 257, h.rkey, Access::remote_write));
  EXPECT_FALSE(reg.check_remote(buf.data(), 8, h.rkey, Access::remote_read));
  // lkey is not valid as an rkey.
  EXPECT_FALSE(reg.check_remote(buf.data(), 8, h.lkey, Access::remote_write));
}

TEST(MemoryRegistry, DeregisterInvalidatesKeys) {
  MemoryRegistry reg;
  auto buf = make_buf(64);
  const auto h = reg.register_region(buf, Access::local_read | Access::remote_read);
  reg.deregister(h);
  EXPECT_EQ(reg.region_count(), 0u);
  EXPECT_EQ(reg.registered_bytes(), 0u);
  EXPECT_FALSE(reg.check_local(buf.data(), 8, h.lkey, Access::local_read));
  EXPECT_FALSE(reg.check_remote(buf.data(), 8, h.rkey, Access::remote_read));
  EXPECT_THROW(reg.deregister(h), std::invalid_argument);
}

TEST(MemoryRegistry, FindRkeyReturnsRegionInfo) {
  MemoryRegistry reg;
  auto buf = make_buf(100);
  const auto h = reg.register_region(buf, Access::remote_write);
  const auto info = reg.find_rkey(h.rkey);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->base, buf.data());
  EXPECT_EQ(info->length, 100u);
  EXPECT_FALSE(reg.find_rkey(h.rkey + 12345).has_value());
}
