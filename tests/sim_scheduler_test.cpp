// Randomized differential tests for the scheduler seam (DESIGN.md §14):
// the 4-ary heap and the calendar queue must hand out the exact same
// strict (t, seq) pop order under every timestamp distribution the engine
// can produce — that equivalence is what makes $MVFLOW_SCHEDULER a pure
// wall-clock knob. Queues are driven the way the engine drives them
// (peek-then-pop, pushes never behind the last popped time), across
// distributions chosen to stress each implementation's weak spot: dense
// uniform traffic (heap sift depth), same-timestamp spikes (calendar
// bucket scans), and sparse far-future tails (calendar rotor laps).
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "sim/engine.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace {

using namespace mvflow::sim;

/// Deterministic splitmix64: tests must not depend on library RNG details.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

/// One deterministic op stream applied to both queue kinds; returns the
/// pop order as (t, seq) pairs. `spread` shapes the push distribution:
/// the delta past the current virtual clock is below(spread), plus
/// occasional same-timestamp spikes and rare far-future outliers.
std::vector<std::pair<std::int64_t, std::uint64_t>> drive(
    SchedKind kind, std::uint64_t seed, std::size_t target_pending,
    std::uint64_t spread, int spike_percent, int far_percent) {
  PendingQueue pq(kind);
  Rng rng{seed};
  std::vector<std::pair<std::int64_t, std::uint64_t>> popped;
  std::uint64_t seq = 0;
  std::int64_t now = 0;
  std::int64_t last_push = 0;
  const std::size_t ops = target_pending * 6;
  for (std::size_t i = 0; i < ops; ++i) {
    // Bias pushes while below the target so the queue actually reaches it,
    // then hover around it with a 50/50 mix.
    const bool push = pq.size() < target_pending
                          ? rng.below(100) < 80
                          : rng.below(100) < 50;
    if (push || pq.size() == 0) {
      std::int64_t t;
      const std::uint64_t roll = rng.below(100);
      if (roll < static_cast<std::uint64_t>(spike_percent)) {
        t = last_push;  // same-timestamp burst (calendar bucket pile-up)
      } else if (roll < static_cast<std::uint64_t>(spike_percent + far_percent)) {
        t = now + static_cast<std::int64_t>(spread * 1000 + rng.below(spread));
      } else {
        t = now + static_cast<std::int64_t>(rng.below(spread));
      }
      if (t < now) t = now;  // engine contract: never behind the clock
      pq.push(SchedEntry{TimePoint(t), seq++, 0, 0});
      last_push = t;
    } else {
      const SchedEntry* top = pq.peek();  // non-null: size() > 0 here
      popped.emplace_back(top->t.count(), top->seq);
      now = top->t.count();
      pq.pop_min();
    }
  }
  while (pq.size() > 0) {
    const SchedEntry* top = pq.peek();
    popped.emplace_back(top->t.count(), top->seq);
    pq.pop_min();
  }
  return popped;
}

void expect_identical_order(std::size_t target_pending, std::uint64_t spread,
                            int spike_percent, int far_percent) {
  for (std::uint64_t seed : {1ull, 42ull, 0xdecafull}) {
    const auto heap = drive(SchedKind::heap4, seed, target_pending, spread,
                            spike_percent, far_percent);
    const auto cal = drive(SchedKind::calendar, seed, target_pending, spread,
                           spike_percent, far_percent);
    const auto wheel = drive(SchedKind::wheel, seed, target_pending, spread,
                             spike_percent, far_percent);
    ASSERT_EQ(heap.size(), cal.size()) << "seed " << seed;
    ASSERT_EQ(heap, cal) << "seed " << seed;
    ASSERT_EQ(heap, wheel) << "seed " << seed;
    // The order must be the strict (t, seq) total order, not merely equal.
    for (std::size_t i = 1; i < heap.size(); ++i) {
      ASSERT_LT(heap[i - 1], heap[i]) << "pop order not strictly increasing";
    }
  }
}

TEST(SchedulerDifferential, UniformDense) {
  expect_identical_order(/*target_pending=*/512, /*spread=*/2048,
                         /*spike_percent=*/0, /*far_percent=*/0);
}

TEST(SchedulerDifferential, SameTimestampSpikes) {
  expect_identical_order(512, 256, /*spike_percent=*/40, /*far_percent=*/0);
}

TEST(SchedulerDifferential, SparseFarFutureTail) {
  // Mostly near-term events with a far-future tail (idle retransmit
  // timers): the calendar's fruitless-lap fallback territory.
  expect_identical_order(64, 100'000, /*spike_percent=*/5, /*far_percent=*/20);
}

TEST(SchedulerDifferential, TinyPendingSet) {
  expect_identical_order(4, 128, 10, 10);
}

TEST(SchedulerDifferential, LargePendingSet) {
  expect_identical_order(20'000, 1 << 16, 5, 2);
}

TEST(SchedulerDifferential, BeyondWheelHorizon) {
  // Far-future outliers land ~1000 s out — past the wheel's ~275 s L3 span
  // — so this drives the overflow vector and its migration back into the
  // wheel once nearer traffic drains.
  expect_identical_order(64, 1'000'000'000, /*spike_percent=*/5,
                         /*far_percent=*/20);
}

// ---- Engine-level differential: whole-simulation equivalence ----------
//
// Drives two engines through an identical self-expanding random workload —
// events that reschedule themselves, fan out, and cancel earlier timers —
// and requires the full execution journals and perf counters to match.
// Cancellation matters here: it exercises the zombie-reaping path, where
// the two schedulers surface dead entries through the same peek/pop seam.

struct EngineRun {
  std::vector<std::pair<std::int64_t, int>> journal;  // (fire time, id)
  std::uint64_t executed = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t dead_pops = 0;
  std::uint64_t timer_purges = 0;
  std::uint64_t cancelled = 0;

  bool operator==(const EngineRun&) const = default;

  /// The scheduler-invariant slice: what the simulation *did*. dead_pops
  /// and timer_purges legitimately differ per scheduler (the wheel purges
  /// tombstones in bulk instead of reaping them at the front), but their
  /// sum must equal cancelled once the queue fully drains — every zombie
  /// is accounted exactly once.
  std::tuple<const std::vector<std::pair<std::int64_t, int>>&, std::uint64_t,
             std::uint64_t>
  behavior() const {
    return {journal, executed, scheduled};
  }
};

EngineRun run_engine(SchedKind kind, std::uint64_t seed) {
  Engine eng(kind);
  Rng rng{seed};
  std::vector<std::pair<std::int64_t, int>> journal;
  std::vector<EventHandle> timers;
  int next_id = 0;

  // Fixed-size context so every callback capture is one pointer wide.
  struct Ctx {
    Engine* eng;
    Rng* rng;
    std::vector<std::pair<std::int64_t, int>>* journal;
    std::vector<EventHandle>* timers;
    int* next_id;
  } ctx{&eng, &rng, &journal, &timers, &next_id};

  struct Step {
    static void fire(Ctx* c, int id, int depth) {
      c->journal->emplace_back(c->eng->now().count(), id);
      if (depth <= 0) return;
      // Fan out 1-2 children at randomized offsets (including zero-delay
      // same-timestamp children), park a cancellable timer, and cancel a
      // random earlier timer about half the time.
      const int kids = 1 + static_cast<int>(c->rng->below(2));
      for (int k = 0; k < kids; ++k) {
        const Duration d(static_cast<std::int64_t>(c->rng->below(300)));
        const int id2 = (*c->next_id)++;
        Ctx* cc = c;
        c->eng->schedule_after(
            d, [cc, id2, depth] { fire(cc, id2, depth - 1); });
      }
      const int tid = (*c->next_id)++;
      Ctx* cc = c;
      c->timers->push_back(c->eng->schedule_after(
          Duration(500 + static_cast<std::int64_t>(c->rng->below(500))),
          [cc, tid] { fire(cc, tid, 0); }));
      if (!c->timers->empty() && c->rng->below(2) == 0) {
        const std::size_t victim = c->rng->below(c->timers->size());
        (*c->timers)[victim].cancel();
      }
    }
  };

  for (int i = 0; i < 8; ++i) {
    const int id = next_id++;
    Ctx* cc = &ctx;
    eng.schedule_at(TimePoint(static_cast<std::int64_t>(rng.below(100))),
                    [cc, id] { Step::fire(cc, id, 9); });
  }
  eng.run();

  EngineRun out;
  out.journal = std::move(journal);
  out.executed = eng.perf_stats().executed;
  out.scheduled = eng.perf_stats().scheduled;
  out.dead_pops = eng.perf_stats().dead_pops;
  out.timer_purges = eng.perf_stats().timer_purges;
  out.cancelled = eng.perf_stats().cancelled_before_fire;
  return out;
}

TEST(SchedulerDifferential, WholeEngineRunsIdentical) {
  for (std::uint64_t seed : {7ull, 1234ull}) {
    const EngineRun heap = run_engine(SchedKind::heap4, seed);
    const EngineRun cal = run_engine(SchedKind::calendar, seed);
    const EngineRun wheel = run_engine(SchedKind::wheel, seed);
    EXPECT_GT(heap.executed, 500u) << "workload too small to mean anything";
    EXPECT_GT(heap.dead_pops, 0u) << "cancellation path not exercised";
    EXPECT_EQ(heap, cal) << "seed " << seed;
    EXPECT_EQ(heap.behavior(), wheel.behavior()) << "seed " << seed;
    // Zombie accounting: after a full drain every cancelled entry was
    // either reaped at the front or bulk-purged, never both, never lost.
    EXPECT_EQ(wheel.dead_pops + wheel.timer_purges, wheel.cancelled)
        << "seed " << seed;
    EXPECT_LE(wheel.dead_pops, heap.dead_pops) << "seed " << seed;
    EXPECT_EQ(heap.timer_purges, 0u);
    EXPECT_EQ(cal.timer_purges, 0u);
  }
}

// run_until must leave later events queued identically under all kinds.
TEST(SchedulerDifferential, RunUntilBoundaryIdentical) {
  for (SchedKind kind :
       {SchedKind::heap4, SchedKind::calendar, SchedKind::wheel}) {
    Engine eng(kind);
    std::vector<int> fired;
    for (int i = 0; i < 50; ++i) {
      eng.schedule_at(TimePoint(i * 10), [&fired, i] { fired.push_back(i); });
    }
    eng.run_until(TimePoint(245));
    EXPECT_EQ(fired.size(), 25u) << to_string(kind);
    EXPECT_EQ(eng.pending_events(), 25u) << to_string(kind);
    EXPECT_EQ(eng.now(), TimePoint(245)) << to_string(kind);
  }
}

// ---- Timer-wheel arm/disarm/re-arm fuzz (ISSUE 10 satellite) ----------
//
// The wheel exists for re-armed timers, so fuzz exactly that: a pool of
// timer slots randomly armed, disarmed, and re-armed between bounded
// dispatch windows, at delays that straddle several wheel levels. The
// journal must be byte-identical to the 4-ary heap's, and pending_events()
// must agree at every window boundary even while the wheel purges
// tombstones mid-run.
EngineRun run_rearm_fuzz(SchedKind kind, std::uint64_t seed,
                         std::vector<std::size_t>* pending_trace) {
  Engine eng(kind);
  Rng rng{seed};
  std::vector<std::pair<std::int64_t, int>> journal;
  std::vector<EventHandle> timers(64);
  int next_id = 0;

  for (int round = 0; round < 300; ++round) {
    for (int m = 0; m < 8; ++m) {
      const std::size_t slot = rng.below(timers.size());
      const std::uint64_t action = rng.below(4);
      // Delays span L0 (64 ns) through L2 (1 s) wheel territory, with a
      // rare far-future arm to exercise higher levels and cascades.
      const auto delay = [&]() -> Duration {
        const std::uint64_t roll = rng.below(100);
        if (roll < 2) return Duration(1 + rng.below(200'000'000));
        if (roll < 30) return Duration(1 + rng.below(100'000));
        return Duration(1 + rng.below(500));
      };
      if (action == 0 && timers[slot].valid()) {
        timers[slot].cancel();  // disarm
      } else if (action == 1 && timers[slot].valid()) {
        timers[slot].cancel();  // re-arm
        const int id = next_id++;
        auto* jp = &journal;
        Engine* ep = &eng;
        timers[slot] = eng.schedule_after(
            delay(), [jp, ep, id] { jp->emplace_back(ep->now().count(), id); });
      } else {
        const int id = next_id++;  // arm (or arm over an expired slot)
        auto* jp = &journal;
        Engine* ep = &eng;
        timers[slot] = eng.schedule_after(
            delay(), [jp, ep, id] { jp->emplace_back(ep->now().count(), id); });
      }
    }
    eng.run_until(eng.now() + Duration(2'000));
    if (pending_trace != nullptr) {
      pending_trace->push_back(eng.pending_events());
    }
  }
  eng.run();

  EngineRun out;
  out.journal = std::move(journal);
  out.executed = eng.perf_stats().executed;
  out.scheduled = eng.perf_stats().scheduled;
  out.dead_pops = eng.perf_stats().dead_pops;
  out.timer_purges = eng.perf_stats().timer_purges;
  out.cancelled = eng.perf_stats().cancelled_before_fire;
  return out;
}

TEST(TimerWheel, RearmFuzzIdenticalToHeap) {
  for (std::uint64_t seed : {3ull, 99ull, 0xabcdull}) {
    std::vector<std::size_t> heap_pending;
    std::vector<std::size_t> wheel_pending;
    const EngineRun heap = run_rearm_fuzz(SchedKind::heap4, seed, &heap_pending);
    const EngineRun wheel =
        run_rearm_fuzz(SchedKind::wheel, seed, &wheel_pending);
    EXPECT_GT(heap.cancelled, 100u) << "disarm path not exercised";
    EXPECT_EQ(heap.behavior(), wheel.behavior()) << "seed " << seed;
    EXPECT_EQ(heap_pending, wheel_pending) << "seed " << seed;
    EXPECT_EQ(wheel.dead_pops + wheel.timer_purges, wheel.cancelled)
        << "seed " << seed;
  }
}

// The one way the wheel's cursor can get ahead of live traffic: a
// far-future tombstone surfaces at the front (everything else drained),
// its reap drags the cursor out, and the next push lands *below* the
// cursor — which must trigger the full rebuild, not a misplaced bucket.
TEST(TimerWheel, RebuildOnPushBelowCursor) {
  for (SchedKind kind :
       {SchedKind::heap4, SchedKind::calendar, SchedKind::wheel}) {
    Engine eng(kind);
    std::vector<int> fired;
    // A far-future timer (L3 territory), cancelled immediately: a zombie.
    EventHandle far = eng.schedule_at(TimePoint(200'000'000'000),
                                      [&fired] { fired.push_back(-1); });
    far.cancel();
    // Drain: the zombie is reaped (or purged), advancing internal cursors.
    eng.run();
    EXPECT_EQ(eng.pending_events(), 0u) << to_string(kind);
    // New traffic at times far below the reaped zombie's timestamp.
    for (int i = 0; i < 10; ++i) {
      eng.schedule_at(eng.now() + Duration(10 + i),
                      [&fired, i] { fired.push_back(i); });
    }
    eng.run();
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}))
        << to_string(kind);
  }
}

}  // namespace
