// Golden-determinism guard: the fig2 (latency) and fig3 (bandwidth) tables
// must be bit-identical to the outputs recorded before the pooled-scheduler
// and zero-copy-packet rework. The scheduler's (time, seq) tie-break and the
// packet path's recycle-after-completion rule together guarantee pooling
// cannot change event order; this test is the executable form of that claim.
//
// The hashes below were captured from the seed engine (std::priority_queue +
// shared_ptr cancel flags, per-message make_shared payloads) running the
// exact same table builders the bench binaries print.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "bw_figure.hpp"
#include "fig_latency.hpp"

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Captured from the pre-pooling engine (see file comment). If a change
// legitimately alters protocol timing, re-record these from a build at the
// commit *before* the behavioral change and explain the delta in
// EXPERIMENTS.md; they must never move for a pure performance refactor.
constexpr std::uint64_t kFig2GoldenHash = 9228963969060808259ull;
constexpr std::uint64_t kFig3GoldenHash = 7566288777037796131ull;

}  // namespace

TEST(GoldenDeterminism, Fig2LatencyTableBitIdentical) {
  const std::string text = mvflow::bench::build_fig2_table(/*iters=*/200)
                               .to_string();
  EXPECT_EQ(fnv1a(text), kFig2GoldenHash) << "fig2 table changed:\n" << text;
}

TEST(GoldenDeterminism, Fig3BandwidthTableBitIdentical) {
  const std::string text =
      mvflow::bench::build_bw_table(/*msg_bytes=*/4, /*prepost=*/100,
                                    /*blocking=*/true)
          .to_string();
  EXPECT_EQ(fnv1a(text), kFig3GoldenHash) << "fig3 table changed:\n" << text;
}

// The parallel sweep runner must not merely agree with itself across thread
// counts — it must reproduce the *serial golden hashes* above. Each World is
// single-threaded and fully self-contained, so spreading the independent
// cells across 4 or 8 workers cannot change a single byte of any table.
TEST(GoldenDeterminism, Fig2TableBitIdenticalAtJobs4) {
  const std::string text =
      mvflow::bench::build_fig2_table(/*iters=*/200, nullptr, /*jobs=*/4)
          .to_string();
  EXPECT_EQ(fnv1a(text), kFig2GoldenHash) << "fig2 -j4 diverged:\n" << text;
}

TEST(GoldenDeterminism, Fig2TableBitIdenticalAtJobs8) {
  const std::string text =
      mvflow::bench::build_fig2_table(/*iters=*/200, nullptr, /*jobs=*/8)
          .to_string();
  EXPECT_EQ(fnv1a(text), kFig2GoldenHash) << "fig2 -j8 diverged:\n" << text;
}

TEST(GoldenDeterminism, Fig3TableBitIdenticalAtJobs4) {
  const std::string text =
      mvflow::bench::build_bw_table(/*msg_bytes=*/4, /*prepost=*/100,
                                    /*blocking=*/true, nullptr, /*jobs=*/4)
          .to_string();
  EXPECT_EQ(fnv1a(text), kFig3GoldenHash) << "fig3 -j4 diverged:\n" << text;
}

TEST(GoldenDeterminism, Fig3TableBitIdenticalAtJobs8) {
  const std::string text =
      mvflow::bench::build_bw_table(/*msg_bytes=*/4, /*prepost=*/100,
                                    /*blocking=*/true, nullptr, /*jobs=*/8)
          .to_string();
  EXPECT_EQ(fnv1a(text), kFig3GoldenHash) << "fig3 -j8 diverged:\n" << text;
}
