// Golden-determinism guard: the fig2 (latency) and fig3 (bandwidth) tables
// must be bit-identical to the outputs recorded before the pooled-scheduler
// and zero-copy-packet rework. The scheduler's (time, seq) tie-break and the
// packet path's recycle-after-completion rule together guarantee pooling
// cannot change event order; this test is the executable form of that claim.
//
// The hashes below were captured from the seed engine (std::priority_queue +
// shared_ptr cancel flags, per-message make_shared payloads) running the
// exact same table builders the bench binaries print.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "bw_figure.hpp"
#include "fig_latency.hpp"
#include "sim/scheduler.hpp"

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Captured from the pre-pooling engine (see file comment). If a change
// legitimately alters protocol timing, re-record these from a build at the
// commit *before* the behavioral change and explain the delta in
// EXPERIMENTS.md; they must never move for a pure performance refactor.
constexpr std::uint64_t kFig2GoldenHash = 9228963969060808259ull;
constexpr std::uint64_t kFig3GoldenHash = 7566288777037796131ull;

}  // namespace

TEST(GoldenDeterminism, Fig2LatencyTableBitIdentical) {
  const std::string text = mvflow::bench::build_fig2_table(/*iters=*/200)
                               .to_string();
  EXPECT_EQ(fnv1a(text), kFig2GoldenHash) << "fig2 table changed:\n" << text;
}

TEST(GoldenDeterminism, Fig3BandwidthTableBitIdentical) {
  const std::string text =
      mvflow::bench::build_bw_table(/*msg_bytes=*/4, /*prepost=*/100,
                                    /*blocking=*/true)
          .to_string();
  EXPECT_EQ(fnv1a(text), kFig3GoldenHash) << "fig3 table changed:\n" << text;
}

// The parallel sweep runner must not merely agree with itself across thread
// counts — it must reproduce the *serial golden hashes* above. Each World is
// single-threaded and fully self-contained, so spreading the independent
// cells across 4 or 8 workers cannot change a single byte of any table.
TEST(GoldenDeterminism, Fig2TableBitIdenticalAtJobs4) {
  const std::string text =
      mvflow::bench::build_fig2_table(/*iters=*/200, nullptr, /*jobs=*/4)
          .to_string();
  EXPECT_EQ(fnv1a(text), kFig2GoldenHash) << "fig2 -j4 diverged:\n" << text;
}

TEST(GoldenDeterminism, Fig2TableBitIdenticalAtJobs8) {
  const std::string text =
      mvflow::bench::build_fig2_table(/*iters=*/200, nullptr, /*jobs=*/8)
          .to_string();
  EXPECT_EQ(fnv1a(text), kFig2GoldenHash) << "fig2 -j8 diverged:\n" << text;
}

TEST(GoldenDeterminism, Fig3TableBitIdenticalAtJobs4) {
  const std::string text =
      mvflow::bench::build_bw_table(/*msg_bytes=*/4, /*prepost=*/100,
                                    /*blocking=*/true, nullptr, /*jobs=*/4)
          .to_string();
  EXPECT_EQ(fnv1a(text), kFig3GoldenHash) << "fig3 -j4 diverged:\n" << text;
}

TEST(GoldenDeterminism, Fig3TableBitIdenticalAtJobs8) {
  const std::string text =
      mvflow::bench::build_bw_table(/*msg_bytes=*/4, /*prepost=*/100,
                                    /*blocking=*/true, nullptr, /*jobs=*/8)
          .to_string();
  EXPECT_EQ(fnv1a(text), kFig3GoldenHash) << "fig3 -j8 diverged:\n" << text;
}

// ---- engine configurations (DESIGN.md §14) ----------------------------
//
// The scheduler seam and the sharded engine must also reproduce the serial
// golden hashes. The calendar queue pops the identical (t, seq) order, so
// it can never move a byte; the sharded engine agrees with the serial
// reference on these 2-rank worlds because every switch downlink has a
// single source shard — the barrier drain order coincides with the serial
// transmit order. Every (engine_threads, scheduler) combination below must
// therefore produce the exact same tables the seed engine produced.

namespace {
constexpr int kHeap4 = static_cast<int>(mvflow::sim::SchedKind::heap4);
constexpr int kCalendar = static_cast<int>(mvflow::sim::SchedKind::calendar);
constexpr int kWheel = static_cast<int>(mvflow::sim::SchedKind::wheel);

std::uint64_t fig2_hash(mvflow::bench::EngineMode mode) {
  return fnv1a(
      mvflow::bench::build_fig2_table(/*iters=*/200, nullptr, /*jobs=*/1, mode)
          .to_string());
}

std::uint64_t fig3_hash(mvflow::bench::EngineMode mode) {
  return fnv1a(mvflow::bench::build_bw_table(/*msg_bytes=*/4, /*prepost=*/100,
                                             /*blocking=*/true, nullptr,
                                             /*jobs=*/1, mode)
                   .to_string());
}
}  // namespace

TEST(GoldenDeterminism, Fig2CalendarSchedulerBitIdentical) {
  EXPECT_EQ(fig2_hash({.engine_threads = 0, .scheduler = kCalendar}),
            kFig2GoldenHash);
}

TEST(GoldenDeterminism, Fig3CalendarSchedulerBitIdentical) {
  EXPECT_EQ(fig3_hash({.engine_threads = 0, .scheduler = kCalendar}),
            kFig3GoldenHash);
}

TEST(GoldenDeterminism, Fig2TimerWheelSchedulerBitIdentical) {
  EXPECT_EQ(fig2_hash({.engine_threads = 0, .scheduler = kWheel}),
            kFig2GoldenHash);
}

TEST(GoldenDeterminism, Fig3TimerWheelSchedulerBitIdentical) {
  EXPECT_EQ(fig3_hash({.engine_threads = 0, .scheduler = kWheel}),
            kFig3GoldenHash);
}

TEST(GoldenDeterminism, Fig2ShardedEngineBitIdentical) {
  EXPECT_EQ(fig2_hash({.engine_threads = 1, .scheduler = kHeap4}),
            kFig2GoldenHash);
  EXPECT_EQ(fig2_hash({.engine_threads = 2, .scheduler = kHeap4}),
            kFig2GoldenHash);
  EXPECT_EQ(fig2_hash({.engine_threads = 8, .scheduler = kCalendar}),
            kFig2GoldenHash);
  EXPECT_EQ(fig2_hash({.engine_threads = 4, .scheduler = kWheel}),
            kFig2GoldenHash);
}

TEST(GoldenDeterminism, Fig3ShardedEngineBitIdentical) {
  EXPECT_EQ(fig3_hash({.engine_threads = 2, .scheduler = kHeap4}),
            kFig3GoldenHash);
  EXPECT_EQ(fig3_hash({.engine_threads = 8, .scheduler = kCalendar}),
            kFig3GoldenHash);
  EXPECT_EQ(fig3_hash({.engine_threads = 4, .scheduler = kWheel}),
            kFig3GoldenHash);
}
