// Reliable Connection protocol tests: delivery, ordering, segmentation,
// RNR NAK/retry, RDMA write/read, error semantics, calibration sanity.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "ib/fabric.hpp"
#include "sim/engine.hpp"

using namespace mvflow::ib;
using namespace mvflow::sim;

namespace {

class RcFixture : public ::testing::Test {
 protected:
  RcFixture() { reset(FabricConfig{}); }

  void reset(FabricConfig cfg, int nodes = 2) {
    fabric_.reset();
    engine_ = std::make_unique<Engine>();
    fabric_ = std::make_unique<Fabric>(*engine_, cfg, nodes);
    cq_a_ = fabric_->hca(0).create_cq();
    cq_b_ = fabric_->hca(1).create_cq();
    qp_a_ = fabric_->hca(0).create_qp(cq_a_, cq_a_);
    qp_b_ = fabric_->hca(1).create_qp(cq_b_, cq_b_);
    Fabric::connect(*qp_a_, *qp_b_);

    src_.assign(1 << 20, std::byte{0});
    dst_.assign(1 << 20, std::byte{0});
    for (std::size_t i = 0; i < src_.size(); ++i)
      src_[i] = static_cast<std::byte>(i * 31 + 7);
    mr_src_ = fabric_->hca(0).register_memory(
        src_, Access::local_read | Access::local_write | Access::remote_read);
    mr_dst_ = fabric_->hca(1).register_memory(
        dst_, Access::local_read | Access::local_write | Access::remote_write |
                  Access::remote_read);
  }

  /// Post a send of `len` bytes from A's src buffer at offset 0.
  void post_send_a(std::uint32_t len, std::uint64_t wr_id = 1) {
    SendWr wr;
    wr.wr_id = wr_id;
    wr.opcode = WrOpcode::send;
    wr.local_addr = src_.data();
    wr.length = len;
    wr.lkey = mr_src_.lkey;
    qp_a_->post_send(wr);
  }

  /// Post a receive into B's dst buffer at a given offset.
  void post_recv_b(std::uint32_t len, std::size_t offset = 0,
                   std::uint64_t wr_id = 100) {
    RecvWr wr;
    wr.wr_id = wr_id;
    wr.local_addr = dst_.data() + offset;
    wr.length = len;
    wr.lkey = mr_dst_.lkey;
    qp_b_->post_recv(wr);
  }

  std::vector<Completion> drain(CompletionQueue& cq) {
    std::vector<Completion> out;
    while (auto wc = cq.poll()) out.push_back(*wc);
    return out;
  }

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<Fabric> fabric_;
  std::shared_ptr<CompletionQueue> cq_a_, cq_b_;
  std::shared_ptr<QueuePair> qp_a_, qp_b_;
  std::vector<std::byte> src_, dst_;
  MemoryRegionHandle mr_src_, mr_dst_;
};

}  // namespace

TEST_F(RcFixture, SingleSendDeliversPayloadAndCompletions) {
  post_recv_b(4096);
  post_send_a(1000);
  engine_->run();

  const auto wcs_b = drain(*cq_b_);
  ASSERT_EQ(wcs_b.size(), 1u);
  EXPECT_TRUE(wcs_b[0].ok());
  EXPECT_EQ(wcs_b[0].opcode, WcOpcode::recv);
  EXPECT_EQ(wcs_b[0].byte_len, 1000u);
  EXPECT_EQ(wcs_b[0].src_qp, qp_a_->qpn());
  EXPECT_EQ(std::memcmp(dst_.data(), src_.data(), 1000), 0);

  const auto wcs_a = drain(*cq_a_);
  ASSERT_EQ(wcs_a.size(), 1u);
  EXPECT_TRUE(wcs_a[0].ok());
  EXPECT_EQ(wcs_a[0].opcode, WcOpcode::send);
}

TEST_F(RcFixture, UnsignaledSendProducesNoSendCqe) {
  post_recv_b(4096);
  SendWr wr;
  wr.wr_id = 9;
  wr.local_addr = src_.data();
  wr.length = 16;
  wr.lkey = mr_src_.lkey;
  wr.signaled = false;
  qp_a_->post_send(wr);
  engine_->run();
  EXPECT_TRUE(drain(*cq_a_).empty());
  EXPECT_EQ(drain(*cq_b_).size(), 1u);
}

TEST_F(RcFixture, MultiPacketMessageSegmentsAtMtu) {
  const std::uint32_t len = 3 * 2048 + 500;  // 4 packets at MTU 2048
  post_recv_b(1 << 16);
  post_send_a(len);
  engine_->run();

  const auto wcs_b = drain(*cq_b_);
  ASSERT_EQ(wcs_b.size(), 1u);
  EXPECT_EQ(wcs_b[0].byte_len, len);
  EXPECT_EQ(std::memcmp(dst_.data(), src_.data(), len), 0);
  EXPECT_EQ(qp_a_->stats().packets_sent, 4u);
}

TEST_F(RcFixture, ZeroLengthSendWorks) {
  post_recv_b(64);
  post_send_a(0);
  engine_->run();
  const auto wcs_b = drain(*cq_b_);
  ASSERT_EQ(wcs_b.size(), 1u);
  EXPECT_EQ(wcs_b[0].byte_len, 0u);
}

TEST_F(RcFixture, ManySendsArriveInOrder) {
  constexpr int kCount = 50;
  for (int i = 0; i < kCount; ++i) post_recv_b(4096, 4096u * i, 100 + i);
  for (int i = 0; i < kCount; ++i) {
    SendWr wr;
    wr.wr_id = static_cast<std::uint64_t>(i);
    wr.local_addr = src_.data() + 8 * i;
    wr.length = 8;
    wr.lkey = mr_src_.lkey;
    qp_a_->post_send(wr);
  }
  engine_->run();

  const auto wcs_b = drain(*cq_b_);
  ASSERT_EQ(wcs_b.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(wcs_b[i].wr_id, 100u + i) << "receives must match FIFO order";
    EXPECT_EQ(std::memcmp(dst_.data() + 4096u * i, src_.data() + 8 * i, 8), 0);
  }
  const auto wcs_a = drain(*cq_a_);
  ASSERT_EQ(wcs_a.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(wcs_a[i].wr_id, static_cast<std::uint64_t>(i));
}

TEST_F(RcFixture, RecvBufferTooSmallErrorsQp) {
  post_recv_b(100);
  post_send_a(500);
  engine_->run();
  const auto wcs_b = drain(*cq_b_);
  ASSERT_GE(wcs_b.size(), 1u);
  EXPECT_EQ(wcs_b[0].status, WcStatus::length_error);
  EXPECT_EQ(qp_b_->state(), QpState::error);
}

TEST_F(RcFixture, RnrNakRetriesUntilBufferPosted) {
  // No receive posted: the send must be NAK'd, then succeed after the
  // buffer appears (before the retry fires).
  post_send_a(256);
  // Post the receive 5 us in: first attempt arrives ~2 us -> RNR NAK;
  // retry timer (20 us default) fires at ~22 us and succeeds.
  engine_->schedule_at(TimePoint(microseconds(5)), [&] { post_recv_b(4096); });
  engine_->run();

  const auto wcs_b = drain(*cq_b_);
  ASSERT_EQ(wcs_b.size(), 1u);
  EXPECT_TRUE(wcs_b[0].ok());
  EXPECT_EQ(std::memcmp(dst_.data(), src_.data(), 256), 0);
  EXPECT_EQ(qp_b_->stats().rnr_naks_sent, 1u);
  EXPECT_EQ(qp_a_->stats().rnr_naks_received, 1u);
  EXPECT_EQ(qp_a_->stats().retransmitted_messages, 1u);
  // The completion happened after at least one RNR timeout.
  EXPECT_GE(engine_->now(), TimePoint(fabric_->config().rnr_timeout));
  const auto wcs_a = drain(*cq_a_);
  ASSERT_EQ(wcs_a.size(), 1u);
  EXPECT_TRUE(wcs_a[0].ok());
}

TEST_F(RcFixture, RnrRepeatsWhileBufferMissing) {
  post_send_a(64);
  // Post the buffer only after 3 retry windows have passed.
  engine_->schedule_at(TimePoint(microseconds(70)), [&] { post_recv_b(4096); });
  engine_->run();
  EXPECT_GE(qp_a_->stats().rnr_naks_received, 3u);
  const auto wcs_b = drain(*cq_b_);
  ASSERT_EQ(wcs_b.size(), 1u);
  EXPECT_TRUE(wcs_b[0].ok());
}

TEST_F(RcFixture, PipelinedMessagesAfterRnrAreDroppedAndReplayed) {
  // 5 back-to-back sends, only the receiver is slow to post: all should
  // eventually land, in order, with drops counted at the responder.
  for (int i = 0; i < 5; ++i) post_send_a(512, static_cast<std::uint64_t>(i));
  engine_->schedule_at(TimePoint(microseconds(10)), [&] {
    for (int i = 0; i < 5; ++i) post_recv_b(4096, 4096u * i, 200 + i);
  });
  engine_->run();

  const auto wcs_b = drain(*cq_b_);
  ASSERT_EQ(wcs_b.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(wcs_b[i].ok());
    EXPECT_EQ(wcs_b[i].wr_id, 200u + i);
    EXPECT_EQ(std::memcmp(dst_.data() + 4096u * i, src_.data(), 512), 0);
  }
  EXPECT_GT(qp_b_->stats().packets_dropped, 0u)
      << "pipelined wire copies behind the RNR must be dropped";
  EXPECT_GE(qp_a_->stats().retransmitted_messages, 5u);
}

TEST_F(RcFixture, RnrRetryLimitErrorsQpWhenExceeded) {
  FabricConfig cfg;
  cfg.rnr_retry_limit = 2;
  reset(cfg);
  post_send_a(64);
  engine_->run();  // receiver never posts

  const auto wcs_a = drain(*cq_a_);
  ASSERT_EQ(wcs_a.size(), 1u);
  EXPECT_EQ(wcs_a[0].status, WcStatus::rnr_retry_exceeded);
  EXPECT_EQ(qp_a_->state(), QpState::error);
  EXPECT_EQ(qp_a_->stats().rnr_naks_received, 3u);  // initial + 2 retries
}

TEST_F(RcFixture, InfiniteRetryNeverErrors) {
  post_send_a(64);
  engine_->run_until(TimePoint(milliseconds(5)));
  EXPECT_EQ(qp_a_->state(), QpState::ready);
  EXPECT_GT(qp_a_->stats().rnr_naks_received, 100u);
  post_recv_b(4096);
  engine_->run();
  EXPECT_EQ(drain(*cq_b_).size(), 1u);
}

TEST_F(RcFixture, AckAdvertisesRemainingRecvCredits) {
  for (int i = 0; i < 7; ++i) post_recv_b(4096, 4096u * i, 300 + i);
  post_send_a(32);
  engine_->run();
  // After consuming one of 7 buffers the ACK advertises 6.
  EXPECT_EQ(qp_a_->stats().last_advertised_credits, 6);
}

TEST_F(RcFixture, RdmaWriteDeliversWithoutRecvWqe) {
  SendWr wr;
  wr.wr_id = 42;
  wr.opcode = WrOpcode::rdma_write;
  wr.local_addr = src_.data();
  wr.length = 10000;
  wr.lkey = mr_src_.lkey;
  wr.remote_addr = dst_.data() + 128;
  wr.rkey = mr_dst_.rkey;
  qp_a_->post_send(wr);
  engine_->run();

  EXPECT_TRUE(drain(*cq_b_).empty()) << "RDMA write is transparent to B";
  const auto wcs_a = drain(*cq_a_);
  ASSERT_EQ(wcs_a.size(), 1u);
  EXPECT_TRUE(wcs_a[0].ok());
  EXPECT_EQ(wcs_a[0].opcode, WcOpcode::rdma_write);
  EXPECT_EQ(std::memcmp(dst_.data() + 128, src_.data(), 10000), 0);
}

TEST_F(RcFixture, RdmaWriteBadRkeyErrorsRequester) {
  SendWr wr;
  wr.wr_id = 43;
  wr.opcode = WrOpcode::rdma_write;
  wr.local_addr = src_.data();
  wr.length = 64;
  wr.lkey = mr_src_.lkey;
  wr.remote_addr = dst_.data();
  wr.rkey = mr_dst_.rkey + 9999;
  qp_a_->post_send(wr);
  engine_->run();

  const auto wcs_a = drain(*cq_a_);
  ASSERT_EQ(wcs_a.size(), 1u);
  EXPECT_EQ(wcs_a[0].status, WcStatus::remote_access_error);
  EXPECT_EQ(qp_a_->state(), QpState::error);
}

TEST_F(RcFixture, RdmaWriteOutOfBoundsRejected) {
  SendWr wr;
  wr.wr_id = 44;
  wr.opcode = WrOpcode::rdma_write;
  wr.local_addr = src_.data();
  wr.length = 4096;
  wr.lkey = mr_src_.lkey;
  wr.remote_addr = dst_.data() + dst_.size() - 100;  // 100 bytes left
  wr.rkey = mr_dst_.rkey;
  qp_a_->post_send(wr);
  engine_->run();
  const auto wcs_a = drain(*cq_a_);
  ASSERT_EQ(wcs_a.size(), 1u);
  EXPECT_EQ(wcs_a[0].status, WcStatus::remote_access_error);
}

TEST_F(RcFixture, RdmaReadFetchesRemoteBytes) {
  // B writes a pattern; A reads it back into its own buffer.
  for (int i = 0; i < 5000; ++i) dst_[i] = static_cast<std::byte>(255 - i % 251);
  SendWr wr;
  wr.wr_id = 45;
  wr.opcode = WrOpcode::rdma_read;
  wr.local_addr = src_.data() + 100000;
  wr.length = 5000;
  wr.lkey = mr_src_.lkey;
  wr.remote_addr = dst_.data();
  wr.rkey = mr_dst_.rkey;
  qp_a_->post_send(wr);
  engine_->run();

  const auto wcs_a = drain(*cq_a_);
  ASSERT_EQ(wcs_a.size(), 1u);
  EXPECT_TRUE(wcs_a[0].ok());
  EXPECT_EQ(wcs_a[0].opcode, WcOpcode::rdma_read);
  EXPECT_EQ(std::memcmp(src_.data() + 100000, dst_.data(), 5000), 0);
}

TEST_F(RcFixture, LocalProtectionErrorOnBadLkey) {
  SendWr wr;
  wr.wr_id = 46;
  wr.local_addr = src_.data();
  wr.length = 64;
  wr.lkey = mr_src_.lkey + 777;
  qp_a_->post_send(wr);
  engine_->run();
  const auto wcs_a = drain(*cq_a_);
  ASSERT_EQ(wcs_a.size(), 1u);
  EXPECT_EQ(wcs_a[0].status, WcStatus::local_protection_error);
  EXPECT_EQ(qp_a_->state(), QpState::error);
}

TEST_F(RcFixture, ErrorStateFlushesPostedWork) {
  post_recv_b(100);   // too small -> length error on B
  post_send_a(500);
  engine_->run();
  drain(*cq_b_);
  // Further receives on the errored QP complete as flushed.
  post_recv_b(4096, 0, 999);
  const auto wcs = drain(*cq_b_);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::flushed);
  EXPECT_EQ(wcs[0].wr_id, 999u);
}

TEST_F(RcFixture, PostOnUnconnectedQpRejected) {
  auto cq = fabric_->hca(0).create_cq();
  auto qp = fabric_->hca(0).create_qp(cq, cq);
  SendWr wr;
  wr.local_addr = src_.data();
  wr.length = 8;
  wr.lkey = mr_src_.lkey;
  EXPECT_THROW(qp->post_send(wr), std::invalid_argument);
}

// ---- Calibration sanity: the fabric should land in the paper's regime ----

TEST_F(RcFixture, SmallMessageVerbsLatencyInPaperRegime) {
  post_recv_b(4096);
  post_send_a(36);  // 4 B payload + a 32 B MPI-style header, one packet
  engine_->run();
  ASSERT_FALSE(cq_b_->empty());
  // run() ends when the ACK lands back at A, i.e. after one full round
  // trip. Verbs-level one-way latency on the paper's hardware was a few
  // microseconds, so the round trip must land in the 2..20 us window.
  const double rtt_us = mvflow::sim::to_us(engine_->now());
  EXPECT_GT(rtt_us, 2.0);
  EXPECT_LT(rtt_us, 20.0);
}

TEST_F(RcFixture, LargeTransferApproachesLinkBandwidth) {
  const std::uint32_t len = 1 << 20;  // 1 MB
  post_recv_b(1 << 20);
  post_send_a(len);
  engine_->run();
  ASSERT_EQ(drain(*cq_b_).size(), 1u);
  const double seconds = mvflow::sim::to_s(engine_->now());
  const double bw = static_cast<double>(len) / seconds;
  // Effective bandwidth should be within ~15% of the configured 800 MB/s
  // (headers + per-packet overheads steal a little).
  EXPECT_GT(bw, 0.6e9 * 0.8 / 0.8);  // > 600 MB/s
  EXPECT_LT(bw, 800e6 * 1.01);
}

TEST_F(RcFixture, LoopbackDelivery) {
  // Two QPs on the same node.
  auto cq1 = fabric_->hca(0).create_cq();
  auto cq2 = fabric_->hca(0).create_cq();
  auto qp1 = fabric_->hca(0).create_qp(cq1, cq1);
  auto qp2 = fabric_->hca(0).create_qp(cq2, cq2);
  Fabric::connect(*qp1, *qp2);
  RecvWr rwr;
  rwr.wr_id = 7;
  rwr.local_addr = src_.data() + 500000;
  rwr.length = 4096;
  rwr.lkey = mr_src_.lkey;
  qp2->post_recv(rwr);
  SendWr swr;
  swr.wr_id = 8;
  swr.local_addr = src_.data();
  swr.length = 128;
  swr.lkey = mr_src_.lkey;
  qp1->post_send(swr);
  engine_->run();
  ASSERT_FALSE(cq2->empty());
  EXPECT_EQ(std::memcmp(src_.data() + 500000, src_.data(), 128), 0);
}

TEST_F(RcFixture, FabricStatsCountPacketsAndBytes) {
  post_recv_b(4096);
  post_send_a(100);
  engine_->run();
  // 1 data packet + 1 ACK.
  EXPECT_EQ(fabric_->stats().data_packets, 1u);
  EXPECT_EQ(fabric_->stats().control_packets, 1u);
  EXPECT_EQ(fabric_->stats().wire_bytes,
            100u + fabric_->config().data_header_bytes + fabric_->config().ack_bytes);
}
