#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/condition.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

using namespace mvflow::sim;

TEST(Process, DelayAdvancesSimulatedTime) {
  Engine eng;
  std::vector<std::int64_t> stamps;
  Process p(eng, "p", [&](Process& self) {
    stamps.push_back(eng.now().count());
    self.delay(microseconds(5));
    stamps.push_back(eng.now().count());
    self.delay(microseconds(3));
    stamps.push_back(eng.now().count());
  });
  eng.run();
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(stamps, (std::vector<std::int64_t>{0, 5000, 8000}));
}

TEST(Process, TwoProcessesInterleaveDeterministically) {
  Engine eng;
  std::vector<std::string> trace;
  Process a(eng, "a", [&](Process& self) {
    for (int i = 0; i < 3; ++i) {
      trace.push_back(std::string("a") + std::to_string(i));
      self.delay(Duration(10));
    }
  });
  Process b(eng, "b", [&](Process& self) {
    for (int i = 0; i < 3; ++i) {
      trace.push_back(std::string("b") + std::to_string(i));
      self.delay(Duration(15));
    }
  });
  eng.run();
  // a at t=0,10,20; b at t=0,15,30. Ties resolved by construction order.
  EXPECT_EQ(trace, (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2", "b2"}));
}

TEST(Process, YieldLetsOtherWorkRunFirst) {
  Engine eng;
  std::vector<int> order;
  Process p(eng, "p", [&](Process& self) {
    order.push_back(1);
    eng.schedule_at(eng.now(), [&] { order.push_back(2); });
    self.yield();
    order.push_back(3);
  });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Condition, WaitBlocksUntilNotify) {
  Engine eng;
  Condition cond(eng);
  std::vector<std::string> trace;
  Process waiter(eng, "waiter", [&](Process& self) {
    trace.push_back("wait@" + std::to_string(eng.now().count()));
    cond.wait(self);
    trace.push_back("woke@" + std::to_string(eng.now().count()));
  });
  Process notifier(eng, "notifier", [&](Process& self) {
    self.delay(Duration(100));
    cond.notify_all();
    trace.push_back("notified@" + std::to_string(eng.now().count()));
  });
  eng.run();
  EXPECT_EQ(trace, (std::vector<std::string>{"wait@0", "notified@100", "woke@100"}));
}

TEST(Condition, NotifyOneWakesInFifoOrder) {
  Engine eng;
  Condition cond(eng);
  std::vector<int> woke;
  auto make_waiter = [&](int id) {
    return [&woke, &cond, id](Process& self) {
      cond.wait(self);
      woke.push_back(id);
    };
  };
  Process w0(eng, "w0", make_waiter(0));
  Process w1(eng, "w1", make_waiter(1));
  Process n(eng, "n", [&](Process& self) {
    self.delay(Duration(10));
    cond.notify_one();
    self.delay(Duration(10));
    cond.notify_one();
  });
  eng.run();
  EXPECT_EQ(woke, (std::vector<int>{0, 1}));
}

TEST(Condition, WaitForTimesOut) {
  Engine eng;
  Condition cond(eng);
  bool notified = true;
  Process p(eng, "p", [&](Process& self) {
    notified = cond.wait_for(self, Duration(50));
  });
  eng.run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(eng.now(), TimePoint(50));
}

TEST(Condition, WaitForReturnsTrueWhenNotifiedFirst) {
  Engine eng;
  Condition cond(eng);
  bool notified = false;
  std::int64_t woke_at = -1;
  Process p(eng, "p", [&](Process& self) {
    notified = cond.wait_for(self, Duration(1000));
    woke_at = eng.now().count();
  });
  Process n(eng, "n", [&](Process& self) {
    self.delay(Duration(20));
    cond.notify_all();
  });
  eng.run();
  EXPECT_TRUE(notified);
  EXPECT_EQ(woke_at, 20);
}

TEST(Condition, TimedOutWaiterDoesNotConsumeNotifyOne) {
  Engine eng;
  Condition cond(eng);
  std::vector<int> woke;
  Process w0(eng, "w0", [&](Process& self) {
    if (!cond.wait_for(self, Duration(10))) woke.push_back(-1);
  });
  Process w1(eng, "w1", [&](Process& self) {
    cond.wait(self);
    woke.push_back(1);
  });
  Process n(eng, "n", [&](Process& self) {
    self.delay(Duration(100));  // after w0 timed out
    cond.notify_one();          // must wake w1, not the dead w0 slot
  });
  eng.run();
  EXPECT_EQ(woke, (std::vector<int>{-1, 1}));
}

TEST(Process, BlockedProcessesDetectedAsDeadlock) {
  Engine eng;
  Condition never(eng);
  auto p = std::make_unique<Process>(eng, "stuck",
                                     [&](Process& self) { never.wait(self); });
  eng.run();  // queue drains with p still blocked
  const auto blocked = eng.blocked_processes();
  ASSERT_EQ(blocked.size(), 1u);
  EXPECT_EQ(blocked[0]->name(), "stuck");
  p.reset();  // kill + join cleanly
  EXPECT_TRUE(eng.blocked_processes().empty());
}

TEST(Process, KillUnwindsWithRaii) {
  Engine eng;
  Condition never(eng);
  bool cleaned_up = false;
  struct Cleanup {
    bool* flag;
    ~Cleanup() { *flag = true; }
  };
  {
    Process p(eng, "victim", [&](Process& self) {
      Cleanup c{&cleaned_up};
      never.wait(self);
    });
    eng.run();
    EXPECT_FALSE(cleaned_up);
  }  // destructor kills
  EXPECT_TRUE(cleaned_up);
}

TEST(Process, BodyExceptionPropagatesToRun) {
  Engine eng;
  Process p(eng, "thrower", [&](Process& self) {
    self.delay(Duration(5));
    throw std::runtime_error("body failed");
  });
  EXPECT_THROW(eng.run(), std::runtime_error);
  EXPECT_TRUE(p.finished());
}

TEST(Process, DeterminismAcrossRuns) {
  auto run_once = [] {
    Engine eng;
    std::vector<std::int64_t> trace;
    Condition cond(eng);
    Process a(eng, "a", [&](Process& self) {
      for (int i = 0; i < 10; ++i) {
        self.delay(Duration(7));
        trace.push_back(eng.now().count());
        cond.notify_all();
      }
    });
    Process b(eng, "b", [&](Process& self) {
      for (int i = 0; i < 5; ++i) {
        cond.wait(self);
        trace.push_back(-eng.now().count());
      }
    });
    eng.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}
