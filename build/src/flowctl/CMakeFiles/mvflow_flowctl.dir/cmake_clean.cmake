file(REMOVE_RECURSE
  "CMakeFiles/mvflow_flowctl.dir/flowctl.cpp.o"
  "CMakeFiles/mvflow_flowctl.dir/flowctl.cpp.o.d"
  "libmvflow_flowctl.a"
  "libmvflow_flowctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvflow_flowctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
