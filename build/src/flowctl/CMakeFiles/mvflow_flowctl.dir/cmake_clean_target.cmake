file(REMOVE_RECURSE
  "libmvflow_flowctl.a"
)
