# Empty compiler generated dependencies file for mvflow_flowctl.
# This may be replaced when dependencies are built.
