# Empty compiler generated dependencies file for mvflow_mpi.
# This may be replaced when dependencies are built.
