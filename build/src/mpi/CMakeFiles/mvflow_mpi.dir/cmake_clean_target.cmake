file(REMOVE_RECURSE
  "libmvflow_mpi.a"
)
