
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/collectives.cpp" "src/mpi/CMakeFiles/mvflow_mpi.dir/collectives.cpp.o" "gcc" "src/mpi/CMakeFiles/mvflow_mpi.dir/collectives.cpp.o.d"
  "/root/repo/src/mpi/communicator.cpp" "src/mpi/CMakeFiles/mvflow_mpi.dir/communicator.cpp.o" "gcc" "src/mpi/CMakeFiles/mvflow_mpi.dir/communicator.cpp.o.d"
  "/root/repo/src/mpi/device.cpp" "src/mpi/CMakeFiles/mvflow_mpi.dir/device.cpp.o" "gcc" "src/mpi/CMakeFiles/mvflow_mpi.dir/device.cpp.o.d"
  "/root/repo/src/mpi/match.cpp" "src/mpi/CMakeFiles/mvflow_mpi.dir/match.cpp.o" "gcc" "src/mpi/CMakeFiles/mvflow_mpi.dir/match.cpp.o.d"
  "/root/repo/src/mpi/world.cpp" "src/mpi/CMakeFiles/mvflow_mpi.dir/world.cpp.o" "gcc" "src/mpi/CMakeFiles/mvflow_mpi.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ib/CMakeFiles/mvflow_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/flowctl/CMakeFiles/mvflow_flowctl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mvflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mvflow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
