file(REMOVE_RECURSE
  "CMakeFiles/mvflow_mpi.dir/collectives.cpp.o"
  "CMakeFiles/mvflow_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/mvflow_mpi.dir/communicator.cpp.o"
  "CMakeFiles/mvflow_mpi.dir/communicator.cpp.o.d"
  "CMakeFiles/mvflow_mpi.dir/device.cpp.o"
  "CMakeFiles/mvflow_mpi.dir/device.cpp.o.d"
  "CMakeFiles/mvflow_mpi.dir/match.cpp.o"
  "CMakeFiles/mvflow_mpi.dir/match.cpp.o.d"
  "CMakeFiles/mvflow_mpi.dir/world.cpp.o"
  "CMakeFiles/mvflow_mpi.dir/world.cpp.o.d"
  "libmvflow_mpi.a"
  "libmvflow_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvflow_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
