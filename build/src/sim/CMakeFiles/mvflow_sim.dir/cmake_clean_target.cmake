file(REMOVE_RECURSE
  "libmvflow_sim.a"
)
