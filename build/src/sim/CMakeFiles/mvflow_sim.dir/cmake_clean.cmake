file(REMOVE_RECURSE
  "CMakeFiles/mvflow_sim.dir/condition.cpp.o"
  "CMakeFiles/mvflow_sim.dir/condition.cpp.o.d"
  "CMakeFiles/mvflow_sim.dir/engine.cpp.o"
  "CMakeFiles/mvflow_sim.dir/engine.cpp.o.d"
  "CMakeFiles/mvflow_sim.dir/process.cpp.o"
  "CMakeFiles/mvflow_sim.dir/process.cpp.o.d"
  "CMakeFiles/mvflow_sim.dir/time.cpp.o"
  "CMakeFiles/mvflow_sim.dir/time.cpp.o.d"
  "libmvflow_sim.a"
  "libmvflow_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvflow_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
