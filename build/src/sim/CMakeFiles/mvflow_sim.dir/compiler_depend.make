# Empty compiler generated dependencies file for mvflow_sim.
# This may be replaced when dependencies are built.
