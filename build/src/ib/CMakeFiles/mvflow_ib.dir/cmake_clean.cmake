file(REMOVE_RECURSE
  "CMakeFiles/mvflow_ib.dir/cq.cpp.o"
  "CMakeFiles/mvflow_ib.dir/cq.cpp.o.d"
  "CMakeFiles/mvflow_ib.dir/fabric.cpp.o"
  "CMakeFiles/mvflow_ib.dir/fabric.cpp.o.d"
  "CMakeFiles/mvflow_ib.dir/hca.cpp.o"
  "CMakeFiles/mvflow_ib.dir/hca.cpp.o.d"
  "CMakeFiles/mvflow_ib.dir/memory.cpp.o"
  "CMakeFiles/mvflow_ib.dir/memory.cpp.o.d"
  "CMakeFiles/mvflow_ib.dir/qp.cpp.o"
  "CMakeFiles/mvflow_ib.dir/qp.cpp.o.d"
  "libmvflow_ib.a"
  "libmvflow_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvflow_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
