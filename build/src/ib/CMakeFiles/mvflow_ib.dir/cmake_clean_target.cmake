file(REMOVE_RECURSE
  "libmvflow_ib.a"
)
