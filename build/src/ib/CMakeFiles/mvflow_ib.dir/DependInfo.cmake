
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ib/cq.cpp" "src/ib/CMakeFiles/mvflow_ib.dir/cq.cpp.o" "gcc" "src/ib/CMakeFiles/mvflow_ib.dir/cq.cpp.o.d"
  "/root/repo/src/ib/fabric.cpp" "src/ib/CMakeFiles/mvflow_ib.dir/fabric.cpp.o" "gcc" "src/ib/CMakeFiles/mvflow_ib.dir/fabric.cpp.o.d"
  "/root/repo/src/ib/hca.cpp" "src/ib/CMakeFiles/mvflow_ib.dir/hca.cpp.o" "gcc" "src/ib/CMakeFiles/mvflow_ib.dir/hca.cpp.o.d"
  "/root/repo/src/ib/memory.cpp" "src/ib/CMakeFiles/mvflow_ib.dir/memory.cpp.o" "gcc" "src/ib/CMakeFiles/mvflow_ib.dir/memory.cpp.o.d"
  "/root/repo/src/ib/qp.cpp" "src/ib/CMakeFiles/mvflow_ib.dir/qp.cpp.o" "gcc" "src/ib/CMakeFiles/mvflow_ib.dir/qp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mvflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mvflow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
