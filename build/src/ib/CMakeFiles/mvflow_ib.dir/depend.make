# Empty dependencies file for mvflow_ib.
# This may be replaced when dependencies are built.
