file(REMOVE_RECURSE
  "libmvflow_nas.a"
)
