file(REMOVE_RECURSE
  "CMakeFiles/mvflow_nas.dir/bt.cpp.o"
  "CMakeFiles/mvflow_nas.dir/bt.cpp.o.d"
  "CMakeFiles/mvflow_nas.dir/cg.cpp.o"
  "CMakeFiles/mvflow_nas.dir/cg.cpp.o.d"
  "CMakeFiles/mvflow_nas.dir/ft.cpp.o"
  "CMakeFiles/mvflow_nas.dir/ft.cpp.o.d"
  "CMakeFiles/mvflow_nas.dir/harness.cpp.o"
  "CMakeFiles/mvflow_nas.dir/harness.cpp.o.d"
  "CMakeFiles/mvflow_nas.dir/is.cpp.o"
  "CMakeFiles/mvflow_nas.dir/is.cpp.o.d"
  "CMakeFiles/mvflow_nas.dir/lu.cpp.o"
  "CMakeFiles/mvflow_nas.dir/lu.cpp.o.d"
  "CMakeFiles/mvflow_nas.dir/mg.cpp.o"
  "CMakeFiles/mvflow_nas.dir/mg.cpp.o.d"
  "CMakeFiles/mvflow_nas.dir/sp.cpp.o"
  "CMakeFiles/mvflow_nas.dir/sp.cpp.o.d"
  "libmvflow_nas.a"
  "libmvflow_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvflow_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
