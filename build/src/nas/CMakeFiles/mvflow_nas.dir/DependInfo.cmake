
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nas/bt.cpp" "src/nas/CMakeFiles/mvflow_nas.dir/bt.cpp.o" "gcc" "src/nas/CMakeFiles/mvflow_nas.dir/bt.cpp.o.d"
  "/root/repo/src/nas/cg.cpp" "src/nas/CMakeFiles/mvflow_nas.dir/cg.cpp.o" "gcc" "src/nas/CMakeFiles/mvflow_nas.dir/cg.cpp.o.d"
  "/root/repo/src/nas/ft.cpp" "src/nas/CMakeFiles/mvflow_nas.dir/ft.cpp.o" "gcc" "src/nas/CMakeFiles/mvflow_nas.dir/ft.cpp.o.d"
  "/root/repo/src/nas/harness.cpp" "src/nas/CMakeFiles/mvflow_nas.dir/harness.cpp.o" "gcc" "src/nas/CMakeFiles/mvflow_nas.dir/harness.cpp.o.d"
  "/root/repo/src/nas/is.cpp" "src/nas/CMakeFiles/mvflow_nas.dir/is.cpp.o" "gcc" "src/nas/CMakeFiles/mvflow_nas.dir/is.cpp.o.d"
  "/root/repo/src/nas/lu.cpp" "src/nas/CMakeFiles/mvflow_nas.dir/lu.cpp.o" "gcc" "src/nas/CMakeFiles/mvflow_nas.dir/lu.cpp.o.d"
  "/root/repo/src/nas/mg.cpp" "src/nas/CMakeFiles/mvflow_nas.dir/mg.cpp.o" "gcc" "src/nas/CMakeFiles/mvflow_nas.dir/mg.cpp.o.d"
  "/root/repo/src/nas/sp.cpp" "src/nas/CMakeFiles/mvflow_nas.dir/sp.cpp.o" "gcc" "src/nas/CMakeFiles/mvflow_nas.dir/sp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/mvflow_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/mvflow_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/flowctl/CMakeFiles/mvflow_flowctl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mvflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mvflow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
