# Empty compiler generated dependencies file for mvflow_nas.
# This may be replaced when dependencies are built.
