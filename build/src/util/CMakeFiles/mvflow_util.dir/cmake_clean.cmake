file(REMOVE_RECURSE
  "CMakeFiles/mvflow_util.dir/log.cpp.o"
  "CMakeFiles/mvflow_util.dir/log.cpp.o.d"
  "CMakeFiles/mvflow_util.dir/options.cpp.o"
  "CMakeFiles/mvflow_util.dir/options.cpp.o.d"
  "CMakeFiles/mvflow_util.dir/stats.cpp.o"
  "CMakeFiles/mvflow_util.dir/stats.cpp.o.d"
  "CMakeFiles/mvflow_util.dir/table.cpp.o"
  "CMakeFiles/mvflow_util.dir/table.cpp.o.d"
  "libmvflow_util.a"
  "libmvflow_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvflow_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
