file(REMOVE_RECURSE
  "libmvflow_util.a"
)
