# Empty dependencies file for mvflow_util.
# This may be replaced when dependencies are built.
