file(REMOVE_RECURSE
  "CMakeFiles/nas_demo.dir/nas_demo.cpp.o"
  "CMakeFiles/nas_demo.dir/nas_demo.cpp.o.d"
  "nas_demo"
  "nas_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
