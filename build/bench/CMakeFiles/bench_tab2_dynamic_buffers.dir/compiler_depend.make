# Empty compiler generated dependencies file for bench_tab2_dynamic_buffers.
# This may be replaced when dependencies are built.
