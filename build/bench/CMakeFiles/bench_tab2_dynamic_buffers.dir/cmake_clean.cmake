file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_dynamic_buffers.dir/bench_tab2_dynamic_buffers.cpp.o"
  "CMakeFiles/bench_tab2_dynamic_buffers.dir/bench_tab2_dynamic_buffers.cpp.o.d"
  "bench_tab2_dynamic_buffers"
  "bench_tab2_dynamic_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_dynamic_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
