# Empty compiler generated dependencies file for bench_abl_growth_policy.
# This may be replaced when dependencies are built.
