file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_growth_policy.dir/bench_abl_growth_policy.cpp.o"
  "CMakeFiles/bench_abl_growth_policy.dir/bench_abl_growth_policy.cpp.o.d"
  "bench_abl_growth_policy"
  "bench_abl_growth_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_growth_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
