file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_ecm_threshold.dir/bench_abl_ecm_threshold.cpp.o"
  "CMakeFiles/bench_abl_ecm_threshold.dir/bench_abl_ecm_threshold.cpp.o.d"
  "bench_abl_ecm_threshold"
  "bench_abl_ecm_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_ecm_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
