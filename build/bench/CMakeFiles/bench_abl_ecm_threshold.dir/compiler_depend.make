# Empty compiler generated dependencies file for bench_abl_ecm_threshold.
# This may be replaced when dependencies are built.
