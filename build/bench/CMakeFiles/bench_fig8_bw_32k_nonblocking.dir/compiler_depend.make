# Empty compiler generated dependencies file for bench_fig8_bw_32k_nonblocking.
# This may be replaced when dependencies are built.
