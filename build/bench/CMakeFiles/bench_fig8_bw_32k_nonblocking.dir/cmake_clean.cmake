file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_bw_32k_nonblocking.dir/bench_fig8_bw_32k_nonblocking.cpp.o"
  "CMakeFiles/bench_fig8_bw_32k_nonblocking.dir/bench_fig8_bw_32k_nonblocking.cpp.o.d"
  "bench_fig8_bw_32k_nonblocking"
  "bench_fig8_bw_32k_nonblocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bw_32k_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
