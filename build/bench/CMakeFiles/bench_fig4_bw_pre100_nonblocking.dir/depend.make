# Empty dependencies file for bench_fig4_bw_pre100_nonblocking.
# This may be replaced when dependencies are built.
