file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_bw_pre100_nonblocking.dir/bench_fig4_bw_pre100_nonblocking.cpp.o"
  "CMakeFiles/bench_fig4_bw_pre100_nonblocking.dir/bench_fig4_bw_pre100_nonblocking.cpp.o.d"
  "bench_fig4_bw_pre100_nonblocking"
  "bench_fig4_bw_pre100_nonblocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_bw_pre100_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
