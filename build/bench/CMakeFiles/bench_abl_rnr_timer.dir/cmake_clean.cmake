file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_rnr_timer.dir/bench_abl_rnr_timer.cpp.o"
  "CMakeFiles/bench_abl_rnr_timer.dir/bench_abl_rnr_timer.cpp.o.d"
  "bench_abl_rnr_timer"
  "bench_abl_rnr_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_rnr_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
