# Empty dependencies file for bench_abl_rnr_timer.
# This may be replaced when dependencies are built.
