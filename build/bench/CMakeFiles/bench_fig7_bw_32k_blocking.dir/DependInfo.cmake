
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_bw_32k_blocking.cpp" "bench/CMakeFiles/bench_fig7_bw_32k_blocking.dir/bench_fig7_bw_32k_blocking.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_bw_32k_blocking.dir/bench_fig7_bw_32k_blocking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/mvflow_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/mvflow_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/mvflow_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/flowctl/CMakeFiles/mvflow_flowctl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mvflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mvflow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
