# Empty compiler generated dependencies file for bench_fig7_bw_32k_blocking.
# This may be replaced when dependencies are built.
