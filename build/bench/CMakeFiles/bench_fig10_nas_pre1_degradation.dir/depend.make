# Empty dependencies file for bench_fig10_nas_pre1_degradation.
# This may be replaced when dependencies are built.
