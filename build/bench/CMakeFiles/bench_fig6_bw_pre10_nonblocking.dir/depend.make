# Empty dependencies file for bench_fig6_bw_pre10_nonblocking.
# This may be replaced when dependencies are built.
