file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_bw_pre10_nonblocking.dir/bench_fig6_bw_pre10_nonblocking.cpp.o"
  "CMakeFiles/bench_fig6_bw_pre10_nonblocking.dir/bench_fig6_bw_pre10_nonblocking.cpp.o.d"
  "bench_fig6_bw_pre10_nonblocking"
  "bench_fig6_bw_pre10_nonblocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_bw_pre10_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
