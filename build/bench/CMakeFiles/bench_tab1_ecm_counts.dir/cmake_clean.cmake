file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_ecm_counts.dir/bench_tab1_ecm_counts.cpp.o"
  "CMakeFiles/bench_tab1_ecm_counts.dir/bench_tab1_ecm_counts.cpp.o.d"
  "bench_tab1_ecm_counts"
  "bench_tab1_ecm_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_ecm_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
