# Empty dependencies file for bench_tab1_ecm_counts.
# This may be replaced when dependencies are built.
