file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_gbench.dir/bench_overhead_gbench.cpp.o"
  "CMakeFiles/bench_overhead_gbench.dir/bench_overhead_gbench.cpp.o.d"
  "bench_overhead_gbench"
  "bench_overhead_gbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_gbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
