# Empty compiler generated dependencies file for bench_overhead_gbench.
# This may be replaced when dependencies are built.
