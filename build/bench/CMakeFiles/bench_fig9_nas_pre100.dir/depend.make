# Empty dependencies file for bench_fig9_nas_pre100.
# This may be replaced when dependencies are built.
