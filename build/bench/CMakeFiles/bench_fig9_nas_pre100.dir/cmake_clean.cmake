file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_nas_pre100.dir/bench_fig9_nas_pre100.cpp.o"
  "CMakeFiles/bench_fig9_nas_pre100.dir/bench_fig9_nas_pre100.cpp.o.d"
  "bench_fig9_nas_pre100"
  "bench_fig9_nas_pre100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_nas_pre100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
