# Empty dependencies file for bench_fig5_bw_pre10_blocking.
# This may be replaced when dependencies are built.
