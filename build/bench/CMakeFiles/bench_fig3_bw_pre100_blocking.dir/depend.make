# Empty dependencies file for bench_fig3_bw_pre100_blocking.
# This may be replaced when dependencies are built.
