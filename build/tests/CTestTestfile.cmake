# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_process_test[1]_include.cmake")
include("/root/repo/build/tests/ib_memory_test[1]_include.cmake")
include("/root/repo/build/tests/ib_rc_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_pt2pt_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_collectives_test[1]_include.cmake")
include("/root/repo/build/tests/flowctl_unit_test[1]_include.cmake")
include("/root/repo/build/tests/flowctl_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/nas_kernels_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_sendmodes_test[1]_include.cmake")
include("/root/repo/build/tests/ib_fabric_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_device_test[1]_include.cmake")
include("/root/repo/build/tests/nas_numerics_test[1]_include.cmake")
include("/root/repo/build/tests/ib_ud_test[1]_include.cmake")
