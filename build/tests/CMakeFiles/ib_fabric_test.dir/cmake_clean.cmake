file(REMOVE_RECURSE
  "CMakeFiles/ib_fabric_test.dir/ib_fabric_test.cpp.o"
  "CMakeFiles/ib_fabric_test.dir/ib_fabric_test.cpp.o.d"
  "ib_fabric_test"
  "ib_fabric_test.pdb"
  "ib_fabric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ib_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
