# Empty compiler generated dependencies file for ib_fabric_test.
# This may be replaced when dependencies are built.
