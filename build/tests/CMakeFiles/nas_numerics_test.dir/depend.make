# Empty dependencies file for nas_numerics_test.
# This may be replaced when dependencies are built.
