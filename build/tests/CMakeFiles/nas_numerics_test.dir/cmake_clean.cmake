file(REMOVE_RECURSE
  "CMakeFiles/nas_numerics_test.dir/nas_numerics_test.cpp.o"
  "CMakeFiles/nas_numerics_test.dir/nas_numerics_test.cpp.o.d"
  "nas_numerics_test"
  "nas_numerics_test.pdb"
  "nas_numerics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_numerics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
