# Empty compiler generated dependencies file for ib_ud_test.
# This may be replaced when dependencies are built.
