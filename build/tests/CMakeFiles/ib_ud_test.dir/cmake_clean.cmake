file(REMOVE_RECURSE
  "CMakeFiles/ib_ud_test.dir/ib_ud_test.cpp.o"
  "CMakeFiles/ib_ud_test.dir/ib_ud_test.cpp.o.d"
  "ib_ud_test"
  "ib_ud_test.pdb"
  "ib_ud_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ib_ud_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
