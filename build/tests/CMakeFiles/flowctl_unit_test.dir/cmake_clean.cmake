file(REMOVE_RECURSE
  "CMakeFiles/flowctl_unit_test.dir/flowctl_unit_test.cpp.o"
  "CMakeFiles/flowctl_unit_test.dir/flowctl_unit_test.cpp.o.d"
  "flowctl_unit_test"
  "flowctl_unit_test.pdb"
  "flowctl_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowctl_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
