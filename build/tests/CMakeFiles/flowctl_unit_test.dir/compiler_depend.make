# Empty compiler generated dependencies file for flowctl_unit_test.
# This may be replaced when dependencies are built.
