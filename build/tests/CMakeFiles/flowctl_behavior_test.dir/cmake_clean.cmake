file(REMOVE_RECURSE
  "CMakeFiles/flowctl_behavior_test.dir/flowctl_behavior_test.cpp.o"
  "CMakeFiles/flowctl_behavior_test.dir/flowctl_behavior_test.cpp.o.d"
  "flowctl_behavior_test"
  "flowctl_behavior_test.pdb"
  "flowctl_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowctl_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
