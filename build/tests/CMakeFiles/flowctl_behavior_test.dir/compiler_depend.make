# Empty compiler generated dependencies file for flowctl_behavior_test.
# This may be replaced when dependencies are built.
