file(REMOVE_RECURSE
  "CMakeFiles/ib_rc_test.dir/ib_rc_test.cpp.o"
  "CMakeFiles/ib_rc_test.dir/ib_rc_test.cpp.o.d"
  "ib_rc_test"
  "ib_rc_test.pdb"
  "ib_rc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ib_rc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
