file(REMOVE_RECURSE
  "CMakeFiles/ib_memory_test.dir/ib_memory_test.cpp.o"
  "CMakeFiles/ib_memory_test.dir/ib_memory_test.cpp.o.d"
  "ib_memory_test"
  "ib_memory_test.pdb"
  "ib_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ib_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
