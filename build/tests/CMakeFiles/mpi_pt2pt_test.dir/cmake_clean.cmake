file(REMOVE_RECURSE
  "CMakeFiles/mpi_pt2pt_test.dir/mpi_pt2pt_test.cpp.o"
  "CMakeFiles/mpi_pt2pt_test.dir/mpi_pt2pt_test.cpp.o.d"
  "mpi_pt2pt_test"
  "mpi_pt2pt_test.pdb"
  "mpi_pt2pt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_pt2pt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
