file(REMOVE_RECURSE
  "CMakeFiles/mpi_device_test.dir/mpi_device_test.cpp.o"
  "CMakeFiles/mpi_device_test.dir/mpi_device_test.cpp.o.d"
  "mpi_device_test"
  "mpi_device_test.pdb"
  "mpi_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
