file(REMOVE_RECURSE
  "CMakeFiles/nas_kernels_test.dir/nas_kernels_test.cpp.o"
  "CMakeFiles/nas_kernels_test.dir/nas_kernels_test.cpp.o.d"
  "nas_kernels_test"
  "nas_kernels_test.pdb"
  "nas_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
