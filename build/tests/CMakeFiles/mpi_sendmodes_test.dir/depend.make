# Empty dependencies file for mpi_sendmodes_test.
# This may be replaced when dependencies are built.
