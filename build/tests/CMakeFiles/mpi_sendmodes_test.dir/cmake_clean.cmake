file(REMOVE_RECURSE
  "CMakeFiles/mpi_sendmodes_test.dir/mpi_sendmodes_test.cpp.o"
  "CMakeFiles/mpi_sendmodes_test.dir/mpi_sendmodes_test.cpp.o.d"
  "mpi_sendmodes_test"
  "mpi_sendmodes_test.pdb"
  "mpi_sendmodes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_sendmodes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
