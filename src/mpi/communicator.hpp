// The application-facing MPI surface for one rank: point-to-point
// operations (blocking and nonblocking, typed and raw-byte), the standard
// collectives built over them, and simulation helpers (compute time).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpi/device.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "sim/process.hpp"

namespace mvflow::mpi {

class World;

/// Reduction operators for the typed collectives.
struct OpSum {
  template <typename T> void operator()(T& acc, const T& v) const { acc += v; }
};
struct OpMax {
  template <typename T> void operator()(T& acc, const T& v) const {
    if (v > acc) acc = v;
  }
};
struct OpMin {
  template <typename T> void operator()(T& acc, const T& v) const {
    if (v < acc) acc = v;
  }
};

class Communicator {
 public:
  Communicator(World& world, Device& dev, sim::Process& proc);

  Rank rank() const noexcept { return dev_.rank(); }
  int size() const noexcept { return size_; }

  // ---- point-to-point: raw bytes ----
  RequestPtr isend(std::span<const std::byte> data, Rank dst, Tag tag,
                   SendMode mode = SendMode::standard);
  RequestPtr irecv(std::span<std::byte> buffer, Rank src, Tag tag);
  void send(std::span<const std::byte> data, Rank dst, Tag tag);
  /// Synchronous send: returns only after the matching receive was posted.
  void ssend(std::span<const std::byte> data, Rank dst, Tag tag);
  /// Buffered send: completes locally; payload must fit an eager buffer.
  void bsend(std::span<const std::byte> data, Rank dst, Tag tag);
  /// Ready send: the caller asserts the receive is already posted.
  void rsend(std::span<const std::byte> data, Rank dst, Tag tag);
  Status recv(std::span<std::byte> buffer, Rank src, Tag tag);
  void wait(const RequestPtr& req);
  bool test(const RequestPtr& req);
  void wait_all(std::span<const RequestPtr> reqs);
  void progress() { dev_.progress(); }

  /// Combined send+receive (deadlock-safe pairwise exchange).
  Status sendrecv(std::span<const std::byte> senddata, Rank dst, Tag sendtag,
                  std::span<std::byte> recvbuf, Rank src, Tag recvtag);

  // ---- point-to-point: typed ----
  template <typename T>
  void send_n(const T* data, std::size_t n, Rank dst, Tag tag) {
    send(as_bytes(data, n), dst, tag);
  }
  template <typename T>
  Status recv_n(T* data, std::size_t n, Rank src, Tag tag) {
    return recv(as_writable_bytes(data, n), src, tag);
  }
  template <typename T>
  RequestPtr isend_n(const T* data, std::size_t n, Rank dst, Tag tag) {
    return isend(as_bytes(data, n), dst, tag);
  }
  template <typename T>
  RequestPtr irecv_n(T* data, std::size_t n, Rank src, Tag tag) {
    return irecv(as_writable_bytes(data, n), src, tag);
  }

  // ---- collectives (all ranks must call in the same order) ----
  void barrier();
  void bcast(std::span<std::byte> data, Rank root);
  /// Equal-size allgather: `mine` replicated into `all` (size*n elements).
  void allgather(std::span<const std::byte> mine, std::span<std::byte> all);
  /// Equal-block alltoall: block i of `send` goes to rank i.
  void alltoall(std::span<const std::byte> send, std::span<std::byte> recv,
                std::size_t block_bytes);
  /// Variable alltoall; counts/displacements in bytes.
  void alltoallv(const std::byte* send, std::span<const std::size_t> send_counts,
                 std::span<const std::size_t> send_displs, std::byte* recv,
                 std::span<const std::size_t> recv_counts,
                 std::span<const std::size_t> recv_displs);
  void gather(std::span<const std::byte> mine, std::span<std::byte> all, Rank root);
  void scatter(std::span<const std::byte> all, std::span<std::byte> mine, Rank root);

  template <typename T>
  void bcast_n(T* data, std::size_t n, Rank root) {
    bcast(as_writable_bytes(data, n), root);
  }

  /// In-place allreduce over a typed span (reduce-to-0 + bcast).
  template <typename T, typename Op>
  void allreduce(std::span<T> inout, Op op) {
    reduce_inplace(inout, op, 0);
    bcast(std::as_writable_bytes(inout), 0);
  }
  double allreduce_sum(double v) {
    allreduce(std::span<double>(&v, 1), OpSum{});
    return v;
  }
  double allreduce_max(double v) {
    allreduce(std::span<double>(&v, 1), OpMax{});
    return v;
  }
  std::int64_t allreduce_sum(std::int64_t v) {
    allreduce(std::span<std::int64_t>(&v, 1), OpSum{});
    return v;
  }

  /// Binomial-tree reduction; on `root`, inout holds the reduced result.
  template <typename T, typename Op>
  void reduce_inplace(std::span<T> inout, Op op, Rank root) {
    const Tag tag = next_coll_tag();
    const int p = size_;
    const int rel = (rank() - root + p) % p;
    // Persistent scratch: stable buffer address across collective calls so
    // the device's pin-down cache behaves deterministically.
    if (coll_scratch_.size() < inout.size_bytes())
      coll_scratch_.resize(inout.size_bytes());
    T* tmp = reinterpret_cast<T*>(coll_scratch_.data());
    for (int mask = 1; mask < p; mask <<= 1) {
      if ((rel & mask) == 0) {
        const int src_rel = rel | mask;
        if (src_rel < p) {
          recv_n(tmp, inout.size(), (src_rel + root) % p, tag);
          for (std::size_t i = 0; i < inout.size(); ++i) op(inout[i], tmp[i]);
        }
      } else {
        const int dst_rel = rel & ~mask;
        send_n(inout.data(), inout.size(), (dst_rel + root) % p, tag);
        break;
      }
    }
  }

  // ---- simulation helpers ----
  /// Model local computation taking `d` of simulated time.
  void compute(sim::Duration d) { proc_.delay(d); }
  sim::TimePoint now() const;

 private:
  template <typename T>
  static std::span<const std::byte> as_bytes(const T* p, std::size_t n) {
    return std::as_bytes(std::span<const T>(p, n));
  }
  template <typename T>
  static std::span<std::byte> as_writable_bytes(T* p, std::size_t n) {
    return std::as_writable_bytes(std::span<T>(p, n));
  }

  Tag next_coll_tag() { return kFirstInternalTag - (coll_seq_++); }

  World& world_;
  Device& dev_;
  sim::Process& proc_;
  int size_;
  int coll_seq_ = 0;
  std::vector<std::byte> coll_scratch_;  // reduction receive buffer
};

}  // namespace mvflow::mpi
