// World: builds the fabric, one device per rank, wires the RC connections
// (eagerly, as the paper's MPI does at init, or on demand), runs one
// simulated process per rank, and gathers the statistics the benchmarks
// report.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/run_config.hpp"
#include "flowctl/flowctl.hpp"
#include "ib/config.hpp"
#include "ib/fabric.hpp"
#include "mpi/config.hpp"
#include "mpi/device.hpp"
#include "mpi/workload.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/recorder.hpp"
#include "sim/engine.hpp"
#include "sim/sharded.hpp"
#include "sim/watchdog.hpp"

namespace mvflow::mpi {

class Communicator;

struct WorldConfig {
  int num_ranks = 2;
  flowctl::Config flow;
  ib::FabricConfig fabric;
  DeviceConfig device;
  /// Lazily create connections on first communication (Wu et al. [23];
  /// composes with the flow-control schemes).
  bool on_demand_connections = false;

  /// Engine parallelism (DESIGN.md §14). 0 runs the single serial engine —
  /// the golden reference every result is defined against. N > 0 runs one
  /// engine shard per rank, executed by min(N, num_ranks) worker threads
  /// under the conservative lookahead window protocol; results are
  /// bit-identical across every N > 0 (the worker count only decides which
  /// OS thread runs a shard), and the serial engine stays the reference.
  /// Defaults to the one-time $MVFLOW_ENGINE_THREADS snapshot.
  int engine_threads = sim::default_engine_threads();
  /// Pending-set scheduler for every engine/shard; defaulted from the
  /// one-time $MVFLOW_SCHEDULER snapshot. Never changes results, only
  /// wall-clock (scheduler.hpp).
  sim::SchedKind scheduler = sim::default_sched_kind();

  /// Upper bound on simulated time; exceeding it is reported as a deadlock
  /// (protects against infinite hardware retry loops in the modeled system).
  sim::Duration max_sim_time = sim::seconds(30);

  /// Arm the causal profiler (DESIGN.md §16) without requesting a file
  /// export — for tests and benchmarks that read the analysis in process.
  /// $MVFLOW_PROF (run.prof_path) arms it too, and additionally writes the
  /// profile JSON at flush_exports.
  bool profile = false;

  /// Tracing/metrics-export configuration. Defaults to the one-time
  /// process snapshot of the MVFLOW_* environment; sweep jobs running on
  /// the parallel runner get an explicit (quiet) config instead, so
  /// concurrent worlds never race on env-driven output files.
  exp::RunConfig run = exp::RunConfig::process();
};

/// Thrown when the simulation drains with ranks still blocked in MPI calls.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Per-connection report (one direction: `rank`'s endpoint toward `peer`).
struct ConnectionReport {
  Rank rank = -1;
  Rank peer = -1;
  flowctl::Counters flow;
  ib::QpStats qp;
};

struct WorldStats {
  sim::Duration elapsed{0};  ///< Max over ranks of body-finish time.
  std::vector<ConnectionReport> connections;
  std::vector<DeviceStats> devices;
  ib::FabricStats fabric;

  /// World totals, folded from each device's incremental aggregate at
  /// collect time — O(ranks), not O(connections). The accessors below read
  /// these; under MVFLOW_AUDIT collect_stats() cross-checks them against a
  /// full per-connection re-sum (DESIGN.md §17).
  flowctl::Counters flow_totals;
  ib::QpStats qp_totals;

  std::uint64_t total_ecm() const;
  std::uint64_t total_messages() const;  ///< All MPI-level messages sent.
  std::uint64_t total_backlogged() const;
  std::uint64_t total_rnr_naks() const;
  std::uint64_t total_retransmitted_messages() const;
  int max_posted_buffers() const;  ///< Paper's Table 2 metric.
};

class World {
 public:
  explicit World(WorldConfig cfg);
  World(const World&) = delete;
  World& operator=(const World&) = delete;
  ~World();

  using RankBody = std::function<void(Communicator&)>;

  /// Run the same body on every rank; returns elapsed simulated time
  /// (max over ranks). May be called once per World.
  sim::Duration run(const RankBody& body);

  /// Run one body per rank.
  sim::Duration run(const std::vector<RankBody>& bodies);

  /// Declare the workload this world runs as a *registered* spec
  /// (mpi/workload.hpp), making the run checkpointable: snapshots record
  /// the spec and a restore replays it. Call before run().
  void set_workload(WorkloadSpec spec) { workload_ = std::move(spec); }
  const std::optional<WorkloadSpec>& workload() const noexcept {
    return workload_;
  }

  /// Run the registered workload (set_workload must have been called).
  sim::Duration run_workload();

  /// Crash the simulation at the next event boundary (serial) or window
  /// barrier (sharded): run() kills every rank process still blocked
  /// mid-call and returns the elapsed time so far (no deadlock diagnosis,
  /// no exports). This is the churn harness's "kill -9 mid-flight" — the
  /// snapshot written *before* the abort is the state a restart resumes
  /// from.
  void abort_run() {
    abort_requested_ = true;
    if (sharded_ != nullptr) {
      sharded_->request_stop();
    } else {
      serial_->stop();
    }
  }
  bool aborted() const noexcept { return abort_requested_; }

  const WorldConfig& config() const noexcept { return cfg_; }
  int num_ranks() const noexcept { return cfg_.num_ranks; }

  /// True when this world runs the sharded engine (engine_threads > 0).
  bool is_sharded() const noexcept { return sharded_ != nullptr; }
  /// The engine rank r's node-local work runs on: its shard in a sharded
  /// world, the one serial engine otherwise.
  sim::Engine& engine_for(Rank r) noexcept {
    return sharded_ != nullptr ? sharded_->shard(static_cast<std::size_t>(r))
                               : *serial_;
  }
  /// Rank 0's engine / the serial engine. Callers acting for a specific
  /// rank use engine_for; world-global questions (executed counts,
  /// watchpoints, pending events) use the wrappers below, which aggregate
  /// across shards.
  sim::Engine& engine() noexcept { return engine_for(0); }
  /// Non-null in sharded worlds.
  sim::ShardedEngine* sharded_engine() noexcept { return sharded_.get(); }

  /// Events executed across the whole world (sum over shards).
  std::uint64_t executed_events() const noexcept;
  /// Live pending events across the whole world (sum over shards).
  std::size_t pending_events() const noexcept;
  /// Run `fn` once executed_events() reaches `executed`: at an exact event
  /// boundary in serial worlds, at the first window barrier where the total
  /// reaches it in sharded worlds (between windows every shard is quiescent
  /// and cross-shard state fully applied — the only globally consistent
  /// instants a parallel run has). The checkpoint layer arms its capture,
  /// audit, and kill hooks through this.
  void set_event_watchpoint(std::uint64_t executed, std::function<void()> fn);
  /// Engine section of a snapshot: shard count, then each engine's
  /// scheduler-agnostic dispatch state. Serial worlds write count 1 — a
  /// serial snapshot and a sharded one are deliberately *different* bytes,
  /// because their event interleavings genuinely differ; within sharded
  /// worlds the bytes are identical at every worker count.
  void serialize_engine_state(util::serial::BufWriter& w) const;
  /// Trace section of a snapshot: the world recorder plus each shard
  /// recorder, in shard order.
  void serialize_trace_state(util::serial::BufWriter& w) const;

  ib::Fabric& fabric() noexcept { return *fabric_; }
  Device& device(Rank r) { return *devices_.at(static_cast<std::size_t>(r)); }

  /// Create and connect the endpoint pair between two ranks (both sides
  /// activated). Used at init (eager mode) and by on-demand setup.
  void wire_pair(Rank a, Rank b);

  /// Rebuild a failed connection (DeviceConfig::auto_reconnect): retire
  /// both errored QPs, connect a fresh pair, repost the receive pools and
  /// replay unacknowledged wire traffic. Scheduled by the devices after a
  /// QP error; no-op when neither side is still recovering (both devices
  /// schedule it, the first firing repairs the pair).
  void recover_pair(Rank a, Rank b);

  /// Collect per-connection / per-device / fabric statistics.
  WorldStats collect_stats() const;

  // ---- invariant auditor (obs/audit.hpp, DESIGN.md §15) ----
  /// Auditor armed for this world (run config's MVFLOW_AUDIT snapshot).
  bool audit_enabled() const noexcept { return cfg_.run.audit; }
  /// Serial worlds check inline after every delivered message (Device
  /// caches this at construction); sharded worlds sweep at barriers.
  bool audit_inline() const noexcept {
    return cfg_.run.audit && sharded_ == nullptr;
  }
  /// Check every invariant on the (a, b) connection pair, both directions:
  /// credit conservation, backlog books, delivery window, and buffer
  /// accounting. Throws obs::AuditError naming the direction and section.
  void audit_pair(Rank a, Rank b);
  /// audit_pair over every wired pair — the sharded barrier sweep and the
  /// end-of-run final check; public so tests can force a sweep.
  void audit_sweep();

  /// Write the configured end-of-run artifacts (metrics snapshot, Chrome
  /// trace, credit CSV) now, once: run() calls it on every exit path —
  /// clean end, abort_run, deadlock diagnosis, audit/watchdog failure — so
  /// a failing run still leaves its evidence on disk (satellite: DESIGN.md
  /// §15). Idempotent; subsequent calls are no-ops.
  void flush_exports();

  /// Unified metrics registry: the engine, fabric, pool, per-device and
  /// per-connection stats all register sources here; one snapshot() yields
  /// the whole stack's counters as a flat document (DESIGN.md §11).
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }

  /// This world's flight recorder (DESIGN.md §11-12). World-owned so
  /// concurrent worlds trace independently; the constructor binds it as the
  /// current thread's recorder and run() rebinds it on the running thread
  /// and every rank's process thread. Armed automatically when the run
  /// config requests a trace export; tests may enable() it directly.
  /// Sharded worlds additionally keep one recorder per shard (rank threads
  /// and shard windows record concurrently) — this one then holds only
  /// coordinator-context events, and merged_trace() presents the union.
  obs::FlightRecorder& recorder() noexcept { return recorder_; }
  /// Shard s's recorder (sharded worlds only).
  obs::FlightRecorder& shard_recorder(std::size_t s) {
    return *shard_recorders_.at(s);
  }

  /// One world-ordered trace: the world recorder with every shard recorder
  /// absorbed in shard order (a plain copy of recorder() in serial worlds).
  /// What the trace/CSV exports and trace-reading tests should consume.
  obs::FlightRecorder merged_trace() const;
  /// Latency accumulators summed over the world and shard recorders; the
  /// "latency." metrics source emits this.
  obs::LatencyBreakdown merged_latency() const;

  /// Causal profiler armed for this world (WorldConfig::profile or the run
  /// config's $MVFLOW_PROF snapshot).
  bool prof_enabled() const noexcept {
    return cfg_.profile || cfg_.run.prof_enabled();
  }
  /// This world's profiler (DESIGN.md §16), bound exactly like the
  /// recorder: on the constructing thread, the run() thread, every rank's
  /// process thread, and — in sharded worlds — per shard via the shard
  /// hooks (shard_profiler(s) collects that shard's records).
  obs::Profiler& profiler() noexcept { return prof_; }
  obs::Profiler& shard_profiler(std::size_t s) { return *shard_profilers_.at(s); }
  /// Union of the world and shard record buffers (a plain copy of
  /// profiler() in serial worlds). The analysis re-sorts canonically, so
  /// absorb order never shows in results.
  obs::Profiler merged_prof() const;
  /// analyze() over merged_prof() — the full causal attribution.
  obs::ProfileAnalysis prof_analysis() const;

 private:
  /// One progress sample per live connection (sender side), fed to the
  /// watchdog: backlog depth + a monotonic progress counter (credited
  /// sends + ECMs + transport retransmits).
  std::vector<sim::WatchdogSample> watchdog_samples() const;
  /// Serial engine driving: self-rescheduling poll event. Stops once the
  /// queue is otherwise empty so runs still drain (and the DeadlockError
  /// diagnosis stays intact).
  void watchdog_poll_serial(sim::Duration period);
  /// Diagnose a detected stall: wait-for summary, metrics dump, optional
  /// checkpoint capture, export flush — then throw sim::WatchdogError.
  [[noreturn]] void handle_stall(const sim::WatchdogStall& stall);

  WorldConfig cfg_;
  // Exactly one of these two is non-null for the world's lifetime,
  // according to cfg_.engine_threads.
  std::unique_ptr<sim::Engine> serial_;
  std::unique_ptr<sim::ShardedEngine> sharded_;
  // Declared before fabric_/devices_: sources capture pointers into those
  // objects, and member order guarantees the registry outlives none of them
  // while they can still be snapshotted.
  obs::MetricsRegistry metrics_;
  obs::FlightRecorder recorder_;
  /// Sharded worlds: recorder_[s] for shard s, bound by the shard hooks on
  /// whichever worker thread runs a window and by rank s's process thread.
  std::vector<std::unique_ptr<obs::FlightRecorder>> shard_recorders_;
  /// Per-shard saved previous binding for the enter/exit hooks (only the
  /// worker currently running shard s touches slot s).
  std::vector<obs::FlightRecorder*> shard_prev_bindings_;
  /// Recorder bound on the constructing thread before this world; restored
  /// by the destructor (worlds nest strictly on a given thread).
  obs::FlightRecorder* prev_recorder_ = nullptr;
  /// Causal profiler, mirroring the recorder's ownership/binding pattern:
  /// one world buffer plus one per shard, with per-shard saved previous
  /// bindings for the shard hooks. Never serialized into snapshots — the
  /// profile is an export artifact, not world state.
  obs::Profiler prof_;
  std::vector<std::unique_ptr<obs::Profiler>> shard_profilers_;
  std::vector<obs::Profiler*> shard_prev_profilers_;
  obs::Profiler* prev_profiler_ = nullptr;
  std::unique_ptr<ib::Fabric> fabric_;
  std::vector<std::unique_ptr<Device>> devices_;
  sim::Duration elapsed_{0};
  bool ran_ = false;
  bool abort_requested_ = false;
  bool exports_flushed_ = false;
  std::unique_ptr<sim::Watchdog> watchdog_;
  std::optional<WorkloadSpec> workload_;
};

}  // namespace mvflow::mpi
