// Nonblocking operation handles.
#pragma once

#include <cstdint>
#include <memory>

#include "mpi/types.hpp"

namespace mvflow::mpi {

enum class RequestKind : std::uint8_t { send, recv };

/// One outstanding nonblocking operation. Created by Device::isend/irecv;
/// completed by the progress engine; observed via wait/test.
class Request {
 public:
  Request(RequestKind kind, std::uint64_t id) : kind_(kind), id_(id) {}

  RequestKind kind() const noexcept { return kind_; }
  std::uint64_t id() const noexcept { return id_; }
  bool complete() const noexcept { return complete_; }
  /// The operation finished unsuccessfully (its connection failed). The
  /// request still counts as complete so wait/test return instead of
  /// hanging; the data never transferred.
  bool failed() const noexcept { return failed_; }
  const Status& status() const noexcept { return status_; }

  // Progress-engine side.
  void mark_complete(const Status& st) {
    status_ = st;
    complete_ = true;
  }
  void mark_complete() { complete_ = true; }
  void mark_error() {
    failed_ = true;
    complete_ = true;
  }

 private:
  RequestKind kind_;
  std::uint64_t id_;
  bool complete_ = false;
  bool failed_ = false;
  Status status_;
};

using RequestPtr = std::shared_ptr<Request>;

}  // namespace mvflow::mpi
