// Byte-level collective algorithms over the point-to-point layer:
// dissemination barrier, binomial broadcast, ring allgather, pairwise
// alltoall(v), linear gather/scatter. Typed reductions live in the header
// (templates over the element type and operator).
#include <vector>

#include "mpi/communicator.hpp"
#include "util/check.hpp"

namespace mvflow::mpi {

void Communicator::barrier() {
  const Tag tag = next_coll_tag();
  const int p = size_;
  std::byte token{0};
  for (int k = 1; k < p; k <<= 1) {
    const Rank to = (rank() + k) % p;
    const Rank from = (rank() - k + p) % p;
    sendrecv({&token, 1}, to, tag, {&token, 1}, from, tag);
  }
}

void Communicator::bcast(std::span<std::byte> data, Rank root) {
  util::require(root >= 0 && root < size_, "invalid bcast root");
  const Tag tag = next_coll_tag();
  const int p = size_;
  if (p == 1) return;
  const int rel = (rank() - root + p) % p;

  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      const Rank src = (rank() - mask + p) % p;
      recv(data, src, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < p) {
      const Rank dst = (rank() + mask) % p;
      send(data, dst, tag);
    }
    mask >>= 1;
  }
}

void Communicator::allgather(std::span<const std::byte> mine,
                             std::span<std::byte> all) {
  const int p = size_;
  const std::size_t block = mine.size();
  util::require(all.size() == block * static_cast<std::size_t>(p),
                "allgather output size mismatch");
  const Tag tag = next_coll_tag();
  // Own block in place.
  std::copy(mine.begin(), mine.end(),
            all.begin() + static_cast<std::ptrdiff_t>(block * rank()));
  if (p == 1) return;
  if ((p & (p - 1)) == 0) {
    // Power of two: recursive doubling — pairwise symmetric exchanges
    // (log2 P steps), so credits flow back via piggybacking.
    for (int mask = 1; mask < p; mask <<= 1) {
      const Rank partner = rank() ^ mask;
      // Exchange the contiguous group of blocks each side currently holds.
      const int group = (rank() / mask) * mask;         // my group start
      const int pgroup = (partner / mask) * mask;       // partner's group
      sendrecv(all.subspan(block * static_cast<std::size_t>(group),
                           block * static_cast<std::size_t>(mask)),
               partner, tag,
               all.subspan(block * static_cast<std::size_t>(pgroup),
                           block * static_cast<std::size_t>(mask)),
               partner, tag);
    }
    return;
  }
  // General rank counts: ring — each step forwards the newest block.
  const Rank right = (rank() + 1) % p;
  const Rank left = (rank() - 1 + p) % p;
  int have = rank();  // index of the newest block we hold
  for (int s = 0; s < p - 1; ++s) {
    const int incoming = (have - 1 + p) % p;
    const auto send_block = all.subspan(block * static_cast<std::size_t>(have), block);
    const auto recv_block =
        all.subspan(block * static_cast<std::size_t>(incoming), block);
    sendrecv(send_block, right, tag, recv_block, left, tag);
    have = incoming;
  }
}

void Communicator::alltoall(std::span<const std::byte> send_data,
                            std::span<std::byte> recv_data,
                            std::size_t block_bytes) {
  const int p = size_;
  util::require(send_data.size() == block_bytes * static_cast<std::size_t>(p) &&
                    recv_data.size() == block_bytes * static_cast<std::size_t>(p),
                "alltoall buffer size mismatch");
  const Tag tag = next_coll_tag();
  // Local block.
  std::copy_n(send_data.begin() + static_cast<std::ptrdiff_t>(block_bytes * rank()),
              block_bytes,
              recv_data.begin() + static_cast<std::ptrdiff_t>(block_bytes * rank()));
  // Pairwise exchange: step s talks to rank +s (send) and rank -s (recv).
  for (int s = 1; s < p; ++s) {
    const Rank to = (rank() + s) % p;
    const Rank from = (rank() - s + p) % p;
    sendrecv(send_data.subspan(block_bytes * static_cast<std::size_t>(to), block_bytes),
             to, tag,
             recv_data.subspan(block_bytes * static_cast<std::size_t>(from), block_bytes),
             from, tag);
  }
}

void Communicator::alltoallv(const std::byte* send_data,
                             std::span<const std::size_t> send_counts,
                             std::span<const std::size_t> send_displs,
                             std::byte* recv_data,
                             std::span<const std::size_t> recv_counts,
                             std::span<const std::size_t> recv_displs) {
  const int p = size_;
  util::require(send_counts.size() == static_cast<std::size_t>(p) &&
                    recv_counts.size() == static_cast<std::size_t>(p),
                "alltoallv counts size mismatch");
  const Tag tag = next_coll_tag();
  const auto me = static_cast<std::size_t>(rank());
  util::check(send_counts[me] == recv_counts[me],
              "alltoallv self block size mismatch");
  std::copy_n(send_data + send_displs[me], send_counts[me],
              recv_data + recv_displs[me]);
  for (int s = 1; s < p; ++s) {
    const auto to = static_cast<std::size_t>((rank() + s) % p);
    const auto from = static_cast<std::size_t>((rank() - s + p) % p);
    sendrecv({send_data + send_displs[to], send_counts[to]},
             static_cast<Rank>(to), tag,
             {recv_data + recv_displs[from], recv_counts[from]},
             static_cast<Rank>(from), tag);
  }
}

void Communicator::gather(std::span<const std::byte> mine,
                          std::span<std::byte> all, Rank root) {
  const int p = size_;
  const std::size_t block = mine.size();
  const Tag tag = next_coll_tag();
  if (rank() == root) {
    util::require(all.size() == block * static_cast<std::size_t>(p),
                  "gather output size mismatch");
    std::copy(mine.begin(), mine.end(),
              all.begin() + static_cast<std::ptrdiff_t>(block * rank()));
    std::vector<RequestPtr> reqs;
    for (Rank r = 0; r < p; ++r) {
      if (r == root) continue;
      reqs.push_back(
          irecv(all.subspan(block * static_cast<std::size_t>(r), block), r, tag));
    }
    wait_all(reqs);
  } else {
    send(mine, root, tag);
  }
}

void Communicator::scatter(std::span<const std::byte> all,
                           std::span<std::byte> mine, Rank root) {
  const int p = size_;
  const std::size_t block = mine.size();
  const Tag tag = next_coll_tag();
  if (rank() == root) {
    util::require(all.size() == block * static_cast<std::size_t>(p),
                  "scatter input size mismatch");
    std::vector<RequestPtr> reqs;
    for (Rank r = 0; r < p; ++r) {
      if (r == root) continue;
      reqs.push_back(
          isend(all.subspan(block * static_cast<std::size_t>(r), block), r, tag));
    }
    std::copy_n(all.begin() + static_cast<std::ptrdiff_t>(block * rank()), block,
                mine.begin());
    wait_all(reqs);
  } else {
    recv(mine, root, tag);
  }
}

}  // namespace mvflow::mpi
