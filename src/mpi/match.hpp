// Tag matching: posted-receive queue and unexpected-message queue with MPI
// ordering semantics (matches between a pair of ranks happen in send
// order; wildcards on source and tag are supported).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "sim/time.hpp"

namespace mvflow::util::serial {
class BufWriter;
}

namespace mvflow::mpi {

/// A receive the application posted and the transport has not matched yet.
struct PostedRecv {
  Rank src = kAnySource;  // may be kAnySource
  Tag tag = kAnyTag;      // may be kAnyTag
  std::byte* buffer = nullptr;
  std::uint32_t capacity = 0;
  RequestPtr req;
};

/// An inbound message that arrived before a matching receive was posted.
struct UnexpectedMsg {
  Rank src = 0;
  Tag tag = 0;
  bool is_rndv = false;
  std::vector<std::byte> eager_payload;  // eager only
  std::uint32_t rndv_bytes = 0;          // rendezvous total size
  std::uint64_t rndv_sreq = 0;           // sender's op id, echoed in the CTS
  // Profiler carry-through (armed runs only): the wire arrival checkpoint
  // travels with the queued message so the dev_recv record emitted at match
  // time still spans the full match_wait segment. ~0ull seq = not stamped.
  sim::TimePoint prof_arrival{-1};
  std::uint64_t prof_seq = ~0ull;
  std::uint64_t prof_cause = 0;
};

class MatchQueue {
 public:
  /// Try to match an inbound message (src always concrete). Returns the
  /// matched posted receive, removed from the queue; nullopt to enqueue as
  /// unexpected (caller does that via add_unexpected).
  std::optional<PostedRecv> match_inbound(Rank src, Tag tag);

  /// Try to match a freshly posted receive against the unexpected queue
  /// (earliest arrival first). Returns the matched message, removed.
  std::optional<UnexpectedMsg> match_posted(Rank src, Tag tag);

  void add_posted(PostedRecv pr) { posted_.push_back(std::move(pr)); }
  void add_unexpected(UnexpectedMsg um) { unexpected_.push_back(std::move(um)); }

  /// Remove and return every posted receive bound to exactly `src`.
  /// Wildcard-source receives stay: another peer may still satisfy them.
  /// Used when a connection fails permanently.
  std::vector<PostedRecv> extract_posted(Rank src);

  std::size_t posted_count() const noexcept { return posted_.size(); }
  std::size_t unexpected_count() const noexcept { return unexpected_.size(); }
  std::size_t max_unexpected() const noexcept { return max_unexpected_; }

  /// Serialize the matching state (queue order included — MPI ordering
  /// semantics make the order part of the semantics) for the snapshot
  /// restore audit.
  void serialize_state(util::serial::BufWriter& w) const;

 private:
  static bool matches(Rank want_src, Tag want_tag, Rank src, Tag tag) {
    return (want_src == kAnySource || want_src == src) &&
           (want_tag == kAnyTag || want_tag == tag);
  }

  std::deque<PostedRecv> posted_;
  std::deque<UnexpectedMsg> unexpected_;
  std::size_t max_unexpected_ = 0;
};

}  // namespace mvflow::mpi
