#include "mpi/workload.hpp"

#include <cstddef>
#include <utility>

#include "mpi/communicator.hpp"
#include "util/serial.hpp"

namespace mvflow::mpi {

namespace {

std::map<std::string, WorkloadFactory>& registry() {
  static auto* r = new std::map<std::string, WorkloadFactory>();
  return *r;
}

// ---- built-in bodies --------------------------------------------------

RankBodyFn make_pingpong(const WorkloadSpec& spec) {
  const std::size_t bytes = static_cast<std::size_t>(spec.param("bytes", 8));
  const int iters = static_cast<int>(spec.param("iters", 200));
  return [bytes, iters](Communicator& comm) {
    if (comm.rank() > 1) return;
    std::vector<std::byte> buf(bytes > 0 ? bytes : 1);
    for (int i = 0; i < iters; ++i) {
      if (comm.rank() == 0) {
        comm.send(buf, 1, 7);
        comm.recv(buf, 1, 7);
      } else {
        comm.recv(buf, 0, 7);
        comm.send(buf, 0, 7);
      }
    }
  };
}

RankBodyFn make_bw(const WorkloadSpec& spec) {
  const std::size_t bytes = static_cast<std::size_t>(spec.param("bytes", 1024));
  const int window = static_cast<int>(spec.param("window", 16));
  const int reps = static_cast<int>(spec.param("reps", 50));
  const bool blocking = spec.param("blocking", 0) != 0;
  return [bytes, window, reps, blocking](Communicator& comm) {
    if (comm.rank() > 1) return;
    std::vector<std::byte> buf(bytes > 0 ? bytes : 1);
    if (comm.rank() == 0) {
      for (int r = 0; r < reps; ++r) {
        if (blocking) {
          for (int i = 0; i < window; ++i) comm.send(buf, 1, 3);
        } else {
          std::vector<RequestPtr> reqs;
          reqs.reserve(static_cast<std::size_t>(window));
          for (int i = 0; i < window; ++i) reqs.push_back(comm.isend(buf, 1, 3));
          comm.wait_all(reqs);
        }
      }
      // Close the stream so the sink's elapsed time covers everything.
      comm.recv(buf, 1, 4);
    } else {
      for (int r = 0; r < reps; ++r) {
        for (int i = 0; i < window; ++i) comm.recv(buf, 0, 3);
      }
      comm.send(buf, 0, 4);
    }
  };
}

RankBodyFn make_allpairs(const WorkloadSpec& spec) {
  const std::size_t bytes = static_cast<std::size_t>(spec.param("bytes", 512));
  const int rounds = static_cast<int>(spec.param("rounds", 20));
  return [bytes, rounds](Communicator& comm) {
    std::vector<std::byte> sendbuf(bytes > 0 ? bytes : 1);
    std::vector<std::byte> recvbuf(sendbuf.size());
    for (int r = 0; r < rounds; ++r) {
      for (int off = 1; off < comm.size(); ++off) {
        const Rank dst = (comm.rank() + off) % comm.size();
        const Rank src = (comm.rank() - off + comm.size()) % comm.size();
        comm.sendrecv(sendbuf, dst, 11, recvbuf, src, 11);
      }
    }
  };
}

RankBodyFn make_soak(const WorkloadSpec& spec) {
  const std::size_t bytes = static_cast<std::size_t>(spec.param("bytes", 256));
  const int rounds = static_cast<int>(spec.param("rounds", 60));
  return [bytes, rounds](Communicator& comm) {
    std::vector<std::byte> sendbuf;
    std::vector<std::byte> recvbuf;
    for (int r = 0; r < rounds; ++r) {
      // Cycle the message size so eager, multi-packet, and rendezvous
      // traffic all stay in flight over the soak's lifetime.
      const std::size_t mult = static_cast<std::size_t>(1)
                               << (2 * (r % 3));  // 1x, 4x, 16x
      const std::size_t sz = (bytes > 0 ? bytes : 1) * mult;
      sendbuf.assign(sz, std::byte{static_cast<unsigned char>(r)});
      recvbuf.assign(sz, std::byte{0});
      for (int off = 1; off < comm.size(); ++off) {
        const Rank dst = (comm.rank() + off) % comm.size();
        const Rank src = (comm.rank() - off + comm.size()) % comm.size();
        comm.sendrecv(sendbuf, dst, 21, recvbuf, src, 21);
      }
      if (r % 8 == 7) comm.barrier();
    }
  };
}

RankBodyFn make_hotspot(const WorkloadSpec& spec) {
  const std::size_t bytes = static_cast<std::size_t>(spec.param("bytes", 256));
  const int rounds = static_cast<int>(spec.param("rounds", 20));
  const int actives = static_cast<int>(spec.param("actives", 8));
  return [bytes, rounds, actives](Communicator& comm) {
    // Hub-and-spokes over a constant active set: rank 0 exchanges with
    // ranks 1..actives each round; every other rank stays completely idle.
    // Under on-demand wiring the idle ranks never create a connection, so
    // this body is the O(active)-progress probe for huge worlds — total
    // work is a function of `actives`, never of comm.size().
    const int spokes = std::min(actives, comm.size() - 1);
    std::vector<std::byte> buf(bytes > 0 ? bytes : 1);
    if (comm.rank() == 0) {
      for (int r = 0; r < rounds; ++r) {
        for (int p = 1; p <= spokes; ++p) {
          comm.recv(buf, p, 31);
          comm.send(buf, p, 31);
        }
      }
    } else if (comm.rank() <= spokes) {
      for (int r = 0; r < rounds; ++r) {
        comm.send(buf, 0, 31);
        comm.recv(buf, 0, 31);
      }
    }
  };
}

const bool kBuiltinsRegistered = [] {
  register_workload("pingpong", make_pingpong);
  register_workload("bw", make_bw);
  register_workload("allpairs", make_allpairs);
  register_workload("soak", make_soak);
  register_workload("hotspot", make_hotspot);
  return true;
}();

}  // namespace

std::string WorkloadSpec::to_string() const {
  std::string out = name + "(";
  bool first = true;
  for (const auto& [k, v] : params) {
    if (!first) out += ",";
    first = false;
    out += k + "=" + std::to_string(v);
  }
  return out + ")";
}

bool register_workload(const std::string& name, WorkloadFactory factory) {
  registry()[name] = std::move(factory);
  return true;
}

bool workload_registered(const std::string& name) {
  (void)kBuiltinsRegistered;
  return registry().count(name) != 0;
}

std::vector<std::string> workload_names() {
  std::vector<std::string> out;
  for (const auto& [name, f] : registry()) {
    (void)f;
    out.push_back(name);
  }
  return out;
}

RankBodyFn make_workload(const WorkloadSpec& spec) {
  const auto it = registry().find(spec.name);
  if (it == registry().end()) {
    std::string known;
    for (const auto& [name, f] : registry()) {
      (void)f;
      if (!known.empty()) known += ", ";
      known += name;
    }
    throw util::serial::SnapshotError(
        "snapshot names unknown workload \"" + spec.name +
        "\" (registered: " + known + ")");
  }
  return it->second(spec);
}

}  // namespace mvflow::mpi
