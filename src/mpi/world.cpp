#include "mpi/world.hpp"

#include <algorithm>
#include <sstream>

#include "mpi/checkpoint.hpp"
#include "mpi/communicator.hpp"
#include "obs/audit.hpp"
#include "obs/recorder.hpp"
#include "sim/process.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/serial.hpp"

namespace mvflow::mpi {

std::uint64_t WorldStats::total_ecm() const { return flow_totals.ecm_sent; }

std::uint64_t WorldStats::total_messages() const {
  return flow_totals.total_messages();
}

std::uint64_t WorldStats::total_backlogged() const {
  return flow_totals.backlog_entered;
}

std::uint64_t WorldStats::total_rnr_naks() const {
  return qp_totals.rnr_naks_received;
}

std::uint64_t WorldStats::total_retransmitted_messages() const {
  return qp_totals.retransmitted_messages;
}

int WorldStats::max_posted_buffers() const { return flow_totals.max_posted; }

World::World(WorldConfig cfg) : cfg_(cfg) {
  util::require(cfg_.num_ranks >= 1, "need at least one rank");

  // This world's recorder becomes the constructing thread's current one —
  // instrumented layers reach it through the thread-local obs::recorder()
  // without knowing which world they run in. The previous binding is
  // restored at destruction, so worlds nest on a thread and concurrent
  // worlds on different threads never see each other's rings.
  prev_recorder_ = obs::bind_recorder(&recorder_);
  // The causal profiler binds identically (DESIGN.md §16); it stays
  // disabled — one predictable branch per site — unless this world arms it.
  prev_profiler_ = obs::bind_profiler(&prof_);

  // A requested trace export arms the recorder for this world's lifetime.
  const std::size_t trace_capacity =
      cfg_.run.trace_capacity != 0 ? cfg_.run.trace_capacity
                                   : obs::FlightRecorder::kDefaultCapacity;
  if (cfg_.run.trace_enabled()) {
    recorder_.enable(trace_capacity);
  }
  if (prof_enabled()) prof_.enable();

  if (cfg_.engine_threads > 0) {
    // Sharded world: one engine shard per rank. Connections must exist
    // before the windows open — on-demand setup creates QPs (a fabric-wide
    // allocator) from inside a rank's window, racing other shards.
    util::require(!cfg_.on_demand_connections,
                  "sharded worlds wire connections eagerly: on-demand setup "
                  "mutates fabric-wide state from inside a shard's window");
    // Reconnect rebuilds *both* sides' QPs from one callback — inherently
    // cross-shard work no window may do. With faults armed a QP error is
    // reachable, so the combination is rejected up front; sharded chaos
    // cells run with infinite retry limits instead (exp/chaos.cpp).
    util::require(!(cfg_.device.auto_reconnect && cfg_.fabric.fault.active()),
                  "sharded worlds cannot auto-reconnect under fault "
                  "injection: recovery mutates both shards' state");
    sharded_ = std::make_unique<sim::ShardedEngine>(
        static_cast<std::size_t>(cfg_.num_ranks),
        static_cast<std::size_t>(cfg_.engine_threads), cfg_.scheduler);
    fabric_ = std::make_unique<ib::Fabric>(*sharded_, cfg_.fabric,
                                           cfg_.num_ranks);
    // Rank processes and shard windows record concurrently, so each shard
    // gets its own ring; the shard hooks point whichever worker thread runs
    // a window at that shard's recorder. Content per shard is a function of
    // that shard's (deterministic) event sequence — worker count invisible.
    shard_recorders_.reserve(static_cast<std::size_t>(cfg_.num_ranks));
    shard_profilers_.reserve(static_cast<std::size_t>(cfg_.num_ranks));
    for (int s = 0; s < cfg_.num_ranks; ++s) {
      auto rec = std::make_unique<obs::FlightRecorder>();
      if (cfg_.run.trace_enabled()) rec->enable(trace_capacity);
      shard_recorders_.push_back(std::move(rec));
      auto prof = std::make_unique<obs::Profiler>();
      if (prof_enabled()) prof->enable();
      shard_profilers_.push_back(std::move(prof));
    }
    shard_prev_bindings_.assign(static_cast<std::size_t>(cfg_.num_ranks),
                                nullptr);
    shard_prev_profilers_.assign(static_cast<std::size_t>(cfg_.num_ranks),
                                 nullptr);
    sharded_->set_shard_hooks(
        [this](std::size_t s) {
          shard_prev_bindings_[s] =
              obs::bind_recorder(shard_recorders_[s].get());
          shard_prev_profilers_[s] =
              obs::bind_profiler(shard_profilers_[s].get());
        },
        [this](std::size_t s) {
          obs::bind_recorder(shard_prev_bindings_[s]);
          obs::bind_profiler(shard_prev_profilers_[s]);
        });
  } else {
    serial_ = std::make_unique<sim::Engine>(cfg_.scheduler);
    fabric_ = std::make_unique<ib::Fabric>(*serial_, cfg_.fabric,
                                           cfg_.num_ranks);
  }

  metrics_.add_source("engine.", [this](const obs::MetricsRegistry::EmitFn& e) {
    if (sharded_ != nullptr) {
      sharded_->aggregate_perf().visit(e);
      sharded_->stats().visit(e);
    } else {
      serial_->perf_stats().visit(e);
    }
  });
  metrics_.add_source("fabric.", [this](const obs::MetricsRegistry::EmitFn& e) {
    fabric_->stats().visit(e);
  });
  metrics_.add_source("msg_pool.", [this](const obs::MetricsRegistry::EmitFn& e) {
    fabric_->msg_pool_stats().visit(e);
  });
  metrics_.add_source("latency.", [this](const obs::MetricsRegistry::EmitFn& e) {
    merged_latency().visit(e);
  });
  if (prof_enabled()) {
    // Run-level blame (per segment, per connection direction, per link).
    // Registered only when armed: each snapshot re-joins the record buffers,
    // which is an end-of-run cost, not something a disarmed world pays.
    metrics_.add_source("prof.", [this](const obs::MetricsRegistry::EmitFn& e) {
      obs::emit_metrics(prof_analysis(), e);
    });
  }

  devices_.reserve(static_cast<std::size_t>(cfg_.num_ranks));
  for (Rank r = 0; r < cfg_.num_ranks; ++r) {
    devices_.push_back(std::make_unique<Device>(*this, r));
  }
  if (!cfg_.on_demand_connections) {
    // The paper's MPI sets up a reliable connection between every pair of
    // processes during initialization.
    for (Rank a = 0; a < cfg_.num_ranks; ++a) {
      for (Rank b = a; b < cfg_.num_ranks; ++b) {
        wire_pair(a, b);
      }
    }
  }
}

World::~World() {
  obs::bind_recorder(prev_recorder_);
  obs::bind_profiler(prev_profiler_);
}

std::uint64_t World::executed_events() const noexcept {
  return sharded_ != nullptr ? sharded_->total_executed()
                             : serial_->executed_events();
}

std::size_t World::pending_events() const noexcept {
  if (sharded_ == nullptr) return serial_->pending_events();
  std::size_t n = 0;
  for (std::size_t s = 0; s < sharded_->shard_count(); ++s) {
    n += sharded_->shard(s).pending_events();
  }
  return n;
}

void World::set_event_watchpoint(std::uint64_t executed,
                                 std::function<void()> fn) {
  if (sharded_ != nullptr) {
    sharded_->set_watchpoint(executed, std::move(fn));
  } else {
    serial_->set_watchpoint(executed, std::move(fn));
  }
}

void World::serialize_engine_state(util::serial::BufWriter& w) const {
  if (sharded_ != nullptr) {
    w.u32(static_cast<std::uint32_t>(sharded_->shard_count()));
    for (std::size_t s = 0; s < sharded_->shard_count(); ++s) {
      sharded_->shard(s).serialize_state(w);
    }
  } else {
    w.u32(1);
    serial_->serialize_state(w);
  }
}

void World::serialize_trace_state(util::serial::BufWriter& w) const {
  w.u32(static_cast<std::uint32_t>(1 + shard_recorders_.size()));
  recorder_.serialize_state(w);
  for (const auto& rec : shard_recorders_) rec->serialize_state(w);
}

obs::FlightRecorder World::merged_trace() const {
  obs::FlightRecorder out = recorder_;
  for (const auto& rec : shard_recorders_) out.absorb(*rec);
  return out;
}

obs::LatencyBreakdown World::merged_latency() const {
  obs::LatencyBreakdown out = recorder_.latency();
  for (const auto& rec : shard_recorders_) out.merge(rec->latency());
  return out;
}

obs::Profiler World::merged_prof() const {
  obs::Profiler out = prof_;
  for (const auto& p : shard_profilers_) out.absorb(*p);
  return out;
}

obs::ProfileAnalysis World::prof_analysis() const {
  return obs::analyze(merged_prof().records());
}

void World::wire_pair(Rank a, Rank b) {
  ib::QueuePair& qa = device(a).create_endpoint(b);
  if (a == b) {
    ib::Fabric::connect_loopback(qa);
    device(a).activate_endpoint(b);
    return;
  }
  ib::QueuePair& qb = device(b).create_endpoint(a);
  ib::Fabric::connect(qa, qb);
  device(a).activate_endpoint(b);
  device(b).activate_endpoint(a);
}

void World::recover_pair(Rank a, Rank b) {
  Device& da = device(a);
  Device& db = device(b);
  if (!da.endpoint_recovering(b) && !db.endpoint_recovering(a)) return;
  da.prepare_reconnect(b);
  if (a == b) {
    ib::Fabric::connect_loopback(da.endpoint_qp(b));
    da.finish_reconnect(b, da.flow(b).current_posted());
    return;
  }
  db.prepare_reconnect(a);
  ib::Fabric::connect(da.endpoint_qp(b), db.endpoint_qp(a));
  // Each side's send credits restart from the pool the *other* side just
  // reposted.
  const int posted_at_b = db.flow(a).current_posted();
  const int posted_at_a = da.flow(b).current_posted();
  da.finish_reconnect(b, posted_at_b);
  db.finish_reconnect(a, posted_at_a);
}

sim::Duration World::run(const RankBody& body) {
  std::vector<RankBody> bodies(static_cast<std::size_t>(cfg_.num_ranks), body);
  return run(bodies);
}

sim::Duration World::run_workload() {
  util::require(workload_.has_value(),
                "run_workload requires set_workload first");
  return run(make_workload(*workload_));
}

sim::Duration World::run(const std::vector<RankBody>& bodies) {
  util::check(!ran_, "World::run may only be called once");
  util::require(static_cast<int>(bodies.size()) == cfg_.num_ranks,
                "one body per rank required");
  ran_ = true;

  // The engine dispatches on whichever thread called run(), which on a
  // sweep pool need not be the constructing thread — rebind for the
  // duration so engine-context instrumentation lands in this world's ring.
  obs::RecorderBinding engine_thread_binding(&recorder_);
  obs::ProfilerBinding engine_thread_prof_binding(&prof_);

  std::vector<sim::TimePoint> finish(static_cast<std::size_t>(cfg_.num_ranks));
  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.reserve(bodies.size());
  for (Rank r = 0; r < cfg_.num_ranks; ++r) {
    const auto& body = bodies[static_cast<std::size_t>(r)];
    procs.push_back(std::make_unique<sim::Process>(
        engine_for(r), "rank" + std::to_string(r),
        [this, r, &body, &finish](sim::Process& p) {
          // Rank bodies run on their own OS thread; point that thread's
          // recorder binding at this world — in a sharded world at the
          // rank's shard recorder, since rank threads of different shards
          // record concurrently (the thread is born and dies inside this
          // run, so nothing needs restoring).
          obs::bind_recorder(sharded_ != nullptr
                                 ? shard_recorders_[static_cast<std::size_t>(r)]
                                       .get()
                                 : &recorder_);
          obs::bind_profiler(sharded_ != nullptr
                                 ? shard_profilers_[static_cast<std::size_t>(r)]
                                       .get()
                                 : &prof_);
          Device& dev = device(r);
          dev.bind_process(p);
          Communicator comm(*this, dev, p);
          body(comm);
          finish[static_cast<std::size_t>(r)] = engine_for(r).now();
          // Finalize barrier (as MPI_Finalize implies): keeps every rank
          // progressing until all are done, so trailing control messages
          // (e.g. a last ECM) still find buffers and get consumed instead
          // of spinning in hardware-level RNR retries forever.
          if (cfg_.num_ranks > 1 && !cfg_.on_demand_connections) comm.barrier();
        }));
  }

  // An MVFLOW_CHECKPOINT request is honoured only for registered
  // workloads: a snapshot must record how to *replay* the run, and an
  // ad-hoc closure body has no replayable identity.
  if (cfg_.run.checkpoint_enabled() && workload_.has_value()) {
    ckpt::arm_checkpoints(*this, cfg_.run.checkpoint_path,
                          cfg_.run.checkpoint_events);
  }

  // Progress watchdog (DESIGN.md §15): on the serial engine a
  // self-rescheduling poll event; in sharded worlds a tick at every window
  // barrier (combined below with the auditor's barrier sweep).
  if (cfg_.run.watchdog_enabled()) {
    const sim::Duration horizon =
        sim::microseconds(cfg_.run.watchdog_horizon_us);
    watchdog_ = std::make_unique<sim::Watchdog>(horizon);
    if (sharded_ == nullptr) {
      const sim::Duration period =
          std::max(horizon / 4, sim::microseconds(1));
      serial_->schedule_after(period,
                              [this, period] { watchdog_poll_serial(period); });
    }
  }
  if (sharded_ != nullptr && (cfg_.run.audit || watchdog_ != nullptr)) {
    // Coordinator thread, every shard quiescent: the one instant a
    // parallel run can read cross-shard state consistently.
    sharded_->set_barrier_hook([this](sim::TimePoint now) {
      if (cfg_.run.audit) audit_sweep();
      if (watchdog_ != nullptr) {
        if (auto stall = watchdog_->observe(now, watchdog_samples())) {
          handle_stall(*stall);
        }
      }
    });
  }

  // Safety net against modeled livelocks (e.g. infinite RNR retry against
  // a stopped rank): bound the simulated time. An invariant / watchdog
  // violation (or any engine-context exception) still flushes the
  // configured exports before propagating — the evidence of a failing run
  // is worth more than a clean one's.
  try {
    if (sharded_ != nullptr) {
      sharded_->run_until(sim::TimePoint(cfg_.max_sim_time));
    } else {
      serial_->run_until(sim::TimePoint(cfg_.max_sim_time));
    }
  } catch (...) {
    procs.clear();  // kill + join the rank threads before touching exports
    flush_exports();
    throw;
  }

  if (abort_requested_) {
    // Simulated crash (World::abort_run): kill the rank processes where
    // they stand and report the time reached — exactly what a process
    // death mid-flight leaves behind. No deadlock diagnosis, but the
    // configured exports still flush: the crash investigator needs them.
    // A sharded abort lands at a window barrier, so shard clocks agree to
    // within a lookahead; report the furthest one.
    procs.clear();
    sim::TimePoint reached{0};
    for (Rank r = 0; r < cfg_.num_ranks; ++r) {
      reached = std::max(reached, engine_for(r).now());
    }
    elapsed_ = reached;
    flush_exports();
    return elapsed_;
  }

  if (pending_events() > 0) {
    flush_exports();
    throw DeadlockError("simulation exceeded max_sim_time (livelock?)");
  }

  std::string blocked;
  for (const auto& p : procs) {
    if (!p->finished()) {
      if (!blocked.empty()) blocked += ", ";
      blocked += p->name();
    }
  }
  if (!blocked.empty()) {
    procs.clear();  // kill + join the stuck ranks before throwing
    flush_exports();
    throw DeadlockError("simulation drained with blocked ranks: " + blocked);
  }

  elapsed_ = sim::Duration::zero();
  for (auto t : finish) elapsed_ = std::max(elapsed_, t);

  // Final invariant sweep over the settled world: every in-flight term of
  // the conservation equation must have landed by now.
  if (cfg_.run.audit) audit_sweep();

  flush_exports();
  return elapsed_;
}

void World::flush_exports() {
  if (exports_flushed_) return;
  exports_flushed_ = true;
  // Config-driven exports (the RunConfig snapshot of MVFLOW_METRICS /
  // MVFLOW_TRACE / MVFLOW_TRACE_CSV): a metrics snapshot, the Chrome
  // trace, and the credit/backlog CSV, each gated on its own path.
  if (!cfg_.run.metrics_path.empty()) {
    metrics_.snapshot().write_json(cfg_.run.metrics_path);
  }
  // The profile analysis feeds two artifacts: the $MVFLOW_PROF JSON and the
  // Chrome-trace flow arrows. Join once, use for both.
  obs::ProfileAnalysis analysis;
  const bool have_analysis =
      prof_enabled() &&
      (cfg_.run.prof_enabled() || cfg_.run.trace_enabled());
  if (have_analysis) analysis = prof_analysis();
  if (cfg_.run.prof_enabled() &&
      !obs::write_profile(cfg_.run.prof_path, analysis, "run")) {
    util::Logger::write(util::LogLevel::error, "obs",
                        "cannot write profile " + cfg_.run.prof_path);
  }
  if (!cfg_.run.trace_path.empty() || !cfg_.run.trace_csv_path.empty()) {
    // Exports read the world-ordered union of rings (== recorder_ itself in
    // a serial world; the copy is once per run, not per event).
    const obs::FlightRecorder merged = merged_trace();
    if (!cfg_.run.trace_path.empty()) {
      // With the profiler armed the trace gains sender→receiver flow arrows
      // (ph:"s"/"f"), one per joined wire message.
      const bool ok =
          prof_enabled()
              ? merged.export_chrome_trace(cfg_.run.trace_path,
                                           obs::flow_events(analysis))
              : merged.export_chrome_trace(cfg_.run.trace_path);
      if (!ok) {
        util::Logger::write(util::LogLevel::error, "obs",
                            "cannot write trace file " + cfg_.run.trace_path);
      }
    }
    if (!cfg_.run.trace_csv_path.empty() &&
        !merged.export_credit_csv(cfg_.run.trace_csv_path)) {
      util::Logger::write(util::LogLevel::error, "obs",
                          "cannot write credit CSV " + cfg_.run.trace_csv_path);
    }
  }
}

// ------------------------------------------------------ invariant auditor --

void World::audit_pair(Rank a, Rank b) {
  Device& da = device(a);
  Device& db = device(b);
  if (!da.has_endpoint(b) || !db.has_endpoint(a)) return;
  const Device::EndpointProbe pa = da.probe(b);  // a's endpoint toward b
  const Device::EndpointProbe pb = db.probe(a);  // b's endpoint toward a
  if (!pa.active || !pb.active) return;
  const bool disturbed =
      pa.failed || pa.recovering || pb.failed || pb.recovering;

  // Backlog books never pause: entered == dispatched + failed + depth must
  // hold through faults too (fail_endpoint closes them as it clears).
  const auto books = [](Rank src, Rank dst, const flowctl::Counters& c,
                        const Device::EndpointProbe& p) {
    obs::BacklogBooks bb;
    bb.src = src;
    bb.dst = dst;
    bb.entered = c.backlog_entered;
    bb.dispatched = c.backlog_dispatched;
    bb.failed = c.backlog_failed;
    bb.depth = p.backlog_depth;
    obs::audit_backlog_books(bb);
  };
  books(a, b, da.flow(b).counters(), pa);
  if (a != b) books(b, a, db.flow(a).counters(), pb);

  // Buffer accounting per endpoint. Safe even on a failed endpoint (the
  // errored QP flushed its queue, which the ledger counts); skipped only
  // mid-reconnect, where the fresh QP's ledger restarts while the pool
  // carries over.
  const auto buffers = [](Rank owner, Rank peer, std::int64_t posted,
                          const Device::EndpointProbe& p) {
    if (p.recovering) return;
    obs::EndpointBuffers eb;
    eb.owner = owner;
    eb.peer = peer;
    eb.slots = p.slots;
    eb.retired = p.retired_slots;
    eb.control_reserve = p.control_reserve;
    eb.current_posted = posted;
    eb.wqes_posted = p.wqes_posted;
    eb.wqes_completed = p.wqes_completed;
    eb.wqes_flushed = p.wqes_flushed;
    eb.recvq_depth = p.recvq_depth;
    eb.assembly_holds_wqe = p.assembly_holds_wqe;
    obs::audit_buffer_accounting(eb);
  };
  buffers(a, b, da.flow(b).current_posted(), pa);
  if (a != b) buffers(b, a, db.flow(a).current_posted(), pb);

  // Delivery window: the receiver may never be ahead of the sender. A
  // reconnect replay rewinds nothing (tx_seq is monotonic) but the check
  // pauses while recovery is mid-rebuild.
  if (!disturbed) {
    obs::DeliveryWindow dw;
    dw.src = a;
    dw.dst = b;
    dw.tx_seq = pa.tx_seq;
    dw.rx_seq = pb.rx_seq;
    obs::audit_delivery_window(dw);
    if (a != b) {
      dw.src = b;
      dw.dst = a;
      dw.tx_seq = pb.tx_seq;
      dw.rx_seq = pa.rx_seq;
      obs::audit_delivery_window(dw);
    }
  }

  // Credit conservation (DESIGN.md §15). The hardware scheme keeps no
  // MPI-level ledger (every aud_* counter stays zero by design), and a
  // direction touching a failed / mid-reconnect endpoint is in a declared
  // inconsistent window — both skip.
  if (cfg_.flow.scheme == flowctl::Scheme::hardware || disturbed) return;
  const auto conserve = [this](Rank src, Rank dst,
                               const flowctl::ConnectionFlow& tx,
                               const flowctl::ConnectionFlow& rx) {
    obs::ConnCredit cc;
    cc.src = src;
    cc.dst = dst;
    cc.scheme = std::string(flowctl::to_string(cfg_.flow.scheme));
    cc.credits = tx.credits();
    cc.consumed = tx.aud_consumed();
    cc.received = tx.aud_received();
    cc.pending_return = rx.pending_return_credits();
    cc.delivered = rx.aud_delivered();
    cc.granted = rx.aud_granted();
    cc.posted = rx.current_posted();
    obs::audit_credit_conservation(cc);
  };
  conserve(a, b, da.flow(b), db.flow(a));
  if (a != b) conserve(b, a, db.flow(a), da.flow(b));
}

void World::audit_sweep() {
  for (Rank a = 0; a < cfg_.num_ranks; ++a) {
    for (Rank b : device(a).peers()) {
      if (b >= a) audit_pair(a, b);
    }
  }
}

// ------------------------------------------------------ progress watchdog --

std::vector<sim::WatchdogSample> World::watchdog_samples() const {
  std::vector<sim::WatchdogSample> out;
  for (const auto& dev : devices_) {
    for (Rank peer : dev->peers()) {
      const Device::EndpointProbe p = dev->probe(peer);
      if (!p.active || p.failed) continue;
      const flowctl::Counters& c = dev->flow(peer).counters();
      sim::WatchdogSample s;
      s.src = dev->rank();
      s.dst = peer;
      s.backlog = p.backlog_depth;
      s.progress = c.credited_sent + c.ecm_sent +
                   dev->qp_stats(peer).retransmitted_messages;
      out.push_back(s);
    }
  }
  return out;
}

void World::watchdog_poll_serial(sim::Duration period) {
  if (auto stall = watchdog_->observe(serial_->now(), watchdog_samples())) {
    handle_stall(*stall);
  }
  // Stop polling once the queue is otherwise empty: a drained run must
  // still terminate, and the blocked-ranks DeadlockError diagnosis stays
  // the authority on true deadlocks.
  if (serial_->pending_events() > 0) {
    serial_->schedule_after(period,
                            [this, period] { watchdog_poll_serial(period); });
  }
}

void World::handle_stall(const sim::WatchdogStall& stall) {
  // Wait-for summary: what each side of the stuck connection is blocked on,
  // straight from the probes — the first thing a human wants from a hang.
  std::ostringstream os;
  os << "no credited send / ECM / retransmit for "
     << stall.stalled_for.count() << " ns (horizon "
     << watchdog_->horizon().count() << " ns); backlog=" << stall.backlog
     << " progress=" << stall.progress;
  const auto describe = [&os](const char* label,
                              const Device::EndpointProbe& p) {
    os << "; " << label << ": backlog=" << p.backlog_depth
       << " recvq=" << p.recvq_depth << " retired=" << p.retired_slots << "/"
       << p.slots << (p.famine_rts_inflight ? " famine-rts" : "")
       << (p.retx_armed ? " retx-armed" : "")
       << (p.rnr_waiting ? " rnr-waiting" : "")
       << (p.recovering ? " recovering" : "") << (p.failed ? " failed" : "");
  };
  Device& src_dev = device(stall.src);
  if (src_dev.has_endpoint(stall.dst)) {
    describe("sender", src_dev.probe(stall.dst));
    os << " credits=" << src_dev.flow(stall.dst).credits();
  }
  Device& dst_dev = device(stall.dst);
  if (stall.src != stall.dst && dst_dev.has_endpoint(stall.src)) {
    describe("receiver", dst_dev.probe(stall.src));
    os << " pending_return=" << dst_dev.flow(stall.src).pending_return_credits();
  }
  const std::string detail = os.str();
  util::Logger::write(util::LogLevel::error, "watchdog",
                      "stall on " + std::to_string(stall.src) + "->" +
                          std::to_string(stall.dst) + ": " + detail);

  // Stall artifacts: a full metrics snapshot, and (when configured and the
  // workload is registered) a best-effort world checkpoint. The capture
  // runs mid-event / mid-window rather than at an armed watchpoint, so it
  // is a diagnostic artifact — the restore audit's bit-exactness guarantee
  // applies only to barrier-aligned checkpoints (DESIGN.md §13).
  if (!cfg_.run.watchdog_dump_path.empty()) {
    metrics_.snapshot().write_json(cfg_.run.watchdog_dump_path);
  }
  if (!cfg_.run.watchdog_ckpt_path.empty() && workload_.has_value()) {
    try {
      ckpt::write_snapshot(ckpt::capture(*this), cfg_.run.watchdog_ckpt_path);
    } catch (const std::exception& e) {
      util::Logger::write(util::LogLevel::error, "watchdog",
                          std::string("stall checkpoint failed: ") + e.what());
    }
  }
  flush_exports();
  throw sim::WatchdogError(stall.src, stall.dst, detail);
}

WorldStats World::collect_stats() const {
  WorldStats out;
  out.elapsed = elapsed_;
  out.fabric = fabric_->stats();
  for (const auto& dev : devices_) {
    out.devices.push_back(dev->stats());
    for (Rank peer : dev->peers()) {
      ConnectionReport cr;
      cr.rank = dev->rank();
      cr.peer = peer;
      cr.flow = dev->flow(peer).counters();
      cr.qp = dev->qp_stats(peer);
      out.connections.push_back(cr);
    }
    // World totals fold one pre-aggregated block per device: O(ranks).
    const flowctl::Counters& f = dev->flow_totals();
    out.flow_totals.credited_sent += f.credited_sent;
    out.flow_totals.control_sent += f.control_sent;
    out.flow_totals.ecm_sent += f.ecm_sent;
    out.flow_totals.backlog_entered += f.backlog_entered;
    out.flow_totals.backlog_dispatched += f.backlog_dispatched;
    out.flow_totals.backlog_failed += f.backlog_failed;
    out.flow_totals.optimistic_rts += f.optimistic_rts;
    out.flow_totals.credits_received += f.credits_received;
    out.flow_totals.growth_events += f.growth_events;
    out.flow_totals.decay_events += f.decay_events;
    out.flow_totals.max_posted = std::max(out.flow_totals.max_posted,
                                          f.max_posted);
    const ib::QpStats& q = dev->qp_totals();
    out.qp_totals.retransmitted_messages += q.retransmitted_messages;
    out.qp_totals.retransmitted_bytes += q.retransmitted_bytes;
    out.qp_totals.rnr_naks_received += q.rnr_naks_received;
  }
  if (cfg_.run.audit) {
    // Cross-check the incremental aggregates against a full O(connections)
    // re-sum of the per-connection reports. A mismatch means a counter
    // mutation somewhere skipped its sink mirror (DESIGN.md §17).
    flowctl::Counters rf;
    ib::QpStats rq;
    for (const ConnectionReport& c : out.connections) {
      rf.credited_sent += c.flow.credited_sent;
      rf.control_sent += c.flow.control_sent;
      rf.ecm_sent += c.flow.ecm_sent;
      rf.backlog_entered += c.flow.backlog_entered;
      rf.backlog_dispatched += c.flow.backlog_dispatched;
      rf.backlog_failed += c.flow.backlog_failed;
      rf.optimistic_rts += c.flow.optimistic_rts;
      rf.credits_received += c.flow.credits_received;
      rf.growth_events += c.flow.growth_events;
      rf.decay_events += c.flow.decay_events;
      rf.max_posted = std::max(rf.max_posted, c.flow.max_posted);
      rq.retransmitted_messages += c.qp.retransmitted_messages;
      rq.retransmitted_bytes += c.qp.retransmitted_bytes;
      rq.rnr_naks_received += c.qp.rnr_naks_received;
    }
    util::require(rf.credited_sent == out.flow_totals.credited_sent &&
                      rf.control_sent == out.flow_totals.control_sent &&
                      rf.ecm_sent == out.flow_totals.ecm_sent &&
                      rf.backlog_entered == out.flow_totals.backlog_entered &&
                      rf.backlog_dispatched ==
                          out.flow_totals.backlog_dispatched &&
                      rf.backlog_failed == out.flow_totals.backlog_failed &&
                      rf.optimistic_rts == out.flow_totals.optimistic_rts &&
                      rf.credits_received == out.flow_totals.credits_received &&
                      rf.growth_events == out.flow_totals.growth_events &&
                      rf.decay_events == out.flow_totals.decay_events &&
                      rf.max_posted == out.flow_totals.max_posted,
                  "flow aggregate drifted from per-connection re-sum");
    util::require(
        rq.retransmitted_messages == out.qp_totals.retransmitted_messages &&
            rq.retransmitted_bytes == out.qp_totals.retransmitted_bytes &&
            rq.rnr_naks_received == out.qp_totals.rnr_naks_received,
        "QP aggregate drifted from per-connection re-sum");
  }
  return out;
}

}  // namespace mvflow::mpi
