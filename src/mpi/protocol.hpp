// Wire protocol between MPI devices, carried in the pre-posted 2 KB
// buffers via IB send/recv (the paper's §3.1 design):
//
//   eager_data — small-message payload, pushed regardless of receiver state
//   rndv_rts   — rendezvous start (unexpected, credited like eager_data)
//   rndv_cts   — rendezvous reply carrying the pinned destination (control)
//   rndv_fin   — rendezvous finish after the RDMA write (control)
//   credit     — explicit credit message, ECM (control, optimistic)
//
// Every header carries a piggyback credit count and the went-through-
// backlog bit (the dynamic scheme's feedback signal).
#pragma once

#include <cstdint>
#include <cstring>

#include "mpi/types.hpp"

namespace mvflow::mpi {

enum class MsgKind : std::uint8_t {
  eager_data,
  rndv_rts,
  rndv_cts,
  rndv_fin,
  credit,
};

/// True for the message classes that consume a flow-control credit (the
/// paper's "unexpected" messages: Eager Data and Rendezvous Start).
constexpr bool is_credited(MsgKind k) {
  return k == MsgKind::eager_data || k == MsgKind::rndv_rts;
}

struct WireHeader {
  MsgKind kind = MsgKind::eager_data;
  std::uint8_t backlogged = 0;  ///< Went through the sender's backlog queue.
  /// Sent without consuming a credit (optimistic famine RTS); the receiver
  /// must not generate a return credit for it.
  std::uint8_t optimistic = 0;
  std::int32_t src_rank = -1;
  std::int32_t tag = 0;
  std::uint32_t payload_bytes = 0;  ///< Eager payload / rendezvous total size.
  std::int32_t piggyback_credits = 0;
  std::uint64_t sreq = 0;   ///< Sender-side rendezvous op id (rts/cts).
  std::uint64_t rreq = 0;   ///< Receiver-side rendezvous op id (cts/fin).
  std::uint64_t raddr = 0;  ///< cts: pinned destination address.
  std::uint32_t rkey = 0;   ///< cts: destination rkey.
  /// Per-connection wire sequence number. QP recovery replays messages the
  /// old QP never acknowledged, so the receiver may see a message twice;
  /// it applies each sequence number exactly once.
  std::uint64_t seq = 0;
};

/// Bytes a header occupies on the wire (padded for alignment headroom).
inline constexpr std::uint32_t kHeaderBytes = 64;
static_assert(sizeof(WireHeader) <= kHeaderBytes);

inline void write_header(std::byte* dst, const WireHeader& h) {
  std::memcpy(dst, &h, sizeof(WireHeader));
}

inline WireHeader read_header(const std::byte* src) {
  WireHeader h;
  std::memcpy(&h, src, sizeof(WireHeader));
  return h;
}

}  // namespace mvflow::mpi
