// The ADI-style device layer: one per rank.
//
// Implements the paper's §3.1 design: Eager protocol for small messages
// (copied through pre-pinned 2 KB buffers, IB send/recv), Rendezvous for
// large ones (RTS/CTS handshake, zero-copy RDMA write, FIN), one CQ for all
// connections of the process, and per-connection flow control supplied by
// flowctl::ConnectionFlow (§4's three schemes).
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "flowctl/flowctl.hpp"
#include "ib/cq.hpp"
#include "ib/hca.hpp"
#include "mpi/config.hpp"
#include "mpi/match.hpp"
#include "mpi/protocol.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "sim/process.hpp"

namespace mvflow::util::serial {
class BufWriter;
}

namespace mvflow::mpi {

class World;

/// Device-level counters (per rank), aggregated by the benches.
struct DeviceStats {
  std::uint64_t eager_sent = 0;
  std::uint64_t rndv_started = 0;
  std::uint64_t small_converted_to_rndv = 0;  ///< Credit famine conversions.
  std::uint64_t payload_bytes_sent = 0;
  std::uint64_t reg_cache_hits = 0;
  std::uint64_t reg_cache_misses = 0;
  std::size_t max_unexpected = 0;
  // ---- fault handling ----
  std::uint64_t error_completions = 0;   ///< CQEs with a failure status.
  std::uint64_t stale_completions = 0;   ///< CQEs from destroyed (replaced) QPs.
  std::uint64_t duplicate_wire_msgs = 0; ///< Replays already applied (seq dedup).
  std::uint64_t replayed_wire_msgs = 0;  ///< Unacked messages re-posted on reconnect.
  std::uint64_t endpoint_failures = 0;   ///< Connections declared dead.
  std::uint64_t reconnects = 0;          ///< Connections rebuilt after a QP error.
  std::uint64_t requests_failed = 0;     ///< Requests completed with error status.

  /// Enumerate every counter as (name, value) for a metrics sink.
  template <typename Fn>
  void visit(Fn&& f) const {
    f("eager_sent", static_cast<double>(eager_sent));
    f("rndv_started", static_cast<double>(rndv_started));
    f("small_converted_to_rndv", static_cast<double>(small_converted_to_rndv));
    f("payload_bytes_sent", static_cast<double>(payload_bytes_sent));
    f("reg_cache_hits", static_cast<double>(reg_cache_hits));
    f("reg_cache_misses", static_cast<double>(reg_cache_misses));
    f("max_unexpected", static_cast<double>(max_unexpected));
    f("error_completions", static_cast<double>(error_completions));
    f("stale_completions", static_cast<double>(stale_completions));
    f("duplicate_wire_msgs", static_cast<double>(duplicate_wire_msgs));
    f("replayed_wire_msgs", static_cast<double>(replayed_wire_msgs));
    f("endpoint_failures", static_cast<double>(endpoint_failures));
    f("reconnects", static_cast<double>(reconnects));
    f("requests_failed", static_cast<double>(requests_failed));
  }
};

class Device {
 public:
  Device(World& world, Rank me);
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;
  ~Device();

  Rank rank() const noexcept { return me_; }
  int world_size() const;

  /// This rank's engine (its shard in a sharded world) — the only engine a
  /// device may read time from or schedule on (shard-locality invariant,
  /// DESIGN.md §14).
  sim::Engine& engine() const noexcept;

  /// Bind the rank's simulated process (set by World when the body starts).
  void bind_process(sim::Process& proc) { proc_ = &proc; }

  // ---- point-to-point ----
  RequestPtr isend(Rank dst, Tag tag, std::span<const std::byte> data,
                   SendMode mode = SendMode::standard);
  RequestPtr irecv(Rank src, Tag tag, std::span<std::byte> buffer);
  void wait(const RequestPtr& req);
  bool test(const RequestPtr& req);
  void progress();  ///< Non-blocking: drain the CQ, run protocol actions.

  // ---- setup (World / on-demand) ----
  /// Create this side's QP toward `peer` (not yet connected).
  ib::QueuePair& create_endpoint(Rank peer);
  /// Pre-post the initial credited pool + control reserve for `peer`.
  void activate_endpoint(Rank peer);
  bool has_endpoint(Rank peer) const {
    return peer >= 0 && static_cast<std::size_t>(peer) < peer_index_.size() &&
           peer_index_[static_cast<std::size_t>(peer)] >= 0;
  }
  std::size_t endpoint_count() const { return conn_.size(); }
  /// Bytes of per-connection state: one flat-table element (the Endpoint
  /// block) plus the 4-byte rank->slot index entry every configured rank
  /// costs whether or not it ever connects. Reported by bench_conn_scaling
  /// so state growth shows up in the perf trajectory.
  static std::size_t endpoint_state_bytes() noexcept;
  static constexpr std::size_t kIndexBytesPerRank = sizeof(std::int32_t);

  // ---- fault recovery (driven by World::recover_pair) ----
  /// Phase 1 of reconnecting to `peer`: drain the CQ, retire the errored
  /// QP (accumulating its stats) and create a fresh, unconnected one.
  void prepare_reconnect(Rank peer);
  /// Phase 2, after the fresh QPs are connected: repost the whole receive
  /// pool, replay unacknowledged wire messages, and reset credit state to
  /// `peer_posted` minus the credited replays in flight.
  void finish_reconnect(Rank peer, int peer_posted);

  // ---- introspection ----
  const DeviceStats& stats() const noexcept { return stats_; }
  const flowctl::ConnectionFlow& flow(Rank peer) const;
  /// Test-only mutable access — lets negative auditor tests plant a
  /// deliberate counter corruption. Never used by the protocol itself.
  flowctl::ConnectionFlow& debug_flow(Rank peer);

  /// One endpoint's state, flattened for the auditor and the watchdog
  /// (obs/audit.hpp, sim/watchdog.hpp). Everything is copied out so the
  /// caller can evaluate invariants without re-entering the device.
  struct EndpointProbe {
    bool active = false;
    bool failed = false;
    bool recovering = false;
    bool famine_rts_inflight = false;
    std::size_t backlog_depth = 0;
    std::uint64_t tx_seq = 0;
    std::uint64_t rx_seq = 0;
    std::size_t slots = 0;          ///< Receive pool size (incl. retired).
    std::size_t retired_slots = 0;  ///< Slots removed by dynamic decay.
    std::size_t control_reserve = 0;
    // Live QP recv-WQE ledger (zeroed while a reconnect is rebuilding it).
    std::uint64_t wqes_posted = 0;
    std::uint64_t wqes_completed = 0;
    std::uint64_t wqes_flushed = 0;
    std::size_t recvq_depth = 0;
    bool assembly_holds_wqe = false;
    // Timer state for the watchdog's wait-for dump.
    bool retx_armed = false;
    bool rnr_waiting = false;
  };
  EndpointProbe probe(Rank peer) const;
  /// Live QP counters plus everything accumulated from QPs retired by
  /// recovery (so retransmit/NAK counts survive a reconnect).
  ib::QpStats qp_stats(Rank peer) const;
  bool endpoint_failed(Rank peer) const { return ep_at(peer).failed; }
  bool endpoint_recovering(Rank peer) const { return ep_at(peer).recovering; }
  ib::QueuePair& endpoint_qp(Rank peer) { return *ep_at(peer).qp; }
  /// Live peers in ascending rank order (deterministic iteration for the
  /// auditor, the watchdog, and serialization).
  std::vector<Rank> peers() const;

  /// Incremental aggregates over every connection this device owns
  /// (DESIGN.md §17): flow-control counters and QP reliability counters
  /// (live + retired-by-reconnect), mirrored at the point of change, so
  /// world-level stat totals are O(ranks) instead of O(connections).
  /// Single-writer per device — each shard touches only its own block.
  const flowctl::Counters& flow_totals() const noexcept { return flow_agg_; }
  const ib::QpStats& qp_totals() const noexcept { return qp_agg_; }

  /// Apply a flow-control tuning delta to every live connection (the
  /// checkpoint-fork sweep's branch point — DESIGN.md §13).
  void retune(const flowctl::TuneDelta& d);

  /// Serialize the rank's complete device state for the snapshot restore
  /// audit: counters, tag-matching queues, every endpoint (flow control,
  /// QP, wire sequencing, backlog, receive pool shape), and the
  /// outstanding-operation tables (tx contexts, rendezvous ops, pin cache).
  void serialize_state(util::serial::BufWriter& w) const;

 private:
  struct Arena {
    std::unique_ptr<std::vector<std::byte>> storage;
    ib::MemoryRegionHandle mr;
  };
  struct RecvSlot {
    std::byte* addr = nullptr;
    std::uint32_t lkey = 0;
  };
  struct BacklogEntry {
    WireHeader hdr;
    std::vector<std::byte> payload;  // eager payload (empty for RTS)
    RequestPtr eager_req;            // completes at dispatch (eager only)
    sim::TimePoint enqueued_at{0};   // backlog-residency latency stamp
    /// Profiler: the connection's cumulative zero-credit time at enqueue;
    /// the dispatch-time delta is this message's zero-credit overlap.
    std::int64_t prof_zero_base = 0;
  };
  struct Endpoint {
    Rank peer = -1;
    std::shared_ptr<ib::QueuePair> qp;
    flowctl::ConnectionFlow flow;
    std::deque<BacklogEntry> backlog;
    std::vector<Arena> recv_arenas;
    std::vector<RecvSlot> slots;  // index == recv wr_id
    /// Slots retired by dynamic-decay (take_decay_slot): their buffers are
    /// never reposted — not even by a reconnect, which would silently grow
    /// the pool past current_posted and break credit conservation.
    std::vector<std::uint8_t> slot_retired;
    std::size_t retired_count = 0;
    bool active = false;
    /// A famine (optimistic) RTS is outstanding: its CTS has not arrived
    /// yet. Throttles optimistic sends to one at a time per connection.
    bool famine_rts_inflight = false;
    /// The connection is dead (QP error, auto_reconnect off): every
    /// outstanding request failed and new ones fail fast.
    bool failed = false;
    /// A QP error occurred and a reconnect is scheduled / in progress.
    bool recovering = false;
    /// Per-connection wire sequencing: next seq to stamp on an outgoing
    /// message / next seq expected inbound. Reconnect replays duplicate
    /// the tail, so the receiver applies each seq exactly once.
    std::uint64_t tx_seq = 0;
    std::uint64_t rx_seq = 0;
    /// Stats accumulated from QPs destroyed by recovery.
    ib::QpStats retired_qp;
    // ---- profiler state (obs::Profiler; written only while armed) ----
    // Zero-credit episode ledger: an episode opens when the credit pool
    // empties and closes when an inbound grant refills it. prof_cum_zero
    // accumulates closed episodes, so cumulative zero time at any instant
    // is prof_cum_zero plus the open episode's age — per-message overlap
    // is a difference of two such readings (see obs/prof.hpp).
    sim::TimePoint prof_zero_since{-1};  ///< open episode start; -1 = none
    std::int64_t prof_cum_zero = 0;      ///< closed-episode zero-credit ns
    std::uint64_t prof_grant_seq = ~0ull;  ///< inbound seq of last releasing grant
    bool prof_grant_ecm = false;  ///< that grant was an explicit credit message
    /// Scratch handed from the backlog dispatchers to post_wire (the only
    /// place that knows the final wire seq): original post time and
    /// zero-credit overlap of the message about to be posted.
    sim::TimePoint prof_next_post{-1};
    sim::TimePoint prof_next_disp{-1};
    std::int64_t prof_next_zero = 0;
    explicit Endpoint(const flowctl::Config& cfg) : flow(cfg) {}
  };
  struct TxCtx {
    bool is_rdma_write = false;
    std::size_t bounce_slot = 0;   // !is_rdma_write
    std::uint64_t rndv_id = 0;     // is_rdma_write
    Rank peer = -1;
    ib::SendWr wr;  ///< Kept so recovery can replay the post verbatim.
  };
  struct SendRndv {
    Rank dst = -1;
    std::span<const std::byte> data;
    RequestPtr req;
    ib::MemoryRegionHandle mr;
    std::uint64_t rreq = 0;  // receiver's op id, learned from the CTS
    /// For famine-converted eager messages: the payload copy the span
    /// points into (the user's send already "completed" into the backlog).
    std::vector<std::byte> owned_payload;
  };
  struct RecvRndv {
    Rank src = -1;
    Tag tag = 0;
    std::byte* buffer = nullptr;
    std::uint32_t bytes = 0;
    RequestPtr req;
    ib::MemoryRegionHandle mr;
  };
  struct CacheEntry {
    std::byte* addr = nullptr;
    std::size_t len = 0;
    ib::MemoryRegionHandle mr;
  };

  Endpoint& ensure_endpoint(Rank peer);

  /// O(1) rank → endpoint lookup; nullptr when no endpoint exists.
  Endpoint* find_endpoint(Rank peer) const noexcept {
    if (peer < 0 || static_cast<std::size_t>(peer) >= peer_index_.size()) {
      return nullptr;
    }
    const std::int32_t slot = peer_index_[static_cast<std::size_t>(peer)];
    return slot < 0 ? nullptr : conn_[static_cast<std::size_t>(slot)].get();
  }
  /// As find_endpoint, but the endpoint must exist.
  Endpoint& ep_at(Rank peer) const;

  void handle_completion(const ib::Completion& wc);
  void handle_error_completion(Endpoint& ep, const ib::Completion& wc);
  /// Complete a request with error status (idempotent, null-safe).
  void fail_request(const RequestPtr& req);
  /// Declare the connection dead: fail every request bound to it.
  void fail_endpoint(Endpoint& ep);
  /// Schedule World::recover_pair after the configured reconnect delay.
  void begin_recovery(Endpoint& ep);
  void handle_inbound(Endpoint& ep, std::uint64_t slot_idx,
                      std::uint32_t byte_len, std::uint64_t cause);
  void deliver_eager(Endpoint& ep, const WireHeader& hdr,
                     const std::byte* payload, sim::TimePoint arrival,
                     std::uint64_t cause);
  void handle_rts(Endpoint& ep, const WireHeader& hdr, sim::TimePoint arrival,
                  std::uint64_t cause);
  void handle_cts(Endpoint& ep, const WireHeader& hdr);
  void handle_fin(Endpoint& ep, const WireHeader& hdr);
  void begin_recv_rndv(Rank src, Tag tag, std::uint64_t sreq,
                       std::uint32_t bytes, std::byte* buffer,
                       RequestPtr req);

  /// Send a credited message now or enqueue it in the backlog.
  void send_credited(Endpoint& ep, WireHeader hdr,
                     std::span<const std::byte> payload, RequestPtr eager_req);
  void drain_backlog(Endpoint& ep);
  void send_ecm(Endpoint& ep);
  /// Fill piggyback fields and post the wire message via a bounce buffer.
  void post_wire(Endpoint& ep, WireHeader hdr,
                 std::span<const std::byte> payload);

  /// Start a rendezvous send (fresh or converted-from-eager).
  void start_send_rndv(Endpoint& ep, Tag tag, std::span<const std::byte> data,
                       RequestPtr req);

  /// Under credit famine, dispatch the backlog head as an optimistic
  /// (uncredited) rendezvous start so the handshake brings credits back.
  void dispatch_famine_head(Endpoint& ep);

  // ---- profiler hooks (all gated on obs::profiler().enabled()) ----
  /// Cumulative zero-credit ns on `ep` as of `now` (closed episodes plus
  /// the open one).
  static std::int64_t prof_zero_total(const Endpoint& ep, sim::TimePoint now);
  /// Credit-pool transition tracking: open an episode when the pool just
  /// emptied, close it (recording the releasing grant) when it refills.
  void prof_note_credits(Endpoint& ep);
  void prof_note_grant(Endpoint& ep, const WireHeader& hdr);
  /// Emit the receiver-side checkpoint record for one wire message.
  void prof_record_recv(Rank src, std::uint64_t seq, std::uint8_t kind,
                        std::uint8_t flags, std::uint32_t bytes,
                        sim::TimePoint arrival, sim::TimePoint matched,
                        std::uint64_t cause);

  std::size_t acquire_bounce_slot();
  void release_bounce_slot(std::size_t idx);
  std::byte* bounce_addr(std::size_t idx);
  std::uint32_t bounce_lkey(std::size_t idx);

  void grow_recv_slots(Endpoint& ep, int count);
  void post_slot(Endpoint& ep, std::size_t slot_idx);

  /// Pin-down cache: returns a registration covering [addr, addr+len).
  ib::MemoryRegionHandle pin(std::byte* addr, std::size_t len);
  void charge(sim::Duration d);
  void charge_copy(std::size_t bytes);

  World& world_;
  Rank me_;
  /// Cached at construction: run the auditor inline after every delivered
  /// message (serial engine only — sharded worlds sweep at barriers).
  bool audit_inline_ = false;
  sim::Process* proc_ = nullptr;
  /// Recovery runs in engine-event context where Process::delay is illegal;
  /// host-time charging is suppressed for its duration.
  bool allow_charge_ = true;
  ib::Hca* hca_ = nullptr;
  std::shared_ptr<ib::CompletionQueue> cq_;

  /// Lazy flat connection table (DESIGN.md §17). Endpoint slots live in
  /// creation order and are never removed (failed endpoints stay, so
  /// requests against them keep failing fast); `peer_index_` maps rank →
  /// slot (-1 = not connected) and is sized once at construction, so
  /// has_endpoint / ensure_endpoint are O(1) at any world size and an
  /// on-demand world pays per *active* peer, not per configured rank.
  /// `peer_ranks_` is kept sorted for deterministic rank-order iteration
  /// (serialization, peers()) without scanning the whole index. The
  /// qpn → endpoint hop rides the fabric's QPN index cookie (one array
  /// read per completion; see handle_completion).
  std::vector<std::unique_ptr<Endpoint>> conn_;
  std::vector<std::int32_t> peer_index_;
  std::vector<Rank> peer_ranks_;

  MatchQueue match_;

  /// Device-level incremental aggregates (see flow_totals/qp_totals).
  flowctl::Counters flow_agg_;
  ib::QpStats qp_agg_;

  // Bounce-buffer pool for outgoing wire messages (headers + eager data).
  std::vector<Arena> bounce_arenas_;
  std::vector<RecvSlot> bounce_slots_;
  std::vector<std::size_t> bounce_free_;

  std::map<std::uint64_t, TxCtx> tx_;
  std::uint64_t next_tx_id_ = 1;
  std::map<std::uint64_t, SendRndv> send_rndv_;
  std::map<std::uint64_t, RecvRndv> recv_rndv_;
  std::uint64_t next_rndv_id_ = 1;

  std::list<CacheEntry> reg_cache_;  // front = most recent

  DeviceStats stats_;
};

}  // namespace mvflow::mpi
