// Registered, re-creatable rank bodies (DESIGN.md §13).
//
// A checkpoint cannot serialize a rank body: bodies are closures running on
// OS-thread stacks. Resumable runs therefore describe their workload as a
// *name plus integer parameters*; a restore looks the name up in the
// registry and replays the exact same body. Every workload here must be
// fully deterministic as a function of (WorldConfig, WorkloadSpec) — no
// wall clock, no process-global RNG.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace mvflow::mpi {

class Communicator;

/// Serializable workload identity: registry name + integer parameters.
struct WorkloadSpec {
  std::string name;
  std::map<std::string, std::int64_t> params;  // ordered => deterministic

  std::int64_t param(const std::string& key, std::int64_t fallback) const {
    const auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }
  /// "name(k1=v1,k2=v2)" — stable labels for logs and sweep output.
  std::string to_string() const;
};

using RankBodyFn = std::function<void(Communicator&)>;
using WorkloadFactory = std::function<RankBodyFn(const WorkloadSpec&)>;

/// Register a workload under `name` (overwrites an existing entry).
/// Returns true so call sites can use static-init registration.
bool register_workload(const std::string& name, WorkloadFactory factory);

/// Instantiate a registered workload. Throws util::serial::SnapshotError
/// (naming the workload and listing what is registered) when `spec.name`
/// is unknown — an unknown name in a snapshot is a restore failure.
RankBodyFn make_workload(const WorkloadSpec& spec);

bool workload_registered(const std::string& name);
std::vector<std::string> workload_names();

// Built-in workloads (registered at static init):
//   pingpong  — ranks 0/1 exchange `bytes`-sized messages `iters` times.
//   bw        — rank 0 streams `reps` windows of `window` sends of `bytes`
//               to rank 1 (blocking=1 waits each send; the paper's fig3-8
//               pattern); rank 1 sinks them.
//   allpairs  — every rank sends `bytes` to every other rank, `rounds`
//               times (uniform congestion; credit pressure on all pairs).
//   soak      — long-horizon churn body: `rounds` of pairwise exchanges
//               with per-round barriers, message size cycling over
//               {`bytes`, 4*`bytes`, 16*`bytes`}; designed to keep traffic
//               in flight continuously so mid-run kills land mid-message.
//   hotspot   — hub-and-spokes over a constant active set: rank 0
//               exchanges `bytes` with ranks 1..`actives` for `rounds`
//               rounds; all other ranks stay idle. With on-demand wiring
//               the idle ranks never connect — the O(active)-progress
//               probe for 1024-rank worlds (DESIGN.md §17).

}  // namespace mvflow::mpi
