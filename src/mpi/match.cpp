#include "mpi/match.hpp"

#include <algorithm>

#include "util/serial.hpp"

namespace mvflow::mpi {

std::optional<PostedRecv> MatchQueue::match_inbound(Rank src, Tag tag) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (matches(it->src, it->tag, src, tag)) {
      PostedRecv pr = std::move(*it);
      posted_.erase(it);
      return pr;
    }
  }
  max_unexpected_ = std::max(max_unexpected_, unexpected_.size() + 1);
  return std::nullopt;
}

std::vector<PostedRecv> MatchQueue::extract_posted(Rank src) {
  std::vector<PostedRecv> out;
  for (auto it = posted_.begin(); it != posted_.end();) {
    if (it->src == src) {
      out.push_back(std::move(*it));
      it = posted_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::optional<UnexpectedMsg> MatchQueue::match_posted(Rank src, Tag tag) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(src, tag, it->src, it->tag)) {
      UnexpectedMsg um = std::move(*it);
      unexpected_.erase(it);
      return um;
    }
  }
  return std::nullopt;
}

void MatchQueue::serialize_state(util::serial::BufWriter& w) const {
  w.u64(posted_.size());
  for (const PostedRecv& pr : posted_) {
    w.i32(pr.src);
    w.i32(pr.tag);
    w.u32(pr.capacity);
  }
  w.u64(unexpected_.size());
  for (const UnexpectedMsg& um : unexpected_) {
    w.i32(um.src);
    w.i32(um.tag);
    w.b(um.is_rndv);
    w.u64(um.eager_payload.size());
    w.bytes(um.eager_payload.data(), um.eager_payload.size());
    w.u32(um.rndv_bytes);
    w.u64(um.rndv_sreq);
  }
  w.u64(max_unexpected_);
}

}  // namespace mvflow::mpi
