#include "mpi/match.hpp"

#include <algorithm>

namespace mvflow::mpi {

std::optional<PostedRecv> MatchQueue::match_inbound(Rank src, Tag tag) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (matches(it->src, it->tag, src, tag)) {
      PostedRecv pr = std::move(*it);
      posted_.erase(it);
      return pr;
    }
  }
  max_unexpected_ = std::max(max_unexpected_, unexpected_.size() + 1);
  return std::nullopt;
}

std::vector<PostedRecv> MatchQueue::extract_posted(Rank src) {
  std::vector<PostedRecv> out;
  for (auto it = posted_.begin(); it != posted_.end();) {
    if (it->src == src) {
      out.push_back(std::move(*it));
      it = posted_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::optional<UnexpectedMsg> MatchQueue::match_posted(Rank src, Tag tag) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(src, tag, it->src, it->tag)) {
      UnexpectedMsg um = std::move(*it);
      unexpected_.erase(it);
      return um;
    }
  }
  return std::nullopt;
}

}  // namespace mvflow::mpi
