// World checkpoint/restart (DESIGN.md §13).
//
// A snapshot records (a) how to rebuild the world — the full WorldConfig
// and the registered WorkloadSpec, (b) where to stop — the executed-event
// barrier, and (c) the complete serialized state of every layer at that
// barrier (engine scheduler, fabric + fault injector, per-rank devices with
// flow control and QPs, metrics, flight recorder).
//
// Restore is *deterministic replay plus a byte-exact audit*: rank bodies
// run on OS-thread stacks, which no snapshot can serialize, so a restore
// rebuilds the world from the config, replays the registered workload to
// the barrier, and then byte-compares every captured section against the
// freshly serialized live state. A single differing byte — a scheduler
// drift, an RNG draw out of place, one counter off — aborts the restore
// with SnapshotError naming the diverging section. Continued execution
// after a passing audit is bit-identical to the uninterrupted run by the
// engine's determinism guarantee; the serialized state is the proof.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flowctl/flowctl.hpp"
#include "mpi/workload.hpp"
#include "mpi/world.hpp"
#include "obs/metrics.hpp"
#include "util/serial.hpp"

namespace mvflow::mpi::ckpt {

// Section tags ("MVFLOWCK" container, util/serial.hpp).
inline constexpr std::uint32_t kSecConfig = 0x31474643;    // "CFG1"
inline constexpr std::uint32_t kSecWorkload = 0x31444b57;  // "WKD1"
inline constexpr std::uint32_t kSecBarrier = 0x31525242;   // "BRR1"
inline constexpr std::uint32_t kSecEngine = 0x31474e45;    // "ENG1"
inline constexpr std::uint32_t kSecFabric = 0x31424146;    // "FAB1"
inline constexpr std::uint32_t kSecDevices = 0x31564544;   // "DEV1"
inline constexpr std::uint32_t kSecMetrics = 0x3154454d;   // "MET1"
inline constexpr std::uint32_t kSecTrace = 0x31435254;     // "TRC1"

/// Human-readable name for a section tag ("engine", "devices", ...).
std::string section_name(std::uint32_t tag);

struct WorldSnapshot {
  WorldConfig config;         ///< Rebuild recipe (RunConfig not included).
  bool trace_armed = false;   ///< Recorder enabled at capture time.
  std::uint64_t trace_capacity = 0;
  WorkloadSpec workload;      ///< Replayed by name at restore.
  std::uint64_t barrier = 0;  ///< Executed-event count at capture.
  /// Serialized per-layer state at the barrier (kSecEngine..kSecTrace),
  /// byte-compared against the replayed world by the restore audit.
  std::vector<util::serial::Section> state;
};

/// Capture the complete world state. Must run at an event boundary —
/// inside an engine watchpoint — so no callback is mid-dispatch.
WorldSnapshot capture(World& world);

/// Serialize to / parse from the framed, CRC-checked snapshot container.
/// decode() throws util::serial::SnapshotError on any structural problem
/// (truncation, corruption, bad magic, unsupported version, missing
/// section) with a diagnostic naming what was wrong.
std::vector<std::byte> encode(const WorldSnapshot& snap);
WorldSnapshot decode(const std::vector<std::byte>& file);

/// File forms: crash-safe write (tmp + fsync + atomic rename) / checked read.
void write_snapshot(const WorldSnapshot& snap, const std::string& path);
WorldSnapshot read_snapshot(const std::string& path);

/// Arm engine watchpoints that write a snapshot of `world` at each listed
/// executed-event count. One event writes exactly `path`; several write
/// "<path>.<k>" each. The world must have a registered workload.
void arm_checkpoints(World& world, const std::string& path,
                     const std::vector<std::uint64_t>& events);

struct RestoreOptions {
  /// Flow-control tuning applied to every connection at the barrier —
  /// the checkpoint-fork sweep's branch point.
  flowctl::TuneDelta tune;
  /// Write further checkpoints from the resumed run (same path rules as
  /// arm_checkpoints). Counts are absolute executed-event counts and must
  /// exceed the snapshot's barrier.
  std::string checkpoint_path;
  std::vector<std::uint64_t> checkpoint_events;
  /// Simulated crash: abort the run at this executed-event count
  /// (0 = run to completion). Used by the churn harness.
  std::uint64_t kill_at = 0;
};

struct RunResult {
  sim::Duration elapsed{0};
  obs::Snapshot metrics;
  WorldStats stats;
  bool aborted = false;
};

/// Rebuild a world from `snap`, replay its workload to the barrier, audit
/// every state section byte-for-byte (SnapshotError on divergence), then
/// continue to completion under `opts`.
RunResult restore_run(const WorldSnapshot& snap,
                      const RestoreOptions& opts = {});

/// Run a registered workload from scratch — the uninterrupted reference,
/// or a seed run writing checkpoints / being killed via `opts`.
RunResult run_reference(const WorldConfig& cfg, const WorkloadSpec& spec,
                        const RestoreOptions& opts = {});

/// A fork-sweep branch: one warm snapshot resumed under one tuning delta.
struct ForkBranch {
  std::string label;
  flowctl::TuneDelta tune;
};
struct ForkOutcome {
  std::string label;
  sim::Duration elapsed{0};
  obs::Snapshot metrics;
};

/// Checkpoint-fork sweep: restore the snapshot at `path` once per branch
/// (>= 1), each under its own TuneDelta, on `jobs` SweepRunner threads.
/// Results come back in branch order — byte-identical for any job count.
std::vector<ForkOutcome> fork_sweep(const std::string& path,
                                    const std::vector<ForkBranch>& branches,
                                    int jobs = 1);

}  // namespace mvflow::mpi::ckpt
