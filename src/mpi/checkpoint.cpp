#include "mpi/checkpoint.hpp"

#include <algorithm>
#include <utility>

#include "exp/runner.hpp"
#include "util/check.hpp"

namespace mvflow::mpi::ckpt {

namespace serial = util::serial;

std::string section_name(std::uint32_t tag) {
  switch (tag) {
    case kSecConfig: return "config";
    case kSecWorkload: return "workload";
    case kSecBarrier: return "barrier";
    case kSecEngine: return "engine";
    case kSecFabric: return "fabric";
    case kSecDevices: return "devices";
    case kSecMetrics: return "metrics";
    case kSecTrace: return "trace";
  }
  return "unknown(0x" + std::to_string(tag) + ")";
}

namespace {

// ---- WorldConfig <-> bytes -------------------------------------------

void encode_config(serial::BufWriter& w, const WorldConfig& cfg,
                   bool trace_armed, std::uint64_t trace_capacity) {
  w.i32(cfg.num_ranks);
  w.b(cfg.on_demand_connections);
  w.i64(cfg.max_sim_time.count());
  w.b(trace_armed);
  w.u64(trace_capacity);
  // Engine mode travels with the snapshot: a sharded world's engine/trace
  // sections only audit cleanly against a sharded replay (any worker count)
  // and a serial one against serial, so the restore must come back up in
  // the mode that captured. mvflow_ckpt --threads can override within a
  // mode (e.g. restore a t8 capture with t2).
  w.i32(cfg.engine_threads);
  w.u8(static_cast<std::uint8_t>(cfg.scheduler));

  const flowctl::Config& f = cfg.flow;
  w.u8(static_cast<std::uint8_t>(f.scheme));
  w.i32(f.prepost);
  w.i32(f.ecm_threshold);
  w.i32(f.growth_step);
  w.b(f.exponential_growth);
  w.i32(f.max_prepost);
  w.b(f.allow_decay);
  w.i32(f.decay_idle_msgs);

  const ib::FabricConfig& fb = cfg.fabric;
  w.f64(fb.bandwidth_bps);
  w.i64(fb.wire_latency.count());
  w.i64(fb.switch_latency.count());
  w.u32(fb.mtu);
  w.u32(fb.data_header_bytes);
  w.u32(fb.ack_bytes);
  w.i64(fb.tx_wqe_process.count());
  w.i64(fb.per_packet_tx.count());
  w.i64(fb.rx_process.count());
  w.i64(fb.rnr_timeout.count());
  w.i32(fb.rnr_retry_limit);
  w.i64(fb.transport_timeout.count());
  w.i64(fb.transport_timeout_cap.count());
  w.i32(fb.transport_retry_limit);
  w.b(fb.e2e_credit_pacing);

  const ib::FaultConfig& ft = fb.fault;
  w.u64(ft.seed);
  w.f64(ft.loss_prob);
  w.f64(ft.corrupt_prob);
  w.u64(ft.flaps.size());
  for (const ib::LinkFlap& lf : ft.flaps) {
    w.i32(lf.node);
    w.i64(lf.down.count());
    w.i64(lf.up.count());
  }
  w.u64(ft.scripted.size());
  for (const ib::ScriptedFault& sf : ft.scripted) {
    w.i32(sf.src_node);
    w.i32(sf.dst_node);
    w.i32(sf.kind);
    w.u64(sf.skip);
    w.b(sf.corrupt);
  }

  const DeviceConfig& d = cfg.device;
  w.u32(d.buffer_size);
  w.u32(d.control_reserve);
  w.i64(d.send_overhead.count());
  w.i64(d.recv_post_overhead.count());
  w.i64(d.eager_handle_overhead.count());
  w.i64(d.rts_handle_overhead.count());
  w.i64(d.ctrl_handle_overhead.count());
  w.i64(d.ctrl_send_overhead.count());
  w.f64(d.copy_bandwidth_bps);
  w.i64(d.reg_base.count());
  w.i64(d.reg_per_page.count());
  w.u64(d.page_size);
  w.b(d.reg_cache);
  w.u64(d.reg_cache_capacity);
  w.b(d.convert_backlogged_to_rndv);
  w.i64(d.connect_setup.count());
  w.b(d.auto_reconnect);
  w.i64(d.reconnect_delay.count());
}

void decode_config(serial::BufReader& r, WorldConfig& cfg, bool& trace_armed,
                   std::uint64_t& trace_capacity) {
  cfg.num_ranks = r.i32("num_ranks");
  cfg.on_demand_connections = r.b("on_demand_connections");
  cfg.max_sim_time = sim::Duration(r.i64("max_sim_time"));
  trace_armed = r.b("trace_armed");
  trace_capacity = r.u64("trace_capacity");
  cfg.engine_threads = r.i32("engine_threads");
  cfg.scheduler = static_cast<sim::SchedKind>(r.u8("scheduler"));

  flowctl::Config& f = cfg.flow;
  f.scheme = static_cast<flowctl::Scheme>(r.u8("flow.scheme"));
  f.prepost = r.i32("flow.prepost");
  f.ecm_threshold = r.i32("flow.ecm_threshold");
  f.growth_step = r.i32("flow.growth_step");
  f.exponential_growth = r.b("flow.exponential_growth");
  f.max_prepost = r.i32("flow.max_prepost");
  f.allow_decay = r.b("flow.allow_decay");
  f.decay_idle_msgs = r.i32("flow.decay_idle_msgs");

  ib::FabricConfig& fb = cfg.fabric;
  fb.bandwidth_bps = r.f64("fabric.bandwidth_bps");
  fb.wire_latency = sim::Duration(r.i64("fabric.wire_latency"));
  fb.switch_latency = sim::Duration(r.i64("fabric.switch_latency"));
  fb.mtu = r.u32("fabric.mtu");
  fb.data_header_bytes = r.u32("fabric.data_header_bytes");
  fb.ack_bytes = r.u32("fabric.ack_bytes");
  fb.tx_wqe_process = sim::Duration(r.i64("fabric.tx_wqe_process"));
  fb.per_packet_tx = sim::Duration(r.i64("fabric.per_packet_tx"));
  fb.rx_process = sim::Duration(r.i64("fabric.rx_process"));
  fb.rnr_timeout = sim::Duration(r.i64("fabric.rnr_timeout"));
  fb.rnr_retry_limit = r.i32("fabric.rnr_retry_limit");
  fb.transport_timeout = sim::Duration(r.i64("fabric.transport_timeout"));
  fb.transport_timeout_cap =
      sim::Duration(r.i64("fabric.transport_timeout_cap"));
  fb.transport_retry_limit = r.i32("fabric.transport_retry_limit");
  fb.e2e_credit_pacing = r.b("fabric.e2e_credit_pacing");

  ib::FaultConfig& ft = fb.fault;
  ft.seed = r.u64("fault.seed");
  ft.loss_prob = r.f64("fault.loss_prob");
  ft.corrupt_prob = r.f64("fault.corrupt_prob");
  ft.flaps.clear();
  const std::uint64_t nflaps = r.u64("fault.flaps.count");
  for (std::uint64_t i = 0; i < nflaps; ++i) {
    ib::LinkFlap lf;
    lf.node = r.i32("flap.node");
    lf.down = sim::TimePoint(sim::Duration(r.i64("flap.down")));
    lf.up = sim::TimePoint(sim::Duration(r.i64("flap.up")));
    ft.flaps.push_back(lf);
  }
  ft.scripted.clear();
  const std::uint64_t nscripted = r.u64("fault.scripted.count");
  for (std::uint64_t i = 0; i < nscripted; ++i) {
    ib::ScriptedFault sf;
    sf.src_node = r.i32("scripted.src_node");
    sf.dst_node = r.i32("scripted.dst_node");
    sf.kind = r.i32("scripted.kind");
    sf.skip = r.u64("scripted.skip");
    sf.corrupt = r.b("scripted.corrupt");
    ft.scripted.push_back(sf);
  }

  DeviceConfig& d = cfg.device;
  d.buffer_size = r.u32("device.buffer_size");
  d.control_reserve = r.u32("device.control_reserve");
  d.send_overhead = sim::Duration(r.i64("device.send_overhead"));
  d.recv_post_overhead = sim::Duration(r.i64("device.recv_post_overhead"));
  d.eager_handle_overhead =
      sim::Duration(r.i64("device.eager_handle_overhead"));
  d.rts_handle_overhead = sim::Duration(r.i64("device.rts_handle_overhead"));
  d.ctrl_handle_overhead =
      sim::Duration(r.i64("device.ctrl_handle_overhead"));
  d.ctrl_send_overhead = sim::Duration(r.i64("device.ctrl_send_overhead"));
  d.copy_bandwidth_bps = r.f64("device.copy_bandwidth_bps");
  d.reg_base = sim::Duration(r.i64("device.reg_base"));
  d.reg_per_page = sim::Duration(r.i64("device.reg_per_page"));
  d.page_size = r.u64("device.page_size");
  d.reg_cache = r.b("device.reg_cache");
  d.reg_cache_capacity = r.u64("device.reg_cache_capacity");
  d.convert_backlogged_to_rndv = r.b("device.convert_backlogged_to_rndv");
  d.connect_setup = sim::Duration(r.i64("device.connect_setup"));
  d.auto_reconnect = r.b("device.auto_reconnect");
  d.reconnect_delay = sim::Duration(r.i64("device.reconnect_delay"));
}

// ---- state sections ---------------------------------------------------

serial::Section make_section(std::uint32_t tag, serial::BufWriter&& w) {
  return serial::Section{tag, w.take()};
}

/// The five live-state sections (engine/fabric/devices/metrics/trace),
/// serialized from the running world. Shared by capture() and the restore
/// audit, which is what makes the audit byte-exact by construction: both
/// sides go through the exact same serializers.
std::vector<serial::Section> capture_state_sections(World& world) {
  std::vector<serial::Section> out;

  serial::BufWriter eng;
  world.serialize_engine_state(eng);
  out.push_back(make_section(kSecEngine, std::move(eng)));

  serial::BufWriter fab;
  world.fabric().serialize_state(fab);
  out.push_back(make_section(kSecFabric, std::move(fab)));

  serial::BufWriter dev;
  dev.i32(world.num_ranks());
  for (Rank rk = 0; rk < world.num_ranks(); ++rk) {
    world.device(rk).serialize_state(dev);
  }
  out.push_back(make_section(kSecDevices, std::move(dev)));

  serial::BufWriter met;
  const obs::Snapshot snap = world.metrics().snapshot();
  met.u64(snap.values.size());
  for (const auto& [name, value] : snap.values) {
    met.str(name);
    met.f64(value);
  }
  out.push_back(make_section(kSecMetrics, std::move(met)));

  serial::BufWriter trc;
  world.serialize_trace_state(trc);
  out.push_back(make_section(kSecTrace, std::move(trc)));

  return out;
}

std::string checkpoint_file_path(const std::string& base, std::uint64_t k,
                                 bool multiple) {
  return multiple ? base + "." + std::to_string(k) : base;
}

/// Byte-compare the snapshot's state sections against the replayed world.
void audit(World& world, const WorldSnapshot& snap) {
  const std::vector<serial::Section> live = capture_state_sections(world);
  for (const serial::Section& want : snap.state) {
    const serial::Section* have = nullptr;
    for (const serial::Section& s : live) {
      if (s.tag == want.tag) {
        have = &s;
        break;
      }
    }
    if (have == nullptr) {
      throw serial::SnapshotError("restore audit: replayed world has no \"" +
                                  section_name(want.tag) + "\" section");
    }
    if (have->bytes == want.bytes) continue;
    std::size_t off = 0;
    const std::size_t n = std::min(have->bytes.size(), want.bytes.size());
    while (off < n && have->bytes[off] == want.bytes[off]) ++off;
    throw serial::SnapshotError(
        "restore audit: \"" + section_name(want.tag) +
        "\" section diverged from the checkpoint (snapshot " +
        std::to_string(want.bytes.size()) + " bytes, replay " +
        std::to_string(have->bytes.size()) + " bytes, first difference at " +
        "byte " + std::to_string(off) +
        ") — the replay is not bit-identical");
  }
}

}  // namespace

WorldSnapshot capture(World& world) {
  WorldSnapshot snap;
  snap.config = world.config();
  snap.trace_armed = world.recorder().enabled();
  snap.trace_capacity = world.recorder().capacity();
  util::require(world.workload().has_value(),
                "checkpoint capture requires a registered workload "
                "(World::set_workload)");
  snap.workload = *world.workload();
  snap.barrier = world.executed_events();
  snap.state = capture_state_sections(world);
  return snap;
}

std::vector<std::byte> encode(const WorldSnapshot& snap) {
  std::vector<serial::Section> sections;

  serial::BufWriter cfg;
  encode_config(cfg, snap.config, snap.trace_armed, snap.trace_capacity);
  sections.push_back(make_section(kSecConfig, std::move(cfg)));

  serial::BufWriter wk;
  wk.str(snap.workload.name);
  wk.u64(snap.workload.params.size());
  for (const auto& [key, value] : snap.workload.params) {
    wk.str(key);
    wk.i64(value);
  }
  sections.push_back(make_section(kSecWorkload, std::move(wk)));

  serial::BufWriter bar;
  bar.u64(snap.barrier);
  sections.push_back(make_section(kSecBarrier, std::move(bar)));

  for (const serial::Section& s : snap.state) sections.push_back(s);
  return serial::frame_sections(sections);
}

WorldSnapshot decode(const std::vector<std::byte>& file) {
  const std::vector<serial::Section> sections = serial::parse_sections(file);
  const auto need = [&sections](std::uint32_t tag) -> const serial::Section& {
    const serial::Section* s = serial::find_section(sections, tag);
    if (s == nullptr) {
      throw serial::SnapshotError("snapshot is missing its \"" +
                                  section_name(tag) + "\" section");
    }
    return *s;
  };

  WorldSnapshot snap;
  {
    const serial::Section& s = need(kSecConfig);
    serial::BufReader r(s.bytes);
    decode_config(r, snap.config, snap.trace_armed, snap.trace_capacity);
    // Replays never inherit the capturing process's export paths.
    snap.config.run = exp::RunConfig{};
  }
  {
    const serial::Section& s = need(kSecWorkload);
    serial::BufReader r(s.bytes);
    snap.workload.name = r.str("workload.name");
    const std::uint64_t n = r.u64("workload.params.count");
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string key = r.str("workload.param.key");
      const std::int64_t value = r.i64("workload.param.value");
      snap.workload.params[std::move(key)] = value;
    }
  }
  {
    const serial::Section& s = need(kSecBarrier);
    serial::BufReader r(s.bytes);
    snap.barrier = r.u64("barrier");
  }
  for (const serial::Section& s : sections) {
    if (s.tag == kSecEngine || s.tag == kSecFabric || s.tag == kSecDevices ||
        s.tag == kSecMetrics || s.tag == kSecTrace) {
      snap.state.push_back(s);
    }
  }
  if (snap.state.empty()) {
    throw serial::SnapshotError("snapshot carries no state sections");
  }
  return snap;
}

void write_snapshot(const WorldSnapshot& snap, const std::string& path) {
  serial::write_file_atomic(path, encode(snap));
}

WorldSnapshot read_snapshot(const std::string& path) {
  return decode(serial::read_file(path));
}

void arm_checkpoints(World& world, const std::string& path,
                     const std::vector<std::uint64_t>& events) {
  const bool multiple = events.size() > 1;
  for (const std::uint64_t k : events) {
    const std::string file = checkpoint_file_path(path, k, multiple);
    world.set_event_watchpoint(k, [&world, file] {
      write_snapshot(capture(world), file);
    });
  }
}

namespace {

RunResult run_world(World& world, const WorkloadSpec& spec,
                    const RestoreOptions& opts,
                    const WorldSnapshot* audit_against) {
  world.set_workload(spec);
  bool audited = false;
  if (audit_against != nullptr) {
    world.set_event_watchpoint(audit_against->barrier,
                               [&world, audit_against, &opts, &audited] {
      audit(world, *audit_against);
      audited = true;
      if (opts.tune.any()) {
        for (Rank rk = 0; rk < world.num_ranks(); ++rk) {
          world.device(rk).retune(opts.tune);
        }
      }
      if (!opts.checkpoint_path.empty()) {
        arm_checkpoints(world, opts.checkpoint_path, opts.checkpoint_events);
      }
    });
  } else if (!opts.checkpoint_path.empty()) {
    arm_checkpoints(world, opts.checkpoint_path, opts.checkpoint_events);
  }
  if (opts.kill_at > 0) {
    world.set_event_watchpoint(opts.kill_at, [&world] { world.abort_run(); });
  }

  RunResult out;
  out.elapsed = world.run_workload();
  if (audit_against != nullptr && !audited) {
    throw serial::SnapshotError(
        "restore replay finished after " +
        std::to_string(world.executed_events()) +
        " events without reaching the checkpoint barrier (" +
        std::to_string(audit_against->barrier) +
        ") — wrong workload or diverged run");
  }
  out.aborted = world.aborted();
  out.metrics = world.metrics().snapshot();
  out.stats = world.collect_stats();
  return out;
}

}  // namespace

RunResult restore_run(const WorldSnapshot& snap, const RestoreOptions& opts) {
  World world(snap.config);
  if (snap.trace_armed) {
    world.recorder().enable(snap.trace_capacity != 0
                                ? snap.trace_capacity
                                : obs::FlightRecorder::kDefaultCapacity);
  }
  return run_world(world, snap.workload, opts, &snap);
}

RunResult run_reference(const WorldConfig& cfg, const WorkloadSpec& spec,
                        const RestoreOptions& opts) {
  World world(cfg);
  return run_world(world, spec, opts, nullptr);
}

std::vector<ForkOutcome> fork_sweep(const std::string& path,
                                    const std::vector<ForkBranch>& branches,
                                    int jobs) {
  // One decode up front: each branch replays from its own private copy of
  // the parsed snapshot, so concurrent branches share no mutable state.
  const WorldSnapshot snap = read_snapshot(path);
  std::vector<std::function<ForkOutcome()>> work;
  work.reserve(branches.size());
  for (const ForkBranch& br : branches) {
    work.push_back([snap, br]() -> ForkOutcome {
      RestoreOptions opts;
      opts.tune = br.tune;
      const RunResult rr = restore_run(snap, opts);
      return ForkOutcome{br.label, rr.elapsed, rr.metrics};
    });
  }
  return exp::SweepRunner(jobs).run<ForkOutcome>(work);
}

}  // namespace mvflow::mpi::ckpt
