// MPI device configuration: buffer pool geometry, host-side overheads, and
// protocol policy knobs. Defaults follow the paper's implementation
// (2 KB pre-pinned buffers, pin-down cache for rendezvous).
#pragma once

#include <cstddef>
#include <cstdint>

#include "mpi/protocol.hpp"
#include "sim/time.hpp"

namespace mvflow::mpi {

struct DeviceConfig {
  /// Size of each pre-posted buffer (paper §5: 2 KBytes).
  std::uint32_t buffer_size = 2048;

  /// Physical buffers posted beyond the credited pool. The paper's design
  /// posts exactly the credited pool and lets optimistic control messages
  /// (CTS/FIN/ECM) ride on the RC RNR NAK retry as their backstop, so the
  /// default reserve is zero; raise it to absorb control bursts without
  /// hardware retries.
  std::uint32_t control_reserve = 0;

  // ---- host software costs (simulated time) ----
  // Receive-side handling is charged by message class: consuming an eager
  // data message (copy, matching, status fill) costs more than a
  // rendezvous start (matching only), which costs more than a bare control
  // message (header decode). The send post path is cheaper than eager
  // consumption — which is why a one-way eager flood slowly outruns its
  // receiver (the paper's hardware-scheme failure mode) while a rendezvous
  // control stream does not.
  sim::Duration send_overhead = sim::nanoseconds(500);        ///< Per send call.
  sim::Duration recv_post_overhead = sim::nanoseconds(150);   ///< Per irecv.
  sim::Duration eager_handle_overhead = sim::nanoseconds(550);///< Eager data.
  sim::Duration rts_handle_overhead = sim::nanoseconds(300);  ///< Rendezvous start.
  sim::Duration ctrl_handle_overhead = sim::nanoseconds(150); ///< CTS/FIN/ECM.
  /// Issuing a control message (CTS/FIN/ECM) costs host time too — this is
  /// the run-time overhead the paper attributes to explicit credit
  /// messages in LU's Figure 9 comparison.
  sim::Duration ctrl_send_overhead = sim::nanoseconds(350);
  double copy_bandwidth_bps = 2.4e9;  ///< Eager bounce-buffer memcpy rate.

  // ---- memory registration (buffer pinning) ----
  sim::Duration reg_base = sim::microseconds(10);
  sim::Duration reg_per_page = sim::nanoseconds(50);
  std::size_t page_size = 4096;
  /// Pin-down cache (Tezuka et al.; the paper's §3.1 cites it): repeat
  /// registrations of the same buffer are free until evicted.
  bool reg_cache = true;
  std::size_t reg_cache_capacity = 256;

  /// User-level schemes: a small message that finds no credits is switched
  /// to Rendezvous (paper §4.2: "when there are no credits, only
  /// Rendezvous protocol is used" — the handshake piggybacks credits back).
  bool convert_backlogged_to_rndv = true;

  /// On-demand connection setup handshake cost (three control messages
  /// through an out-of-band channel).
  sim::Duration connect_setup = sim::microseconds(30);

  /// Ride through connection failures: when a QP errors (e.g. transport
  /// retries exhausted during a link flap), rebuild the pair after
  /// reconnect_delay and replay unacknowledged wire traffic instead of
  /// failing every outstanding request on the endpoint.
  bool auto_reconnect = false;
  sim::Duration reconnect_delay = sim::microseconds(50);

  /// Test-only fault (chaos campaign --inject-bug): skew the credit count
  /// handed to ConnectionFlow::reconnect_reset by this many credits. A
  /// nonzero value plants exactly the class of reconnect-path accounting
  /// bug the auditor's conservation equation exists to catch. Never set
  /// outside negative tests.
  int debug_skew_reconnect_credit = 0;

  /// Largest payload that fits an eager message.
  std::uint32_t eager_max_payload() const { return buffer_size - kHeaderBytes; }
};

}  // namespace mvflow::mpi
