#include "mpi/device.hpp"

#include <algorithm>
#include <cstring>

#include "mpi/world.hpp"
#include "obs/prof.hpp"
#include "obs/recorder.hpp"
#include "util/check.hpp"
#include "util/serial.hpp"

namespace mvflow::mpi {

namespace {
constexpr std::size_t kBounceChunk = 64;  // bounce slots added per arena

/// Deterministic chain id of one wire message: the same value the offline
/// analysis derives from (src, dst, seq), so the engine's causal token can
/// be checked against the profile without any shared counter (counters
/// would diverge between serial and sharded execution orders).
std::uint64_t prof_chain_id(Rank src, Rank dst, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(src)) << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(dst)) << 32) |
         (seq & 0xffffffffull);
}
}

Device::Device(World& world, Rank me) : world_(world), me_(me) {
  audit_inline_ = world_.audit_inline();
  peer_index_.assign(static_cast<std::size_t>(world_.num_ranks()), -1);
  hca_ = &world_.fabric().hca(me);
  cq_ = hca_->create_cq();
  world_.metrics().add_source(
      "rank" + std::to_string(me_) + ".device.",
      [this](const obs::MetricsRegistry::EmitFn& e) { stats_.visit(e); });
}

Device::~Device() = default;

int Device::world_size() const { return world_.num_ranks(); }

sim::Engine& Device::engine() const noexcept { return world_.engine_for(me_); }

// ---------------------------------------------------------------- setup --

std::size_t Device::endpoint_state_bytes() noexcept { return sizeof(Endpoint); }

Device::Endpoint& Device::ep_at(Rank peer) const {
  Endpoint* ep = find_endpoint(peer);
  util::require(ep != nullptr, "no endpoint for peer");
  return *ep;
}

ib::QueuePair& Device::create_endpoint(Rank peer) {
  util::check(!has_endpoint(peer), "endpoint already exists");
  util::check(peer >= 0 && static_cast<std::size_t>(peer) < peer_index_.size(),
              "peer rank out of range");
  auto ep = std::make_unique<Endpoint>(world_.config().flow);
  ep->peer = peer;
  ep->qp = hca_->create_qp(cq_, cq_);
  ep->flow.set_counters_sink(&flow_agg_);
  ep->qp->set_stats_sink(&qp_agg_);
  ib::QueuePair& qp = *ep->qp;
  const std::uint32_t slot = static_cast<std::uint32_t>(conn_.size());
  conn_.push_back(std::move(ep));
  peer_index_[static_cast<std::size_t>(peer)] = static_cast<std::int32_t>(slot);
  peer_ranks_.insert(
      std::lower_bound(peer_ranks_.begin(), peer_ranks_.end(), peer), peer);
  // Completions resolve qpn → endpoint through the fabric QPN index in one
  // array read; the cookie is this device's connection slot.
  world_.fabric().set_qpn_cookie(qp.qpn(), slot);
  // Per-connection metrics; looked up by rank at snapshot time so the
  // sources survive a reconnect replacing the QP object.
  const std::string conn =
      "rank" + std::to_string(me_) + ".peer" + std::to_string(peer) + ".";
  world_.metrics().add_source(
      conn + "flow.", [this, peer](const obs::MetricsRegistry::EmitFn& e) {
        flow(peer).counters().visit(e);
      });
  world_.metrics().add_source(
      conn + "qp.", [this, peer](const obs::MetricsRegistry::EmitFn& e) {
        qp_stats(peer).visit(e);
      });
  return qp;
}

void Device::activate_endpoint(Rank peer) {
  Endpoint& ep = ep_at(peer);
  util::check(ep.qp->connected(), "activate before connect");
  util::check(!ep.active, "endpoint already active");
  ep.active = true;
  const int total = ep.flow.initial_posted() +
                    static_cast<int>(world_.config().device.control_reserve);
  grow_recv_slots(ep, total);
}

Device::Endpoint& Device::ensure_endpoint(Rank peer) {
  if (Endpoint* ep = find_endpoint(peer); ep != nullptr && ep->active) {
    return *ep;
  }
  util::check(world_.config().on_demand_connections,
              "endpoint missing outside on-demand mode");
  charge(world_.config().device.connect_setup);
  world_.wire_pair(me_, peer);
  return ep_at(peer);
}

void Device::grow_recv_slots(Endpoint& ep, int count) {
  util::require(count > 0, "grow by zero");
  const auto slot_size = world_.config().device.buffer_size;
  Arena arena;
  arena.storage = std::make_unique<std::vector<std::byte>>(
      static_cast<std::size_t>(count) * slot_size);
  arena.mr = hca_->register_memory(*arena.storage,
                                   ib::Access::local_read | ib::Access::local_write);
  std::byte* base = arena.storage->data();
  const std::uint32_t lkey = arena.mr.lkey;
  ep.recv_arenas.push_back(std::move(arena));
  for (int i = 0; i < count; ++i) {
    ep.slots.push_back(RecvSlot{base + static_cast<std::size_t>(i) * slot_size, lkey});
    ep.slot_retired.push_back(0);
    post_slot(ep, ep.slots.size() - 1);
  }
}

void Device::post_slot(Endpoint& ep, std::size_t slot_idx) {
  const RecvSlot& slot = ep.slots[slot_idx];
  ib::RecvWr wr;
  wr.wr_id = slot_idx;
  wr.local_addr = slot.addr;
  wr.length = world_.config().device.buffer_size;
  wr.lkey = slot.lkey;
  ep.qp->post_recv(wr);
}

// -------------------------------------------------------- bounce buffers --

std::size_t Device::acquire_bounce_slot() {
  if (bounce_free_.empty()) {
    const auto slot_size = world_.config().device.buffer_size;
    Arena arena;
    arena.storage =
        std::make_unique<std::vector<std::byte>>(kBounceChunk * slot_size);
    arena.mr = hca_->register_memory(
        *arena.storage, ib::Access::local_read | ib::Access::local_write);
    std::byte* base = arena.storage->data();
    const std::uint32_t lkey = arena.mr.lkey;
    bounce_arenas_.push_back(std::move(arena));
    for (std::size_t i = 0; i < kBounceChunk; ++i) {
      bounce_slots_.push_back(RecvSlot{base + i * slot_size, lkey});
      bounce_free_.push_back(bounce_slots_.size() - 1);
    }
  }
  const std::size_t idx = bounce_free_.back();
  bounce_free_.pop_back();
  return idx;
}

void Device::release_bounce_slot(std::size_t idx) { bounce_free_.push_back(idx); }
std::byte* Device::bounce_addr(std::size_t idx) { return bounce_slots_[idx].addr; }
std::uint32_t Device::bounce_lkey(std::size_t idx) { return bounce_slots_[idx].lkey; }

// ------------------------------------------------------------- pin cache --

ib::MemoryRegionHandle Device::pin(std::byte* addr, std::size_t len) {
  const auto& dcfg = world_.config().device;
  if (dcfg.reg_cache) {
    for (auto it = reg_cache_.begin(); it != reg_cache_.end(); ++it) {
      if (it->addr == addr && it->len >= len) {
        ++stats_.reg_cache_hits;
        reg_cache_.splice(reg_cache_.begin(), reg_cache_, it);  // LRU bump
        return reg_cache_.front().mr;
      }
    }
  }
  ++stats_.reg_cache_misses;
  const auto pages = (len + dcfg.page_size - 1) / dcfg.page_size;
  charge(dcfg.reg_base + dcfg.reg_per_page * static_cast<std::int64_t>(pages));
  const auto mr = hca_->register_memory(
      std::span<std::byte>(addr, len),
      ib::Access::local_read | ib::Access::local_write | ib::Access::remote_read |
          ib::Access::remote_write);
  if (!dcfg.reg_cache) return mr;
  reg_cache_.push_front(CacheEntry{addr, len, mr});
  if (reg_cache_.size() > dcfg.reg_cache_capacity) {
    hca_->deregister_memory(reg_cache_.back().mr);
    reg_cache_.pop_back();
  }
  return mr;
}

void Device::charge(sim::Duration d) {
  if (allow_charge_ && proc_ != nullptr && d > sim::Duration::zero())
    proc_->delay(d);
}

void Device::charge_copy(std::size_t bytes) {
  if (bytes == 0) return;
  charge(sim::transfer_time(bytes, world_.config().device.copy_bandwidth_bps));
}

// ------------------------------------------------------------ send paths --

RequestPtr Device::isend(Rank dst, Tag tag, std::span<const std::byte> data,
                         SendMode mode) {
  progress();  // every MPI entry point advances the engine (as MPICH does)
  const auto& dcfg = world_.config().device;
  charge(dcfg.send_overhead);
  Endpoint& ep = ensure_endpoint(dst);
  auto req = std::make_shared<Request>(RequestKind::send, next_rndv_id_++);
  if (ep.failed) {
    // The connection is dead: complete immediately with error status
    // instead of queueing data that can never leave.
    fail_request(req);
    return req;
  }
  stats_.payload_bytes_sent += data.size();

  if (mode == SendMode::synchronous) {
    // Always rendezvous: the CTS proves the receive matched, so the send
    // cannot complete before the receiver arrives.
    start_send_rndv(ep, tag, data, req);
    return req;
  }
  if (mode == SendMode::buffered) {
    util::require(data.size() <= dcfg.eager_max_payload(),
                  "buffered send exceeds the attached buffer size");
  }
  // standard / buffered / ready: eager whenever the payload fits.
  if (data.size() <= dcfg.eager_max_payload()) {
    ++stats_.eager_sent;
    charge_copy(data.size());
    WireHeader hdr;
    hdr.kind = MsgKind::eager_data;
    hdr.tag = tag;
    hdr.payload_bytes = static_cast<std::uint32_t>(data.size());
    send_credited(ep, hdr, data, req);
    return req;
  }
  start_send_rndv(ep, tag, data, req);
  return req;
}

void Device::start_send_rndv(Endpoint& ep, Tag tag,
                             std::span<const std::byte> data, RequestPtr req) {
  ++stats_.rndv_started;
  const std::uint64_t id = next_rndv_id_++;
  SendRndv ctx;
  ctx.dst = ep.peer;
  ctx.data = data;
  ctx.req = std::move(req);
  if (!data.empty())
    ctx.mr = pin(const_cast<std::byte*>(data.data()), data.size());
  send_rndv_.emplace(id, std::move(ctx));

  WireHeader hdr;
  hdr.kind = MsgKind::rndv_rts;
  hdr.tag = tag;
  hdr.payload_bytes = static_cast<std::uint32_t>(data.size());
  hdr.sreq = id;
  send_credited(ep, hdr, {}, nullptr);
}

void Device::send_credited(Endpoint& ep, WireHeader hdr,
                           std::span<const std::byte> payload,
                           RequestPtr eager_req) {
  util::check(is_credited(hdr.kind), "send_credited with control kind");
  if (ep.backlog.empty() && ep.flow.try_acquire_credit()) {
    if (auto& rec = obs::recorder(); rec.enabled()) {
      rec.record(engine().now(), obs::Ev::credit_consume, me_, ep.peer,
                 ep.qp->qpn(), 1, ep.flow.credits());
    }
    if (obs::profiler().enabled()) prof_note_credits(ep);
    post_wire(ep, hdr, payload);
    if (eager_req) eager_req->mark_complete();  // buffered-send semantics
    return;
  }
  ep.flow.note_backlogged();
  BacklogEntry entry;
  entry.hdr = hdr;
  entry.payload.assign(payload.begin(), payload.end());
  entry.eager_req = std::move(eager_req);
  const sim::TimePoint now = engine().now();
  entry.enqueued_at = now;
  if (obs::profiler().enabled()) entry.prof_zero_base = prof_zero_total(ep, now);
  ep.backlog.push_back(std::move(entry));
  if (auto& rec = obs::recorder(); rec.enabled()) {
    rec.record(now, obs::Ev::backlog_enter, me_, ep.peer, ep.qp->qpn(),
               ep.backlog.size(), ep.flow.credits());
  }
  drain_backlog(ep);  // under famine the head may leave as an optimistic RTS
}

void Device::drain_backlog(Endpoint& ep) {
  while (!ep.backlog.empty() && ep.flow.try_acquire_credit()) {
    BacklogEntry entry = std::move(ep.backlog.front());
    ep.backlog.pop_front();
    ep.flow.note_backlog_dispatched();
    if (auto& rec = obs::recorder(); rec.enabled()) {
      const auto now = engine().now();
      rec.record(now, obs::Ev::credit_consume, me_, ep.peer, ep.qp->qpn(), 1,
                 ep.flow.credits());
      rec.record(now, obs::Ev::backlog_dispatch, me_, ep.peer, ep.qp->qpn(),
                 ep.backlog.size(), ep.flow.credits());
      rec.note_backlog_residency(now - entry.enqueued_at);
    }
    if (obs::profiler().enabled()) {
      const auto now = engine().now();
      prof_note_credits(ep);
      ep.prof_next_post = entry.enqueued_at;
      ep.prof_next_disp = now;
      ep.prof_next_zero = prof_zero_total(ep, now) - entry.prof_zero_base;
    }
    entry.hdr.backlogged = 1;  // dynamic-scheme feedback bit
    post_wire(ep, entry.hdr, entry.payload);
    if (entry.eager_req) entry.eager_req->mark_complete();
  }
  // The optimistic famine RTS bypasses credits, so it may land with no
  // buffer posted and ride the RNR retry. With a tiny pool that race is
  // near-certain and each loss costs a full RNR timeout, so below a few
  // buffers we leave the head queued and rely on the (pool-capped) ECM
  // threshold to bring credits back instead.
  if (!ep.backlog.empty() && !ep.famine_rts_inflight &&
      world_.config().device.convert_backlogged_to_rndv &&
      ep.flow.config().prepost >= 4) {
    dispatch_famine_head(ep);
  }
}

void Device::dispatch_famine_head(Endpoint& ep) {
  // Paper §4.2: with zero credits only Rendezvous is used — its RTS goes
  // out optimistically (no credit; the RC RNR retry is the safety net, the
  // same argument the paper makes for explicit credit messages), and the
  // CTS piggybacks credits back, reviving the rest of the backlog.
  BacklogEntry entry = std::move(ep.backlog.front());
  ep.backlog.pop_front();
  ep.flow.note_backlog_dispatched();
  ep.flow.note_optimistic_rts();
  if (auto& rec = obs::recorder(); rec.enabled()) {
    const auto now = engine().now();
    rec.record(now, obs::Ev::backlog_dispatch, me_, ep.peer, ep.qp->qpn(),
               ep.backlog.size(), ep.flow.credits());
    rec.note_backlog_residency(now - entry.enqueued_at);
  }
  if (obs::profiler().enabled()) {
    const auto now = engine().now();
    ep.prof_next_post = entry.enqueued_at;
    ep.prof_next_disp = now;
    ep.prof_next_zero = prof_zero_total(ep, now) - entry.prof_zero_base;
  }
  ep.famine_rts_inflight = true;

  WireHeader rts;
  rts.kind = MsgKind::rndv_rts;
  rts.tag = entry.hdr.tag;
  rts.backlogged = 1;
  rts.optimistic = 1;

  const std::uint64_t id = next_rndv_id_++;
  SendRndv ctx;
  ctx.dst = ep.peer;
  if (entry.hdr.kind == MsgKind::eager_data) {
    // Convert the buffered eager payload into a rendezvous transfer.
    ++stats_.small_converted_to_rndv;
    ++stats_.rndv_started;
    ctx.owned_payload = std::move(entry.payload);
    ctx.req = std::move(entry.eager_req);
    rts.payload_bytes = static_cast<std::uint32_t>(ctx.owned_payload.size());
  } else {
    // Already an RTS: re-issue it optimistically under its original id.
    rts.payload_bytes = entry.hdr.payload_bytes;
    rts.sreq = entry.hdr.sreq;
    post_wire(ep, rts, {});
    return;
  }
  auto& stored = send_rndv_.emplace(id, std::move(ctx)).first->second;
  stored.data = std::span<const std::byte>(stored.owned_payload);
  if (!stored.data.empty())
    stored.mr = pin(stored.owned_payload.data(), stored.owned_payload.size());
  rts.sreq = id;
  post_wire(ep, rts, {});
}

void Device::send_ecm(Endpoint& ep) {
  WireHeader hdr;
  hdr.kind = MsgKind::credit;
  ep.flow.note_ecm_sent();
  if (auto& rec = obs::recorder(); rec.enabled()) {
    rec.record(engine().now(), obs::Ev::ecm_sent, me_, ep.peer,
               ep.qp->qpn(), ep.flow.pending_return_credits(), 0);
  }
  post_wire(ep, hdr, {});
}

void Device::post_wire(Endpoint& ep, WireHeader hdr,
                       std::span<const std::byte> payload) {
  util::check(payload.size() + kHeaderBytes <= world_.config().device.buffer_size,
              "wire message exceeds buffer size");
  hdr.src_rank = me_;
  hdr.seq = ep.tx_seq++;
  hdr.piggyback_credits = ep.flow.take_return_credits();
  if (hdr.kind == MsgKind::rndv_cts || hdr.kind == MsgKind::rndv_fin)
    ep.flow.note_control_sent();
  if (!is_credited(hdr.kind)) charge(world_.config().device.ctrl_send_overhead);

  const std::size_t slot = acquire_bounce_slot();
  std::byte* addr = bounce_addr(slot);
  write_header(addr, hdr);
  if (!payload.empty())
    std::memcpy(addr + kHeaderBytes, payload.data(), payload.size());

  const std::uint64_t txid = next_tx_id_++;
  ib::SendWr wr;
  wr.wr_id = txid;
  wr.opcode = ib::WrOpcode::send;
  wr.local_addr = addr;
  wr.length = kHeaderBytes + static_cast<std::uint32_t>(payload.size());
  wr.lkey = bounce_lkey(slot);
  TxCtx ctx;
  ctx.bounce_slot = slot;
  ctx.peer = ep.peer;
  ctx.wr = wr;
  tx_.emplace(txid, std::move(ctx));
  if (auto& prof = obs::profiler(); prof.enabled()) {
    obs::ProfRecord r;
    r.family = obs::ProfFamily::dev_send;
    r.msg_kind = static_cast<std::uint8_t>(hdr.kind);
    r.src = static_cast<std::int16_t>(me_);
    r.dst = static_cast<std::int16_t>(ep.peer);
    r.bytes = hdr.payload_bytes;
    r.seq = hdr.seq;
    r.aux = txid;
    const sim::TimePoint now = engine().now();
    r.t1 = now;
    if (ep.prof_next_post.count() >= 0) {
      // Dispatched from the backlog: the dispatcher left the original post
      // time, the residency endpoint and the zero-credit overlap behind.
      r.t0 = ep.prof_next_post;
      r.t2 = ep.prof_next_disp;
      r.zero_ns = ep.prof_next_zero;
      r.flags |= obs::kProfBacklogged;
      ep.prof_next_post = sim::TimePoint{-1};
      ep.prof_next_disp = sim::TimePoint{-1};
      ep.prof_next_zero = 0;
    } else {
      r.t0 = now;
    }
    if (is_credited(hdr.kind)) r.flags |= obs::kProfPayload;
    if (hdr.optimistic != 0) r.flags |= obs::kProfOptimistic;
    if (r.zero_ns > 0 && ep.prof_grant_seq != obs::kProfNoSeq) {
      r.grant_seq = ep.prof_grant_seq;
      if (ep.prof_grant_ecm) r.flags |= obs::kProfGrantEcm;
    }
    prof.record(r);
    // Every event this post cascades into — fabric hops, the receiver's
    // completion, the returning ACK — inherits this message's chain id
    // through the engine's causal token.
    const std::uint64_t prev = engine().cause();
    engine().set_cause(prof_chain_id(me_, ep.peer, hdr.seq));
    ep.qp->post_send(wr);
    engine().set_cause(prev);
    return;
  }
  ep.qp->post_send(wr);
}

// --------------------------------------------------------- receive paths --

RequestPtr Device::irecv(Rank src, Tag tag, std::span<std::byte> buffer) {
  progress();  // every MPI entry point advances the engine (as MPICH does)
  const auto& dcfg = world_.config().device;
  charge(dcfg.recv_post_overhead);
  auto req = std::make_shared<Request>(RequestKind::recv, next_rndv_id_++);

  if (src != kAnySource) {
    const Endpoint* sep = find_endpoint(src);
    if (sep != nullptr && sep->failed) {
      // Nothing can ever arrive from a dead connection: fail fast rather
      // than park a receive that would hang the rank.
      fail_request(req);
      return req;
    }
  }

  if (auto um = match_.match_posted(src, tag)) {
    if (!um->is_rndv) {
      util::require(um->eager_payload.size() <= buffer.size(),
                    "receive buffer too small (truncation)");
      charge_copy(um->eager_payload.size());
      if (!um->eager_payload.empty())  // zero-byte recv may carry a null buffer
        std::memcpy(buffer.data(), um->eager_payload.data(),
                    um->eager_payload.size());
      req->mark_complete(Status{um->src, um->tag,
                                static_cast<std::uint32_t>(um->eager_payload.size())});
      if (um->prof_seq != obs::kProfNoSeq) {
        prof_record_recv(um->src, um->prof_seq,
                         static_cast<std::uint8_t>(MsgKind::eager_data),
                         obs::kProfUnexpected,
                         static_cast<std::uint32_t>(um->eager_payload.size()),
                         um->prof_arrival, engine().now(), um->prof_cause);
      }
      return req;
    }
    if (um->prof_seq != obs::kProfNoSeq) {
      prof_record_recv(um->src, um->prof_seq,
                       static_cast<std::uint8_t>(MsgKind::rndv_rts),
                       obs::kProfUnexpected, um->rndv_bytes, um->prof_arrival,
                       engine().now(), um->prof_cause);
    }
    begin_recv_rndv(um->src, um->tag, um->rndv_sreq, um->rndv_bytes,
                    buffer.data(), req);
    return req;
  }

  PostedRecv pr;
  pr.src = src;
  pr.tag = tag;
  pr.buffer = buffer.data();
  pr.capacity = static_cast<std::uint32_t>(buffer.size());
  pr.req = req;
  match_.add_posted(std::move(pr));
  return req;
}

void Device::begin_recv_rndv(Rank src, Tag tag, std::uint64_t sreq,
                             std::uint32_t bytes, std::byte* buffer,
                             RequestPtr req) {
  const std::uint64_t id = next_rndv_id_++;
  RecvRndv ctx;
  ctx.src = src;
  ctx.tag = tag;
  ctx.buffer = buffer;
  ctx.bytes = bytes;
  ctx.req = std::move(req);
  if (bytes > 0) ctx.mr = pin(buffer, bytes);
  const auto rkey = ctx.mr.rkey;
  recv_rndv_.emplace(id, std::move(ctx));

  WireHeader hdr;
  hdr.kind = MsgKind::rndv_cts;
  hdr.sreq = sreq;
  hdr.rreq = id;
  hdr.raddr = reinterpret_cast<std::uint64_t>(buffer);
  hdr.rkey = rkey;
  post_wire(ensure_endpoint(src), hdr, {});
}

// ------------------------------------------------------------- progress --

void Device::progress() {
  while (auto wc = cq_->poll()) handle_completion(*wc);
}

void Device::handle_completion(const ib::Completion& wc) {
  // One array read resolves qpn → endpoint: the fabric QPN index entry
  // carries this device's connection slot as its cookie (set at endpoint
  // creation and after every reconnect).
  const ib::Fabric::QpnEntry* qe = world_.fabric().qpn_entry(wc.qp_num);
  if (qe == nullptr || qe->cookie == ib::Fabric::kNoCookie) {
    // Flushed CQE from a QP that recovery already destroyed and replaced.
    // Its tx entry (if any) stays: the replacement QP replays it.
    ++stats_.stale_completions;
    return;
  }
  Endpoint& ep = *conn_[qe->cookie];
  if (!wc.ok()) {
    handle_error_completion(ep, wc);
    return;
  }
  if (wc.opcode == ib::WcOpcode::recv) {
    handle_inbound(ep, wc.wr_id, wc.byte_len, wc.cause);
    return;
  }
  // Send-side completion: bounce release or rendezvous RDMA-write done.
  const auto it = tx_.find(wc.wr_id);
  util::check(it != tx_.end(), "completion for unknown tx");
  const TxCtx ctx = it->second;
  tx_.erase(it);
  if (!ctx.is_rdma_write) {
    release_bounce_slot(ctx.bounce_slot);
    return;
  }
  // RDMA write finished: tell the receiver (FIN) and complete the send.
  auto sit = send_rndv_.find(ctx.rndv_id);
  util::check(sit != send_rndv_.end(), "write completion for unknown rndv");
  SendRndv& sctx = sit->second;
  WireHeader fin;
  fin.kind = MsgKind::rndv_fin;
  fin.rreq = sctx.rreq;
  post_wire(ep_at(sctx.dst), fin, {});
  if (sctx.req) sctx.req->mark_complete();
  send_rndv_.erase(sit);
}

// -------------------------------------------------------- fault handling --

void Device::fail_request(const RequestPtr& req) {
  if (req && !req->complete()) {
    req->mark_error();
    ++stats_.requests_failed;
  }
}

void Device::handle_error_completion(Endpoint& ep, const ib::Completion& wc) {
  ++stats_.error_completions;
  const bool reconnect = world_.config().device.auto_reconnect;
  if (wc.opcode != ib::WcOpcode::recv) {
    const auto it = tx_.find(wc.wr_id);
    if (it != tx_.end() && !reconnect) {
      // Permanent failure: retire the message. Under auto_reconnect the
      // entry stays so finish_reconnect can replay the post verbatim.
      const TxCtx ctx = it->second;
      tx_.erase(it);
      if (!ctx.is_rdma_write) {
        release_bounce_slot(ctx.bounce_slot);
      } else if (auto sit = send_rndv_.find(ctx.rndv_id);
                 sit != send_rndv_.end()) {
        fail_request(sit->second.req);
        send_rndv_.erase(sit);
      }
    }
  }
  // Recv errors carry no state: the slots are reposted on reconnect or die
  // with the endpoint.
  if (ep.failed || ep.recovering) return;
  if (reconnect) {
    begin_recovery(ep);
  } else {
    fail_endpoint(ep);
  }
}

void Device::fail_endpoint(Endpoint& ep) {
  if (ep.failed) return;
  ep.failed = true;
  ep.famine_rts_inflight = false;
  ++stats_.endpoint_failures;
  // Every request bound to this connection completes now, with error
  // status — the rank keeps running instead of hanging in wait().
  for (auto it = send_rndv_.begin(); it != send_rndv_.end();) {
    if (it->second.dst == ep.peer) {
      fail_request(it->second.req);
      it = send_rndv_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = recv_rndv_.begin(); it != recv_rndv_.end();) {
    if (it->second.src == ep.peer) {
      fail_request(it->second.req);
      it = recv_rndv_.erase(it);
    } else {
      ++it;
    }
  }
  // Return the backlog slots in the flow-control books before dropping the
  // entries, so entered == dispatched + failed + depth stays balanced (the
  // auditor's backlog cross-check). Without this, a lost optimistic RTS that
  // exhausts transport retries left backlog_entered permanently ahead.
  ep.flow.note_backlog_failed(ep.backlog.size());
  for (BacklogEntry& entry : ep.backlog) fail_request(entry.eager_req);
  ep.backlog.clear();
  for (PostedRecv& pr : match_.extract_posted(ep.peer)) fail_request(pr.req);
}

void Device::begin_recovery(Endpoint& ep) {
  ep.recovering = true;
  const Rank peer = ep.peer;
  engine().schedule_after(
      world_.config().device.reconnect_delay,
      [this, peer] { world_.recover_pair(me_, peer); });
}

void Device::prepare_reconnect(Rank peer) {
  Endpoint& ep = ep_at(peer);
  ep.recovering = true;
  ep.famine_rts_inflight = false;
  // Drain the CQ first: messages the old QP delivered but the rank has not
  // polled yet must be applied before their seq numbers are replayed (the
  // sender may have consumed their ACKs and dropped them from tx_).
  // Engine-event context — host-time charging is illegal here.
  allow_charge_ = false;
  while (auto wc = cq_->poll()) handle_completion(*wc);
  allow_charge_ = true;
  // The retired QP's counters were already mirrored into qp_agg_ as they
  // happened, so accumulate only into the per-connection retired block;
  // the replacement QP re-attaches to the same aggregate sink.
  ep.retired_qp.accumulate(ep.qp->stats());
  ep.qp->modify_error();
  hca_->destroy_qp(ep.qp->qpn());  // unbinds the QPN index entry + cookie
  ep.qp = hca_->create_qp(cq_, cq_);
  ep.qp->set_stats_sink(&qp_agg_);
  world_.fabric().set_qpn_cookie(
      ep.qp->qpn(),
      static_cast<std::uint32_t>(peer_index_[static_cast<std::size_t>(peer)]));
}

void Device::finish_reconnect(Rank peer, int peer_posted) {
  Endpoint& ep = ep_at(peer);
  util::check(ep.qp->connected(), "finish_reconnect before connect");
  // Repost the receive pool on the fresh QP (the old QP flushed or lost
  // every posted buffer) — except slots retired by dynamic decay, which
  // must stay retired or the pool silently grows past current_posted.
  for (std::size_t i = 0; i < ep.slots.size(); ++i)
    if (!ep.slot_retired[i]) post_slot(ep, i);
  // Replay every wire message the old QP never acknowledged, in original
  // post order (tx ids are monotonic). Piggybacked credits are zeroed: the
  // credit exchange restarts from the reposted pool, and a stale grant
  // would double-count. Duplicates are filtered by the receiver's rx_seq.
  int credited_replays = 0;
  allow_charge_ = false;
  for (auto& [txid, ctx] : tx_) {
    if (ctx.peer != peer) continue;
    if (!ctx.is_rdma_write) {
      WireHeader hdr = read_header(bounce_addr(ctx.bounce_slot));
      if (is_credited(hdr.kind) && hdr.optimistic == 0) ++credited_replays;
      hdr.piggyback_credits = 0;
      write_header(bounce_addr(ctx.bounce_slot), hdr);
    }
    ep.qp->post_send(ctx.wr);
    ++stats_.replayed_wire_msgs;
  }
  // The peer reposted its whole pool, so our credits restart at its pool
  // size minus the credited messages we just put back in flight.
  ep.flow.reconnect_reset(peer_posted - credited_replays +
                              world_.config().device.debug_skew_reconnect_credit,
                          credited_replays);
  if (obs::profiler().enabled()) {
    // The credit exchange restarts from scratch: close any open zero-credit
    // episode, forget the stale grant, and reopen only if the reset pool is
    // already empty.
    const auto now = engine().now();
    if (ep.prof_zero_since.count() >= 0) {
      ep.prof_cum_zero += (now - ep.prof_zero_since).count();
      ep.prof_zero_since = sim::TimePoint{-1};
    }
    if (ep.flow.credits() == 0) ep.prof_zero_since = now;
    ep.prof_grant_seq = obs::kProfNoSeq;
    ep.prof_grant_ecm = false;
  }
  ep.failed = false;
  ep.recovering = false;
  ++stats_.reconnects;
  drain_backlog(ep);
  allow_charge_ = true;
}

void Device::handle_inbound(Endpoint& ep, std::uint64_t slot_idx,
                            std::uint32_t byte_len, std::uint64_t cause) {
  (void)byte_len;
  const auto& dcfg = world_.config().device;
  // Wire-arrival checkpoint, before any handling overhead is charged.
  const sim::TimePoint prof_arrival = engine().now();
  // Copy, not reference: growing the pool below reallocates ep.slots.
  const RecvSlot slot = ep.slots.at(slot_idx);
  const WireHeader hdr = read_header(slot.addr);
  switch (hdr.kind) {
    case MsgKind::eager_data: charge(dcfg.eager_handle_overhead); break;
    case MsgKind::rndv_rts: charge(dcfg.rts_handle_overhead); break;
    default: charge(dcfg.ctrl_handle_overhead); break;
  }

  if (hdr.seq != ep.rx_seq) {
    // Reconnect replays the sender's unacked tail, so older sequence
    // numbers reappear; apply each exactly once. A *gap* would mean a
    // message was truly lost — the reliability layer must never allow it.
    util::check(hdr.seq < ep.rx_seq, "wire sequence gap (message lost)");
    ++stats_.duplicate_wire_msgs;
    // The buffer still goes back to the pool, and a credited duplicate
    // still returns a credit: the sender counted it against the reposted
    // pool when it replayed.
    post_slot(ep, slot_idx);
    if (is_credited(hdr.kind) && hdr.optimistic == 0 &&
        ep.flow.on_credited_repost()) {
      send_ecm(ep);
    }
    return;
  }
  ++ep.rx_seq;

  if (hdr.piggyback_credits > 0) {
    ep.flow.add_credits(hdr.piggyback_credits);
    if (auto& rec = obs::recorder(); rec.enabled()) {
      rec.record(engine().now(), obs::Ev::credit_grant, me_, ep.peer,
                 ep.qp->qpn(), static_cast<std::uint64_t>(hdr.piggyback_credits),
                 ep.flow.credits());
    }
    if (obs::profiler().enabled()) prof_note_grant(ep, hdr);
  }
  if (hdr.backlogged != 0) {
    const int extra = ep.flow.on_backlogged_flag();
    if (extra > 0) grow_recv_slots(ep, extra);
  }

  // Control messages have no MPI-level receive: their lifecycle completes
  // at arrival, so the receiver-side record closes with matched == arrival.
  if (!is_credited(hdr.kind)) {
    prof_record_recv(ep.peer, hdr.seq, static_cast<std::uint8_t>(hdr.kind), 0,
                     0, prof_arrival, prof_arrival, cause);
  }

  switch (hdr.kind) {
    case MsgKind::eager_data:
      deliver_eager(ep, hdr, slot.addr + kHeaderBytes, prof_arrival, cause);
      break;
    case MsgKind::rndv_rts: handle_rts(ep, hdr, prof_arrival, cause); break;
    case MsgKind::rndv_cts: handle_cts(ep, hdr); break;
    case MsgKind::rndv_fin: handle_fin(ep, hdr); break;
    case MsgKind::credit: break;  // piggyback field already consumed
  }

  // Re-post the buffer immediately (paper §3.2), return the credit, and
  // fire an ECM if the accumulation threshold is reached. Under dynamic
  // decay the buffer may instead be retired, shrinking the pool.
  if (is_credited(hdr.kind) && hdr.optimistic == 0) {
    if (!ep.flow.take_decay_slot()) {
      post_slot(ep, slot_idx);
      if (ep.flow.on_credited_repost()) send_ecm(ep);
    } else {
      // Dynamic decay retires this buffer: it never goes back on the QP,
      // not even across a reconnect.
      ep.slot_retired[slot_idx] = 1;
      ++ep.retired_count;
    }
  } else {
    post_slot(ep, slot_idx);
  }
  stats_.max_unexpected = std::max(stats_.max_unexpected, match_.unexpected_count());
  drain_backlog(ep);
  // Serial inline audit (MVFLOW_AUDIT=1): check both directions of this
  // pair after every delivered message — violations surface at the exact
  // event that introduced them. Sharded worlds sweep at barriers instead.
  if (audit_inline_) world_.audit_pair(me_, ep.peer);
}

void Device::deliver_eager(Endpoint& ep, const WireHeader& hdr,
                           const std::byte* payload, sim::TimePoint arrival,
                           std::uint64_t cause) {
  charge_copy(hdr.payload_bytes);
  if (auto pr = match_.match_inbound(ep.peer, hdr.tag)) {
    util::require(hdr.payload_bytes <= pr->capacity,
                  "receive buffer too small (truncation)");
    if (hdr.payload_bytes > 0)  // zero-byte recv may carry a null buffer
      std::memcpy(pr->buffer, payload, hdr.payload_bytes);
    pr->req->mark_complete(Status{ep.peer, hdr.tag, hdr.payload_bytes});
    prof_record_recv(ep.peer, hdr.seq, static_cast<std::uint8_t>(hdr.kind), 0,
                     hdr.payload_bytes, arrival, engine().now(), cause);
    return;
  }
  UnexpectedMsg um;
  um.src = ep.peer;
  um.tag = hdr.tag;
  um.eager_payload.assign(payload, payload + hdr.payload_bytes);
  if (obs::profiler().enabled()) {
    um.prof_arrival = arrival;
    um.prof_seq = hdr.seq;
    um.prof_cause = cause;
  }
  match_.add_unexpected(std::move(um));
}

void Device::handle_rts(Endpoint& ep, const WireHeader& hdr,
                        sim::TimePoint arrival, std::uint64_t cause) {
  if (auto pr = match_.match_inbound(ep.peer, hdr.tag)) {
    util::require(hdr.payload_bytes <= pr->capacity,
                  "receive buffer too small (truncation)");
    prof_record_recv(ep.peer, hdr.seq, static_cast<std::uint8_t>(hdr.kind), 0,
                     hdr.payload_bytes, arrival, engine().now(), cause);
    begin_recv_rndv(ep.peer, hdr.tag, hdr.sreq, hdr.payload_bytes, pr->buffer,
                    pr->req);
    return;
  }
  UnexpectedMsg um;
  um.src = ep.peer;
  um.tag = hdr.tag;
  um.is_rndv = true;
  um.rndv_bytes = hdr.payload_bytes;
  um.rndv_sreq = hdr.sreq;
  if (obs::profiler().enabled()) {
    um.prof_arrival = arrival;
    um.prof_seq = hdr.seq;
    um.prof_cause = cause;
  }
  match_.add_unexpected(std::move(um));
}

void Device::handle_cts(Endpoint& ep, const WireHeader& hdr) {
  ep.famine_rts_inflight = false;  // the handshake reached the peer
  auto it = send_rndv_.find(hdr.sreq);
  util::check(it != send_rndv_.end(), "CTS for unknown rendezvous");
  SendRndv& ctx = it->second;
  ctx.rreq = hdr.rreq;
  if (ctx.data.empty()) {
    // Zero-byte rendezvous: nothing to write, go straight to FIN.
    WireHeader fin;
    fin.kind = MsgKind::rndv_fin;
    fin.rreq = hdr.rreq;
    post_wire(ep, fin, {});
    if (ctx.req) ctx.req->mark_complete();
    send_rndv_.erase(it);
    return;
  }
  const std::uint64_t txid = next_tx_id_++;
  ib::SendWr wr;
  wr.wr_id = txid;
  wr.opcode = ib::WrOpcode::rdma_write;
  wr.local_addr = ctx.data.data();
  wr.length = static_cast<std::uint32_t>(ctx.data.size());
  wr.lkey = ctx.mr.lkey;
  wr.remote_addr = reinterpret_cast<std::byte*>(hdr.raddr);
  wr.rkey = hdr.rkey;
  TxCtx tctx;
  tctx.is_rdma_write = true;
  tctx.rndv_id = hdr.sreq;
  tctx.peer = ep.peer;
  tctx.wr = wr;
  tx_.emplace(txid, std::move(tctx));
  ep.qp->post_send(wr);
}

void Device::handle_fin(Endpoint& ep, const WireHeader& hdr) {
  (void)ep;
  auto it = recv_rndv_.find(hdr.rreq);
  util::check(it != recv_rndv_.end(), "FIN for unknown rendezvous");
  RecvRndv& ctx = it->second;
  ctx.req->mark_complete(Status{ctx.src, ctx.tag, ctx.bytes});
  recv_rndv_.erase(it);
}

// ------------------------------------------------------------- blocking --

void Device::wait(const RequestPtr& req) {
  util::require(req != nullptr, "wait on null request");
  // Handle one completion at a time and re-check: a steady inbound stream
  // must not keep wait() inside the progress engine past the completion of
  // `req` (MPI_Wait returns as soon as its request is done; later traffic
  // is handled by later MPI calls).
  while (!req->complete()) {
    if (auto wc = cq_->poll()) {
      handle_completion(*wc);
      continue;
    }
    cq_->nonempty().wait(*proc_);
  }
}

bool Device::test(const RequestPtr& req) {
  util::require(req != nullptr, "test on null request");
  progress();
  return req->complete();
}

// ------------------------------------------------------- profiler hooks --

std::int64_t Device::prof_zero_total(const Endpoint& ep, sim::TimePoint now) {
  std::int64_t total = ep.prof_cum_zero;
  if (ep.prof_zero_since.count() >= 0)
    total += (now - ep.prof_zero_since).count();
  return total;
}

void Device::prof_note_credits(Endpoint& ep) {
  // Credits only leave through try_acquire_credit, so checking after each
  // successful acquire catches every pool-emptying transition.
  if (ep.flow.credits() == 0 && ep.prof_zero_since.count() < 0)
    ep.prof_zero_since = engine().now();
}

void Device::prof_note_grant(Endpoint& ep, const WireHeader& hdr) {
  if (ep.prof_zero_since.count() < 0 || ep.flow.credits() <= 0) return;
  // This grant ends the famine: close the episode and remember the grant's
  // identity — it is the causal predecessor of whichever blocked message
  // dispatches next, and the ECM-vs-piggyback distinction decides whether
  // that message's stall is attributed as an explicit-credit round trip.
  ep.prof_cum_zero += (engine().now() - ep.prof_zero_since).count();
  ep.prof_zero_since = sim::TimePoint{-1};
  ep.prof_grant_seq = hdr.seq;
  ep.prof_grant_ecm = hdr.kind == MsgKind::credit;
}

void Device::prof_record_recv(Rank src, std::uint64_t seq, std::uint8_t kind,
                              std::uint8_t flags, std::uint32_t bytes,
                              sim::TimePoint arrival, sim::TimePoint matched,
                              std::uint64_t cause) {
  auto& prof = obs::profiler();
  if (!prof.enabled()) return;
  obs::ProfRecord r;
  r.family = obs::ProfFamily::dev_recv;
  r.msg_kind = kind;
  r.flags = flags;
  r.src = static_cast<std::int16_t>(src);
  r.dst = static_cast<std::int16_t>(me_);
  r.bytes = bytes;
  r.seq = seq;
  r.aux = cause;  // the sender's chain id, carried by the causal token
  r.t0 = arrival;
  r.t1 = matched;
  prof.record(r);
}

// --------------------------------------------------------- introspection --

const flowctl::ConnectionFlow& Device::flow(Rank peer) const {
  return ep_at(peer).flow;
}

flowctl::ConnectionFlow& Device::debug_flow(Rank peer) {
  return ep_at(peer).flow;
}

Device::EndpointProbe Device::probe(Rank peer) const {
  const Endpoint& ep = ep_at(peer);
  EndpointProbe p;
  p.active = ep.active;
  p.failed = ep.failed;
  p.recovering = ep.recovering;
  p.famine_rts_inflight = ep.famine_rts_inflight;
  p.backlog_depth = ep.backlog.size();
  p.tx_seq = ep.tx_seq;
  p.rx_seq = ep.rx_seq;
  p.slots = ep.slots.size();
  p.retired_slots = ep.retired_count;
  p.control_reserve = world_.config().device.control_reserve;
  if (ep.qp) {
    const ib::QpStats& qs = ep.qp->stats();
    p.wqes_posted = qs.recv_wqes_posted;
    p.wqes_completed = qs.recv_wqes_completed;
    p.wqes_flushed = qs.recv_wqes_flushed;
    p.recvq_depth = ep.qp->posted_recv_count();
    p.assembly_holds_wqe = ep.qp->rx_assembly_holds_wqe();
    p.retx_armed = ep.qp->retx_timer_armed();
    p.rnr_waiting = ep.qp->rnr_waiting();
  }
  return p;
}

ib::QpStats Device::qp_stats(Rank peer) const {
  const Endpoint& ep = ep_at(peer);
  ib::QpStats out = ep.retired_qp;
  out.accumulate(ep.qp->stats());
  out.last_advertised_credits = ep.qp->stats().last_advertised_credits;
  return out;
}

std::vector<Rank> Device::peers() const { return peer_ranks_; }

void Device::retune(const flowctl::TuneDelta& d) {
  for (const std::unique_ptr<Endpoint>& ep : conn_) ep->flow.retune(d);
}

void Device::serialize_state(util::serial::BufWriter& w) const {
  w.i32(me_);
  w.u64(stats_.eager_sent);
  w.u64(stats_.rndv_started);
  w.u64(stats_.small_converted_to_rndv);
  w.u64(stats_.payload_bytes_sent);
  w.u64(stats_.reg_cache_hits);
  w.u64(stats_.reg_cache_misses);
  w.u64(stats_.max_unexpected);
  w.u64(stats_.error_completions);
  w.u64(stats_.stale_completions);
  w.u64(stats_.duplicate_wire_msgs);
  w.u64(stats_.replayed_wire_msgs);
  w.u64(stats_.endpoint_failures);
  w.u64(stats_.reconnects);
  w.u64(stats_.requests_failed);

  match_.serialize_state(w);

  // Endpoints in rank order (peer_ranks_ is sorted), matching the byte
  // layout the old std::map iteration produced.
  w.u64(peer_ranks_.size());
  for (const Rank peer : peer_ranks_) {
    const Endpoint* ep = find_endpoint(peer);
    w.i32(peer);
    w.b(ep->active);
    w.b(ep->famine_rts_inflight);
    w.b(ep->failed);
    w.b(ep->recovering);
    w.u64(ep->tx_seq);
    w.u64(ep->rx_seq);
    w.u64(ep->slots.size());
    w.u64(ep->backlog.size());
    for (const BacklogEntry& be : ep->backlog) {
      w.u8(static_cast<std::uint8_t>(be.hdr.kind));
      w.u8(be.hdr.backlogged);
      w.u8(be.hdr.optimistic);
      w.i32(be.hdr.src_rank);
      w.i32(be.hdr.tag);
      w.u32(be.hdr.payload_bytes);
      w.u64(be.hdr.sreq);
      w.u64(be.payload.size());
      w.i64(be.enqueued_at.count());
    }
    ep->flow.serialize_state(w);
    if (ep->qp) {
      w.b(true);
      ep->qp->serialize_state(w);
    } else {
      w.b(false);
    }
    // Stats carried over from QPs retired by recovery.
    w.u64(ep->retired_qp.messages_sent);
    w.u64(ep->retired_qp.retransmitted_messages);
    w.u64(ep->retired_qp.rnr_naks_received);
    w.u64(ep->retired_qp.packets_dropped);
  }

  // Outstanding-operation tables: the keys (and allocators) pin the exact
  // identity of every in-flight op.
  w.u64(next_tx_id_);
  w.u64(tx_.size());
  for (const auto& [id, ctx] : tx_) {
    w.u64(id);
    w.b(ctx.is_rdma_write);
    w.i32(ctx.peer);
  }
  w.u64(next_rndv_id_);
  w.u64(send_rndv_.size());
  for (const auto& [id, sr] : send_rndv_) {
    w.u64(id);
    w.i32(sr.dst);
    w.u64(sr.data.size());
    w.u64(sr.rreq);
  }
  w.u64(recv_rndv_.size());
  for (const auto& [id, rr] : recv_rndv_) {
    w.u64(id);
    w.i32(rr.src);
    w.i32(rr.tag);
    w.u32(rr.bytes);
  }
  w.u64(reg_cache_.size());
}

}  // namespace mvflow::mpi
