#include "mpi/communicator.hpp"

#include "mpi/world.hpp"
#include "util/check.hpp"

namespace mvflow::mpi {

Communicator::Communicator(World& world, Device& dev, sim::Process& proc)
    : world_(world), dev_(dev), proc_(proc), size_(world.num_ranks()) {}

RequestPtr Communicator::isend(std::span<const std::byte> data, Rank dst,
                               Tag tag, SendMode mode) {
  util::require(dst >= 0 && dst < size_, "invalid destination rank");
  return dev_.isend(dst, tag, data, mode);
}

RequestPtr Communicator::irecv(std::span<std::byte> buffer, Rank src, Tag tag) {
  util::require(src == kAnySource || (src >= 0 && src < size_),
                "invalid source rank");
  return dev_.irecv(src, tag, buffer);
}

void Communicator::send(std::span<const std::byte> data, Rank dst, Tag tag) {
  wait(isend(data, dst, tag));
}

void Communicator::ssend(std::span<const std::byte> data, Rank dst, Tag tag) {
  wait(isend(data, dst, tag, SendMode::synchronous));
}

void Communicator::bsend(std::span<const std::byte> data, Rank dst, Tag tag) {
  wait(isend(data, dst, tag, SendMode::buffered));
}

void Communicator::rsend(std::span<const std::byte> data, Rank dst, Tag tag) {
  wait(isend(data, dst, tag, SendMode::ready));
}

Status Communicator::recv(std::span<std::byte> buffer, Rank src, Tag tag) {
  const auto req = irecv(buffer, src, tag);
  wait(req);
  return req->status();
}

void Communicator::wait(const RequestPtr& req) { dev_.wait(req); }

bool Communicator::test(const RequestPtr& req) { return dev_.test(req); }

void Communicator::wait_all(std::span<const RequestPtr> reqs) {
  for (const auto& r : reqs) dev_.wait(r);
}

Status Communicator::sendrecv(std::span<const std::byte> senddata, Rank dst,
                              Tag sendtag, std::span<std::byte> recvbuf,
                              Rank src, Tag recvtag) {
  const auto rreq = irecv(recvbuf, src, recvtag);
  const auto sreq = isend(senddata, dst, sendtag);
  wait(sreq);
  wait(rreq);
  return rreq->status();
}

sim::TimePoint Communicator::now() const { return dev_.engine().now(); }

}  // namespace mvflow::mpi
