// Basic MPI-facing types for the mvflow mini-MPI.
#pragma once

#include <cstdint>

namespace mvflow::mpi {

using Rank = int;
using Tag = int;

/// Wildcards (match MPI semantics: any user tag must be >= 0; tags below
/// kMinInternalTag are reserved for collectives).
inline constexpr Rank kAnySource = -1;
inline constexpr Tag kAnyTag = -1;
inline constexpr Tag kMinUserTag = 0;
inline constexpr Tag kFirstInternalTag = -10;  // internal tags go downward

/// MPI's four point-to-point communication modes (the paper's §3.1).
/// Standard picks Eager/Rendezvous by size; Synchronous always handshakes
/// (completes only once the receive matched); Buffered always copies
/// through the eager path (must fit a pre-pinned buffer); Ready asserts
/// the receive is already posted and pushes eagerly when it fits.
enum class SendMode : std::uint8_t { standard, synchronous, buffered, ready };

/// Completion information for a receive.
struct Status {
  Rank source = kAnySource;
  Tag tag = kAnyTag;
  std::uint32_t bytes = 0;
};

}  // namespace mvflow::mpi
