#include "obs/prof.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <tuple>

#include "obs/json.hpp"
#include "obs/recorder.hpp"

namespace mvflow::obs {

void Profiler::enable() {
  enabled_ = true;
  records_.clear();
  records_.reserve(1u << 12);
}

void Profiler::record(const ProfRecord& r) { records_.push_back(r); }

void Profiler::absorb(const Profiler& other) {
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
}

std::string_view to_string(Segment s) {
  switch (s) {
    case Segment::credit_stall: return "credit_stall";
    case Segment::ecm_rtt: return "ecm_rtt";
    case Segment::backlog: return "backlog";
    case Segment::retransmit: return "retransmit";
    case Segment::wire: return "wire";
    case Segment::match_wait: return "match_wait";
  }
  return "?";
}

// ------------------------------------------------------- offline analysis --

namespace {

using ConnKey = std::tuple<std::int16_t, std::int16_t, std::uint64_t>;

ConnKey conn_key(const ProfRecord& r) { return {r.src, r.dst, r.seq}; }

std::int64_t ns(sim::TimePoint t) { return t.count(); }

}  // namespace

ProfileAnalysis analyze(const std::vector<ProfRecord>& records) {
  ProfileAnalysis out;

  // Index the three families. QP recovery can replay a wire message through
  // a fresh QP (same device tx id, same sequence number); emplace keeps the
  // first record, which carries the original protocol history.
  std::map<ConnKey, const ProfRecord*> sends;
  std::map<ConnKey, const ProfRecord*> recvs;
  std::map<std::pair<std::int16_t, std::uint64_t>, const ProfRecord*> qps;
  for (const ProfRecord& r : records) {
    switch (r.family) {
      case ProfFamily::dev_send:
        sends.emplace(conn_key(r), &r);
        if ((r.flags & kProfBacklogged) != 0) {
          out.raw_backlog_wait_ns += ns(r.t2) - ns(r.t0);
          ++out.raw_backlog_count;
        }
        break;
      case ProfFamily::qp_send:
        if (qps.emplace(std::make_pair(r.src, r.aux), &r).second) {
          out.raw_post_to_wire_ns += ns(r.t1) - ns(r.t0);
          out.raw_wire_to_ack_ns += ns(r.t3) - ns(r.t1);
          ++out.raw_qp_count;
        }
        break;
      case ProfFamily::dev_recv:
        recvs.emplace(conn_key(r), &r);
        break;
    }
  }

  // Join each dev_send with its QP lifecycle and its receiver-side record;
  // the map iteration order is the canonical (src, dst, seq) order.
  std::map<std::pair<std::int16_t, std::int16_t>, SegmentTotals> conns;
  for (const auto& [key, s] : sends) {
    const auto qit = qps.find({s->src, s->aux});
    const auto rit = recvs.find(key);
    if (qit == qps.end() || rit == recvs.end()) {
      ++out.incomplete;
      continue;
    }
    const ProfRecord& q = *qit->second;
    const ProfRecord& rv = *rit->second;

    MessageProfile m;
    m.src = s->src;
    m.dst = s->dst;
    m.seq = s->seq;
    m.grant_seq = s->grant_seq;
    m.msg_kind = s->msg_kind;
    m.flags = s->flags;
    m.bytes = s->bytes;
    m.n_retx = q.n_retx;
    m.t_post = ns(s->t0);
    m.t_disp = ns(s->t1);
    m.t_first_tx = ns(q.t1);
    m.t_last_tx = ns(q.t2);
    m.t_acked = ns(q.t3);
    m.t_recv = ns(rv.t0);
    m.t_matched = ns(rv.t1);
    m.flags |= rv.flags & kProfUnexpected;

    // The wait before dispatch splits three ways. `zero` is the online
    // zero-credit overlap of [t_post, t_disp]; the slice of it during which
    // the releasing ECM was actually in flight is the ECM round-trip, the
    // rest is plain credit stall, and the credits-available remainder of
    // the wait is head-of-line backlog queueing.
    const std::int64_t wait = m.t_disp - m.t_post;
    const std::int64_t zero = std::clamp<std::int64_t>(s->zero_ns, 0, wait);
    std::int64_t ecm = 0;
    if (zero > 0 && (s->flags & kProfGrantEcm) != 0 &&
        s->grant_seq != kProfNoSeq) {
      const ConnKey gkey{s->dst, s->src, s->grant_seq};
      const auto gs = sends.find(gkey);
      const auto gr = recvs.find(gkey);
      if (gs != sends.end() && gr != recvs.end()) {
        const std::int64_t lo = std::max(m.t_post, ns(gs->second->t1));
        const std::int64_t hi = std::min(m.t_disp, ns(gr->second->t0));
        ecm = std::clamp<std::int64_t>(hi - lo, 0, zero);
      }
    }
    m.seg[static_cast<std::size_t>(Segment::credit_stall)] = zero - ecm;
    m.seg[static_cast<std::size_t>(Segment::ecm_rtt)] = ecm;
    m.seg[static_cast<std::size_t>(Segment::backlog)] = wait - zero;
    m.seg[static_cast<std::size_t>(Segment::retransmit)] =
        m.t_last_tx - m.t_first_tx;
    m.seg[static_cast<std::size_t>(Segment::wire)] =
        (m.t_first_tx - m.t_disp) + (m.t_recv - m.t_last_tx);
    m.seg[static_cast<std::size_t>(Segment::match_wait)] =
        m.t_matched - m.t_recv;

    out.exact = out.exact && m.attributed() == m.e2e();
    if ((m.flags & kProfPayload) != 0) {
      out.payload.add(m);
      conns[{m.src, m.dst}].add(m);
    } else {
      out.control.add(m);
    }
    out.messages.push_back(m);
  }

  out.connections.reserve(conns.size());
  for (const auto& [key, totals] : conns) {
    ConnectionBlame b;
    b.src = key.first;
    b.dst = key.second;
    b.totals = totals;
    out.connections.push_back(b);
  }

  // Critical path: start at the last-completing payload message and walk
  // the grant chain backwards — each hop is the message whose arrival
  // released the blocked sender. Root first, last completion last.
  const MessageProfile* last = nullptr;
  for (const MessageProfile& m : out.messages) {
    if ((m.flags & kProfPayload) == 0) continue;
    if (last == nullptr || m.t_matched > last->t_matched) last = &m;
  }
  std::vector<const MessageProfile*> chain;
  for (const MessageProfile* cur = last;
       cur != nullptr && chain.size() < 64;) {
    chain.push_back(cur);
    const MessageProfile* pred = nullptr;
    const std::int64_t stall =
        cur->seg[static_cast<std::size_t>(Segment::credit_stall)] +
        cur->seg[static_cast<std::size_t>(Segment::ecm_rtt)];
    if (stall > 0 && cur->grant_seq != kProfNoSeq) {
      // The canonical message vector is sorted by (src, dst, seq).
      MessageProfile probe;
      probe.src = cur->dst;
      probe.dst = cur->src;
      probe.seq = cur->grant_seq;
      const auto it = std::lower_bound(
          out.messages.begin(), out.messages.end(), probe,
          [](const MessageProfile& a, const MessageProfile& b) {
            return std::tie(a.src, a.dst, a.seq) <
                   std::tie(b.src, b.dst, b.seq);
          });
      if (it != out.messages.end() && it->src == probe.src &&
          it->dst == probe.dst && it->seq == probe.seq) {
        pred = &*it;
      }
    }
    cur = pred;
  }
  std::reverse(chain.begin(), chain.end());
  for (const MessageProfile* m : chain) {
    for (std::size_t i = 0; i < kSegmentCount; ++i) {
      if (m->seg[i] == 0) continue;
      CriticalStep step;
      step.src = m->src;
      step.dst = m->dst;
      step.seq = m->seq;
      step.segment = static_cast<Segment>(i);
      step.ns = m->seg[i];
      out.critical_path.push_back(step);
    }
  }
  return out;
}

bool audit_against(const ProfileAnalysis& a, const LatencyBreakdown& lat) {
  if (!a.exact) return false;
  const auto eq = [](std::int64_t x, double s) {
    return static_cast<double>(x) == s;
  };
  return eq(a.raw_backlog_wait_ns, lat.backlog_residency.sum()) &&
         a.raw_backlog_count == lat.backlog_residency.count() &&
         eq(a.raw_post_to_wire_ns, lat.post_to_wire.sum()) &&
         a.raw_qp_count == lat.post_to_wire.count() &&
         eq(a.raw_wire_to_ack_ns, lat.wire_to_ack.sum()) &&
         a.raw_qp_count == lat.wire_to_ack.count();
}

std::vector<FlowArrowEvent> flow_events(const ProfileAnalysis& a) {
  std::vector<FlowArrowEvent> out;
  out.reserve(a.messages.size() * 2);
  for (const MessageProfile& m : a.messages) {
    const std::uint64_t id =
        (static_cast<std::uint64_t>(static_cast<std::uint16_t>(m.src)) << 48) |
        (static_cast<std::uint64_t>(static_cast<std::uint16_t>(m.dst)) << 32) |
        (m.seq & 0xffffffffull);
    out.push_back({sim::TimePoint(m.t_disp), m.src, id, true});
    out.push_back({sim::TimePoint(m.t_recv), m.dst, id, false});
  }
  std::sort(out.begin(), out.end(),
            [](const FlowArrowEvent& x, const FlowArrowEvent& y) {
              if (x.t != y.t) return x.t < y.t;
              if (x.id != y.id) return x.id < y.id;
              return x.begin && !y.begin;  // "s" precedes its "f" at equal t
            });
  return out;
}

// ---------------------------------------------------------- JSON profile --

namespace {

void put_totals(std::ostringstream& os, const SegmentTotals& t) {
  os << "\"messages\": " << t.messages << ", \"e2e_ns\": " << t.e2e_ns;
  for (std::size_t i = 0; i < kSegmentCount; ++i) {
    os << ", \"" << to_string(static_cast<Segment>(i))
       << "_ns\": " << t.seg[i];
  }
}

void put_message(std::ostringstream& os, const MessageProfile& m) {
  os << "{\"src\": " << m.src << ", \"dst\": " << m.dst
     << ", \"seq\": " << m.seq << ", \"kind\": " << int(m.msg_kind)
     << ", \"flags\": " << int(m.flags) << ", \"bytes\": " << m.bytes
     << ", \"n_retx\": " << m.n_retx << ", \"t_post_ns\": " << m.t_post
     << ", \"t_matched_ns\": " << m.t_matched
     << ", \"e2e_ns\": " << m.e2e();
  for (std::size_t i = 0; i < kSegmentCount; ++i) {
    os << ", \"" << to_string(static_cast<Segment>(i))
       << "_ns\": " << m.seg[i];
  }
  os << "}";
}

}  // namespace

std::string profile_to_json(const ProfileAnalysis& a, std::string_view label) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"mvflow.prof.v1\",\n  \"label\": \""
     << json::escape(label) << "\",\n  \"exact\": " << (a.exact ? 1 : 0)
     << ",\n  \"incomplete\": " << a.incomplete << ",\n  \"payload\": {";
  put_totals(os, a.payload);
  os << "},\n  \"control\": {";
  put_totals(os, a.control);
  os << "},\n  \"connections\": [";
  for (std::size_t i = 0; i < a.connections.size(); ++i) {
    const ConnectionBlame& c = a.connections[i];
    os << (i == 0 ? "" : ",") << "\n    {\"src\": " << c.src
       << ", \"dst\": " << c.dst << ", ";
    put_totals(os, c.totals);
    os << "}";
  }
  os << "\n  ],\n";

  // The heaviest messages, by end-to-end latency (ties broken canonically);
  // capped so a long profiled run stays a reviewable document — the totals
  // above remain exact over every message regardless.
  constexpr std::size_t kTopCap = 256;
  std::vector<const MessageProfile*> top;
  top.reserve(a.messages.size());
  for (const MessageProfile& m : a.messages) top.push_back(&m);
  std::stable_sort(top.begin(), top.end(),
                   [](const MessageProfile* x, const MessageProfile* y) {
                     return x->e2e() > y->e2e();
                   });
  const std::size_t shown = std::min(top.size(), kTopCap);
  os << "  \"top_capped\": " << (top.size() > kTopCap ? 1 : 0)
     << ",\n  \"top_messages\": [";
  for (std::size_t i = 0; i < shown; ++i) {
    os << (i == 0 ? "" : ",") << "\n    ";
    put_message(os, *top[i]);
  }
  os << "\n  ],\n  \"critical_path\": [";
  for (std::size_t i = 0; i < a.critical_path.size(); ++i) {
    const CriticalStep& s = a.critical_path[i];
    os << (i == 0 ? "" : ",") << "\n    {\"src\": " << s.src
       << ", \"dst\": " << s.dst << ", \"seq\": " << s.seq
       << ", \"segment\": \"" << to_string(s.segment)
       << "\", \"ns\": " << s.ns << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

bool write_profile(const std::string& path, const ProfileAnalysis& a,
                   std::string_view label) {
  const std::string doc = profile_to_json(a, label);
  if (path == "-") {
    std::cout << doc << std::flush;
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

// ------------------------------------------------- thread-local binding ----

namespace detail {
thread_local constinit Profiler* t_profiler = nullptr;

Profiler& fallback_profiler() noexcept {
  static Profiler fallback;
  return fallback;
}
}  // namespace detail

Profiler* bind_profiler(Profiler* p) noexcept {
  Profiler* prev = detail::t_profiler;
  detail::t_profiler = p;
  return prev;
}

bool profiler_is_fallback() noexcept { return detail::t_profiler == nullptr; }

}  // namespace mvflow::obs
