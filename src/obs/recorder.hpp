// Sim-time flight recorder (DESIGN.md §11).
//
// A bounded ring buffer of compact 32-byte trace events covering the
// flow-control lifecycle the paper argues about: message posted → segmented
// → on-wire → delivered → ACKed, credit grant/consume, backlog
// enter/dispatch, ECM sent, RNR NAK, retransmit, QP error. Events are
// stamped with engine (simulated) time by the call site and exported as
// Chrome `trace_event` JSON — one process track per rank/node, one thread
// track per QP, viewable in Perfetto or chrome://tracing — plus a CSV
// time-series of credit count and backlog depth per connection.
//
// Overhead contract: the recorder is OFF by default and a disabled
// recorder costs exactly one predictable branch at each instrumentation
// site (`if (rec.enabled()) ...` around an out-of-line record()). Nothing
// allocates while recording — the ring is sized at enable() time and
// overwrites its oldest events at capacity (`dropped()` counts evictions).
//
// Ownership and threading: every recorder is owned by whoever creates it —
// mpi::World owns one per simulation — and `obs::recorder()` resolves to the
// recorder *bound to the current thread* (a thread-local pointer, so
// independent Worlds on a thread pool record into their own rings with no
// shared mutable state). World binds its recorder on the constructing
// thread and on each rank's process thread; a thread with no binding sees a
// shared, permanently-disabled fallback, which keeps the instrumentation
// fast path a single branch with no null check. Tests may instantiate and
// bind private FlightRecorders freely (RecorderBinding below).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace mvflow::util::serial {
class BufWriter;
}

namespace mvflow::obs {

enum class Ev : std::uint8_t {
  msg_posted,        ///< WQE accepted by the QP; a = msn, b = bytes
  msg_segmented,     ///< multi-packet message; a = msn, b = packet count
  msg_on_wire,       ///< first transmission started; a = msn, b = bytes
  msg_acked,         ///< requester retired the send;  a = msn, b = bytes
  msg_delivered,     ///< responder completed arrival; a = msn, b = bytes
  credit_grant,      ///< credits learned from peer;   a = granted, b = credits now
  credit_consume,    ///< credit spent on a send;      a = 1, b = credits now
  backlog_enter,     ///< send queued, no credit;      a = depth now, b = credits
  backlog_dispatch,  ///< backlogged send released;    a = depth now, b = credits
  ecm_sent,          ///< explicit credit message;     a = credits carried
  rnr_nak,           ///< responder had no buffer;     a = msn
  retransmit,        ///< message re-entered the wire; a = msn, b = bytes
  qp_error,          ///< QP entered the error state
};
inline constexpr std::size_t kEvKinds = 13;

std::string_view to_string(Ev e);

struct TraceEvent {
  sim::TimePoint t{0};
  std::uint64_t a = 0;  ///< kind-specific, see Ev
  std::int64_t b = 0;   ///< kind-specific, see Ev
  std::uint32_t qpn = 0;
  std::int16_t rank = -1;  ///< originating rank/node
  std::int16_t peer = -1;  ///< remote rank/node (-1 when not applicable)
  Ev kind = Ev::msg_posted;
};

/// Per-message latency breakdown derived from the lifecycle events; fed by
/// the instrumented layers only while the recorder is enabled.
struct LatencyBreakdown {
  util::RunningStats post_to_wire;       ///< WQE post → first byte on wire
  util::RunningStats wire_to_ack;        ///< first transmission → retired
  util::RunningStats backlog_residency;  ///< backlog enter → dispatch
  util::Histogram post_to_wire_hist{0.0, 50'000.0, 50};        // ns
  util::Histogram wire_to_ack_hist{0.0, 200'000.0, 50};        // ns
  util::Histogram backlog_residency_hist{0.0, 2'000'000.0, 50};  // ns

  /// Combine another breakdown (e.g. a shard recorder's) into this one.
  void merge(const LatencyBreakdown& other) {
    post_to_wire.merge(other.post_to_wire);
    wire_to_ack.merge(other.wire_to_ack);
    backlog_residency.merge(other.backlog_residency);
    post_to_wire_hist.merge(other.post_to_wire_hist);
    wire_to_ack_hist.merge(other.wire_to_ack_hist);
    backlog_residency_hist.merge(other.backlog_residency_hist);
  }

  template <typename Fn>
  void visit(Fn&& f) const {
    emit_visit("post_to_wire", post_to_wire, post_to_wire_hist, f);
    emit_visit("wire_to_ack", wire_to_ack, wire_to_ack_hist, f);
    emit_visit("backlog_residency", backlog_residency, backlog_residency_hist, f);
  }

 private:
  template <typename Fn>
  static void emit_visit(std::string_view name, const util::RunningStats& rs,
                         const util::Histogram& h, Fn& f) {
    const std::string base(name);
    f(base + ".count", static_cast<double>(rs.count()));
    f(base + ".mean_ns", rs.mean());
    f(base + ".min_ns", rs.min());
    f(base + ".max_ns", rs.max());
    f(base + ".p50_ns", h.quantile(0.50));
    f(base + ".p90_ns", h.quantile(0.90));
    f(base + ".p99_ns", h.quantile(0.99));
  }
};

/// One endpoint of a Chrome-trace flow arrow (ph:"s" start on the sender's
/// track, ph:"f" finish on the receiver's). Produced by the causal profiler
/// (obs/prof.hpp) and interleaved into export_chrome_trace by timestamp.
struct FlowArrowEvent {
  sim::TimePoint t{0};
  std::int16_t rank = -1;
  std::uint64_t id = 0;  ///< binds the s/f pair; unique per wire message
  bool begin = true;     ///< true = "s" (sender), false = "f" (receiver)
};

/// Escape one CSV field: fields containing the separator, a double quote,
/// or a line break are quoted with embedded quotes doubled (RFC 4180);
/// plain fields pass through byte-identical.
std::string csv_escape(std::string_view field);

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  /// The one branch instrumentation sites take when tracing is off.
  bool enabled() const noexcept { return enabled_; }

  /// Size (or resize) the ring and start recording. Clears prior events.
  void enable(std::size_t capacity = kDefaultCapacity);
  /// Stop recording; the captured events stay exportable.
  void disable() noexcept { enabled_ = false; }
  /// Drop all captured events and latency stats (capacity retained).
  void clear() noexcept;

  /// Append one event (overwrites the oldest at capacity). Out-of-line on
  /// purpose: the enabled() branch at the call site is the hot-path cost.
  void record(sim::TimePoint t, Ev kind, int rank, int peer, std::uint32_t qpn,
              std::uint64_t a, std::int64_t b) noexcept;

  // Latency feeds (call only when enabled()).
  void note_post_to_wire(sim::Duration d) noexcept;
  void note_wire_to_ack(sim::Duration d) noexcept;
  void note_backlog_residency(sim::Duration d) noexcept;
  const LatencyBreakdown& latency() const noexcept { return latency_; }

  std::size_t size() const noexcept;
  std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events evicted by the ring wrapping.
  std::uint64_t dropped() const noexcept;
  /// Total record() calls since enable()/clear(), per kind and overall —
  /// counted even for events the ring later overwrote.
  std::uint64_t recorded() const noexcept { return recorded_; }
  std::uint64_t count(Ev kind) const noexcept {
    return kind_counts_[static_cast<std::size_t>(kind)];
  }

  /// Copy of the retained events, oldest first.
  std::vector<TraceEvent> events() const;

  /// Fold another recorder into this one: retained events are interleaved
  /// by timestamp (stable — at equal times this recorder's events keep
  /// preceding the absorbed ones, so absorbing shard recorders in shard
  /// order is deterministic), per-kind counts, totals, and latency
  /// accumulators are summed. The ring grows to hold every retained event
  /// of both sides; already-dropped events stay dropped. Sharded worlds use
  /// this to present one world-ordered trace from per-shard rings.
  void absorb(const FlightRecorder& other);

  /// Chrome trace_event JSON ({"traceEvents": [...]}) with rank process
  /// tracks, QP thread tracks, instant events for every kind, and counter
  /// tracks for credits / backlog depth per connection. The overload taking
  /// `flows` interleaves the profiler's sender→receiver flow arrows by
  /// timestamp (ph:"s"/"f"); `flows` must be time-sorted. A `path` of "-"
  /// writes to stdout.
  void export_chrome_trace(std::ostream& os) const;
  void export_chrome_trace(std::ostream& os,
                           const std::vector<FlowArrowEvent>& flows) const;
  bool export_chrome_trace(const std::string& path) const;
  bool export_chrome_trace(const std::string& path,
                           const std::vector<FlowArrowEvent>& flows) const;

  /// CSV time-series: time_ns,rank,peer,event,credits,backlog_depth —
  /// one row per credit/backlog event, carrying the last-known value of
  /// the other column for that connection. Free-text fields go through
  /// csv_escape, so labels containing the separator round-trip. A `path`
  /// of "-" writes to stdout.
  void export_credit_csv(std::ostream& os) const;
  bool export_credit_csv(const std::string& path) const;

  /// Serialize the recorder for the snapshot restore audit: configuration,
  /// per-kind counts, the retained ring (oldest first), and the raw latency
  /// accumulators (bit-exact, not the derived quantiles).
  void serialize_state(util::serial::BufWriter& w) const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;        ///< next write position
  std::uint64_t recorded_ = 0;  ///< total record() calls
  std::uint64_t kind_counts_[kEvKinds] = {};
  LatencyBreakdown latency_;
};

namespace detail {
/// The current thread's recorder; nullptr = unbound. `constinit` matters:
/// a constant-initialized thread_local compiles to a plain TLS load at
/// every instrumentation site, where a dynamic initializer would route
/// every access through the TLS init-guard wrapper — measurable across
/// the simulation hot path. Internal — bind through
/// bind_recorder()/RecorderBinding.
extern thread_local constinit FlightRecorder* t_recorder;
/// Shared recorder that is never enabled; what unbound threads observe.
FlightRecorder& fallback_recorder() noexcept;
}  // namespace detail

/// The recorder bound to the current thread (a world-owned recorder while a
/// simulation is active, a shared never-enabled fallback otherwise). This
/// is what the instrumented layers consult; during a simulation — the only
/// time the fast path matters — the branch below is perfectly predicted
/// non-null.
inline FlightRecorder& recorder() noexcept {
  FlightRecorder* r = detail::t_recorder;
  return r != nullptr ? *r : detail::fallback_recorder();
}

/// Bind `r` as this thread's recorder and return the previous binding
/// (pass the returned pointer back to restore it; nullptr rebinds the
/// disabled fallback). `r` must outlive the binding.
FlightRecorder* bind_recorder(FlightRecorder* r) noexcept;

/// True when the current thread's binding is the shared disabled fallback
/// (i.e. no simulation has bound a recorder here).
bool recorder_is_fallback() noexcept;

/// RAII binding for the current thread; restores the previous recorder on
/// destruction. Used by tests and by World on the thread that runs the
/// engine. (Rank process threads bind without restoring — each such thread
/// is born and dies inside one simulation.)
class RecorderBinding {
 public:
  explicit RecorderBinding(FlightRecorder* r) noexcept
      : prev_(bind_recorder(r)) {}
  ~RecorderBinding() { bind_recorder(prev_); }
  RecorderBinding(const RecorderBinding&) = delete;
  RecorderBinding& operator=(const RecorderBinding&) = delete;

 private:
  FlightRecorder* prev_;
};

}  // namespace mvflow::obs
