#include "obs/audit.hpp"

#include <sstream>

namespace mvflow::obs {

namespace {

std::string compose(const std::string& section, int src, int dst,
                    const std::string& detail) {
  std::ostringstream os;
  os << "audit violation [" << section << "] connection " << src << "->" << dst
     << ": " << detail;
  return os.str();
}

}  // namespace

AuditError::AuditError(std::string section, int src, int dst,
                       const std::string& detail)
    : std::runtime_error(compose(section, src, dst, detail)),
      section_(std::move(section)),
      src_(src),
      dst_(dst) {}

void audit_credit_conservation(const ConnCredit& c) {
  const auto fail = [&](const std::string& what) {
    std::ostringstream os;
    os << what << " (scheme=" << c.scheme << " credits=" << c.credits
       << " consumed=" << c.consumed << " delivered=" << c.delivered
       << " pending_return=" << c.pending_return << " granted=" << c.granted
       << " received=" << c.received << " posted=" << c.posted << ")";
    throw AuditError("credit-conservation", c.src, c.dst, os.str());
  };
  if (c.credits < 0) fail("negative credit count");
  if (c.pending_return < 0) fail("negative pending-return accumulator");
  if (c.consumed < c.delivered)
    fail("receiver delivered more credited messages than sender consumed");
  if (c.granted < c.received)
    fail("sender received more credits than receiver granted");
  const std::int64_t in_flight_msgs =
      static_cast<std::int64_t>(c.consumed - c.delivered);
  const std::int64_t in_flight_credits =
      static_cast<std::int64_t>(c.granted - c.received);
  const std::int64_t lhs =
      c.credits + in_flight_msgs + c.pending_return + in_flight_credits;
  if (lhs != c.posted) {
    std::ostringstream os;
    os << "conservation equation broken: credits(" << c.credits
       << ") + in_flight_msgs(" << in_flight_msgs << ") + pending_return("
       << c.pending_return << ") + in_flight_credits(" << in_flight_credits
       << ") = " << lhs << " != posted(" << c.posted << ")";
    fail(os.str());
  }
}

void audit_backlog_books(const BacklogBooks& b) {
  const std::uint64_t accounted =
      b.dispatched + b.failed + static_cast<std::uint64_t>(b.depth);
  if (b.entered != accounted) {
    std::ostringstream os;
    os << "backlog books unbalanced: entered(" << b.entered
       << ") != dispatched(" << b.dispatched << ") + failed(" << b.failed
       << ") + depth(" << b.depth << ") = " << accounted;
    throw AuditError("backlog-books", b.src, b.dst, os.str());
  }
}

void audit_delivery_window(const DeliveryWindow& d) {
  if (d.rx_seq > d.tx_seq) {
    std::ostringstream os;
    os << "receiver ahead of sender: rx_seq(" << d.rx_seq << ") > tx_seq("
       << d.tx_seq << ") — duplicate or out-of-window delivery";
    throw AuditError("delivery-window", d.src, d.dst, os.str());
  }
}

void audit_buffer_accounting(const EndpointBuffers& e) {
  const auto fail = [&](const std::string& what) {
    std::ostringstream os;
    os << what << " (slots=" << e.slots << " retired=" << e.retired
       << " control_reserve=" << e.control_reserve << " current_posted="
       << e.current_posted << " wqes_posted=" << e.wqes_posted
       << " recvq_depth=" << e.recvq_depth << " assembly_holds="
       << (e.assembly_holds_wqe ? 1 : 0) << " completed=" << e.wqes_completed
       << " flushed=" << e.wqes_flushed << ")";
    throw AuditError("buffer-accounting", e.owner, e.peer, os.str());
  };
  if (e.retired > e.slots) fail("more slots retired than ever existed");
  const std::int64_t live =
      static_cast<std::int64_t>(e.slots) - static_cast<std::int64_t>(e.retired);
  if (live != e.current_posted + static_cast<std::int64_t>(e.control_reserve)) {
    std::ostringstream os;
    os << "receive pool shape broken: slots - retired = " << live
       << " != current_posted + control_reserve = "
       << (e.current_posted + static_cast<std::int64_t>(e.control_reserve));
    fail(os.str());
  }
  const std::uint64_t accounted = static_cast<std::uint64_t>(e.recvq_depth) +
                                  (e.assembly_holds_wqe ? 1u : 0u) +
                                  e.wqes_completed + e.wqes_flushed;
  if (e.wqes_posted != accounted) {
    std::ostringstream os;
    os << "recv WQE ledger unbalanced: posted(" << e.wqes_posted
       << ") != queued(" << e.recvq_depth << ") + holds("
       << (e.assembly_holds_wqe ? 1 : 0) << ") + completed("
       << e.wqes_completed << ") + flushed(" << e.wqes_flushed
       << ") = " << accounted;
    fail(os.str());
  }
}

}  // namespace mvflow::obs
