// Unified metrics registry (DESIGN.md §11).
//
// Every layer of the stack keeps scalar counters (flowctl::Counters,
// FabricStats, DeviceStats, MessageDataPool::Stats, EnginePerfStats, ...).
// Before this layer existed each bench hand-aggregated the structs it knew
// about; the registry inverts that: components register *sources* (a prefix
// plus a callback that enumerates name/value pairs at snapshot time) or own
// *instruments* (counters/gauges/RunningStats/Histograms written in place),
// and one snapshot() walks everything and serializes to a single flat JSON
// document — `MVFLOW_METRICS=out.json` on any World-based program.
//
// Snapshots are flat (dotted names, double values) on purpose: they diff
// trivially across runs, round-trip through JSON bit-exactly (%.17g), and
// need no schema negotiation between writer and reader.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/stats.hpp"

namespace mvflow::obs {

/// One flattened metrics capture: insertion-ordered (name, value) pairs.
struct Snapshot {
  std::vector<std::pair<std::string, double>> values;

  bool has(std::string_view name) const noexcept;
  double get(std::string_view name, double fallback = 0.0) const noexcept;
  /// Sum of every entry whose name ends with `suffix` — aggregates
  /// per-connection/per-rank metrics without knowing the topology.
  double sum_suffix(std::string_view suffix) const noexcept;
  /// Number of entries whose name ends with `suffix`.
  std::size_t count_suffix(std::string_view suffix) const noexcept;

  /// `{"schema": "mvflow.metrics.v1", "metrics": {name: value, ...}}`.
  std::string to_json() const;
  /// Inverse of to_json (accepts any document with a flat numeric
  /// "metrics" object). Values round-trip bit-exactly.
  static std::optional<Snapshot> from_json(std::string_view text);
  /// Write to_json() to `path`; "-" writes to stdout (pipeline use).
  bool write_json(const std::string& path) const;
};

/// Flatten helpers shared by snapshot() and source callbacks: a stats
/// object becomes a handful of `<name>.<field>` scalars.
template <typename Fn>
void emit_running_stats(std::string_view name, const util::RunningStats& rs,
                        Fn&& emit) {
  const std::string base(name);
  emit(base + ".count", static_cast<double>(rs.count()));
  emit(base + ".mean", rs.mean());
  emit(base + ".min", rs.min());
  emit(base + ".max", rs.max());
  emit(base + ".stddev", rs.stddev());
  emit(base + ".sum", rs.sum());
}

template <typename Fn>
void emit_histogram(std::string_view name, const util::Histogram& h,
                    Fn&& emit) {
  const std::string base(name);
  emit(base + ".count", static_cast<double>(h.total()));
  emit(base + ".underflow", static_cast<double>(h.underflow()));
  emit(base + ".overflow", static_cast<double>(h.overflow()));
  emit(base + ".p50", h.quantile(0.50));
  emit(base + ".p90", h.quantile(0.90));
  emit(base + ".p99", h.quantile(0.99));
}

class MetricsRegistry {
 public:
  /// Snapshot-time sink: receives one fully-qualified (name, value) pair.
  using EmitFn = std::function<void(std::string_view, double)>;
  /// A live source enumerates its current values into the sink. Runs only
  /// at snapshot time — registering a source costs nothing per event.
  using SourceFn = std::function<void(const EmitFn&)>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // ---- owned instruments (register once, write directly) ----
  // References are stable for the registry's lifetime. Requesting an
  // existing name returns the same instrument.
  std::uint64_t& counter(const std::string& name);
  double& gauge(const std::string& name);
  util::RunningStats& running_stats(const std::string& name);
  util::Histogram& histogram(const std::string& name, double lo, double hi,
                             std::size_t buckets);

  // ---- live sources (component-owned state, read at snapshot time) ----
  /// The callback's emitted names are prefixed with `prefix`. The source
  /// must stay valid until removed or the registry dies; returns an id for
  /// remove_source.
  std::uint64_t add_source(std::string prefix, SourceFn fn);
  void remove_source(std::uint64_t id);
  std::size_t source_count() const noexcept { return sources_.size(); }

  /// Flatten every instrument and source into one capture. ($MVFLOW_METRICS
  /// export goes through exp::RunConfig now — the registry itself never
  /// reads the environment.)
  Snapshot snapshot() const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> value;  // stable address across registry growth
  };
  struct Source {
    std::uint64_t id = 0;
    std::string prefix;
    SourceFn fn;
  };

  std::vector<Named<std::uint64_t>> counters_;
  std::vector<Named<double>> gauges_;
  std::vector<Named<util::RunningStats>> stats_;
  std::vector<Named<util::Histogram>> histograms_;
  std::vector<Source> sources_;
  std::uint64_t next_source_id_ = 1;
};

}  // namespace mvflow::obs
