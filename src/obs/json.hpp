// Minimal JSON reader for the observability layer's round-trip tests and
// tools: parses the documents this repo *writes* (metrics snapshots, Chrome
// traces, BENCH_*.json) back into a navigable value tree. Hand-rolled so the
// repo stays dependency-free; not a general-purpose validating parser, but
// strict enough that a malformed export fails the parse instead of passing
// silently.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mvflow::obs::json {

class Value {
 public:
  enum class Kind { null, boolean, number, string, array, object };

  Kind kind = Kind::null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  /// Insertion-ordered, so a parsed document compares field-for-field with
  /// the writer's emission order.
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const noexcept { return kind == Kind::null; }
  bool is_object() const noexcept { return kind == Kind::object; }
  bool is_array() const noexcept { return kind == Kind::array; }
  bool is_number() const noexcept { return kind == Kind::number; }
  bool is_string() const noexcept { return kind == Kind::string; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const noexcept;
};

/// Parse a complete JSON document. Returns nullopt on any syntax error or
/// trailing garbage.
std::optional<Value> parse(std::string_view text);

/// Escape a string for embedding in emitted JSON (quotes not included).
std::string escape(std::string_view s);

}  // namespace mvflow::obs::json
