#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/json.hpp"

namespace mvflow::obs {

namespace {

bool ends_with(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.substr(name.size() - suffix.size()) == suffix;
}

}  // namespace

bool Snapshot::has(std::string_view name) const noexcept {
  for (const auto& [k, v] : values) {
    (void)v;
    if (k == name) return true;
  }
  return false;
}

double Snapshot::get(std::string_view name, double fallback) const noexcept {
  for (const auto& [k, v] : values) {
    if (k == name) return v;
  }
  return fallback;
}

double Snapshot::sum_suffix(std::string_view suffix) const noexcept {
  double sum = 0.0;
  for (const auto& [k, v] : values) {
    if (ends_with(k, suffix)) sum += v;
  }
  return sum;
}

std::size_t Snapshot::count_suffix(std::string_view suffix) const noexcept {
  std::size_t n = 0;
  for (const auto& [k, v] : values) {
    (void)v;
    if (ends_with(k, suffix)) ++n;
  }
  return n;
}

std::string Snapshot::to_json() const {
  std::string out = "{\n  \"schema\": \"mvflow.metrics.v1\",\n  \"metrics\": {";
  char buf[64];
  for (std::size_t i = 0; i < values.size(); ++i) {
    // %.17g survives a strtod round trip bit-exactly for every double.
    std::snprintf(buf, sizeof buf, "%.17g", values[i].second);
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    out += json::escape(values[i].first);
    out += "\": ";
    out += buf;
  }
  out += "\n  }\n}\n";
  return out;
}

std::optional<Snapshot> Snapshot::from_json(std::string_view text) {
  const auto doc = json::parse(text);
  if (!doc || !doc->is_object()) return std::nullopt;
  const json::Value* metrics = doc->find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return std::nullopt;
  Snapshot out;
  out.values.reserve(metrics->object.size());
  for (const auto& [name, v] : metrics->object) {
    if (!v.is_number()) return std::nullopt;
    out.values.emplace_back(name, v.number);
  }
  return out;
}

bool Snapshot::write_json(const std::string& path) const {
  const std::string doc = to_json();
  if (path == "-") {
    // Pipeline use (MVFLOW_METRICS=-): the snapshot goes to stdout so a
    // consumer like mvflow_prof can read it without a temp file.
    std::fwrite(doc.data(), 1, doc.size(), stdout);
    std::fflush(stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  return true;
}

namespace {

/// Find-or-create in a Named<T> vector (registration is rare and the lists
/// are short; no map needed).
template <typename Vec, typename Make>
auto& find_or_create(Vec& vec, const std::string& name, Make&& make) {
  for (auto& e : vec) {
    if (e.name == name) return *e.value;
  }
  vec.push_back({name, make()});
  return *vec.back().value;
}

}  // namespace

std::uint64_t& MetricsRegistry::counter(const std::string& name) {
  return find_or_create(counters_, name,
                        [] { return std::make_unique<std::uint64_t>(0); });
}

double& MetricsRegistry::gauge(const std::string& name) {
  return find_or_create(gauges_, name,
                        [] { return std::make_unique<double>(0.0); });
}

util::RunningStats& MetricsRegistry::running_stats(const std::string& name) {
  return find_or_create(stats_, name,
                        [] { return std::make_unique<util::RunningStats>(); });
}

util::Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t buckets) {
  return find_or_create(histograms_, name, [&] {
    return std::make_unique<util::Histogram>(lo, hi, buckets);
  });
}

std::uint64_t MetricsRegistry::add_source(std::string prefix, SourceFn fn) {
  const std::uint64_t id = next_source_id_++;
  sources_.push_back(Source{id, std::move(prefix), std::move(fn)});
  return id;
}

void MetricsRegistry::remove_source(std::uint64_t id) {
  sources_.erase(std::remove_if(sources_.begin(), sources_.end(),
                                [id](const Source& s) { return s.id == id; }),
                 sources_.end());
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot out;
  for (const auto& c : counters_)
    out.values.emplace_back(c.name, static_cast<double>(*c.value));
  for (const auto& g : gauges_) out.values.emplace_back(g.name, *g.value);
  const auto push = [&out](std::string name, double v) {
    out.values.emplace_back(std::move(name), v);
  };
  for (const auto& s : stats_) emit_running_stats(s.name, *s.value, push);
  for (const auto& h : histograms_) emit_histogram(h.name, *h.value, push);
  for (const auto& src : sources_) {
    const EmitFn emit = [&out, &src](std::string_view name, double v) {
      out.values.emplace_back(src.prefix + std::string(name), v);
    };
    src.fn(emit);
  }
  return out;
}

}  // namespace mvflow::obs
