// Causal critical-path profiler (DESIGN.md §16).
//
// Where the flight recorder answers "what happened", the profiler answers
// "which stall delayed *this* message". Instrumented layers emit one compact
// checkpoint record per side of every wire message:
//
//   dev_send — the sending mpi::Device: post time, dispatch time (credit
//              acquired, header sequence stamped), the zero-credit overlap of
//              the wait, and the inbound sequence number of the credit grant
//              that released it (the causal predecessor).
//   qp_send  — the sending ib::QueuePair, committed when the ACK retires the
//              WQE: first/last transmission times and the retransmit count.
//   dev_recv — the receiving mpi::Device: arrival (handle_inbound) and the
//              instant the message matched a posted receive.
//
// Records join *offline* by deterministic keys — the per-connection wire
// sequence number across ranks, the device tx id between device and QP — so
// attribution is a pure function of the record multiset. Serial and sharded
// engines produce the identical multiset (each record is a function of one
// message's protocol history, which the engines agree on bit for bit), which
// is what makes the analysis bit-identical at every worker count.
//
// Each completed message's end-to-end latency decomposes exactly into six
// disjoint segments (differences of consecutive timeline checkpoints, so
// Σ segments == e2e by construction):
//
//   credit_stall — waiting for a credit, no grant in flight
//   ecm_rtt      — waiting for a credit while the releasing ECM was in flight
//   backlog      — queued behind other backlogged sends with credits > 0
//   retransmit   — first transmission start → last transmission start
//   wire         — QP queueing/pacing + serialization + flight of the final
//                  transmission (dispatch → first tx, last tx → arrival)
//   match_wait   — arrival → matched to a posted receive
//
// The same overhead contract as the recorder: a disabled profiler costs one
// predictable branch per site, and an unbound thread sees a shared
// never-enabled fallback.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace mvflow::obs {

struct LatencyBreakdown;
struct FlowArrowEvent;

enum class ProfFamily : std::uint8_t { dev_send, qp_send, dev_recv };

inline constexpr std::uint64_t kProfNoSeq = ~0ull;

// ProfRecord::flags bits (set by the instrumented layers).
inline constexpr std::uint8_t kProfBacklogged = 1u << 0;  ///< left via backlog
inline constexpr std::uint8_t kProfOptimistic = 1u << 1;  ///< uncredited famine RTS
inline constexpr std::uint8_t kProfGrantEcm = 1u << 2;    ///< releasing grant was an ECM
inline constexpr std::uint8_t kProfUnexpected = 1u << 3;  ///< matched from unexpected queue
inline constexpr std::uint8_t kProfPayload = 1u << 4;     ///< credited kind (eager/RTS)

/// One checkpoint record. Field meaning varies by family:
///   dev_send: t0 = post, t1 = dispatch; zero_ns = zero-credit overlap of
///             [t0, t1]; grant_seq = inbound (dst→src) sequence of the grant
///             that released it; aux = device tx id (joins qp_send). For
///             backlogged sends t2 = the dispatch *decision* time (the
///             recorder's backlog-residency endpoint; it can precede t1 by
///             host-time charges on the famine-conversion path).
///   qp_send:  t0 = WQE posted, t1 = first tx, t2 = last tx, t3 = ACK
///             retired; aux = wr_id (the device tx id); n_retx retransmits.
///   dev_recv: t0 = arrival at handle_inbound, t1 = matched (== t0 for
///             control messages, which have no MPI-level receive).
struct ProfRecord {
  ProfFamily family = ProfFamily::dev_send;
  std::uint8_t msg_kind = 0;  ///< mpi::MsgKind (dev_*) / ib wr opcode (qp_send)
  std::uint8_t flags = 0;
  std::int16_t src = -1;  ///< sending rank of the wire message
  std::int16_t dst = -1;  ///< receiving rank
  std::uint32_t bytes = 0;
  std::uint32_t n_retx = 0;
  std::uint64_t seq = kProfNoSeq;  ///< per-connection wire sequence number
  std::uint64_t aux = 0;           ///< family-specific join key (see above)
  std::uint64_t grant_seq = kProfNoSeq;
  std::int64_t zero_ns = 0;
  sim::TimePoint t0{-1};
  sim::TimePoint t1{-1};
  sim::TimePoint t2{-1};
  sim::TimePoint t3{-1};
};

/// Append-only record buffer, one per world (plus one per shard in sharded
/// worlds), reached through the thread-local binding below. Unlike the
/// recorder's bounded ring, attribution needs every record of every
/// completed message, so the buffer grows geometrically; a profiled run
/// trades memory for exactness by design.
class Profiler {
 public:
  /// The one branch instrumentation sites take when profiling is off.
  bool enabled() const noexcept { return enabled_; }

  void enable();
  void disable() noexcept { enabled_ = false; }
  void clear() noexcept { records_.clear(); }

  /// Append one record. Out of line: the enabled() branch at the call site
  /// is the hot-path cost.
  void record(const ProfRecord& r);

  const std::vector<ProfRecord>& records() const noexcept { return records_; }

  /// Append another profiler's records (shard merge; callers absorb shards
  /// in shard order, and the analysis re-sorts canonically anyway).
  void absorb(const Profiler& other);

 private:
  bool enabled_ = false;
  std::vector<ProfRecord> records_;
};

// ------------------------------------------------------- offline analysis --

enum class Segment : std::uint8_t {
  credit_stall,
  ecm_rtt,
  backlog,
  retransmit,
  wire,
  match_wait,
};
inline constexpr std::size_t kSegmentCount = 6;
std::string_view to_string(Segment s);

/// One fully-joined message with its exact six-way latency split.
struct MessageProfile {
  std::int16_t src = -1;
  std::int16_t dst = -1;
  std::uint64_t seq = kProfNoSeq;
  std::uint64_t grant_seq = kProfNoSeq;
  std::uint8_t msg_kind = 0;
  std::uint8_t flags = 0;
  std::uint32_t bytes = 0;
  std::uint32_t n_retx = 0;
  std::int64_t t_post = -1;     // ns; every later stamp likewise
  std::int64_t t_disp = -1;
  std::int64_t t_first_tx = -1;
  std::int64_t t_last_tx = -1;
  std::int64_t t_acked = -1;
  std::int64_t t_recv = -1;
  std::int64_t t_matched = -1;
  std::int64_t seg[kSegmentCount] = {};

  std::int64_t e2e() const noexcept { return t_matched - t_post; }
  std::int64_t attributed() const noexcept {
    std::int64_t s = 0;
    for (std::int64_t v : seg) s += v;
    return s;
  }
  bool operator==(const MessageProfile&) const = default;
};

/// Exact integer-ns totals over a set of messages.
struct SegmentTotals {
  std::int64_t seg[kSegmentCount] = {};
  std::int64_t e2e_ns = 0;
  std::uint64_t messages = 0;

  void add(const MessageProfile& m) noexcept {
    for (std::size_t i = 0; i < kSegmentCount; ++i) seg[i] += m.seg[i];
    e2e_ns += m.e2e();
    ++messages;
  }
  std::int64_t attributed() const noexcept {
    std::int64_t s = 0;
    for (std::int64_t v : seg) s += v;
    return s;
  }
};

struct ConnectionBlame {
  std::int16_t src = -1;
  std::int16_t dst = -1;
  SegmentTotals totals;
};

/// One step of the run's critical path: a segment of one message on the
/// grant-chain walked back from the last completion.
struct CriticalStep {
  std::int16_t src = -1;
  std::int16_t dst = -1;
  std::uint64_t seq = kProfNoSeq;
  Segment segment = Segment::wire;
  std::int64_t ns = 0;
};

struct ProfileAnalysis {
  /// Fully-joined messages in canonical (src, dst, seq) order — the form
  /// whose byte-for-byte identity the serial-vs-sharded tests assert.
  std::vector<MessageProfile> messages;
  SegmentTotals payload;  ///< credited kinds (eager data, rendezvous RTS)
  SegmentTotals control;  ///< CTS / FIN / ECM
  std::vector<ConnectionBlame> connections;  ///< payload blame per direction
  std::vector<CriticalStep> critical_path;   ///< root first, last completion last
  std::uint64_t incomplete = 0;  ///< dev_send records lacking a full chain
  bool exact = true;  ///< every message: Σ segments == e2e (invariant)

  // Raw sums mirroring the LatencyBreakdown accumulators (same call sites,
  // so equality with the recorder's totals is the cross-subsystem audit).
  std::int64_t raw_backlog_wait_ns = 0;
  std::uint64_t raw_backlog_count = 0;
  std::int64_t raw_post_to_wire_ns = 0;
  std::int64_t raw_wire_to_ack_ns = 0;
  std::uint64_t raw_qp_count = 0;
};

/// Join the record multiset into per-message attributions. Pure function of
/// the records: bit-identical input multisets give bit-identical analyses.
ProfileAnalysis analyze(const std::vector<ProfRecord>& records);

/// Cross-subsystem audit: the profiler's raw sums must equal the recorder's
/// LatencyBreakdown accumulators (both subsystems instrument the same call
/// sites), and every message must satisfy Σ segments == e2e. Requires both
/// subsystems armed for the whole run and a drained (fully-ACKed) world.
bool audit_against(const ProfileAnalysis& a, const LatencyBreakdown& lat);

/// Chrome-trace flow arrows (ph:"s"/"f") for every joined message: the "s"
/// endpoint on the sender's track at dispatch, the "f" endpoint on the
/// receiver's track at arrival. Sorted by timestamp, ready to interleave
/// into FlightRecorder::export_chrome_trace.
std::vector<FlowArrowEvent> flow_events(const ProfileAnalysis& a);

/// Emit run-level blame through a MetricsRegistry source ("prof." prefix):
/// totals, per-segment sums, per-connection and per-link (uplink/downlink)
/// blame, and the exactness verdict.
template <typename EmitFn>
void emit_metrics(const ProfileAnalysis& a, const EmitFn& e);

/// Profile document (schema "mvflow.prof.v1") consumed by mvflow_prof:
/// run totals, per-connection blame, the top messages by end-to-end
/// latency, and the critical path. All times are exact integer ns.
std::string profile_to_json(const ProfileAnalysis& a, std::string_view label);

/// Write the profile to `path`; "-" writes to stdout. Returns false when
/// the file cannot be opened.
bool write_profile(const std::string& path, const ProfileAnalysis& a,
                   std::string_view label);

// ------------------------------------------------- thread-local binding ----

namespace detail {
/// Same constinit contract as detail::t_recorder: a plain TLS load per
/// instrumentation site, no init-guard. Internal — bind through
/// bind_profiler()/ProfilerBinding.
extern thread_local constinit Profiler* t_profiler;
/// Shared profiler that is never enabled; what unbound threads observe.
Profiler& fallback_profiler() noexcept;
}  // namespace detail

/// The profiler bound to the current thread (world-owned while a profiled
/// simulation is active, the shared disabled fallback otherwise).
inline Profiler& profiler() noexcept {
  Profiler* p = detail::t_profiler;
  return p != nullptr ? *p : detail::fallback_profiler();
}

/// Bind `p` as this thread's profiler and return the previous binding
/// (nullptr rebinds the disabled fallback). `p` must outlive the binding.
Profiler* bind_profiler(Profiler* p) noexcept;

/// True when the current thread's binding is the shared disabled fallback.
bool profiler_is_fallback() noexcept;

/// RAII binding for the current thread; restores the previous profiler on
/// destruction.
class ProfilerBinding {
 public:
  explicit ProfilerBinding(Profiler* p) noexcept : prev_(bind_profiler(p)) {}
  ~ProfilerBinding() { bind_profiler(prev_); }
  ProfilerBinding(const ProfilerBinding&) = delete;
  ProfilerBinding& operator=(const ProfilerBinding&) = delete;

 private:
  Profiler* prev_;
};

// ----------------------------------------------------- template definition --

template <typename EmitFn>
void emit_metrics(const ProfileAnalysis& a, const EmitFn& e) {
  const auto emit_totals = [&e](const std::string& base,
                                const SegmentTotals& t) {
    e(base + "messages", static_cast<double>(t.messages));
    e(base + "e2e_ns", static_cast<double>(t.e2e_ns));
    for (std::size_t i = 0; i < kSegmentCount; ++i) {
      e(base + std::string(to_string(static_cast<Segment>(i))) + "_ns",
        static_cast<double>(t.seg[i]));
    }
  };
  e("exact", a.exact ? 1.0 : 0.0);
  e("incomplete", static_cast<double>(a.incomplete));
  emit_totals("", a.payload);
  emit_totals("control.", a.control);
  for (const ConnectionBlame& c : a.connections) {
    emit_totals("conn.r" + std::to_string(c.src) + "_r" +
                    std::to_string(c.dst) + ".",
                c.totals);
  }
  // Link blame: this fabric is a single-switch crossbar, so a directed
  // connection occupies exactly the sender's uplink and the receiver's
  // downlink — per-link blame is the marginal sum over connections.
  const auto emit_links = [&](bool up) {
    std::vector<std::int16_t> seen;
    for (const ConnectionBlame& c : a.connections) {
      const std::int16_t node = up ? c.src : c.dst;
      bool dup = false;
      for (std::int16_t s : seen) dup = dup || s == node;
      if (dup) continue;
      seen.push_back(node);
      std::int64_t ns = 0;
      for (const ConnectionBlame& o : a.connections) {
        if ((up ? o.src : o.dst) == node) ns += o.totals.e2e_ns;
      }
      e(std::string("link.") + (up ? "up.r" : "down.r") +
            std::to_string(node) + ".e2e_ns",
        static_cast<double>(ns));
    }
  };
  emit_links(true);
  emit_links(false);
}

}  // namespace mvflow::obs
