#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mvflow::obs::json {

const Value* Value::find(std::string_view key) const noexcept {
  if (kind != Kind::object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  std::optional<Value> run() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<std::string> string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return std::nullopt;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // \uXXXX: decode the code unit; non-ASCII becomes '?' (the repo
          // never emits these, but a trace viewer might).
          if (pos_ + 4 > s_.size()) return std::nullopt;
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          out.push_back(cp < 0x80 ? static_cast<char>(cp) : '?');
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> value() {
    skip_ws();
    if (pos_ >= s_.size()) return std::nullopt;
    const char c = s_[pos_];
    Value v;
    if (c == '{') {
      ++pos_;
      v.kind = Value::Kind::object;
      skip_ws();
      if (eat('}')) return v;
      for (;;) {
        skip_ws();
        auto key = string();
        if (!key || !eat(':')) return std::nullopt;
        auto member = value();
        if (!member) return std::nullopt;
        v.object.emplace_back(std::move(*key), std::move(*member));
        if (eat(',')) continue;
        if (eat('}')) return v;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = Value::Kind::array;
      skip_ws();
      if (eat(']')) return v;
      for (;;) {
        auto elem = value();
        if (!elem) return std::nullopt;
        v.array.push_back(std::move(*elem));
        if (eat(',')) continue;
        if (eat(']')) return v;
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto s = string();
      if (!s) return std::nullopt;
      v.kind = Value::Kind::string;
      v.string = std::move(*s);
      return v;
    }
    if (c == 't') {
      if (!literal("true")) return std::nullopt;
      v.kind = Value::Kind::boolean;
      v.boolean = true;
      return v;
    }
    if (c == 'f') {
      if (!literal("false")) return std::nullopt;
      v.kind = Value::Kind::boolean;
      return v;
    }
    if (c == 'n') {
      if (!literal("null")) return std::nullopt;
      return v;
    }
    // Number: delegate to strtod over the remaining slice.
    if (c == '-' || (c >= '0' && c <= '9')) {
      // strtod needs NUL-terminated input; the slice is short-lived.
      const std::string slice(s_.substr(pos_, 64));
      char* end = nullptr;
      const double d = std::strtod(slice.c_str(), &end);
      if (end == slice.c_str()) return std::nullopt;
      pos_ += static_cast<std::size_t>(end - slice.c_str());
      v.kind = Value::Kind::number;
      v.number = d;
      return v;
    }
    return std::nullopt;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text) { return Parser(text).run(); }

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace mvflow::obs::json
