#include "obs/recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <ostream>
#include <set>

#include "util/serial.hpp"

namespace mvflow::obs {

std::string csv_escape(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string_view to_string(Ev e) {
  switch (e) {
    case Ev::msg_posted: return "msg_posted";
    case Ev::msg_segmented: return "msg_segmented";
    case Ev::msg_on_wire: return "msg_on_wire";
    case Ev::msg_acked: return "msg_acked";
    case Ev::msg_delivered: return "msg_delivered";
    case Ev::credit_grant: return "credit_grant";
    case Ev::credit_consume: return "credit_consume";
    case Ev::backlog_enter: return "backlog_enter";
    case Ev::backlog_dispatch: return "backlog_dispatch";
    case Ev::ecm_sent: return "ecm_sent";
    case Ev::rnr_nak: return "rnr_nak";
    case Ev::retransmit: return "retransmit";
    case Ev::qp_error: return "qp_error";
  }
  return "unknown";
}

void FlightRecorder::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  ring_.assign(capacity, TraceEvent{});
  clear();
  enabled_ = true;
}

void FlightRecorder::clear() noexcept {
  head_ = 0;
  recorded_ = 0;
  for (auto& c : kind_counts_) c = 0;
  latency_ = LatencyBreakdown{};
}

void FlightRecorder::record(sim::TimePoint t, Ev kind, int rank, int peer,
                            std::uint32_t qpn, std::uint64_t a,
                            std::int64_t b) noexcept {
  if (!enabled_ || ring_.empty()) return;
  TraceEvent& e = ring_[head_];
  e.t = t;
  e.a = a;
  e.b = b;
  e.qpn = qpn;
  e.rank = static_cast<std::int16_t>(rank);
  e.peer = static_cast<std::int16_t>(peer);
  e.kind = kind;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  ++recorded_;
  ++kind_counts_[static_cast<std::size_t>(kind)];
}

void FlightRecorder::note_post_to_wire(sim::Duration d) noexcept {
  const double ns = static_cast<double>(d.count());
  latency_.post_to_wire.add(ns);
  latency_.post_to_wire_hist.add(ns);
}

void FlightRecorder::note_wire_to_ack(sim::Duration d) noexcept {
  const double ns = static_cast<double>(d.count());
  latency_.wire_to_ack.add(ns);
  latency_.wire_to_ack_hist.add(ns);
}

void FlightRecorder::note_backlog_residency(sim::Duration d) noexcept {
  const double ns = static_cast<double>(d.count());
  latency_.backlog_residency.add(ns);
  latency_.backlog_residency_hist.add(ns);
}

std::size_t FlightRecorder::size() const noexcept {
  return recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                  : ring_.size();
}

std::uint64_t FlightRecorder::dropped() const noexcept {
  return recorded_ < ring_.size() ? 0 : recorded_ - ring_.size();
}

std::vector<TraceEvent> FlightRecorder::events() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  // When the ring has wrapped, head_ points at the oldest retained event.
  const std::size_t start = recorded_ < ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::absorb(const FlightRecorder& other) {
  const std::vector<TraceEvent> mine = events();
  const std::vector<TraceEvent> theirs = other.events();
  if (!theirs.empty() || !mine.empty()) {
    std::vector<TraceEvent> merged;
    merged.reserve(mine.size() + theirs.size());
    // std::merge is stable and prefers the first range at ties: absorbing
    // recorders in a fixed order yields one canonical interleaving.
    std::merge(mine.begin(), mine.end(), theirs.begin(), theirs.end(),
               std::back_inserter(merged),
               [](const TraceEvent& a, const TraceEvent& b) { return a.t < b.t; });
    // The rebuilt ring holds exactly the merged retained set: head_ = 0 with
    // recorded_ >= capacity makes events() read it back in order, and
    // dropped() keeps reporting the sum of both sides' evictions.
    ring_ = std::move(merged);
    head_ = 0;
  }
  recorded_ += other.recorded_;
  for (std::size_t k = 0; k < kEvKinds; ++k) {
    kind_counts_[k] += other.kind_counts_[k];
  }
  latency_.merge(other.latency_);
}

namespace {

/// ts in trace_event JSON is microseconds; keep ns precision as decimals.
void append_ts(std::string& out, sim::TimePoint t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f",
                static_cast<double>(t.count()) / 1000.0);
  out += buf;
}

std::string connection_label(const TraceEvent& e) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "r%d->r%d", static_cast<int>(e.rank),
                static_cast<int>(e.peer));
  return buf;
}

bool is_credit_kind(Ev k) {
  return k == Ev::credit_grant || k == Ev::credit_consume;
}

bool is_backlog_kind(Ev k) {
  return k == Ev::backlog_enter || k == Ev::backlog_dispatch;
}

}  // namespace

void FlightRecorder::export_chrome_trace(std::ostream& os) const {
  export_chrome_trace(os, {});
}

void FlightRecorder::export_chrome_trace(
    std::ostream& os, const std::vector<FlowArrowEvent>& flows) const {
  const std::vector<TraceEvent> evs = events();
  std::string out;
  out.reserve(evs.size() * 128 + flows.size() * 96 + 256);
  out += "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";

  bool first = true;
  const auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Flow arrows interleave with the instant events so the whole stream
  // stays non-decreasing in ts; `flows` arrives time-sorted from the
  // profiler. Binding id + shared cat/name is what makes Perfetto draw the
  // s→f arrow between the sender's and receiver's tracks.
  std::size_t fi = 0;
  const auto put_flows_until = [&](sim::TimePoint t, bool all) {
    for (; fi < flows.size() && (all || flows[fi].t <= t); ++fi) {
      const FlowArrowEvent& f = flows[fi];
      sep();
      out += "{\"name\": \"msg\", \"cat\": \"prof\", \"ph\": \"";
      out += f.begin ? 's' : 'f';
      out += '"';
      if (!f.begin) out += ", \"bp\": \"e\"";
      out += ", \"id\": ";
      out += std::to_string(f.id);
      out += ", \"ts\": ";
      append_ts(out, f.t);
      out += ", \"pid\": ";
      out += std::to_string(f.rank);
      out += ", \"tid\": 0}";
    }
  };

  // Metadata: name each rank's process track once.
  std::set<std::int16_t> ranks;
  for (const auto& e : evs) ranks.insert(e.rank);
  for (const std::int16_t r : ranks) {
    sep();
    out += "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": ";
    out += std::to_string(r);
    out += ", \"args\": {\"name\": \"rank";
    out += std::to_string(r);
    out += "\"}}";
  }

  for (const auto& e : evs) {
    put_flows_until(e.t, false);
    sep();
    out += "{\"name\": \"";
    out += to_string(e.kind);
    out += "\", \"ph\": \"i\", \"s\": \"p\", \"ts\": ";
    append_ts(out, e.t);
    out += ", \"pid\": ";
    out += std::to_string(e.rank);
    out += ", \"tid\": ";
    out += std::to_string(e.qpn);
    out += ", \"args\": {\"peer\": ";
    out += std::to_string(e.peer);
    out += ", \"a\": ";
    out += std::to_string(e.a);
    out += ", \"b\": ";
    out += std::to_string(e.b);
    out += "}}";

    // Counter tracks so Perfetto draws credits / backlog depth over time.
    if (is_credit_kind(e.kind)) {
      sep();
      out += "{\"name\": \"credits ";
      out += connection_label(e);
      out += "\", \"ph\": \"C\", \"ts\": ";
      append_ts(out, e.t);
      out += ", \"pid\": ";
      out += std::to_string(e.rank);
      out += ", \"args\": {\"credits\": ";
      out += std::to_string(e.b);
      out += "}}";
    } else if (is_backlog_kind(e.kind)) {
      sep();
      out += "{\"name\": \"backlog ";
      out += connection_label(e);
      out += "\", \"ph\": \"C\", \"ts\": ";
      append_ts(out, e.t);
      out += ", \"pid\": ";
      out += std::to_string(e.rank);
      out += ", \"args\": {\"depth\": ";
      out += std::to_string(e.a);
      out += "}}";
    }
  }
  put_flows_until(sim::TimePoint{0}, true);
  out += "\n]}\n";
  os << out;
}

bool FlightRecorder::export_chrome_trace(const std::string& path) const {
  return export_chrome_trace(path, {});
}

bool FlightRecorder::export_chrome_trace(
    const std::string& path, const std::vector<FlowArrowEvent>& flows) const {
  if (path == "-") {
    export_chrome_trace(std::cout, flows);
    std::cout.flush();
    return static_cast<bool>(std::cout);
  }
  std::ofstream f(path);
  if (!f) return false;
  export_chrome_trace(f, flows);
  return static_cast<bool>(f);
}

void FlightRecorder::export_credit_csv(std::ostream& os) const {
  os << "time_ns,rank,peer,event,credits,backlog_depth\n";
  // Last-known (credits, backlog depth) per directed connection, so each
  // row is a complete sample even though an event updates only one column.
  std::map<std::pair<std::int16_t, std::int16_t>,
           std::pair<std::int64_t, std::int64_t>>
      state;
  for (const auto& e : events()) {
    if (!is_credit_kind(e.kind) && !is_backlog_kind(e.kind)) continue;
    auto& [credits, depth] = state[{e.rank, e.peer}];
    if (is_credit_kind(e.kind)) {
      credits = e.b;
    } else {
      depth = static_cast<std::int64_t>(e.a);
      credits = e.b;
    }
    os << e.t.count() << ',' << e.rank << ',' << e.peer << ','
       << csv_escape(to_string(e.kind)) << ',' << credits << ',' << depth
       << '\n';
  }
}

bool FlightRecorder::export_credit_csv(const std::string& path) const {
  if (path == "-") {
    export_credit_csv(std::cout);
    std::cout.flush();
    return static_cast<bool>(std::cout);
  }
  std::ofstream f(path);
  if (!f) return false;
  export_credit_csv(f);
  return static_cast<bool>(f);
}

namespace detail {

thread_local constinit FlightRecorder* t_recorder = nullptr;

/// Shared object for threads no simulation has claimed. Construct-once,
/// never enabled afterwards: concurrent unbound threads only ever read
/// `enabled_` (false), so sharing it is race-free.
FlightRecorder& fallback_recorder() noexcept {
  static FlightRecorder instance;
  return instance;
}

}  // namespace detail

FlightRecorder* bind_recorder(FlightRecorder* r) noexcept {
  FlightRecorder* prev = detail::t_recorder;
  detail::t_recorder = r;
  return prev;
}

bool recorder_is_fallback() noexcept {
  return detail::t_recorder == nullptr ||
         detail::t_recorder == &detail::fallback_recorder();
}

void FlightRecorder::serialize_state(util::serial::BufWriter& w) const {
  w.b(enabled_);
  w.u64(ring_.size());  // capacity
  w.u64(recorded_);
  w.u64(dropped());
  for (std::uint64_t c : kind_counts_) w.u64(c);
  const std::vector<TraceEvent> evs = events();  // oldest first
  w.u64(evs.size());
  for (const TraceEvent& e : evs) {
    w.i64(e.t.count());
    w.u64(e.a);
    w.i64(e.b);
    w.u32(e.qpn);
    w.i32(e.rank);
    w.i32(e.peer);
    w.u8(static_cast<std::uint8_t>(e.kind));
  }
  const auto put_rs = [&w](const util::RunningStats& rs) {
    rs.visit_raw([&w](double v) { w.f64(v); });
  };
  const auto put_hist = [&w](const util::Histogram& h) {
    w.u64(h.total());
    w.u64(h.underflow());
    w.u64(h.overflow());
    w.u64(h.bucket_count());
    for (std::size_t i = 0; i < h.bucket_count(); ++i) w.u64(h.bucket(i));
  };
  put_rs(latency_.post_to_wire);
  put_rs(latency_.wire_to_ack);
  put_rs(latency_.backlog_residency);
  put_hist(latency_.post_to_wire_hist);
  put_hist(latency_.wire_to_ack_hist);
  put_hist(latency_.backlog_residency_hist);
}

}  // namespace mvflow::obs
