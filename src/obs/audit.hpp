// Invariant auditor (DESIGN.md §15): credit conservation, buffer
// accounting, backlog books and delivery-window checks, evaluated over
// flattened per-connection rows the MPI layer assembles (World::audit_pair).
//
// The *ledger* counters feeding these checks are maintained
// unconditionally — single integer adds on hot paths — so arming the
// auditor (MVFLOW_AUDIT=1) changes when checks run, never what the
// protocol computes. A failed check throws AuditError naming the
// connection, the section that failed, and the full counter row, so a
// chaos-campaign violation pinpoints the event that introduced it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace mvflow::obs {

/// Structured invariant violation: which check, which connection, and a
/// detail string carrying the counter deltas that broke it.
class AuditError : public std::runtime_error {
 public:
  AuditError(std::string section, int src, int dst, const std::string& detail);
  const std::string& section() const noexcept { return section_; }
  int src() const noexcept { return src_; }
  int dst() const noexcept { return dst_; }

 private:
  std::string section_;
  int src_ = -1;
  int dst_ = -1;
};

/// One direction of a connection (sender src → receiver dst), flattened.
/// Per DESIGN.md §15 the conservation equation reads:
///
///   credits + [consumed − delivered] + pending_return
///           + [granted − received]  == posted
///
/// with both bracketed in-flight terms >= 0. Callers skip the hardware
/// scheme (its MPI-level ledger is deliberately all-zero) and directions
/// whose endpoints are failed or mid-reconnect.
struct ConnCredit {
  int src = -1;
  int dst = -1;
  std::string scheme;                 ///< For the violation message.
  std::int64_t credits = 0;           ///< Sender's live credit count.
  std::uint64_t consumed = 0;         ///< Sender: credits spent on sends.
  std::uint64_t received = 0;         ///< Sender: credits learned from dst.
  std::int64_t pending_return = 0;    ///< Receiver: accumulated, not yet sent.
  std::uint64_t delivered = 0;        ///< Receiver: credited buffers processed.
  std::uint64_t granted = 0;          ///< Receiver: credits handed to the wire.
  std::int64_t posted = 0;            ///< Receiver's credited pool size.
};
void audit_credit_conservation(const ConnCredit& c);

/// Backlog liveness books for one sender: every send that entered the
/// backlog either dispatched, failed with the connection, or is still
/// queued. A leak here is the optimistic-famine bug class.
struct BacklogBooks {
  int src = -1;
  int dst = -1;
  std::uint64_t entered = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t failed = 0;
  std::size_t depth = 0;
};
void audit_backlog_books(const BacklogBooks& b);

/// Delivery window for one direction: the receiver must never apply a
/// sequence number the sender has not issued (duplicate filtering keeps
/// rx monotonic; rx > tx means an out-of-window / phantom delivery).
struct DeliveryWindow {
  int src = -1;
  int dst = -1;
  std::uint64_t tx_seq = 0;  ///< Sender: next seq to stamp.
  std::uint64_t rx_seq = 0;  ///< Receiver: next seq expected.
};
void audit_delivery_window(const DeliveryWindow& d);

/// Buffer accounting for one endpoint (owner's pool toward peer):
///   slots − retired == current_posted + control_reserve     (pool shape)
///   wqes_posted == recvq_depth + holds + completed + flushed (QP ledger)
/// The first catches a pre-posted buffer leaked or double-consumed across
/// decay / retransmit / reconnect; the second catches the QP losing or
/// duplicating a recv WQE. Callers skip endpoints mid-reconnect (the
/// fresh QP's ledger restarts at zero while the pool carries over).
struct EndpointBuffers {
  int owner = -1;
  int peer = -1;
  std::size_t slots = 0;
  std::size_t retired = 0;
  std::size_t control_reserve = 0;
  std::int64_t current_posted = 0;
  std::uint64_t wqes_posted = 0;
  std::uint64_t wqes_completed = 0;
  std::uint64_t wqes_flushed = 0;
  std::size_t recvq_depth = 0;
  bool assembly_holds_wqe = false;
};
void audit_buffer_accounting(const EndpointBuffers& e);

}  // namespace mvflow::obs
