#include "nas/kernel.hpp"

#include "mpi/communicator.hpp"
#include "util/check.hpp"

namespace mvflow::nas {

std::string_view to_string(App app) {
  switch (app) {
    case App::is: return "IS";
    case App::ft: return "FT";
    case App::lu: return "LU";
    case App::cg: return "CG";
    case App::mg: return "MG";
    case App::bt: return "BT";
    case App::sp: return "SP";
  }
  return "?";
}

std::optional<App> parse_app(std::string_view name) {
  if (name == "IS" || name == "is") return App::is;
  if (name == "FT" || name == "ft") return App::ft;
  if (name == "LU" || name == "lu") return App::lu;
  if (name == "CG" || name == "cg") return App::cg;
  if (name == "MG" || name == "mg") return App::mg;
  if (name == "BT" || name == "bt") return App::bt;
  if (name == "SP" || name == "sp") return App::sp;
  return std::nullopt;
}

int default_ranks(App app) {
  switch (app) {
    case App::bt:
    case App::sp:
      return 16;  // square process counts (paper: 16 processes on 8 nodes)
    default:
      return 8;
  }
}

KernelResult run_app(App app, mpi::WorldConfig wcfg, const NasParams& params) {
  // num_ranks <= 1 means "use the paper's process count for this app".
  if (wcfg.num_ranks <= 1) wcfg.num_ranks = default_ranks(app);
  mpi::World world(wcfg);

  AppOutcome outcome;
  const auto elapsed = world.run([&](mpi::Communicator& comm) {
    AppOutcome local;
    switch (app) {
      case App::is: local = run_is(comm, params); break;
      case App::ft: local = run_ft(comm, params); break;
      case App::lu: local = run_lu(comm, params); break;
      case App::cg: local = run_cg(comm, params); break;
      case App::mg: local = run_mg(comm, params); break;
      case App::bt: local = run_bt(comm, params); break;
      case App::sp: local = run_sp(comm, params); break;
    }
    if (comm.rank() == 0) outcome = local;
  });

  KernelResult result;
  result.app = app;
  result.verified = outcome.verified;
  result.metric = outcome.metric;
  result.elapsed = elapsed;
  result.stats = world.collect_stats();
  result.metrics = world.metrics().snapshot();
  return result;
}

}  // namespace mvflow::nas
