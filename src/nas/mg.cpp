// MG proxy: geometric multigrid V-cycles for a 3-D periodic Poisson
// problem on a 2x2x2 process grid (NAS MG is likewise periodic — and with
// periodic vertex grids the m and m/2 levels nest exactly).
//
// Communication shape (matches NAS MG): face halo exchanges at *every*
// grid level — multi-KB rendezvous-class messages at the finest level
// shrinking to tiny eager messages at the coarsest — plus a residual-norm
// allreduce per cycle. Smoother is damped Jacobi; restriction is full
// weighting at even fine points; prolongation is trilinear. The operator
// is singular on the periodic domain, so the right-hand side is projected
// to zero mean. Verified by monotone residual reduction of the V-cycles.
#include <array>
#include <cmath>
#include <vector>

#include "mpi/communicator.hpp"
#include "nas/common.hpp"
#include "nas/kernel.hpp"
#include "util/check.hpp"

namespace mvflow::nas {

namespace {

struct ProcGrid {
  int dims[3] = {1, 1, 1};
  int coord[3] = {0, 0, 0};
};

ProcGrid make_proc_grid(int np, int rank) {
  ProcGrid g;
  int n = np, axis = 0;
  while (n > 1) {
    util::check(n % 2 == 0, "MG needs a power-of-two rank count");
    g.dims[axis % 3] *= 2;
    n /= 2;
    ++axis;
  }
  g.coord[0] = rank % g.dims[0];
  g.coord[1] = (rank / g.dims[0]) % g.dims[1];
  g.coord[2] = rank / (g.dims[0] * g.dims[1]);
  return g;
}

int rank_of(const ProcGrid& g, int cx, int cy, int cz) {
  return (cz * g.dims[1] + cy) * g.dims[0] + cx;
}

/// One grid level: m interior cells per dimension plus a one-cell ghost
/// shell; linear storage (m+2)^3.
struct Level {
  std::size_t m = 0;
  std::vector<double> u, f, r;
  std::size_t idx(std::size_t x, std::size_t y, std::size_t z) const {
    return (z * (m + 2) + y) * (m + 2) + x;
  }
};

class MgSolver {
 public:
  MgSolver(mpi::Communicator& comm, const NasParams& p, std::size_t m_finest,
           int levels)
      : comm_(comm), params_(p), grid_(make_proc_grid(comm.size(), comm.rank())) {
    levels_.resize(static_cast<std::size_t>(levels));
    std::size_t m = m_finest;
    for (auto& lvl : levels_) {
      lvl.m = m;
      const std::size_t n = (m + 2) * (m + 2) * (m + 2);
      lvl.u.assign(n, 0.0);
      lvl.f.assign(n, 0.0);
      lvl.r.assign(n, 0.0);
      util::check(m % 2 == 0 || &lvl == &levels_.back(), "level size must halve");
      m /= 2;
    }
  }

  Level& finest() { return levels_.front(); }

  /// Sequential per-dimension halo exchange of full (m+2)^2 planes, which
  /// also fills edge and corner ghosts after all three dimensions ran.
  void halo_exchange(Level& lvl, std::vector<double>& field) {
    const std::size_t m = lvl.m, s = m + 2;
    // Persistent exchange buffers: reused across calls and levels so the
    // pin-down cache sees stable addresses (and real codes do the same).
    auto& out_lo = xbuf_[0];
    auto& out_hi = xbuf_[1];
    auto& in_lo = xbuf_[2];
    auto& in_hi = xbuf_[3];
    for (auto& b : xbuf_)
      if (b.size() < s * s) b.resize(s * s);
    for (int dim = 0; dim < 3; ++dim) {
      auto at = [&](std::size_t a, std::size_t b, std::size_t c) {
        // (a,b) iterate the plane, c is the exchanged dimension's index.
        std::size_t x = 0, y = 0, z = 0;
        if (dim == 0) { x = c; y = a; z = b; }
        if (dim == 1) { y = c; x = a; z = b; }
        if (dim == 2) { z = c; x = a; y = b; }
        return lvl.idx(x, y, z);
      };
      if (grid_.dims[dim] == 1) {
        // Single process along this dimension: periodic wrap is local.
        for (std::size_t b = 0; b < s; ++b)
          for (std::size_t a = 0; a < s; ++a) {
            field[at(a, b, 0)] = field[at(a, b, m)];
            field[at(a, b, m + 1)] = field[at(a, b, 1)];
          }
        continue;
      }
      // Periodic neighbors (may be the same rank when dims[dim] == 2, so
      // both directions must be posted concurrently with distinct tags).
      int c[3] = {grid_.coord[0], grid_.coord[1], grid_.coord[2]};
      c[dim] = (grid_.coord[dim] - 1 + grid_.dims[dim]) % grid_.dims[dim];
      const int minus = rank_of(grid_, c[0], c[1], c[2]);
      c[dim] = (grid_.coord[dim] + 1) % grid_.dims[dim];
      const int plus = rank_of(grid_, c[0], c[1], c[2]);
      const mpi::Tag tag_down = 300 + dim * 2;  // plane traveling toward -1
      const mpi::Tag tag_up = 301 + dim * 2;    // plane traveling toward +1
      for (std::size_t b = 0; b < s; ++b)
        for (std::size_t a = 0; a < s; ++a) {
          out_lo[b * s + a] = field[at(a, b, 1)];
          out_hi[b * s + a] = field[at(a, b, m)];
        }
      std::vector<mpi::RequestPtr> reqs;
      reqs.push_back(comm_.irecv_n(in_lo.data(), s * s, minus, tag_up));
      reqs.push_back(comm_.irecv_n(in_hi.data(), s * s, plus, tag_down));
      reqs.push_back(comm_.isend_n(out_lo.data(), s * s, minus, tag_down));
      reqs.push_back(comm_.isend_n(out_hi.data(), s * s, plus, tag_up));
      comm_.wait_all(reqs);
      for (std::size_t b = 0; b < s; ++b)
        for (std::size_t a = 0; a < s; ++a) {
          field[at(a, b, 0)] = in_lo[b * s + a];
          field[at(a, b, m + 1)] = in_hi[b * s + a];
        }
    }
  }

  void smooth(Level& lvl, int sweeps) {
    const std::size_t m = lvl.m;
    const double omega = 0.8;
    std::vector<double> next = lvl.u;
    for (int s = 0; s < sweeps; ++s) {
      halo_exchange(lvl, lvl.u);
      for (std::size_t z = 1; z <= m; ++z)
        for (std::size_t y = 1; y <= m; ++y)
          for (std::size_t x = 1; x <= m; ++x) {
            const double nb = lvl.u[lvl.idx(x - 1, y, z)] + lvl.u[lvl.idx(x + 1, y, z)] +
                              lvl.u[lvl.idx(x, y - 1, z)] + lvl.u[lvl.idx(x, y + 1, z)] +
                              lvl.u[lvl.idx(x, y, z - 1)] + lvl.u[lvl.idx(x, y, z + 1)];
            const double jac = (lvl.f[lvl.idx(x, y, z)] + nb) / 6.0;
            next[lvl.idx(x, y, z)] = (1 - omega) * lvl.u[lvl.idx(x, y, z)] + omega * jac;
          }
      std::swap(lvl.u, next);
      charge_points(comm_, params_, m * m * m);
    }
  }

  void residual(Level& lvl) {
    const std::size_t m = lvl.m;
    halo_exchange(lvl, lvl.u);
    for (std::size_t z = 1; z <= m; ++z)
      for (std::size_t y = 1; y <= m; ++y)
        for (std::size_t x = 1; x <= m; ++x) {
          const double nb = lvl.u[lvl.idx(x - 1, y, z)] + lvl.u[lvl.idx(x + 1, y, z)] +
                            lvl.u[lvl.idx(x, y - 1, z)] + lvl.u[lvl.idx(x, y + 1, z)] +
                            lvl.u[lvl.idx(x, y, z - 1)] + lvl.u[lvl.idx(x, y, z + 1)];
          lvl.r[lvl.idx(x, y, z)] =
              lvl.f[lvl.idx(x, y, z)] - (6.0 * lvl.u[lvl.idx(x, y, z)] - nb);
        }
    charge_points(comm_, params_, m * m * m);
  }

  /// Full-weighting restriction of the residual into the next level's f.
  void restrict_to(Level& fine, Level& coarse) {
    halo_exchange(fine, fine.r);
    const std::size_t mc = coarse.m;
    static const double w[3] = {0.25, 0.5, 0.25};
    for (std::size_t z = 1; z <= mc; ++z)
      for (std::size_t y = 1; y <= mc; ++y)
        for (std::size_t x = 1; x <= mc; ++x) {
          const std::size_t fx = 2 * x, fy = 2 * y, fz = 2 * z;
          double acc = 0;
          for (int dz = -1; dz <= 1; ++dz)
            for (int dy = -1; dy <= 1; ++dy)
              for (int dx = -1; dx <= 1; ++dx)
                acc += w[dx + 1] * w[dy + 1] * w[dz + 1] *
                       fine.r[fine.idx(static_cast<std::size_t>(
                                           static_cast<std::ptrdiff_t>(fx) + dx),
                                       static_cast<std::size_t>(
                                           static_cast<std::ptrdiff_t>(fy) + dy),
                                       static_cast<std::size_t>(
                                           static_cast<std::ptrdiff_t>(fz) + dz))];
          coarse.f[coarse.idx(x, y, z)] = 4.0 * acc;  // h^2 scaling (h_c = 2h_f)
          coarse.u[coarse.idx(x, y, z)] = 0.0;
        }
    charge_points(comm_, params_, mc * mc * mc * 4);
  }

  /// Trilinear prolongation of the coarse correction, added into fine.u.
  void prolong_from(Level& coarse, Level& fine) {
    halo_exchange(coarse, coarse.u);
    const std::size_t mf = fine.m;
    for (std::size_t z = 1; z <= mf; ++z)
      for (std::size_t y = 1; y <= mf; ++y)
        for (std::size_t x = 1; x <= mf; ++x) {
          // Fine point x sits at coarse coordinate x/2 (periodic nesting);
          // odd points interpolate, even points coincide.
          const double cx = static_cast<double>(x) / 2.0;
          const double cy = static_cast<double>(y) / 2.0;
          const double cz = static_cast<double>(z) / 2.0;
          const auto x0 = static_cast<std::size_t>(cx), y0 = static_cast<std::size_t>(cy),
                     z0 = static_cast<std::size_t>(cz);
          const double tx = cx - static_cast<double>(x0), ty = cy - static_cast<double>(y0),
                       tz = cz - static_cast<double>(z0);
          double acc = 0;
          for (int dz = 0; dz <= 1; ++dz)
            for (int dy = 0; dy <= 1; ++dy)
              for (int dx = 0; dx <= 1; ++dx) {
                const double wgt = (dx ? tx : 1 - tx) * (dy ? ty : 1 - ty) *
                                   (dz ? tz : 1 - tz);
                if (wgt == 0.0) continue;
                acc += wgt * coarse.u[coarse.idx(x0 + static_cast<std::size_t>(dx),
                                                 y0 + static_cast<std::size_t>(dy),
                                                 z0 + static_cast<std::size_t>(dz))];
              }
          fine.u[fine.idx(x, y, z)] += acc;
        }
    charge_points(comm_, params_, mf * mf * mf * 2);
  }

  void vcycle(std::size_t level) {
    Level& lvl = levels_[level];
    if (level + 1 == levels_.size()) {
      smooth(lvl, 8);
      return;
    }
    smooth(lvl, 2);
    residual(lvl);
    restrict_to(lvl, levels_[level + 1]);
    vcycle(level + 1);
    prolong_from(levels_[level + 1], lvl);
    smooth(lvl, 2);
  }

  double global_residual_norm() {
    residual(finest());
    double acc = 0;
    const std::size_t m = finest().m;
    for (std::size_t z = 1; z <= m; ++z)
      for (std::size_t y = 1; y <= m; ++y)
        for (std::size_t x = 1; x <= m; ++x) {
          const double v = finest().r[finest().idx(x, y, z)];
          acc += v * v;
        }
    return std::sqrt(comm_.allreduce_sum(acc));
  }

 private:
  mpi::Communicator& comm_;
  const NasParams& params_;
  ProcGrid grid_;
  std::vector<Level> levels_;
  std::vector<double> xbuf_[4];  // persistent halo exchange buffers
};

}  // namespace

AppOutcome run_mg(mpi::Communicator& comm, const NasParams& p) {
  const int cycles = p.iterations > 0 ? p.iterations : 4;
  // 8 ranks as 2x2x2 with 16^3 local blocks -> 32^3 global, 4 levels.
  MgSolver solver(comm, p, 16, 4);

  // Deterministic right-hand side from global coordinates.
  {
    Level& f0 = solver.finest();
    const ProcGrid g = make_proc_grid(comm.size(), comm.rank());
    for (std::size_t z = 1; z <= f0.m; ++z)
      for (std::size_t y = 1; y <= f0.m; ++y)
        for (std::size_t x = 1; x <= f0.m; ++x) {
          const auto gx = static_cast<double>(g.coord[0] * static_cast<int>(f0.m)) +
                          static_cast<double>(x);
          const auto gy = static_cast<double>(g.coord[1] * static_cast<int>(f0.m)) +
                          static_cast<double>(y);
          const auto gz = static_cast<double>(g.coord[2] * static_cast<int>(f0.m)) +
                          static_cast<double>(z);
          f0.f[f0.idx(x, y, z)] =
              std::sin(0.2 * gx) * std::cos(0.15 * gy) + 0.03 * std::sin(0.4 * gz);
        }
    // The periodic Laplacian is singular: project f onto mean zero so the
    // system is solvable and the residual can be driven to zero.
    double local_sum = 0;
    for (std::size_t z = 1; z <= f0.m; ++z)
      for (std::size_t y = 1; y <= f0.m; ++y)
        for (std::size_t x = 1; x <= f0.m; ++x) local_sum += f0.f[f0.idx(x, y, z)];
    const double total = comm.allreduce_sum(local_sum);
    const double npts = static_cast<double>(f0.m) * static_cast<double>(f0.m) *
                        static_cast<double>(f0.m) * comm.size();
    const double mean = total / npts;
    for (std::size_t z = 1; z <= f0.m; ++z)
      for (std::size_t y = 1; y <= f0.m; ++y)
        for (std::size_t x = 1; x <= f0.m; ++x) f0.f[f0.idx(x, y, z)] -= mean;
  }

  const double r0 = solver.global_residual_norm();
  double r = r0;
  bool monotone = true;
  for (int c = 0; c < cycles; ++c) {
    solver.vcycle(0);
    const double rn = solver.global_residual_norm();
    if (rn > r) monotone = false;
    r = rn;
  }

  AppOutcome out;
  out.metric = r / r0;
  out.verified = verify_all(comm, monotone && r < 0.1 * r0 && std::isfinite(r));
  return out;
}

}  // namespace mvflow::nas
