// Shared helpers for the NAS proxy kernels.
#pragma once

#include <cstdint>

#include "mpi/communicator.hpp"
#include "nas/kernel.hpp"

namespace mvflow::nas {

/// Charge simulated host time for `n` grid-point updates.
inline void charge_points(mpi::Communicator& comm, const NasParams& p,
                          std::size_t n) {
  comm.compute(sim::Duration(
      static_cast<std::int64_t>(p.compute_ns_per_point * static_cast<double>(n))));
}

/// Combine per-rank verification flags: true only if every rank verified.
inline bool verify_all(mpi::Communicator& comm, bool local_ok) {
  const std::int64_t sum = comm.allreduce_sum(local_ok ? std::int64_t{1} : 0);
  return sum == comm.size();
}

}  // namespace mvflow::nas
