// Shared pieces for the BT/SP ADI proxies: square process grid and face
// halo exchange for the stencil phase.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "mpi/communicator.hpp"
#include "util/check.hpp"

namespace mvflow::nas {

struct AdiGrid {
  std::size_t nx = 32, ny = 32, nz = 8;  // global
  int px = 0, py = 0;                     // process grid (square)
  int pi = 0, pj = 0;
  std::size_t nxl = 0, nyl = 0;           // local block (z is not split)
  std::size_t gi0 = 0, gj0 = 0;

  int rank_of(int i, int j) const { return j * px + i; }
};

inline AdiGrid make_adi_grid(int np, int rank) {
  AdiGrid g;
  const int side = static_cast<int>(std::lround(std::sqrt(static_cast<double>(np))));
  util::check(side * side == np, "BT/SP require a square process count");
  g.px = g.py = side;
  g.pi = rank % side;
  g.pj = rank / side;
  util::check(g.nx % static_cast<std::size_t>(side) == 0 &&
                  g.ny % static_cast<std::size_t>(side) == 0,
              "ADI grid must divide the process grid");
  g.nxl = g.nx / static_cast<std::size_t>(side);
  g.nyl = g.ny / static_cast<std::size_t>(side);
  g.gi0 = static_cast<std::size_t>(g.pi) * g.nxl;
  g.gj0 = static_cast<std::size_t>(g.pj) * g.nyl;
  return g;
}

/// Exchange the x- and y-direction boundary faces of `u` (ncomp values per
/// cell) with the four lateral neighbors. Ghosts for missing neighbors are
/// zeroed (Dirichlet). Faces are (nyl|nxl) x nz x ncomp doubles.
/// `gw/ge/gs/gn` receive the neighbor faces.
inline void adi_face_exchange(mpi::Communicator& comm, const AdiGrid& g,
                              const std::vector<double>& u, std::size_t ncomp,
                              std::vector<double>& gw, std::vector<double>& ge,
                              std::vector<double>& gs, std::vector<double>& gn) {
  const std::size_t nz = g.nz;
  auto at = [&](std::size_t k, std::size_t j, std::size_t i, std::size_t c) {
    return ((k * g.nyl + j) * g.nxl + i) * ncomp + c;
  };
  const std::size_t xface = g.nyl * nz * ncomp;
  const std::size_t yface = g.nxl * nz * ncomp;
  gw.assign(xface, 0.0);
  ge.assign(xface, 0.0);
  gs.assign(yface, 0.0);
  gn.assign(yface, 0.0);
  std::vector<double> sw(xface), se(xface), ss(yface), sn(yface);
  std::size_t o = 0;
  for (std::size_t k = 0; k < nz; ++k)
    for (std::size_t j = 0; j < g.nyl; ++j)
      for (std::size_t c = 0; c < ncomp; ++c) {
        sw[o] = u[at(k, j, 0, c)];
        se[o] = u[at(k, j, g.nxl - 1, c)];
        ++o;
      }
  o = 0;
  for (std::size_t k = 0; k < nz; ++k)
    for (std::size_t i = 0; i < g.nxl; ++i)
      for (std::size_t c = 0; c < ncomp; ++c) {
        ss[o] = u[at(k, 0, i, c)];
        sn[o] = u[at(k, g.nyl - 1, i, c)];
        ++o;
      }

  const mpi::Tag te = 401, tw = 402, tn = 403, ts = 404;
  std::vector<mpi::RequestPtr> reqs;
  if (g.pi > 0) {
    reqs.push_back(comm.irecv_n(gw.data(), xface, g.rank_of(g.pi - 1, g.pj), te));
    reqs.push_back(comm.isend_n(sw.data(), xface, g.rank_of(g.pi - 1, g.pj), tw));
  }
  if (g.pi + 1 < g.px) {
    reqs.push_back(comm.irecv_n(ge.data(), xface, g.rank_of(g.pi + 1, g.pj), tw));
    reqs.push_back(comm.isend_n(se.data(), xface, g.rank_of(g.pi + 1, g.pj), te));
  }
  if (g.pj > 0) {
    reqs.push_back(comm.irecv_n(gs.data(), yface, g.rank_of(g.pi, g.pj - 1), tn));
    reqs.push_back(comm.isend_n(ss.data(), yface, g.rank_of(g.pi, g.pj - 1), ts));
  }
  if (g.pj + 1 < g.py) {
    reqs.push_back(comm.irecv_n(gn.data(), yface, g.rank_of(g.pi, g.pj + 1), ts));
    reqs.push_back(comm.isend_n(sn.data(), yface, g.rank_of(g.pi, g.pj + 1), tn));
  }
  comm.wait_all(reqs);
}

}  // namespace mvflow::nas
