// BT proxy: ADI with block-tridiagonal line solves on a square process
// grid (the paper runs BT on 16 processes).
//
// Communication shape (matches NAS BT's character): per iteration, face
// halo exchanges for the stencil phase, then pipelined line solves along
// x and y — the Thomas-algorithm carry for every line in a k-plane is
// batched into one message per processor stage, giving a moderate stream
// of small messages in both pipeline directions, then a fully local z
// solve. The "block" structure is modeled as kComp independent coupled
// components per cell (3x the data and compute of a scalar solve; the
// true 5x5 block coupling is simplified — see DESIGN.md).
//
// Verified by recomputing the tridiagonal line residuals with exchanged
// boundary values after each sweep: |T x - r| must vanish to rounding.
#include <cmath>
#include <vector>

#include "mpi/communicator.hpp"
#include "nas/adi.hpp"
#include "nas/common.hpp"
#include "nas/kernel.hpp"

namespace mvflow::nas {

namespace {

constexpr std::size_t kComp = 3;  // "block" components per cell

// Tridiagonal coefficients along any line, by global index. Diagonally
// dominant, so elimination without pivoting is stable.
double coef_b(std::size_t gidx, std::size_t c) {
  return 4.0 + 0.01 * static_cast<double>(gidx % 5) + 0.1 * static_cast<double>(c);
}
constexpr double kA = -1.0;  // sub-diagonal
constexpr double kC = -1.0;  // super-diagonal

constexpr mpi::Tag kFwd = 411, kBwd = 412, kVer = 413;

}  // namespace

AppOutcome run_bt(mpi::Communicator& comm, const NasParams& p) {
  const AdiGrid g = make_adi_grid(comm.size(), comm.rank());
  const int iterations = p.iterations > 0 ? p.iterations : 8;
  const std::size_t nz = g.nz;

  auto at = [&](std::size_t k, std::size_t j, std::size_t i, std::size_t c) {
    return ((k * g.nyl + j) * g.nxl + i) * kComp + c;
  };
  const std::size_t cells = nz * g.nyl * g.nxl * kComp;
  std::vector<double> u(cells), rhs(cells), sol(cells);
  std::vector<double> cp(cells), dp(cells);  // Thomas C', D'
  for (std::size_t k = 0; k < nz; ++k)
    for (std::size_t j = 0; j < g.nyl; ++j)
      for (std::size_t i = 0; i < g.nxl; ++i)
        for (std::size_t c = 0; c < kComp; ++c)
          u[at(k, j, i, c)] = 0.1 * std::sin(0.3 * static_cast<double>(g.gi0 + i) +
                                             0.2 * static_cast<double>(g.gj0 + j) +
                                             0.1 * static_cast<double>(k + c));

  std::vector<double> gw, ge, gs, gn;
  bool ok = true;
  double max_line_residual = 0.0;

  // Pipelined Thomas along x (dir=0) or y (dir=1) for every line and
  // component, batched per k-plane. Planes alternate solve direction
  // (even k: left-to-right, odd k: right-to-left — valid because the
  // off-diagonals are symmetric), which keeps the pipeline traffic
  // bidirectional within one sweep the way NAS BT's multipartitioning
  // does, so credit return piggybacks and the burst depth stays moderate.
  auto sweep = [&](int dir) {
    const bool along_x = dir == 0;
    const std::size_t len = along_x ? g.nxl : g.nyl;      // local line length
    const std::size_t lanes = along_x ? g.nyl : g.nxl;    // lines per plane
    const int me_stage = along_x ? g.pi : g.pj;
    const int stages = along_x ? g.px : g.py;
    const std::size_t goff = along_x ? g.gi0 : g.gj0;
    const std::size_t glen = along_x ? g.nx : g.ny;
    (void)goff;
    auto cell = [&](std::size_t k, std::size_t lane, std::size_t s, std::size_t c) {
      return along_x ? at(k, lane, s, c) : at(k, s, lane, c);
    };
    auto stage_rank = [&](int st) {
      return along_x ? g.rank_of(st, g.pj) : g.rank_of(g.pi, st);
    };
    auto reversed = [](std::size_t k) { return (k & 1) != 0; };
    // Logical stage position and physical neighbors per plane direction.
    auto my_pos = [&](bool rev) { return rev ? stages - 1 - me_stage : me_stage; };
    auto logical_prev = [&](bool rev) { return rev ? me_stage + 1 : me_stage - 1; };
    auto logical_next = [&](bool rev) { return rev ? me_stage - 1 : me_stage + 1; };

    const std::size_t carry_n = lanes * kComp * 2;  // (C', D') per lane/comp
    std::vector<double> carry(carry_n, 0.0);

    // Forward elimination, pipelined toward the logical end of each line.
    for (std::size_t k = 0; k < nz; ++k) {
      const bool rev = reversed(k);
      if (my_pos(rev) > 0)
        comm.recv_n(carry.data(), carry_n, stage_rank(logical_prev(rev)), kFwd);
      else
        std::fill(carry.begin(), carry.end(), 0.0);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        for (std::size_t c = 0; c < kComp; ++c) {
          double cprev = carry[(lane * kComp + c) * 2];
          double dprev = carry[(lane * kComp + c) * 2 + 1];
          for (std::size_t tl = 0; tl < len; ++tl) {
            const std::size_t t =
                static_cast<std::size_t>(my_pos(rev)) * len + tl;  // logical
            const std::size_t sp = rev ? len - 1 - tl : tl;        // physical
            const std::size_t gphys = rev ? glen - 1 - t : t;
            const double b = coef_b(gphys, c);
            const double a = t == 0 ? 0.0 : kA;
            const double denom = b - a * cprev;
            const double cv = kC / denom;
            const double dv = (rhs[cell(k, lane, sp, c)] - a * dprev) / denom;
            cp[cell(k, lane, sp, c)] = cv;
            dp[cell(k, lane, sp, c)] = dv;
            cprev = cv;
            dprev = dv;
          }
          carry[(lane * kComp + c) * 2] = cprev;
          carry[(lane * kComp + c) * 2 + 1] = dprev;
        }
      }
      charge_points(comm, p, lanes * len * kComp * 2);
      if (my_pos(rev) + 1 < stages)
        comm.send_n(carry.data(), carry_n, stage_rank(logical_next(rev)), kFwd);
    }

    // Backward substitution, pipelined toward the logical start.
    const std::size_t back_n = lanes * kComp;  // x of the next stage's first row
    std::vector<double> back(back_n, 0.0);
    for (std::size_t k = nz; k-- > 0;) {
      const bool rev = reversed(k);
      if (my_pos(rev) + 1 < stages)
        comm.recv_n(back.data(), back_n, stage_rank(logical_next(rev)), kBwd);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        for (std::size_t c = 0; c < kComp; ++c) {
          double xnext = (my_pos(rev) + 1 < stages) ? back[lane * kComp + c] : 0.0;
          const bool last_global = my_pos(rev) + 1 == stages;
          for (std::size_t tl = len; tl-- > 0;) {
            const std::size_t sp = rev ? len - 1 - tl : tl;
            const bool last_row = last_global && tl == len - 1;
            const double x = last_row
                                 ? dp[cell(k, lane, sp, c)]
                                 : dp[cell(k, lane, sp, c)] -
                                       cp[cell(k, lane, sp, c)] * xnext;
            sol[cell(k, lane, sp, c)] = x;
            xnext = x;
          }
          back[lane * kComp + c] = xnext;  // my logically-first row
        }
      }
      charge_points(comm, p, lanes * len * kComp);
      if (my_pos(rev) > 0)
        comm.send_n(back.data(), back_n, stage_rank(logical_prev(rev)), kBwd);
    }

    // ---- verification of the line systems (un-charged) ----
    // Exchange solution boundary values along the sweep direction and
    // recompute |T x - r| locally.
    std::vector<double> xlo(lanes * nz * kComp, 0.0), xhi(lanes * nz * kComp, 0.0);
    std::vector<double> slo(lanes * nz * kComp), shi(lanes * nz * kComp);
    std::size_t o = 0;
    for (std::size_t k = 0; k < nz; ++k)
      for (std::size_t lane = 0; lane < lanes; ++lane)
        for (std::size_t c = 0; c < kComp; ++c) {
          slo[o] = sol[cell(k, lane, 0, c)];
          shi[o] = sol[cell(k, lane, len - 1, c)];
          ++o;
        }
    std::vector<mpi::RequestPtr> reqs;
    if (me_stage > 0) {
      reqs.push_back(comm.irecv_n(xlo.data(), xlo.size(), stage_rank(me_stage - 1), kVer));
      reqs.push_back(comm.isend_n(slo.data(), slo.size(), stage_rank(me_stage - 1), kVer));
    }
    if (me_stage + 1 < stages) {
      reqs.push_back(comm.irecv_n(xhi.data(), xhi.size(), stage_rank(me_stage + 1), kVer));
      reqs.push_back(comm.isend_n(shi.data(), shi.size(), stage_rank(me_stage + 1), kVer));
    }
    comm.wait_all(reqs);
    o = 0;
    for (std::size_t k = 0; k < nz; ++k)
      for (std::size_t lane = 0; lane < lanes; ++lane)
        for (std::size_t c = 0; c < kComp; ++c, ++o)
          for (std::size_t s = 0; s < len; ++s) {
            const double xm = s > 0 ? sol[cell(k, lane, s - 1, c)]
                              : me_stage > 0 ? xlo[o]
                                             : 0.0;
            const double xp = s + 1 < len ? sol[cell(k, lane, s + 1, c)]
                              : me_stage + 1 < stages ? xhi[o]
                                                      : 0.0;
            const double a = (me_stage == 0 && s == 0) ? 0.0 : kA;
            const double cc = (me_stage + 1 == stages && s == len - 1) ? 0.0 : kC;
            const double resid = coef_b(goff + s, c) * sol[cell(k, lane, s, c)] +
                                 a * xm + cc * xp - rhs[cell(k, lane, s, c)];
            max_line_residual = std::max(max_line_residual, std::abs(resid));
          }
  };

  for (int it = 0; it < iterations; ++it) {
    // Stencil phase: faces + local rhs.
    adi_face_exchange(comm, g, u, kComp, gw, ge, gs, gn);
    for (std::size_t k = 0; k < nz; ++k)
      for (std::size_t j = 0; j < g.nyl; ++j)
        for (std::size_t i = 0; i < g.nxl; ++i)
          for (std::size_t c = 0; c < kComp; ++c) {
            const double west =
                i > 0 ? u[at(k, j, i - 1, c)] : gw[(k * g.nyl + j) * kComp + c];
            const double east = i + 1 < g.nxl ? u[at(k, j, i + 1, c)]
                                              : ge[(k * g.nyl + j) * kComp + c];
            const double south =
                j > 0 ? u[at(k, j - 1, i, c)] : gs[(k * g.nxl + i) * kComp + c];
            const double north = j + 1 < g.nyl ? u[at(k, j + 1, i, c)]
                                               : gn[(k * g.nxl + i) * kComp + c];
            rhs[at(k, j, i, c)] = 1.0 + 0.05 * (west + east + south + north) -
                                  0.2 * u[at(k, j, i, c)];
          }
    charge_points(comm, p, cells * 2);

    sweep(0);  // x lines
    for (std::size_t n = 0; n < cells; ++n) u[n] = 0.6 * u[n] + 0.1 * sol[n];
    sweep(1);  // y lines
    for (std::size_t n = 0; n < cells; ++n) u[n] = 0.6 * u[n] + 0.1 * sol[n];

    // z solve: fully local tridiagonal along z.
    for (std::size_t j = 0; j < g.nyl; ++j)
      for (std::size_t i = 0; i < g.nxl; ++i)
        for (std::size_t c = 0; c < kComp; ++c) {
          double cprev = 0, dprev = 0;
          for (std::size_t k = 0; k < nz; ++k) {
            const double b = coef_b(k, c);
            const double a = k == 0 ? 0.0 : kA;
            const double denom = b - a * cprev;
            cp[at(k, j, i, c)] = kC / denom;
            dp[at(k, j, i, c)] = (rhs[at(k, j, i, c)] - a * dprev) / denom;
            cprev = cp[at(k, j, i, c)];
            dprev = dp[at(k, j, i, c)];
          }
          double xnext = 0;
          for (std::size_t k = nz; k-- > 0;) {
            const double x = k == nz - 1 ? dp[at(k, j, i, c)]
                                         : dp[at(k, j, i, c)] -
                                               cp[at(k, j, i, c)] * xnext;
            sol[at(k, j, i, c)] = x;
            xnext = x;
          }
        }
    for (std::size_t n = 0; n < cells; ++n) u[n] = 0.8 * u[n] + 0.05 * sol[n];
    charge_points(comm, p, cells * 3);
  }

  double checksum = 0;
  for (double v : u) checksum += v;
  checksum = comm.allreduce_sum(checksum);
  ok = ok && max_line_residual < 1e-9 && std::isfinite(checksum);

  AppOutcome out;
  out.metric = checksum;
  out.verified = verify_all(comm, ok);
  return out;
}

}  // namespace mvflow::nas
