// IS proxy: parallel bucket sort of integer keys.
//
// Communication shape per iteration (matches NAS IS): an allreduce of the
// bucket histogram (multi-KB, rendezvous) followed by an alltoallv of the
// keys themselves (large blocks, rendezvous), then purely local sorting.
// Verified by global sortedness across rank boundaries and exact key-count
// conservation.
#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "mpi/communicator.hpp"
#include "nas/common.hpp"
#include "nas/kernel.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mvflow::nas {

namespace {
constexpr std::uint32_t kMaxKey = 1u << 19;
constexpr std::size_t kBuckets = 1024;
}  // namespace

AppOutcome run_is(mpi::Communicator& comm, const NasParams& p) {
  const int np = comm.size();
  const auto me = static_cast<std::size_t>(comm.rank());
  const std::size_t keys_per_rank = static_cast<std::size_t>(8192) * p.scale;
  const int iterations = p.iterations > 0 ? p.iterations : 10;

  util::Xoshiro256 rng(p.seed * 1000003 + me);
  bool ok = true;
  std::int64_t total_sorted = 0;
  // Persistent exchange buffers (stable addresses for the pin-down cache).
  std::vector<std::uint32_t> sendbuf, recvbuf;
  std::vector<std::int64_t> global(kBuckets);

  // Note: the loop bound must not depend on per-rank state (`ok`), or the
  // ranks would diverge in their collective sequences.
  for (int iter = 0; iter < iterations; ++iter) {
    // Fresh keys each iteration (NAS IS perturbs between iterations).
    std::vector<std::uint32_t> keys(keys_per_rank);
    for (auto& k : keys) k = static_cast<std::uint32_t>(rng.below(kMaxKey));

    // Local histogram over the buckets.
    std::vector<std::int64_t> hist(kBuckets, 0);
    const std::uint32_t bucket_width = kMaxKey / kBuckets;
    for (auto k : keys) ++hist[k / bucket_width];
    charge_points(comm, p, keys.size());

    // Global histogram -> bucket ownership split (balanced prefix).
    std::copy(hist.begin(), hist.end(), global.begin());
    comm.allreduce(std::span<std::int64_t>(global), mpi::OpSum{});
    const std::int64_t total = std::accumulate(global.begin(), global.end(),
                                               std::int64_t{0});
    std::vector<std::size_t> first_bucket(static_cast<std::size_t>(np) + 1, 0);
    {
      const std::int64_t per_rank = (total + np - 1) / np;
      std::int64_t acc = 0;
      std::size_t r = 1;
      for (std::size_t b = 0; b < kBuckets && r < static_cast<std::size_t>(np); ++b) {
        acc += global[b];
        if (acc >= per_rank * static_cast<std::int64_t>(r)) first_bucket[r++] = b + 1;
      }
      for (; r <= static_cast<std::size_t>(np); ++r) first_bucket[r] = kBuckets;
    }
    auto owner_of_bucket = [&](std::size_t b) {
      for (std::size_t r = 0; r < static_cast<std::size_t>(np); ++r)
        if (b >= first_bucket[r] && b < first_bucket[r + 1]) return r;
      return static_cast<std::size_t>(np) - 1;
    };

    // Partition keys by destination rank (buckets are contiguous ranges,
    // so sorting by bucket groups them by destination too).
    std::vector<std::vector<std::uint32_t>> outgoing(static_cast<std::size_t>(np));
    for (auto k : keys) outgoing[owner_of_bucket(k / bucket_width)].push_back(k);
    charge_points(comm, p, keys.size());

    // Exchange counts, then the keys (alltoallv).
    std::vector<std::int64_t> send_count_keys(static_cast<std::size_t>(np));
    for (std::size_t r = 0; r < outgoing.size(); ++r)
      send_count_keys[r] = static_cast<std::int64_t>(outgoing[r].size());
    std::vector<std::int64_t> recv_count_keys(static_cast<std::size_t>(np));
    comm.alltoall(std::as_bytes(std::span<const std::int64_t>(send_count_keys)),
                  std::as_writable_bytes(std::span<std::int64_t>(recv_count_keys)),
                  sizeof(std::int64_t));

    std::vector<std::size_t> scounts(static_cast<std::size_t>(np)),
        sdispls(static_cast<std::size_t>(np)), rcounts(static_cast<std::size_t>(np)),
        rdispls(static_cast<std::size_t>(np));
    sendbuf.clear();
    sendbuf.reserve(keys.size());
    std::size_t soff = 0, roff = 0;
    for (std::size_t r = 0; r < static_cast<std::size_t>(np); ++r) {
      scounts[r] = outgoing[r].size() * sizeof(std::uint32_t);
      sdispls[r] = soff;
      soff += scounts[r];
      sendbuf.insert(sendbuf.end(), outgoing[r].begin(), outgoing[r].end());
      rcounts[r] = static_cast<std::size_t>(recv_count_keys[r]) * sizeof(std::uint32_t);
      rdispls[r] = roff;
      roff += rcounts[r];
    }
    if (recvbuf.size() < roff / sizeof(std::uint32_t))
      recvbuf.resize(roff / sizeof(std::uint32_t));
    recvbuf.resize(roff / sizeof(std::uint32_t));
    comm.alltoallv(reinterpret_cast<const std::byte*>(sendbuf.data()), scounts,
                   sdispls, reinterpret_cast<std::byte*>(recvbuf.data()), rcounts,
                   rdispls);

    // Local sort of the received keys.
    std::sort(recvbuf.begin(), recvbuf.end());
    charge_points(comm, p, recvbuf.size() * 17);  // ~n log n

    // ---- verification (not charged to simulated compute) ----
    // (a) locally sorted is guaranteed by std::sort; check boundaries:
    //     my max must be <= right neighbor's min (over non-empty ranks).
    ok = ok && std::is_sorted(recvbuf.begin(), recvbuf.end());
    const std::uint32_t my_min = recvbuf.empty() ? kMaxKey : recvbuf.front();
    const std::uint32_t my_max = recvbuf.empty() ? 0 : recvbuf.back();
    std::vector<std::uint32_t> mins(static_cast<std::size_t>(np)),
        maxs(static_cast<std::size_t>(np));
    comm.allgather(std::as_bytes(std::span<const std::uint32_t>(&my_min, 1)),
                   std::as_writable_bytes(std::span<std::uint32_t>(mins)));
    comm.allgather(std::as_bytes(std::span<const std::uint32_t>(&my_max, 1)),
                   std::as_writable_bytes(std::span<std::uint32_t>(maxs)));
    std::uint32_t running_max = 0;
    for (std::size_t r = 0; r < static_cast<std::size_t>(np); ++r) {
      if (mins[r] == kMaxKey) continue;  // empty rank
      if (mins[r] < running_max) ok = false;
      running_max = std::max(running_max, maxs[r]);
    }
    // (b) no key lost or duplicated.
    const auto got = comm.allreduce_sum(static_cast<std::int64_t>(recvbuf.size()));
    if (got != static_cast<std::int64_t>(keys_per_rank) * np) ok = false;
    total_sorted += static_cast<std::int64_t>(recvbuf.size());
  }

  AppOutcome out;
  out.verified = verify_all(comm, ok);
  out.metric = static_cast<double>(total_sorted);
  return out;
}

}  // namespace mvflow::nas
