// FT proxy: 3-D FFT with slab decomposition.
//
// Communication shape per iteration (matches NAS FT): two global
// transposes implemented as alltoall with large blocks (tens of KB ->
// rendezvous / RDMA path), no small-message pressure. Each iteration
// performs a forward 3-D FFT, multiplies the spectrum by a unit-modulus
// evolution factor, and transforms back. Verified by Parseval energy
// conservation every iteration and by recovering the initial field exactly
// (inverse evolution) at the end.
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "mpi/communicator.hpp"
#include "nas/common.hpp"
#include "nas/kernel.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mvflow::nas {

namespace {

using Cx = std::complex<double>;

/// In-place iterative radix-2 FFT over `line` (length must be a power of
/// two). `inverse` applies the conjugate transform with 1/n scaling.
void fft1d(std::vector<Cx>& line, bool inverse) {
  const std::size_t n = line.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(line[i], line[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2 * std::numbers::pi / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const Cx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Cx w(1.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cx u = line[i + k];
        const Cx v = line[i + k + len / 2] * w;
        line[i + k] = u + v;
        line[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& c : line) c /= static_cast<double>(n);
  }
}

struct FtGrid {
  std::size_t nx, ny, nz;      // global dims (powers of two)
  std::size_t nz_loc, nx_loc;  // slab thicknesses
};

}  // namespace

AppOutcome run_ft(mpi::Communicator& comm, const NasParams& p) {
  const auto np = static_cast<std::size_t>(comm.size());
  const auto me = static_cast<std::size_t>(comm.rank());
  FtGrid g;
  g.nx = 32;
  g.ny = 32;
  g.nz = 8 * np;  // keeps slabs valid for any power-of-two-friendly np
  g.nz_loc = g.nz / np;
  g.nx_loc = g.nx / np;
  util::check(g.nx % np == 0 && g.nz % np == 0, "FT grid must divide ranks");
  const int iterations = p.iterations > 0 ? p.iterations : 6;

  const std::size_t local_n = g.nx * g.ny * g.nz_loc;  // z-slab size
  // a: z-slab layout [z_loc][y][x] (x contiguous)
  std::vector<Cx> a(local_n);
  util::Xoshiro256 rng(p.seed * 31 + me);
  for (auto& c : a) c = Cx(rng.uniform() - 0.5, rng.uniform() - 0.5);
  const std::vector<Cx> original = a;

  double energy0 = 0;
  for (const auto& c : a) energy0 += std::norm(c);
  energy0 = comm.allreduce_sum(energy0);

  // x-slab layout [x_loc][y][z] (z contiguous)
  std::vector<Cx> b(g.nx_loc * g.ny * g.nz);
  const std::size_t block = g.nx_loc * g.ny * g.nz_loc;  // per-pair elements
  std::vector<Cx> packed(block * np), unpacked(block * np);

  auto idx_a = [&](std::size_t z, std::size_t y, std::size_t x) {
    return (z * g.ny + y) * g.nx + x;
  };
  auto idx_b = [&](std::size_t x, std::size_t y, std::size_t z) {
    return (x * g.ny + y) * g.nz + z;
  };

  // Transpose z-slabs -> x-slabs via alltoall.
  auto transpose_fwd = [&] {
    for (std::size_t r = 0; r < np; ++r) {
      Cx* out = packed.data() + r * block;
      std::size_t o = 0;
      for (std::size_t xl = 0; xl < g.nx_loc; ++xl)
        for (std::size_t y = 0; y < g.ny; ++y)
          for (std::size_t zl = 0; zl < g.nz_loc; ++zl)
            out[o++] = a[idx_a(zl, y, r * g.nx_loc + xl)];
    }
    comm.alltoall(std::as_bytes(std::span<const Cx>(packed)),
                  std::as_writable_bytes(std::span<Cx>(unpacked)),
                  block * sizeof(Cx));
    for (std::size_t r = 0; r < np; ++r) {
      const Cx* in = unpacked.data() + r * block;
      std::size_t o = 0;
      for (std::size_t xl = 0; xl < g.nx_loc; ++xl)
        for (std::size_t y = 0; y < g.ny; ++y)
          for (std::size_t zl = 0; zl < g.nz_loc; ++zl)
            b[idx_b(xl, y, r * g.nz_loc + zl)] = in[o++];
    }
  };
  auto transpose_bwd = [&] {
    for (std::size_t r = 0; r < np; ++r) {
      Cx* out = packed.data() + r * block;
      std::size_t o = 0;
      for (std::size_t xl = 0; xl < g.nx_loc; ++xl)
        for (std::size_t y = 0; y < g.ny; ++y)
          for (std::size_t zl = 0; zl < g.nz_loc; ++zl)
            out[o++] = b[idx_b(xl, y, r * g.nz_loc + zl)];
    }
    comm.alltoall(std::as_bytes(std::span<const Cx>(packed)),
                  std::as_writable_bytes(std::span<Cx>(unpacked)),
                  block * sizeof(Cx));
    for (std::size_t r = 0; r < np; ++r) {
      const Cx* in = unpacked.data() + r * block;
      std::size_t o = 0;
      for (std::size_t xl = 0; xl < g.nx_loc; ++xl)
        for (std::size_t y = 0; y < g.ny; ++y)
          for (std::size_t zl = 0; zl < g.nz_loc; ++zl)
            a[idx_a(zl, y, r * g.nx_loc + xl)] = in[o++];
    }
  };

  std::vector<Cx> line;
  auto fft_local_xy = [&](bool inverse) {
    // x: contiguous lines in a.
    line.resize(g.nx);
    for (std::size_t z = 0; z < g.nz_loc; ++z)
      for (std::size_t y = 0; y < g.ny; ++y) {
        const std::size_t base = idx_a(z, y, 0);
        for (std::size_t x = 0; x < g.nx; ++x) line[x] = a[base + x];
        fft1d(line, inverse);
        for (std::size_t x = 0; x < g.nx; ++x) a[base + x] = line[x];
      }
    // y: stride nx.
    line.resize(g.ny);
    for (std::size_t z = 0; z < g.nz_loc; ++z)
      for (std::size_t x = 0; x < g.nx; ++x) {
        for (std::size_t y = 0; y < g.ny; ++y) line[y] = a[idx_a(z, y, x)];
        fft1d(line, inverse);
        for (std::size_t y = 0; y < g.ny; ++y) a[idx_a(z, y, x)] = line[y];
      }
  };
  auto fft_local_z = [&](bool inverse) {
    line.resize(g.nz);
    for (std::size_t x = 0; x < g.nx_loc; ++x)
      for (std::size_t y = 0; y < g.ny; ++y) {
        const std::size_t base = idx_b(x, y, 0);
        for (std::size_t z = 0; z < g.nz; ++z) line[z] = b[base + z];
        fft1d(line, inverse);
        for (std::size_t z = 0; z < g.nz; ++z) b[base + z] = line[z];
      }
  };

  // Unit-modulus evolution factor applied in spectral (x-slab) space.
  auto evolve = [&](double direction) {
    for (std::size_t xl = 0; xl < g.nx_loc; ++xl) {
      const auto kx = static_cast<double>(me * g.nx_loc + xl);
      for (std::size_t y = 0; y < g.ny; ++y)
        for (std::size_t z = 0; z < g.nz; ++z) {
          const double phase = direction * 2 * std::numbers::pi *
                               (kx + static_cast<double>(y) + static_cast<double>(z)) /
                               64.0;
          b[idx_b(xl, y, z)] *= Cx(std::cos(phase), std::sin(phase));
        }
    }
  };

  bool ok = true;
  const auto flops_guess = local_n * 30;
  for (int it = 0; it < iterations; ++it) {
    fft_local_xy(false);
    charge_points(comm, p, flops_guess);
    transpose_fwd();
    fft_local_z(false);
    evolve(+1.0);
    charge_points(comm, p, flops_guess / 2);
    fft_local_z(true);
    transpose_bwd();
    fft_local_xy(true);
    charge_points(comm, p, flops_guess);

    // Parseval: the evolution factor has unit modulus, so energy holds.
    double e = 0;
    for (const auto& c : a) e += std::norm(c);
    e = comm.allreduce_sum(e);
    if (std::abs(e - energy0) > 1e-6 * energy0) ok = false;
  }

  // Undo the accumulated evolution and compare with the original field:
  // full forward 3-D FFT, divide out phase^iterations, full inverse.
  fft_local_xy(false);
  transpose_fwd();
  fft_local_z(false);
  for (int it = 0; it < iterations; ++it) evolve(-1.0);
  fft_local_z(true);
  transpose_bwd();
  fft_local_xy(true);

  double max_err = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    max_err = std::max(max_err, std::abs(a[i] - original[i]));
  max_err = comm.allreduce_max(max_err);

  AppOutcome out;
  out.metric = max_err;
  out.verified = verify_all(comm, ok && max_err < 1e-9);
  return out;
}

}  // namespace mvflow::nas
