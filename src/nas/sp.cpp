// SP proxy: ADI with scalar pentadiagonal line solves on a square process
// grid (the paper runs SP on 16 processes).
//
// Same orchestration as BT but with a 5-band scalar system per line: the
// pipelined elimination carries the two trailing normalized rows (6
// doubles per line) downstream and two solution values upstream, so the
// per-stage messages are smaller than BT's while the stage count and
// burstiness match. Verified by recomputing the pentadiagonal residuals
// with a 2-deep boundary exchange after each sweep.
#include <cmath>
#include <vector>

#include "mpi/communicator.hpp"
#include "nas/adi.hpp"
#include "nas/common.hpp"
#include "nas/kernel.hpp"

namespace mvflow::nas {

namespace {

// Pentadiagonal coefficients: strictly diagonally dominant
// (|b| = 6 > 1 + 1 + 0.5 + 0.5), so elimination is stable unpivoted.
constexpr double kE = -0.5;  // x_{i-2}
constexpr double kA = -1.0;  // x_{i-1}
constexpr double kC = -1.0;  // x_{i+1}
constexpr double kF = -0.5;  // x_{i+2}
double coef_b(std::size_t gidx) {
  return 6.0 + 0.02 * static_cast<double>(gidx % 7);
}

constexpr mpi::Tag kFwd = 421, kBwd = 422, kVer = 423;

}  // namespace

AppOutcome run_sp(mpi::Communicator& comm, const NasParams& p) {
  const AdiGrid g = make_adi_grid(comm.size(), comm.rank());
  const int iterations = p.iterations > 0 ? p.iterations : 8;
  const std::size_t nz = g.nz;

  auto at = [&](std::size_t k, std::size_t j, std::size_t i) {
    return (k * g.nyl + j) * g.nxl + i;
  };
  const std::size_t cells = nz * g.nyl * g.nxl;
  std::vector<double> u(cells), rhs(cells), sol(cells);
  std::vector<double> rc(cells), rf(cells), rd(cells);  // normalized rows
  for (std::size_t k = 0; k < nz; ++k)
    for (std::size_t j = 0; j < g.nyl; ++j)
      for (std::size_t i = 0; i < g.nxl; ++i)
        u[at(k, j, i)] = 0.2 * std::cos(0.25 * static_cast<double>(g.gi0 + i) -
                                        0.15 * static_cast<double>(g.gj0 + j) +
                                        0.05 * static_cast<double>(k));

  std::vector<double> gw, ge, gs, gn;
  double max_line_residual = 0.0;

  auto sweep = [&](int dir) {
    const bool along_x = dir == 0;
    const std::size_t len = along_x ? g.nxl : g.nyl;
    const std::size_t lanes = along_x ? g.nyl : g.nxl;
    const int me_stage = along_x ? g.pi : g.pj;
    const int stages = along_x ? g.px : g.py;
    const std::size_t goff = along_x ? g.gi0 : g.gj0;
    const std::size_t glen = along_x ? g.nx : g.ny;
    auto cell = [&](std::size_t k, std::size_t lane, std::size_t s) {
      return along_x ? at(k, lane, s) : at(k, s, lane);
    };
    auto stage_rank = [&](int s) {
      return along_x ? g.rank_of(s, g.pj) : g.rank_of(g.pi, s);
    };
    auto band = [&](std::size_t gidx, double& e, double& a, double& c, double& f) {
      e = gidx >= 2 ? kE : 0.0;
      a = gidx >= 1 ? kA : 0.0;
      c = gidx + 1 < glen ? kC : 0.0;
      f = gidx + 2 < glen ? kF : 0.0;
    };

    // Planes alternate solve direction (the bands are symmetric, so the
    // reversed elimination solves the same physical system) — keeps the
    // pipeline bidirectional within a sweep like NAS SP's multipartition
    // layout, so credits piggyback back.
    auto reversed = [](std::size_t k) { return (k & 1) != 0; };
    auto my_pos = [&](bool rev) { return rev ? stages - 1 - me_stage : me_stage; };
    auto logical_prev = [&](bool rev) { return rev ? me_stage + 1 : me_stage - 1; };
    auto logical_next = [&](bool rev) { return rev ? me_stage - 1 : me_stage + 1; };
    // Bands by *logical* index (masks at the logical line ends; values are
    // symmetric so the logical and physical systems coincide).
    auto band_logical = [&](std::size_t t, double& e, double& a, double& c,
                            double& f) {
      e = t >= 2 ? kE : 0.0;
      a = t >= 1 ? kA : 0.0;
      c = t + 1 < glen ? kC : 0.0;
      f = t + 2 < glen ? kF : 0.0;
    };

    // Forward elimination: carry the two trailing normalized rows
    // (C, F, D) x 2 per lane toward the logical end.
    const std::size_t carry_n = lanes * 6;
    std::vector<double> carry(carry_n, 0.0);
    for (std::size_t k = 0; k < nz; ++k) {
      const bool rev = reversed(k);
      if (my_pos(rev) > 0)
        comm.recv_n(carry.data(), carry_n, stage_rank(logical_prev(rev)), kFwd);
      else
        std::fill(carry.begin(), carry.end(), 0.0);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        double c2 = carry[lane * 6 + 0], f2 = carry[lane * 6 + 1],
               d2 = carry[lane * 6 + 2];  // row t-2
        double c1 = carry[lane * 6 + 3], f1 = carry[lane * 6 + 4],
               d1 = carry[lane * 6 + 5];  // row t-1
        for (std::size_t tl = 0; tl < len; ++tl) {
          const std::size_t t = static_cast<std::size_t>(my_pos(rev)) * len + tl;
          const std::size_t sp = rev ? len - 1 - tl : tl;  // physical index
          const std::size_t gphys = rev ? glen - 1 - t : t;
          double e, a, c, f;
          band_logical(t, e, a, c, f);
          // Substitute rows t-2 and t-1 (normalized: x + C x+1 + F x+2 = D).
          double aa = a - e * c2;
          double bb = coef_b(gphys) - e * f2;
          double rr = rhs[cell(k, lane, sp)] - e * d2;
          bb -= aa * c1;
          double cc = c - aa * f1;
          rr -= aa * d1;
          const double C = cc / bb;
          const double F = f / bb;
          const double D = rr / bb;
          rc[cell(k, lane, sp)] = C;
          rf[cell(k, lane, sp)] = F;
          rd[cell(k, lane, sp)] = D;
          c2 = c1; f2 = f1; d2 = d1;
          c1 = C; f1 = F; d1 = D;
        }
        carry[lane * 6 + 0] = c2;
        carry[lane * 6 + 1] = f2;
        carry[lane * 6 + 2] = d2;
        carry[lane * 6 + 3] = c1;
        carry[lane * 6 + 4] = f1;
        carry[lane * 6 + 5] = d1;
      }
      charge_points(comm, p, lanes * len * 3);
      if (my_pos(rev) + 1 < stages)
        comm.send_n(carry.data(), carry_n, stage_rank(logical_next(rev)), kFwd);
    }

    // Backward substitution: carry the two leading solution values toward
    // the logical start.
    const std::size_t back_n = lanes * 2;
    std::vector<double> back(back_n, 0.0);
    for (std::size_t k = nz; k-- > 0;) {
      const bool rev = reversed(k);
      if (my_pos(rev) + 1 < stages)
        comm.recv_n(back.data(), back_n, stage_rank(logical_next(rev)), kBwd);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        double x1 = (my_pos(rev) + 1 < stages) ? back[lane * 2 + 0] : 0.0;  // x_{t+1}
        double x2 = (my_pos(rev) + 1 < stages) ? back[lane * 2 + 1] : 0.0;  // x_{t+2}
        for (std::size_t tl = len; tl-- > 0;) {
          const std::size_t sp = rev ? len - 1 - tl : tl;
          const double x = rd[cell(k, lane, sp)] - rc[cell(k, lane, sp)] * x1 -
                           rf[cell(k, lane, sp)] * x2;
          sol[cell(k, lane, sp)] = x;
          x2 = x1;
          x1 = x;
        }
        back[lane * 2 + 0] = x1;  // my logically-first row
        back[lane * 2 + 1] = x2;  // my logically-second row
      }
      charge_points(comm, p, lanes * len * 2);
      if (my_pos(rev) > 0)
        comm.send_n(back.data(), back_n, stage_rank(logical_prev(rev)), kBwd);
    }

    // ---- verification with 2-deep solution boundary exchange ----
    const std::size_t edge_n = lanes * nz * 2;
    std::vector<double> xlo(edge_n, 0.0), xhi(edge_n, 0.0), slo(edge_n), shi(edge_n);
    std::size_t o = 0;
    for (std::size_t k = 0; k < nz; ++k)
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        slo[o] = sol[cell(k, lane, 0)];
        slo[o + 1] = sol[cell(k, lane, 1)];
        shi[o] = sol[cell(k, lane, len - 2)];
        shi[o + 1] = sol[cell(k, lane, len - 1)];
        o += 2;
      }
    std::vector<mpi::RequestPtr> reqs;
    if (me_stage > 0) {
      reqs.push_back(comm.irecv_n(xlo.data(), edge_n, stage_rank(me_stage - 1), kVer));
      reqs.push_back(comm.isend_n(slo.data(), edge_n, stage_rank(me_stage - 1), kVer));
    }
    if (me_stage + 1 < stages) {
      reqs.push_back(comm.irecv_n(xhi.data(), edge_n, stage_rank(me_stage + 1), kVer));
      reqs.push_back(comm.isend_n(shi.data(), edge_n, stage_rank(me_stage + 1), kVer));
    }
    comm.wait_all(reqs);
    o = 0;
    for (std::size_t k = 0; k < nz; ++k)
      for (std::size_t lane = 0; lane < lanes; ++lane, o += 2)
        for (std::size_t s = 0; s < len; ++s) {
          auto get = [&](std::ptrdiff_t d) -> double {
            const std::ptrdiff_t t = static_cast<std::ptrdiff_t>(s) + d;
            if (t >= 0 && t < static_cast<std::ptrdiff_t>(len))
              return sol[cell(k, lane, static_cast<std::size_t>(t))];
            if (t < 0) return xlo[o + 2 + t];                       // t = -1 or -2
            return xhi[o + (t - static_cast<std::ptrdiff_t>(len))]; // t = len or len+1
          };
          double e, a, c, f;
          band(goff + s, e, a, c, f);
          const double resid = e * get(-2) + a * get(-1) +
                               coef_b(goff + s) * get(0) + c * get(1) +
                               f * get(2) - rhs[cell(k, lane, s)];
          max_line_residual = std::max(max_line_residual, std::abs(resid));
        }
  };

  for (int it = 0; it < iterations; ++it) {
    adi_face_exchange(comm, g, u, 1, gw, ge, gs, gn);
    for (std::size_t k = 0; k < nz; ++k)
      for (std::size_t j = 0; j < g.nyl; ++j)
        for (std::size_t i = 0; i < g.nxl; ++i) {
          const double west = i > 0 ? u[at(k, j, i - 1)] : gw[k * g.nyl + j];
          const double east = i + 1 < g.nxl ? u[at(k, j, i + 1)] : ge[k * g.nyl + j];
          const double south = j > 0 ? u[at(k, j - 1, i)] : gs[k * g.nxl + i];
          const double north = j + 1 < g.nyl ? u[at(k, j + 1, i)] : gn[k * g.nxl + i];
          rhs[at(k, j, i)] =
              0.5 + 0.05 * (west + east + south + north) - 0.1 * u[at(k, j, i)];
        }
    charge_points(comm, p, cells * 2);

    sweep(0);
    for (std::size_t n = 0; n < cells; ++n) u[n] = 0.6 * u[n] + 0.1 * sol[n];
    sweep(1);
    for (std::size_t n = 0; n < cells; ++n) u[n] = 0.6 * u[n] + 0.1 * sol[n];
    charge_points(comm, p, cells);
  }

  double checksum = 0;
  for (double v : u) checksum += v;
  checksum = comm.allreduce_sum(checksum);

  AppOutcome out;
  out.metric = checksum;
  out.verified =
      verify_all(comm, max_line_residual < 1e-9 && std::isfinite(checksum));
  return out;
}

}  // namespace mvflow::nas
