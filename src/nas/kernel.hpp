// NAS Parallel Benchmark communication proxies (paper §6.3).
//
// Each kernel reproduces the *communication pattern* of its NAS namesake —
// message sizes, fan-out, burstiness, symmetry — while carrying real data
// through the full MPI/fabric stack and verifying a numerical invariant, so
// a protocol bug surfaces as a verification failure rather than a skewed
// statistic. Local computation runs for real (small grids) and additionally
// charges simulated time via a per-point cost model, which is what sets the
// compute/communicate ratio.
//
//   IS — bucket sort: histogram allreduce + alltoallv of keys (large,
//        rendezvous-heavy), verified by global sortedness + key counts.
//   FT — 3-D FFT: slab transposes via alltoall (32 KB-class blocks),
//        verified by forward/inverse round-trip error.
//   LU — SSOR wavefront: pipelined 2-D sweeps with many small eager
//        messages and deep bursts (the paper's stress case), verified by
//        residual reduction.
//   CG — conjugate gradient on a banded SPD system: neighbor halo
//        exchanges + dot-product allreduces, verified by residual norm.
//   MG — multigrid V-cycles: halo exchanges at every level with shrinking
//        message sizes, verified by residual reduction.
//   BT/SP — ADI sweeps on a square process grid (16 ranks): pipelined line
//        solves along both grid dimensions, verified against the
//        tridiagonal/pentadiagonal line equations.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "mpi/world.hpp"
#include "obs/metrics.hpp"

namespace mvflow::nas {

enum class App { is, ft, lu, cg, mg, bt, sp };

std::string_view to_string(App app);
std::optional<App> parse_app(std::string_view name);
constexpr App kAllApps[] = {App::is, App::ft, App::lu, App::cg,
                            App::mg, App::bt, App::sp};

/// Ranks the paper ran each app on (8, except BT/SP which need a square
/// process count and used 16).
int default_ranks(App app);

struct NasParams {
  int iterations = 0;  ///< 0 = per-app default (scaled-down Class A shape).
  int scale = 1;       ///< Grid scale multiplier (tests use 1).
  std::uint64_t seed = 42;
  /// Simulated host time charged per grid-point update.
  double compute_ns_per_point = 1.0;
};

struct KernelResult {
  App app = App::is;
  bool verified = false;
  double metric = 0.0;  ///< App-specific: residual, round-trip error, ...
  sim::Duration elapsed{0};
  mpi::WorldStats stats;
  /// Full metrics-registry capture of the run's World (engine, fabric,
  /// per-device and per-connection flow/QP counters).
  obs::Snapshot metrics;
};

/// Run one kernel on a fresh World built from `wcfg` (num_ranks is
/// overridden with default_ranks(app) when left at 0).
KernelResult run_app(App app, mpi::WorldConfig wcfg, const NasParams& params);

// Per-app entry points (used by run_app; exposed for targeted tests).
// Each returns the rank-0 outcome {verified, metric} through the result.
struct AppOutcome {
  bool verified = false;
  double metric = 0.0;
};
AppOutcome run_is(mpi::Communicator& comm, const NasParams& p);
AppOutcome run_ft(mpi::Communicator& comm, const NasParams& p);
AppOutcome run_lu(mpi::Communicator& comm, const NasParams& p);
AppOutcome run_cg(mpi::Communicator& comm, const NasParams& p);
AppOutcome run_mg(mpi::Communicator& comm, const NasParams& p);
AppOutcome run_bt(mpi::Communicator& comm, const NasParams& p);
AppOutcome run_sp(mpi::Communicator& comm, const NasParams& p);

}  // namespace mvflow::nas
