// CG proxy: conjugate gradient on a banded symmetric positive-definite
// system with a 1-D block row partition.
//
// Communication shape per iteration (matches NAS CG's character): small
// halo exchanges with the ±1 neighbors for the SpMV (the band reaches
// `kBand` rows into each neighbor) and two dot-product allreduces. The
// pattern is symmetric, so piggybacking should carry all credit traffic.
// Verified by the true residual ||b - Ax|| / ||b|| at the end.
#include <cmath>
#include <vector>

#include "mpi/communicator.hpp"
#include "nas/common.hpp"
#include "nas/kernel.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mvflow::nas {

namespace {

constexpr std::size_t kBand = 16;  // off-diagonal reach

/// y = A x for the banded operator, using halo values of x.
/// A = 8 I - sum_{d=1..kBand} (1/(d+1)) (E_d + E_{-d}); the off-diagonal
/// weights sum to ~4.88 < 8, so A is strictly diagonally dominant and SPD
/// with a small condition number (CG converges fast).
void spmv(const std::vector<double>& x_with_halo, std::size_t n_local,
          std::vector<double>& y) {
  const double* x = x_with_halo.data() + kBand;  // interior start
  for (std::size_t i = 0; i < n_local; ++i) {
    double acc = 8.0 * x[i];
    for (std::size_t d = 1; d <= kBand; ++d) {
      const double w = -1.0 / static_cast<double>(d + 1);
      acc += w * x[i - d] + w * x[i + d];  // halo makes these always valid
    }
    y[i] = acc;
  }
}

/// Exchange kBand boundary values with both neighbors into the halo.
void halo_exchange(mpi::Communicator& comm, std::vector<double>& x_with_halo,
                   std::size_t n_local) {
  const int np = comm.size();
  const int me = comm.rank();
  double* interior = x_with_halo.data() + kBand;
  const mpi::Tag tag_up = 101, tag_dn = 102;

  // Exchange with left (me-1) and right (me+1); edges see zero halos.
  std::vector<mpi::RequestPtr> reqs;
  if (me > 0) {
    reqs.push_back(comm.irecv_n(x_with_halo.data(), kBand, me - 1, tag_dn));
    reqs.push_back(comm.isend_n(interior, kBand, me - 1, tag_up));
  }
  if (me < np - 1) {
    reqs.push_back(
        comm.irecv_n(interior + n_local, kBand, me + 1, tag_up));
    reqs.push_back(comm.isend_n(interior + n_local - kBand, kBand, me + 1, tag_dn));
  }
  comm.wait_all(reqs);
}

}  // namespace

AppOutcome run_cg(mpi::Communicator& comm, const NasParams& p) {
  const auto me = static_cast<std::size_t>(comm.rank());
  const std::size_t n_local = static_cast<std::size_t>(2048) * p.scale;
  const int iterations = p.iterations > 0 ? p.iterations : 25;

  // b from a deterministic per-rank stream; solve A x = b from x = 0.
  util::Xoshiro256 rng(p.seed * 77 + me);
  std::vector<double> b(n_local);
  for (auto& v : b) v = rng.uniform() - 0.5;

  std::vector<double> x(n_local, 0.0);
  std::vector<double> r = b;  // residual (x = 0)
  std::vector<double> pdir = r;
  std::vector<double> q(n_local, 0.0);
  std::vector<double> p_halo(n_local + 2 * kBand, 0.0);

  auto dot = [&](const std::vector<double>& a, const std::vector<double>& c) {
    double acc = 0;
    for (std::size_t i = 0; i < n_local; ++i) acc += a[i] * c[i];
    return comm.allreduce_sum(acc);
  };

  double rho = dot(r, r);
  const double b_norm = std::sqrt(dot(b, b));

  for (int it = 0; it < iterations; ++it) {
    std::copy(pdir.begin(), pdir.end(), p_halo.begin() + kBand);
    halo_exchange(comm, p_halo, n_local);
    spmv(p_halo, n_local, q);
    charge_points(comm, p, n_local * kBand / 4);

    const double alpha = rho / dot(pdir, q);
    for (std::size_t i = 0; i < n_local; ++i) {
      x[i] += alpha * pdir[i];
      r[i] -= alpha * q[i];
    }
    const double rho_new = dot(r, r);
    const double beta = rho_new / rho;
    rho = rho_new;
    for (std::size_t i = 0; i < n_local; ++i) pdir[i] = r[i] + beta * pdir[i];
    charge_points(comm, p, n_local);
  }

  // True residual check (verification; un-charged).
  std::fill(p_halo.begin(), p_halo.end(), 0.0);
  std::copy(x.begin(), x.end(), p_halo.begin() + kBand);
  halo_exchange(comm, p_halo, n_local);
  spmv(p_halo, n_local, q);
  double local = 0;
  for (std::size_t i = 0; i < n_local; ++i) {
    const double d = b[i] - q[i];
    local += d * d;
  }
  const double res = std::sqrt(comm.allreduce_sum(local)) / b_norm;

  // CG on this operator contracts by ~0.35x per iteration (kappa ~ 4), so
  // 0.6^iterations is a safely loose bound at any iteration count.
  const double bound = std::pow(0.6, iterations);
  AppOutcome out;
  out.metric = res;
  out.verified = verify_all(comm, res < bound && std::isfinite(res));
  return out;
}

}  // namespace mvflow::nas
