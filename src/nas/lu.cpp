// LU proxy: SSOR-style wavefront sweeps on a 2-D process grid.
//
// This is the paper's stress case. Each sweep pipelines over nz planes: a
// rank receives one small boundary message per plane from its west and
// south neighbors, updates its block of the plane (Gauss–Seidel, so the
// wavefront dependency is real), and immediately fires the east/north
// boundaries with nonblocking sends. Corner ranks stream all nz planes
// back-to-back, so downstream queues see bursts approaching nz outstanding
// small messages — the behaviour behind the paper's Table 2 (LU needs ~63
// buffers) and Table 1 (LU's one-way phases make ~18 % of its messages
// explicit credit messages under the static scheme).
//
// Verified bitwise-modulo-reduction-order against a serial reference:
// every u[k][j][i] is a pure function of already-assigned values, so the
// parallel and serial fields agree to the last bit; only the final
// checksum reduction order differs.
#include <cmath>
#include <deque>
#include <vector>

#include "mpi/communicator.hpp"
#include "nas/common.hpp"
#include "nas/kernel.hpp"
#include "util/check.hpp"

namespace mvflow::nas {

namespace {

struct LuGrid {
  std::size_t nx, ny, nz;        // global
  int px, py;                    // process grid
  int pi, pj;                    // my coordinates
  std::size_t nxl, nyl;          // local block
  std::size_t gi0, gj0;          // global offsets
};

double rhs_at(std::size_t gi, std::size_t gj, std::size_t k) {
  return 1.0 + 0.001 * static_cast<double>(gi) +
         0.002 * static_cast<double>(gj) + 0.003 * static_cast<double>(k) +
         0.1 * std::sin(0.1 * static_cast<double>(gi + 2 * gj + 3 * k));
}

double boundary_at(std::size_t ga, std::size_t gb) {
  return 0.5 + 0.01 * static_cast<double>(ga) - 0.005 * static_cast<double>(gb);
}

/// The lower-sweep update: strictly increasing dependencies in i, j, k,
/// relaxed against the previous value (SSOR-style, so successive
/// iterations keep refining the field instead of hitting a fixed point).
double lower_update(double old, double rhs, double west, double south,
                    double below) {
  return 0.3 * old + 0.25 * (rhs + 0.9 * west + 0.8 * south + 0.7 * below);
}

/// The upper-sweep update: strictly decreasing dependencies.
double upper_update(double cur, double east, double north, double above) {
  return 0.5 * cur + 0.1 * (east + north + above);
}

LuGrid make_grid(int np, int rank) {
  LuGrid g;
  g.nx = 32;
  g.ny = 32;
  g.nz = 64;
  // Process grid: as square as the rank count allows, px >= py.
  g.py = 1;
  for (int d = 1; d * d <= np; ++d)
    if (np % d == 0) g.py = d;
  g.px = np / g.py;
  g.pi = rank % g.px;
  g.pj = rank / g.px;
  util::check(g.nx % static_cast<std::size_t>(g.px) == 0 &&
                  g.ny % static_cast<std::size_t>(g.py) == 0,
              "LU grid must divide the process grid");
  g.nxl = g.nx / static_cast<std::size_t>(g.px);
  g.nyl = g.ny / static_cast<std::size_t>(g.py);
  g.gi0 = static_cast<std::size_t>(g.pi) * g.nxl;
  g.gj0 = static_cast<std::size_t>(g.pj) * g.nyl;
  return g;
}

constexpr mpi::Tag kTagEast = 201;   // west -> east boundary columns
constexpr mpi::Tag kTagNorth = 202;  // south -> north boundary rows
constexpr mpi::Tag kTagWest = 203;   // east -> west (upper sweep)
constexpr mpi::Tag kTagSouth = 204;  // north -> south (upper sweep)

}  // namespace

AppOutcome run_lu(mpi::Communicator& comm, const NasParams& p) {
  const LuGrid g = make_grid(comm.size(), comm.rank());
  const int iterations = p.iterations > 0 ? p.iterations : 12;
  const auto rank_of = [&](int pi, int pj) { return pj * g.px + pi; };

  // u[k][j][i] flattened; local block only.
  auto at = [&](std::size_t k, std::size_t j, std::size_t i) {
    return (k * g.nyl + j) * g.nxl + i;
  };
  std::vector<double> u(g.nz * g.nyl * g.nxl);
  for (std::size_t k = 0; k < g.nz; ++k)
    for (std::size_t j = 0; j < g.nyl; ++j)
      for (std::size_t i = 0; i < g.nxl; ++i)
        u[at(k, j, i)] = boundary_at(g.gi0 + i, g.gj0 + j) + 0.01 * static_cast<double>(k);

  std::vector<double> ghost_w(g.nyl), ghost_s(g.nxl);
  std::deque<std::vector<double>> send_bufs;  // keep isend payloads alive
  std::vector<mpi::RequestPtr> send_reqs;

  auto flush_sends = [&] {
    comm.wait_all(send_reqs);
    send_reqs.clear();
    send_bufs.clear();
  };

  for (int it = 0; it < iterations; ++it) {
    // ---- lower sweep: wavefront in +i, +j, +k ----
    for (std::size_t k = 0; k < g.nz; ++k) {
      if (g.pi > 0)
        comm.recv_n(ghost_w.data(), g.nyl, rank_of(g.pi - 1, g.pj), kTagEast);
      if (g.pj > 0)
        comm.recv_n(ghost_s.data(), g.nxl, rank_of(g.pi, g.pj - 1), kTagNorth);
      for (std::size_t j = 0; j < g.nyl; ++j) {
        for (std::size_t i = 0; i < g.nxl; ++i) {
          const std::size_t gi = g.gi0 + i, gj = g.gj0 + j;
          const double west = i > 0 ? u[at(k, j, i - 1)]
                              : g.pi > 0 ? ghost_w[j]
                                         : boundary_at(gj, k);
          const double south = j > 0 ? u[at(k, j - 1, i)]
                               : g.pj > 0 ? ghost_s[i]
                                          : boundary_at(gi, k);
          const double below = k > 0 ? u[at(k - 1, j, i)] : boundary_at(gi, gj);
          u[at(k, j, i)] =
              lower_update(u[at(k, j, i)], rhs_at(gi, gj, k), west, south, below);
        }
      }
      // SSOR does tens of flops per cell (block solves); the factor keeps
      // the compute/communication balance in the regime where the corner
      // ranks can stream ahead of their downstream neighbors (the burst
      // behaviour behind the paper's Table 2).
      charge_points(comm, p, g.nxl * g.nyl * 4);
      if (g.pi + 1 < g.px) {
        auto& buf = send_bufs.emplace_back(g.nyl);
        for (std::size_t j = 0; j < g.nyl; ++j) buf[j] = u[at(k, j, g.nxl - 1)];
        send_reqs.push_back(
            comm.isend_n(buf.data(), g.nyl, rank_of(g.pi + 1, g.pj), kTagEast));
      }
      if (g.pj + 1 < g.py) {
        auto& buf = send_bufs.emplace_back(g.nxl);
        for (std::size_t i = 0; i < g.nxl; ++i) buf[i] = u[at(k, g.nyl - 1, i)];
        send_reqs.push_back(
            comm.isend_n(buf.data(), g.nxl, rank_of(g.pi, g.pj + 1), kTagNorth));
      }
    }
    flush_sends();

    // ---- upper sweep: wavefront in -i, -j, -k ----
    for (std::size_t kk = g.nz; kk-- > 0;) {
      if (g.pi + 1 < g.px)
        comm.recv_n(ghost_w.data(), g.nyl, rank_of(g.pi + 1, g.pj), kTagWest);
      if (g.pj + 1 < g.py)
        comm.recv_n(ghost_s.data(), g.nxl, rank_of(g.pi, g.pj + 1), kTagSouth);
      for (std::size_t jj = g.nyl; jj-- > 0;) {
        for (std::size_t ii = g.nxl; ii-- > 0;) {
          const std::size_t gi = g.gi0 + ii, gj = g.gj0 + jj;
          const double east = ii + 1 < g.nxl ? u[at(kk, jj, ii + 1)]
                              : g.pi + 1 < g.px ? ghost_w[jj]
                                                : boundary_at(gj + 1, kk);
          const double north = jj + 1 < g.nyl ? u[at(kk, jj + 1, ii)]
                               : g.pj + 1 < g.py ? ghost_s[ii]
                                                 : boundary_at(gi + 1, kk);
          const double above =
              kk + 1 < g.nz ? u[at(kk + 1, jj, ii)] : boundary_at(gi, gj);
          u[at(kk, jj, ii)] = upper_update(u[at(kk, jj, ii)], east, north, above);
        }
      }
      charge_points(comm, p, g.nxl * g.nyl * 4);
      if (g.pi > 0) {
        auto& buf = send_bufs.emplace_back(g.nyl);
        for (std::size_t j = 0; j < g.nyl; ++j) buf[j] = u[at(kk, j, 0)];
        send_reqs.push_back(
            comm.isend_n(buf.data(), g.nyl, rank_of(g.pi - 1, g.pj), kTagWest));
      }
      if (g.pj > 0) {
        auto& buf = send_bufs.emplace_back(g.nxl);
        for (std::size_t i = 0; i < g.nxl; ++i) buf[i] = u[at(kk, 0, i)];
        send_reqs.push_back(
            comm.isend_n(buf.data(), g.nxl, rank_of(g.pi, g.pj - 1), kTagSouth));
      }
    }
    flush_sends();
  }

  // ---- verification: serial replay on rank 0 (un-charged) ----
  double local_sum = 0;
  for (double v : u) local_sum += v;
  const double par_sum = comm.allreduce_sum(local_sum);

  bool ok = true;
  if (comm.rank() == 0) {
    std::vector<double> ref(g.nz * g.ny * g.nx);
    auto rat = [&](std::size_t k, std::size_t j, std::size_t i) {
      return (k * g.ny + j) * g.nx + i;
    };
    for (std::size_t k = 0; k < g.nz; ++k)
      for (std::size_t j = 0; j < g.ny; ++j)
        for (std::size_t i = 0; i < g.nx; ++i)
          ref[rat(k, j, i)] = boundary_at(i, j) + 0.01 * static_cast<double>(k);
    for (int it = 0; it < iterations; ++it) {
      for (std::size_t k = 0; k < g.nz; ++k)
        for (std::size_t j = 0; j < g.ny; ++j)
          for (std::size_t i = 0; i < g.nx; ++i) {
            const double west = i > 0 ? ref[rat(k, j, i - 1)] : boundary_at(j, k);
            const double south = j > 0 ? ref[rat(k, j - 1, i)] : boundary_at(i, k);
            const double below = k > 0 ? ref[rat(k - 1, j, i)] : boundary_at(i, j);
            ref[rat(k, j, i)] =
                lower_update(ref[rat(k, j, i)], rhs_at(i, j, k), west, south, below);
          }
      for (std::size_t k = g.nz; k-- > 0;)
        for (std::size_t j = g.ny; j-- > 0;)
          for (std::size_t i = g.nx; i-- > 0;) {
            const double east =
                i + 1 < g.nx ? ref[rat(k, j, i + 1)] : boundary_at(j + 1, k);
            const double north =
                j + 1 < g.ny ? ref[rat(k, j + 1, i)] : boundary_at(i + 1, k);
            const double above =
                k + 1 < g.nz ? ref[rat(k + 1, j, i)] : boundary_at(i, j);
            ref[rat(k, j, i)] = upper_update(ref[rat(k, j, i)], east, north, above);
          }
    }
    double ref_sum = 0;
    for (double v : ref) ref_sum += v;
    ok = std::abs(par_sum - ref_sum) <= 1e-9 * std::abs(ref_sum);
  }

  AppOutcome out;
  out.metric = par_sum;
  out.verified = verify_all(comm, ok);
  return out;
}

}  // namespace mvflow::nas
