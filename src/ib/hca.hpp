// Host Channel Adapter: the per-node verbs entry point. Owns the node's
// memory registry, completion queues, and queue pairs.
#pragma once

#include <map>
#include <memory>
#include <span>

#include "ib/cq.hpp"
#include "ib/memory.hpp"
#include "ib/qp.hpp"
#include "ib/types.hpp"

namespace mvflow::ib {

class Fabric;

class Hca {
 public:
  Hca(Fabric& fabric, int node_id);
  Hca(const Hca&) = delete;
  Hca& operator=(const Hca&) = delete;

  /// Pin and register a buffer; returns its (lkey, rkey).
  MemoryRegionHandle register_memory(std::span<std::byte> region, Access access);
  void deregister_memory(MemoryRegionHandle handle);

  std::shared_ptr<CompletionQueue> create_cq();

  /// Create a queue pair bound to the given CQs (they may be the same
  /// object — the paper's MPI uses one CQ for everything). RC by default;
  /// pass QpType::ud for a connectionless datagram QP.
  std::shared_ptr<QueuePair> create_qp(std::shared_ptr<CompletionQueue> send_cq,
                                       std::shared_ptr<CompletionQueue> recv_cq,
                                       QpType type = QpType::rc);
  void destroy_qp(QpNumber qpn);

  QueuePair* find_qp(QpNumber qpn);

  int node_id() const noexcept { return node_id_; }
  Fabric& fabric() noexcept { return fabric_; }
  MemoryRegistry& memory() noexcept { return memory_; }
  const MemoryRegistry& memory() const noexcept { return memory_; }

 private:
  Fabric& fabric_;
  int node_id_;
  MemoryRegistry memory_;
  std::map<QpNumber, std::shared_ptr<QueuePair>> qps_;
};

}  // namespace mvflow::ib
