// Host Channel Adapter: the per-node verbs entry point. Owns the node's
// memory registry, completion queues, and queue pairs.
#pragma once

#include <utility>
#include <vector>
#include <memory>
#include <span>

#include "ib/cq.hpp"
#include "ib/memory.hpp"
#include "ib/msg_pool.hpp"
#include "ib/qp.hpp"
#include "ib/types.hpp"

namespace mvflow::ib {

class Fabric;

class Hca {
 public:
  Hca(Fabric& fabric, int node_id);
  Hca(const Hca&) = delete;
  Hca& operator=(const Hca&) = delete;

  /// Pin and register a buffer; returns its (lkey, rkey).
  MemoryRegionHandle register_memory(std::span<std::byte> region, Access access);
  void deregister_memory(MemoryRegionHandle handle);

  std::shared_ptr<CompletionQueue> create_cq();

  /// Create a queue pair bound to the given CQs (they may be the same
  /// object — the paper's MPI uses one CQ for everything). RC by default;
  /// pass QpType::ud for a connectionless datagram QP.
  std::shared_ptr<QueuePair> create_qp(std::shared_ptr<CompletionQueue> send_cq,
                                       std::shared_ptr<CompletionQueue> recv_cq,
                                       QpType type = QpType::rc);
  void destroy_qp(QpNumber qpn);

  QueuePair* find_qp(QpNumber qpn);

  int node_id() const noexcept { return node_id_; }
  Fabric& fabric() noexcept { return fabric_; }
  /// This node's engine (its shard in a sharded fabric). Every event a
  /// QP or CQ on this HCA schedules must go through this accessor, never
  /// another node's engine — that is the shard-locality invariant.
  sim::Engine& engine() noexcept;
  MemoryRegistry& memory() noexcept { return memory_; }
  const MemoryRegistry& memory() const noexcept { return memory_; }

  /// Pool backing every message this HCA originates (sends, UD datagrams,
  /// RDMA-read responses). Buffers recycle only after final completion.
  MessageDataPool& msg_pool() noexcept { return *msg_pool_; }
  const MessageDataPool& msg_pool() const noexcept { return *msg_pool_; }

 private:
  Fabric& fabric_;
  int node_id_;
  MemoryRegistry memory_;
  std::shared_ptr<MessageDataPool> msg_pool_ =
      std::make_shared<MessageDataPool>();
  // Dense QP slots: find_qp runs once per delivered packet, so it resolves
  // through the fabric-global QPN index (qpn -> (node, slot), one array
  // read) instead of scanning. Destroyed slots go on a freelist and are
  // reused by the next create, so the vector never grows past the peak
  // concurrent QP count — reconnect churn stays dense (asserted in
  // create/destroy).
  std::vector<std::shared_ptr<QueuePair>> qps_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_qps_ = 0;
};

}  // namespace mvflow::ib
