// Wire-level packet descriptor exchanged between QPs through the fabric.
// Internal to the ib layer.
//
// A Packet is plain data plus a pooled-message reference; it moves from the
// sender's QP into one engine event and is read in place at the receiver,
// so a hop never copies the payload (zero-copy through the simulated wire).
#pragma once

#include <cstdint>

#include "ib/msg_pool.hpp"
#include "ib/types.hpp"

namespace mvflow::ib {

enum class PacketKind : std::uint8_t {
  data,             ///< send or rdma_write payload packet
  rdma_read_req,    ///< single-packet read request
  rdma_read_resp,   ///< read response payload packet
  ack,              ///< positive acknowledgment, cumulative per message
  rnr_nak,          ///< receiver not ready: no recv WQE posted
  access_nak,       ///< remote access violation (bad rkey / bounds)
  seq_nak,          ///< PSN sequence error: responder saw a gap, requests
                    ///< retransmission from the carried MSN
};

struct Packet {
  PacketKind kind = PacketKind::data;
  QpNumber src_qpn = 0;
  QpNumber dst_qpn = 0;
  Msn msn = 0;
  std::uint32_t pkt_index = 0;  ///< Position within the message.
  std::uint32_t pkt_count = 1;  ///< Packets in the message.
  std::uint32_t payload_bytes = 0;
  MsgRef msg;                 ///< Data/read packets only.
  std::int64_t credits = -1;  ///< ACK: responder's posted recv WQE count.
  bool corrupted = false;     ///< Fault injector: delivered but CRC-failed.
};

}  // namespace mvflow::ib
