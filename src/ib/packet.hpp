// Wire-level packet descriptor exchanged between QPs through the fabric.
// Internal to the ib layer.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ib/types.hpp"

namespace mvflow::ib {

/// Snapshot of one in-flight message. Data packets of the same message
/// share it; the payload is captured at post time so retransmissions replay
/// identical bytes (senders must keep buffers stable until completion
/// anyway, per verbs rules).
struct MessageData {
  WrOpcode opcode = WrOpcode::send;
  std::vector<std::byte> payload;      // send / rdma_write contents
  std::byte* remote_addr = nullptr;    // rdma_write / rdma_read target
  std::uint32_t rkey = 0;
  std::uint32_t length = 0;            // total message length
};

enum class PacketKind : std::uint8_t {
  data,             ///< send or rdma_write payload packet
  rdma_read_req,    ///< single-packet read request
  rdma_read_resp,   ///< read response payload packet
  ack,              ///< positive acknowledgment, cumulative per message
  rnr_nak,          ///< receiver not ready: no recv WQE posted
  access_nak,       ///< remote access violation (bad rkey / bounds)
  seq_nak,          ///< PSN sequence error: responder saw a gap, requests
                    ///< retransmission from the carried MSN
};

struct Packet {
  PacketKind kind = PacketKind::data;
  QpNumber src_qpn = 0;
  QpNumber dst_qpn = 0;
  Msn msn = 0;
  std::uint32_t pkt_index = 0;  ///< Position within the message.
  std::uint32_t pkt_count = 1;  ///< Packets in the message.
  std::uint32_t payload_bytes = 0;
  std::shared_ptr<const MessageData> msg;  ///< Data/read packets only.
  std::int64_t credits = -1;  ///< ACK: responder's posted recv WQE count.
  bool corrupted = false;     ///< Fault injector: delivered but CRC-failed.
};

}  // namespace mvflow::ib
