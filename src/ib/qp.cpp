#include "ib/qp.hpp"

#include <algorithm>
#include <cstring>

#include "ib/cq.hpp"
#include "ib/fabric.hpp"
#include "ib/hca.hpp"
#include "obs/prof.hpp"
#include "obs/recorder.hpp"
#include "util/check.hpp"
#include "util/serial.hpp"

namespace mvflow::ib {

namespace {

/// Number of MTU-sized packets a message of `len` bytes occupies (at least
/// one even for zero-length messages).
std::uint32_t packet_count(std::uint32_t len, std::uint32_t mtu) {
  if (len == 0) return 1;
  return (len + mtu - 1) / mtu;
}

}  // namespace

QueuePair::QueuePair(Hca& hca, QpNumber qpn,
                     std::shared_ptr<CompletionQueue> send_cq,
                     std::shared_ptr<CompletionQueue> recv_cq, QpType type)
    : hca_(hca), qpn_(qpn), type_(type), send_cq_(std::move(send_cq)),
      recv_cq_(std::move(recv_cq)) {
  util::require(send_cq_ && recv_cq_, "QP needs send and recv CQs");
  // UD queue pairs are connectionless and usable immediately.
  if (type_ == QpType::ud) state_ = QpState::ready;
}

void QueuePair::set_remote(int node, QpNumber qpn) {
  util::check(state_ == QpState::reset, "QP already connected");
  remote_node_ = node;
  remote_qpn_ = qpn;
  state_ = QpState::ready;
}

void QueuePair::post_send(const SendWr& wr) {
  if (type_ == QpType::ud) {
    post_send_ud(wr);
    return;
  }
  util::require(state_ != QpState::reset, "post_send on unconnected QP");
  if (state_ == QpState::error) {
    if (wr.signaled)
      send_cq_->push(Completion{wr.wr_id, WcStatus::flushed,
                                WcOpcode::send, 0, qpn_, remote_qpn_});
    return;
  }

  // Local protection: the source of send/rdma_write needs local_read; the
  // destination of an rdma_read needs local_write (and we resolve its
  // mutable pointer here, where the registry legitimately owns it).
  std::byte* read_dst = nullptr;
  bool local_ok;
  if (wr.opcode == WrOpcode::rdma_read) {
    read_dst = hca_.memory().local_write_ptr(wr.local_addr, wr.length, wr.lkey);
    local_ok = read_dst != nullptr;
  } else {
    local_ok = hca_.memory().check_local(wr.local_addr, wr.length, wr.lkey,
                                         Access::local_read);
  }
  if (!local_ok) {
    if (wr.signaled)
      send_cq_->push(Completion{wr.wr_id, WcStatus::local_protection_error,
                                WcOpcode::send, 0, qpn_, remote_qpn_});
    enter_error();
    return;
  }

  PendingSend ps;
  ps.wr = wr;
  ps.msn = next_msn_++;
  ps.read_dst = read_dst;
  ps.rnr_retries_left = hca_.fabric().config().rnr_retry_limit;
  MsgRef data = hca_.msg_pool().acquire();
  MessageData& d = data.fill();
  d.opcode = wr.opcode;
  d.length = wr.length;
  d.remote_addr = wr.remote_addr;
  d.rkey = wr.rkey;
  if (wr.opcode != WrOpcode::rdma_read) {
    d.src = wr.local_addr;  // zero-copy: registered buffer is stable until
                            // this WQE completes (verbs ownership rule)
  }
  ps.data = std::move(data);
  if (auto& rec = obs::recorder(); rec.enabled()) {
    ps.posted_at = hca_.engine().now();
    rec.record(ps.posted_at, obs::Ev::msg_posted, hca_.node_id(), remote_node_,
               qpn_, ps.msn, wr.length);
  }
  if (obs::profiler().enabled()) ps.prof_posted = hca_.engine().now();
  pending_tx_.push_back(std::move(ps));
  pump_tx();
}

void QueuePair::post_recv(const RecvWr& wr) {
  util::require(state_ != QpState::reset, "post_recv on unconnected QP");
  // Recv-WQE ledger: every accepted post is counted here and must leave
  // through exactly one of {queued, assembly, completed, flushed}.
  ++stats_.recv_wqes_posted;
  if (state_ == QpState::error) {
    ++stats_.recv_wqes_flushed;
    recv_cq_->push(Completion{wr.wr_id, WcStatus::flushed, WcOpcode::recv, 0,
                              qpn_, remote_qpn_});
    return;
  }
  if (!hca_.memory().check_local(wr.local_addr, wr.length, wr.lkey,
                                 Access::local_write)) {
    ++stats_.recv_wqes_completed;
    recv_cq_->push(Completion{wr.wr_id, WcStatus::local_protection_error,
                              WcOpcode::recv, 0, qpn_, remote_qpn_});
    enter_error();
    return;
  }
  recvq_.push_back(wr);
}

void QueuePair::pump_tx() {
  while (state_ == QpState::ready && !rnr_waiting_ && !pending_tx_.empty()) {
    // End-to-end credit pacing (channel sends only): with credit
    // information, keep at most advertised+2 unacked sends outstanding.
    // The two-message allowance reflects that credit information is a
    // round trip stale; the optimistic extra messages race the receiver's
    // reposts, and a lost race takes the RNR NAK + timeout path — which is
    // exactly how the paper's hardware scheme degrades on bursty patterns.
    if (hca_.fabric().config().e2e_credit_pacing &&
        pending_tx_.front().wr.opcode == WrOpcode::send &&
        advertised_credits_ >= 0) {
      std::int64_t unacked_sends = 0;
      for (const auto& u : unacked_)
        if (u.wr.opcode == WrOpcode::send) ++unacked_sends;
      if (unacked_sends > advertised_credits_ + 1) break;
    }
    PendingSend ps = std::move(pending_tx_.front());
    pending_tx_.pop_front();
    transmit_message(ps);
    if (ps.wr.opcode == WrOpcode::rdma_read) {
      // Register (or restart) the reassembly slot. A rewind erases the
      // slot, so a replayed read must re-create it or its response would
      // be dropped as stale and the read could never complete.
      auto it = std::find_if(reads_.begin(), reads_.end(),
                             [&](const auto& p) { return p.first == ps.msn; });
      if (it == reads_.end()) {
        reads_.emplace_back(ps.msn, ReadPending{ps.wr, ps.read_dst, 0});
      } else {
        it->second.received = 0;
      }
    }
    unacked_.push_back(std::move(ps));
  }
  arm_retx_timer();
}

void QueuePair::transmit_message(PendingSend& ps) {
  Fabric& fabric = hca_.fabric();
  const auto& cfg = fabric.config();
  const auto now = hca_.engine().now();

  if (ps.retransmission) {
    ++stats_.retransmitted_messages;
    stats_.retransmitted_bytes += ps.data->length;
    if (agg_ != nullptr) {
      ++agg_->retransmitted_messages;
      agg_->retransmitted_bytes += ps.data->length;
    }
  } else {
    ++stats_.messages_sent;
    stats_.bytes_sent += ps.data->length;
  }

  const std::uint32_t count =
      ps.wr.opcode == WrOpcode::rdma_read ? 1
                                          : packet_count(ps.data->length, cfg.mtu);
  if (auto& rec = obs::recorder(); rec.enabled()) {
    const int me = hca_.node_id();
    if (ps.retransmission) {
      rec.record(now, obs::Ev::retransmit, me, remote_node_, qpn_, ps.msn,
                 ps.data->length);
    } else {
      ps.first_tx_at = now;
      if (ps.posted_at.count() >= 0) rec.note_post_to_wire(now - ps.posted_at);
      rec.record(now, obs::Ev::msg_on_wire, me, remote_node_, qpn_, ps.msn,
                 ps.data->length);
      if (count > 1)
        rec.record(now, obs::Ev::msg_segmented, me, remote_node_, qpn_, ps.msn,
                   count);
    }
  }
  if (obs::profiler().enabled()) {
    // last_tx always tracks the latest transmission start; first_tx only the
    // first — their gap is exactly the profiler's retransmit segment.
    if (ps.retransmission) {
      ++ps.prof_retx;
    } else {
      ps.prof_first_tx = now;
    }
    ps.prof_last_tx = now;
  }
  std::uint32_t remaining = ps.data->length;
  for (std::uint32_t i = 0; i < count; ++i) {
    Packet pkt;
    pkt.kind = ps.wr.opcode == WrOpcode::rdma_read ? PacketKind::rdma_read_req
                                                   : PacketKind::data;
    pkt.src_qpn = qpn_;
    pkt.dst_qpn = remote_qpn_;
    pkt.msn = ps.msn;
    pkt.pkt_index = i;
    pkt.pkt_count = count;
    pkt.payload_bytes =
        pkt.kind == PacketKind::rdma_read_req ? 0 : std::min(remaining, cfg.mtu);
    remaining -= pkt.payload_bytes;
    pkt.msg = ps.data;
    fabric.transmit(hca_.node_id(), remote_node_, std::move(pkt),
                    now + cfg.tx_wqe_process);
    ++stats_.packets_sent;
  }
}

void QueuePair::send_control(PacketKind kind, Msn msn, std::int64_t credits) {
  Packet pkt;
  pkt.kind = kind;
  pkt.src_qpn = qpn_;
  pkt.dst_qpn = remote_qpn_;
  pkt.msn = msn;
  pkt.credits = credits;
  hca_.fabric().transmit(hca_.node_id(), remote_node_, std::move(pkt),
                         hca_.engine().now());
}

void QueuePair::complete_send(const PendingSend& ps, WcStatus status,
                              WcOpcode op) {
  if (!ps.wr.signaled && status == WcStatus::success) return;
  send_cq_->push(Completion{ps.wr.wr_id, status, op,
                            ps.data ? ps.data->length : 0, qpn_, remote_qpn_});
}

void QueuePair::post_send_ud(const SendWr& wr) {
  // Unreliable Datagram (paper §2.1): connectionless — every work request
  // names its destination; messages are at most one MTU; delivery is
  // best-effort with no ACK, no retry, and silent drops when the target
  // has no receive posted. The send completes as soon as it leaves.
  const auto& cfg = hca_.fabric().config();
  util::require(wr.opcode == WrOpcode::send, "UD supports send only");
  util::require(wr.length <= cfg.mtu, "UD message exceeds one MTU");
  util::require(wr.dest_node >= 0, "UD send needs a destination");
  if (!hca_.memory().check_local(wr.local_addr, wr.length, wr.lkey,
                                 Access::local_read)) {
    if (wr.signaled)
      send_cq_->push(Completion{wr.wr_id, WcStatus::local_protection_error,
                                WcOpcode::send, 0, qpn_, wr.dest_qpn});
    return;  // UD QPs do not transition to error for a bad post
  }
  MsgRef data = hca_.msg_pool().acquire();
  MessageData& d = data.fill();
  d.opcode = WrOpcode::send;
  d.length = wr.length;
  // The UD send completion is pushed below, at post time — so the app may
  // legally reuse or deregister the buffer before the datagram is delivered
  // by a later engine event. Snapshot the (≤ one MTU) payload instead of
  // borrowing the registered buffer; the pooled vector keeps its capacity,
  // so steady-state UD traffic still never touches the allocator.
  d.payload.assign(wr.local_addr, wr.local_addr + wr.length);

  Packet pkt;
  pkt.kind = PacketKind::data;
  pkt.src_qpn = qpn_;
  pkt.dst_qpn = wr.dest_qpn;
  pkt.msn = next_msn_++;
  pkt.payload_bytes = wr.length;
  pkt.msg = std::move(data);
  hca_.fabric().transmit(hca_.node_id(), wr.dest_node, std::move(pkt),
                         hca_.engine().now() + cfg.tx_wqe_process);
  ++stats_.messages_sent;
  stats_.bytes_sent += wr.length;
  ++stats_.packets_sent;
  if (wr.signaled)
    send_cq_->push(Completion{wr.wr_id, WcStatus::success, WcOpcode::send,
                              wr.length, qpn_, wr.dest_qpn});
}

void QueuePair::rx_packet_ud(const Packet& pkt) {
  if (pkt.kind != PacketKind::data) return;  // UD carries datagrams only
  if (pkt.corrupted) {
    // CRC failure on an unreliable datagram: dropped, nobody is told.
    ++stats_.corrupt_packets_received;
    ++stats_.packets_dropped;
    return;
  }
  if (recvq_.empty()) {
    // No buffer: the datagram is silently dropped — the defining contrast
    // with RC's RNR NAK + retry that the paper's flow-control study
    // builds on.
    ++stats_.packets_dropped;
    return;
  }
  const RecvWr wr = recvq_.front();
  recvq_.pop_front();
  ++stats_.recv_wqes_completed;
  if (pkt.msg->length > wr.length) {
    recv_cq_->push(Completion{wr.wr_id, WcStatus::length_error, WcOpcode::recv,
                              pkt.msg->length, qpn_, pkt.src_qpn});
    return;
  }
  if (pkt.msg->length > 0)
    std::memmove(wr.local_addr, pkt.msg->bytes(), pkt.msg->length);
  ++stats_.messages_received;
  recv_cq_->push(Completion{wr.wr_id, WcStatus::success, WcOpcode::recv,
                            pkt.msg->length, qpn_, pkt.src_qpn});
}

void QueuePair::rx_packet(const Packet& pkt) {
  if (type_ == QpType::ud) {
    rx_packet_ud(pkt);
    return;
  }
  if (state_ != QpState::ready) return;  // drop on errored QP
  if (pkt.corrupted) {
    // CRC failure at the receiving HCA: drop the packet. For payload-
    // bearing kinds the responder NAKs its expected MSN so the requester
    // recovers immediately; corrupted ACKs/NAKs and read responses are
    // recovered by the requester's transport timer instead.
    ++stats_.corrupt_packets_received;
    ++stats_.packets_dropped;
    if (pkt.kind == PacketKind::data || pkt.kind == PacketKind::rdma_read_req)
      maybe_send_seq_nak();
    return;
  }
  switch (pkt.kind) {
    case PacketKind::data: handle_data(pkt); break;
    case PacketKind::rdma_read_req: handle_read_req(pkt); break;
    case PacketKind::rdma_read_resp: handle_read_resp(pkt); break;
    case PacketKind::ack: handle_ack(pkt); break;
    case PacketKind::rnr_nak: handle_rnr_nak(pkt); break;
    case PacketKind::access_nak: handle_access_nak(pkt); break;
    case PacketKind::seq_nak: handle_seq_nak(pkt); break;
  }
}

void QueuePair::handle_data(const Packet& pkt) {
  if (pkt.msn != expected_msn_) {
    // Either a stale duplicate (already accepted) or a pipelined message
    // racing ahead of an RNR-dropped predecessor: drop silently; the
    // requester's RNR rewind replays everything from the NAK'd message.
    ++stats_.packets_dropped;
    if (hca_.fabric().config().transport_enabled()) {
      if (pkt.msn < expected_msn_) {
        // Duplicate of an already-accepted message: a timeout replay raced
        // the (lost or slow) ACK. Re-ACK at the end of the message so the
        // requester can retire it instead of timing out again.
        if (pkt.pkt_index + 1 == pkt.pkt_count && expected_msn_ > 0)
          send_control(PacketKind::ack, expected_msn_ - 1,
                       static_cast<std::int64_t>(recvq_.size()));
      } else if (dropping_msn_ == static_cast<Msn>(-1)) {
        // Gap with no RNR drop in progress: a predecessor was lost on the
        // wire. Ask for retransmission from the expected MSN.
        maybe_send_seq_nak();
      }
    }
    return;
  }
  if (pkt.pkt_index == 0) {
    dropping_msn_ = static_cast<Msn>(-1);
    // The expected message is (re)starting: a later gap is a new event and
    // deserves its own NAK.
    last_seq_nak_msn_ = static_cast<Msn>(-1);
    // Keep an in-progress reassembly of this very message: a replay of a
    // partially-assembled message restarts it on the same recv WQE.
    if (rx_cur_ && rx_cur_->msn != pkt.msn) rx_cur_.reset();
    if (pkt.msg->opcode == WrOpcode::send) {
      responder_accept_send(pkt);
    } else {
      responder_accept_write(pkt);
    }
    return;
  }
  // Continuation packet.
  if (dropping_msn_ == pkt.msn) {
    ++stats_.packets_dropped;
    return;
  }
  if (rx_cur_ && rx_cur_->msn == pkt.msn &&
      pkt.pkt_index != rx_cur_->pkts_seen) {
    // A packet inside the message was lost (in-order fabric, so an index
    // skip means a wire drop, not reordering). Keep the assembly — the
    // replayed index-0 packet restarts it on the same WQE — and NAK.
    ++stats_.packets_dropped;
    if (hca_.fabric().config().transport_enabled()) maybe_send_seq_nak();
    return;
  }
  if (pkt.msg->opcode == WrOpcode::send) {
    if (!rx_cur_ || rx_cur_->msn != pkt.msn) {
      // Continuation with no assembly in progress: the first packet of the
      // message was lost. NAK so the whole message is replayed.
      ++stats_.packets_dropped;
      if (hca_.fabric().config().transport_enabled()) maybe_send_seq_nak();
      return;
    }
    responder_accept_send(pkt);
  } else {
    responder_accept_write(pkt);
  }
}

void QueuePair::responder_accept_send(const Packet& pkt) {
  if (pkt.pkt_index == 0) {
    if (rx_cur_ && rx_cur_->msn == pkt.msn) {
      // Replay of a message whose assembly was interrupted mid-flight:
      // restart on the recv WQE already consumed for it — popping a fresh
      // one would leak the buffer and break FIFO recv ordering.
      rx_cur_->pkts_seen = 0;
    } else {
      if (recvq_.empty()) {
        // Receiver not ready: drop the message, tell the requester.
        ++stats_.rnr_naks_sent;
        if (auto& rec = obs::recorder(); rec.enabled()) {
          rec.record(hca_.engine().now(), obs::Ev::rnr_nak,
                     hca_.node_id(), remote_node_, qpn_, pkt.msn, 0);
        }
        dropping_msn_ = pkt.msn;
        send_control(PacketKind::rnr_nak, pkt.msn);
        return;
      }
      RxAssembly asm_state;
      asm_state.msn = pkt.msn;
      asm_state.wr = recvq_.front();
      recvq_.pop_front();
      asm_state.pkts_seen = 0;
      asm_state.holds_wqe = true;
      rx_cur_ = asm_state;
    }
  }
  util::check(rx_cur_ && rx_cur_->msn == pkt.msn, "rx assembly out of sync");
  ++rx_cur_->pkts_seen;
  if (rx_cur_->pkts_seen < pkt.pkt_count) return;

  // Whole message arrived.
  const RecvWr wr = rx_cur_->wr;
  rx_cur_.reset();
  ++expected_msn_;
  ++stats_.recv_wqes_completed;
  if (pkt.msg->length > wr.length) {
    recv_cq_->push(Completion{wr.wr_id, WcStatus::length_error, WcOpcode::recv,
                              pkt.msg->length, qpn_, pkt.src_qpn});
    enter_error();
    return;
  }
  if (pkt.msg->length > 0) {
    // memmove: a loopback send may name overlapping registered buffers.
    std::memmove(wr.local_addr, pkt.msg->bytes(), pkt.msg->length);
  }
  ++stats_.messages_received;
  if (auto& rec = obs::recorder(); rec.enabled()) {
    rec.record(hca_.engine().now(), obs::Ev::msg_delivered,
               hca_.node_id(), remote_node_, qpn_, pkt.msn, pkt.msg->length);
  }
  recv_cq_->push(Completion{wr.wr_id, WcStatus::success, WcOpcode::recv,
                            pkt.msg->length, qpn_, pkt.src_qpn});
  send_control(PacketKind::ack, pkt.msn,
               static_cast<std::int64_t>(recvq_.size()));
}

void QueuePair::responder_accept_write(const Packet& pkt) {
  if (pkt.pkt_index == 0) {
    if (rx_cur_ && rx_cur_->msn == pkt.msn) {
      rx_cur_->pkts_seen = 0;  // replay restart of a partial assembly
    } else {
      if (!hca_.memory().check_remote(pkt.msg->remote_addr, pkt.msg->length,
                                      pkt.msg->rkey, Access::remote_write)) {
        dropping_msn_ = pkt.msn;
        send_control(PacketKind::access_nak, pkt.msn);
        return;
      }
      RxAssembly asm_state;
      asm_state.msn = pkt.msn;
      asm_state.pkts_seen = 0;
      rx_cur_ = asm_state;
    }
  }
  if (!rx_cur_ || rx_cur_->msn != pkt.msn) {
    ++stats_.packets_dropped;
    if (hca_.fabric().config().transport_enabled()) maybe_send_seq_nak();
    return;
  }
  ++rx_cur_->pkts_seen;
  if (rx_cur_->pkts_seen < pkt.pkt_count) return;

  rx_cur_.reset();
  ++expected_msn_;
  if (pkt.msg->length > 0)
    std::memmove(pkt.msg->remote_addr, pkt.msg->bytes(), pkt.msg->length);
  ++stats_.messages_received;
  if (auto& rec = obs::recorder(); rec.enabled()) {
    rec.record(hca_.engine().now(), obs::Ev::msg_delivered,
               hca_.node_id(), remote_node_, qpn_, pkt.msn, pkt.msg->length);
  }
  send_control(PacketKind::ack, pkt.msn,
               static_cast<std::int64_t>(recvq_.size()));
}

void QueuePair::handle_read_req(const Packet& pkt) {
  if (pkt.msn != expected_msn_) {
    const bool transport = hca_.fabric().config().transport_enabled();
    if (transport && pkt.msn < expected_msn_ &&
        hca_.memory().check_remote(pkt.msg->remote_addr, pkt.msg->length,
                                   pkt.msg->rkey, Access::remote_read)) {
      // Duplicate of an already-executed read (the response was lost or a
      // timeout replay raced it): reads are idempotent, so re-execute and
      // re-stream without advancing the sequence.
      stream_read_response(pkt);
      return;
    }
    ++stats_.packets_dropped;
    if (transport && pkt.msn > expected_msn_ &&
        dropping_msn_ == static_cast<Msn>(-1)) {
      maybe_send_seq_nak();
    }
    return;
  }
  if (!hca_.memory().check_remote(pkt.msg->remote_addr, pkt.msg->length,
                                  pkt.msg->rkey, Access::remote_read)) {
    send_control(PacketKind::access_nak, pkt.msn);
    return;
  }
  ++expected_msn_;
  ++stats_.messages_received;
  stream_read_response(pkt);
}

void QueuePair::stream_read_response(const Packet& pkt) {
  // Stream the response back: snapshot the requested bytes now.
  Fabric& fabric = hca_.fabric();
  const auto& cfg = fabric.config();
  MsgRef resp = hca_.msg_pool().acquire();
  MessageData& d = resp.fill();
  d.opcode = WrOpcode::rdma_read;
  d.length = pkt.msg->length;
  d.payload.assign(pkt.msg->remote_addr, pkt.msg->remote_addr + pkt.msg->length);
  const std::uint32_t count = packet_count(d.length, cfg.mtu);
  std::uint32_t remaining = d.length;
  for (std::uint32_t i = 0; i < count; ++i) {
    Packet out;
    out.kind = PacketKind::rdma_read_resp;
    out.src_qpn = qpn_;
    out.dst_qpn = remote_qpn_;
    out.msn = pkt.msn;
    out.pkt_index = i;
    out.pkt_count = count;
    out.payload_bytes = std::min(remaining, cfg.mtu);
    remaining -= out.payload_bytes;
    out.msg = resp;
    fabric.transmit(hca_.node_id(), remote_node_, std::move(out),
                    hca_.engine().now());
  }
}

void QueuePair::handle_read_resp(const Packet& pkt) {
  auto it = std::find_if(reads_.begin(), reads_.end(),
                         [&](const auto& p) { return p.first == pkt.msn; });
  if (it == reads_.end()) {
    ++stats_.packets_dropped;  // stale response after a rewind
    return;
  }
  ReadPending& rp = it->second;
  ++rp.received;
  if (rp.received < pkt.pkt_count) return;

  if (pkt.msg->length > 0)
    std::memcpy(rp.dst, pkt.msg->bytes(), pkt.msg->length);
  // Mark the matching unacked entry complete and retire in order.
  for (auto& ps : unacked_) {
    if (ps.msn == pkt.msn) {
      ps.acked = true;
    }
  }
  reads_.erase(it);
  retire_acked_();
}

void QueuePair::handle_ack(const Packet& pkt) {
  stats_.last_advertised_credits = pkt.credits;
  advertised_credits_ = pkt.credits;
  // unacked_ is a sliding window in msn order, so a cumulative ACK marks a
  // prefix — stop at the first entry past it instead of scanning the rest.
  for (auto& ps : unacked_) {
    if (ps.msn > pkt.msn) break;
    if (ps.wr.opcode != WrOpcode::rdma_read) ps.acked = true;
  }
  retire_acked_();
  pump_tx();  // freed window and fresh credit information
}

void QueuePair::retire_acked_() {
  bool progressed = false;
  while (!unacked_.empty() && unacked_.front().acked) {
    const PendingSend ps = std::move(unacked_.front());
    unacked_.pop_front();
    if (auto& rec = obs::recorder(); rec.enabled()) {
      const auto now = hca_.engine().now();
      rec.record(now, obs::Ev::msg_acked, hca_.node_id(), remote_node_, qpn_,
                 ps.msn, ps.data ? ps.data->length : 0);
      if (ps.first_tx_at.count() >= 0) rec.note_wire_to_ack(now - ps.first_tx_at);
    }
    if (auto& prof = obs::profiler();
        prof.enabled() && ps.prof_first_tx.count() >= 0) {
      // The ACK retiring the WQE is the commit point for the whole QP-level
      // lifecycle of this message. wr_id is the device's tx id, the offline
      // join key against the dev_send record.
      obs::ProfRecord r;
      r.family = obs::ProfFamily::qp_send;
      r.msg_kind = static_cast<std::uint8_t>(ps.wr.opcode);
      r.src = static_cast<std::int16_t>(hca_.node_id());
      r.dst = static_cast<std::int16_t>(remote_node_);
      r.bytes = ps.data ? ps.data->length : 0;
      r.n_retx = ps.prof_retx;
      r.aux = ps.wr.wr_id;
      r.t0 = ps.prof_posted;
      r.t1 = ps.prof_first_tx;
      r.t2 = ps.prof_last_tx;
      r.t3 = hca_.engine().now();
      prof.record(r);
    }
    WcOpcode op = WcOpcode::send;
    if (ps.wr.opcode == WrOpcode::rdma_write) op = WcOpcode::rdma_write;
    if (ps.wr.opcode == WrOpcode::rdma_read) op = WcOpcode::rdma_read;
    complete_send(ps, WcStatus::success, op);
    progressed = true;
  }
  if (progressed) {
    // Forward progress resets the ACK-timeout clock and its backoff.
    retx_attempts_ = 0;
    disarm_retx_timer();
    arm_retx_timer();
  }
}

void QueuePair::handle_rnr_nak(const Packet& pkt) {
  ++stats_.rnr_naks_received;
  if (agg_ != nullptr) ++agg_->rnr_naks_received;
  if (rnr_waiting_) return;  // already rewinding

  // Find the NAK'd message among the unacked; it may already be gone if a
  // duplicate NAK raced with the retry's ACK.
  auto it = std::find_if(unacked_.begin(), unacked_.end(),
                         [&](const PendingSend& p) { return p.msn == pkt.msn; });
  if (it == unacked_.end()) return;

  const int limit = hca_.fabric().config().rnr_retry_limit;
  if (limit >= 0) {
    if (it->rnr_retries_left <= 0) {
      const PendingSend failed = std::move(*it);
      unacked_.erase(it);
      complete_send(failed, WcStatus::rnr_retry_exceeded, WcOpcode::send);
      enter_error();
      return;
    }
    --it->rnr_retries_left;
  }

  // Rewind: everything from the NAK'd message back to the pending queue,
  // marked as retransmissions. The wire copies already sent will be dropped
  // as out-of-sequence at the responder.
  rewind_unacked_from(pkt.msn);

  rnr_waiting_ = true;
  rnr_timer_ = hca_.engine().schedule_after(
      hca_.fabric().config().rnr_timeout, [this] {
        rnr_waiting_ = false;
        pump_tx();
      });
}

void QueuePair::rewind_unacked_from(Msn msn) {
  std::deque<PendingSend> rewound;
  while (!unacked_.empty() && unacked_.back().msn >= msn) {
    PendingSend ps = std::move(unacked_.back());
    unacked_.pop_back();
    ps.retransmission = true;
    ps.acked = false;  // will be re-ACKed (possibly as a duplicate)
    // Drop any half-assembled read response; it will be re-requested.
    reads_.erase(std::remove_if(reads_.begin(), reads_.end(),
                                [&](const auto& p) { return p.first == ps.msn; }),
                 reads_.end());
    rewound.push_front(std::move(ps));
  }
  for (auto rit = rewound.rbegin(); rit != rewound.rend(); ++rit) {
    pending_tx_.push_front(std::move(*rit));
  }
}

void QueuePair::arm_retx_timer() {
  // Member checks first: they are this-local (already in cache on every
  // call path here), while the config lives two pointer hops away. The
  // armed/empty early-outs cover the overwhelming share of calls.
  if (retx_armed_ || unacked_.empty() || state_ != QpState::ready) return;
  const auto& cfg = hca_.fabric().config();
  if (!cfg.transport_enabled()) return;
  sim::Duration d = cfg.transport_timeout;
  for (int i = 0; i < retx_attempts_ && d < cfg.transport_timeout_cap; ++i) {
    d += d;
  }
  d = std::min(d, cfg.transport_timeout_cap);
  retx_armed_ = true;
  retx_timer_ = hca_.engine().schedule_after(d, [this] {
    retx_armed_ = false;
    handle_transport_timeout();
  });
}

void QueuePair::disarm_retx_timer() {
  if (!retx_armed_) return;
  retx_timer_.cancel();
  retx_armed_ = false;
}

void QueuePair::handle_transport_timeout() {
  if (state_ != QpState::ready || unacked_.empty()) return;
  if (rnr_waiting_) {
    // The RNR timer owns recovery right now; look again after a period.
    arm_retx_timer();
    return;
  }
  const auto& cfg = hca_.fabric().config();
  if (cfg.transport_retry_limit >= 0 &&
      retx_attempts_ >= cfg.transport_retry_limit) {
    PendingSend failed = std::move(unacked_.front());
    unacked_.pop_front();
    WcOpcode op = WcOpcode::send;
    if (failed.wr.opcode == WrOpcode::rdma_write) op = WcOpcode::rdma_write;
    if (failed.wr.opcode == WrOpcode::rdma_read) op = WcOpcode::rdma_read;
    complete_send(failed, WcStatus::transport_retry_exceeded, op);
    enter_error();
    return;
  }
  ++retx_attempts_;
  ++stats_.transport_retries;
  rewind_unacked_from(unacked_.front().msn);
  pump_tx();  // replays and re-arms the timer with backoff
}

void QueuePair::maybe_send_seq_nak() {
  if (!hca_.fabric().config().transport_enabled()) return;
  if (last_seq_nak_msn_ == expected_msn_) return;  // one NAK per gap
  last_seq_nak_msn_ = expected_msn_;
  ++stats_.seq_naks_sent;
  send_control(PacketKind::seq_nak, expected_msn_);
}

void QueuePair::handle_seq_nak(const Packet& pkt) {
  ++stats_.seq_naks_received;
  if (rnr_waiting_) return;  // the RNR replay will cover the gap
  if (unacked_.empty() || unacked_.back().msn < pkt.msn) {
    return;  // stale NAK: everything it names is retired or already rewound
  }
  // The responder is alive and talking: recover immediately and give the
  // replay a fresh timeout budget.
  retx_attempts_ = 0;
  disarm_retx_timer();
  rewind_unacked_from(pkt.msn);
  pump_tx();
}

void QueuePair::handle_access_nak(const Packet& pkt) {
  auto it = std::find_if(unacked_.begin(), unacked_.end(),
                         [&](const PendingSend& p) { return p.msn == pkt.msn; });
  if (it != unacked_.end()) {
    const PendingSend failed = std::move(*it);
    unacked_.erase(it);
    const WcOpcode op = failed.wr.opcode == WrOpcode::rdma_read
                            ? WcOpcode::rdma_read
                            : WcOpcode::rdma_write;
    complete_send(failed, WcStatus::remote_access_error, op);
  }
  enter_error();
}

void QueuePair::modify_error() {
  if (type_ == QpType::ud) return;
  enter_error();
}

void QueuePair::enter_error() {
  if (state_ == QpState::error) return;
  state_ = QpState::error;
  if (auto& rec = obs::recorder(); rec.enabled()) {
    rec.record(hca_.engine().now(), obs::Ev::qp_error, hca_.node_id(),
               remote_node_, qpn_, 0, 0);
  }
  rnr_timer_.cancel();
  disarm_retx_timer();
  for (const auto& ps : pending_tx_)
    complete_send(ps, WcStatus::flushed, WcOpcode::send);
  for (const auto& ps : unacked_)
    complete_send(ps, WcStatus::flushed, WcOpcode::send);
  pending_tx_.clear();
  unacked_.clear();
  reads_.clear();
  stats_.recv_wqes_flushed += recvq_.size();
  for (const auto& wr : recvq_)
    recv_cq_->push(Completion{wr.wr_id, WcStatus::flushed, WcOpcode::recv, 0,
                              qpn_, remote_qpn_});
  recvq_.clear();
}

void QueuePair::serialize_state(util::serial::BufWriter& w) const {
  w.u32(qpn_);
  w.u8(static_cast<std::uint8_t>(type_));
  w.u8(static_cast<std::uint8_t>(state_));
  w.i32(remote_node_);
  w.u32(remote_qpn_);

  // Requester pipeline. Payload bytes are not captured (they are either
  // borrowed app memory or pool snapshots that replay reconstructs); the
  // protocol identity of each in-flight message is.
  const auto put_pending = [&w](const PendingSend& ps) {
    w.u64(ps.wr.wr_id);
    w.u64(ps.msn);
    w.u8(static_cast<std::uint8_t>(ps.wr.opcode));
    w.u32(ps.wr.length);
    w.i32(ps.rnr_retries_left);
    w.b(ps.retransmission);
    w.b(ps.acked);
  };
  w.u64(pending_tx_.size());
  for (const PendingSend& ps : pending_tx_) put_pending(ps);
  w.u64(unacked_.size());
  for (const PendingSend& ps : unacked_) put_pending(ps);
  w.u64(next_msn_);
  w.b(rnr_waiting_);
  w.i64(advertised_credits_);
  w.b(rnr_timer_.valid());
  w.b(retx_armed_);
  w.b(retx_timer_.valid());
  w.i32(retx_attempts_);
  w.u64(reads_.size());
  for (const auto& [msn, rp] : reads_) {
    w.u64(msn);
    w.u32(rp.wr.length);
    w.u32(rp.received);
  }

  // Responder window.
  w.u64(recvq_.size());
  for (const RecvWr& wr : recvq_) {
    w.u64(wr.wr_id);
    w.u32(wr.length);
  }
  w.u64(expected_msn_);
  w.u64(dropping_msn_);
  w.u64(last_seq_nak_msn_);
  w.b(rx_cur_.has_value());
  if (rx_cur_) {
    w.u64(rx_cur_->msn);
    w.u32(rx_cur_->pkts_seen);
  }

  // Counters.
  w.u64(stats_.messages_sent);
  w.u64(stats_.bytes_sent);
  w.u64(stats_.packets_sent);
  w.u64(stats_.messages_received);
  w.u64(stats_.rnr_naks_received);
  w.u64(stats_.rnr_naks_sent);
  w.u64(stats_.retransmitted_messages);
  w.u64(stats_.retransmitted_bytes);
  w.u64(stats_.packets_dropped);
  w.u64(stats_.transport_retries);
  w.u64(stats_.seq_naks_sent);
  w.u64(stats_.seq_naks_received);
  w.u64(stats_.corrupt_packets_received);
  w.i64(stats_.last_advertised_credits);
}

}  // namespace mvflow::ib
