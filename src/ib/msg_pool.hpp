// Pooled message payloads for the packet hot path.
//
// Every in-flight message used to be a fresh `make_shared<MessageData>`
// plus a payload vector allocation; at millions of packet-hop events per
// run that is the dominant allocator traffic. Messages now live in a
// per-HCA pool: acquire() recycles a node whose payload vector keeps its
// capacity, and MsgRef counts references intrusively (single-threaded
// simulation — no atomics). A message returns to its pool only when the
// last reference dies, i.e. after final ACK/completion retires the send —
// so retransmissions always replay the original bytes and pooling cannot
// change protocol behavior.
//
// Lifetime: each checked-out message holds a shared_ptr keepalive to its
// pool, so packets still sitting in engine events after an HCA (or the
// whole fabric) is torn down release into a pool that is guaranteed to
// still exist; the pool itself dies with the last outstanding message.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ib/types.hpp"

namespace mvflow::ib {

class MessageDataPool;

/// One in-flight message; data packets of the same message share it.
///
/// RC send/write payloads are zero-copy: `src` points into the sender's
/// registered region, which verbs rules require to stay untouched until
/// the WQE completes — and every consumer (delivery, retransmission) runs
/// before the completion is generated, so reading through the pointer is
/// equivalent to the eager deep-copy it replaces. Two paths instead
/// snapshot into `payload`, because their bytes have no such stability
/// contract: RDMA-read responses (responder memory can change after the
/// response is streamed) and UD sends (the completion is generated at post
/// time, before delivery, so the app may reuse the buffer while the
/// datagram is still in flight).
struct MessageData {
  WrOpcode opcode = WrOpcode::send;
  const std::byte* src = nullptr;      // send / rdma_write source (borrowed)
  std::vector<std::byte> payload;      // rdma_read response snapshot
  std::byte* remote_addr = nullptr;    // rdma_write / rdma_read target
  std::uint32_t rkey = 0;
  std::uint32_t length = 0;            // total message length

  /// The message bytes, wherever they live.
  const std::byte* bytes() const noexcept {
    return src != nullptr ? src : payload.data();
  }
};

/// Pool node: the message plus its intrusive refcount and owner linkage.
struct PooledMessage {
  MessageData data;
  std::uint32_t refs = 0;
  std::shared_ptr<MessageDataPool> keepalive;  // set while checked out
};

/// Shared handle to a pooled message (read-only view, like the
/// shared_ptr<const MessageData> it replaces — but copies are a non-atomic
/// increment and release is freelist recycling, not deallocation).
class MsgRef {
 public:
  MsgRef() noexcept = default;
  MsgRef(const MsgRef& o) noexcept : m_(o.m_) {
    if (m_ != nullptr) ++m_->refs;
  }
  MsgRef(MsgRef&& o) noexcept : m_(o.m_) { o.m_ = nullptr; }
  MsgRef& operator=(const MsgRef& o) noexcept {
    if (this != &o) {
      release_();
      m_ = o.m_;
      if (m_ != nullptr) ++m_->refs;
    }
    return *this;
  }
  MsgRef& operator=(MsgRef&& o) noexcept {
    if (this != &o) {
      release_();
      m_ = o.m_;
      o.m_ = nullptr;
    }
    return *this;
  }
  ~MsgRef() { release_(); }

  explicit operator bool() const noexcept { return m_ != nullptr; }
  const MessageData* operator->() const noexcept { return &m_->data; }
  const MessageData& operator*() const noexcept { return m_->data; }

  /// Writable view for the owner that just acquired the message; must not
  /// be used once packets referencing it are on the wire.
  MessageData& fill() noexcept { return m_->data; }

 private:
  friend class MessageDataPool;
  explicit MsgRef(PooledMessage* m) noexcept : m_(m) { ++m_->refs; }
  inline void release_() noexcept;
  PooledMessage* m_ = nullptr;
};

class MessageDataPool
    : public std::enable_shared_from_this<MessageDataPool> {
 public:
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t reuses = 0;  ///< served from the freelist
    std::uint64_t allocs = 0;  ///< grew the pool
    double hit_rate() const {
      return acquires == 0
                 ? 0.0
                 : static_cast<double>(reuses) / static_cast<double>(acquires);
    }

    /// Enumerate every counter as (name, value) for a metrics sink.
    template <typename Fn>
    void visit(Fn&& f) const {
      f("acquires", static_cast<double>(acquires));
      f("reuses", static_cast<double>(reuses));
      f("allocs", static_cast<double>(allocs));
      f("hit_rate", hit_rate());
    }
  };

  /// Check out a message; `fill()` it before putting packets on the wire.
  /// The payload vector arrives empty but keeps the capacity of its last
  /// use, so steady-state traffic never reallocates.
  MsgRef acquire() {
    ++stats_.acquires;
    PooledMessage* m;
    if (!free_.empty()) {
      m = free_.back();
      free_.pop_back();
      ++stats_.reuses;
    } else {
      // free_ can never hold more than all_.size() entries, so growing its
      // capacity in lockstep (geometrically, and before the node exists)
      // guarantees the noexcept release() below never allocates — a
      // push_back that threw bad_alloc there would terminate.
      if (free_.capacity() < all_.size() + 1) {
        free_.reserve(std::max<std::size_t>(16, 2 * (all_.size() + 1)));
      }
      all_.push_back(std::make_unique<PooledMessage>());
      m = all_.back().get();
      ++stats_.allocs;
    }
    m->keepalive = shared_from_this();
    return MsgRef(m);
  }

  const Stats& stats() const noexcept { return stats_; }
  std::size_t outstanding() const noexcept { return all_.size() - free_.size(); }

 private:
  friend class MsgRef;
  void release(PooledMessage* m) noexcept {
    m->data.payload.clear();  // capacity retained for the next acquire
    m->data.src = nullptr;
    m->data.remote_addr = nullptr;
    free_.push_back(m);
  }

  std::vector<std::unique_ptr<PooledMessage>> all_;
  std::vector<PooledMessage*> free_;
  Stats stats_;
};

inline void MsgRef::release_() noexcept {
  if (m_ == nullptr) return;
  if (--m_->refs == 0) {
    // Keep the pool alive through the release: if the HCA already dropped
    // its reference, the pool is destroyed right after the last message
    // returns — not before.
    const std::shared_ptr<MessageDataPool> keep = std::move(m_->keepalive);
    keep->release(m_);
  }
  m_ = nullptr;
}

}  // namespace mvflow::ib
