// Memory registration: the verbs requirement that every buffer used for
// communication is pinned and named by (lkey, rkey) before use. The
// registry enforces bounds and access rights exactly where a real HCA
// would (lkey at the local QP, rkey at the RDMA responder).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "ib/types.hpp"

namespace mvflow::ib {

struct RegionInfo {
  std::byte* base = nullptr;
  std::size_t length = 0;
  Access access = Access::none;
  std::uint32_t lkey = 0;
  std::uint32_t rkey = 0;
};

class MemoryRegistry {
 public:
  /// Register [data, data+len) with the given rights. Returns keys.
  MemoryRegionHandle register_region(std::span<std::byte> region, Access access);

  /// Invalidate a registration; later key lookups fail.
  void deregister(MemoryRegionHandle handle);

  /// Validate a local access (post_send source / post_recv destination).
  bool check_local(const std::byte* addr, std::size_t len, std::uint32_t lkey,
                   Access needed) const;

  /// Resolve a validated local-write destination (e.g. an RDMA-read landing
  /// buffer) to its mutable pointer inside the registered region; nullptr
  /// if the (addr, len, lkey) triple fails the local_write check. The
  /// registry owns the mutable view of every registered region, so this is
  /// where const-ness is legitimately dropped.
  std::byte* local_write_ptr(const std::byte* addr, std::size_t len,
                             std::uint32_t lkey) const;

  /// Look up a region by rkey for a remote (RDMA) access; nullopt if the
  /// key is unknown or was deregistered.
  std::optional<RegionInfo> find_rkey(std::uint32_t rkey) const;

  /// Validate a remote access against an rkey.
  bool check_remote(const std::byte* addr, std::size_t len, std::uint32_t rkey,
                    Access needed) const;

  std::size_t region_count() const noexcept { return regions_.size(); }
  std::size_t registered_bytes() const noexcept { return registered_bytes_; }

 private:
  const RegionInfo* find_lkey(std::uint32_t lkey) const noexcept;

  // An HCA registers a handful of regions, so key lookup — which is on the
  // per-WQE hot path (every post_send/post_recv validates) — is a linear
  // scan of one flat array, not a tree walk.
  std::vector<RegionInfo> regions_;
  std::uint32_t next_key_ = 1;
  std::size_t registered_bytes_ = 0;
};

}  // namespace mvflow::ib
