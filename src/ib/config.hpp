// Fabric calibration constants.
//
// Defaults approximate the paper's testbed: Mellanox InfiniHost 4X HCAs
// (10 Gb/s signalling, 8 Gb/s data) behind PCI-X 64/133 (the practical
// bottleneck, ~800 MB/s), one InfiniScale switch hop, 2 KB path MTU.
// See DESIGN.md §4 for the derivation.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace mvflow::ib {

/// One scheduled link outage: the named node's links (both directions)
/// black-hole every packet with `down <= t < up`.
struct LinkFlap {
  int node = 0;
  sim::TimePoint down{sim::Duration{0}};
  sim::TimePoint up{sim::Duration{0}};
};

/// One-shot targeted fault for tests: fires on the (skip+1)-th packet
/// matching the (src, dst, kind) filter, then disarms.
struct ScriptedFault {
  int src_node = -1;       ///< -1 matches any source node.
  int dst_node = -1;       ///< -1 matches any destination node.
  int kind = -1;           ///< -1 any, else static_cast<int>(PacketKind).
  std::uint64_t skip = 0;  ///< Matching packets to let through first.
  bool corrupt = false;    ///< Corrupt (deliver CRC-failed) instead of drop.
};

/// Deterministic fault-injection plan. Random faults draw from a dedicated
/// Xoshiro256** stream seeded here, so a given (config, workload) pair
/// always produces the same drops. With everything at its default the
/// injector is completely inert: no RNG draws, no extra branches taken on
/// the calibrated happy path.
struct FaultConfig {
  std::uint64_t seed = 0x5eedfa17u;
  double loss_prob = 0.0;     ///< Per-packet silent-drop probability.
  double corrupt_prob = 0.0;  ///< Per-packet CRC-corruption probability.
  std::vector<LinkFlap> flaps;
  std::vector<ScriptedFault> scripted;

  bool active() const {
    return loss_prob > 0.0 || corrupt_prob > 0.0 || !flaps.empty() ||
           !scripted.empty();
  }
};

struct FabricConfig {
  /// Effective per-direction bandwidth in bytes/second (min of 4X link and
  /// PCI-X DMA).
  double bandwidth_bps = 800e6;

  /// Propagation delay per hop (node <-> switch cable + PHY).
  sim::Duration wire_latency = sim::nanoseconds(250);

  /// Switch forwarding latency (InfiniScale class, cut-through ~200 ns;
  /// we model store-and-forward plus this constant).
  sim::Duration switch_latency = sim::nanoseconds(200);

  /// Path MTU: maximum payload bytes per packet.
  std::uint32_t mtu = 2048;

  /// Per-data-packet wire overhead (LRH+BTH+CRCs and friends).
  std::uint32_t data_header_bytes = 48;

  /// Wire size of ACK / NAK packets.
  std::uint32_t ack_bytes = 64;

  /// HCA work-request fetch/processing time per message at the sender.
  sim::Duration tx_wqe_process = sim::nanoseconds(500);

  /// Additional TX engine occupancy per packet (descriptor, DMA setup).
  sim::Duration per_packet_tx = sim::nanoseconds(150);

  /// Receiver-side processing from last packet to CQE visibility.
  sim::Duration rx_process = sim::nanoseconds(400);

  /// Receiver-Not-Ready retry timer: how long a requester waits after an
  /// RNR NAK before replaying the message. IB encodes discrete values from
  /// 10 us up to 655 ms; MPI implementations pick small ones.
  sim::Duration rnr_timeout = sim::microseconds(20);

  /// RNR retries before the QP errors out. < 0 means infinite (the paper's
  /// hardware-based scheme sets "retry count to infinite" for reliability).
  int rnr_retry_limit = -1;

  /// Transport (ACK) retransmission timeout: how long a requester waits
  /// for acknowledgment of the oldest unacked send before rewinding and
  /// replaying it (IB's Local ACK Timeout). Zero disables the timer —
  /// the seed's lossless-wire behavior — and keeps every other piece of
  /// the recovery protocol (sequence NAKs, duplicate re-ACKs) off too,
  /// so the calibrated happy path is bit-identical with it unset.
  sim::Duration transport_timeout = sim::Duration{0};

  /// Ceiling for the exponential backoff applied to transport_timeout on
  /// consecutive unacknowledged retries (doubles each attempt).
  sim::Duration transport_timeout_cap = sim::milliseconds(5);

  /// Transport retries before the QP errors out with
  /// WcStatus::transport_retry_exceeded. < 0 means infinite; 7 mirrors the
  /// common InfiniHost default.
  int transport_retry_limit = 7;

  /// Deterministic fault-injection plan (inert by default).
  FaultConfig fault;

  bool transport_enabled() const {
    return transport_timeout > sim::Duration{0};
  }

  /// Strict end-to-end credit pacing at the requester (IBA's optional
  /// credit mechanism): hold channel sends once unacked sends reach the
  /// last advertised credit count (+2 staleness allowance). Off by
  /// default — the paper's testbed demonstrably let senders race ahead
  /// (its dynamic scheme observed ~63 outstanding messages and its
  /// hardware scheme suffered RNR timeout storms); enable to study a
  /// stricter-pacing HCA.
  bool e2e_credit_pacing = false;
};

}  // namespace mvflow::ib
