// Fabric calibration constants.
//
// Defaults approximate the paper's testbed: Mellanox InfiniHost 4X HCAs
// (10 Gb/s signalling, 8 Gb/s data) behind PCI-X 64/133 (the practical
// bottleneck, ~800 MB/s), one InfiniScale switch hop, 2 KB path MTU.
// See DESIGN.md §4 for the derivation.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace mvflow::ib {

struct FabricConfig {
  /// Effective per-direction bandwidth in bytes/second (min of 4X link and
  /// PCI-X DMA).
  double bandwidth_bps = 800e6;

  /// Propagation delay per hop (node <-> switch cable + PHY).
  sim::Duration wire_latency = sim::nanoseconds(250);

  /// Switch forwarding latency (InfiniScale class, cut-through ~200 ns;
  /// we model store-and-forward plus this constant).
  sim::Duration switch_latency = sim::nanoseconds(200);

  /// Path MTU: maximum payload bytes per packet.
  std::uint32_t mtu = 2048;

  /// Per-data-packet wire overhead (LRH+BTH+CRCs and friends).
  std::uint32_t data_header_bytes = 48;

  /// Wire size of ACK / NAK packets.
  std::uint32_t ack_bytes = 64;

  /// HCA work-request fetch/processing time per message at the sender.
  sim::Duration tx_wqe_process = sim::nanoseconds(500);

  /// Additional TX engine occupancy per packet (descriptor, DMA setup).
  sim::Duration per_packet_tx = sim::nanoseconds(150);

  /// Receiver-side processing from last packet to CQE visibility.
  sim::Duration rx_process = sim::nanoseconds(400);

  /// Receiver-Not-Ready retry timer: how long a requester waits after an
  /// RNR NAK before replaying the message. IB encodes discrete values from
  /// 10 us up to 655 ms; MPI implementations pick small ones.
  sim::Duration rnr_timeout = sim::microseconds(20);

  /// RNR retries before the QP errors out. < 0 means infinite (the paper's
  /// hardware-based scheme sets "retry count to infinite" for reliability).
  int rnr_retry_limit = -1;

  /// Strict end-to-end credit pacing at the requester (IBA's optional
  /// credit mechanism): hold channel sends once unacked sends reach the
  /// last advertised credit count (+2 staleness allowance). Off by
  /// default — the paper's testbed demonstrably let senders race ahead
  /// (its dynamic scheme observed ~63 outstanding messages and its
  /// hardware scheme suffered RNR timeout storms); enable to study a
  /// stricter-pacing HCA.
  bool e2e_credit_pacing = false;
};

}  // namespace mvflow::ib
