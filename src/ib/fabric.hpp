// The InfiniBand fabric: N processing nodes, each with an HCA, attached by
// point-to-point links to one central switch (the paper's testbed topology:
// 8 nodes on one InfiniScale). Links are FIFO-serialized in each direction
// and the switch is store-and-forward plus a fixed forwarding delay, so
// bandwidth contention, head-of-line effects, and NAK/retransmit waste are
// all visible in simulated time.
//
// The fabric runs on either a single serial Engine (the golden reference)
// or a ShardedEngine with one shard per node (DESIGN.md §14). In sharded
// mode every node-local structure — the HCA, its QPs, the node's uplink
// Resource, its stats block — is touched only by that node's shard, and
// the one genuinely shared structure (the switch's per-destination output
// port, down_[dst]) is reserved exclusively inside barrier-drained cross
// posts keyed by switch-arrival time.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "ib/config.hpp"
#include "ib/hca.hpp"
#include "ib/packet.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/sharded.hpp"
#include "util/rng.hpp"

namespace mvflow::util::serial {
class BufWriter;
}

namespace mvflow::ib {

/// `packets`/`wire_bytes` count transmit attempts (the sender serializes a
/// packet onto its uplink whether or not a fault later eats it); the fault
/// counters record what never reached the destination HCA.
struct FabricStats {
  std::uint64_t packets = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t data_packets = 0;
  std::uint64_t control_packets = 0;  // ACK/NAK
  // Fault injector, per kind:
  std::uint64_t lost_packets = 0;          // random loss
  std::uint64_t corrupted_packets = 0;     // delivered with corrupted=true
  std::uint64_t flap_dropped_packets = 0;  // black-holed by a link flap
  std::uint64_t scripted_faults_fired = 0; // one-shot scripted drop/corrupt

  bool operator==(const FabricStats&) const = default;

  /// Enumerate every counter as (name, value) for a metrics sink.
  template <typename Fn>
  void visit(Fn&& f) const {
    f("packets", static_cast<double>(packets));
    f("wire_bytes", static_cast<double>(wire_bytes));
    f("data_packets", static_cast<double>(data_packets));
    f("control_packets", static_cast<double>(control_packets));
    f("lost_packets", static_cast<double>(lost_packets));
    f("corrupted_packets", static_cast<double>(corrupted_packets));
    f("flap_dropped_packets", static_cast<double>(flap_dropped_packets));
    f("scripted_faults_fired", static_cast<double>(scripted_faults_fired));
  }
};

class Fabric {
 public:
  Fabric(sim::Engine& engine, FabricConfig config, int num_nodes);
  /// Sharded fabric: `engine` must have exactly one shard per node. Fault
  /// injection runs one dedicated RNG stream *per source node* (each drawn
  /// only from that node's shard), so random faults stay deterministic at
  /// every worker count — at the cost of a different drop pattern than the
  /// serial engine's shared stream. Scripted faults must pin src_node, for
  /// the same single-writer reason.
  Fabric(sim::ShardedEngine& engine, FabricConfig config, int num_nodes);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  Hca& hca(int node);
  int num_nodes() const noexcept { return static_cast<int>(nodes_.size()); }
  /// The engine node-local work runs on: node's shard when sharded, the
  /// one serial engine otherwise. Everything a QP/HCA schedules must go
  /// through its own node's engine.
  sim::Engine& engine_for(int node) noexcept {
    return sharded_ != nullptr ? sharded_->shard(static_cast<std::size_t>(node))
                               : *serial_engine_;
  }
  /// Shard-0 / serial engine; callers that act for a specific node use
  /// engine_for.
  sim::Engine& engine() noexcept { return engine_for(0); }
  /// Non-null in sharded mode.
  sim::ShardedEngine* sharded_engine() noexcept { return sharded_; }
  const FabricConfig& config() const noexcept { return config_; }

  /// Smallest possible cross-node interaction latency: two minimum packet
  /// serializations (a zero-payload data packet's header, or an ACK,
  /// whichever is smaller on the wire) plus both wire hops, the switch
  /// forwarding delay, and receive processing. This is the sharded
  /// engine's lookahead — any event a shard executes at time T can first
  /// be observed by another shard at T + min_lookahead().
  sim::Duration min_lookahead() const;

  /// Connect two QPs into an RC pair (both transition to ready).
  static void connect(QueuePair& a, QueuePair& b);

  /// Connect a QP to itself (same-process loopback endpoint).
  static void connect_loopback(QueuePair& q);

  /// Wire/fault counters summed over every node's block. Counters are kept
  /// per source node (cache-line padded) so concurrent shard windows never
  /// write a shared line; the sum is deterministic regardless of worker
  /// count.
  FabricStats stats() const noexcept;

  /// Message-pool counters aggregated over every HCA (hit rate ≈ 1.0 after
  /// warmup is the zero-alloc steady-state invariant).
  MessageDataPool::Stats msg_pool_stats() const;

  /// Link utilization of a node's uplink (toward the switch).
  sim::Duration uplink_busy(int node) const { return up_.at(node).total_busy(); }

  // ---- internal, used by QueuePair ----
  QpNumber alloc_qpn() { return next_qpn_++; }

  // ---- fabric-global QPN index (O(1) per-packet lookup) ----------------
  //
  // QPNs are allocated fabric-globally and monotonically from kFirstQpn,
  // so one flat vector maps any QPN to its owning node, its dense slot in
  // that node's HCA, and an owner-set cookie (the MPI device stores its
  // endpoint slot there, collapsing the per-completion qpn→peer→endpoint
  // chain to one array read). Mutation is safe without locks because QP
  // creation/destruction is setup-time or serial-mode-runtime only: the
  // sharded world require()s off on-demand connect and reconnect-under-
  // faults, the two paths that create or destroy QPs mid-run.
  static constexpr QpNumber kFirstQpn = 100;
  static constexpr std::uint32_t kNoCookie = 0xffffffffu;
  struct QpnEntry {
    std::int32_t node = -1;  // -1 = never allocated or destroyed
    std::uint32_t slot = 0;  // dense index into the owning HCA's qps_
    std::uint32_t cookie = kNoCookie;
  };

  void bind_qpn(QpNumber qpn, int node, std::uint32_t slot) {
    const std::size_t i = static_cast<std::size_t>(qpn - kFirstQpn);
    if (i >= qpn_index_.size()) qpn_index_.resize(i + 1);
    qpn_index_[i] = QpnEntry{node, slot, kNoCookie};
  }
  void unbind_qpn(QpNumber qpn) {
    qpn_index_[static_cast<std::size_t>(qpn - kFirstQpn)] = QpnEntry{};
  }
  /// nullptr when the QPN was never allocated or has been destroyed.
  const QpnEntry* qpn_entry(QpNumber qpn) const noexcept {
    const std::size_t i = static_cast<std::size_t>(qpn - kFirstQpn);
    if (qpn < kFirstQpn || i >= qpn_index_.size()) return nullptr;
    const QpnEntry& e = qpn_index_[i];
    return e.node < 0 ? nullptr : &e;
  }
  void set_qpn_cookie(QpNumber qpn, std::uint32_t cookie) {
    qpn_index_[static_cast<std::size_t>(qpn - kFirstQpn)].cookie = cookie;
  }

  /// Put a packet on the wire from src_node no earlier than `earliest`;
  /// schedules its delivery at the destination HCA.
  void transmit(int src_node, int dst_node, Packet pkt, sim::TimePoint earliest);

  /// Wire size of a packet (payload + per-kind overhead).
  std::uint32_t wire_bytes(const Packet& pkt) const;

  // ---- fault recording (chaos-campaign failing-seed minimization) ----
  /// One fault the injector actually fired, in replayable scripted form:
  /// `fault` targets exactly the packet that was hit (src/dst/kind pinned,
  /// skip = un-faulted survivors of that filter at fire time), so replaying
  /// the run with loss/corrupt probabilities zeroed and the recorded list
  /// as the scripted plan reproduces the identical fault sequence.
  struct RecordedFault {
    sim::TimePoint at{sim::Duration{0}};
    ScriptedFault fault;
  };
  /// Arm recording (off by default: the log costs a map lookup per packet).
  void enable_fault_recording();
  /// Every fired fault, merged chronologically across source nodes.
  std::vector<RecordedFault> recorded_faults() const;

  /// Serialize the fabric's complete state for the snapshot restore audit:
  /// wire/fault counters, QPN allocator, fault-injector RNG stream and
  /// scripted-fault progress, per-node link occupancy, and each HCA's
  /// registry and message-pool bookkeeping.
  void serialize_state(util::serial::BufWriter& w) const;

 private:
  void deliver(int node, const Packet& pkt);

  /// True when a scheduled flap has `node`'s links dark at time t.
  bool link_down(int node, sim::TimePoint t) const;

  /// Applies the fault plan to a packet about to be scheduled for delivery.
  /// Returns false when the packet is consumed by a fault (drop); may set
  /// pkt.corrupted. Only called when config_.fault.active(). `rng` is the
  /// stream owned by the calling context (the shared stream on the serial
  /// engine, the source node's stream when sharded); `when` timestamps the
  /// fault log entry for the chronological merge.
  bool apply_faults(int src_node, int dst_node, Packet& pkt,
                    util::Xoshiro256& rng, sim::TimePoint when);
  /// The fault RNG the source node's context must draw from.
  util::Xoshiro256& fault_rng_for(int src_node) noexcept {
    return sharded_ != nullptr
               ? node_fault_rng_[static_cast<std::size_t>(src_node)]
               : fault_rng_;
  }
  void record_fault(int src_node, int dst_node, const Packet& pkt,
                    sim::TimePoint when, bool corrupt);

  struct ScriptedState {
    std::uint64_t seen = 0;
    bool fired = false;
  };

  /// One stats block per source node, padded so two shards bumping their
  /// own counters never share a cache line.
  struct alignas(64) NodeStats : FabricStats {};

  Fabric(sim::Engine* serial, sim::ShardedEngine* sharded, FabricConfig config,
         int num_nodes);

  sim::Engine* serial_engine_ = nullptr;   // exactly one of these two
  sim::ShardedEngine* sharded_ = nullptr;  // is non-null
  FabricConfig config_;
  std::vector<std::unique_ptr<Hca>> nodes_;
  std::vector<sim::Resource> up_;    // node -> switch
  std::vector<sim::Resource> down_;  // switch -> node
  QpNumber next_qpn_ = kFirstQpn;  // QP creation is setup-time (pre-run) only
  std::vector<QpnEntry> qpn_index_;  // (qpn - kFirstQpn) -> owner; see above
  std::vector<NodeStats> node_stats_;  // indexed by source node
  util::Xoshiro256 fault_rng_;
  /// Sharded mode: one independent stream per source node, each touched
  /// only by its own shard (seeded from fault.seed with per-node offsets).
  std::vector<util::Xoshiro256> node_fault_rng_;
  std::vector<ScriptedState> scripted_;

  /// Fault log, one block per source node (single-writer in sharded mode,
  /// like the stats blocks). `passed` counts the *un-faulted* survivors per
  /// (dst, kind) — exactly the skip a replayed scripted fault needs.
  struct alignas(64) NodeFaultLog {
    std::vector<RecordedFault> fired;
    std::map<std::uint64_t, std::uint64_t> passed;  // (dst << 32) | kind
  };
  bool record_faults_ = false;
  std::vector<NodeFaultLog> fault_log_;
};

}  // namespace mvflow::ib
