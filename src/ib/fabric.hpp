// The InfiniBand fabric: N processing nodes, each with an HCA, attached by
// point-to-point links to one central switch (the paper's testbed topology:
// 8 nodes on one InfiniScale). Links are FIFO-serialized in each direction
// and the switch is store-and-forward plus a fixed forwarding delay, so
// bandwidth contention, head-of-line effects, and NAK/retransmit waste are
// all visible in simulated time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ib/config.hpp"
#include "ib/hca.hpp"
#include "ib/packet.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "util/rng.hpp"

namespace mvflow::util::serial {
class BufWriter;
}

namespace mvflow::ib {

/// `packets`/`wire_bytes` count transmit attempts (the sender serializes a
/// packet onto its uplink whether or not a fault later eats it); the fault
/// counters record what never reached the destination HCA.
struct FabricStats {
  std::uint64_t packets = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t data_packets = 0;
  std::uint64_t control_packets = 0;  // ACK/NAK
  // Fault injector, per kind:
  std::uint64_t lost_packets = 0;          // random loss
  std::uint64_t corrupted_packets = 0;     // delivered with corrupted=true
  std::uint64_t flap_dropped_packets = 0;  // black-holed by a link flap
  std::uint64_t scripted_faults_fired = 0; // one-shot scripted drop/corrupt

  bool operator==(const FabricStats&) const = default;

  /// Enumerate every counter as (name, value) for a metrics sink.
  template <typename Fn>
  void visit(Fn&& f) const {
    f("packets", static_cast<double>(packets));
    f("wire_bytes", static_cast<double>(wire_bytes));
    f("data_packets", static_cast<double>(data_packets));
    f("control_packets", static_cast<double>(control_packets));
    f("lost_packets", static_cast<double>(lost_packets));
    f("corrupted_packets", static_cast<double>(corrupted_packets));
    f("flap_dropped_packets", static_cast<double>(flap_dropped_packets));
    f("scripted_faults_fired", static_cast<double>(scripted_faults_fired));
  }
};

class Fabric {
 public:
  Fabric(sim::Engine& engine, FabricConfig config, int num_nodes);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  Hca& hca(int node);
  int num_nodes() const noexcept { return static_cast<int>(nodes_.size()); }
  sim::Engine& engine() noexcept { return engine_; }
  const FabricConfig& config() const noexcept { return config_; }

  /// Connect two QPs into an RC pair (both transition to ready).
  static void connect(QueuePair& a, QueuePair& b);

  /// Connect a QP to itself (same-process loopback endpoint).
  static void connect_loopback(QueuePair& q);

  const FabricStats& stats() const noexcept { return stats_; }

  /// Message-pool counters aggregated over every HCA (hit rate ≈ 1.0 after
  /// warmup is the zero-alloc steady-state invariant).
  MessageDataPool::Stats msg_pool_stats() const;

  /// Link utilization of a node's uplink (toward the switch).
  sim::Duration uplink_busy(int node) const { return up_.at(node).total_busy(); }

  // ---- internal, used by QueuePair ----
  QpNumber alloc_qpn() { return next_qpn_++; }

  /// Put a packet on the wire from src_node no earlier than `earliest`;
  /// schedules its delivery at the destination HCA.
  void transmit(int src_node, int dst_node, Packet pkt, sim::TimePoint earliest);

  /// Wire size of a packet (payload + per-kind overhead).
  std::uint32_t wire_bytes(const Packet& pkt) const;

  /// Serialize the fabric's complete state for the snapshot restore audit:
  /// wire/fault counters, QPN allocator, fault-injector RNG stream and
  /// scripted-fault progress, per-node link occupancy, and each HCA's
  /// registry and message-pool bookkeeping.
  void serialize_state(util::serial::BufWriter& w) const;

 private:
  void deliver(int node, const Packet& pkt);

  /// True when a scheduled flap has `node`'s links dark at time t.
  bool link_down(int node, sim::TimePoint t) const;

  /// Applies the fault plan to a packet about to be scheduled for delivery.
  /// Returns false when the packet is consumed by a fault (drop); may set
  /// pkt.corrupted. Only called when config_.fault.active().
  bool apply_faults(int src_node, int dst_node, Packet& pkt);

  struct ScriptedState {
    std::uint64_t seen = 0;
    bool fired = false;
  };

  sim::Engine& engine_;
  FabricConfig config_;
  std::vector<std::unique_ptr<Hca>> nodes_;
  std::vector<sim::Resource> up_;    // node -> switch
  std::vector<sim::Resource> down_;  // switch -> node
  QpNumber next_qpn_ = 100;
  FabricStats stats_;
  util::Xoshiro256 fault_rng_;
  std::vector<ScriptedState> scripted_;
};

}  // namespace mvflow::ib
