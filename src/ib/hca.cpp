#include "ib/hca.hpp"

#include "ib/fabric.hpp"
#include "util/check.hpp"

namespace mvflow::ib {

Hca::Hca(Fabric& fabric, int node_id) : fabric_(fabric), node_id_(node_id) {}

sim::Engine& Hca::engine() noexcept { return fabric_.engine_for(node_id_); }

MemoryRegionHandle Hca::register_memory(std::span<std::byte> region,
                                        Access access) {
  return memory_.register_region(region, access);
}

void Hca::deregister_memory(MemoryRegionHandle handle) {
  memory_.deregister(handle);
}

std::shared_ptr<CompletionQueue> Hca::create_cq() {
  return std::make_shared<CompletionQueue>(engine());
}

std::shared_ptr<QueuePair> Hca::create_qp(
    std::shared_ptr<CompletionQueue> send_cq,
    std::shared_ptr<CompletionQueue> recv_cq, QpType type) {
  const QpNumber qpn = fabric_.alloc_qpn();
  auto qp = std::make_shared<QueuePair>(*this, qpn, std::move(send_cq),
                                        std::move(recv_cq), type);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    util::require(qps_[slot] == nullptr, "freelist slot still occupied");
    qps_[slot] = qp;
  } else {
    slot = static_cast<std::uint32_t>(qps_.size());
    qps_.push_back(qp);
  }
  ++live_qps_;
  fabric_.bind_qpn(qpn, node_id_, slot);
  // Density invariant: reconnect churn reuses slots, so the table never
  // grows past the peak concurrent QP count.
  util::require(live_qps_ + free_slots_.size() == qps_.size(),
                "QP slot table not dense");
  return qp;
}

void Hca::destroy_qp(QpNumber qpn) {
  const Fabric::QpnEntry* e = fabric_.qpn_entry(qpn);
  util::require(e != nullptr && e->node == node_id_,
                "destroy of unknown QP");
  qps_[e->slot].reset();
  free_slots_.push_back(e->slot);
  --live_qps_;
  fabric_.unbind_qpn(qpn);
  util::require(live_qps_ + free_slots_.size() == qps_.size(),
                "QP slot table not dense");
}

QueuePair* Hca::find_qp(QpNumber qpn) {
  const Fabric::QpnEntry* e = fabric_.qpn_entry(qpn);
  if (e == nullptr || e->node != node_id_) return nullptr;
  return qps_[e->slot].get();
}

}  // namespace mvflow::ib
