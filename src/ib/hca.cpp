#include "ib/hca.hpp"

#include "ib/fabric.hpp"
#include "util/check.hpp"

namespace mvflow::ib {

Hca::Hca(Fabric& fabric, int node_id) : fabric_(fabric), node_id_(node_id) {}

sim::Engine& Hca::engine() noexcept { return fabric_.engine_for(node_id_); }

MemoryRegionHandle Hca::register_memory(std::span<std::byte> region,
                                        Access access) {
  return memory_.register_region(region, access);
}

void Hca::deregister_memory(MemoryRegionHandle handle) {
  memory_.deregister(handle);
}

std::shared_ptr<CompletionQueue> Hca::create_cq() {
  return std::make_shared<CompletionQueue>(engine());
}

std::shared_ptr<QueuePair> Hca::create_qp(
    std::shared_ptr<CompletionQueue> send_cq,
    std::shared_ptr<CompletionQueue> recv_cq, QpType type) {
  const QpNumber qpn = fabric_.alloc_qpn();
  auto qp = std::make_shared<QueuePair>(*this, qpn, std::move(send_cq),
                                        std::move(recv_cq), type);
  qps_.emplace_back(qpn, qp);
  return qp;
}

void Hca::destroy_qp(QpNumber qpn) {
  for (auto it = qps_.begin(); it != qps_.end(); ++it) {
    if (it->first == qpn) {
      qps_.erase(it);
      return;
    }
  }
  util::require(false, "destroy of unknown QP");
}

QueuePair* Hca::find_qp(QpNumber qpn) {
  for (const auto& [n, qp] : qps_) {
    if (n == qpn) return qp.get();
  }
  return nullptr;
}

}  // namespace mvflow::ib
