#include "ib/cq.hpp"

namespace mvflow::ib {

std::optional<Completion> CompletionQueue::poll() {
  if (entries_.empty()) return std::nullopt;
  Completion wc = entries_.front();
  entries_.pop_front();
  return wc;
}

void CompletionQueue::push(const Completion& wc) {
  entries_.push_back(wc);
  ++total_pushed_;
  nonempty_.notify_all();
}

}  // namespace mvflow::ib
