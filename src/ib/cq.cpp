#include "ib/cq.hpp"

namespace mvflow::ib {

std::optional<Completion> CompletionQueue::poll() {
  if (entries_.empty()) return std::nullopt;
  Completion wc = entries_.front();
  entries_.pop_front();
  return wc;
}

void CompletionQueue::push(const Completion& wc) {
  entries_.push_back(wc);
  // Stamp the causal token of the event pushing this completion (one load +
  // store; 0 whenever no profiler is armed). Stamping here, not at the many
  // QP push sites, keeps the producer protocol code cause-agnostic.
  entries_.back().cause = engine_.cause();
  ++total_pushed_;
  nonempty_.notify_all();
}

}  // namespace mvflow::ib
