// Core verbs-level types: work requests, completions, access flags.
//
// These mirror the InfiniBand Verbs surface the paper's MPI sits on
// (post_send / post_recv / poll_cq, channel and memory semantics), reduced
// to what an RC-service MPI actually touches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mvflow::ib {

using QpNumber = std::uint32_t;
using Msn = std::uint64_t;  ///< Message sequence number within a QP.

/// Memory-region access rights (combinable).
enum class Access : std::uint32_t {
  none = 0,
  local_read = 1u << 0,
  local_write = 1u << 1,
  remote_read = 1u << 2,
  remote_write = 1u << 3,
};

constexpr Access operator|(Access a, Access b) {
  return static_cast<Access>(static_cast<std::uint32_t>(a) |
                             static_cast<std::uint32_t>(b));
}
constexpr bool has_access(Access set, Access bit) {
  return (static_cast<std::uint32_t>(set) & static_cast<std::uint32_t>(bit)) != 0;
}

/// Handle to a registered memory region.
struct MemoryRegionHandle {
  std::uint32_t lkey = 0;
  std::uint32_t rkey = 0;
  bool valid() const { return lkey != 0; }
};

enum class WrOpcode : std::uint8_t { send, rdma_write, rdma_read };

/// Transport service type of a queue pair (the two services implemented by
/// the paper's era of hardware).
enum class QpType : std::uint8_t {
  rc,  ///< Reliable Connection: connected, acked, in-order, RNR-retried.
  ud,  ///< Unreliable Datagram: connectionless, one MTU max, silent drops.
};

/// Work request posted to a send queue. Channel semantics (send) describe
/// only the source; memory semantics (rdma_*) also name the remote side.
struct SendWr {
  std::uint64_t wr_id = 0;
  WrOpcode opcode = WrOpcode::send;
  const std::byte* local_addr = nullptr;
  std::uint32_t length = 0;
  std::uint32_t lkey = 0;
  // RDMA only:
  std::byte* remote_addr = nullptr;
  std::uint32_t rkey = 0;
  bool signaled = true;  ///< Generate a CQE on completion.
  // UD only: destination "address handle" (node + QPN per work request).
  int dest_node = -1;
  QpNumber dest_qpn = 0;
};

/// Work request posted to a receive queue (channel semantics destination).
struct RecvWr {
  std::uint64_t wr_id = 0;
  std::byte* local_addr = nullptr;
  std::uint32_t length = 0;
  std::uint32_t lkey = 0;
};

enum class WcStatus : std::uint8_t {
  success,
  local_protection_error,   ///< lkey/bounds check failed at this HCA
  remote_access_error,      ///< rkey/bounds check failed at the responder
  rnr_retry_exceeded,       ///< receiver-not-ready retries exhausted
  transport_retry_exceeded, ///< ACK-timeout retransmissions exhausted
  length_error,             ///< inbound message larger than the posted buffer
  flushed,                  ///< QP entered error state; WR flushed
};

enum class WcOpcode : std::uint8_t { send, recv, rdma_write, rdma_read };

/// Work completion reported through a CQ.
struct Completion {
  std::uint64_t wr_id = 0;
  WcStatus status = WcStatus::success;
  WcOpcode opcode = WcOpcode::send;
  std::uint32_t byte_len = 0;
  QpNumber qp_num = 0;      ///< Local QP this completion belongs to.
  QpNumber src_qp = 0;      ///< Remote QP (recv completions).
  /// Engine causal token at CQ push time (sim::Engine::cause). Carries the
  /// originating wire message's chain id across the poll boundary, where
  /// one process wakeup may drain completions of many causes. Always 0 when
  /// no profiler is armed; never serialized.
  std::uint64_t cause = 0;
  bool ok() const { return status == WcStatus::success; }
};

/// Per-QP protocol statistics; drives the hardware-scheme analysis
/// (RNR storms, retransmitted bytes) in the benchmarks.
struct QpStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t rnr_naks_received = 0;  ///< As requester.
  std::uint64_t rnr_naks_sent = 0;      ///< As responder (no buffer posted).
  std::uint64_t retransmitted_messages = 0;
  std::uint64_t retransmitted_bytes = 0;
  std::uint64_t packets_dropped = 0;    ///< Out-of-sequence / no-buffer drops.
  std::uint64_t transport_retries = 0;  ///< ACK-timeout firings that replayed.
  std::uint64_t seq_naks_sent = 0;      ///< As responder (sequence gap seen).
  std::uint64_t seq_naks_received = 0;  ///< As requester.
  std::uint64_t corrupt_packets_received = 0;  ///< CRC-failed arrivals dropped.
  // Receive-WQE ledger (obs/audit.hpp, DESIGN.md §15). Every WQE posted to
  // the receive queue must end exactly one way: still queued, consumed by
  // the in-progress inbound message, completed through the CQ, or flushed
  // by an error transition. The auditor checks
  //   posted == queue depth + (assembly holds one) + completed + flushed.
  std::uint64_t recv_wqes_posted = 0;
  std::uint64_t recv_wqes_completed = 0;  ///< CQEs produced (any status).
  std::uint64_t recv_wqes_flushed = 0;    ///< Discarded by enter_error.
  std::int64_t last_advertised_credits = -1;  ///< From the newest ACK.

  void accumulate(const QpStats& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    packets_sent += o.packets_sent;
    messages_received += o.messages_received;
    rnr_naks_received += o.rnr_naks_received;
    rnr_naks_sent += o.rnr_naks_sent;
    retransmitted_messages += o.retransmitted_messages;
    retransmitted_bytes += o.retransmitted_bytes;
    packets_dropped += o.packets_dropped;
    transport_retries += o.transport_retries;
    seq_naks_sent += o.seq_naks_sent;
    seq_naks_received += o.seq_naks_received;
    corrupt_packets_received += o.corrupt_packets_received;
    recv_wqes_posted += o.recv_wqes_posted;
    recv_wqes_completed += o.recv_wqes_completed;
    recv_wqes_flushed += o.recv_wqes_flushed;
  }

  /// Enumerate every counter as (name, value) for a metrics sink.
  template <typename Fn>
  void visit(Fn&& f) const {
    f("messages_sent", static_cast<double>(messages_sent));
    f("bytes_sent", static_cast<double>(bytes_sent));
    f("packets_sent", static_cast<double>(packets_sent));
    f("messages_received", static_cast<double>(messages_received));
    f("rnr_naks_received", static_cast<double>(rnr_naks_received));
    f("rnr_naks_sent", static_cast<double>(rnr_naks_sent));
    f("retransmitted_messages", static_cast<double>(retransmitted_messages));
    f("retransmitted_bytes", static_cast<double>(retransmitted_bytes));
    f("packets_dropped", static_cast<double>(packets_dropped));
    f("transport_retries", static_cast<double>(transport_retries));
    f("seq_naks_sent", static_cast<double>(seq_naks_sent));
    f("seq_naks_received", static_cast<double>(seq_naks_received));
    f("corrupt_packets_received",
      static_cast<double>(corrupt_packets_received));
    f("recv_wqes_posted", static_cast<double>(recv_wqes_posted));
    f("recv_wqes_completed", static_cast<double>(recv_wqes_completed));
    f("recv_wqes_flushed", static_cast<double>(recv_wqes_flushed));
    f("last_advertised_credits",
      static_cast<double>(last_advertised_credits));
  }
};

}  // namespace mvflow::ib
