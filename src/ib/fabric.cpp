#include "ib/fabric.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/serial.hpp"

namespace mvflow::ib {

Fabric::Fabric(sim::Engine* serial, sim::ShardedEngine* sharded,
               FabricConfig config, int num_nodes)
    : serial_engine_(serial),
      sharded_(sharded),
      config_(config),
      up_(num_nodes),
      down_(num_nodes),
      node_stats_(num_nodes),
      fault_rng_(config.fault.seed),
      scripted_(config.fault.scripted.size()) {
  util::require(num_nodes > 0, "fabric needs at least one node");
  util::require(config_.mtu >= 256, "MTU too small");
  nodes_.reserve(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Hca>(*this, i));
  }
}

Fabric::Fabric(sim::Engine& engine, FabricConfig config, int num_nodes)
    : Fabric(&engine, nullptr, std::move(config), num_nodes) {}

Fabric::Fabric(sim::ShardedEngine& engine, FabricConfig config, int num_nodes)
    : Fabric(nullptr, &engine, std::move(config), num_nodes) {
  util::require(engine.shard_count() == static_cast<std::size_t>(num_nodes),
                "sharded fabric needs exactly one engine shard per node");
  // Random faults draw from per-source-node streams (single-writer per
  // shard); scripted state is likewise owned by the source shard, so a
  // sharded script must pin its source.
  for (const ScriptedFault& f : config_.fault.scripted) {
    util::require(f.src_node >= 0,
                  "sharded fault scripts must pin src_node: the scripted "
                  "fire/skip state is owned by the source node's shard");
  }
  if (config_.fault.active()) {
    node_fault_rng_.reserve(static_cast<std::size_t>(num_nodes));
    for (int n = 0; n < num_nodes; ++n) {
      node_fault_rng_.emplace_back(config_.fault.seed +
                                   0x9e3779b97f4a7c15ULL *
                                       static_cast<std::uint64_t>(n + 1));
    }
  }
  engine.set_lookahead(min_lookahead());
}

sim::Duration Fabric::min_lookahead() const {
  // The smallest packet either direction of a conversation can put on the
  // wire: a zero-payload data packet is just its header, and that is
  // smaller than an ACK here (48 vs 64 bytes by default).
  const std::uint32_t min_wire =
      std::min(config_.data_header_bytes, config_.ack_bytes);
  const sim::Duration ser_min =
      config_.per_packet_tx + sim::transfer_time(min_wire, config_.bandwidth_bps);
  return ser_min + ser_min + config_.wire_latency + config_.wire_latency +
         config_.switch_latency + config_.rx_process;
}

Hca& Fabric::hca(int node) {
  util::require(node >= 0 && node < num_nodes(), "node id out of range");
  return *nodes_[static_cast<std::size_t>(node)];
}

void Fabric::connect(QueuePair& a, QueuePair& b) {
  a.set_remote(b.hca_.node_id(), b.qpn());
  b.set_remote(a.hca_.node_id(), a.qpn());
}

void Fabric::connect_loopback(QueuePair& q) {
  q.set_remote(q.hca_.node_id(), q.qpn());
}

std::uint32_t Fabric::wire_bytes(const Packet& pkt) const {
  switch (pkt.kind) {
    case PacketKind::data:
    case PacketKind::rdma_read_resp:
      return pkt.payload_bytes + config_.data_header_bytes;
    case PacketKind::rdma_read_req:
      return config_.data_header_bytes + 16;  // reth: addr + rkey + len
    case PacketKind::ack:
    case PacketKind::rnr_nak:
    case PacketKind::access_nak:
    case PacketKind::seq_nak:
      return config_.ack_bytes;
  }
  return config_.ack_bytes;
}

bool Fabric::link_down(int node, sim::TimePoint t) const {
  for (const LinkFlap& f : config_.fault.flaps) {
    if (f.node == node && t >= f.down && t < f.up) return true;
  }
  return false;
}

void Fabric::enable_fault_recording() {
  record_faults_ = true;
  fault_log_.clear();
  fault_log_.resize(nodes_.size());
}

namespace {
std::uint64_t fault_key(int dst_node, PacketKind kind) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst_node))
          << 32) |
         static_cast<std::uint32_t>(kind);
}
}  // namespace

void Fabric::record_fault(int src_node, int dst_node, const Packet& pkt,
                          sim::TimePoint when, bool corrupt) {
  if (!record_faults_) return;
  NodeFaultLog& log = fault_log_[static_cast<std::size_t>(src_node)];
  RecordedFault rf;
  rf.at = when;
  rf.fault.src_node = src_node;
  rf.fault.dst_node = dst_node;
  rf.fault.kind = static_cast<int>(pkt.kind);
  rf.fault.skip = log.passed[fault_key(dst_node, pkt.kind)];
  rf.fault.corrupt = corrupt;
  log.fired.push_back(rf);
}

std::vector<Fabric::RecordedFault> Fabric::recorded_faults() const {
  // Chronological merge keeping each node's fire order (entries of one
  // (src, dst, kind) filter all come from one node, so any order-preserving
  // merge yields a valid replay script).
  struct Item {
    RecordedFault rf;
    int src;
    std::size_t idx;
  };
  std::vector<Item> items;
  for (std::size_t n = 0; n < fault_log_.size(); ++n) {
    const NodeFaultLog& log = fault_log_[n];
    for (std::size_t i = 0; i < log.fired.size(); ++i) {
      items.push_back(Item{log.fired[i], static_cast<int>(n), i});
    }
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.rf.at != b.rf.at) return a.rf.at < b.rf.at;
    if (a.src != b.src) return a.src < b.src;
    return a.idx < b.idx;
  });
  std::vector<RecordedFault> out;
  out.reserve(items.size());
  for (Item& it : items) out.push_back(it.rf);
  return out;
}

bool Fabric::apply_faults(int src_node, int dst_node, Packet& pkt,
                          util::Xoshiro256& rng, sim::TimePoint when) {
  const FaultConfig& fc = config_.fault;
  const bool was_corrupted = pkt.corrupted;
  // Scripted one-shots first: deterministic targeting for tests. The
  // src/dst/kind filters run before any state is touched, so a script
  // pinned to src_node is single-writer in sharded mode (serial behavior
  // unchanged: `seen` still counts exactly the filter-matching packets).
  for (std::size_t i = 0; i < fc.scripted.size(); ++i) {
    const ScriptedFault& f = fc.scripted[i];
    if (f.src_node >= 0 && f.src_node != src_node) continue;
    if (f.dst_node >= 0 && f.dst_node != dst_node) continue;
    if (f.kind >= 0 && f.kind != static_cast<int>(pkt.kind)) continue;
    ScriptedState& st = scripted_[i];
    if (st.fired) continue;
    if (st.seen++ < f.skip) continue;
    st.fired = true;
    ++node_stats_[src_node].scripted_faults_fired;
    if (!f.corrupt) {
      record_fault(src_node, dst_node, pkt, when, false);
      return false;
    }
    pkt.corrupted = true;
    ++node_stats_[src_node].corrupted_packets;
    record_fault(src_node, dst_node, pkt, when, true);
    break;
  }
  if (fc.loss_prob > 0.0 && rng.uniform() < fc.loss_prob) {
    ++node_stats_[src_node].lost_packets;
    record_fault(src_node, dst_node, pkt, when, false);
    return false;
  }
  if (!pkt.corrupted && fc.corrupt_prob > 0.0 &&
      rng.uniform() < fc.corrupt_prob) {
    pkt.corrupted = true;
    ++node_stats_[src_node].corrupted_packets;
    record_fault(src_node, dst_node, pkt, when, true);
  }
  if (record_faults_ && pkt.corrupted == was_corrupted) {
    // Un-faulted survivor: advances the skip a future recorded fault on
    // this (dst, kind) filter will need. Faulted packets deliberately do
    // not count — a replayed drop/corrupt stops the scripted loop, so the
    // replay's `seen` never counts them either.
    ++fault_log_[static_cast<std::size_t>(src_node)]
          .passed[fault_key(dst_node, pkt.kind)];
  }
  return true;
}

void Fabric::transmit(int src_node, int dst_node, Packet pkt,
                      sim::TimePoint earliest) {
  util::require(dst_node >= 0 && dst_node < num_nodes(),
                "transmit to unknown node");
  const std::uint32_t wire = wire_bytes(pkt);
  const sim::Duration ser =
      config_.per_packet_tx + sim::transfer_time(wire, config_.bandwidth_bps);

  // Always charged to the *source* node's stats block: transmit runs on
  // the source shard in sharded mode, so the block is never contended.
  NodeStats& st = node_stats_[src_node];
  ++st.packets;
  st.wire_bytes += wire;
  if (pkt.kind == PacketKind::ack || pkt.kind == PacketKind::rnr_nak ||
      pkt.kind == PacketKind::access_nak ||
      pkt.kind == PacketKind::seq_nak) {
    ++st.control_packets;
  } else {
    ++st.data_packets;
  }

  const bool faults = config_.fault.active();

  if (src_node == dst_node) {
    // HCA loopback: through the adapter only, no switch hop. Entirely
    // node-local, so it stays on the source engine in both modes.
    const sim::TimePoint start = up_[src_node].reserve(earliest, ser);
    if (faults && link_down(src_node, start)) {
      ++st.flap_dropped_packets;
      return;
    }
    const sim::TimePoint arrive = start + ser + config_.rx_process;
    if (faults && !apply_faults(src_node, dst_node, pkt,
                                fault_rng_for(src_node), start)) {
      return;
    }
    auto delivery =
        [this, dst_node, p = std::move(pkt)] { deliver(dst_node, p); };
    static_assert(sizeof(delivery) <= sim::Engine::kEventInlineBytes,
                  "packet-delivery closure no longer fits the engine's inline "
                  "event storage");
    engine_for(src_node).schedule_at(arrive, std::move(delivery));
    return;
  }

  const sim::TimePoint up_start = up_[src_node].reserve(earliest, ser);
  const sim::TimePoint at_switch = up_start + ser + config_.wire_latency;

  if (sharded_ != nullptr) {
    // Cross-shard hop. The source side owns its uplink reservation; the
    // switch output port and the delivery schedule belong to the
    // destination, so they move to the barrier as a cross post keyed by
    // switch-arrival time — the canonical drain order then reserves
    // down_[dst] in at_switch order, a deterministic function of window
    // content. The key (and everything downstream of it) is >= the window
    // horizon by the lookahead argument, which is what makes running the
    // shards concurrently safe.
    //
    // Faults are decided entirely at the source (its own RNG stream, its
    // own stats block), mirroring the serial sequencing: a dark link eats
    // the packet before the switch (no downlink reservation), while a
    // randomly lost packet still occupies the switch output port — the
    // serial path reserves down_[dst] before rolling the dice.
    bool lost = false;
    if (faults) {
      if (link_down(src_node, up_start) ||
          link_down(dst_node, at_switch + config_.switch_latency)) {
        ++st.flap_dropped_packets;
        return;
      }
      lost = !apply_faults(src_node, dst_node, pkt, fault_rng_for(src_node),
                           up_start);
    }
    // The profiler's causal token does not cross the shard boundary by
    // itself (the post drains in coordinator context at the barrier), so
    // carry it in the closure and re-establish it around the destination
    // scheduling — the delivery event then inherits the same cause it
    // would have inherited on the serial path.
    const std::uint64_t cause = engine_for(src_node).cause();
    auto finish = [this, dst_node, at_switch, ser, lost, cause,
                   p = std::move(pkt)]() mutable {
      const sim::TimePoint down_start =
          down_[dst_node].reserve(at_switch + config_.switch_latency, ser);
      if (lost) return;  // reserved the port, never leaves the switch
      const sim::TimePoint arrive =
          down_start + ser + config_.wire_latency + config_.rx_process;
      auto delivery =
          [this, dst_node, p2 = std::move(p)] { deliver(dst_node, p2); };
      static_assert(sizeof(delivery) <= sim::Engine::kEventInlineBytes,
                    "packet-delivery closure no longer fits the engine's "
                    "inline event storage");
      sim::Engine& dst_engine = engine_for(dst_node);
      const std::uint64_t prev = dst_engine.cause();
      dst_engine.set_cause(cause);
      dst_engine.schedule_at(arrive, std::move(delivery));
      dst_engine.set_cause(prev);
    };
    static_assert(sizeof(finish) <= sim::ShardedEngine::kPostInlineBytes,
                  "cross-shard packet closure no longer fits the sharded "
                  "engine's inline post storage");
    sharded_->post(static_cast<std::size_t>(src_node), at_switch,
                   std::move(finish));
    return;
  }

  // A dark link eats the packet: the sender still serialized it onto its
  // uplink (it cannot know the link state), but nothing reaches the
  // switch's output port, so the downlink is not reserved.
  if (faults && (link_down(src_node, up_start) ||
                 link_down(dst_node, at_switch + config_.switch_latency))) {
    ++st.flap_dropped_packets;
    return;
  }
  // Store-and-forward: the switch starts forwarding after the packet is
  // fully received, plus its forwarding latency, subject to the output
  // port being free.
  const sim::TimePoint down_start =
      down_[dst_node].reserve(at_switch + config_.switch_latency, ser);
  const sim::TimePoint arrive =
      down_start + ser + config_.wire_latency + config_.rx_process;

  if (faults && !apply_faults(src_node, dst_node, pkt,
                              fault_rng_for(src_node), up_start)) {
    return;
  }

  // The packet (and its pooled-message reference) moves into the event's
  // inline storage: no payload copy, no refcount churn, no allocation per
  // hop. The static_assert keeps this closure inside the engine's inline
  // buffer — growing Packet past it should be a conscious decision.
  auto delivery = [this, dst_node, p = std::move(pkt)] { deliver(dst_node, p); };
  static_assert(sizeof(delivery) <= sim::Engine::kEventInlineBytes,
                "packet-delivery closure no longer fits the engine's inline "
                "event storage");
  serial_engine_->schedule_at(arrive, std::move(delivery));
}

FabricStats Fabric::stats() const noexcept {
  FabricStats total;
  for (const NodeStats& ns : node_stats_) {
    total.packets += ns.packets;
    total.wire_bytes += ns.wire_bytes;
    total.data_packets += ns.data_packets;
    total.control_packets += ns.control_packets;
    total.lost_packets += ns.lost_packets;
    total.corrupted_packets += ns.corrupted_packets;
    total.flap_dropped_packets += ns.flap_dropped_packets;
    total.scripted_faults_fired += ns.scripted_faults_fired;
  }
  return total;
}

MessageDataPool::Stats Fabric::msg_pool_stats() const {
  MessageDataPool::Stats total;
  for (const auto& node : nodes_) {
    const MessageDataPool::Stats& s = node->msg_pool().stats();
    total.acquires += s.acquires;
    total.reuses += s.reuses;
    total.allocs += s.allocs;
  }
  return total;
}

void Fabric::serialize_state(util::serial::BufWriter& w) const {
  w.u32(next_qpn_);
  // The aggregate, not the per-node blocks: the sum is the canonical form
  // (identical between serial and sharded runs of the same world).
  stats().visit([&w](std::string_view, double v) { w.f64(v); });
  // The fault injector's RNG stream: its position is the whole point — two
  // runs that consumed a different number of draws have diverged even if
  // every counter happens to match.
  for (std::uint64_t word : fault_rng_.state()) w.u64(word);
  // Sharded fault injection: the per-source-node streams are the ones
  // actually drawn from. Gated so serial snapshots (and fault-free sharded
  // ones) keep their exact historical bytes.
  if (sharded_ != nullptr && config_.fault.active()) {
    for (const util::Xoshiro256& rng : node_fault_rng_) {
      for (std::uint64_t word : rng.state()) w.u64(word);
    }
  }
  w.u64(scripted_.size());
  for (const ScriptedState& s : scripted_) {
    w.u64(s.seen);
    w.b(s.fired);
  }
  // Per-node link occupancy (both directions) and HCA-level bookkeeping.
  w.u64(nodes_.size());
  const auto put_resource = [&w](const sim::Resource& r) {
    w.i64(r.busy_until().count());
    w.i64(r.total_busy().count());
    w.u64(r.uses());
  };
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    put_resource(up_[i]);
    put_resource(down_[i]);
    const Hca& hca = *nodes_[i];
    w.u64(hca.memory().region_count());
    w.u64(hca.memory().registered_bytes());
    const MessageDataPool::Stats& ps = hca.msg_pool().stats();
    w.u64(ps.acquires);
    w.u64(ps.reuses);
    w.u64(ps.allocs);
    w.u64(hca.msg_pool().outstanding());
  }
}

void Fabric::deliver(int node, const Packet& pkt) {
  QueuePair* qp = nodes_[static_cast<std::size_t>(node)]->find_qp(pkt.dst_qpn);
  if (qp != nullptr) qp->rx_packet(pkt);
  // A destroyed QP silently drops traffic, like a real torn-down connection.
}

}  // namespace mvflow::ib
