#include "ib/fabric.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/serial.hpp"

namespace mvflow::ib {

Fabric::Fabric(sim::Engine* serial, sim::ShardedEngine* sharded,
               FabricConfig config, int num_nodes)
    : serial_engine_(serial),
      sharded_(sharded),
      config_(config),
      up_(num_nodes),
      down_(num_nodes),
      node_stats_(num_nodes),
      fault_rng_(config.fault.seed),
      scripted_(config.fault.scripted.size()) {
  util::require(num_nodes > 0, "fabric needs at least one node");
  util::require(config_.mtu >= 256, "MTU too small");
  nodes_.reserve(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Hca>(*this, i));
  }
}

Fabric::Fabric(sim::Engine& engine, FabricConfig config, int num_nodes)
    : Fabric(&engine, nullptr, std::move(config), num_nodes) {}

Fabric::Fabric(sim::ShardedEngine& engine, FabricConfig config, int num_nodes)
    : Fabric(nullptr, &engine, std::move(config), num_nodes) {
  util::require(engine.shard_count() == static_cast<std::size_t>(num_nodes),
                "sharded fabric needs exactly one engine shard per node");
  util::require(!config_.fault.active(),
                "fault injection is serial-only: the injector draws one RNG "
                "stream, which concurrent shard windows would race on");
  engine.set_lookahead(min_lookahead());
}

sim::Duration Fabric::min_lookahead() const {
  // The smallest packet either direction of a conversation can put on the
  // wire: a zero-payload data packet is just its header, and that is
  // smaller than an ACK here (48 vs 64 bytes by default).
  const std::uint32_t min_wire =
      std::min(config_.data_header_bytes, config_.ack_bytes);
  const sim::Duration ser_min =
      config_.per_packet_tx + sim::transfer_time(min_wire, config_.bandwidth_bps);
  return ser_min + ser_min + config_.wire_latency + config_.wire_latency +
         config_.switch_latency + config_.rx_process;
}

Hca& Fabric::hca(int node) {
  util::require(node >= 0 && node < num_nodes(), "node id out of range");
  return *nodes_[static_cast<std::size_t>(node)];
}

void Fabric::connect(QueuePair& a, QueuePair& b) {
  a.set_remote(b.hca_.node_id(), b.qpn());
  b.set_remote(a.hca_.node_id(), a.qpn());
}

void Fabric::connect_loopback(QueuePair& q) {
  q.set_remote(q.hca_.node_id(), q.qpn());
}

std::uint32_t Fabric::wire_bytes(const Packet& pkt) const {
  switch (pkt.kind) {
    case PacketKind::data:
    case PacketKind::rdma_read_resp:
      return pkt.payload_bytes + config_.data_header_bytes;
    case PacketKind::rdma_read_req:
      return config_.data_header_bytes + 16;  // reth: addr + rkey + len
    case PacketKind::ack:
    case PacketKind::rnr_nak:
    case PacketKind::access_nak:
    case PacketKind::seq_nak:
      return config_.ack_bytes;
  }
  return config_.ack_bytes;
}

bool Fabric::link_down(int node, sim::TimePoint t) const {
  for (const LinkFlap& f : config_.fault.flaps) {
    if (f.node == node && t >= f.down && t < f.up) return true;
  }
  return false;
}

bool Fabric::apply_faults(int src_node, int dst_node, Packet& pkt) {
  const FaultConfig& fc = config_.fault;
  // Scripted one-shots first: deterministic targeting for tests.
  for (std::size_t i = 0; i < fc.scripted.size(); ++i) {
    const ScriptedFault& f = fc.scripted[i];
    ScriptedState& st = scripted_[i];
    if (st.fired) continue;
    if (f.src_node >= 0 && f.src_node != src_node) continue;
    if (f.dst_node >= 0 && f.dst_node != dst_node) continue;
    if (f.kind >= 0 && f.kind != static_cast<int>(pkt.kind)) continue;
    if (st.seen++ < f.skip) continue;
    st.fired = true;
    ++node_stats_[src_node].scripted_faults_fired;
    if (!f.corrupt) return false;
    pkt.corrupted = true;
    ++node_stats_[src_node].corrupted_packets;
    break;
  }
  if (fc.loss_prob > 0.0 && fault_rng_.uniform() < fc.loss_prob) {
    ++node_stats_[src_node].lost_packets;
    return false;
  }
  if (!pkt.corrupted && fc.corrupt_prob > 0.0 &&
      fault_rng_.uniform() < fc.corrupt_prob) {
    pkt.corrupted = true;
    ++node_stats_[src_node].corrupted_packets;
  }
  return true;
}

void Fabric::transmit(int src_node, int dst_node, Packet pkt,
                      sim::TimePoint earliest) {
  util::require(dst_node >= 0 && dst_node < num_nodes(),
                "transmit to unknown node");
  const std::uint32_t wire = wire_bytes(pkt);
  const sim::Duration ser =
      config_.per_packet_tx + sim::transfer_time(wire, config_.bandwidth_bps);

  // Always charged to the *source* node's stats block: transmit runs on
  // the source shard in sharded mode, so the block is never contended.
  NodeStats& st = node_stats_[src_node];
  ++st.packets;
  st.wire_bytes += wire;
  if (pkt.kind == PacketKind::ack || pkt.kind == PacketKind::rnr_nak ||
      pkt.kind == PacketKind::access_nak ||
      pkt.kind == PacketKind::seq_nak) {
    ++st.control_packets;
  } else {
    ++st.data_packets;
  }

  const bool faults = config_.fault.active();

  if (src_node == dst_node) {
    // HCA loopback: through the adapter only, no switch hop. Entirely
    // node-local, so it stays on the source engine in both modes.
    const sim::TimePoint start = up_[src_node].reserve(earliest, ser);
    if (faults && link_down(src_node, start)) {
      ++st.flap_dropped_packets;
      return;
    }
    const sim::TimePoint arrive = start + ser + config_.rx_process;
    if (faults && !apply_faults(src_node, dst_node, pkt)) return;
    auto delivery =
        [this, dst_node, p = std::move(pkt)] { deliver(dst_node, p); };
    static_assert(sizeof(delivery) <= sim::Engine::kEventInlineBytes,
                  "packet-delivery closure no longer fits the engine's inline "
                  "event storage");
    engine_for(src_node).schedule_at(arrive, std::move(delivery));
    return;
  }

  const sim::TimePoint up_start = up_[src_node].reserve(earliest, ser);
  const sim::TimePoint at_switch = up_start + ser + config_.wire_latency;

  if (sharded_ != nullptr) {
    // Cross-shard hop. The source side owns its uplink reservation; the
    // switch output port and the delivery schedule belong to the
    // destination, so they move to the barrier as a cross post keyed by
    // switch-arrival time — the canonical drain order then reserves
    // down_[dst] in at_switch order, a deterministic function of window
    // content. The key (and everything downstream of it) is >= the window
    // horizon by the lookahead argument, which is what makes running the
    // shards concurrently safe.
    auto finish = [this, dst_node, at_switch, ser,
                   p = std::move(pkt)]() mutable {
      const sim::TimePoint down_start =
          down_[dst_node].reserve(at_switch + config_.switch_latency, ser);
      const sim::TimePoint arrive =
          down_start + ser + config_.wire_latency + config_.rx_process;
      auto delivery =
          [this, dst_node, p2 = std::move(p)] { deliver(dst_node, p2); };
      static_assert(sizeof(delivery) <= sim::Engine::kEventInlineBytes,
                    "packet-delivery closure no longer fits the engine's "
                    "inline event storage");
      engine_for(dst_node).schedule_at(arrive, std::move(delivery));
    };
    static_assert(sizeof(finish) <= sim::ShardedEngine::kPostInlineBytes,
                  "cross-shard packet closure no longer fits the sharded "
                  "engine's inline post storage");
    sharded_->post(static_cast<std::size_t>(src_node), at_switch,
                   std::move(finish));
    return;
  }

  // A dark link eats the packet: the sender still serialized it onto its
  // uplink (it cannot know the link state), but nothing reaches the
  // switch's output port, so the downlink is not reserved.
  if (faults && (link_down(src_node, up_start) ||
                 link_down(dst_node, at_switch + config_.switch_latency))) {
    ++st.flap_dropped_packets;
    return;
  }
  // Store-and-forward: the switch starts forwarding after the packet is
  // fully received, plus its forwarding latency, subject to the output
  // port being free.
  const sim::TimePoint down_start =
      down_[dst_node].reserve(at_switch + config_.switch_latency, ser);
  const sim::TimePoint arrive =
      down_start + ser + config_.wire_latency + config_.rx_process;

  if (faults && !apply_faults(src_node, dst_node, pkt)) return;

  // The packet (and its pooled-message reference) moves into the event's
  // inline storage: no payload copy, no refcount churn, no allocation per
  // hop. The static_assert keeps this closure inside the engine's inline
  // buffer — growing Packet past it should be a conscious decision.
  auto delivery = [this, dst_node, p = std::move(pkt)] { deliver(dst_node, p); };
  static_assert(sizeof(delivery) <= sim::Engine::kEventInlineBytes,
                "packet-delivery closure no longer fits the engine's inline "
                "event storage");
  serial_engine_->schedule_at(arrive, std::move(delivery));
}

FabricStats Fabric::stats() const noexcept {
  FabricStats total;
  for (const NodeStats& ns : node_stats_) {
    total.packets += ns.packets;
    total.wire_bytes += ns.wire_bytes;
    total.data_packets += ns.data_packets;
    total.control_packets += ns.control_packets;
    total.lost_packets += ns.lost_packets;
    total.corrupted_packets += ns.corrupted_packets;
    total.flap_dropped_packets += ns.flap_dropped_packets;
    total.scripted_faults_fired += ns.scripted_faults_fired;
  }
  return total;
}

MessageDataPool::Stats Fabric::msg_pool_stats() const {
  MessageDataPool::Stats total;
  for (const auto& node : nodes_) {
    const MessageDataPool::Stats& s = node->msg_pool().stats();
    total.acquires += s.acquires;
    total.reuses += s.reuses;
    total.allocs += s.allocs;
  }
  return total;
}

void Fabric::serialize_state(util::serial::BufWriter& w) const {
  w.u32(next_qpn_);
  // The aggregate, not the per-node blocks: the sum is the canonical form
  // (identical between serial and sharded runs of the same world).
  stats().visit([&w](std::string_view, double v) { w.f64(v); });
  // The fault injector's RNG stream: its position is the whole point — two
  // runs that consumed a different number of draws have diverged even if
  // every counter happens to match.
  for (std::uint64_t word : fault_rng_.state()) w.u64(word);
  w.u64(scripted_.size());
  for (const ScriptedState& s : scripted_) {
    w.u64(s.seen);
    w.b(s.fired);
  }
  // Per-node link occupancy (both directions) and HCA-level bookkeeping.
  w.u64(nodes_.size());
  const auto put_resource = [&w](const sim::Resource& r) {
    w.i64(r.busy_until().count());
    w.i64(r.total_busy().count());
    w.u64(r.uses());
  };
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    put_resource(up_[i]);
    put_resource(down_[i]);
    const Hca& hca = *nodes_[i];
    w.u64(hca.memory().region_count());
    w.u64(hca.memory().registered_bytes());
    const MessageDataPool::Stats& ps = hca.msg_pool().stats();
    w.u64(ps.acquires);
    w.u64(ps.reuses);
    w.u64(ps.allocs);
    w.u64(hca.msg_pool().outstanding());
  }
}

void Fabric::deliver(int node, const Packet& pkt) {
  QueuePair* qp = nodes_[static_cast<std::size_t>(node)]->find_qp(pkt.dst_qpn);
  if (qp != nullptr) qp->rx_packet(pkt);
  // A destroyed QP silently drops traffic, like a real torn-down connection.
}

}  // namespace mvflow::ib
