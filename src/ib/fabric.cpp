#include "ib/fabric.hpp"

#include "util/check.hpp"
#include "util/serial.hpp"

namespace mvflow::ib {

Fabric::Fabric(sim::Engine& engine, FabricConfig config, int num_nodes)
    : engine_(engine),
      config_(config),
      up_(num_nodes),
      down_(num_nodes),
      fault_rng_(config.fault.seed),
      scripted_(config.fault.scripted.size()) {
  util::require(num_nodes > 0, "fabric needs at least one node");
  util::require(config_.mtu >= 256, "MTU too small");
  nodes_.reserve(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Hca>(*this, i));
  }
}

Hca& Fabric::hca(int node) {
  util::require(node >= 0 && node < num_nodes(), "node id out of range");
  return *nodes_[static_cast<std::size_t>(node)];
}

void Fabric::connect(QueuePair& a, QueuePair& b) {
  a.set_remote(b.hca_.node_id(), b.qpn());
  b.set_remote(a.hca_.node_id(), a.qpn());
}

void Fabric::connect_loopback(QueuePair& q) {
  q.set_remote(q.hca_.node_id(), q.qpn());
}

std::uint32_t Fabric::wire_bytes(const Packet& pkt) const {
  switch (pkt.kind) {
    case PacketKind::data:
    case PacketKind::rdma_read_resp:
      return pkt.payload_bytes + config_.data_header_bytes;
    case PacketKind::rdma_read_req:
      return config_.data_header_bytes + 16;  // reth: addr + rkey + len
    case PacketKind::ack:
    case PacketKind::rnr_nak:
    case PacketKind::access_nak:
    case PacketKind::seq_nak:
      return config_.ack_bytes;
  }
  return config_.ack_bytes;
}

bool Fabric::link_down(int node, sim::TimePoint t) const {
  for (const LinkFlap& f : config_.fault.flaps) {
    if (f.node == node && t >= f.down && t < f.up) return true;
  }
  return false;
}

bool Fabric::apply_faults(int src_node, int dst_node, Packet& pkt) {
  const FaultConfig& fc = config_.fault;
  // Scripted one-shots first: deterministic targeting for tests.
  for (std::size_t i = 0; i < fc.scripted.size(); ++i) {
    const ScriptedFault& f = fc.scripted[i];
    ScriptedState& st = scripted_[i];
    if (st.fired) continue;
    if (f.src_node >= 0 && f.src_node != src_node) continue;
    if (f.dst_node >= 0 && f.dst_node != dst_node) continue;
    if (f.kind >= 0 && f.kind != static_cast<int>(pkt.kind)) continue;
    if (st.seen++ < f.skip) continue;
    st.fired = true;
    ++stats_.scripted_faults_fired;
    if (!f.corrupt) return false;
    pkt.corrupted = true;
    ++stats_.corrupted_packets;
    break;
  }
  if (fc.loss_prob > 0.0 && fault_rng_.uniform() < fc.loss_prob) {
    ++stats_.lost_packets;
    return false;
  }
  if (!pkt.corrupted && fc.corrupt_prob > 0.0 &&
      fault_rng_.uniform() < fc.corrupt_prob) {
    pkt.corrupted = true;
    ++stats_.corrupted_packets;
  }
  return true;
}

void Fabric::transmit(int src_node, int dst_node, Packet pkt,
                      sim::TimePoint earliest) {
  util::require(dst_node >= 0 && dst_node < num_nodes(),
                "transmit to unknown node");
  const std::uint32_t wire = wire_bytes(pkt);
  const sim::Duration ser =
      config_.per_packet_tx + sim::transfer_time(wire, config_.bandwidth_bps);

  ++stats_.packets;
  stats_.wire_bytes += wire;
  if (pkt.kind == PacketKind::ack || pkt.kind == PacketKind::rnr_nak ||
      pkt.kind == PacketKind::access_nak ||
      pkt.kind == PacketKind::seq_nak) {
    ++stats_.control_packets;
  } else {
    ++stats_.data_packets;
  }

  const bool faults = config_.fault.active();

  sim::TimePoint arrive;
  if (src_node == dst_node) {
    // HCA loopback: through the adapter only, no switch hop.
    const sim::TimePoint start = up_[src_node].reserve(earliest, ser);
    if (faults && link_down(src_node, start)) {
      ++stats_.flap_dropped_packets;
      return;
    }
    arrive = start + ser + config_.rx_process;
  } else {
    const sim::TimePoint up_start = up_[src_node].reserve(earliest, ser);
    const sim::TimePoint at_switch = up_start + ser + config_.wire_latency;
    // A dark link eats the packet: the sender still serialized it onto its
    // uplink (it cannot know the link state), but nothing reaches the
    // switch's output port, so the downlink is not reserved.
    if (faults && (link_down(src_node, up_start) ||
                   link_down(dst_node, at_switch + config_.switch_latency))) {
      ++stats_.flap_dropped_packets;
      return;
    }
    // Store-and-forward: the switch starts forwarding after the packet is
    // fully received, plus its forwarding latency, subject to the output
    // port being free.
    const sim::TimePoint down_start =
        down_[dst_node].reserve(at_switch + config_.switch_latency, ser);
    arrive = down_start + ser + config_.wire_latency + config_.rx_process;
  }

  if (faults && !apply_faults(src_node, dst_node, pkt)) return;

  // The packet (and its pooled-message reference) moves into the event's
  // inline storage: no payload copy, no refcount churn, no allocation per
  // hop. The static_assert keeps this closure inside the engine's inline
  // buffer — growing Packet past it should be a conscious decision.
  auto delivery = [this, dst_node, p = std::move(pkt)] { deliver(dst_node, p); };
  static_assert(sizeof(delivery) <= sim::Engine::kEventInlineBytes,
                "packet-delivery closure no longer fits the engine's inline "
                "event storage");
  engine_.schedule_at(arrive, std::move(delivery));
}

MessageDataPool::Stats Fabric::msg_pool_stats() const {
  MessageDataPool::Stats total;
  for (const auto& node : nodes_) {
    const MessageDataPool::Stats& s = node->msg_pool().stats();
    total.acquires += s.acquires;
    total.reuses += s.reuses;
    total.allocs += s.allocs;
  }
  return total;
}

void Fabric::serialize_state(util::serial::BufWriter& w) const {
  w.u32(next_qpn_);
  stats_.visit([&w](std::string_view, double v) { w.f64(v); });
  // The fault injector's RNG stream: its position is the whole point — two
  // runs that consumed a different number of draws have diverged even if
  // every counter happens to match.
  for (std::uint64_t word : fault_rng_.state()) w.u64(word);
  w.u64(scripted_.size());
  for (const ScriptedState& s : scripted_) {
    w.u64(s.seen);
    w.b(s.fired);
  }
  // Per-node link occupancy (both directions) and HCA-level bookkeeping.
  w.u64(nodes_.size());
  const auto put_resource = [&w](const sim::Resource& r) {
    w.i64(r.busy_until().count());
    w.i64(r.total_busy().count());
    w.u64(r.uses());
  };
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    put_resource(up_[i]);
    put_resource(down_[i]);
    const Hca& hca = *nodes_[i];
    w.u64(hca.memory().region_count());
    w.u64(hca.memory().registered_bytes());
    const MessageDataPool::Stats& ps = hca.msg_pool().stats();
    w.u64(ps.acquires);
    w.u64(ps.reuses);
    w.u64(ps.allocs);
    w.u64(hca.msg_pool().outstanding());
  }
}

void Fabric::deliver(int node, const Packet& pkt) {
  QueuePair* qp = nodes_[static_cast<std::size_t>(node)]->find_qp(pkt.dst_qpn);
  if (qp != nullptr) qp->rx_packet(pkt);
  // A destroyed QP silently drops traffic, like a real torn-down connection.
}

}  // namespace mvflow::ib
