// Completion queue. Work completions from any number of QPs funnel into
// one CQ (the paper's MPI attaches all connections of a process to a
// single CQ). Consumers poll; blocking consumers wait on nonempty().
#pragma once

#include <optional>

#include "ib/types.hpp"
#include "sim/condition.hpp"
#include "sim/engine.hpp"
#include "util/flat_fifo.hpp"

namespace mvflow::ib {

class CompletionQueue {
 public:
  explicit CompletionQueue(sim::Engine& engine)
      : engine_(engine), nonempty_(engine) {}
  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  /// Non-blocking poll; nullopt when empty.
  std::optional<Completion> poll();

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t depth() const noexcept { return entries_.size(); }

  /// Condition signalled whenever a completion is pushed; lets a consumer
  /// process sleep instead of spinning (interrupt-style blocking).
  sim::Condition& nonempty() noexcept { return nonempty_; }

  /// Producer side (HCA/QP protocol engines).
  void push(const Completion& wc);

  std::uint64_t total_pushed() const noexcept { return total_pushed_; }

 private:
  sim::Engine& engine_;
  util::FlatFifo<Completion> entries_;
  sim::Condition nonempty_;
  std::uint64_t total_pushed_ = 0;
};

}  // namespace mvflow::ib
