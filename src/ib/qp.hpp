// Reliable Connection queue pair.
//
// Implements the requester/responder protocol the flow-control study
// depends on:
//   * messages segment at the path MTU and pipeline onto the wire in order;
//   * the responder consumes posted recv WQEs in FIFO order (channel
//     semantics) and ACKs each completed message, advertising how many
//     recv WQEs remain (end-to-end credit information);
//   * if a send arrives with no recv WQE posted, the whole message is
//     dropped and an RNR NAK returned; the requester rewinds, waits the
//     RNR timer, and replays — subsequent pipelined messages that were
//     already on the wire are dropped as out-of-sequence (wasted
//     bandwidth, exactly the hardware-scheme cost the paper discusses);
//   * RDMA write/read bypass recv WQEs (memory semantics) and are bounds-
//     checked against the responder's registry;
//   * with FabricConfig::transport_timeout set, the requester also runs the
//     ACK-timeout half of the RC state machine: unacked sends are rewound
//     and replayed after the (exponentially backed-off) timeout, the
//     responder NAKs observed sequence gaps so recovery does not have to
//     wait out the timer, and duplicates created by replays are re-ACKed /
//     re-executed rather than wedging the connection. Exhausting
//     transport_retry_limit completes the oldest send with
//     transport_retry_exceeded and errors the QP.
#pragma once

#include <deque>
#include <memory>
#include <optional>

#include "ib/packet.hpp"
#include "ib/types.hpp"
#include "sim/engine.hpp"
#include "util/flat_fifo.hpp"

namespace mvflow::util::serial {
class BufWriter;
}

namespace mvflow::ib {

class Hca;
class CompletionQueue;

enum class QpState : std::uint8_t { reset, ready, error };

class QueuePair {
 public:
  QueuePair(Hca& hca, QpNumber qpn, std::shared_ptr<CompletionQueue> send_cq,
            std::shared_ptr<CompletionQueue> recv_cq,
            QpType type = QpType::rc);

  QpType type() const noexcept { return type_; }
  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  QpNumber qpn() const noexcept { return qpn_; }
  QpState state() const noexcept { return state_; }
  QpNumber remote_qpn() const noexcept { return remote_qpn_; }
  int remote_node() const noexcept { return remote_node_; }
  bool connected() const noexcept { return state_ == QpState::ready; }

  /// Queue a send-side work request. Requires a connected QP. Local
  /// protection failures complete with an error CQE and error the QP.
  void post_send(const SendWr& wr);

  /// Post a receive buffer (channel semantics destination).
  void post_recv(const RecvWr& wr);

  std::size_t posted_recv_count() const noexcept { return recvq_.size(); }
  std::size_t pending_send_count() const noexcept {
    return pending_tx_.size() + unacked_.size();
  }
  /// True while the in-progress inbound reassembly owns a popped recv WQE
  /// (channel-semantics sends only; an RDMA-write assembly holds none).
  /// One term of the auditor's recv-WQE ledger.
  bool rx_assembly_holds_wqe() const noexcept {
    return rx_cur_.has_value() && rx_cur_->holds_wqe;
  }
  /// Timer-state introspection for the watchdog's wait-for dump.
  bool retx_timer_armed() const noexcept { return retx_armed_; }
  bool rnr_waiting() const noexcept { return rnr_waiting_; }

  /// Force the QP into the error state, flushing all outstanding work
  /// requests (the verbs modify_qp(..., IBV_QPS_ERR) used to quiesce a
  /// connection before tearing it down or rebuilding it).
  void modify_error();

  const QpStats& stats() const noexcept { return stats_; }

  /// Install an incremental aggregate sink (DESIGN.md §17). The QP mirrors
  /// the two counters world-level stat totals need — rnr_naks_received and
  /// retransmitted_messages/bytes — into `agg` at the point of change, so
  /// metric snapshots stop re-summing every connection. The sink is owned
  /// by the device (per-shard single writer); reconnect installs it on the
  /// replacement QP. Pass nullptr to detach.
  void set_stats_sink(QpStats* agg) noexcept { agg_ = agg; }

  /// Serialize the QP's complete protocol state for the snapshot restore
  /// audit (DESIGN.md §13): connection identity, message sequence windows,
  /// the send pipeline (queued + unacked entries with their MSNs, sizes and
  /// retry budgets), the RNR / ACK-timeout retransmission machinery
  /// (including whether each timer is armed), the responder's receive
  /// window and reassembly cursor, and the per-QP counters.
  void serialize_state(util::serial::BufWriter& w) const;

 private:
  friend class Fabric;
  friend class Hca;

  void set_remote(int node, QpNumber qpn);  // connection setup (Fabric)
  void rx_packet(const Packet& pkt);        // fabric delivery

  struct PendingSend {
    SendWr wr;
    Msn msn = 0;
    MsgRef data;
    std::byte* read_dst = nullptr;  ///< rdma_read landing buffer (mutable)
    int rnr_retries_left = 0;
    bool retransmission = false;
    bool acked = false;
    // Flight-recorder latency stamps; TimePoint(-1) = never stamped (the
    // stamps are only taken while the recorder is enabled).
    sim::TimePoint posted_at{-1};
    sim::TimePoint first_tx_at{-1};
    // Profiler lifecycle stamps (obs::Profiler, taken only while armed).
    // Committed as one qp_send record when the ACK retires the WQE; none of
    // these are serialized — like the recorder stamps, they are observer
    // state, not protocol state.
    sim::TimePoint prof_posted{-1};
    sim::TimePoint prof_first_tx{-1};
    sim::TimePoint prof_last_tx{-1};
    std::uint32_t prof_retx = 0;
  };

  void pump_tx();
  void transmit_message(PendingSend& ps);
  void send_control(PacketKind kind, Msn msn, std::int64_t credits = -1);
  void complete_send(const PendingSend& ps, WcStatus status, WcOpcode op);
  void handle_ack(const Packet& pkt);
  void retire_acked_();
  void handle_rnr_nak(const Packet& pkt);
  void handle_access_nak(const Packet& pkt);
  void handle_seq_nak(const Packet& pkt);
  void handle_data(const Packet& pkt);
  void handle_read_req(const Packet& pkt);
  void handle_read_resp(const Packet& pkt);
  void responder_accept_send(const Packet& pkt);
  void responder_accept_write(const Packet& pkt);
  void stream_read_response(const Packet& pkt);
  void enter_error();

  // Transport (ACK-timeout) reliability; all no-ops unless
  // FabricConfig::transport_enabled().
  void arm_retx_timer();
  void disarm_retx_timer();
  void handle_transport_timeout();
  void rewind_unacked_from(Msn msn);
  void maybe_send_seq_nak();

  void post_send_ud(const SendWr& wr);
  void rx_packet_ud(const Packet& pkt);

  Hca& hca_;
  QpNumber qpn_;
  QpType type_;
  std::shared_ptr<CompletionQueue> send_cq_;
  std::shared_ptr<CompletionQueue> recv_cq_;
  QpState state_ = QpState::reset;
  int remote_node_ = -1;
  QpNumber remote_qpn_ = 0;

  // Requester side. The send pipeline queues are cursor FIFOs: they cycle
  // once per message, so deque block churn would dominate their cost.
  util::FlatFifo<PendingSend> pending_tx_;  // queued, not yet on the wire
  util::FlatFifo<PendingSend> unacked_;     // on the wire, awaiting ACK
  Msn next_msn_ = 0;
  bool rnr_waiting_ = false;
  /// IBA end-to-end flow control: the responder's last advertised recv-WQE
  /// count (piggybacked on ACKs). < 0 = no information yet (unlimited).
  /// The requester paces channel sends against it, keeping one "probe"
  /// message allowance so stale information cannot deadlock the flow —
  /// a probe that loses the race takes the RNR NAK path.
  std::int64_t advertised_credits_ = -1;
  sim::EventHandle rnr_timer_;
  // ACK-timeout retransmission: the timer covers the oldest unacked send;
  // attempts reset whenever the ACK clock makes forward progress.
  sim::EventHandle retx_timer_;
  bool retx_armed_ = false;
  int retx_attempts_ = 0;
  // RDMA read reassembly (one outstanding read at a time is enough for us,
  // but multiple are supported keyed by msn).
  struct ReadPending {
    SendWr wr;
    std::byte* dst = nullptr;  ///< validated mutable local landing buffer
    std::uint32_t received = 0;
  };
  std::deque<std::pair<Msn, ReadPending>> reads_;

  // Responder side.
  util::FlatFifo<RecvWr> recvq_;
  Msn expected_msn_ = 0;
  Msn dropping_msn_ = static_cast<Msn>(-1);  // message being discarded
  Msn last_seq_nak_msn_ = static_cast<Msn>(-1);  // one NAK per observed gap
  struct RxAssembly {
    Msn msn;
    RecvWr wr;
    std::uint32_t pkts_seen = 0;
    bool holds_wqe = false;  ///< Consumed a recv WQE (send, not RDMA write).
  };
  std::optional<RxAssembly> rx_cur_;

  QpStats stats_;
  QpStats* agg_ = nullptr;  ///< world-aggregate sink; see set_stats_sink
};

}  // namespace mvflow::ib
