#include "ib/memory.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mvflow::ib {

MemoryRegionHandle MemoryRegistry::register_region(std::span<std::byte> region,
                                                   Access access) {
  util::require(!region.empty(), "cannot register empty region");
  RegionInfo info;
  info.base = region.data();
  info.length = region.size();
  info.access = access;
  info.lkey = next_key_++;
  info.rkey = next_key_++;
  regions_.push_back(info);
  registered_bytes_ += info.length;
  return MemoryRegionHandle{info.lkey, info.rkey};
}

void MemoryRegistry::deregister(MemoryRegionHandle handle) {
  const auto it =
      std::find_if(regions_.begin(), regions_.end(),
                   [&](const RegionInfo& r) { return r.lkey == handle.lkey; });
  util::require(it != regions_.end(), "deregister of unknown region");
  registered_bytes_ -= it->length;
  regions_.erase(it);
}

const RegionInfo* MemoryRegistry::find_lkey(std::uint32_t lkey) const noexcept {
  for (const RegionInfo& r : regions_) {
    if (r.lkey == lkey) return &r;
  }
  return nullptr;
}

bool MemoryRegistry::check_local(const std::byte* addr, std::size_t len,
                                 std::uint32_t lkey, Access needed) const {
  const RegionInfo* r = find_lkey(lkey);
  if (r == nullptr) return false;
  if (!has_access(r->access, needed)) return false;
  if (addr < r->base) return false;
  return static_cast<std::size_t>(addr - r->base) + len <= r->length;
}

std::byte* MemoryRegistry::local_write_ptr(const std::byte* addr,
                                           std::size_t len,
                                           std::uint32_t lkey) const {
  const RegionInfo* r = find_lkey(lkey);
  if (r == nullptr) return nullptr;
  if (!has_access(r->access, Access::local_write)) return nullptr;
  if (addr < r->base) return nullptr;
  if (static_cast<std::size_t>(addr - r->base) + len > r->length) return nullptr;
  return r->base + (addr - r->base);
}

std::optional<RegionInfo> MemoryRegistry::find_rkey(std::uint32_t rkey) const {
  for (const RegionInfo& r : regions_) {
    if (r.rkey == rkey) return r;
  }
  return std::nullopt;
}

bool MemoryRegistry::check_remote(const std::byte* addr, std::size_t len,
                                  std::uint32_t rkey, Access needed) const {
  const auto r = find_rkey(rkey);
  if (!r) return false;
  if (!has_access(r->access, needed)) return false;
  if (addr < r->base) return false;
  return static_cast<std::size_t>(addr - r->base) + len <= r->length;
}

}  // namespace mvflow::ib
