#include "ib/memory.hpp"

#include "util/check.hpp"

namespace mvflow::ib {

MemoryRegionHandle MemoryRegistry::register_region(std::span<std::byte> region,
                                                   Access access) {
  util::require(!region.empty(), "cannot register empty region");
  RegionInfo info;
  info.base = region.data();
  info.length = region.size();
  info.access = access;
  info.lkey = next_key_++;
  info.rkey = next_key_++;
  by_lkey_.emplace(info.lkey, info);
  rkey_to_lkey_.emplace(info.rkey, info.lkey);
  registered_bytes_ += info.length;
  return MemoryRegionHandle{info.lkey, info.rkey};
}

void MemoryRegistry::deregister(MemoryRegionHandle handle) {
  const auto it = by_lkey_.find(handle.lkey);
  util::require(it != by_lkey_.end(), "deregister of unknown region");
  registered_bytes_ -= it->second.length;
  rkey_to_lkey_.erase(it->second.rkey);
  by_lkey_.erase(it);
}

bool MemoryRegistry::check_local(const std::byte* addr, std::size_t len,
                                 std::uint32_t lkey, Access needed) const {
  const auto it = by_lkey_.find(lkey);
  if (it == by_lkey_.end()) return false;
  const RegionInfo& r = it->second;
  if (!has_access(r.access, needed)) return false;
  if (addr < r.base) return false;
  return static_cast<std::size_t>(addr - r.base) + len <= r.length;
}

std::optional<RegionInfo> MemoryRegistry::find_rkey(std::uint32_t rkey) const {
  const auto it = rkey_to_lkey_.find(rkey);
  if (it == rkey_to_lkey_.end()) return std::nullopt;
  return by_lkey_.at(it->second);
}

bool MemoryRegistry::check_remote(const std::byte* addr, std::size_t len,
                                  std::uint32_t rkey, Access needed) const {
  const auto r = find_rkey(rkey);
  if (!r) return false;
  if (!has_access(r->access, needed)) return false;
  if (addr < r->base) return false;
  return static_cast<std::size_t>(addr - r->base) + len <= r->length;
}

}  // namespace mvflow::ib
