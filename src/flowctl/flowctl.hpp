// Flow-control schemes for MPI over InfiniBand RC (the paper's §4):
//
//   * hardware      — no MPI-level state; the RC end-to-end flow control
//                     (RNR NAK + timer retry, infinite retries) stalls a
//                     fast sender.
//   * user_static   — credit-based: credits start equal to the fixed number
//                     of pre-posted buffers; exhausted credits push sends
//                     into a FIFO backlog; credits return by piggybacking on
//                     every message and by optimistic explicit credit
//                     messages (ECMs) once a threshold accumulates.
//   * user_dynamic  — static machinery plus feedback: each message carries
//                     a went-through-backlog bit, and the receiver grows its
//                     pre-posted pool (linear by default) when it sees one.
//
// ConnectionFlow holds both roles of one connection endpoint: the sender
// role (credits toward the peer) and the receiver role (buffer pool for the
// peer). The MPI device layer owns one per peer and consults it on every
// send and on every reposted buffer; the policy itself lives here so it can
// be unit- and property-tested in isolation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mvflow::util::serial {
class BufWriter;
}

namespace mvflow::flowctl {

enum class Scheme : std::uint8_t { hardware, user_static, user_dynamic };

std::string_view to_string(Scheme s);
std::optional<Scheme> parse_scheme(std::string_view name);

struct Config {
  Scheme scheme = Scheme::user_static;

  /// Pre-posted (credited) buffers per connection. For the dynamic scheme
  /// this is the *starting* pool, which then grows.
  int prepost = 100;

  /// Suppress explicit credit messages while fewer than this many return
  /// credits have accumulated (paper §6.3.1 uses 5). To stay deadlock-free
  /// at tiny pools the effective threshold is min(threshold, pool size).
  int ecm_threshold = 5;

  /// user_dynamic: buffers added per backlog-feedback event (linear
  /// increase, the paper's implemented policy). One buffer per event makes
  /// the pool settle right at the workload's burst depth.
  int growth_step = 1;

  /// user_dynamic ablation: double the pool instead of linear growth.
  bool exponential_growth = false;

  /// user_dynamic: growth cap.
  int max_prepost = 1024;

  /// user_dynamic extension (the paper's stated future work, §4.3): allow
  /// the pool to shrink back toward `prepost` when the communication
  /// pattern calms down — useful for long-running multi-phase codes.
  bool allow_decay = false;

  /// Decay trigger: this many credited messages processed with no backlog
  /// feedback means the enlarged pool is no longer needed.
  int decay_idle_msgs = 512;
};

/// Per-connection counters; aggregated by the benchmarks into the paper's
/// Table 1 (ECM counts) and Table 2 (max posted buffers).
struct Counters {
  std::uint64_t credited_sent = 0;      ///< Eager-data + rendezvous-start.
  std::uint64_t control_sent = 0;       ///< CTS/FIN (uncredited, optimistic).
  std::uint64_t ecm_sent = 0;           ///< Explicit credit messages.
  std::uint64_t backlog_entered = 0;    ///< Sends that hit an empty credit pool.
  std::uint64_t backlog_dispatched = 0;
  std::uint64_t backlog_failed = 0;     ///< Backlogged sends lost to a dead QP.
  std::uint64_t optimistic_rts = 0;     ///< Famine RTSes sent without a credit.
  std::uint64_t credits_received = 0;   ///< Via piggyback + ECM.
  std::uint64_t growth_events = 0;      ///< Dynamic feedback firings.
  std::uint64_t decay_events = 0;       ///< Buffers retired by idle decay.
  int max_posted = 0;                   ///< Peak credited pool (receiver role).

  /// Total MPI-level messages this side originated on the connection.
  std::uint64_t total_messages() const {
    return credited_sent + control_sent + ecm_sent;
  }

  /// Enumerate every counter as (name, value) for a metrics sink. Kept as a
  /// template so flowctl does not depend on the obs layer.
  template <typename Fn>
  void visit(Fn&& f) const {
    f("credited_sent", static_cast<double>(credited_sent));
    f("control_sent", static_cast<double>(control_sent));
    f("ecm_sent", static_cast<double>(ecm_sent));
    f("backlog_entered", static_cast<double>(backlog_entered));
    f("backlog_dispatched", static_cast<double>(backlog_dispatched));
    f("backlog_failed", static_cast<double>(backlog_failed));
    f("optimistic_rts", static_cast<double>(optimistic_rts));
    f("credits_received", static_cast<double>(credits_received));
    f("growth_events", static_cast<double>(growth_events));
    f("decay_events", static_cast<double>(decay_events));
    f("max_posted", static_cast<double>(max_posted));
    f("total_messages", static_cast<double>(total_messages()));
  }
};

/// Runtime-adjustable subset of Config: the tunables that can change on a
/// live connection without restructuring it (the checkpoint-fork sweep
/// applies these at the warm barrier — DESIGN.md §13). Structural fields
/// (scheme, prepost) stay fixed: they define the connection's wired state.
struct TuneDelta {
  std::optional<int> ecm_threshold;
  std::optional<int> growth_step;
  std::optional<bool> exponential_growth;
  std::optional<int> max_prepost;
  std::optional<bool> allow_decay;
  std::optional<int> decay_idle_msgs;

  bool any() const noexcept {
    return ecm_threshold || growth_step || exponential_growth || max_prepost ||
           allow_decay || decay_idle_msgs;
  }
  /// Stable description for labeling sweep branches / JSON output.
  std::string to_string() const;
};

class ConnectionFlow {
 public:
  explicit ConnectionFlow(const Config& config);

  const Config& config() const noexcept { return config_; }
  Scheme scheme() const noexcept { return config_.scheme; }

  // ---- sender role: credits toward the peer ----

  /// True when a fresh credited message may be sent right now. The
  /// hardware scheme always says yes (no MPI-level flow control).
  bool credit_available() const noexcept;

  /// Acquire a credit for a credited message. Returns false (and counts
  /// nothing) when none is available — the caller must backlog the send.
  bool try_acquire_credit();

  /// Credits learned from the peer (piggyback field or ECM payload).
  void add_credits(int n);

  int credits() const noexcept { return credits_; }

  void note_backlogged() {
    ++counters_.backlog_entered;
    if (agg_ != nullptr) ++agg_->backlog_entered;
  }
  void note_backlog_dispatched() {
    ++counters_.backlog_dispatched;
    if (agg_ != nullptr) ++agg_->backlog_dispatched;
  }
  /// Backlogged sends discarded because the connection died (QP error with
  /// auto-reconnect off). Closes the backlog books: entered always equals
  /// dispatched + failed + current depth (the auditor's liveness check).
  void note_backlog_failed(std::size_t n) {
    counters_.backlog_failed += static_cast<std::uint64_t>(n);
    if (agg_ != nullptr) agg_->backlog_failed += static_cast<std::uint64_t>(n);
  }
  void note_optimistic_rts() {
    ++counters_.optimistic_rts;
    ++counters_.credited_sent;  // it is still an unexpected-class message
    if (agg_ != nullptr) {
      ++agg_->optimistic_rts;
      ++agg_->credited_sent;
    }
  }
  void note_control_sent() {
    ++counters_.control_sent;
    if (agg_ != nullptr) ++agg_->control_sent;
  }
  void note_ecm_sent() {
    ++counters_.ecm_sent;
    if (agg_ != nullptr) ++agg_->ecm_sent;
  }

  // ---- receiver role: buffer pool for the peer ----

  /// Credited pool size to pre-post at startup.
  int initial_posted() const noexcept;

  /// The buffer of a *credited* inbound message was processed and
  /// reposted: one credit is now returnable. Returns true when an ECM
  /// should be sent immediately (threshold reached and the caller has no
  /// outgoing traffic to piggyback on).
  bool on_credited_repost();

  /// Accumulated return credits, handed to an outgoing message's piggyback
  /// field (or an ECM payload). Resets the accumulator.
  int take_return_credits();

  int pending_return_credits() const noexcept { return accumulated_; }

  /// Dynamic feedback: an inbound message carried the went-through-backlog
  /// bit. Returns how many extra buffers the receiver must post now
  /// (0 for non-dynamic schemes or when the cap is reached). The new
  /// buffers immediately become returnable credits.
  int on_backlogged_flag();

  /// Decay (receiver role): called before reposting a credited message's
  /// buffer. Returns true when the buffer should be *retired* instead of
  /// reposted — the pool shrinks by one and the credit is never returned,
  /// so the sender's total shrinks in step.
  bool take_decay_slot();

  /// Current credited pool size at this receiver.
  int current_posted() const noexcept { return current_posted_; }

  /// QP recovery: the connection was rebuilt and the receiver reposted its
  /// whole pool, so sender-side credits restart at `credits` (the peer's
  /// pool minus credited messages we are about to replay). Return-credit
  /// accounting restarts from zero — credits for replayed duplicates flow
  /// back through the normal repost path. `replayed_credited` is the number
  /// of credited messages going back in flight: the audit ledger restarts
  /// with exactly those counted as consumed-but-undelivered so the
  /// conservation equation holds through the replay.
  void reconnect_reset(int credits, int replayed_credited = 0) {
    credits_ = credits < 0 ? 0 : credits;
    accumulated_ = 0;
    idle_msgs_ = 0;
    pending_decay_ = 0;
    aud_consumed_ = static_cast<std::uint64_t>(
        replayed_credited < 0 ? 0 : replayed_credited);
    aud_received_ = 0;
    aud_delivered_ = 0;
    aud_granted_ = 0;
  }

  // ---- audit ledger (obs/audit.hpp, DESIGN.md §15) ----
  //
  // Four monotonic counters maintained unconditionally (single integer
  // adds; the *checks* are what MVFLOW_AUDIT gates). Per direction a→b the
  // conservation equation reads:
  //
  //   credits(a) + [consumed(a) − delivered(b)] + pending_return(b)
  //              + [granted(b) − received(a)]  == current_posted(b)
  //
  // with both bracketed flight terms >= 0. Optimistic famine RTSes and
  // CTS/FIN/ECM control messages move none of these: they borrow a posted
  // buffer momentarily (the RNR retry is their safety net) and return it
  // without a credit.
  std::uint64_t aud_consumed() const noexcept { return aud_consumed_; }
  std::uint64_t aud_delivered() const noexcept { return aud_delivered_; }
  std::uint64_t aud_granted() const noexcept { return aud_granted_; }
  std::uint64_t aud_received() const noexcept { return aud_received_; }

  /// Test-only fault: add sender credits without touching the ledger —
  /// exactly the class of miscount (a duplicated/phantom credit grant) the
  /// auditor exists to catch. Never called outside negative tests.
  void debug_add_credits_unaccounted(int n) { credits_ += n; }

  const Counters& counters() const noexcept { return counters_; }

  /// Install an incremental aggregate sink (DESIGN.md §17): every counter
  /// mutation from here on is mirrored into `agg` at the point of change,
  /// and anything already accumulated is folded in now, so the sink always
  /// equals the sum over installed connections without re-summing them.
  /// max_posted is a peak, so it folds as a max, not a sum. The sink is
  /// owned by the device (per-shard single writer). Pass nullptr to detach.
  void set_counters_sink(Counters* agg) noexcept {
    agg_ = agg;
    if (agg == nullptr) return;
    agg->credited_sent += counters_.credited_sent;
    agg->control_sent += counters_.control_sent;
    agg->ecm_sent += counters_.ecm_sent;
    agg->backlog_entered += counters_.backlog_entered;
    agg->backlog_dispatched += counters_.backlog_dispatched;
    agg->backlog_failed += counters_.backlog_failed;
    agg->optimistic_rts += counters_.optimistic_rts;
    agg->credits_received += counters_.credits_received;
    agg->growth_events += counters_.growth_events;
    agg->decay_events += counters_.decay_events;
    if (counters_.max_posted > agg->max_posted) {
      agg->max_posted = counters_.max_posted;
    }
  }

  /// Apply a mid-run tuning delta (checkpoint-fork sweep). Only the
  /// policy knobs move; credits, pools, and counters are untouched.
  void retune(const TuneDelta& d);

  /// Serialize the complete per-connection flow-control state — config,
  /// credits, accumulators, pool size, decay bookkeeping, and counters —
  /// for the snapshot's restore audit.
  void serialize_state(util::serial::BufWriter& w) const;

 private:
  bool user_level() const noexcept {
    return config_.scheme != Scheme::hardware;
  }
  int effective_ecm_threshold() const noexcept;

  Config config_;
  int credits_ = 0;         // sender role
  int accumulated_ = 0;     // receiver role: returnable credits
  int current_posted_ = 0;  // receiver role: credited pool size
  int idle_msgs_ = 0;       // credited reposts since the last growth event
  int pending_decay_ = 0;   // buffers queued for retirement
  // Audit ledger (see the aud_* accessors). Deliberately absent from
  // serialize_state: a restore's deterministic replay rebuilds them, and
  // the snapshot format stays stable.
  std::uint64_t aud_consumed_ = 0;   // sender: credits spent on sends
  std::uint64_t aud_delivered_ = 0;  // receiver: credited buffers processed
  std::uint64_t aud_granted_ = 0;    // receiver: credits handed to the wire
  std::uint64_t aud_received_ = 0;   // sender: credits learned from the peer
  Counters counters_;
  Counters* agg_ = nullptr;  ///< device-owned aggregate; see set_counters_sink
};

}  // namespace mvflow::flowctl
