#include "flowctl/flowctl.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/serial.hpp"

namespace mvflow::flowctl {

std::string_view to_string(Scheme s) {
  switch (s) {
    case Scheme::hardware: return "hardware";
    case Scheme::user_static: return "static";
    case Scheme::user_dynamic: return "dynamic";
  }
  return "?";
}

std::optional<Scheme> parse_scheme(std::string_view name) {
  if (name == "hardware" || name == "hw") return Scheme::hardware;
  if (name == "static" || name == "user_static") return Scheme::user_static;
  if (name == "dynamic" || name == "user_dynamic") return Scheme::user_dynamic;
  return std::nullopt;
}

ConnectionFlow::ConnectionFlow(const Config& config) : config_(config) {
  util::require(config_.prepost >= 1, "prepost must be >= 1");
  util::require(config_.ecm_threshold >= 1, "ecm_threshold must be >= 1");
  util::require(config_.growth_step >= 1, "growth_step must be >= 1");
  util::require(config_.max_prepost >= config_.prepost,
                "max_prepost below prepost");
  credits_ = config_.prepost;
  current_posted_ = config_.prepost;
  counters_.max_posted = current_posted_;
}

bool ConnectionFlow::credit_available() const noexcept {
  if (!user_level()) return true;
  return credits_ > 0;
}

bool ConnectionFlow::try_acquire_credit() {
  if (!user_level()) {
    ++counters_.credited_sent;
    if (agg_ != nullptr) ++agg_->credited_sent;
    return true;
  }
  if (credits_ <= 0) return false;
  --credits_;
  ++aud_consumed_;
  ++counters_.credited_sent;
  if (agg_ != nullptr) ++agg_->credited_sent;
  return true;
}

void ConnectionFlow::add_credits(int n) {
  util::require(n >= 0, "negative credit update");
  if (!user_level() || n == 0) return;
  credits_ += n;
  aud_received_ += static_cast<std::uint64_t>(n);
  counters_.credits_received += static_cast<std::uint64_t>(n);
  if (agg_ != nullptr) agg_->credits_received += static_cast<std::uint64_t>(n);
}

int ConnectionFlow::initial_posted() const noexcept { return config_.prepost; }

int ConnectionFlow::effective_ecm_threshold() const noexcept {
  // A threshold above the pool size would suppress ECMs forever and
  // deadlock a one-way pattern; never require more returns than the pool.
  return std::min(config_.ecm_threshold, current_posted_);
}

bool ConnectionFlow::on_credited_repost() {
  if (!user_level()) return false;
  ++aud_delivered_;
  ++accumulated_;
  return accumulated_ >= effective_ecm_threshold();
}

bool ConnectionFlow::take_decay_slot() {
  if (config_.scheme != Scheme::user_dynamic || !config_.allow_decay)
    return false;
  if (pending_decay_ > 0) {
    --pending_decay_;
    --current_posted_;
    ++aud_delivered_;  // the message was delivered; its buffer retires
    ++counters_.decay_events;
    if (agg_ != nullptr) ++agg_->decay_events;
    return true;
  }
  if (++idle_msgs_ >= config_.decay_idle_msgs &&
      current_posted_ > config_.prepost) {
    idle_msgs_ = 0;
    pending_decay_ =
        std::min(config_.growth_step, current_posted_ - config_.prepost);
  }
  return false;
}

int ConnectionFlow::take_return_credits() {
  if (!user_level()) return 0;
  const int out = accumulated_;
  aud_granted_ += static_cast<std::uint64_t>(out);
  accumulated_ = 0;
  return out;
}

int ConnectionFlow::on_backlogged_flag() {
  if (config_.scheme != Scheme::user_dynamic) return 0;
  idle_msgs_ = 0;
  pending_decay_ = 0;  // pressure is back: cancel any planned shrink
  if (current_posted_ >= config_.max_prepost) return 0;
  int step = config_.exponential_growth ? current_posted_ : config_.growth_step;
  step = std::min(step, config_.max_prepost - current_posted_);
  current_posted_ += step;
  counters_.max_posted = std::max(counters_.max_posted, current_posted_);
  ++counters_.growth_events;
  if (agg_ != nullptr) {
    agg_->max_posted = std::max(agg_->max_posted, counters_.max_posted);
    ++agg_->growth_events;
  }
  // The fresh buffers are immediately returnable credits for the sender.
  accumulated_ += step;
  return step;
}

std::string TuneDelta::to_string() const {
  std::string out;
  const auto add = [&out](const std::string& kv) {
    if (!out.empty()) out += ",";
    out += kv;
  };
  if (ecm_threshold) add("ecm_threshold=" + std::to_string(*ecm_threshold));
  if (growth_step) add("growth_step=" + std::to_string(*growth_step));
  if (exponential_growth)
    add(std::string("exponential_growth=") + (*exponential_growth ? "1" : "0"));
  if (max_prepost) add("max_prepost=" + std::to_string(*max_prepost));
  if (allow_decay) add(std::string("allow_decay=") + (*allow_decay ? "1" : "0"));
  if (decay_idle_msgs) add("decay_idle_msgs=" + std::to_string(*decay_idle_msgs));
  return out.empty() ? "baseline" : out;
}

void ConnectionFlow::retune(const TuneDelta& d) {
  if (d.ecm_threshold) config_.ecm_threshold = *d.ecm_threshold;
  if (d.growth_step) config_.growth_step = *d.growth_step;
  if (d.exponential_growth) config_.exponential_growth = *d.exponential_growth;
  if (d.max_prepost) config_.max_prepost = *d.max_prepost;
  if (d.allow_decay) config_.allow_decay = *d.allow_decay;
  if (d.decay_idle_msgs) config_.decay_idle_msgs = *d.decay_idle_msgs;
}

void ConnectionFlow::serialize_state(util::serial::BufWriter& w) const {
  w.u8(static_cast<std::uint8_t>(config_.scheme));
  w.i32(config_.prepost);
  w.i32(config_.ecm_threshold);
  w.i32(config_.growth_step);
  w.b(config_.exponential_growth);
  w.i32(config_.max_prepost);
  w.b(config_.allow_decay);
  w.i32(config_.decay_idle_msgs);
  w.i32(credits_);
  w.i32(accumulated_);
  w.i32(current_posted_);
  w.i32(idle_msgs_);
  w.i32(pending_decay_);
  w.u64(counters_.credited_sent);
  w.u64(counters_.control_sent);
  w.u64(counters_.ecm_sent);
  w.u64(counters_.backlog_entered);
  w.u64(counters_.backlog_dispatched);
  w.u64(counters_.backlog_failed);
  w.u64(counters_.optimistic_rts);
  w.u64(counters_.credits_received);
  w.u64(counters_.growth_events);
  w.u64(counters_.decay_events);
  w.i32(counters_.max_posted);
}

}  // namespace mvflow::flowctl
