#include "flowctl/flowctl.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mvflow::flowctl {

std::string_view to_string(Scheme s) {
  switch (s) {
    case Scheme::hardware: return "hardware";
    case Scheme::user_static: return "static";
    case Scheme::user_dynamic: return "dynamic";
  }
  return "?";
}

std::optional<Scheme> parse_scheme(std::string_view name) {
  if (name == "hardware" || name == "hw") return Scheme::hardware;
  if (name == "static" || name == "user_static") return Scheme::user_static;
  if (name == "dynamic" || name == "user_dynamic") return Scheme::user_dynamic;
  return std::nullopt;
}

ConnectionFlow::ConnectionFlow(const Config& config) : config_(config) {
  util::require(config_.prepost >= 1, "prepost must be >= 1");
  util::require(config_.ecm_threshold >= 1, "ecm_threshold must be >= 1");
  util::require(config_.growth_step >= 1, "growth_step must be >= 1");
  util::require(config_.max_prepost >= config_.prepost,
                "max_prepost below prepost");
  credits_ = config_.prepost;
  current_posted_ = config_.prepost;
  counters_.max_posted = current_posted_;
}

bool ConnectionFlow::credit_available() const noexcept {
  if (!user_level()) return true;
  return credits_ > 0;
}

bool ConnectionFlow::try_acquire_credit() {
  if (!user_level()) {
    ++counters_.credited_sent;
    return true;
  }
  if (credits_ <= 0) return false;
  --credits_;
  ++counters_.credited_sent;
  return true;
}

void ConnectionFlow::add_credits(int n) {
  util::require(n >= 0, "negative credit update");
  if (!user_level() || n == 0) return;
  credits_ += n;
  counters_.credits_received += static_cast<std::uint64_t>(n);
}

int ConnectionFlow::initial_posted() const noexcept { return config_.prepost; }

int ConnectionFlow::effective_ecm_threshold() const noexcept {
  // A threshold above the pool size would suppress ECMs forever and
  // deadlock a one-way pattern; never require more returns than the pool.
  return std::min(config_.ecm_threshold, current_posted_);
}

bool ConnectionFlow::on_credited_repost() {
  if (!user_level()) return false;
  ++accumulated_;
  return accumulated_ >= effective_ecm_threshold();
}

bool ConnectionFlow::take_decay_slot() {
  if (config_.scheme != Scheme::user_dynamic || !config_.allow_decay)
    return false;
  if (pending_decay_ > 0) {
    --pending_decay_;
    --current_posted_;
    ++counters_.decay_events;
    return true;
  }
  if (++idle_msgs_ >= config_.decay_idle_msgs &&
      current_posted_ > config_.prepost) {
    idle_msgs_ = 0;
    pending_decay_ =
        std::min(config_.growth_step, current_posted_ - config_.prepost);
  }
  return false;
}

int ConnectionFlow::take_return_credits() {
  if (!user_level()) return 0;
  const int out = accumulated_;
  accumulated_ = 0;
  return out;
}

int ConnectionFlow::on_backlogged_flag() {
  if (config_.scheme != Scheme::user_dynamic) return 0;
  idle_msgs_ = 0;
  pending_decay_ = 0;  // pressure is back: cancel any planned shrink
  if (current_posted_ >= config_.max_prepost) return 0;
  int step = config_.exponential_growth ? current_posted_ : config_.growth_step;
  step = std::min(step, config_.max_prepost - current_posted_);
  current_posted_ += step;
  counters_.max_posted = std::max(counters_.max_posted, current_posted_);
  ++counters_.growth_events;
  // The fresh buffers are immediately returnable credits for the sender.
  accumulated_ += step;
  return step;
}

}  // namespace mvflow::flowctl
