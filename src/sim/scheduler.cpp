#include "sim/scheduler.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace mvflow::sim {

std::string_view to_string(SchedKind k) noexcept {
  switch (k) {
    case SchedKind::heap4:
      return "heap4";
    case SchedKind::calendar:
      return "calendar";
    case SchedKind::wheel:
      return "wheel";
  }
  return "heap4";
}

bool parse_sched_kind(std::string_view name, SchedKind& out) noexcept {
  if (name == "heap4") {
    out = SchedKind::heap4;
    return true;
  }
  if (name == "calendar") {
    out = SchedKind::calendar;
    return true;
  }
  if (name == "wheel") {
    out = SchedKind::wheel;
    return true;
  }
  return false;
}

SchedKind default_sched_kind() noexcept {
  static const SchedKind kind = [] {
    SchedKind k = SchedKind::heap4;
    if (const char* env = std::getenv("MVFLOW_SCHEDULER")) {
      parse_sched_kind(env, k);
    }
    return k;
  }();
  return kind;
}

void FourAryHeap::sift_up(std::uint32_t pos) {
  const SchedEntry e = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 4;
    if (!sched_before(e, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = e;
}

void CalendarQueue::find_min() {
  // One lap over the calendar starting at the rotor. Every entry's time is
  // >= last_t_ (pops take the global minimum, pushes below the rotor pull
  // it back), so the first bucket that holds an entry belonging to the
  // current lap holds the minimum — pick the (t, seq) least among those.
  std::size_t idx = bucket_of(TimePoint(last_t_));
  std::int64_t lap_end = ((last_t_ >> shift_) + 1) << shift_;
  for (std::size_t scanned = 0; scanned < nbuckets_; ++scanned) {
    const std::vector<SchedEntry>& b = buckets_[idx];
    bool found = false;
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (b[i].t.count() < lap_end && (!found || sched_before(b[i], cached_))) {
        cached_ = b[i];
        cache_bucket_ = idx;
        cache_pos_ = i;
        found = true;
      }
    }
    if (found) {
      cache_valid_ = true;
      return;
    }
    idx = (idx + 1) & (nbuckets_ - 1);
    lap_end += width();
  }
  // Sparse far future: nothing within one lap of the rotor. Take the global
  // minimum directly and jump the rotor to it, so a pending set that is
  // mostly idle timers costs one O(n) scan instead of spinning laps.
  bool found = false;
  for (std::size_t bi = 0; bi < nbuckets_; ++bi) {
    const std::vector<SchedEntry>& b = buckets_[bi];
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (!found || sched_before(b[i], cached_)) {
        cached_ = b[i];
        cache_bucket_ = bi;
        cache_pos_ = i;
        found = true;
      }
    }
  }
  last_t_ = cached_.t.count();
  cache_valid_ = true;
}

void CalendarQueue::resize(std::size_t nbuckets) {
  const Duration w = estimate_width();
  std::vector<std::vector<SchedEntry>> old = std::move(buckets_);
  const std::size_t keep = size_;
  rebuild(nbuckets, w);
  for (const std::vector<SchedEntry>& b : old) {
    for (const SchedEntry& e : b) {
      buckets_[bucket_of(e.t)].push_back(e);
    }
  }
  size_ = keep;
  cache_valid_ = false;  // positions changed; next peek re-finds
}

void CalendarQueue::rebuild(std::size_t nbuckets, Duration width) {
  buckets_.assign(nbuckets, {});
  nbuckets_ = nbuckets;
  // Round the width up to a power of two (bucket_of is shift+mask).
  const std::int64_t w = std::max<std::int64_t>(width.count(), 1);
  unsigned s = 0;
  while (s < 62 && (std::int64_t{1} << s) < w) ++s;
  shift_ = s;
}

Duration CalendarQueue::estimate_width() const {
  // Aim for ~1 entry per bucket over the occupied span, with 2x slack so a
  // mildly uneven distribution still averages under one probe per bucket.
  if (size_ < 2) return Duration(width());
  std::int64_t lo = std::numeric_limits<std::int64_t>::max();
  std::int64_t hi = std::numeric_limits<std::int64_t>::min();
  for (const std::vector<SchedEntry>& b : buckets_) {
    for (const SchedEntry& e : b) {
      lo = std::min(lo, e.t.count());
      hi = std::max(hi, e.t.count());
    }
  }
  const std::int64_t w =
      2 * ((hi - lo) / static_cast<std::int64_t>(size_));
  return Duration(std::max<std::int64_t>(w, 1));
}

void TimerWheel::find_min() {
  // The minimum is always in the first occupied L0 bucket: L0 entries
  // share the cursor's L0 epoch (so bucket index orders them by time), and
  // every higher level holds strictly later times (an entry sits at level
  // k only when its level-(k-1) epoch differs from the cursor's, i.e. past
  // the end of everything level k-1 can hold). When L0 is empty, cascade
  // the first occupied bucket of the lowest occupied level and retry —
  // each cascaded entry drops exactly one level, so this terminates.
  for (;;) {
    if (size_ == 0) return;  // everything live was popped; rest was purged
    if (const int b = first_set(0); b >= 0) {
      const std::vector<SchedEntry>& bucket = buckets_[0][b];
      bool found = false;
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (!found || sched_before(bucket[i], cached_)) {
          cached_ = bucket[i];
          cache_loc_ = Loc{0, b, i};
          found = true;
        }
      }
      cache_valid_ = true;
      return;
    }
    bool advanced = false;
    for (int k = 1; k < kLevels; ++k) {
      if (const int b = first_set(k); b >= 0) {
        cascade(k, b);
        advanced = true;
        break;
      }
    }
    if (advanced) continue;
    if (!overflow_.empty()) {
      migrate_overflow();
      continue;
    }
    return;  // unreachable: size_ > 0 implies some storage is non-empty
  }
}

void TimerWheel::cascade(int k, int b) {
  std::vector<SchedEntry> moved = std::move(buckets_[k][b]);
  buckets_[k][b].clear();
  clear_bit(k, b);
  // Advance the cursor to the bucket's base time. Every entry here shares
  // the new cursor's level-(k-1) epoch by construction, so re-placement
  // strictly descends. This is also the purge point: dead entries vanish
  // in bulk instead of being dragged to the dispatch front one by one.
  cur_ = ((epoch(cur_, k) << 8) | b) << shift(k);
  for (const SchedEntry& e : moved) {
    if (purged(e)) {
      --size_;
      continue;
    }
    const int nk = place_level(e.t.count());
    const int nb = idx(e.t.count(), nk);
    buckets_[nk][nb].push_back(e);
    set_bit(nk, nb);
  }
}

void TimerWheel::migrate_overflow() {
  // The wheel proper is empty; jump the cursor to the overflow minimum and
  // pull everything now within the horizon into the wheel. O(overflow),
  // amortized by how rarely anything lands 275 s out.
  std::vector<SchedEntry> keep;
  keep.reserve(overflow_.size());
  std::int64_t mn = 0;
  bool found = false;
  for (const SchedEntry& e : overflow_) {
    if (purged(e)) {
      --size_;
      continue;
    }
    if (!found || e.t.count() < mn) {
      mn = e.t.count();
      found = true;
    }
    keep.push_back(e);
  }
  overflow_.clear();
  if (!found) return;
  cur_ = mn;
  for (const SchedEntry& e : keep) {
    if (const int k = place_level(e.t.count()); k >= 0) {
      const int b = idx(e.t.count(), k);
      buckets_[k][b].push_back(e);
      set_bit(k, b);
    } else {
      overflow_.push_back(e);
    }
  }
}

void TimerWheel::rebuild_with(const SchedEntry& e) {
  // Push below the cursor: a reaped far-future tombstone advanced the
  // cursor past where live traffic resumed. Gather everything, reset the
  // cursor to the true minimum, and re-place. Rare enough that O(n) here
  // never shows up in profiles; correctness is what matters.
  std::vector<SchedEntry> all;
  all.reserve(size_ + 1);
  visit([&all](const SchedEntry& x) { all.push_back(x); });
  for (int k = 0; k < kLevels; ++k) {
    for (std::vector<SchedEntry>& b : buckets_[k]) b.clear();
    bitmap_[k][0] = bitmap_[k][1] = bitmap_[k][2] = bitmap_[k][3] = 0;
  }
  overflow_.clear();
  size_ = 0;
  cache_valid_ = false;
  std::int64_t mn = e.t.count();
  std::vector<SchedEntry> keep;
  keep.reserve(all.size() + 1);
  keep.push_back(e);
  for (const SchedEntry& x : all) {
    if (purged(x)) continue;
    mn = std::min(mn, x.t.count());
    keep.push_back(x);
  }
  cur_ = mn;
  for (const SchedEntry& x : keep) {
    insert(x);
    ++size_;
  }
}

}  // namespace mvflow::sim
