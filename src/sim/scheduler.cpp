#include "sim/scheduler.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace mvflow::sim {

std::string_view to_string(SchedKind k) noexcept {
  return k == SchedKind::heap4 ? "heap4" : "calendar";
}

bool parse_sched_kind(std::string_view name, SchedKind& out) noexcept {
  if (name == "heap4") {
    out = SchedKind::heap4;
    return true;
  }
  if (name == "calendar") {
    out = SchedKind::calendar;
    return true;
  }
  return false;
}

SchedKind default_sched_kind() noexcept {
  static const SchedKind kind = [] {
    SchedKind k = SchedKind::heap4;
    if (const char* env = std::getenv("MVFLOW_SCHEDULER")) {
      parse_sched_kind(env, k);
    }
    return k;
  }();
  return kind;
}

void FourAryHeap::sift_up(std::uint32_t pos) {
  const SchedEntry e = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 4;
    if (!sched_before(e, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = e;
}

void CalendarQueue::find_min() {
  // One lap over the calendar starting at the rotor. Every entry's time is
  // >= last_t_ (pops take the global minimum, pushes below the rotor pull
  // it back), so the first bucket that holds an entry belonging to the
  // current lap holds the minimum — pick the (t, seq) least among those.
  std::size_t idx = bucket_of(TimePoint(last_t_));
  std::int64_t lap_end = ((last_t_ >> shift_) + 1) << shift_;
  for (std::size_t scanned = 0; scanned < nbuckets_; ++scanned) {
    const std::vector<SchedEntry>& b = buckets_[idx];
    bool found = false;
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (b[i].t.count() < lap_end && (!found || sched_before(b[i], cached_))) {
        cached_ = b[i];
        cache_bucket_ = idx;
        cache_pos_ = i;
        found = true;
      }
    }
    if (found) {
      cache_valid_ = true;
      return;
    }
    idx = (idx + 1) & (nbuckets_ - 1);
    lap_end += width();
  }
  // Sparse far future: nothing within one lap of the rotor. Take the global
  // minimum directly and jump the rotor to it, so a pending set that is
  // mostly idle timers costs one O(n) scan instead of spinning laps.
  bool found = false;
  for (std::size_t bi = 0; bi < nbuckets_; ++bi) {
    const std::vector<SchedEntry>& b = buckets_[bi];
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (!found || sched_before(b[i], cached_)) {
        cached_ = b[i];
        cache_bucket_ = bi;
        cache_pos_ = i;
        found = true;
      }
    }
  }
  last_t_ = cached_.t.count();
  cache_valid_ = true;
}

void CalendarQueue::resize(std::size_t nbuckets) {
  const Duration w = estimate_width();
  std::vector<std::vector<SchedEntry>> old = std::move(buckets_);
  const std::size_t keep = size_;
  rebuild(nbuckets, w);
  for (const std::vector<SchedEntry>& b : old) {
    for (const SchedEntry& e : b) {
      buckets_[bucket_of(e.t)].push_back(e);
    }
  }
  size_ = keep;
  cache_valid_ = false;  // positions changed; next peek re-finds
}

void CalendarQueue::rebuild(std::size_t nbuckets, Duration width) {
  buckets_.assign(nbuckets, {});
  nbuckets_ = nbuckets;
  // Round the width up to a power of two (bucket_of is shift+mask).
  const std::int64_t w = std::max<std::int64_t>(width.count(), 1);
  unsigned s = 0;
  while (s < 62 && (std::int64_t{1} << s) < w) ++s;
  shift_ = s;
}

Duration CalendarQueue::estimate_width() const {
  // Aim for ~1 entry per bucket over the occupied span, with 2x slack so a
  // mildly uneven distribution still averages under one probe per bucket.
  if (size_ < 2) return Duration(width());
  std::int64_t lo = std::numeric_limits<std::int64_t>::max();
  std::int64_t hi = std::numeric_limits<std::int64_t>::min();
  for (const std::vector<SchedEntry>& b : buckets_) {
    for (const SchedEntry& e : b) {
      lo = std::min(lo, e.t.count());
      hi = std::max(hi, e.t.count());
    }
  }
  const std::int64_t w =
      2 * ((hi - lo) / static_cast<std::int64_t>(size_));
  return Duration(std::max<std::int64_t>(w, 1));
}

}  // namespace mvflow::sim
