// Small-buffer-optimized, move-only callable for the event hot path.
//
// std::function heap-allocates any closure larger than its (implementation
// defined, typically 16-byte) inline buffer — which is every packet-delivery
// lambda the fabric schedules. InplaceFunction stores the closure inline and
// refuses (at compile time) callables that do not fit, so scheduling an
// event can never touch the allocator. Dispatch is two indirect calls
// (ops table + closure body), same as std::function without the heap walk.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mvflow::sim {

template <typename Signature, std::size_t Capacity = 96>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  static constexpr std::size_t capacity = Capacity;

  InplaceFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "closure exceeds the inline buffer: shrink the capture or "
                  "raise the InplaceFunction capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned closures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "closures must be nothrow-movable (they relocate when the "
                  "event slab grows)");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    ops_ = &OpsImpl<Fn>::ops;
  }

  InplaceFunction(InplaceFunction&& o) noexcept { move_from(o); }
  InplaceFunction& operator=(InplaceFunction&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;
  ~InplaceFunction() { reset(); }

  /// Construct a closure directly into the inline buffer — the
  /// zero-relocation path for hot schedule sites.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "closure exceeds the inline buffer: shrink the capture or "
                  "raise the InplaceFunction capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned closures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "closures must be nothrow-movable (they relocate when the "
                  "event slab grows)");
    reset();
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    ops_ = &OpsImpl<Fn>::ops;
  }

  /// Destroy the stored closure (and whatever it captured) immediately.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct + destroy
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  struct OpsImpl {
    static R invoke(void* p, Args&&... args) {
      return (*static_cast<Fn*>(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
    static void destroy(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void move_from(InplaceFunction& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace mvflow::sim
