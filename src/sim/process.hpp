// Cooperative simulated processes.
//
// Each Process runs user code (an MPI rank body, a traffic generator) on its
// own OS thread, but *exactly one* thread — the engine thread or one process
// thread — executes at any moment. Control passes via a pair of binary
// semaphores (the "token"). All blocking goes through the engine's event
// queue, so execution order is fully determined by (time, sequence) and the
// simulation is reproducible even though real threads are involved.
//
// Lifecycle: the constructor schedules the first resume at engine.now();
// the body runs until it returns, throws, or is kill()ed (which unwinds the
// body with ProcessKilled at its next suspension point).
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <semaphore>
#include <string>
#include <thread>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace mvflow::sim {

/// Thrown inside a process body when the process is killed; user code should
/// let it propagate (RAII cleans up along the way).
struct ProcessKilled {};

class Process {
 public:
  using Body = std::function<void(Process&)>;

  Process(Engine& engine, std::string name, Body body);
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process();

  // ---- API callable only from inside this process's body ----

  /// Advance simulated time by `d` (models compute or fixed overheads).
  void delay(Duration d);

  /// Reschedule at the current time, behind already-queued events. Lets
  /// other ready work run first (a cooperative yield).
  void yield();

  // ---- API callable from engine context or other processes ----

  /// Unwind the body with ProcessKilled at its next (or current) suspension
  /// point. Safe to call on a finished process (no-op).
  void kill();

  Engine& engine() noexcept { return engine_; }
  const std::string& name() const noexcept { return name_; }
  bool finished() const noexcept { return finished_; }

 private:
  friend class Engine;
  friend class Condition;

  /// A one-shot wake callback bound to the process's current sleep epoch;
  /// invoking a stale waker (the process already woke for another reason)
  /// is a harmless no-op. Wakes are delivered through the event queue.
  std::function<void()> make_waker();

  void suspend();            // release token, wait for next resume
  void resume_from_engine(); // engine context: hand token over, wait for it back
  void thread_main(Body body);

  Engine& engine_;
  std::string name_;
  std::binary_semaphore go_{0};
  std::binary_semaphore done_{0};
  std::uint64_t sleep_epoch_ = 0;
  bool started_ = false;
  bool finished_ = false;
  bool kill_requested_ = false;
  std::thread thread_;
};

}  // namespace mvflow::sim
