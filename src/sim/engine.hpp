// Discrete-event simulation engine.
//
// A single pooled min-heap of (time, sequence) ordered events drives the
// whole simulation. Everything that happens — packet hops, timer expiry,
// process wake-ups — is an event; ties at equal times execute in
// scheduling order, which makes runs bit-deterministic.
//
// The hot path is allocation-free in steady state: event nodes live in a
// freelist-recycled slab, callbacks are stored inline (InplaceFunction),
// and handles are {slot, generation} pairs with O(1) lazy cancellation and
// no reference counting. See DESIGN.md §10 for the invariants.
//
// The pending set itself sits behind the scheduler seam (scheduler.hpp):
// a 4-ary heap or a calendar queue, chosen per engine and defaulted from
// $MVFLOW_SCHEDULER. Both hand out the identical strict (t, seq) order, so
// the choice is invisible to results — only to wall-clock.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/inplace_function.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "util/check.hpp"

namespace mvflow::util::serial {
class BufWriter;
}

namespace mvflow::sim {

class Engine;
class Process;

/// Engine self-observation counters: how much work the scheduler did and
/// how well the event-node pool avoided the allocator. `pool_hit_rate()`
/// ≈ 1.0 after warmup is the "steady-state dispatch is allocation-free"
/// invariant the throughput bench reports.
struct EnginePerfStats {
  std::uint64_t scheduled = 0;             ///< schedule_at/after calls
  std::uint64_t executed = 0;              ///< events fired
  std::uint64_t cancelled_before_fire = 0;
  std::size_t peak_heap_depth = 0;         ///< max simultaneous pending events
  std::uint64_t pool_reuses = 0;   ///< event nodes recycled from the freelist
  std::uint64_t pool_allocs = 0;   ///< event nodes that grew the slab
  std::uint64_t dead_pops = 0;     ///< lazily-cancelled entries reaped at pop
  std::uint64_t timer_purges = 0;  ///< tombstones bulk-purged by the wheel
  std::size_t max_batch = 0;       ///< largest same-timestamp dispatch run
  double pool_hit_rate() const {
    const double total =
        static_cast<double>(pool_reuses) + static_cast<double>(pool_allocs);
    return total == 0 ? 0.0 : static_cast<double>(pool_reuses) / total;
  }

  /// Enumerate every counter as (name, value) for a metrics sink.
  template <typename Fn>
  void visit(Fn&& f) const {
    f("scheduled", static_cast<double>(scheduled));
    f("executed", static_cast<double>(executed));
    f("cancelled_before_fire", static_cast<double>(cancelled_before_fire));
    f("peak_heap_depth", static_cast<double>(peak_heap_depth));
    f("pool_reuses", static_cast<double>(pool_reuses));
    f("pool_allocs", static_cast<double>(pool_allocs));
    f("pool_hit_rate", pool_hit_rate());
    f("dead_pops", static_cast<double>(dead_pops));
    f("timer_purges", static_cast<double>(timer_purges));
    f("max_batch", static_cast<double>(max_batch));
  }
};

/// Handle for a scheduled event; lets the scheduler cancel timers (e.g. an
/// RNR retry that was satisfied early). Copyable; cancelling any copy
/// cancels the event. A handle is a {slot, generation} pair into the
/// engine's event slab: once the event fires or is cancelled, the slot's
/// generation advances and every outstanding handle to it reads invalid —
/// cancel-after-fire is a harmless no-op.
///
/// Handles may outlive the engine: cancel()/valid() first check the
/// process-wide live-engine registry, so a handle whose engine was already
/// destroyed (e.g. a QP timer cancelled during teardown after the engine)
/// degrades to a no-op instead of dereferencing a dangling pointer.
class EventHandle {
 public:
  EventHandle() = default;
  inline void cancel();
  /// True only while the event is still pending (scheduled, not yet fired
  /// or cancelled).
  inline bool valid() const;

 private:
  friend class Engine;
  EventHandle(Engine* engine, std::uint32_t slot, std::uint32_t gen)
      : engine_(engine), slot_(slot), gen_(gen) {}
  Engine* engine_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Engine {
 public:
  /// `kind` picks the pending-set scheduler; the default is the one-time
  /// $MVFLOW_SCHEDULER snapshot (heap4 when unset).
  explicit Engine(SchedKind kind = default_sched_kind());
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  SchedKind sched_kind() const noexcept { return pq_.kind(); }

  /// True while `e` is a constructed, not-yet-destroyed Engine. Backed by a
  /// process-wide registry sharded by engine address (mutex per shard), so
  /// concurrent engines on an experiment thread pool register, die, and
  /// check liveness without racing; EventHandle checks it before touching
  /// its engine so stale handles are safe no matter the destruction order.
  static bool is_live(const Engine* e) noexcept;

  TimePoint now() const noexcept { return now_; }

  /// Causal-parent token (the profiler's chain id, DESIGN.md §16). Every
  /// scheduled event inherits the token current at its schedule_at call,
  /// and dispatch re-establishes it for the callback's duration — so a
  /// chain of events (packet hops, timer cascades) carries its originating
  /// message's identity with zero bookkeeping at the intermediate sites.
  /// 0 means "no cause"; the token is runtime-only state and is never
  /// serialized (snapshots stay byte-identical whether or not a profiler
  /// was armed).
  std::uint64_t cause() const noexcept { return cause_; }
  void set_cause(std::uint64_t c) noexcept { cause_ = c; }

  /// Inline storage for event callbacks, sized for the largest hot-path
  /// closure (the fabric's packet-delivery lambda: a full Packet plus
  /// routing state) with headroom. A schedule site whose capture outgrows
  /// this fails to compile instead of silently allocating.
  static constexpr std::size_t kEventInlineBytes = 96;
  using EventFn = InplaceFunction<void(), kEventInlineBytes>;

  /// Schedule `fn` to run at absolute simulated time `t` (must be >= now()).
  /// The callable is constructed directly inside the slab node — no
  /// intermediate EventFn move on the hot path.
  template <typename F>
  EventHandle schedule_at(TimePoint t, F&& fn) {
    require_not_past(t);
    const std::uint32_t slot = acquire_slot();
    Node& n = node(slot);
    n.fn.emplace(std::forward<F>(fn));
    n.cause = cause_;  // inherit the scheduler's causal token (one store)
    try {
      pq_.push(SchedEntry{t, next_seq_++, slot, n.gen});
    } catch (...) {
      // Scheduler growth hit bad_alloc: put the slot (and its closure's
      // captured resources) back instead of leaking them.
      release_slot(slot);
      throw;
    }
    ++perf_.scheduled;
    if (pq_.size() > perf_.peak_heap_depth) perf_.peak_heap_depth = pq_.size();
    return EventHandle(this, slot, n.gen);
  }
  /// Schedule `fn` to run `d` after the current time.
  template <typename F>
  EventHandle schedule_after(Duration d, F&& fn) {
    return schedule_at(now_ + d, std::forward<F>(fn));
  }

  /// Run events until the queue is empty or stop() is called. Returns the
  /// number of events executed. If a process body threw, the exception is
  /// rethrown here after the engine stops.
  std::size_t run();

  /// Run events with time <= t; leaves later events queued. Advances now()
  /// to t even if the queue drains early.
  std::size_t run_until(TimePoint t);

  /// Request that run() return at the next event boundary.
  void stop() noexcept { stopped_ = true; }

  /// Time of the earliest live pending event, or TimePoint::max() when the
  /// queue is empty. Reaps zombies from the front as a side effect. This is
  /// what the sharded coordinator polls to pick the next window start.
  TimePoint next_event_time();

  std::size_t executed_events() const noexcept {
    return static_cast<std::size_t>(perf_.executed);
  }
  std::size_t pending_events() const noexcept {
    return pq_.size() - zombies_;  // zombies are cancelled, not pending
  }

  const EnginePerfStats& perf_stats() const noexcept { return perf_; }

  /// Run `fn` once executed_events() reaches `executed` (checked at the
  /// event boundary after each dispatch, so the callback observes a
  /// consistent "between events" world). Several watchpoints may share a
  /// count; each fires exactly once, in registration order. The callback
  /// runs in engine context and may capture state, register further
  /// watchpoints, or call stop(); the inactive-path cost in the dispatch
  /// loop is a single integer compare. This is the checkpoint hook
  /// (DESIGN.md §13): "checkpoint at k events" arms a watchpoint at k.
  void set_watchpoint(std::uint64_t executed, std::function<void()> fn);

  /// Serialize the engine's dispatch state — clock, sequence counter, the
  /// live pending set in canonical (t, seq) order, per-slot generations,
  /// the freelist chain, and the scheduler-invariant perf counters — for
  /// the snapshot's bit-identical restore audit. The encoding is
  /// deliberately scheduler-agnostic: internal layout (heap array order,
  /// calendar buckets, unreaped zombies) never leaks into the bytes, so a
  /// snapshot taken under one scheduler audits cleanly against a replay
  /// under another. Event *callbacks* are not serialized (closures are
  /// reconstructed by deterministic replay); this captures every byte of
  /// state that orders them.
  void serialize_state(util::serial::BufWriter& w) const;

  /// Processes register themselves; used to detect "simulation ended with
  /// blocked processes" (a deadlock in the modeled system).
  std::vector<Process*> blocked_processes() const;

 private:
  friend class Process;
  friend class EventHandle;

  void register_process(Process* p);
  void unregister_process(Process* p);
  void record_error(std::exception_ptr e);
  /// One compare inline (schedule_at is the hottest entry point); the
  /// throw machinery stays out of line.
  void require_not_past(TimePoint t) const {
    if (t < now_) past_schedule_fail();
  }
  [[noreturn]] void past_schedule_fail() const;

  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// One slab slot. `gen` advances every time the slot is released (fired
  /// or cancelled), invalidating outstanding handles — and orphaning any
  /// heap entry still carrying the old generation (see below).
  /// The ordering key (t, seq) lives in the heap entry, not here: sift
  /// comparisons stay inside the contiguous heap array instead of chasing
  /// a ~100-byte Node per probe (the single hottest path in the engine).
  struct Node {
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNone;
    std::uint64_t cause = 0;  ///< causal token inherited at schedule time
    EventFn fn;
  };

  /// The slab is chunked so node addresses are stable across growth: the
  /// dispatcher invokes a callback in place (no per-event 96-byte move),
  /// and the callback itself may schedule new events that extend the slab
  /// while it is still executing.
  static constexpr std::uint32_t kChunkBits = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;

  Node& node(std::uint32_t slot) noexcept {
    return chunks_[slot >> kChunkBits][slot & (kChunkSize - 1)];
  }
  const Node& node(std::uint32_t slot) const noexcept {
    return chunks_[slot >> kChunkBits][slot & (kChunkSize - 1)];
  }

  bool dispatch_one();  // pop + run one event; false if queue empty

  /// Freelist pop inline (steady state is ~100% pool hits); slab growth
  /// stays out of line.
  std::uint32_t acquire_slot() {
    if (free_head_ != kNone) {
      const std::uint32_t slot = free_head_;
      Node& n = node(slot);
      free_head_ = n.next_free;
      n.next_free = kNone;
      ++perf_.pool_reuses;
      return slot;
    }
    return acquire_slot_grow();
  }
  std::uint32_t acquire_slot_grow();
  void release_slot(std::uint32_t slot) noexcept;
  bool cancel(std::uint32_t slot, std::uint32_t gen);
  bool handle_valid(std::uint32_t slot, std::uint32_t gen) const noexcept;

  /// Reap zombies at the front until the minimum entry is live; copies it
  /// to `out` (still queued) and returns true, or false when the queue
  /// drains. Cancellation is lazy — cancel() releases the slot (O(1)) and
  /// leaves the scheduler entry behind as a zombie whose stamped
  /// generation no longer matches; reaping it here counts a dead_pop.
  /// Dispatch order of live events is untouched — a cancelled event fires
  /// in neither scheme.
  bool peek_live(SchedEntry& out);
  /// Pop `out` (the entry peek_live just surfaced) and run its callback.
  void fire_entry(const SchedEntry& top);
  void fire_watchpoints();
  void recompute_next_watch() noexcept;

  /// PurgeProbe installed on the timer wheel (and any future
  /// tombstone-aware scheduler): answers "is this (slot, gen) dead?" and,
  /// when it is, does the same accounting peek_live's reap would have done
  /// — minus the dead_pop, which by definition never happens now. Keeping
  /// `pending_events()` = pq_.size() - zombies_ consistent is why the
  /// scheduler cannot simply drop entries on its own.
  static bool purge_probe(void* ctx, std::uint32_t slot,
                          std::uint32_t gen) noexcept;

  std::vector<std::unique_ptr<Node[]>> chunks_;  // freelist-recycled slab
  std::uint32_t slab_size_ = 0;   // slots handed out so far (all chunks)
  PendingQueue pq_;               // pending + zombie events, (t, seq) order
  std::uint32_t free_head_ = kNone;   // freelist of released slots
  std::size_t zombies_ = 0;           // cancelled entries not yet reaped
  TimePoint now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t cause_ = 0;  ///< current causal token (see cause())
  EnginePerfStats perf_;
  /// Same-timestamp dispatch-run tracking for perf_.max_batch.
  TimePoint last_fired_{Duration::min()};
  std::size_t cur_batch_ = 0;
  bool stopped_ = false;
  bool running_ = false;
  std::vector<Process*> processes_;
  std::exception_ptr first_error_;
  /// Checkpoint hooks: (executed-count, callback), fired at event
  /// boundaries. `next_watch_` caches the minimum pending count so the
  /// dispatch loop pays one compare when no watchpoint is armed.
  std::vector<std::pair<std::uint64_t, std::function<void()>>> watchpoints_;
  std::uint64_t next_watch_ = ~0ull;
};

// peek_live/fire_entry are defined here so they inline into the three
// dispatch loops (run, run_until, dispatch_one) — together they are the
// per-event overhead floor, and keeping `top` in registers across the
// peek → fire handoff is worth several percent of whole-sim throughput.
inline bool Engine::peek_live(SchedEntry& out) {
  for (;;) {
    const SchedEntry* top = pq_.peek();
    if (top == nullptr) return false;
    if (node(top->slot).gen == top->gen) {
      out = *top;
      return true;
    }
    pq_.pop_min();  // reap a cancelled entry
    --zombies_;
    ++perf_.dead_pops;
  }
}

inline void Engine::fire_entry(const SchedEntry& top) {
  // Returns the fired slot to the freelist after its callback finishes —
  // even if the callback throws (otherwise the slot would leak).
  struct FireGuard {
    Engine* e;
    std::uint32_t slot;
    std::uint64_t prev_cause;
    ~FireGuard() {
      e->cause_ = prev_cause;
      Node& n = e->node(slot);
      n.fn.reset();
      n.next_free = e->free_head_;
      e->free_head_ = slot;
    }
  };
  Node& n = node(top.slot);
  util::check(top.t >= now_, "event queue went backwards");
  now_ = top.t;
  // Same-timestamp batch accounting: dispatch runs at one t are the unit
  // the calendar queue serves O(1) from a single bucket.
  if (top.t == last_fired_) {
    ++cur_batch_;
  } else {
    last_fired_ = top.t;
    cur_batch_ = 1;
  }
  if (cur_batch_ > perf_.max_batch) perf_.max_batch = cur_batch_;
  pq_.pop_min();  // peek_live just surfaced `top`; the pop is O(1)-cached
  // The callback runs in place — its chunk address is stable even if it
  // schedules events that grow the slab. The generation is bumped first so
  // the event's own handle already reads fired (cancelling yourself is a
  // no-op), but the slot joins the freelist only after the callback
  // returns, so nothing can emplace over the still-executing closure.
  ++n.gen;
  ++perf_.executed;
  FireGuard guard{this, top.slot, cause_};
  cause_ = n.cause;  // the callback observes its scheduler's causal token
  n.fn();
}

inline void EventHandle::cancel() {
  if (engine_ != nullptr && Engine::is_live(engine_))
    engine_->cancel(slot_, gen_);
}

inline bool EventHandle::valid() const {
  return engine_ != nullptr && Engine::is_live(engine_) &&
         engine_->handle_valid(slot_, gen_);
}

}  // namespace mvflow::sim
