// Discrete-event simulation engine.
//
// A single min-heap of (time, sequence) ordered events drives the whole
// simulation. Everything that happens — packet hops, timer expiry, process
// wake-ups — is an event; ties at equal times execute in scheduling order,
// which makes runs bit-deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace mvflow::sim {

class Process;

/// Handle for a scheduled event; lets the scheduler cancel timers (e.g. an
/// RNR retry that was satisfied early). Copyable; cancelling any copy
/// cancels the event.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  bool valid() const { return cancelled_ != nullptr; }

 private:
  friend class Engine;
  explicit EventHandle(std::shared_ptr<bool> flag) : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  TimePoint now() const noexcept { return now_; }

  using EventFn = std::function<void()>;

  /// Schedule `fn` to run at absolute simulated time `t` (must be >= now()).
  EventHandle schedule_at(TimePoint t, EventFn fn);
  /// Schedule `fn` to run `d` after the current time.
  EventHandle schedule_after(Duration d, EventFn fn);

  /// Run events until the queue is empty or stop() is called. Returns the
  /// number of events executed. If a process body threw, the exception is
  /// rethrown here after the engine stops.
  std::size_t run();

  /// Run events with time <= t; leaves later events queued. Advances now()
  /// to t even if the queue drains early.
  std::size_t run_until(TimePoint t);

  /// Request that run() return at the next event boundary.
  void stop() noexcept { stopped_ = true; }

  std::size_t executed_events() const noexcept { return executed_; }
  std::size_t pending_events() const noexcept { return queue_.size(); }

  /// Processes register themselves; used to detect "simulation ended with
  /// blocked processes" (a deadlock in the modeled system).
  std::vector<Process*> blocked_processes() const;

 private:
  friend class Process;
  void register_process(Process* p);
  void unregister_process(Process* p);
  void record_error(std::exception_ptr e);

  struct Event {
    TimePoint t;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  bool dispatch_one();  // pop + run one event; false if queue empty

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  TimePoint now_{0};
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  bool stopped_ = false;
  bool running_ = false;
  std::vector<Process*> processes_;
  std::exception_ptr first_error_;
};

}  // namespace mvflow::sim
