#include "sim/process.hpp"

#include "util/check.hpp"
#include "util/log.hpp"

namespace mvflow::sim {

Process::Process(Engine& engine, std::string name, Body body)
    : engine_(engine), name_(std::move(name)) {
  engine_.register_process(this);
  thread_ = std::thread([this, b = std::move(body)]() mutable {
    thread_main(std::move(b));
  });
  // First resume: enter the body at the current simulated time.
  engine_.schedule_at(engine_.now(), [this] {
    if (!finished_) resume_from_engine();
  });
}

Process::~Process() {
  if (!finished_) kill();
  if (thread_.joinable()) thread_.join();
  engine_.unregister_process(this);
}

void Process::thread_main(Body body) {
  // The logger's time-source stack is thread-local; give this rank thread
  // its engine's simulated clock so body-side MVFLOW_LOG lines carry the
  // same timestamps as engine-side ones. Keyed on `this` (not the engine)
  // so nested pushes by the body unwind independently.
  util::Logger::push_time_source(
      [](const void* ctx) {
        return static_cast<long long>(
            static_cast<const Process*>(ctx)->engine_.now().count());
      },
      this);
  go_.acquire();  // wait for the first hand-off
  if (!kill_requested_) {
    started_ = true;
    try {
      body(*this);
    } catch (const ProcessKilled&) {
      // Normal teardown path: unwound by kill().
    } catch (...) {
      engine_.record_error(std::current_exception());
    }
  }
  util::Logger::pop_time_source(this);
  finished_ = true;
  done_.release();
}

void Process::suspend() {
  done_.release();
  go_.acquire();
  if (kill_requested_) throw ProcessKilled{};
}

void Process::resume_from_engine() {
  if (finished_) return;
  go_.release();
  done_.acquire();
  if (finished_ && thread_.joinable()) thread_.join();
}

std::function<void()> Process::make_waker() {
  const auto epoch = sleep_epoch_;
  return [this, epoch] {
    if (finished_ || epoch != sleep_epoch_) return;  // stale wake: no-op
    resume_from_engine();
  };
}

void Process::delay(Duration d) {
  util::require(d >= Duration::zero(), "negative delay");
  ++sleep_epoch_;
  engine_.schedule_after(d, make_waker());
  suspend();
}

void Process::yield() {
  ++sleep_epoch_;
  engine_.schedule_at(engine_.now(), make_waker());
  suspend();
}

void Process::kill() {
  if (finished_) return;
  if (std::this_thread::get_id() == thread_.get_id()) {
    // A process killing itself: unwind directly.
    kill_requested_ = true;
    throw ProcessKilled{};
  }
  kill_requested_ = true;
  ++sleep_epoch_;  // invalidate any pending wakers
  go_.release();
  done_.acquire();
  util::check(finished_, "killed process did not finish");
  if (thread_.joinable()) thread_.join();
}

}  // namespace mvflow::sim
