// Simulated-time types. The whole simulator runs on integer nanoseconds so
// arithmetic is exact and runs are bit-reproducible.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace mvflow::sim {

/// Durations and absolute times are both nanosecond counts; TimePoint is a
/// duration since simulation start (t = 0).
using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::nanoseconds;

inline constexpr Duration nanoseconds(std::int64_t n) { return Duration(n); }
inline constexpr Duration microseconds(std::int64_t n) { return Duration(n * 1000); }
inline constexpr Duration milliseconds(std::int64_t n) { return Duration(n * 1000000); }
inline constexpr Duration seconds(std::int64_t n) { return Duration(n * 1000000000); }

inline constexpr double to_us(Duration d) {
  return static_cast<double>(d.count()) / 1e3;
}
inline constexpr double to_ms(Duration d) {
  return static_cast<double>(d.count()) / 1e6;
}
inline constexpr double to_s(Duration d) {
  return static_cast<double>(d.count()) / 1e9;
}

/// Duration needed to move `bytes` across a `bytes_per_second` pipe,
/// rounded up to a whole nanosecond so back-to-back packets never overlap.
inline Duration transfer_time(std::uint64_t bytes, double bytes_per_second) {
  const double ns = static_cast<double>(bytes) / bytes_per_second * 1e9;
  return Duration(static_cast<std::int64_t>(ns) + 1);
}

std::string format_time(TimePoint t);  // "12.345us" style, for traces

}  // namespace mvflow::sim
