// Progress watchdog (DESIGN.md §15): a sim-time monitor that fires when a
// connection holds nonzero backlog but records no progress — no credited
// send, no ECM, no transport retransmit — for a configurable horizon.
//
// The watchdog itself is engine-agnostic bookkeeping: callers feed it
// (connection, backlog depth, progress counter) samples at whatever cadence
// suits the engine (a self-rescheduling poll event on the serial engine, a
// barrier hook on the sharded one) and it answers "has any connection been
// stuck a full horizon?". Diagnosis — the wait-for dump, the flight-
// recorder flush, the optional checkpoint capture — is the caller's job
// (World), because only the caller can see the protocol state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace mvflow::sim {

/// Raised (by the caller) when a stall is diagnosed: names the stuck
/// connection and carries the wait-for summary in the message.
class WatchdogError : public std::runtime_error {
 public:
  WatchdogError(int src, int dst, const std::string& detail);
  int src() const noexcept { return src_; }
  int dst() const noexcept { return dst_; }

 private:
  int src_ = -1;
  int dst_ = -1;
};

/// One observation of a connection: its backlog depth and a monotonic
/// progress counter (credited sends + ECMs + retransmits). Any movement of
/// either value counts as progress and re-arms the horizon.
struct WatchdogSample {
  int src = -1;
  int dst = -1;
  std::size_t backlog = 0;
  std::uint64_t progress = 0;
};

/// A detected stall: the connection, its frozen sample, and how long it
/// has been frozen (>= the horizon by construction).
struct WatchdogStall {
  int src = -1;
  int dst = -1;
  std::size_t backlog = 0;
  std::uint64_t progress = 0;
  TimePoint since{0};     ///< Sim time of the last observed change.
  Duration stalled_for{0};
};

class Watchdog {
 public:
  explicit Watchdog(Duration horizon) : horizon_(horizon) {}

  Duration horizon() const noexcept { return horizon_; }

  /// Feed one round of samples at sim time `now`. Returns the first
  /// connection (in sample order) whose backlog has been nonzero with an
  /// unchanged progress counter for at least the horizon, or nullopt.
  /// Connections absent from a round keep their recorded state (a failed
  /// endpoint the caller stops sampling simply stops aging).
  std::optional<WatchdogStall> observe(
      TimePoint now, const std::vector<WatchdogSample>& samples);

 private:
  struct State {
    std::size_t backlog = 0;
    std::uint64_t progress = 0;
    TimePoint since{0};
  };
  Duration horizon_;
  std::map<std::pair<int, int>, State> state_;
};

}  // namespace mvflow::sim
