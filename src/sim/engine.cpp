#include "sim/engine.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <mutex>

#include "sim/process.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/serial.hpp"

namespace mvflow::sim {

namespace {

// Registry of constructed-and-not-yet-destroyed engines. EventHandle holds
// a raw Engine* (no refcounting on the hot path); checking membership here
// before dereferencing makes a handle that outlives its engine a safe
// no-op regardless of destruction order. Each engine is single-threaded,
// but the experiment layer runs *many* engines on a thread pool, so the
// registry is shared across threads: it is sharded by engine address, one
// mutex + tiny vector per shard. A thread touches only its engine's shard,
// so concurrent worlds contend only on the (rare) hash collisions, and the
// linear scan stays over the handful of engines that map to one shard.
// Address reuse by a *new* engine at the same address is additionally
// guarded by the slot bounds check and the generation stamp in
// cancel()/handle_valid().
struct RegistryShard {
  std::mutex mu;
  std::vector<Engine*> engines;
};

constexpr std::size_t kRegistryShards = 16;

RegistryShard& shard_for(const Engine* e) noexcept {
  // Heap-allocated and intentionally leaked: EventHandles held by
  // static-lifetime objects may call is_live() during process teardown,
  // after function-local statics would have been destroyed.
  static auto* shards = new std::array<RegistryShard, kRegistryShards>();
  // Engines are heap/stack objects; drop the alignment bits before mixing.
  const auto p = reinterpret_cast<std::uintptr_t>(e) >> 6;
  return (*shards)[(p ^ (p >> 7)) % kRegistryShards];
}

}  // namespace

Engine::Engine(SchedKind kind) : pq_(kind) {
  // Tombstone-aware schedulers get a probe into the slab so cancelled
  // entries can be dropped in bulk during wheel maintenance instead of
  // surfacing one by one at the dispatch front (see purge_probe).
  pq_.set_purge_probe(&Engine::purge_probe, this);
  {
    RegistryShard& s = shard_for(this);
    std::lock_guard<std::mutex> lock(s.mu);
    s.engines.push_back(this);
  }
  // Give the logger simulated time while this engine exists, so MVFLOW_LOG
  // lines correlate with trace/metrics timestamps. (The time-source stack
  // is thread-local: this registers on the constructing thread, and each
  // Process re-registers on its own rank thread.)
  util::Logger::push_time_source(
      [](const void* ctx) {
        return static_cast<long long>(
            static_cast<const Engine*>(ctx)->now().count());
      },
      this);
}

Engine::~Engine() {
  util::Logger::pop_time_source(this);
  RegistryShard& s = shard_for(this);
  std::lock_guard<std::mutex> lock(s.mu);
  s.engines.erase(std::remove(s.engines.begin(), s.engines.end(), this),
                  s.engines.end());
}

bool Engine::is_live(const Engine* e) noexcept {
  RegistryShard& s = shard_for(e);
  std::lock_guard<std::mutex> lock(s.mu);
  return std::find(s.engines.begin(), s.engines.end(), e) != s.engines.end();
}

std::uint32_t Engine::acquire_slot_grow() {
  ++perf_.pool_allocs;
  if (slab_size_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
  }
  return slab_size_++;
}

void Engine::release_slot(std::uint32_t slot) noexcept {
  Node& n = node(slot);
  ++n.gen;  // every outstanding handle to this event is now invalid
  n.fn.reset();
  n.next_free = free_head_;
  free_head_ = slot;
}

void Engine::past_schedule_fail() const {
  util::require(false, "cannot schedule event in the past");
}

bool Engine::cancel(std::uint32_t slot, std::uint32_t gen) {
  if (slot >= slab_size_) return false;
  if (node(slot).gen != gen) return false;  // already fired or cancelled
  // Lazy: release the slot (O(1)) and leave the heap entry behind as a
  // zombie; the generation stamped in the entry no longer matches, so the
  // dispatcher drops it when it reaches the top. The slot is immediately
  // reusable — a reuse advances gen again, which changes nothing for the
  // zombie (it already mismatches).
  release_slot(slot);
  ++zombies_;
  ++perf_.cancelled_before_fire;
  return true;
}

bool Engine::handle_valid(std::uint32_t slot, std::uint32_t gen) const noexcept {
  // gen matches only between schedule and release, and release happens
  // exactly at fire or cancel — so a match means "still pending".
  return slot < slab_size_ && node(slot).gen == gen;
}

bool Engine::purge_probe(void* ctx, std::uint32_t slot,
                         std::uint32_t gen) noexcept {
  Engine* self = static_cast<Engine*>(ctx);
  if (slot < self->slab_size_ && self->node(slot).gen == gen) {
    return false;  // live — the scheduler must keep it
  }
  // Dead: the scheduler drops the entry, so it will never be reaped at the
  // front. Account the zombie here to keep pending_events() exact.
  --self->zombies_;
  ++self->perf_.timer_purges;
  return true;
}

bool Engine::dispatch_one() {
  SchedEntry top;
  if (!peek_live(top)) return false;
  fire_entry(top);
  return true;
}

TimePoint Engine::next_event_time() {
  SchedEntry top;
  return peek_live(top) ? top.t : TimePoint::max();
}

void Engine::set_watchpoint(std::uint64_t executed, std::function<void()> fn) {
  watchpoints_.emplace_back(executed, std::move(fn));
  next_watch_ = std::min(next_watch_, executed);
}

void Engine::recompute_next_watch() noexcept {
  next_watch_ = ~0ull;
  for (const auto& [count, fn] : watchpoints_) {
    next_watch_ = std::min(next_watch_, count);
  }
}

void Engine::fire_watchpoints() {
  // Extract the due callbacks before invoking any: a callback may register
  // further watchpoints (e.g. a restore arming its next checkpoint), which
  // must not invalidate this iteration.
  std::vector<std::function<void()>> due;
  for (auto it = watchpoints_.begin(); it != watchpoints_.end();) {
    if (it->first <= perf_.executed) {
      due.push_back(std::move(it->second));
      it = watchpoints_.erase(it);
    } else {
      ++it;
    }
  }
  recompute_next_watch();
  for (auto& fn : due) fn();
}

std::size_t Engine::run() {
  util::check(!running_, "Engine::run is not reentrant");
  running_ = true;
  stopped_ = false;
  std::size_t n = 0;
  SchedEntry top;
  while (!stopped_ && peek_live(top)) {
    fire_entry(top);
    ++n;
    if (perf_.executed >= next_watch_) fire_watchpoints();
  }
  running_ = false;
  if (first_error_) {
    auto e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
  return n;
}

std::size_t Engine::run_until(TimePoint t) {
  util::check(!running_, "Engine::run is not reentrant");
  running_ = true;
  stopped_ = false;
  std::size_t n = 0;
  // peek_live() first: a zombie at the front must not gate (or satisfy)
  // the time check — only the earliest *live* event's time matters.
  SchedEntry top;
  while (!stopped_ && peek_live(top) && top.t <= t) {
    fire_entry(top);
    ++n;
    if (perf_.executed >= next_watch_) fire_watchpoints();
  }
  if (!stopped_) now_ = std::max(now_, t);
  running_ = false;
  if (first_error_) {
    auto e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
  return n;
}

void Engine::serialize_state(util::serial::BufWriter& w) const {
  w.i64(now_.count());
  w.u64(next_seq_);
  w.u32(slab_size_);
  // Perf counters: deterministic across identical replays *and* across
  // schedulers (dispatch order is the same strict (t, seq) sequence under
  // any of them), so they belong in the audit — a divergence here means
  // the replay did different work. Counters that depend on internal
  // scheduler behavior (peak depth, dead-pop/batch accounting) are
  // deliberately excluded.
  w.u64(perf_.scheduled);
  w.u64(perf_.executed);
  w.u64(perf_.cancelled_before_fire);
  w.u64(perf_.pool_reuses);
  w.u64(perf_.pool_allocs);
  // The live pending set in canonical (t, seq) order — the total dispatch
  // order of everything that will happen next. Zombies and internal layout
  // (heap array order vs calendar buckets) are scheduler details and never
  // reach the bytes.
  std::vector<SchedEntry> live;
  live.reserve(pq_.size());
  pq_.visit([&](const SchedEntry& e) {
    if (node(e.slot).gen == e.gen) live.push_back(e);
  });
  std::sort(live.begin(), live.end(),
            [](const SchedEntry& a, const SchedEntry& b) {
              return sched_before(a, b);
            });
  w.u64(live.size());
  for (const SchedEntry& e : live) {
    w.i64(e.t.count());
    w.u64(e.seq);
    w.u32(e.slot);
    w.u32(e.gen);
  }
  // Slab occupancy profile: each slot's generation counts its complete
  // acquire/release history, and the freelist chain pins the exact order
  // future slots will be handed out in.
  for (std::uint32_t slot = 0; slot < slab_size_; ++slot) {
    w.u32(node(slot).gen);
  }
  std::uint32_t free_len = 0;
  for (std::uint32_t s = free_head_; s != kNone; s = node(s).next_free) {
    ++free_len;
  }
  w.u32(free_len);
  for (std::uint32_t s = free_head_; s != kNone; s = node(s).next_free) {
    w.u32(s);
  }
}

std::vector<Process*> Engine::blocked_processes() const {
  std::vector<Process*> out;
  for (Process* p : processes_) {
    if (!p->finished()) out.push_back(p);
  }
  return out;
}

void Engine::register_process(Process* p) { processes_.push_back(p); }

void Engine::unregister_process(Process* p) {
  processes_.erase(std::remove(processes_.begin(), processes_.end(), p),
                   processes_.end());
}

void Engine::record_error(std::exception_ptr e) {
  if (!first_error_) first_error_ = std::move(e);
  stopped_ = true;
}

}  // namespace mvflow::sim
