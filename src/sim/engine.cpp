#include "sim/engine.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/process.hpp"
#include "util/check.hpp"

namespace mvflow::sim {

Engine::~Engine() = default;

EventHandle Engine::schedule_at(TimePoint t, EventFn fn) {
  util::require(t >= now_, "cannot schedule event in the past");
  auto flag = std::make_shared<bool>(false);
  queue_.push(Event{t, next_seq_++, std::move(fn), flag});
  return EventHandle(std::move(flag));
}

EventHandle Engine::schedule_after(Duration d, EventFn fn) {
  return schedule_at(now_ + d, std::move(fn));
}

bool Engine::dispatch_one() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; we must copy the closure out before
    // popping. Closures here are small (captured pointers), so this is cheap.
    Event ev = queue_.top();
    queue_.pop();
    if (ev.cancelled && *ev.cancelled) continue;
    util::check(ev.t >= now_, "event queue went backwards");
    now_ = ev.t;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Engine::run() {
  util::check(!running_, "Engine::run is not reentrant");
  running_ = true;
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && dispatch_one()) ++n;
  running_ = false;
  if (first_error_) {
    auto e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
  return n;
}

std::size_t Engine::run_until(TimePoint t) {
  util::check(!running_, "Engine::run is not reentrant");
  running_ = true;
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && !queue_.empty() && queue_.top().t <= t) {
    if (!dispatch_one()) break;
    ++n;
  }
  now_ = std::max(now_, t);
  running_ = false;
  if (first_error_) {
    auto e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
  return n;
}

std::vector<Process*> Engine::blocked_processes() const {
  std::vector<Process*> out;
  for (Process* p : processes_) {
    if (!p->finished()) out.push_back(p);
  }
  return out;
}

void Engine::register_process(Process* p) { processes_.push_back(p); }

void Engine::unregister_process(Process* p) {
  processes_.erase(std::remove(processes_.begin(), processes_.end(), p),
                   processes_.end());
}

void Engine::record_error(std::exception_ptr e) {
  if (!first_error_) first_error_ = std::move(e);
  stopped_ = true;
}

}  // namespace mvflow::sim
