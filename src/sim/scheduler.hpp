// Swappable event schedulers (DESIGN.md §14).
//
// The engine dispatches strictly in (time, sequence) order; *how* the
// pending set is organized to hand out that order is a pluggable choice:
//
//   - FourAryHeap: the inline 4-ary min-heap from the allocation-free
//     rework — O(log n) push/pop, cache-friendly sift loops, the safe
//     default at any pending-set size.
//   - CalendarQueue: classic Brown calendar queue — time-bucketed open
//     hashing with a rotating "today" pointer, amortized O(1) push/pop
//     when the pending set is dense in time, self-resizing bucket count
//     and width when the distribution drifts.
//   - TimerWheel: hierarchical timing wheel (DESIGN.md §17) — four levels
//     of 256 fixed-width buckets covering ~275 s of horizon, O(1) arm and
//     disarm, entries cascading down a level as the cursor reaches their
//     bucket. Built for worlds with thousands of frequently re-armed
//     retransmit/RNR timers, where a comparison heap pays O(log n) per
//     re-arm and drags every cancelled tombstone to the front before
//     reaping it; the wheel purges tombstones in bulk during cascades via
//     an engine-installed probe, so they never reach the dispatch path.
//
// All three produce the exact same pop order (the strict (t, seq) minimum),
// so swapping schedulers can never change simulation results — the
// randomized differential tests in sim_scheduler_test.cpp are the
// executable form of that claim, and bench_scheduler records where the
// crossover actually is instead of guessing. Selection: Engine's
// constructor argument, defaulted from $MVFLOW_SCHEDULER
// ("heap4" | "calendar" | "wheel").
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace mvflow::sim {

/// Ordering key plus slab reference for one pending event. The key lives
/// here — not in the event node — so scheduler probes stay inside the
/// scheduler's own contiguous storage (see DESIGN.md §10).
struct SchedEntry {
  TimePoint t{0};
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;
};

/// True when `a` fires strictly before `b`. seq is unique per engine, so
/// this is a total order — there are no ties to break arbitrarily.
inline bool sched_before(const SchedEntry& a, const SchedEntry& b) noexcept {
  if (a.t != b.t) return a.t < b.t;
  return a.seq < b.seq;
}

enum class SchedKind : std::uint8_t { heap4 = 0, calendar = 1, wheel = 2 };

std::string_view to_string(SchedKind k) noexcept;
/// Parse "heap4" / "calendar" / "wheel" (case-sensitive); false leaves
/// `out` alone.
bool parse_sched_kind(std::string_view name, SchedKind& out) noexcept;

/// Bulk tombstone filter the engine installs on tombstone-aware schedulers
/// (the wheel). Returns true when the (slot, gen) pair is dead — the engine
/// accounts for the removal (zombie counter, perf stats) before returning,
/// so the scheduler just drops the entry. Must be called only from
/// maintenance paths (cascade, overflow migration, rebuild), never from the
/// push/peek hot path: the contract is that purging changes *when* a dead
/// entry disappears, never the order of live dispatches.
using PurgeProbe = bool (*)(void* ctx, std::uint32_t slot,
                            std::uint32_t gen) noexcept;
/// Process-wide default: one-time $MVFLOW_SCHEDULER snapshot; heap4 when
/// unset or unparseable (a typo'd env var must not silently change perf
/// characteristics mid-sweep, so the snapshot is taken exactly once).
SchedKind default_sched_kind() noexcept;

/// The engine's original scheduler: 4-ary so the pop-path sift touches
/// half the levels of a binary heap and each node's children span ~1.5
/// cache lines.
class FourAryHeap {
 public:
  void push(const SchedEntry& e) {
    heap_.push_back(e);
    sift_up(static_cast<std::uint32_t>(heap_.size() - 1));
  }

  const SchedEntry* peek() const noexcept {
    return heap_.empty() ? nullptr : heap_.data();
  }

  /// Remove the minimum (peek() must have returned non-null).
  void pop_min() {
    const SchedEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = last;
      sift_down(0);
    }
  }

  std::size_t size() const noexcept { return heap_.size(); }

  /// Every entry, in internal array order (serialization sorts anyway).
  template <typename Fn>
  void visit(Fn&& f) const {
    for (const SchedEntry& e : heap_) f(e);
  }

 private:
  // Inlining asymmetry, measured: sift_down lives here so it inlines into
  // the engine's dispatch loop (moving it out of line costs ~25% whole-sim
  // throughput); sift_up stays out of line because schedule_at is itself
  // inlined at dozens of call sites and duplicating the sift there bloats
  // the I-cache for no win.
  void sift_up(std::uint32_t pos);

  void sift_down(std::uint32_t pos) {
    const SchedEntry e = heap_[pos];
    const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
      const std::uint32_t first = 4 * pos + 1;
      if (first >= n) break;
      std::uint32_t best = first;
      const std::uint32_t end = first + 4 < n ? first + 4 : n;
      for (std::uint32_t c = first + 1; c < end; ++c) {
        if (sched_before(heap_[c], heap_[best])) best = c;
      }
      if (!sched_before(heap_[best], e)) break;
      heap_[pos] = heap_[best];
      pos = best;
    }
    heap_[pos] = e;
  }

  std::vector<SchedEntry> heap_;
};

/// Brown's calendar queue. Buckets are unsorted vectors ("open hash on
/// time"); a pop scans forward from the bucket holding the last popped
/// timestamp, taking the (t, seq) minimum among entries that belong to the
/// current one-year lap. Pops are monotone in the engine (time never goes
/// backwards and pushes are never in the past), which is exactly the
/// workload calendar queues are O(1) for. A full fruitless lap falls back
/// to a direct global-minimum scan and jumps the rotor there, so sparse
/// far-future pending sets (idle retransmit timers) degrade gracefully
/// instead of spinning.
class CalendarQueue {
 public:
  CalendarQueue() { rebuild(kMinBuckets, Duration(1024)); }

  void push(const SchedEntry& e) {
    buckets_[bucket_of(e.t)].push_back(e);
    ++size_;
    // Keep "every entry >= last_t_" a hard invariant: pops are monotone
    // for *live* events, but reaping a far-future zombie (a cancelled
    // retransmit timer surfacing at the front past a run_until cap) moves
    // the rotor forward of where real traffic resumes — pull it back so
    // the lap scan never skips an earlier bucket.
    if (e.t.count() < last_t_) last_t_ = e.t.count();
    if (cache_valid_ && sched_before(e, cached_)) {
      // The new entry is the new minimum; repoint the cache at it.
      cache_bucket_ = bucket_of(e.t);
      cache_pos_ = buckets_[cache_bucket_].size() - 1;
      cached_ = e;
    }
    if (size_ > (nbuckets_ << 1) && nbuckets_ < kMaxBuckets) {
      resize(nbuckets_ << 1);
    }
  }

  /// Current minimum, or nullptr when empty. The scan result is cached so
  /// the engine's peek-then-pop pattern pays for one search.
  const SchedEntry* peek() {
    if (size_ == 0) return nullptr;
    if (!cache_valid_) find_min();
    return &cached_;
  }

  /// Remove the minimum (peek() must have been called and returned
  /// non-null since the last mutation).
  void pop_min() {
    std::vector<SchedEntry>& b = buckets_[cache_bucket_];
    b[cache_pos_] = b.back();
    b.pop_back();
    --size_;
    last_t_ = cached_.t.count();  // pops are monotone; the rotor resumes here
    cache_valid_ = false;
    if (size_ < (nbuckets_ >> 2) && nbuckets_ > kMinBuckets) {
      resize(nbuckets_ >> 1);
    }
  }

  std::size_t size() const noexcept { return size_; }

  template <typename Fn>
  void visit(Fn&& f) const {
    for (const std::vector<SchedEntry>& b : buckets_) {
      for (const SchedEntry& e : b) f(e);
    }
  }

 private:
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = 1u << 20;

  /// Bucket width is a power of two, so the time->bucket map is a shift
  /// and mask — an integer divide here costs ~15% of calendar throughput.
  std::size_t bucket_of(TimePoint t) const noexcept {
    return static_cast<std::size_t>(t.count() >> shift_) & (nbuckets_ - 1);
  }
  std::int64_t width() const noexcept {
    return std::int64_t{1} << shift_;
  }

  void find_min();
  void resize(std::size_t nbuckets);
  void rebuild(std::size_t nbuckets, Duration width);
  Duration estimate_width() const;

  std::vector<std::vector<SchedEntry>> buckets_;
  std::size_t nbuckets_ = 0;  // power of two
  unsigned shift_ = 0;        // log2(ns per bucket)
  std::size_t size_ = 0;
  std::int64_t last_t_ = 0;  // last popped timestamp (rotor anchor)

  // Cached minimum located by the last find_min()/push().
  SchedEntry cached_{};
  std::size_t cache_bucket_ = 0;
  std::size_t cache_pos_ = 0;
  bool cache_valid_ = false;
};

/// Hierarchical timing wheel. Four levels of 256 buckets; level k buckets
/// are 2^(6+8k) ns wide, so L0 resolves 64 ns and L3 spans ~275 s — wider
/// than any configured max_sim_time, with a sorted-scan overflow vector
/// behind it for pathological far futures.
///
/// Placement invariant: an entry lives at the *smallest* level k where its
/// time shares the cursor's level-k epoch (epoch(t,k) = t >> (6+8(k+1))),
/// or in `overflow_` when no level matches. Because pushes are never below
/// the cursor (the engine's clock is monotone; the one exception — a
/// far-future tombstone pop dragging the cursor forward of real traffic —
/// triggers a full rebuild, same hazard the calendar queue's rotor
/// pullback documents), the first occupied L0 bucket always holds the
/// minimum, found by one bitmap probe. When L0 drains, the first occupied
/// bucket of the lowest occupied level cascades: the cursor advances to
/// that bucket's base time and its entries re-place, each landing exactly
/// one level down — which is also where dead entries get purged in bulk
/// through the engine's probe instead of surfacing one by one at the
/// dispatch front.
class TimerWheel {
 public:
  TimerWheel() {
    for (int k = 0; k < kLevels; ++k) buckets_[k].resize(kBuckets);
  }

  void set_purge_probe(PurgeProbe probe, void* ctx) noexcept {
    purge_ = probe;
    purge_ctx_ = ctx;
  }

  void push(const SchedEntry& e) {
    if (e.t.count() < cur_) {
      // Below the cursor: rebuild around the new minimum (rare — requires
      // a reaped far-future tombstone to have advanced the cursor past
      // where live traffic resumes).
      rebuild_with(e);
      return;
    }
    const Loc loc = insert(e);
    ++size_;
    if (cache_valid_ && sched_before(e, cached_)) {
      cached_ = e;
      cache_loc_ = loc;
    }
  }

  /// Current minimum, or nullptr when empty. May purge dead entries (via
  /// the probe) while cascading, so `size()` can shrink across a peek.
  const SchedEntry* peek() {
    if (size_ == 0) return nullptr;
    if (!cache_valid_) find_min();
    return size_ == 0 ? nullptr : &cached_;
  }

  /// Remove the minimum (peek() must have been called and returned
  /// non-null since the last mutation).
  void pop_min() {
    std::vector<SchedEntry>& b = cache_loc_.level == kOverflowLevel
                                     ? overflow_
                                     : buckets_[cache_loc_.level][cache_loc_.bucket];
    b[cache_loc_.pos] = b.back();
    b.pop_back();
    if (cache_loc_.level != kOverflowLevel && b.empty()) {
      clear_bit(cache_loc_.level, cache_loc_.bucket);
    }
    --size_;
    cur_ = cached_.t.count();  // pops are monotone; the cursor resumes here
    cache_valid_ = false;
  }

  std::size_t size() const noexcept { return size_; }

  template <typename Fn>
  void visit(Fn&& f) const {
    for (int k = 0; k < kLevels; ++k) {
      for (const std::vector<SchedEntry>& b : buckets_[k]) {
        for (const SchedEntry& e : b) f(e);
      }
    }
    for (const SchedEntry& e : overflow_) f(e);
  }

 private:
  static constexpr int kLevels = 4;
  static constexpr int kBuckets = 256;
  static constexpr int kShift0 = 6;  // L0 bucket = 64 ns
  static constexpr int kOverflowLevel = kLevels;

  struct Loc {
    int level = 0;
    int bucket = 0;
    std::size_t pos = 0;
  };

  static constexpr int shift(int k) noexcept { return kShift0 + 8 * k; }
  static std::int64_t epoch(std::int64_t t, int k) noexcept {
    return t >> (shift(k) + 8);
  }
  static int idx(std::int64_t t, int k) noexcept {
    return static_cast<int>((t >> shift(k)) & (kBuckets - 1));
  }

  /// Smallest level sharing the cursor's epoch, or -1 for overflow.
  int place_level(std::int64_t t) const noexcept {
    for (int k = 0; k < kLevels; ++k) {
      if (epoch(t, k) == epoch(cur_, k)) return k;
    }
    return -1;
  }

  Loc insert(const SchedEntry& e) {
    const int k = place_level(e.t.count());
    if (k < 0) {
      overflow_.push_back(e);
      return Loc{kOverflowLevel, 0, overflow_.size() - 1};
    }
    const int b = idx(e.t.count(), k);
    buckets_[k][b].push_back(e);
    set_bit(k, b);
    return Loc{k, b, buckets_[k][b].size() - 1};
  }

  void set_bit(int k, int b) noexcept {
    bitmap_[k][b >> 6] |= std::uint64_t{1} << (b & 63);
  }
  void clear_bit(int k, int b) noexcept {
    bitmap_[k][b >> 6] &= ~(std::uint64_t{1} << (b & 63));
  }
  int first_set(int k) const noexcept {
    for (int w = 0; w < 4; ++w) {
      if (bitmap_[k][w]) return w * 64 + std::countr_zero(bitmap_[k][w]);
    }
    return -1;
  }

  bool purged(const SchedEntry& e) {
    return purge_ != nullptr && purge_(purge_ctx_, e.slot, e.gen);
  }

  void find_min();
  void cascade(int k, int b);
  void migrate_overflow();
  void rebuild_with(const SchedEntry& e);

  std::vector<std::vector<SchedEntry>> buckets_[kLevels];
  std::uint64_t bitmap_[kLevels][4] = {};
  std::vector<SchedEntry> overflow_;
  std::size_t size_ = 0;
  std::int64_t cur_ = 0;  // last popped timestamp (cursor)

  PurgeProbe purge_ = nullptr;
  void* purge_ctx_ = nullptr;

  // Cached minimum located by the last find_min()/push().
  SchedEntry cached_{};
  Loc cache_loc_{};
  bool cache_valid_ = false;
};

/// The scheduler seam the engine dispatches through. A tagged branch, not
/// a virtual call: the hot path pays one perfectly-predicted compare, and
/// every implementation stays inlineable. The heap lives by value (the
/// default and smallest); the calendar and wheel sit behind pointers so a
/// heap4 engine doesn't carry their bucket arrays.
class PendingQueue {
 public:
  explicit PendingQueue(SchedKind kind) : kind_(kind) {
    if (kind_ == SchedKind::calendar) {
      cal_ = std::make_unique<CalendarQueue>();
    } else if (kind_ == SchedKind::wheel) {
      wheel_ = std::make_unique<TimerWheel>();
    }
  }

  SchedKind kind() const noexcept { return kind_; }

  /// Forwarded to the wheel; no-op for schedulers without bulk purge.
  void set_purge_probe(PurgeProbe probe, void* ctx) noexcept {
    if (wheel_) wheel_->set_purge_probe(probe, ctx);
  }

  void push(const SchedEntry& e) {
    if (kind_ == SchedKind::heap4) {
      heap_.push(e);
    } else if (kind_ == SchedKind::calendar) {
      cal_->push(e);
    } else {
      wheel_->push(e);
    }
  }

  const SchedEntry* peek() {
    if (kind_ == SchedKind::heap4) return heap_.peek();
    if (kind_ == SchedKind::calendar) return cal_->peek();
    return wheel_->peek();
  }

  void pop_min() {
    if (kind_ == SchedKind::heap4) {
      heap_.pop_min();
    } else if (kind_ == SchedKind::calendar) {
      cal_->pop_min();
    } else {
      wheel_->pop_min();
    }
  }

  std::size_t size() const noexcept {
    if (kind_ == SchedKind::heap4) return heap_.size();
    if (kind_ == SchedKind::calendar) return cal_->size();
    return wheel_->size();
  }

  template <typename Fn>
  void visit(Fn&& f) const {
    if (kind_ == SchedKind::heap4) {
      heap_.visit(f);
    } else if (kind_ == SchedKind::calendar) {
      cal_->visit(f);
    } else {
      wheel_->visit(f);
    }
  }

 private:
  SchedKind kind_;
  FourAryHeap heap_;
  std::unique_ptr<CalendarQueue> cal_;
  std::unique_ptr<TimerWheel> wheel_;
};

}  // namespace mvflow::sim
