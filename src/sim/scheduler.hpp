// Swappable event schedulers (DESIGN.md §14).
//
// The engine dispatches strictly in (time, sequence) order; *how* the
// pending set is organized to hand out that order is a pluggable choice:
//
//   - FourAryHeap: the inline 4-ary min-heap from the allocation-free
//     rework — O(log n) push/pop, cache-friendly sift loops, the safe
//     default at any pending-set size.
//   - CalendarQueue: classic Brown calendar queue — time-bucketed open
//     hashing with a rotating "today" pointer, amortized O(1) push/pop
//     when the pending set is dense in time, self-resizing bucket count
//     and width when the distribution drifts.
//
// Both produce the exact same pop order (the strict (t, seq) minimum), so
// swapping schedulers can never change simulation results — the randomized
// differential tests in sim_scheduler_test.cpp are the executable form of
// that claim, and bench_scheduler records where the crossover actually is
// instead of guessing. Selection: Engine's constructor argument, defaulted
// from $MVFLOW_SCHEDULER ("heap4" | "calendar").
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace mvflow::sim {

/// Ordering key plus slab reference for one pending event. The key lives
/// here — not in the event node — so scheduler probes stay inside the
/// scheduler's own contiguous storage (see DESIGN.md §10).
struct SchedEntry {
  TimePoint t{0};
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;
};

/// True when `a` fires strictly before `b`. seq is unique per engine, so
/// this is a total order — there are no ties to break arbitrarily.
inline bool sched_before(const SchedEntry& a, const SchedEntry& b) noexcept {
  if (a.t != b.t) return a.t < b.t;
  return a.seq < b.seq;
}

enum class SchedKind : std::uint8_t { heap4 = 0, calendar = 1 };

std::string_view to_string(SchedKind k) noexcept;
/// Parse "heap4" / "calendar" (case-sensitive); false leaves `out` alone.
bool parse_sched_kind(std::string_view name, SchedKind& out) noexcept;
/// Process-wide default: one-time $MVFLOW_SCHEDULER snapshot; heap4 when
/// unset or unparseable (a typo'd env var must not silently change perf
/// characteristics mid-sweep, so the snapshot is taken exactly once).
SchedKind default_sched_kind() noexcept;

/// The engine's original scheduler: 4-ary so the pop-path sift touches
/// half the levels of a binary heap and each node's children span ~1.5
/// cache lines.
class FourAryHeap {
 public:
  void push(const SchedEntry& e) {
    heap_.push_back(e);
    sift_up(static_cast<std::uint32_t>(heap_.size() - 1));
  }

  const SchedEntry* peek() const noexcept {
    return heap_.empty() ? nullptr : heap_.data();
  }

  /// Remove the minimum (peek() must have returned non-null).
  void pop_min() {
    const SchedEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = last;
      sift_down(0);
    }
  }

  std::size_t size() const noexcept { return heap_.size(); }

  /// Every entry, in internal array order (serialization sorts anyway).
  template <typename Fn>
  void visit(Fn&& f) const {
    for (const SchedEntry& e : heap_) f(e);
  }

 private:
  // Inlining asymmetry, measured: sift_down lives here so it inlines into
  // the engine's dispatch loop (moving it out of line costs ~25% whole-sim
  // throughput); sift_up stays out of line because schedule_at is itself
  // inlined at dozens of call sites and duplicating the sift there bloats
  // the I-cache for no win.
  void sift_up(std::uint32_t pos);

  void sift_down(std::uint32_t pos) {
    const SchedEntry e = heap_[pos];
    const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
      const std::uint32_t first = 4 * pos + 1;
      if (first >= n) break;
      std::uint32_t best = first;
      const std::uint32_t end = first + 4 < n ? first + 4 : n;
      for (std::uint32_t c = first + 1; c < end; ++c) {
        if (sched_before(heap_[c], heap_[best])) best = c;
      }
      if (!sched_before(heap_[best], e)) break;
      heap_[pos] = heap_[best];
      pos = best;
    }
    heap_[pos] = e;
  }

  std::vector<SchedEntry> heap_;
};

/// Brown's calendar queue. Buckets are unsorted vectors ("open hash on
/// time"); a pop scans forward from the bucket holding the last popped
/// timestamp, taking the (t, seq) minimum among entries that belong to the
/// current one-year lap. Pops are monotone in the engine (time never goes
/// backwards and pushes are never in the past), which is exactly the
/// workload calendar queues are O(1) for. A full fruitless lap falls back
/// to a direct global-minimum scan and jumps the rotor there, so sparse
/// far-future pending sets (idle retransmit timers) degrade gracefully
/// instead of spinning.
class CalendarQueue {
 public:
  CalendarQueue() { rebuild(kMinBuckets, Duration(1024)); }

  void push(const SchedEntry& e) {
    buckets_[bucket_of(e.t)].push_back(e);
    ++size_;
    // Keep "every entry >= last_t_" a hard invariant: pops are monotone
    // for *live* events, but reaping a far-future zombie (a cancelled
    // retransmit timer surfacing at the front past a run_until cap) moves
    // the rotor forward of where real traffic resumes — pull it back so
    // the lap scan never skips an earlier bucket.
    if (e.t.count() < last_t_) last_t_ = e.t.count();
    if (cache_valid_ && sched_before(e, cached_)) {
      // The new entry is the new minimum; repoint the cache at it.
      cache_bucket_ = bucket_of(e.t);
      cache_pos_ = buckets_[cache_bucket_].size() - 1;
      cached_ = e;
    }
    if (size_ > (nbuckets_ << 1) && nbuckets_ < kMaxBuckets) {
      resize(nbuckets_ << 1);
    }
  }

  /// Current minimum, or nullptr when empty. The scan result is cached so
  /// the engine's peek-then-pop pattern pays for one search.
  const SchedEntry* peek() {
    if (size_ == 0) return nullptr;
    if (!cache_valid_) find_min();
    return &cached_;
  }

  /// Remove the minimum (peek() must have been called and returned
  /// non-null since the last mutation).
  void pop_min() {
    std::vector<SchedEntry>& b = buckets_[cache_bucket_];
    b[cache_pos_] = b.back();
    b.pop_back();
    --size_;
    last_t_ = cached_.t.count();  // pops are monotone; the rotor resumes here
    cache_valid_ = false;
    if (size_ < (nbuckets_ >> 2) && nbuckets_ > kMinBuckets) {
      resize(nbuckets_ >> 1);
    }
  }

  std::size_t size() const noexcept { return size_; }

  template <typename Fn>
  void visit(Fn&& f) const {
    for (const std::vector<SchedEntry>& b : buckets_) {
      for (const SchedEntry& e : b) f(e);
    }
  }

 private:
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = 1u << 20;

  /// Bucket width is a power of two, so the time->bucket map is a shift
  /// and mask — an integer divide here costs ~15% of calendar throughput.
  std::size_t bucket_of(TimePoint t) const noexcept {
    return static_cast<std::size_t>(t.count() >> shift_) & (nbuckets_ - 1);
  }
  std::int64_t width() const noexcept {
    return std::int64_t{1} << shift_;
  }

  void find_min();
  void resize(std::size_t nbuckets);
  void rebuild(std::size_t nbuckets, Duration width);
  Duration estimate_width() const;

  std::vector<std::vector<SchedEntry>> buckets_;
  std::size_t nbuckets_ = 0;  // power of two
  unsigned shift_ = 0;        // log2(ns per bucket)
  std::size_t size_ = 0;
  std::int64_t last_t_ = 0;  // last popped timestamp (rotor anchor)

  // Cached minimum located by the last find_min()/push().
  SchedEntry cached_{};
  std::size_t cache_bucket_ = 0;
  std::size_t cache_pos_ = 0;
  bool cache_valid_ = false;
};

/// The scheduler seam the engine dispatches through. A tagged branch, not
/// a virtual call: the hot path pays one perfectly-predicted compare, and
/// both implementations stay inlineable.
class PendingQueue {
 public:
  explicit PendingQueue(SchedKind kind) : kind_(kind) {}

  SchedKind kind() const noexcept { return kind_; }

  void push(const SchedEntry& e) {
    if (kind_ == SchedKind::heap4) {
      heap_.push(e);
    } else {
      cal_.push(e);
    }
  }

  const SchedEntry* peek() {
    return kind_ == SchedKind::heap4 ? heap_.peek() : cal_.peek();
  }

  void pop_min() {
    if (kind_ == SchedKind::heap4) {
      heap_.pop_min();
    } else {
      cal_.pop_min();
    }
  }

  std::size_t size() const noexcept {
    return kind_ == SchedKind::heap4 ? heap_.size() : cal_.size();
  }

  template <typename Fn>
  void visit(Fn&& f) const {
    if (kind_ == SchedKind::heap4) {
      heap_.visit(f);
    } else {
      cal_.visit(f);
    }
  }

 private:
  SchedKind kind_;
  FourAryHeap heap_;
  CalendarQueue cal_;
};

}  // namespace mvflow::sim
