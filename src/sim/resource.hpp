// FIFO serialization resource: models a pipe (link, DMA engine, processing
// unit) that serves one transfer at a time. Reservations are made from
// event context and never block — the caller gets back the time its use
// will start, and schedules downstream events from that.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"

namespace mvflow::sim {

class Resource {
 public:
  Resource() = default;

  /// Reserve the resource for `hold` starting no earlier than `earliest`.
  /// Returns the actual start time (>= earliest, >= end of previous use).
  TimePoint reserve(TimePoint earliest, Duration hold) {
    const TimePoint start = std::max(earliest, busy_until_);
    busy_until_ = start + hold;
    total_busy_ += hold;
    ++uses_;
    return start;
  }

  /// Time at which the resource next becomes free.
  TimePoint busy_until() const noexcept { return busy_until_; }

  /// Aggregate busy time (for utilization reports).
  Duration total_busy() const noexcept { return total_busy_; }
  std::uint64_t uses() const noexcept { return uses_; }

 private:
  TimePoint busy_until_{0};
  Duration total_busy_{0};
  std::uint64_t uses_ = 0;
};

}  // namespace mvflow::sim
