// Simulated condition variable: processes block on it; any context (an
// event callback or another process) notifies. Wake-ups are delivered
// through the engine's event queue, preserving deterministic ordering.
#pragma once

#include <list>
#include <memory>

#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/time.hpp"

namespace mvflow::sim {

class Condition {
 public:
  explicit Condition(Engine& engine) : engine_(engine) {}
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  /// Block `p` until notify_one/notify_all. Must be called from p's body.
  void wait(Process& p);

  /// Block with a timeout; returns true if notified, false on timeout.
  bool wait_for(Process& p, Duration timeout);

  /// Wake every currently blocked process (as events at the current time).
  /// The no-waiter case is the common one on the hot path (a completion
  /// queue notifies per entry, pollers rarely block), so it short-circuits
  /// inline before the out-of-line wake loop.
  void notify_all() {
    if (!waiters_.empty()) notify_all_slow();
  }

  /// Wake the longest-waiting blocked process, if any.
  void notify_one() {
    if (!waiters_.empty()) notify_one_slow();
  }

  std::size_t waiter_count() const noexcept { return waiters_.size(); }

 private:
  struct Waiter {
    std::function<void()> wake;
    bool notified = false;
    bool abandoned = false;  // waiter timed out / unwound; skip on notify
  };
  std::shared_ptr<Waiter> enqueue(Process& p);
  void notify_all_slow();
  void notify_one_slow();

  Engine& engine_;
  std::list<std::shared_ptr<Waiter>> waiters_;
};

}  // namespace mvflow::sim
