#include "sim/sharded.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace mvflow::sim {

int default_engine_threads() noexcept {
  static const int threads = [] {
    int t = 0;
    if (const char* env = std::getenv("MVFLOW_ENGINE_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v > 0 && v <= 1024) {
        t = static_cast<int>(v);
      }
    }
    return t;
  }();
  return threads;
}

ShardedEngine::ShardedEngine(std::size_t shards, std::size_t workers,
                             SchedKind kind)
    : outboxes_(shards), workers_(std::max<std::size_t>(
                             1, std::min(workers, shards))) {
  util::require(shards > 0, "sharded engine needs at least one shard");
  engines_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    engines_.push_back(std::make_unique<Engine>(kind));
  }
  if (workers_ > 1) {
    pool_.reserve(workers_);
    for (std::size_t w = 0; w < workers_; ++w) {
      pool_.emplace_back([this, w] { worker_main(w); });
    }
  }
}

ShardedEngine::~ShardedEngine() {
  if (!pool_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : pool_) t.join();
  }
}

std::uint64_t ShardedEngine::total_executed() const noexcept {
  std::uint64_t total = 0;
  for (const auto& e : engines_) total += e->perf_stats().executed;
  return total;
}

EnginePerfStats ShardedEngine::aggregate_perf() const noexcept {
  EnginePerfStats agg;
  for (const auto& e : engines_) {
    const EnginePerfStats& p = e->perf_stats();
    agg.scheduled += p.scheduled;
    agg.executed += p.executed;
    agg.cancelled_before_fire += p.cancelled_before_fire;
    agg.pool_reuses += p.pool_reuses;
    agg.pool_allocs += p.pool_allocs;
    agg.dead_pops += p.dead_pops;
    agg.peak_heap_depth = std::max(agg.peak_heap_depth, p.peak_heap_depth);
    agg.max_batch = std::max(agg.max_batch, p.max_batch);
  }
  return agg;
}

void ShardedEngine::set_watchpoint(std::uint64_t executed,
                                   std::function<void()> fn) {
  watchpoints_.emplace_back(executed, std::move(fn));
}

void ShardedEngine::set_shard_hooks(std::function<void(std::size_t)> enter,
                                    std::function<void(std::size_t)> exit) {
  enter_shard_ = std::move(enter);
  exit_shard_ = std::move(exit);
}

void ShardedEngine::run_shard(std::size_t s, TimePoint cap) {
  if (enter_shard_) enter_shard_(s);
  try {
    engines_[s]->run_until(cap);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(err_mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    stop_.store(true, std::memory_order_relaxed);
  }
  if (exit_shard_) exit_shard_(s);
}

void ShardedEngine::worker_main(std::size_t w) {
  std::uint64_t seen = 0;
  for (;;) {
    TimePoint cap{0};
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) return;
      seen = epoch_;
      cap = cap_;
    }
    for (std::size_t s = w; s < engines_.size(); s += workers_) {
      run_shard(s, cap);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++done_ == workers_) done_cv_.notify_one();
    }
  }
}

void ShardedEngine::run_window(TimePoint cap) {
  if (pool_.empty()) {
    for (std::size_t s = 0; s < engines_.size(); ++s) run_shard(s, cap);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    cap_ = cap;
    done_ = 0;
    ++epoch_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return done_ == workers_; });
}

void ShardedEngine::drain_outboxes() {
  drain_scratch_.clear();
  for (Outbox& ob : outboxes_) {
    for (CrossPost& p : ob.posts) drain_scratch_.push_back(std::move(p));
    ob.posts.clear();
  }
  if (drain_scratch_.empty()) return;
  // Canonical application order: by the time the interaction reaches
  // shared state, then (src, order) — a pure function of window content,
  // independent of which worker finished first.
  std::sort(drain_scratch_.begin(), drain_scratch_.end(),
            [](const CrossPost& a, const CrossPost& b) {
              if (a.key != b.key) return a.key < b.key;
              if (a.src != b.src) return a.src < b.src;
              return a.order < b.order;
            });
  stats_.cross_posts += drain_scratch_.size();
  stats_.peak_window_posts =
      std::max(stats_.peak_window_posts, drain_scratch_.size());
  for (CrossPost& p : drain_scratch_) p.fn();
  drain_scratch_.clear();
}

void ShardedEngine::fire_due_watchpoints() {
  if (watchpoints_.empty()) return;
  const std::uint64_t total = total_executed();
  // Extract the due callbacks before invoking any: a callback may register
  // further watchpoints (e.g. a restore arming its next checkpoint), which
  // must not invalidate this iteration.
  std::vector<std::function<void()>> due;
  for (auto it = watchpoints_.begin(); it != watchpoints_.end();) {
    if (it->first <= total) {
      due.push_back(std::move(it->second));
      it = watchpoints_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& fn : due) fn();
}

std::size_t ShardedEngine::run_until(TimePoint t_max) {
  util::require(lookahead_ > Duration(0),
                "sharded engine needs a positive lookahead before running");
  const std::uint64_t start_executed = total_executed();
  stop_.store(false, std::memory_order_relaxed);
  for (;;) {
    if (stop_requested()) break;
    TimePoint t_min = TimePoint::max();
    for (const auto& e : engines_) {
      t_min = std::min(t_min, e->next_event_time());
    }
    if (t_min > t_max) break;
    // Window [t_min, t_min + lookahead): every cross-shard effect of an
    // event inside it lands at or after the horizon, so shards are
    // independent until the barrier. The cap is inclusive (run_until runs
    // t <= cap), hence horizon - 1ns.
    const TimePoint cap = std::min(t_min + lookahead_ - Duration(1), t_max);
    run_window(cap);
    ++stats_.windows;
    drain_outboxes();
    fire_due_watchpoints();
    // Coordinator thread, workers parked: safe for cross-shard reads.
    if (barrier_hook_) barrier_hook_(cap);
  }
  // Align every shard clock with the caller's horizon (mirrors
  // Engine::run_until advancing now() even when the queue drains early) —
  // unless we bailed on stop/error, where clocks stay at the last barrier.
  bool errored = false;
  {
    std::lock_guard<std::mutex> lock(err_mu_);
    errored = static_cast<bool>(first_error_);
  }
  if (!stop_requested() && !errored) {
    for (const auto& e : engines_) e->run_until(t_max);
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(err_mu_);
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
  return static_cast<std::size_t>(total_executed() - start_executed);
}

}  // namespace mvflow::sim
