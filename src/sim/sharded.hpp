// Conservative parallel DES across engine shards (DESIGN.md §14).
//
// One world, K shards (one Engine per node), W worker threads. Execution
// proceeds in bounded-horizon windows: the coordinator finds the earliest
// pending event time T across shards, sets the horizon to T + lookahead,
// and lets every shard run its own events with t < horizon concurrently —
// safe because anything one shard does to another is separated by at least
// the link lookahead (two serialization delays + two wire hops + switch +
// rx processing), so no event inside the window can be affected by a
// not-yet-delivered cross-shard interaction. At the barrier the coordinator
// drains the cross-shard outboxes in a canonical (key, src, order) sort and
// applies them single-threaded, then opens the next window.
//
// Determinism: the shard map is fixed by world shape (shard-per-node), each
// shard's engine is bit-deterministic in isolation, and the barrier drain
// order is a pure function of what the windows produced — so the worker
// count W changes only which OS thread runs a shard, never the event
// order. t1 == t2 == t4 == t8, bit for bit; sim_sharded_test and the
// golden hashes assert it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace mvflow::sim {

/// Process-wide default engine parallelism: one-time $MVFLOW_ENGINE_THREADS
/// snapshot. 0 (the serial golden-reference engine) when unset, unparseable,
/// or negative — like $MVFLOW_SCHEDULER, a typo'd value must not silently
/// change how a sweep runs, so the snapshot is taken exactly once.
int default_engine_threads() noexcept;

/// Coordinator self-observation: how the window protocol behaved. Exposed
/// through the MetricsRegistry as "engine.windows" etc. in sharded worlds.
struct ShardedStats {
  std::uint64_t windows = 0;      ///< barrier epochs executed
  std::uint64_t cross_posts = 0;  ///< closures handed between shards
  std::size_t peak_window_posts = 0;  ///< largest single-barrier drain

  template <typename Fn>
  void visit(Fn&& f) const {
    f("windows", static_cast<double>(windows));
    f("cross_posts", static_cast<double>(cross_posts));
    f("peak_window_posts", static_cast<double>(peak_window_posts));
  }
};

class ShardedEngine {
 public:
  /// Cross-shard closures carry a full packet plus routing/timing state —
  /// slightly bigger than an engine event, and still allocation-free.
  static constexpr std::size_t kPostInlineBytes = 128;
  using PostFn = InplaceFunction<void(), kPostInlineBytes>;

  /// `shards` engines (each with its own `kind` scheduler), executed by
  /// min(workers, shards) persistent worker threads; workers == 1 runs
  /// every shard inline on the coordinator thread through the exact same
  /// window protocol.
  ShardedEngine(std::size_t shards, std::size_t workers, SchedKind kind);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine();

  std::size_t shard_count() const noexcept { return engines_.size(); }
  std::size_t worker_count() const noexcept { return workers_; }
  Engine& shard(std::size_t s) noexcept { return *engines_[s]; }
  const Engine& shard(std::size_t s) const noexcept { return *engines_[s]; }

  /// Minimum cross-shard interaction latency; must be > 0 before
  /// run_until. The fabric derives it from link timing (fabric.cpp).
  void set_lookahead(Duration l) noexcept { lookahead_ = l; }
  Duration lookahead() const noexcept { return lookahead_; }

  /// Hand a closure across shards. Called from shard `src` while its
  /// window executes (only that shard's worker touches its outbox); the
  /// closure runs at the next barrier, on the coordinator thread, in
  /// canonical (key, src, order) position. `key` is the simulated time the
  /// interaction reaches shared state (for fabric traffic: switch arrival),
  /// which by the lookahead argument is always >= the window horizon.
  template <typename F>
  void post(std::size_t src, TimePoint key, F&& fn) {
    Outbox& ob = outboxes_[src];
    ob.posts.push_back(
        CrossPost{key, ob.next_order++, static_cast<std::uint32_t>(src),
                  PostFn(std::forward<F>(fn))});
  }

  /// Run the window loop until every shard is drained or past `t_max`;
  /// advances every shard clock to t_max (like Engine::run_until). Returns
  /// events executed. A shard exception stops the loop at the next barrier
  /// and rethrows here.
  std::size_t run_until(TimePoint t_max);

  /// Ask the window loop to exit at the next barrier. Callable from any
  /// shard callback or process body during run_until.
  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Total events executed across all shards (stable between windows).
  std::uint64_t total_executed() const noexcept;

  /// Shard perf counters combined: sums for the flow counters, max for
  /// peak depth / batch (a per-shard peak does not add across shards).
  EnginePerfStats aggregate_perf() const noexcept;

  const ShardedStats& stats() const noexcept { return stats_; }

  /// Run `fn` at the first barrier where total_executed() >= `executed` —
  /// the sharded analogue of Engine::set_watchpoint, and why checkpoint
  /// watchpoints in parallel worlds are barrier-aligned: between windows
  /// every shard is quiescent and cross-shard state is fully applied.
  /// Several watchpoints may share a count; each fires exactly once, in
  /// registration order, on the coordinator thread.
  void set_watchpoint(std::uint64_t executed, std::function<void()> fn);

  /// Barrier hook: runs on the coordinator thread at the end of every
  /// window barrier (after cross posts are applied and watchpoints fired),
  /// with every shard quiescent — the one place cross-shard reads are safe
  /// while the loop runs. The argument is the window cap (the sim time the
  /// shards have reached). The auditor's sharded sweep and the watchdog
  /// tick live here; an exception thrown by the hook aborts run_until and
  /// propagates to the caller.
  void set_barrier_hook(std::function<void(TimePoint)> fn) {
    barrier_hook_ = std::move(fn);
  }

  /// Per-shard thread-context hooks: `enter(s)` runs on the thread about
  /// to execute shard s's window (bind the shard recorder / logger),
  /// `exit(s)` after it finishes (even on error). Barrier-drain closures run
  /// on the coordinator thread *without* hooks — a cross post must not
  /// depend on shard thread context, only on its destination engine.
  void set_shard_hooks(std::function<void(std::size_t)> enter,
                       std::function<void(std::size_t)> exit);

 private:
  struct CrossPost {
    TimePoint key{0};
    std::uint64_t order = 0;
    std::uint32_t src = 0;
    PostFn fn;
  };
  /// Padded so two workers' outbox bookkeeping never share a cache line.
  struct alignas(64) Outbox {
    std::vector<CrossPost> posts;
    std::uint64_t next_order = 0;
  };

  void run_shard(std::size_t s, TimePoint cap);
  void run_window(TimePoint cap);
  void worker_main(std::size_t w);
  void drain_outboxes();
  void fire_due_watchpoints();

  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<Outbox> outboxes_;
  std::size_t workers_;
  Duration lookahead_{0};
  std::atomic<bool> stop_{false};
  ShardedStats stats_;
  std::function<void(std::size_t)> enter_shard_;
  std::function<void(std::size_t)> exit_shard_;
  std::function<void(TimePoint)> barrier_hook_;
  std::vector<std::pair<std::uint64_t, std::function<void()>>> watchpoints_;
  std::vector<CrossPost> drain_scratch_;

  // Persistent worker pool (only when workers_ > 1). The coordinator
  // publishes {epoch, cap} under mu_; workers run their shards and count
  // themselves done. The mutex hand-offs order every window's shard state
  // between worker and coordinator.
  std::vector<std::thread> pool_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  TimePoint cap_{0};
  std::size_t done_ = 0;
  bool shutdown_ = false;

  std::mutex err_mu_;
  std::exception_ptr first_error_;
};

}  // namespace mvflow::sim
