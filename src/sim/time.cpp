#include "sim/time.hpp"

#include <cstdio>

namespace mvflow::sim {

std::string format_time(TimePoint t) {
  char buf[48];
  const auto ns = t.count();
  if (ns < 10'000) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 10'000'000'000LL) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

}  // namespace mvflow::sim
