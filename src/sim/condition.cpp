#include "sim/condition.hpp"

#include "util/check.hpp"

namespace mvflow::sim {

namespace {

/// Marks a waiter abandoned if the wait unwinds (timeout or ProcessKilled)
/// so notify_one never "spends" a wake-up on a dead waiter.
struct WaiterGuard {
  std::shared_ptr<void> raw;
  bool* notified;
  bool* abandoned;
  ~WaiterGuard() {
    if (!*notified) *abandoned = true;
  }
};

}  // namespace

std::shared_ptr<Condition::Waiter> Condition::enqueue(Process& p) {
  auto w = std::make_shared<Waiter>();
  w->wake = p.make_waker();
  waiters_.push_back(w);
  return w;
}

void Condition::wait(Process& p) {
  ++p.sleep_epoch_;
  auto w = enqueue(p);
  WaiterGuard guard{w, &w->notified, &w->abandoned};
  p.suspend();
  util::check(w->notified, "condition wait woke without notification");
}

bool Condition::wait_for(Process& p, Duration timeout) {
  ++p.sleep_epoch_;
  auto w = enqueue(p);
  auto timer_wake = p.make_waker();
  auto handle = engine_.schedule_after(timeout, [w, timer_wake] {
    if (w->notified || w->abandoned) return;
    w->abandoned = true;
    timer_wake();
  });
  WaiterGuard guard{w, &w->notified, &w->abandoned};
  p.suspend();
  handle.cancel();
  return w->notified;
}

void Condition::notify_all_slow() {
  auto pending = std::move(waiters_);
  waiters_.clear();
  for (auto& w : pending) {
    if (w->abandoned || w->notified) continue;
    w->notified = true;
    engine_.schedule_at(engine_.now(), [w] { w->wake(); });
  }
}

void Condition::notify_one_slow() {
  while (!waiters_.empty()) {
    auto w = waiters_.front();
    waiters_.pop_front();
    if (w->abandoned || w->notified) continue;
    w->notified = true;
    engine_.schedule_at(engine_.now(), [w] { w->wake(); });
    return;
  }
}

}  // namespace mvflow::sim
