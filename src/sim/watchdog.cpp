#include "sim/watchdog.hpp"

#include <sstream>

namespace mvflow::sim {

namespace {

std::string compose(int src, int dst, const std::string& detail) {
  std::ostringstream os;
  os << "watchdog stall on connection " << src << "->" << dst << ": "
     << detail;
  return os.str();
}

}  // namespace

WatchdogError::WatchdogError(int src, int dst, const std::string& detail)
    : std::runtime_error(compose(src, dst, detail)), src_(src), dst_(dst) {}

std::optional<WatchdogStall> Watchdog::observe(
    TimePoint now, const std::vector<WatchdogSample>& samples) {
  std::optional<WatchdogStall> hit;
  for (const WatchdogSample& s : samples) {
    State& st = state_[{s.src, s.dst}];
    if (s.backlog != st.backlog || s.progress != st.progress) {
      st.backlog = s.backlog;
      st.progress = s.progress;
      st.since = now;
      continue;
    }
    if (st.backlog == 0) continue;
    const Duration frozen = now - st.since;
    if (frozen >= horizon_ && !hit) {
      WatchdogStall stall;
      stall.src = s.src;
      stall.dst = s.dst;
      stall.backlog = st.backlog;
      stall.progress = st.progress;
      stall.since = st.since;
      stall.stalled_for = frozen;
      hit = stall;
    }
  }
  return hit;
}

}  // namespace mvflow::sim
