// Lightweight runtime checks used across mvflow.
//
// `check()` is for conditions that indicate a programming error inside the
// library (always on, throws `std::logic_error`); `require()` is for
// validating caller-supplied arguments (throws `std::invalid_argument`).
// Both keep the failure location so test output points at the right line.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mvflow::util {

[[noreturn]] inline void fail(std::string_view kind, std::string_view what,
                              const std::source_location& loc) {
  std::string msg;
  msg += kind;
  msg += ": ";
  msg += what;
  msg += " at ";
  msg += loc.file_name();
  msg += ":";
  msg += std::to_string(loc.line());
  if (kind == "require") throw std::invalid_argument(msg);
  throw std::logic_error(msg);
}

/// Internal-invariant check. Throws std::logic_error when `cond` is false.
inline void check(bool cond, std::string_view what = "invariant violated",
                  const std::source_location& loc = std::source_location::current()) {
  if (!cond) fail("check", what, loc);
}

/// Argument-validation check. Throws std::invalid_argument when false.
inline void require(bool cond, std::string_view what = "bad argument",
                    const std::source_location& loc = std::source_location::current()) {
  if (!cond) fail("require", what, loc);
}

}  // namespace mvflow::util
