// Checksummed binary serialization for world snapshots (DESIGN.md §13).
//
// A snapshot is a little-endian byte stream framed as
//
//   magic[8]="MVFLOWCK"  u32 version  u32 flags  u64 payload_size
//   u32 payload_crc32    payload bytes...
//
// where the payload is a sequence of tagged sections
//
//   u32 tag  u64 size  bytes[size]
//
// Every read is bounds-checked and every failure throws SnapshotError with
// a message naming what was wrong (bad magic, unsupported version,
// truncation, CRC mismatch, section overrun) — a corrupted file must never
// crash or silently misparse. Files are written crash-safely: the bytes go
// to `<path>.tmp`, are fsync()ed, and the file is atomically renamed into
// place, so a kill mid-write leaves either the old snapshot or none.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mvflow::util::serial {

/// Any structural problem with a snapshot: corruption, truncation, version
/// or magic mismatch, or (at restore time) a determinism-audit divergence.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG one) over a byte span.
std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t seed = 0) noexcept;

// ---------------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------------

/// Append-only little-endian byte sink.
class BufWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { raw_le(v); }
  void u32(std::uint32_t v) { raw_le(v); }
  void u64(std::uint64_t v) { raw_le(v); }
  void i32(std::int32_t v) { raw_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { raw_le(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  /// Doubles are serialized as their IEEE-754 bit pattern: bit-exact
  /// round-trip, no text formatting involved.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  const std::vector<std::byte>& data() const noexcept { return buf_; }
  std::vector<std::byte> take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  template <typename T>
  void raw_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
  }
  std::vector<std::byte> buf_;
};

/// Bounds-checked little-endian reader over a borrowed byte span. Every
/// overrun throws SnapshotError naming `what` (the field being decoded).
class BufReader {
 public:
  BufReader(const std::byte* data, std::size_t len) : p_(data), end_(data + len) {}
  explicit BufReader(const std::vector<std::byte>& v)
      : BufReader(v.data(), v.size()) {}

  std::uint8_t u8(const char* what = "u8") { return take<std::uint8_t>(what); }
  std::uint16_t u16(const char* what = "u16") { return take<std::uint16_t>(what); }
  std::uint32_t u32(const char* what = "u32") { return take<std::uint32_t>(what); }
  std::uint64_t u64(const char* what = "u64") { return take<std::uint64_t>(what); }
  std::int32_t i32(const char* what = "i32") {
    return static_cast<std::int32_t>(take<std::uint32_t>(what));
  }
  std::int64_t i64(const char* what = "i64") {
    return static_cast<std::int64_t>(take<std::uint64_t>(what));
  }
  bool b(const char* what = "bool") { return u8(what) != 0; }
  double f64(const char* what = "f64") {
    const std::uint64_t bits = take<std::uint64_t>(what);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str(const char* what = "string") {
    const std::uint64_t n = u64(what);
    require(n, what);
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }
  std::vector<std::byte> bytes(std::size_t n, const char* what = "bytes") {
    require(n, what);
    std::vector<std::byte> out(p_, p_ + n);
    p_ += n;
    return out;
  }
  void skip(std::size_t n, const char* what = "skip") {
    require(n, what);
    p_ += n;
  }

  std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }
  bool at_end() const noexcept { return p_ == end_; }

 private:
  template <typename T>
  T take(const char* what) {
    require(sizeof(T), what);
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(p_[i]) << (8 * i)));
    }
    p_ += sizeof(T);
    return v;
  }
  void require(std::uint64_t n, const char* what) const {
    if (n > remaining()) {
      throw SnapshotError(std::string("snapshot truncated while reading ") +
                          what + " (need " + std::to_string(n) + " bytes, " +
                          std::to_string(remaining()) + " left)");
    }
  }
  const std::byte* p_;
  const std::byte* end_;
};

// ---------------------------------------------------------------------------
// Snapshot container (header + tagged sections)
// ---------------------------------------------------------------------------

inline constexpr char kMagic[8] = {'M', 'V', 'F', 'L', 'O', 'W', 'C', 'K'};
// v2: engine section switched to the canonical scheduler-agnostic encoding
// (sorted live pending set, no zombie/layout leakage) and the config
// section gained the engine-mode fields (threads, scheduler).
inline constexpr std::uint32_t kVersion = 2;
inline constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 4;

struct Section {
  std::uint32_t tag = 0;
  std::vector<std::byte> bytes;
};

/// Frame `sections` into a complete snapshot byte stream (header + CRC).
std::vector<std::byte> frame_sections(const std::vector<Section>& sections);

/// Parse and fully validate a snapshot byte stream: magic, version, declared
/// payload size vs. actual, CRC, and per-section bounds. Throws
/// SnapshotError with a specific diagnostic on any mismatch.
std::vector<Section> parse_sections(const std::vector<std::byte>& file);

/// Find a section by tag; nullptr when absent.
const Section* find_section(const std::vector<Section>& sections,
                            std::uint32_t tag) noexcept;

// ---------------------------------------------------------------------------
// Crash-safe file I/O
// ---------------------------------------------------------------------------

/// Write `data` to `path` crash-safely: write `<path>.tmp`, fsync it, then
/// atomically rename over `path` (and fsync the directory so the rename
/// itself is durable). Throws SnapshotError on any I/O failure, leaving the
/// previous `path` contents (if any) untouched.
void write_file_atomic(const std::string& path,
                       const std::vector<std::byte>& data);

/// Read a whole file; throws SnapshotError (with errno text) when the file
/// cannot be opened or read.
std::vector<std::byte> read_file(const std::string& path);

}  // namespace mvflow::util::serial
