// Deterministic, seedable random number generation.
//
// The simulator must be bit-reproducible across runs, so all randomness in
// mvflow flows through these generators (never std::random_device or global
// state). SplitMix64 is used for seed expansion, Xoshiro256** for streams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace mvflow::util {

/// SplitMix64: tiny generator mainly used to expand a single 64-bit seed
/// into the larger state Xoshiro256 needs.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit PRNG. Satisfies
/// std::uniform_random_bit_generator so it can drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9c2e1f50d9f0d5a3ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free variant is overkill here;
    // modulo bias is negligible for the bounds we use (<< 2^32).
    return (*this)() % bound;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // ---- checkpoint support (DESIGN.md §13) ----
  // The full generator state is exactly these four words, so a stream can
  // be serialized into a world snapshot and resume bit-identically. Every
  // stochastic component must own its stream through a serializable path
  // like this one — never hidden global state.
  std::array<std::uint64_t, 4> state() const noexcept { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept { state_ = s; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mvflow::util
