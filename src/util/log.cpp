#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <vector>

namespace mvflow::util {

namespace {

LogLevel parse_level(const char* s) {
  if (!s) return LogLevel::off;
  if (std::strcmp(s, "error") == 0) return LogLevel::error;
  if (std::strcmp(s, "warn") == 0) return LogLevel::warn;
  if (std::strcmp(s, "info") == 0) return LogLevel::info;
  if (std::strcmp(s, "debug") == 0) return LogLevel::debug;
  if (std::strcmp(s, "trace") == 0) return LogLevel::trace;
  return LogLevel::off;
}

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::error: return "ERROR";
    case LogLevel::warn: return "WARN";
    case LogLevel::info: return "INFO";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::trace: return "TRACE";
    default: return "OFF";
  }
}

// Atomic because the level is read from every thread running a simulation
// while tests (or a main thread configuring a sweep) may set it.
std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> lvl = parse_level(std::getenv("MVFLOW_LOG"));
  return lvl;
}

struct TimeSource {
  Logger::TimeSourceFn fn = nullptr;
  const void* ctx = nullptr;
};

// Thread-local: each experiment thread (and each simulated rank's process
// thread) sees only the time sources pushed on that thread, so concurrent
// engines never observe each other's clocks. A sim::Engine registers on its
// constructing thread and sim::Process re-registers its engine on the
// process thread it spawns.
std::vector<TimeSource>& time_sources() {
  thread_local std::vector<TimeSource> sources;
  return sources;
}

/// Human-readable simulated time, mirroring sim::format_time ("12.345us");
/// duplicated locally because util sits below the sim layer.
void format_ns(char* buf, std::size_t n, long long ns) {
  const double t = static_cast<double>(ns);
  if (ns < 1'000) std::snprintf(buf, n, "%lldns", ns);
  else if (ns < 1'000'000) std::snprintf(buf, n, "%.3fus", t / 1e3);
  else if (ns < 1'000'000'000) std::snprintf(buf, n, "%.3fms", t / 1e6);
  else std::snprintf(buf, n, "%.3fs", t / 1e9);
}

}  // namespace

LogLevel Logger::level() {
  return level_storage().load(std::memory_order_relaxed);
}

void Logger::set_level(LogLevel lvl) {
  level_storage().store(lvl, std::memory_order_relaxed);
}

void Logger::write(LogLevel lvl, std::string_view component,
                   std::string_view message) {
  // Format the whole line first and emit it with a single stdio call:
  // stdio locks the stream per call, so concurrent writers interleave only
  // at line granularity, never mid-line.
  char line[1024];
  int n;
  const auto& sources = time_sources();
  if (!sources.empty()) {
    char ts[32];
    format_ns(ts, sizeof ts, sources.back().fn(sources.back().ctx));
    n = std::snprintf(line, sizeof line, "[%s] [%s] %.*s: %.*s\n",
                      level_name(lvl), ts,
                      static_cast<int>(component.size()), component.data(),
                      static_cast<int>(message.size()), message.data());
  } else {
    n = std::snprintf(line, sizeof line, "[%s] %.*s: %.*s\n", level_name(lvl),
                      static_cast<int>(component.size()), component.data(),
                      static_cast<int>(message.size()), message.data());
  }
  if (n <= 0) return;
  if (static_cast<std::size_t>(n) >= sizeof line) {
    // Truncated: keep the line shape (terminate with a newline) so the
    // atomicity guarantee holds even for oversized messages.
    line[sizeof line - 2] = '\n';
    n = static_cast<int>(sizeof line) - 1;
  }
  std::fwrite(line, 1, static_cast<std::size_t>(n), stderr);
}

void Logger::push_time_source(TimeSourceFn fn, const void* ctx) {
  time_sources().push_back(TimeSource{fn, ctx});
}

void Logger::pop_time_source(const void* ctx) {
  auto& sources = time_sources();
  for (auto it = sources.rbegin(); it != sources.rend(); ++it) {
    if (it->ctx == ctx) {
      sources.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace mvflow::util
