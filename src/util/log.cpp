#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <vector>

namespace mvflow::util {

namespace {

LogLevel parse_level(const char* s) {
  if (!s) return LogLevel::off;
  if (std::strcmp(s, "error") == 0) return LogLevel::error;
  if (std::strcmp(s, "warn") == 0) return LogLevel::warn;
  if (std::strcmp(s, "info") == 0) return LogLevel::info;
  if (std::strcmp(s, "debug") == 0) return LogLevel::debug;
  if (std::strcmp(s, "trace") == 0) return LogLevel::trace;
  return LogLevel::off;
}

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::error: return "ERROR";
    case LogLevel::warn: return "WARN";
    case LogLevel::info: return "INFO";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::trace: return "TRACE";
    default: return "OFF";
  }
}

LogLevel& level_storage() {
  static LogLevel lvl = parse_level(std::getenv("MVFLOW_LOG"));
  return lvl;
}

struct TimeSource {
  Logger::TimeSourceFn fn = nullptr;
  const void* ctx = nullptr;
};

std::vector<TimeSource>& time_sources() {
  static std::vector<TimeSource> sources;
  return sources;
}

/// Human-readable simulated time, mirroring sim::format_time ("12.345us");
/// duplicated locally because util sits below the sim layer.
void format_ns(char* buf, std::size_t n, long long ns) {
  const double t = static_cast<double>(ns);
  if (ns < 1'000) std::snprintf(buf, n, "%lldns", ns);
  else if (ns < 1'000'000) std::snprintf(buf, n, "%.3fus", t / 1e3);
  else if (ns < 1'000'000'000) std::snprintf(buf, n, "%.3fms", t / 1e6);
  else std::snprintf(buf, n, "%.3fs", t / 1e9);
}

}  // namespace

LogLevel Logger::level() { return level_storage(); }

void Logger::set_level(LogLevel lvl) { level_storage() = lvl; }

void Logger::write(LogLevel lvl, std::string_view component,
                   std::string_view message) {
  const auto& sources = time_sources();
  if (!sources.empty()) {
    char ts[32];
    format_ns(ts, sizeof ts, sources.back().fn(sources.back().ctx));
    std::fprintf(stderr, "[%s] [%s] %.*s: %.*s\n", level_name(lvl), ts,
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
    return;
  }
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(lvl),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

void Logger::push_time_source(TimeSourceFn fn, const void* ctx) {
  time_sources().push_back(TimeSource{fn, ctx});
}

void Logger::pop_time_source(const void* ctx) {
  auto& sources = time_sources();
  for (auto it = sources.rbegin(); it != sources.rend(); ++it) {
    if (it->ctx == ctx) {
      sources.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace mvflow::util
