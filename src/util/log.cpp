#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mvflow::util {

namespace {

LogLevel parse_level(const char* s) {
  if (!s) return LogLevel::off;
  if (std::strcmp(s, "error") == 0) return LogLevel::error;
  if (std::strcmp(s, "warn") == 0) return LogLevel::warn;
  if (std::strcmp(s, "info") == 0) return LogLevel::info;
  if (std::strcmp(s, "debug") == 0) return LogLevel::debug;
  if (std::strcmp(s, "trace") == 0) return LogLevel::trace;
  return LogLevel::off;
}

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::error: return "ERROR";
    case LogLevel::warn: return "WARN";
    case LogLevel::info: return "INFO";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::trace: return "TRACE";
    default: return "OFF";
  }
}

LogLevel& level_storage() {
  static LogLevel lvl = parse_level(std::getenv("MVFLOW_LOG"));
  return lvl;
}

}  // namespace

LogLevel Logger::level() { return level_storage(); }

void Logger::set_level(LogLevel lvl) { level_storage() = lvl; }

void Logger::write(LogLevel lvl, std::string_view component,
                   std::string_view message) {
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(lvl),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace mvflow::util
