// Cursor-based FIFO over a flat vector. The simulator's hot queues (QP send
// windows, posted receives, completion queues) are strict FIFOs with rare
// mid-queue surgery; std::deque serves them but pays steady-state block
// churn — libstdc++ frees a 512-byte block every time pop_front crosses a
// block boundary and reallocates it on the next push_back. This container
// instead advances a read cursor over one vector and recycles the storage
// (capacity retained) whenever the consumer drains it, so a queue that
// repeatedly fills and empties never touches the allocator after warmup.
//
// Unconsumed elements occupy [head_, buf_.size()); slots before the cursor
// are dead until the next drain — or until pop_front compacts: once the
// dead prefix passes a threshold and outweighs the live tail, the prefix
// is erased (destroying the moved-from elements it pinned), so a queue
// that never fully drains still uses O(live) memory, amortized O(1) per
// pop. Iterators cover only live elements and follow vector invalidation
// rules; pop_front may invalidate them (compaction), like pop-and-push on
// a ring buffer would.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace mvflow::util {

template <typename T>
class FlatFifo {
 public:
  using iterator = typename std::vector<T>::iterator;
  using const_iterator = typename std::vector<T>::const_iterator;

  bool empty() const noexcept { return head_ == buf_.size(); }
  std::size_t size() const noexcept { return buf_.size() - head_; }

  T& front() { return buf_[head_]; }
  const T& front() const { return buf_[head_]; }
  T& back() { return buf_.back(); }
  const T& back() const { return buf_.back(); }

  void push_back(T v) { buf_.push_back(std::move(v)); }
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    return buf_.emplace_back(std::forward<Args>(args)...);
  }

  void pop_front() {
    ++head_;
    if (head_ == buf_.size()) {
      clear();
    } else if (head_ >= kCompactMin && head_ >= buf_.size() - head_) {
      // Dead prefix outweighs the live tail: erase it. Each compaction
      // moves at most as many elements as pops since the last one, so the
      // cost is amortized O(1) and memory stays O(live).
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }
  void pop_back() {
    buf_.pop_back();
    if (head_ == buf_.size()) clear();
  }

  /// Re-queue at the head (retransmission rewind). Reuses a dead slot in
  /// front of the cursor when one exists.
  void push_front(T v) {
    if (head_ > 0) {
      buf_[--head_] = std::move(v);
    } else {
      buf_.insert(buf_.begin(), std::move(v));
    }
  }

  void clear() noexcept {
    buf_.clear();  // capacity retained
    head_ = 0;
  }

  iterator begin() noexcept { return buf_.begin() + static_cast<std::ptrdiff_t>(head_); }
  iterator end() noexcept { return buf_.end(); }
  const_iterator begin() const noexcept {
    return buf_.begin() + static_cast<std::ptrdiff_t>(head_);
  }
  const_iterator end() const noexcept { return buf_.end(); }

  iterator erase(iterator it) {
    iterator out = buf_.erase(it);
    if (head_ == buf_.size()) {
      clear();
      return buf_.end();
    }
    return out;
  }
  iterator erase(iterator first, iterator last) {
    iterator out = buf_.erase(first, last);
    if (head_ == buf_.size()) {
      clear();
      return buf_.end();
    }
    return out;
  }

 private:
  /// Minimum dead-prefix length before compaction kicks in; keeps the
  /// common small fill/drain cycles on the pure cursor-advance path.
  static constexpr std::size_t kCompactMin = 64;

  std::vector<T> buf_;
  std::size_t head_ = 0;
};

}  // namespace mvflow::util
