// Minimal fixed-column table printer for benchmark output.
//
// The bench binaries print each paper table/figure as an aligned text table
// so the series can be eyeballed and diffed against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mvflow::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the header row.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles/ints into a row.
  template <typename... Ts>
  void add(const Ts&... cells) {
    add_row({format_cell(cells)...});
  }

  void print(std::ostream& os) const;
  std::string to_string() const;

  static std::string format_cell(const std::string& s) { return s; }
  static std::string format_cell(const char* s) { return s; }
  static std::string format_cell(double v);
  static std::string format_cell(std::size_t v) { return std::to_string(v); }
  static std::string format_cell(int v) { return std::to_string(v); }
  static std::string format_cell(long v) { return std::to_string(v); }
  static std::string format_cell(long long v) { return std::to_string(v); }
  static std::string format_cell(unsigned v) { return std::to_string(v); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mvflow::util
