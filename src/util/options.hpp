// Minimal --key=value command-line option parsing for the bench binaries
// and examples. Keeps the harnesses dependency-free.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mvflow::util {

/// Parses argv of the form: prog --key=value --flag -x4 -x val positional ...
/// A bare "--flag" (or "-x" with no value) is stored with value "true";
/// short options use the single letter as the key ("-j8" == "--j=8").
class Options {
 public:
  Options(int argc, const char* const* argv);

  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys that were supplied but never queried (catches typos in scripts).
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> kv_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace mvflow::util
