// Tiny leveled logger. Silent (Level::off) by default so the simulator's
// hot paths cost nothing unless tracing is explicitly enabled (e.g. the
// MVFLOW_LOG environment variable or Logger::set_level in tests).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace mvflow::util {

enum class LogLevel { off = 0, error = 1, warn = 2, info = 3, debug = 4, trace = 5 };

class Logger {
 public:
  /// Global log level; reads MVFLOW_LOG (off/error/warn/info/debug/trace)
  /// on first use.
  static LogLevel level();
  static void set_level(LogLevel lvl);

  static bool enabled(LogLevel lvl) { return lvl <= level(); }

  /// Emit one line to stderr, prefixed with the level and component tag —
  /// and, when a time source is active, the current simulated time, so
  /// MVFLOW_LOG output correlates with trace/metrics timestamps.
  static void write(LogLevel lvl, std::string_view component,
                    std::string_view message);

  /// Current-time callback returning nanoseconds; `ctx` identifies the
  /// owner (a sim::Engine registers itself on construction). Sources stack:
  /// the most recently pushed one wins, and pop removes by ctx so nested
  /// engine lifetimes unwind in any order. The stack is thread-local —
  /// concurrent simulations each see their own engine's clock, and a push
  /// is visible only on the pushing thread (sim::Process re-pushes its
  /// engine on each rank thread). Kept as a plain function pointer to
  /// avoid std::function overhead on a layer below everything else.
  using TimeSourceFn = long long (*)(const void* ctx);
  static void push_time_source(TimeSourceFn fn, const void* ctx);
  static void pop_time_source(const void* ctx);
};

/// Streaming helper: LogLine(LogLevel::debug, "ib") << "qp " << qpn;
class LogLine {
 public:
  LogLine(LogLevel lvl, std::string_view component)
      : lvl_(lvl), component_(component), live_(Logger::enabled(lvl)) {}
  ~LogLine() {
    if (live_) Logger::write(lvl_, component_, oss_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (live_) oss_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::string component_;
  bool live_;
  std::ostringstream oss_;
};

}  // namespace mvflow::util
