#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace mvflow::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  require(hi > lo && buckets > 0, "histogram needs hi > lo and buckets > 0");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // FP edge
  ++counts_[idx];
}

void Histogram::merge(const Histogram& other) {
  require(lo_ == other.lo_ && hi_ == other.hi_ &&
              counts_.size() == other.counts_.size(),
          "Histogram::merge requires identically-shaped histograms");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  if (q <= 0.0) {
    // Exact minimum-side contract: lo_ only when a sample actually fell
    // below the range; otherwise the midpoint of the lowest occupied
    // bucket, falling back to hi_ when only overflow samples exist.
    if (underflow_ > 0) return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] > 0) return bucket_lo(i) + width_ / 2;
    }
    return hi_;
  }
  if (q >= 1.0) {
    // Mirror image: hi_ only when a sample overflowed the range.
    if (overflow_ > 0) return hi_;
    for (std::size_t i = counts_.size(); i-- > 0;) {
      if (counts_[i] > 0) return bucket_lo(i) + width_ / 2;
    }
    return lo_;
  }
  const auto target = static_cast<std::size_t>(q * static_cast<double>(total_));
  std::size_t seen = underflow_;
  if (seen > target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) return bucket_lo(i) + width_ / 2;
  }
  return hi_;
}

std::string Histogram::to_string(int max_width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out += std::to_string(bucket_lo(i));
    out += " | ";
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    out.append(bar, '#');
    out += " ";
    out += std::to_string(counts_[i]);
    out += "\n";
  }
  return out;
}

}  // namespace mvflow::util
