#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace mvflow::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(double v) {
  char buf[64];
  if (v != 0.0 && (std::fabs(v) >= 1e7 || std::fabs(v) < 1e-3)) {
    std::snprintf(buf, sizeof buf, "%.3e", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", v);
  }
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (auto w : widths) rule += w + 2;
  os << std::string(rule > 2 ? rule - 2 : rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace mvflow::util
