#include "util/options.hpp"

#include <cctype>
#include <cstdlib>
#include <string_view>

namespace mvflow::util {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg.remove_prefix(2);
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        kv_.emplace(std::string(arg), "true");
      } else {
        kv_.emplace(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
      }
    } else if (arg.size() >= 2 && arg[0] == '-' &&
               std::isalpha(static_cast<unsigned char>(arg[1]))) {
      // Short option: -j4, -j=4, -j 4, or bare -j ("true"). The key is the
      // single letter; an alpha check keeps negative-number positionals
      // (e.g. "-5") out of this branch.
      const std::string key(1, arg[1]);
      std::string_view rest = arg.substr(2);
      if (!rest.empty() && rest.front() == '=') rest.remove_prefix(1);
      if (!rest.empty()) {
        kv_.emplace(key, std::string(rest));
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        kv_.emplace(key, argv[++i]);
      } else {
        kv_.emplace(key, "true");
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

std::optional<std::string> Options::get(const std::string& key) const {
  used_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return std::nullopt;
  return it->second;
}

std::string Options::get_or(const std::string& key, const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::int64_t Options::get_int(const std::string& key, std::int64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

std::vector<std::string> Options::unused() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    (void)v;
    if (!used_.count(k)) out.push_back(k);
  }
  return out;
}

}  // namespace mvflow::util
