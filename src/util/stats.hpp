// Streaming statistics and histograms used by the benchmark harnesses and
// the fabric/MPI counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mvflow::util {

/// Welford streaming mean/variance plus min/max. O(1) per sample.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< Sample variance (n-1 denominator).
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Enumerate the raw accumulator fields (not the derived views) so a
  /// snapshot can capture the exact state for a bit-identical audit.
  template <typename Fn>
  void visit_raw(Fn&& f) const {
    f(static_cast<double>(n_));
    f(mean_);
    f(m2_);
    f(min_);
    f(max_);
    f(sum_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bucket histogram over [lo, hi) with uniform bucket width, plus
/// underflow/overflow buckets. Used for message-size and latency censuses.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  /// Combine another histogram's counts into this one. Both must have the
  /// same [lo, hi) range and bucket count — merging across shard-local
  /// accumulators of one logical metric, not reshaping distributions.
  void merge(const Histogram& other);
  std::size_t total() const noexcept { return total_; }
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t bucket(std::size_t i) const { return counts_.at(i); }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  double bucket_lo(std::size_t i) const noexcept;
  /// Approximate quantile (bucket midpoint of the bucket holding the q-th
  /// sample). Edge contract: an empty histogram returns lo() for every q;
  /// q <= 0 returns lo() only if a sample underflowed, else the midpoint of
  /// the lowest occupied bucket (hi() when only overflow samples exist);
  /// q >= 1 returns hi() only if a sample overflowed, else the midpoint of
  /// the highest occupied bucket (lo() when only underflow samples exist).
  double quantile(double q) const noexcept;

  std::string to_string(int max_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace mvflow::util
