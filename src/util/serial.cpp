#include "util/serial.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace mvflow::util::serial {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

std::string errno_text() { return std::strerror(errno); }

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t seed) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xffffffffu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::vector<std::byte> frame_sections(const std::vector<Section>& sections) {
  BufWriter payload;
  for (const Section& s : sections) {
    payload.u32(s.tag);
    payload.u64(s.bytes.size());
    payload.bytes(s.bytes.data(), s.bytes.size());
  }
  BufWriter out;
  out.bytes(kMagic, sizeof kMagic);
  out.u32(kVersion);
  out.u32(0);  // flags, reserved
  out.u64(payload.size());
  out.u32(crc32(payload.data().data(), payload.size()));
  out.bytes(payload.data().data(), payload.size());
  return out.take();
}

std::vector<Section> parse_sections(const std::vector<std::byte>& file) {
  if (file.size() < kHeaderBytes) {
    throw SnapshotError("snapshot truncated: " + std::to_string(file.size()) +
                        " bytes is smaller than the " +
                        std::to_string(kHeaderBytes) + "-byte header");
  }
  BufReader r(file);
  const std::vector<std::byte> magic = r.bytes(sizeof kMagic, "magic");
  if (std::memcmp(magic.data(), kMagic, sizeof kMagic) != 0) {
    throw SnapshotError("bad snapshot magic: not an mvflow snapshot file");
  }
  const std::uint32_t version = r.u32("version");
  if (version != kVersion) {
    throw SnapshotError("unsupported snapshot version " +
                        std::to_string(version) + " (this build reads version " +
                        std::to_string(kVersion) + ")");
  }
  r.u32("flags");
  const std::uint64_t payload_size = r.u64("payload size");
  const std::uint32_t want_crc = r.u32("payload crc");
  if (payload_size != r.remaining()) {
    throw SnapshotError(
        "snapshot truncated or padded: header declares " +
        std::to_string(payload_size) + " payload bytes but " +
        std::to_string(r.remaining()) + " follow");
  }
  const std::byte* payload = file.data() + kHeaderBytes;
  const std::uint32_t got_crc = crc32(payload, payload_size);
  if (got_crc != want_crc) {
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "snapshot payload CRC mismatch: stored %08x, computed %08x",
                  want_crc, got_crc);
    throw SnapshotError(buf);
  }
  std::vector<Section> out;
  while (!r.at_end()) {
    Section s;
    s.tag = r.u32("section tag");
    const std::uint64_t size = r.u64("section size");
    s.bytes = r.bytes(size, "section body");
    out.push_back(std::move(s));
  }
  return out;
}

const Section* find_section(const std::vector<Section>& sections,
                            std::uint32_t tag) noexcept {
  for (const Section& s : sections) {
    if (s.tag == tag) return &s;
  }
  return nullptr;
}

void write_file_atomic(const std::string& path,
                       const std::vector<std::byte>& data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw SnapshotError("cannot create " + tmp + ": " + errno_text());
  }
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = errno_text();
      ::close(fd);
      ::unlink(tmp.c_str());
      throw SnapshotError("short write to " + tmp + ": " + err);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string err = errno_text();
    ::close(fd);
    ::unlink(tmp.c_str());
    throw SnapshotError("fsync " + tmp + " failed: " + err);
  }
  if (::close(fd) != 0) {
    const std::string err = errno_text();
    ::unlink(tmp.c_str());
    throw SnapshotError("close " + tmp + " failed: " + err);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = errno_text();
    ::unlink(tmp.c_str());
    throw SnapshotError("rename " + tmp + " -> " + path + " failed: " + err);
  }
  // Durability of the rename itself: fsync the containing directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best-effort: some filesystems refuse dir fsync
    ::close(dfd);
  }
}

std::vector<std::byte> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw SnapshotError("cannot open snapshot " + path + ": " + errno_text());
  }
  std::vector<std::byte> out;
  std::byte buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) {
    throw SnapshotError("read error on snapshot " + path + ": " + errno_text());
  }
  return out;
}

}  // namespace mvflow::util::serial
