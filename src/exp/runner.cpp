#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace mvflow::exp {

int SweepRunner::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

SweepRunner::SweepRunner(int n_threads)
    : threads_(n_threads <= 0 ? hardware_threads() : n_threads) {}

void SweepRunner::execute(const std::vector<std::function<void()>>& tasks) const {
  if (tasks.empty()) return;

  // Serial path: inline, in order, exceptions propagate immediately — the
  // exact pre-runner behaviour `-j 1` promises.
  if (threads_ == 1 || tasks.size() == 1) {
    for (const auto& t : tasks) t();
    return;
  }

  // Parallel path: workers claim jobs through an atomic cursor. Job index
  // determines where a result lands, never which worker computed it, so
  // scheduling cannot reorder observable output.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  std::size_t err_index = tasks.size();
  std::exception_ptr err;

  const auto worker = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      try {
        tasks[i]();
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(err_mu);
        // Keep the lowest-indexed failure so the rethrow choice is as
        // close to the serial path's as concurrency allows.
        if (i < err_index) {
          err_index = i;
          err = std::current_exception();
        }
      }
    }
  };

  const std::size_t width =
      std::min(static_cast<std::size_t>(threads_), tasks.size());
  std::vector<std::thread> pool;
  pool.reserve(width);
  for (std::size_t w = 0; w < width; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (err) std::rethrow_exception(err);
}

}  // namespace mvflow::exp
