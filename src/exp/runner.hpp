// SweepRunner: run independent simulations across a thread pool with
// bit-identical results (DESIGN.md §12).
//
// Every paper figure/table is a sweep over dozens of independent
// (scheme, prepost, msg_size, fault_seed) configurations, each a fully
// deterministic single-threaded World. The runner executes those jobs
// concurrently and returns their results **in job order**, so a table or
// JSON artifact assembled from the result vector is byte-identical no
// matter how many worker threads ran the sweep or how the OS scheduled
// them. Determinism therefore needs no coordination beyond "each job's
// world is self-contained" — which the de-globalization work guarantees
// (world-owned flight recorder, thread-local logger clocks, sharded
// live-engine registry; see §12 for the full state inventory).
//
// Thread count contract:
//   n_threads <= 0  -> hardware concurrency
//   n_threads == 1  -> jobs run inline on the calling thread, in order,
//                      exceptions propagate immediately: exactly the
//                      pre-runner serial path.
//   n_threads  > 1  -> min(n_threads, jobs) workers pull jobs from an
//                      atomic cursor; a throwing job stops the hand-out
//                      and the lowest-indexed captured exception is
//                      rethrown after the workers drain.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace mvflow::exp {

class SweepRunner {
 public:
  /// `n_threads` per the contract above; the snapshot is taken here so a
  /// runner built once keeps the same width for every sweep it runs.
  explicit SweepRunner(int n_threads = 0);

  /// Worker width this runner executes with (>= 1, env-independent).
  int threads() const noexcept { return threads_; }

  /// Resolved "use all cores" default (>= 1 even when the runtime reports
  /// zero).
  static int hardware_threads() noexcept;

  /// Execute every job and return their results in job order.
  template <typename R>
  std::vector<R> run(const std::vector<std::function<R()>>& jobs) const {
    std::vector<std::optional<R>> slots(jobs.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      tasks.push_back([&jobs, &slots, i] { slots[i].emplace(jobs[i]()); });
    }
    execute(tasks);
    std::vector<R> out;
    out.reserve(slots.size());
    for (auto& s : slots) out.push_back(std::move(*s));
    return out;
  }

  /// Side-effect-only jobs (each must confine its effects to its own
  /// world/slot — see the determinism contract).
  void run(const std::vector<std::function<void()>>& jobs) const {
    execute(jobs);
  }

 private:
  void execute(const std::vector<std::function<void()>>& tasks) const;

  int threads_ = 1;
};

/// One-shot convenience wrapper: `run_parallel(jobs, n)` ==
/// `SweepRunner(n).run(jobs)`.
template <typename R>
std::vector<R> run_parallel(const std::vector<std::function<R()>>& jobs,
                            int n_threads = 0) {
  return SweepRunner(n_threads).run<R>(jobs);
}

inline void run_parallel(const std::vector<std::function<void()>>& jobs,
                         int n_threads = 0) {
  SweepRunner(n_threads).run(jobs);
}

}  // namespace mvflow::exp
