#include "exp/run_config.hpp"

#include <cstdlib>

namespace mvflow::exp {

namespace {

std::string env_or_empty(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : std::string();
}

std::size_t env_capacity(const char* name) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s) return 0;
  return static_cast<std::size_t>(v);
}

}  // namespace

RunConfig RunConfig::from_env() {
  RunConfig cfg;
  cfg.metrics_path = env_or_empty("MVFLOW_METRICS");
  cfg.trace_path = env_or_empty("MVFLOW_TRACE");
  cfg.trace_csv_path = env_or_empty("MVFLOW_TRACE_CSV");
  cfg.trace_capacity = env_capacity("MVFLOW_TRACE_CAPACITY");
  return cfg;
}

const RunConfig& RunConfig::process() {
  // Thread-safe one-time capture (magic static): the first World or runner
  // to ask pins the snapshot for the process lifetime.
  static const RunConfig snapshot = from_env();
  return snapshot;
}

RunConfig RunConfig::quiet() const {
  RunConfig cfg = *this;
  cfg.metrics_path.clear();
  cfg.trace_path.clear();
  cfg.trace_csv_path.clear();
  return cfg;
}

}  // namespace mvflow::exp
