#include "exp/run_config.hpp"

#include <cstdlib>

namespace mvflow::exp {

namespace {

std::string env_or_empty(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : std::string();
}

std::size_t env_capacity(const char* name) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s) return 0;
  return static_cast<std::size_t>(v);
}

}  // namespace

bool RunConfig::parse_checkpoint(const std::string& request) {
  checkpoint_path.clear();
  checkpoint_events.clear();
  const std::size_t at = request.rfind('@');
  if (at == std::string::npos || at == 0 || at + 1 == request.size())
    return false;
  std::vector<std::uint64_t> events;
  const std::string list = request.substr(at + 1);
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string tok = list.substr(pos, comma - pos);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (tok.empty() || end == nullptr || *end != '\0') return false;
    events.push_back(static_cast<std::uint64_t>(v));
    pos = comma + 1;
  }
  checkpoint_path = request.substr(0, at);
  checkpoint_events = std::move(events);
  return true;
}

RunConfig RunConfig::from_env() {
  RunConfig cfg;
  cfg.metrics_path = env_or_empty("MVFLOW_METRICS");
  cfg.trace_path = env_or_empty("MVFLOW_TRACE");
  cfg.trace_csv_path = env_or_empty("MVFLOW_TRACE_CSV");
  cfg.trace_capacity = env_capacity("MVFLOW_TRACE_CAPACITY");
  cfg.prof_path = env_or_empty("MVFLOW_PROF");
  const std::string ck = env_or_empty("MVFLOW_CHECKPOINT");
  if (!ck.empty()) cfg.parse_checkpoint(ck);
  const std::string audit = env_or_empty("MVFLOW_AUDIT");
  cfg.audit = !audit.empty() && audit != "0";
  cfg.watchdog_horizon_us =
      static_cast<std::int64_t>(env_capacity("MVFLOW_WATCHDOG_US"));
  cfg.watchdog_dump_path = env_or_empty("MVFLOW_WATCHDOG_DUMP");
  cfg.watchdog_ckpt_path = env_or_empty("MVFLOW_WATCHDOG_CKPT");
  return cfg;
}

const RunConfig& RunConfig::process() {
  // Thread-safe one-time capture (magic static): the first World or runner
  // to ask pins the snapshot for the process lifetime.
  static const RunConfig snapshot = from_env();
  return snapshot;
}

RunConfig RunConfig::quiet() const {
  RunConfig cfg = *this;
  cfg.metrics_path.clear();
  cfg.trace_path.clear();
  cfg.trace_csv_path.clear();
  cfg.prof_path.clear();
  cfg.checkpoint_path.clear();
  cfg.checkpoint_events.clear();
  // The auditor and watchdog stay armed (they are checks, not exports);
  // only their file artifacts are silenced for parallel jobs.
  cfg.watchdog_dump_path.clear();
  cfg.watchdog_ckpt_path.clear();
  return cfg;
}

}  // namespace mvflow::exp
