// Experiment-run configuration (DESIGN.md §12).
//
// Everything a single simulation used to read from the environment at
// arbitrary points (MVFLOW_LOG, MVFLOW_METRICS, MVFLOW_TRACE,
// MVFLOW_TRACE_CSV, MVFLOW_TRACE_CAPACITY) is snapshotted here *once* and
// passed explicitly to each World. Two reasons:
//
//  1. Concurrency: getenv() racing against setenv() is undefined, and two
//     parallel worlds honouring $MVFLOW_METRICS would clobber one file.
//     With an explicit RunConfig the sweep runner hands every job a config
//     it controls (the parallel path hands out quiet() configs).
//  2. Reproducibility: a job's behaviour is a function of its config
//     struct, not of ambient process state that may drift mid-sweep.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mvflow::exp {

struct RunConfig {
  /// Output paths for the end-of-run exports; empty = don't export.
  std::string metrics_path;    ///< was $MVFLOW_METRICS
  std::string trace_path;      ///< was $MVFLOW_TRACE
  std::string trace_csv_path;  ///< was $MVFLOW_TRACE_CSV

  /// Flight-recorder ring size when tracing is on (was
  /// $MVFLOW_TRACE_CAPACITY; 0 falls back to the recorder default).
  std::size_t trace_capacity = 0;

  /// Checkpoint request ($MVFLOW_CHECKPOINT = "path@ev1[,ev2,...]"): write
  /// a world snapshot (DESIGN.md §13) at each listed executed-event count.
  /// One event writes exactly `checkpoint_path`; several write
  /// `<path>.<k>` each. Only honoured by worlds running a *registered*
  /// workload (mpi/workload.hpp) — an ad-hoc closure body cannot be
  /// replayed, so a snapshot of it could never restore.
  std::string checkpoint_path;
  std::vector<std::uint64_t> checkpoint_events;

  bool checkpoint_enabled() const noexcept {
    return !checkpoint_path.empty() && !checkpoint_events.empty();
  }

  /// Parse a "path@ev1[,ev2,...]" request into the two fields above.
  /// Returns false (and clears both) when the syntax is malformed.
  bool parse_checkpoint(const std::string& request);

  /// Tracing is armed when any trace export is requested.
  bool trace_enabled() const noexcept {
    return !trace_path.empty() || !trace_csv_path.empty();
  }

  /// Causal profiler export ($MVFLOW_PROF, DESIGN.md §16): arm the
  /// profiler and write the analyzed profile JSON here at world teardown.
  /// "-" writes to stdout. Empty = profiler disarmed (zero cost).
  std::string prof_path;

  bool prof_enabled() const noexcept { return !prof_path.empty(); }

  /// Invariant auditor ($MVFLOW_AUDIT = 1): run the credit-conservation /
  /// buffer-accounting / delivery checks (obs/audit.hpp, DESIGN.md §15)
  /// inline after every delivered message (serial engine) or at every
  /// shard barrier (sharded engine). Off by default — the ledgers feeding
  /// the checks are always maintained, only the checks themselves cost.
  bool audit = false;

  /// Progress watchdog ($MVFLOW_WATCHDOG_US, sim-time horizon in
  /// microseconds; 0 = off): fire when a connection holds nonzero backlog
  /// but records no credited send / ECM / retransmit for a full horizon.
  std::int64_t watchdog_horizon_us = 0;

  /// Watchdog stall artifacts: metrics snapshot dump path and optional
  /// world-checkpoint capture path ($MVFLOW_WATCHDOG_DUMP /
  /// $MVFLOW_WATCHDOG_CKPT). Empty = don't write.
  std::string watchdog_dump_path;
  std::string watchdog_ckpt_path;

  bool watchdog_enabled() const noexcept { return watchdog_horizon_us > 0; }

  /// Read the MVFLOW_* variables right now (no caching).
  static RunConfig from_env();

  /// The one-time process snapshot: captured on first call and immutable
  /// afterwards, so every serial World sees the same configuration no
  /// matter when it starts. This is the default for WorldConfig::run.
  static const RunConfig& process();

  /// Copy of this config with every export path cleared. The sweep runner
  /// gives parallel jobs quiet configs: N concurrent worlds writing one
  /// $MVFLOW_METRICS path would race, and artifacts must not depend on
  /// which job finished last.
  RunConfig quiet() const;
};

}  // namespace mvflow::exp
