// Deterministic chaos campaigns (DESIGN.md §15).
//
// A campaign is a grid of *cells*: (scheme × fault profile × scheduler ×
// serial-vs-sharded engine), each one an independent seeded World run with
// the invariant auditor and the progress watchdog armed. Cells execute on
// the exp::SweepRunner, so the assembled RESULT lines are byte-identical
// at every --jobs count — the campaign binary asserts exactly that.
//
// When a cell trips (AuditError / WatchdogError / deadlock), the campaign
// re-runs it with fault recording enabled and hands the fired-fault log to
// the minimizer, which bisects the recorded script down to the shortest
// replayable prefix and then greedily drops entries that the failure does
// not depend on. The result is a scripted-fault reproducer, typically a
// handful of events, that fails the same way with all randomness off.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flowctl/flowctl.hpp"
#include "ib/config.hpp"
#include "ib/fabric.hpp"
#include "mpi/workload.hpp"
#include "sim/scheduler.hpp"

namespace mvflow::exp::chaos {

/// One named fault regime. Profiles that error QPs on purpose (finite
/// transport retries + auto-reconnect) are serial-only: recover_pair
/// mutates both endpoints' shards, which the sharded engine forbids under
/// fault injection (World enforces it).
struct FaultProfile {
  std::string name;
  double loss = 0.0;     ///< Per-packet silent-drop probability.
  double corrupt = 0.0;  ///< Per-packet CRC-corruption probability.
  std::vector<ib::LinkFlap> flaps;
  /// < 0 = infinite (faults never escalate to QP errors). Profiles that
  /// set a finite limit must also set auto_reconnect.
  int transport_retry_limit = -1;
  bool auto_reconnect = false;
  bool serial_only = false;
};

/// One campaign cell: everything needed to build the World, fully
/// deterministic as a value (no env, no wall clock).
struct CellSpec {
  flowctl::Scheme scheme = flowctl::Scheme::user_static;
  FaultProfile profile;
  sim::SchedKind scheduler = sim::SchedKind::heap4;
  int engine_threads = 0;  ///< 0 = serial reference, > 0 = sharded.
  std::uint64_t seed = 1;
  int ranks = 3;
  mpi::WorkloadSpec workload;
  /// Test-only credit skew applied at reconnect (the deliberately injected
  /// bug the minimization acceptance test plants and must catch).
  int debug_skew_reconnect_credit = 0;
  /// Replay plan for the minimizer: appended to the cell's scripted
  /// faults. Replays zero the random probabilities so the script is the
  /// *only* fault source.
  std::vector<ib::ScriptedFault> script;

  /// "scheme/profile/sched/engine/s<seed>" — stable cell identity.
  std::string label() const;
};

/// One cell's outcome. Every field is a pure function of the CellSpec, so
/// RESULT lines compare byte-for-byte across --jobs counts.
struct CellResult {
  std::string label;
  std::uint64_t events = 0;
  std::int64_t elapsed_ns = 0;
  std::uint32_t metrics_crc = 0;
  std::size_t metrics_n = 0;
  bool violation = false;
  std::string kind;  ///< "audit" | "watchdog" | "deadlock" | "error".
  std::string what;  ///< Full diagnostic (not part of the RESULT line).
  std::vector<ib::Fabric::RecordedFault> recorded;  ///< When recording on.

  /// "RESULT cell=<label> events=... elapsed_ns=... metrics_crc=%08x
  ///  metrics_n=... violation=<0|1> kind=<k>" — the campaign protocol
  /// (mvflow_ckpt's RESULT idiom, extended with the cell identity).
  std::string result_line() const;
};

/// Run one cell: build the world (auditor + watchdog armed), run the
/// workload, classify any violation, fingerprint the metrics registry.
/// `record_faults` arms Fabric fault recording and fills `recorded`.
CellResult run_cell(const CellSpec& spec, bool record_faults = false);

/// The standard profile set: loss, corrupt, storm (both), flap, and the
/// serial-only reconnect regime (finite retries + auto_reconnect).
std::vector<FaultProfile> default_profiles();

/// Full default grid: 3 schemes × default_profiles × {heap4, calendar} ×
/// {serial, sharded}, with serial_only profiles skipped on the sharded
/// engine. Seeds are derived deterministically from `base_seed` and the
/// cell's grid position.
std::vector<CellSpec> default_campaign(std::uint64_t base_seed);

/// Execute cells on a SweepRunner with `jobs` workers; results in cell
/// order (bit-identical at every jobs count).
std::vector<CellResult> run_campaign(const std::vector<CellSpec>& cells,
                                     int jobs);

/// Failing-seed minimization outcome.
struct MinimizeOutcome {
  bool reproduced = false;  ///< Full recorded script re-trips the failure.
  std::vector<ib::ScriptedFault> script;  ///< Minimized reproducer.
  int replays = 0;          ///< Worlds run while minimizing.
  std::string kind;         ///< Violation kind of the minimized replay.
  std::string what;
};

/// Shrink a recorded fault log to a minimal scripted reproducer: verify
/// the full script re-trips the violation with randomness off, bisect to
/// the shortest failing prefix, then greedily remove entries (adjusting
/// later same-filter skip counts, since an un-dropped packet becomes a
/// survivor the remaining entries must let pass).
MinimizeOutcome minimize_failure(
    const CellSpec& spec, const std::vector<ib::Fabric::RecordedFault>& log);

}  // namespace mvflow::exp::chaos
