#include "exp/chaos.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "exp/runner.hpp"
#include "mpi/world.hpp"
#include "obs/audit.hpp"
#include "sim/watchdog.hpp"
#include "util/serial.hpp"

namespace mvflow::exp::chaos {

namespace {

/// The one workload every default cell runs: all-pairs congestion keeps
/// every connection under simultaneous credit pressure, which is where
/// conservation bugs hide.
mpi::WorkloadSpec default_workload() {
  mpi::WorkloadSpec w;
  w.name = "allpairs";
  w.params["bytes"] = 1024;
  w.params["rounds"] = 5;
  return w;
}

}  // namespace

std::string CellSpec::label() const {
  std::string s(flowctl::to_string(scheme));
  s += '/';
  s += profile.name;
  s += '/';
  s += std::string(sim::to_string(scheduler));
  s += engine_threads > 0 ? "/sharded/s" : "/serial/s";
  s += std::to_string(seed);
  return s;
}

std::string CellResult::result_line() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "RESULT cell=%s events=%" PRIu64 " elapsed_ns=%" PRId64
                " metrics_crc=%08x metrics_n=%zu violation=%d kind=%s",
                label.c_str(), events, elapsed_ns, metrics_crc, metrics_n,
                violation ? 1 : 0, kind.empty() ? "none" : kind.c_str());
  return std::string(buf);
}

CellResult run_cell(const CellSpec& spec, bool record_faults) {
  mpi::WorldConfig cfg;
  cfg.run = RunConfig{};  // explicit: no env snapshot inside sweep cells
  cfg.run.audit = true;
  // Far above any legitimate quiet period (transport backoff caps at 5 ms,
  // flaps last tens of µs) yet well inside the 30 s deadlock ceiling, so
  // the watchdog diagnoses a genuine stall long before the blunt timeout.
  cfg.run.watchdog_horizon_us = 100000;
  cfg.num_ranks = spec.ranks;
  cfg.flow.scheme = spec.scheme;
  cfg.flow.prepost = 8;  // small pool: constant credit pressure
  cfg.engine_threads = spec.engine_threads;
  cfg.scheduler = spec.scheduler;
  // Faults need the recovery protocol: a zero transport timeout disables
  // sequence NAKs and retransmits entirely (config.hpp), which would turn
  // every drop into a deadlock instead of a retransmit.
  cfg.fabric.transport_timeout = sim::microseconds(40);
  cfg.fabric.transport_retry_limit = spec.profile.transport_retry_limit;
  cfg.fabric.rnr_retry_limit = -1;
  cfg.fabric.fault.seed = spec.seed;
  cfg.fabric.fault.loss_prob = spec.profile.loss;
  cfg.fabric.fault.corrupt_prob = spec.profile.corrupt;
  cfg.fabric.fault.flaps = spec.profile.flaps;
  cfg.fabric.fault.scripted = spec.script;
  cfg.device.auto_reconnect = spec.profile.auto_reconnect;
  cfg.device.debug_skew_reconnect_credit = spec.debug_skew_reconnect_credit;

  mpi::World world(cfg);
  world.set_workload(spec.workload);
  if (record_faults) world.fabric().enable_fault_recording();

  CellResult res;
  res.label = spec.label();
  try {
    res.elapsed_ns = world.run_workload().count();
  } catch (const obs::AuditError& e) {
    res.violation = true;
    res.kind = "audit";
    res.what = e.what();
  } catch (const sim::WatchdogError& e) {
    res.violation = true;
    res.kind = "watchdog";
    res.what = e.what();
  } catch (const mpi::DeadlockError& e) {
    res.violation = true;
    res.kind = "deadlock";
    res.what = e.what();
  } catch (const std::exception& e) {
    res.violation = true;
    res.kind = "error";
    res.what = e.what();
  }
  const obs::Snapshot snap = world.metrics().snapshot();
  const std::string json = snap.to_json();
  res.metrics_crc = util::serial::crc32(json.data(), json.size());
  res.metrics_n = snap.values.size();
  res.events = static_cast<std::uint64_t>(snap.get("engine.executed", 0.0));
  if (record_faults) res.recorded = world.fabric().recorded_faults();
  return res;
}

std::vector<FaultProfile> default_profiles() {
  std::vector<FaultProfile> out;
  {
    FaultProfile p;
    p.name = "loss";
    p.loss = 0.05;
    out.push_back(std::move(p));
  }
  {
    FaultProfile p;
    p.name = "corrupt";
    p.corrupt = 0.05;
    out.push_back(std::move(p));
  }
  {
    FaultProfile p;
    p.name = "storm";
    p.loss = 0.03;
    p.corrupt = 0.03;
    out.push_back(std::move(p));
  }
  {
    FaultProfile p;
    p.name = "flap";
    // Two short outages mid-run: every packet toward/from the node
    // black-holes, the transport timer replays them after the link is back.
    p.flaps.push_back(
        {1, sim::TimePoint{sim::microseconds(8)}, sim::TimePoint{sim::microseconds(22)}});
    p.flaps.push_back(
        {2, sim::TimePoint{sim::microseconds(35)}, sim::TimePoint{sim::microseconds(55)}});
    out.push_back(std::move(p));
  }
  {
    FaultProfile p;
    p.name = "reconnect";
    p.loss = 0.05;
    p.transport_retry_limit = 2;  // drops escalate to QP errors
    p.auto_reconnect = true;
    p.serial_only = true;  // recover_pair is cross-shard (World enforces)
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<CellSpec> default_campaign(std::uint64_t base_seed) {
  const flowctl::Scheme schemes[] = {flowctl::Scheme::hardware,
                                     flowctl::Scheme::user_static,
                                     flowctl::Scheme::user_dynamic};
  const sim::SchedKind scheds[] = {sim::SchedKind::heap4,
                                   sim::SchedKind::calendar};
  const int engines[] = {0, 2};  // serial reference, sharded ×2 workers
  std::vector<CellSpec> cells;
  std::uint64_t pos = 0;
  for (const flowctl::Scheme scheme : schemes) {
    for (const FaultProfile& profile : default_profiles()) {
      for (const sim::SchedKind sched : scheds) {
        for (const int threads : engines) {
          ++pos;
          if (threads > 0 && profile.serial_only) continue;
          CellSpec c;
          c.scheme = scheme;
          c.profile = profile;
          c.scheduler = sched;
          c.engine_threads = threads;
          // Distinct per-cell streams, stable under grid reordering of the
          // runner (seed depends only on base_seed and grid position).
          c.seed = base_seed + 0x9e3779b97f4a7c15ULL * pos;
          c.workload = default_workload();
          cells.push_back(std::move(c));
        }
      }
    }
  }
  return cells;
}

std::vector<CellResult> run_campaign(const std::vector<CellSpec>& cells,
                                     int jobs) {
  std::vector<std::function<CellResult()>> tasks;
  tasks.reserve(cells.size());
  for (const CellSpec& c : cells) {
    tasks.push_back([c] { return run_cell(c); });
  }
  return SweepRunner(jobs).run<CellResult>(tasks);
}

namespace {

/// Replay cell: same world, randomness off, `script` as the only faults.
/// Flaps stay (they are part of the deterministic plan, not the log).
CellSpec replay_spec(const CellSpec& base,
                     std::vector<ib::ScriptedFault> script) {
  CellSpec s = base;
  s.profile.loss = 0.0;
  s.profile.corrupt = 0.0;
  s.script = std::move(script);
  return s;
}

bool replays_failure(const CellSpec& base,
                     const std::vector<ib::ScriptedFault>& script,
                     MinimizeOutcome& out) {
  ++out.replays;
  const CellResult r = run_cell(replay_spec(base, script));
  if (r.violation) {
    out.kind = r.kind;
    out.what = r.what;
  }
  return r.violation;
}

bool same_filter(const ib::ScriptedFault& a, const ib::ScriptedFault& b) {
  return a.src_node == b.src_node && a.dst_node == b.dst_node &&
         a.kind == b.kind;
}

/// Script with entry `i` removed. The packet entry `i` faulted now passes
/// un-faulted, so it counts as one more survivor for every later entry on
/// the same (src, dst, kind) filter — their skip ordinals shift by one.
std::vector<ib::ScriptedFault> without_entry(
    const std::vector<ib::ScriptedFault>& script, std::size_t i) {
  std::vector<ib::ScriptedFault> out;
  out.reserve(script.size() - 1);
  for (std::size_t j = 0; j < script.size(); ++j) {
    if (j == i) continue;
    ib::ScriptedFault f = script[j];
    if (j > i && same_filter(f, script[i])) ++f.skip;
    out.push_back(f);
  }
  return out;
}

}  // namespace

MinimizeOutcome minimize_failure(
    const CellSpec& spec, const std::vector<ib::Fabric::RecordedFault>& log) {
  MinimizeOutcome out;
  std::vector<ib::ScriptedFault> full;
  full.reserve(log.size());
  for (const auto& rf : log) full.push_back(rf.fault);

  if (full.empty() || !replays_failure(spec, full, out)) {
    return out;  // reproduced stays false: failure not fault-driven
  }
  out.reproduced = true;

  // Shortest failing prefix. The final `hi` was always tested failing
  // (initialised from the full script), so no re-verification is needed.
  std::size_t lo = 1, hi = full.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    std::vector<ib::ScriptedFault> prefix(full.begin(),
                                          full.begin() + static_cast<long>(mid));
    if (replays_failure(spec, prefix, out)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::vector<ib::ScriptedFault> script(full.begin(),
                                        full.begin() + static_cast<long>(hi));

  // Greedy backward removal to a fixpoint. The last entry is the trigger
  // by prefix minimality (dropping it yields the known-passing hi-1
  // prefix), so start one before it.
  bool shrunk = true;
  while (shrunk && script.size() > 1) {
    shrunk = false;
    for (std::size_t i = script.size() - 1; i-- > 0;) {
      const std::vector<ib::ScriptedFault> cand = without_entry(script, i);
      if (replays_failure(spec, cand, out)) {
        script = cand;
        shrunk = true;
      }
    }
  }

  // Refresh kind/what from the final reproducer (earlier probes may have
  // overwritten them with a passing candidate's empty outcome — probes
  // only write on violation, but make the pairing explicit).
  replays_failure(spec, script, out);
  out.script = std::move(script);
  return out;
}

}  // namespace mvflow::exp::chaos
