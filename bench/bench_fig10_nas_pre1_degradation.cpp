// Figure 10: percentage performance drop when the pre-post value goes from
// 100 to 1. Paper finding: IS/FT/SP/BT degrade at most ~2% under every
// scheme; the hardware scheme collapses on LU and MG (RNR time-out storms);
// the static scheme loses ~13% on LU and ~6% on CG; the dynamic scheme
// adapts and shows almost no degradation anywhere.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "nas/kernel.hpp"

using namespace mvflow;
using namespace mvflow::bench;

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  nas::NasParams params;
  params.iterations = static_cast<int>(opts.get_int("iters", 0));
  params.compute_ns_per_point = opts.get_double("cns", 1.0);

  std::puts("# Figure 10: NAS degradation (%) from prepost=100 to prepost=1");
  // Each (app, scheme, prepost) run is its own job: 42 independent worlds.
  const exp::SweepRunner runner = sweep_runner(opts);
  std::vector<std::function<nas::KernelResult()>> cells;
  for (auto app : nas::kAllApps) {
    for (auto scheme : kSchemes) {
      for (int prepost : {100, 1}) {
        auto cfg = base_config(scheme, prepost, 0);
        quiet_if_parallel(cfg, runner);
        cells.push_back(
            [app, cfg, params] { return nas::run_app(app, cfg, params); });
      }
    }
  }
  const auto results = runner.run<nas::KernelResult>(cells);

  util::Table t({"app", "hardware_%", "static_%", "dynamic_%"});
  std::size_t idx = 0;
  for (auto app : nas::kAllApps) {
    double drop[3];
    for (int i = 0; i < 3; ++i, idx += 2) {
      const double ms100 = sim::to_ms(results[idx].elapsed);
      const double ms1 = sim::to_ms(results[idx + 1].elapsed);
      drop[i] = 100.0 * (ms1 - ms100) / ms100;
    }
    t.add(std::string(nas::to_string(app)), drop[0], drop[1], drop[2]);
  }
  t.print(std::cout);
  std::puts("\n# Expectation (paper): most apps <= ~2%; hardware drops hard on");
  std::puts("# LU and MG (RNR retries); static drops ~13% on LU, ~6% on CG;");
  std::puts("# dynamic shows almost no degradation anywhere.");
  return 0;
}
