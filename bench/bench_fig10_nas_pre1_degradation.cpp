// Figure 10: percentage performance drop when the pre-post value goes from
// 100 to 1. Paper finding: IS/FT/SP/BT degrade at most ~2% under every
// scheme; the hardware scheme collapses on LU and MG (RNR time-out storms);
// the static scheme loses ~13% on LU and ~6% on CG; the dynamic scheme
// adapts and shows almost no degradation anywhere.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "nas/kernel.hpp"

using namespace mvflow;
using namespace mvflow::bench;

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  nas::NasParams params;
  params.iterations = static_cast<int>(opts.get_int("iters", 0));
  params.compute_ns_per_point = opts.get_double("cns", 1.0);

  std::puts("# Figure 10: NAS degradation (%) from prepost=100 to prepost=1");
  util::Table t({"app", "hardware_%", "static_%", "dynamic_%"});
  for (auto app : nas::kAllApps) {
    double drop[3];
    int i = 0;
    for (auto scheme : kSchemes) {
      const auto r100 = nas::run_app(app, base_config(scheme, 100, 0), params);
      const auto r1 = nas::run_app(app, base_config(scheme, 1, 0), params);
      drop[i++] = 100.0 * (sim::to_ms(r1.elapsed) - sim::to_ms(r100.elapsed)) /
                  sim::to_ms(r100.elapsed);
    }
    t.add(std::string(nas::to_string(app)), drop[0], drop[1], drop[2]);
  }
  t.print(std::cout);
  std::puts("\n# Expectation (paper): most apps <= ~2%; hardware drops hard on");
  std::puts("# LU and MG (RNR retries); static drops ~13% on LU, ~6% on CG;");
  std::puts("# dynamic shows almost no degradation anywhere.");
  return 0;
}
