// Robustness bench: packet-loss sweep per flow-control scheme. The paper's
// testbed assumed a lossless fabric; this sweep measures how each scheme's
// message rate degrades when the wire starts dropping packets and the RC
// reliability protocol (retransmission timers + sequence NAKs) has to earn
// its keep. Deterministic: a fixed fault seed per cell.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace mvflow;
using namespace mvflow::bench;

namespace {

struct LossCell {
  sim::Duration elapsed{0};
  mpi::WorldStats stats;
};

LossCell run_cell(mpi::WorldConfig cfg, std::size_t bytes, int window,
                  int reps) {
  mpi::World world(std::move(cfg));
  LossCell out;
  out.elapsed = world.run([&](mpi::Communicator& comm) {
    std::vector<std::byte> payload(bytes);
    std::vector<std::byte> ack(1);
    std::vector<std::byte> rx(bytes);
    for (int rep = 0; rep < reps; ++rep) {
      if (comm.rank() == 0) {
        std::vector<mpi::RequestPtr> reqs;
        reqs.reserve(static_cast<std::size_t>(window));
        for (int i = 0; i < window; ++i)
          reqs.push_back(comm.isend(payload, 1, 0));
        comm.wait_all(reqs);
        comm.recv(ack, 1, 1);
      } else {
        std::vector<mpi::RequestPtr> reqs;
        reqs.reserve(static_cast<std::size_t>(window));
        for (int i = 0; i < window; ++i)
          reqs.push_back(comm.irecv(rx, 0, 0));
        comm.wait_all(reqs);
        comm.send(ack, 0, 1);
      }
    }
  });
  out.stats = world.collect_stats();
  return out;
}

constexpr double kLossRates[] = {0.0, 0.001, 0.005, 0.01, 0.02, 0.05};

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const int window = static_cast<int>(opts.get_int("window", 64));
  const int prepost = static_cast<int>(opts.get_int("prepost", 100));
  const int reps = static_cast<int>(opts.get_int("reps", 10));
  const std::size_t bytes = static_cast<std::size_t>(opts.get_int("bytes", 1024));
  const exp::SweepRunner runner = sweep_runner(opts);

  std::printf("# Loss sweep: %zu-byte non-blocking bandwidth vs packet-loss "
              "rate, window=%d, prepost=%d, transport timer 50 us\n",
              bytes, window, prepost);
  // Every (scheme, loss) cell carries its fault seed in its own config, so
  // the sweep parallelizes with bit-identical drop/retransmit counts.
  std::vector<std::function<LossCell()>> cells;
  for (const auto scheme : kSchemes) {
    for (const double loss : kLossRates) {
      mpi::WorldConfig cfg = base_config(scheme, prepost);
      cfg.fabric.transport_timeout = sim::microseconds(50);
      cfg.fabric.transport_retry_limit = -1;
      cfg.fabric.fault.loss_prob = loss;
      cfg.fabric.fault.seed = 0xb10cf001;
      quiet_if_parallel(cfg, runner);
      cells.push_back(
          [cfg, bytes, window, reps] { return run_cell(cfg, bytes, window, reps); });
    }
  }
  const auto results = runner.run<LossCell>(cells);

  util::Table t({"scheme", "loss_pct", "Mmsg/s", "lost_pkts", "retx_msgs",
                 "seq_naks", "timer_retries"});
  std::size_t i = 0;
  for (const auto scheme : kSchemes) {
    for (const double loss : kLossRates) {
      const LossCell& r = results[i++];
      std::uint64_t seq_naks = 0, timer_retries = 0;
      for (const auto& c : r.stats.connections) {
        seq_naks += c.qp.seq_naks_sent;
        timer_retries += c.qp.transport_retries;
      }
      t.add(std::string(flowctl::to_string(scheme)), loss * 100.0,
            static_cast<double>(window) * reps / sim::to_s(r.elapsed) / 1e6,
            r.stats.fabric.lost_packets, r.stats.total_retransmitted_messages(),
            seq_naks, timer_retries);
    }
  }
  t.print(std::cout);
  std::puts("\n# Expectation: at 0% loss every scheme matches its lossless");
  std::puts("# figure (the fault machinery is inert). As loss grows, NAK-");
  std::puts("# driven recovery keeps the in-order connection moving; cells");
  std::puts("# where timer_retries dominates seq_naks mark losses the");
  std::puts("# responder could not observe (tail packets, lost ACKs), each");
  std::puts("# costing a full timeout stall.");
  return 0;
}
