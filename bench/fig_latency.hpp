// Shared driver for Figure 2: the small-message ping-pong latency sweep.
// Separated from the bench main so the golden-determinism test can hash the
// exact table the bench binary prints.
#pragma once

#include <span>
#include <vector>

#include "bench_common.hpp"

namespace mvflow::bench {

inline double pingpong_us(flowctl::Scheme scheme, std::size_t bytes,
                          int iters) {
  mpi::World world(base_config(scheme, /*prepost=*/100));
  const auto elapsed = world.run([&](mpi::Communicator& comm) {
    std::vector<std::byte> buf(bytes == 0 ? 1 : bytes);
    const auto span_all = std::span<std::byte>(buf.data(), bytes);
    for (int i = 0; i < iters; ++i) {
      if (comm.rank() == 0) {
        comm.send(span_all, 1, 0);
        comm.recv(span_all, 1, 0);
      } else {
        comm.recv(span_all, 0, 0);
        comm.send(span_all, 0, 0);
      }
    }
  });
  return sim::to_us(elapsed) / (2.0 * iters);
}

/// One-way latency (us) for the three schemes across the paper's sizes.
inline util::Table build_fig2_table(int iters, BenchJson* json = nullptr) {
  util::Table t({"size_bytes", "hardware_us", "static_us", "dynamic_us"});
  for (std::size_t bytes : {4u, 16u, 64u, 256u, 512u, 1024u, 1984u, 4096u}) {
    std::vector<double> row;
    for (auto scheme : kSchemes) row.push_back(pingpong_us(scheme, bytes, iters));
    t.add(bytes, row[0], row[1], row[2]);
    if (json) {
      json->add_point({{"size_bytes", static_cast<double>(bytes)},
                       {"hardware_us", row[0]},
                       {"static_us", row[1]},
                       {"dynamic_us", row[2]}});
    }
  }
  return t;
}

}  // namespace mvflow::bench
