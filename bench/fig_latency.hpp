// Shared driver for Figure 2: the small-message ping-pong latency sweep.
// Separated from the bench main so the golden-determinism test can hash the
// exact table the bench binary prints.
#pragma once

#include <span>
#include <vector>

#include "bench_common.hpp"

namespace mvflow::bench {

inline double pingpong_us(mpi::WorldConfig cfg, std::size_t bytes, int iters) {
  mpi::World world(std::move(cfg));
  const auto elapsed = world.run([&](mpi::Communicator& comm) {
    std::vector<std::byte> buf(bytes == 0 ? 1 : bytes);
    const auto span_all = std::span<std::byte>(buf.data(), bytes);
    for (int i = 0; i < iters; ++i) {
      if (comm.rank() == 0) {
        comm.send(span_all, 1, 0);
        comm.recv(span_all, 1, 0);
      } else {
        comm.recv(span_all, 0, 0);
        comm.send(span_all, 0, 0);
      }
    }
  });
  return sim::to_us(elapsed) / (2.0 * iters);
}

inline double pingpong_us(flowctl::Scheme scheme, std::size_t bytes,
                          int iters) {
  return pingpong_us(base_config(scheme, /*prepost=*/100), bytes, iters);
}

inline constexpr std::size_t kFig2Sizes[] = {4,   16,   64,   256,
                                             512, 1024, 1984, 4096};

/// One-way latency (us) for the three schemes across the paper's sizes.
/// Each (size, scheme) cell is one deterministic World, swept on the
/// parallel runner (`jobs` workers; 1 = the pre-runner serial loop) with
/// results gathered in job order — the table is bit-identical for any
/// `jobs` value.
inline util::Table build_fig2_table(int iters, BenchJson* json = nullptr,
                                    int jobs = 1, EngineMode mode = {}) {
  const exp::SweepRunner runner(jobs);
  std::vector<std::function<double()>> cells;
  for (const std::size_t bytes : kFig2Sizes) {
    for (const auto scheme : kSchemes) {
      mpi::WorldConfig cfg = base_config(scheme, /*prepost=*/100);
      mode.apply(cfg);
      quiet_if_parallel(cfg, runner);
      cells.push_back([cfg, bytes, iters] {
        return pingpong_us(cfg, bytes, iters);
      });
    }
  }
  const std::vector<double> us = runner.run<double>(cells);

  util::Table t({"size_bytes", "hardware_us", "static_us", "dynamic_us"});
  std::size_t i = 0;
  for (const std::size_t bytes : kFig2Sizes) {
    const double h = us[i], s = us[i + 1], d = us[i + 2];
    i += 3;
    t.add(bytes, h, s, d);
    if (json) {
      json->add_point({{"size_bytes", static_cast<double>(bytes)},
                       {"hardware_us", h},
                       {"static_us", s},
                       {"dynamic_us", d}});
    }
  }
  return t;
}

}  // namespace mvflow::bench
