// Ablation A2: linear vs exponential growth for the dynamic scheme
// (paper §4.3 proposes both; the implementation uses linear).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "nas/kernel.hpp"

using namespace mvflow;
using namespace mvflow::bench;

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  nas::NasParams params;
  params.iterations = static_cast<int>(opts.get_int("iters", 0));
  params.compute_ns_per_point = opts.get_double("cns", 1.0);

  std::puts("# Ablation A2: dynamic-scheme growth policy on LU (start=1)");
  const exp::SweepRunner runner = sweep_runner(opts);
  const int kSteps[] = {1, 2, 4, 8};
  std::vector<std::function<nas::KernelResult()>> cells;
  for (int step : kSteps) {
    auto cfg = base_config(flowctl::Scheme::user_dynamic, 1, 0);
    cfg.flow.growth_step = step;
    quiet_if_parallel(cfg, runner);
    cells.push_back(
        [cfg, params] { return nas::run_app(nas::App::lu, cfg, params); });
  }
  {
    auto cfg = base_config(flowctl::Scheme::user_dynamic, 1, 0);
    cfg.flow.exponential_growth = true;
    quiet_if_parallel(cfg, runner);
    cells.push_back(
        [cfg, params] { return nas::run_app(nas::App::lu, cfg, params); });
  }
  const auto results = runner.run<nas::KernelResult>(cells);

  util::Table t({"policy", "step", "runtime_ms", "max_posted", "growth_events"});
  std::size_t idx = 0;
  for (int step : kSteps) {
    const auto& r = results[idx++];
    std::uint64_t growth = 0;
    for (const auto& c : r.stats.connections) growth += c.flow.growth_events;
    t.add("linear", step, sim::to_ms(r.elapsed), r.stats.max_posted_buffers(),
          growth);
  }
  {
    const auto& r = results[idx];
    std::uint64_t growth = 0;
    for (const auto& c : r.stats.connections) growth += c.flow.growth_events;
    t.add("exponential", 0, sim::to_ms(r.elapsed), r.stats.max_posted_buffers(),
          growth);
  }
  t.print(std::cout);
  std::puts("\n# Expectation: larger steps adapt faster (fewer growth events)");
  std::puts("# at the cost of over-allocating buffers; exponential converges");
  std::puts("# in the fewest events but overshoots the most.");
  return 0;
}
