// Ablation A3: RNR retry-timer sweep for the hardware scheme. The paper's
// hardware scheme leaves pacing entirely to the RC end-to-end flow control,
// whose only tuning knob (fixed at init time) is the RNR timer.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace mvflow;
using namespace mvflow::bench;

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const int window = static_cast<int>(opts.get_int("window", 100));
  const int prepost = static_cast<int>(opts.get_int("prepost", 4));

  std::printf("# Ablation A3: RNR timer sweep, hardware scheme, 4-byte "
              "non-blocking bandwidth, window=%d, prepost=%d\n", window, prepost);
  const exp::SweepRunner runner = sweep_runner(opts);
  const int kTimersUs[] = {5, 10, 20, 40, 80, 160, 320};
  std::vector<std::function<BwResult()>> cells;
  for (int us : kTimersUs) {
    mpi::WorldConfig cfg = base_config(flowctl::Scheme::hardware, prepost);
    cfg.fabric.rnr_timeout = sim::microseconds(us);
    quiet_if_parallel(cfg, runner);
    cells.push_back([cfg, window] {
      return run_bandwidth(cfg, /*msg_bytes=*/4, window, /*blocking=*/false);
    });
  }
  const auto results = runner.run<BwResult>(cells);

  util::Table t({"rnr_timer_us", "Mmsg/s", "rnr_naks", "retransmitted"});
  std::size_t idx = 0;
  for (int us : kTimersUs) {
    const auto& r = results[idx++];
    t.add(us, r.million_msgs_per_s, r.stats.total_rnr_naks(),
          r.stats.total_retransmitted_messages());
  }
  t.print(std::cout);
  std::puts("\n# Expectation: throughput falls as the timer grows (each miss");
  std::puts("# stalls the whole in-order connection for the full timeout);");
  std::puts("# IB fixes this parameter at connection setup, which is exactly");
  std::puts("# the inflexibility the paper holds against the hardware scheme.");
  return 0;
}
