// Ablation A3: RNR retry-timer sweep for the hardware scheme. The paper's
// hardware scheme leaves pacing entirely to the RC end-to-end flow control,
// whose only tuning knob (fixed at init time) is the RNR timer.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace mvflow;
using namespace mvflow::bench;

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const int window = static_cast<int>(opts.get_int("window", 100));
  const int prepost = static_cast<int>(opts.get_int("prepost", 4));

  std::printf("# Ablation A3: RNR timer sweep, hardware scheme, 4-byte "
              "non-blocking bandwidth, window=%d, prepost=%d\n", window, prepost);
  util::Table t({"rnr_timer_us", "Mmsg/s", "rnr_naks", "retransmitted"});
  for (int us : {5, 10, 20, 40, 80, 160, 320}) {
    mpi::WorldConfig cfg = base_config(flowctl::Scheme::hardware, prepost);
    cfg.fabric.rnr_timeout = sim::microseconds(us);
    mpi::World world(cfg);
    const auto elapsed = world.run([&](mpi::Communicator& comm) {
      std::vector<std::byte> payload(4);
      std::vector<std::byte> ack(1);
      std::vector<std::byte> rx(4);
      for (int rep = 0; rep < 20; ++rep) {
        if (comm.rank() == 0) {
          std::vector<mpi::RequestPtr> reqs;
          for (int i = 0; i < window; ++i)
            reqs.push_back(comm.isend(payload, 1, 0));
          comm.wait_all(reqs);
          comm.recv(ack, 1, 1);
        } else {
          std::vector<mpi::RequestPtr> reqs;
          for (int i = 0; i < window; ++i)
            reqs.push_back(comm.irecv(rx, 0, 0));
          comm.wait_all(reqs);
          comm.send(ack, 0, 1);
        }
      }
    });
    const auto stats = world.collect_stats();
    t.add(us, static_cast<double>(window) * 20 / sim::to_s(elapsed) / 1e6,
          stats.total_rnr_naks(), stats.total_retransmitted_messages());
  }
  t.print(std::cout);
  std::puts("\n# Expectation: throughput falls as the timer grows (each miss");
  std::puts("# stalls the whole in-order connection for the full timeout);");
  std::puts("# IB fixes this parameter at connection setup, which is exactly");
  std::puts("# the inflexibility the paper holds against the hardware scheme.");
  return 0;
}
