// Figure 7: 32 KB bandwidth, 10 pre-posted buffers, blocking version.
#include "bw_figure.hpp"
int main(int argc, char** argv) {
  return mvflow::bench::run_bw_figure(
      "Figure 7: MPI bandwidth, 32K-byte messages, prepost=10, blocking", "fig7_bw_32k_blocking",
      32 * 1024, 10, true,
      "large messages go through Rendezvous whose handshake keeps the "
      "pattern symmetric: all three schemes perform well despite few buffers", argc, argv);
}
