// Table 1: explicit credit messages under the user-level static scheme
// (prepost=100, ECM threshold 5). Paper finding: LU's asymmetric wavefront
// traffic makes ECMs ~18% of its total messages; the other applications
// send almost none because piggybacking suffices.
//
// All counters come from each run's MetricsRegistry snapshot — the per-app
// snapshot is also persisted as METRICS_tab1_<app>.json, giving the full
// per-connection breakdown the table aggregates away.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "nas/kernel.hpp"

using namespace mvflow;
using namespace mvflow::bench;

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  nas::NasParams params;
  params.iterations = static_cast<int>(opts.get_int("iters", 0));
  params.compute_ns_per_point = opts.get_double("cns", 1.0);
  const int threshold = static_cast<int>(opts.get_int("threshold", 5));

  std::printf("# Table 1: explicit credit messages, static scheme, "
              "prepost=100, threshold=%d\n", threshold);
  // One job per app; snapshots come back in app order and are persisted
  // from the main thread so METRICS_tab1_*.json writes never race.
  const exp::SweepRunner runner = sweep_runner(opts);
  std::vector<std::function<nas::KernelResult()>> cells;
  for (auto app : nas::kAllApps) {
    auto cfg = base_config(flowctl::Scheme::user_static, 100, 0);
    cfg.flow.ecm_threshold = threshold;
    quiet_if_parallel(cfg, runner);
    cells.push_back([app, cfg, params] { return nas::run_app(app, cfg, params); });
  }
  const auto results = runner.run<nas::KernelResult>(cells);

  util::Table t({"app", "ecm_msgs", "total_msgs", "ecm_%", "avg_ecm_per_conn"});
  std::size_t idx = 0;
  for (auto app : nas::kAllApps) {
    const auto& r = results[idx++];
    const obs::Snapshot& m = r.metrics;
    write_metrics("tab1_" + std::string(nas::to_string(app)), m);

    const double ecm = m.sum_suffix(".flow.ecm_sent");
    const double total = m.sum_suffix(".flow.total_messages");
    // Connections that actually carried traffic.
    std::size_t active = 0;
    for (const auto& [name, v] : m.values) {
      if (v > 0 && name.size() > 20 &&
          name.compare(name.size() - 20, 20, ".flow.total_messages") == 0) {
        ++active;
      }
    }
    t.add(std::string(nas::to_string(app)), ecm, total, 100.0 * ecm / total,
          active ? ecm / static_cast<double>(active) : 0.0);
  }
  t.print(std::cout);
  std::puts("\n# Expectation (paper): LU ~18% ECMs; all other apps ~0%.");
  return 0;
}
