// Figure 6: 4-byte bandwidth, only 10 pre-posted buffers, non-blocking.
#include "bw_figure.hpp"
int main(int argc, char** argv) {
  return mvflow::bench::run_bw_figure(
      "Figure 6: MPI bandwidth, 4-byte messages, prepost=10, non-blocking", "fig6_bw_pre10_nonblocking", 4,
      10, false,
      "same ordering as Figure 5 (dynamic > hardware > static beyond the "
      "credit limit); user-level schemes do better in the blocking version", argc, argv);
}
