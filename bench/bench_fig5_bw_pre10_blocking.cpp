// Figure 5: 4-byte bandwidth, only 10 pre-posted buffers, blocking version.
#include "bw_figure.hpp"
int main(int argc, char** argv) {
  return mvflow::bench::run_bw_figure(
      "Figure 5: MPI bandwidth, 4-byte messages, prepost=10, blocking", "fig5_bw_pre10_blocking", 4, 10,
      true,
      "once window > 10 the dynamic scheme adapts and wins; the static scheme "
      "stalls on credits and is worst; hardware lands in between", argc, argv);
}
