// Deterministic chaos campaign driver (DESIGN.md §15).
//
//   bench_chaos_campaign [--seeds=N] [--base-seed=S] [--jobs=N]
//   bench_chaos_campaign --inject-bug [--base-seed=S]
//
// Default mode sweeps the full (scheme × fault profile × scheduler ×
// serial-vs-sharded) grid with the invariant auditor and the progress
// watchdog armed, once per seed. The whole campaign runs twice — -j1 and
// -jN — and the two assembled RESULT-line transcripts must match byte for
// byte; any cell violation or transcript divergence is a non-zero exit.
//
//   RESULT cell=<label> events=<n> elapsed_ns=<n> metrics_crc=<hex8>
//          metrics_n=<n> violation=<0|1> kind=<none|audit|watchdog|...>
//
// --inject-bug plants a deliberate credit-conservation bug (a reconnect
// credit skew behind DeviceConfig::debug_skew_reconnect_credit), runs a
// lossy cell with fault recording on, and requires the auditor to catch it
// AND the minimizer to shrink the recorded fault log to a <= 10-event
// scripted reproducer. Exit codes: 0 ok, 4 violations, 5 transcript
// mismatch, 6 inject-bug pipeline failure.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/chaos.hpp"

using namespace mvflow;

namespace {

/// Host-time cost of the auditor-disabled vs auditor-armed hot path on a
/// fault-free bandwidth run: the perf gate asserts the disabled path stays
/// within the existing throughput envelope, and this ratio documents what
/// arming it costs (serial worlds audit inline per delivered message).
double audit_wall_seconds(bool audit) {
  mpi::WorldConfig cfg = bench::base_config(flowctl::Scheme::user_static, 64);
  cfg.run = exp::RunConfig{};
  cfg.run.audit = audit;
  bench::WallTimer t;
  (void)bench::run_bandwidth(cfg, 4096, 64, /*blocking=*/false, 40);
  return t.seconds();
}

int run_inject_bug(std::uint64_t base_seed) {
  exp::chaos::CellSpec spec;
  spec.scheme = flowctl::Scheme::user_static;
  spec.profile.name = "inject-bug";
  spec.profile.loss = 0.35;
  spec.profile.transport_retry_limit = 1;  // drops escalate to QP errors
  spec.profile.auto_reconnect = true;
  spec.profile.serial_only = true;
  spec.seed = base_seed;
  spec.ranks = 2;
  spec.workload.name = "pingpong";
  spec.workload.params["bytes"] = 2048;
  spec.workload.params["iters"] = 60;
  spec.debug_skew_reconnect_credit = 1;  // the planted bug

  const exp::chaos::CellResult r = exp::chaos::run_cell(spec, true);
  std::printf("%s recorded=%zu\n", r.result_line().c_str(), r.recorded.size());
  if (!r.violation || r.kind != "audit") {
    std::fprintf(stderr,
                 "inject-bug: auditor did not catch the planted skew "
                 "(violation=%d kind=%s)\n%s\n",
                 r.violation ? 1 : 0, r.kind.c_str(), r.what.c_str());
    return 6;
  }
  std::fprintf(stderr, "caught: %s\n", r.what.c_str());

  const exp::chaos::MinimizeOutcome m =
      exp::chaos::minimize_failure(spec, r.recorded);
  std::printf("RESULT inject_bug=1 recorded=%zu minimized=%zu replays=%d "
              "reproduced=%d kind=%s\n",
              r.recorded.size(), m.script.size(), m.replays,
              m.reproduced ? 1 : 0, m.kind.c_str());
  if (!m.reproduced) {
    std::fprintf(stderr, "inject-bug: recorded script did not reproduce\n");
    return 6;
  }
  if (m.script.size() > 10) {
    std::fprintf(stderr,
                 "inject-bug: minimized script has %zu events (want <= 10)\n",
                 m.script.size());
    return 6;
  }
  for (const auto& f : m.script) {
    std::printf("  fault src=%d dst=%d kind=%d skip=%llu %s\n", f.src_node,
                f.dst_node, f.kind,
                static_cast<unsigned long long>(f.skip),
                f.corrupt ? "corrupt" : "drop");
  }
  std::fprintf(stderr, "minimized: %s\n", m.what.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const std::uint64_t base_seed =
      static_cast<std::uint64_t>(opts.get_int("base-seed", 1));
  if (opts.get_bool("inject-bug", false)) return run_inject_bug(base_seed);

  const int seeds = static_cast<int>(opts.get_int("seeds", 1));
  const int jobs = bench::sweep_jobs(opts);

  std::vector<exp::chaos::CellSpec> cells;
  for (int s = 0; s < seeds; ++s) {
    auto grid = exp::chaos::default_campaign(base_seed + static_cast<std::uint64_t>(s));
    cells.insert(cells.end(), grid.begin(), grid.end());
  }

  bench::WallTimer wall;
  const auto serial = exp::chaos::run_campaign(cells, 1);
  const auto wide = exp::chaos::run_campaign(cells, jobs == 1 ? 4 : jobs);

  int violations = 0;
  bool identical = true;
  bench::BenchJson json("chaos_campaign");
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const std::string line = serial[i].result_line();
    std::printf("%s\n", line.c_str());
    if (line != wide[i].result_line()) {
      identical = false;
      std::fprintf(stderr, "MISMATCH -j1 vs -jN at cell %s:\n  %s\n  %s\n",
                   serial[i].label.c_str(), line.c_str(),
                   wide[i].result_line().c_str());
    }
    if (serial[i].violation) {
      ++violations;
      std::fprintf(stderr, "VIOLATION %s [%s]\n%s\n", serial[i].label.c_str(),
                   serial[i].kind.c_str(), serial[i].what.c_str());
    }
    json.add_point({{"events", static_cast<double>(serial[i].events)},
                    {"elapsed_ns", static_cast<double>(serial[i].elapsed_ns)},
                    {"violation", serial[i].violation ? 1.0 : 0.0}});
  }

  const double off_s = audit_wall_seconds(false);
  const double on_s = audit_wall_seconds(true);
  json.add_meta("cells", static_cast<double>(cells.size()));
  json.add_meta("violations", static_cast<double>(violations));
  json.add_meta("identical", identical ? 1.0 : 0.0);
  json.add_meta("audit_off_wall_s", off_s);
  json.add_meta("audit_on_wall_s", on_s);
  json.add_meta("audit_overhead_ratio", off_s > 0 ? on_s / off_s : 0.0);
  json.write(wall.seconds());

  std::printf("campaign: %zu cells, %d violations, transcripts %s, "
              "audit overhead x%.2f\n",
              cells.size(), violations, identical ? "identical" : "DIVERGED",
              off_s > 0 ? on_s / off_s : 0.0);
  if (violations > 0) return 4;
  if (!identical) return 5;
  return 0;
}
