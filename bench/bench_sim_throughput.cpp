// Self-benchmark of the simulation hot path: wall-clock events/sec and
// modeled MB/s while driving a fig3-style bandwidth window sweep over the
// paper's 8-node testbed topology. The traffic runs at the ib (verbs) layer
// — a ring of RC connections pushing windows of messages — so the
// measurement isolates the packet-hop event pipeline (schedule, heap,
// dispatch, packet payload handling) that bounds every other experiment in
// EXPERIMENTS.md. Results are written to BENCH_sim_throughput.json so the
// perf trajectory accumulates in CI.
#include <cstdio>
#include <iostream>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "ib/cq.hpp"
#include "ib/fabric.hpp"
#include "ib/hca.hpp"
#include "obs/recorder.hpp"

using namespace mvflow;
using namespace mvflow::bench;

namespace {

constexpr int kNodes = 8;

struct Sweep {
  const char* label;
  std::size_t bytes;
  int window;
  int reps;
  bool transport_timers;  ///< Arm/cancel the retx timer per message.
};

// Small eager-sized, MTU-boundary, and multi-packet traffic; one config
// additionally runs the transport ACK-timeout machinery so the
// schedule-then-cancel path (timers that almost never fire) is measured too.
const Sweep kSweeps[] = {
    {"4B_w100", 4, 100, 400, false},
    {"4B_w100_tt", 4, 100, 400, true},
    {"2KB_w50", 2048, 50, 400, false},
    {"16KB_w10", 16 * 1024, 10, 400, false},
};

struct RingResult {
  double wall_s = 0;   ///< wall-clock inside engine.run() — the event pipeline
  double drive_s = 0;  ///< whole loop incl. posting WQEs and draining CQs
  double sim_s = 0;
  std::uint64_t events = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t completions = 0;
  sim::EnginePerfStats perf;
};

/// All 8 nodes push `window` messages around the ring per repetition; the
/// queue drains fully between repetitions (recvs are pre-posted, so the
/// happy path never takes an RNR detour).
RingResult run_ring(const Sweep& s, int reps) {
  // World always binds a (possibly disabled) recorder on sim threads, so
  // bind one here too: the instrumentation fast path under measurement is
  // then the production one (TLS load + predicted branch), not the
  // unbound-thread fallback lookup.
  obs::FlightRecorder rec;
  obs::RecorderBinding rec_binding(&rec);
  sim::Engine engine;
  ib::FabricConfig cfg;
  if (s.transport_timers) cfg.transport_timeout = sim::microseconds(500);
  ib::Fabric fabric(engine, cfg, kNodes);

  std::vector<std::vector<std::byte>> txbuf(kNodes), rxbuf(kNodes);
  std::vector<ib::MemoryRegionHandle> txmr(kNodes), rxmr(kNodes);
  std::vector<std::shared_ptr<ib::CompletionQueue>> cq(kNodes);
  std::vector<std::shared_ptr<ib::QueuePair>> tx(kNodes), rx(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    txbuf[i].resize(s.bytes);
    rxbuf[i].resize(s.bytes);
    txmr[i] = fabric.hca(i).register_memory(txbuf[i], ib::Access::local_read);
    rxmr[i] = fabric.hca(i).register_memory(rxbuf[i], ib::Access::local_write);
    cq[i] = fabric.hca(i).create_cq();
    tx[i] = fabric.hca(i).create_qp(cq[i], cq[i]);
    rx[i] = fabric.hca(i).create_qp(cq[i], cq[i]);
  }
  for (int i = 0; i < kNodes; ++i)
    ib::Fabric::connect(*tx[i], *rx[(i + 1) % kNodes]);

  RingResult out;
  WallTimer drive;
  // Events/sec is measured inside engine.run() only: posting WQEs and
  // draining CQs is host-side driver work, not the event pipeline this
  // bench tracks. The full loop is still reported as drive_s.
  for (int rep = 0; rep < reps; ++rep) {
    for (int i = 0; i < kNodes; ++i) {
      ib::RecvWr rwr;
      rwr.local_addr = rxbuf[i].data();
      rwr.length = static_cast<std::uint32_t>(s.bytes);
      rwr.lkey = rxmr[i].lkey;
      for (int w = 0; w < s.window; ++w) rx[i]->post_recv(rwr);
    }
    for (int i = 0; i < kNodes; ++i) {
      ib::SendWr swr;
      swr.local_addr = txbuf[i].data();
      swr.length = static_cast<std::uint32_t>(s.bytes);
      swr.lkey = txmr[i].lkey;
      for (int w = 0; w < s.window; ++w) tx[i]->post_send(swr);
    }
    WallTimer run_timer;
    engine.run();
    out.wall_s += run_timer.seconds();
    for (int i = 0; i < kNodes; ++i)
      while (cq[i]->poll()) ++out.completions;
  }
  out.drive_s = drive.seconds();
  out.sim_s = sim::to_s(engine.now());
  out.events = engine.executed_events();
  out.perf = engine.perf_stats();
  out.wire_bytes = fabric.stats().wire_bytes;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  // --scale multiplies repetitions for longer, steadier measurements;
  // --passes sets how many timed passes each config gets (best one is
  // reported, rejecting scheduler noise on shared machines).
  const int scale = static_cast<int>(opts.get_int("scale", 1));
  const int passes = static_cast<int>(opts.get_int("passes", 3));

  std::puts(
      "# Simulator self-benchmark: events/sec, 8-node ring bandwidth sweep");
  util::Table t({"traffic", "events", "wall_ms", "Mevents/s", "modeled_MB/s",
                 "sim_ms", "pool_hit_%"});
  WallTimer wall;
  BenchJson json("sim_throughput");
  double total_events = 0, total_wall = 0;
  for (const Sweep& s : kSweeps) {
    RingResult r = run_ring(s, s.reps * scale);
    for (int p = 1; p < passes; ++p) {
      RingResult again = run_ring(s, s.reps * scale);
      if (again.wall_s < r.wall_s) r = again;
    }
    const double mev_s = static_cast<double>(r.events) / r.wall_s / 1e6;
    const double mb_s = static_cast<double>(r.wire_bytes) / r.wall_s / 1e6;
    const double hit = 100.0 * r.perf.pool_hit_rate();
    t.add(s.label, static_cast<std::size_t>(r.events), r.wall_s * 1e3, mev_s,
          mb_s, r.sim_s * 1e3, hit);
    json.add_point({{"bytes", static_cast<double>(s.bytes)},
                    {"window", static_cast<double>(s.window)},
                    {"transport_timers", s.transport_timers ? 1.0 : 0.0},
                    {"events", static_cast<double>(r.events)},
                    {"wall_seconds", r.wall_s},
                    {"drive_seconds", r.drive_s},
                    {"mevents_per_s", mev_s},
                    {"modeled_MB_per_s", mb_s},
                    {"sim_seconds", r.sim_s},
                    {"completions", static_cast<double>(r.completions)},
                    {"pool_hit_rate", r.perf.pool_hit_rate()},
                    {"peak_heap_depth",
                     static_cast<double>(r.perf.peak_heap_depth)}});
    total_events += static_cast<double>(r.events);
    total_wall += r.wall_s;
  }
  t.print(std::cout);
  json.add_meta("total_mevents_per_s", total_events / total_wall / 1e6);
  json.write(wall.seconds());
  std::printf("\n# aggregate: %.2f Mevents/s\n",
              total_events / total_wall / 1e6);
  return 0;
}
