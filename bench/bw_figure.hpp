// Shared driver for Figures 3-8: the bandwidth window sweep.
#pragma once

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

namespace mvflow::bench {

inline constexpr int kBwWindows[] = {1, 2, 4, 8, 10, 16, 25, 50, 75, 100};

/// Build the bandwidth table for one figure: msgs/s (and MB/s for large
/// payloads) for the three schemes as the window size sweeps past the
/// pre-post depth. Separated from printing so the golden-determinism test
/// can hash the exact table the bench binary prints. When `json` is given,
/// every row is also recorded as a figure point.
///
/// Each (window, scheme) cell is an independent deterministic World, so
/// the sweep runs on exp::SweepRunner with `jobs` workers; results come
/// back in job order and the table is bit-identical for every `jobs`
/// value (1 = the pre-runner serial loop).
inline util::Table build_bw_table(std::size_t msg_bytes, int prepost,
                                  bool blocking, BenchJson* json = nullptr,
                                  int jobs = 1, EngineMode mode = {}) {
  const exp::SweepRunner runner(jobs);
  std::vector<std::function<BwResult()>> cells;
  for (const int window : kBwWindows) {
    for (const auto scheme : kSchemes) {
      mpi::WorldConfig cfg = base_config(scheme, prepost);
      mode.apply(cfg);
      quiet_if_parallel(cfg, runner);
      cells.push_back([cfg, msg_bytes, window, blocking] {
        return run_bandwidth(cfg, msg_bytes, window, blocking);
      });
    }
  }
  const std::vector<BwResult> results = runner.run<BwResult>(cells);

  util::Table t({"window", "hardware_Mmsg/s", "static_Mmsg/s", "dynamic_Mmsg/s",
                 "hardware_MB/s", "static_MB/s", "dynamic_MB/s"});
  std::size_t i = 0;
  for (const int window : kBwWindows) {
    double mm[3], mb[3];
    for (int s = 0; s < 3; ++s, ++i) {
      mm[s] = results[i].million_msgs_per_s;
      mb[s] = results[i].mbytes_per_s;
    }
    t.add(window, mm[0], mm[1], mm[2], mb[0], mb[1], mb[2]);
    if (json) {
      json->add_point({{"window", static_cast<double>(window)},
                       {"hardware_Mmsg_s", mm[0]},
                       {"static_Mmsg_s", mm[1]},
                       {"dynamic_Mmsg_s", mm[2]},
                       {"hardware_MB_s", mb[0]},
                       {"static_MB_s", mb[1]},
                       {"dynamic_MB_s", mb[2]}});
    }
  }
  return t;
}

/// Print one bandwidth figure and write `BENCH_<json_name>.json` beside it.
inline int run_bw_figure(const char* title, const char* json_name,
                         std::size_t msg_bytes, int prepost, bool blocking,
                         const char* expectation, int argc = 0,
                         const char* const* argv = nullptr) {
  const util::Options opts(argc, argv);
  const exp::SweepRunner runner = sweep_runner(opts);
  std::printf("# %s\n", title);
  std::printf("# msg=%zuB prepost=%d %s\n", msg_bytes, prepost,
              blocking ? "blocking (MPI_Send/MPI_Recv)"
                       : "non-blocking (MPI_Isend/MPI_Irecv)");
  WallTimer wall;
  BenchJson json(json_name);
  const util::Table t =
      build_bw_table(msg_bytes, prepost, blocking, &json, runner.threads());
  t.print(std::cout);
  json.add_meta("jobs", runner.threads());
  json.write(wall.seconds());
  std::printf("\n# Expectation (paper): %s\n", expectation);
  return 0;
}

}  // namespace mvflow::bench
