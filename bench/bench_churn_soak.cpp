// Churn soak (DESIGN.md §13): the long-horizon robustness scenario. A
// multi-rank soak workload runs under packet loss plus scheduled link
// flaps severe enough to error QPs and exercise PR-1 auto-reconnect; the
// harness then crashes the world mid-flight, restores it from a warm
// snapshot in the same process, and checks the resumed run is
// bit-identical to the uninterrupted faulted run.
//
// Four deterministic phases:
//   calibrate  faultless soak, to place the flap windows in sim time
//   reference  faulted soak, uninterrupted (the golden outcome)
//   crash      same run, snapshot at ~1/3 of its events, killed at ~2/3
//   restore    world rebuilt from the snapshot, run to completion
//
// BENCH_churn_soak.json records messages survived, reconnects, replayed
// wire traffic, the restore wall-clock latency, and whether the restored
// metrics fingerprint matches the reference exactly.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "mpi/checkpoint.hpp"
#include "util/serial.hpp"

using namespace mvflow;
using namespace mvflow::bench;

namespace {

std::uint64_t executed_events(const obs::Snapshot& m) {
  return static_cast<std::uint64_t>(m.get("engine.executed", 0.0));
}

std::uint32_t metrics_crc(const obs::Snapshot& m) {
  const std::string json = m.to_json();
  return util::serial::crc32(json.data(), json.size());
}

std::uint64_t sum_reconnects(const mpi::WorldStats& s) {
  std::uint64_t n = 0;
  for (const auto& d : s.devices) n += d.reconnects;
  return n;
}

std::uint64_t sum_replayed(const mpi::WorldStats& s) {
  std::uint64_t n = 0;
  for (const auto& d : s.devices) n += d.replayed_wire_msgs;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const int ranks = static_cast<int>(opts.get_int("ranks", 4));
  const int rounds = static_cast<int>(opts.get_int("rounds", 120));
  const std::int64_t bytes = opts.get_int("bytes", 512);
  const std::string snap_path =
      opts.get_or("snapshot", "/tmp/mvflow_churn_soak.ck");
  WallTimer total;

  mpi::WorkloadSpec spec;
  spec.name = "soak";
  spec.params["rounds"] = rounds;
  spec.params["bytes"] = bytes;

  mpi::WorldConfig base;
  base.run = exp::RunConfig{};  // no env-driven exports from bench worlds
  base.num_ranks = ranks;
  base.flow.scheme = flowctl::Scheme::user_dynamic;
  base.flow.prepost = 10;
  base.max_sim_time = sim::milliseconds(60000);
  base.device.auto_reconnect = true;
  base.device.reconnect_delay = sim::microseconds(50);

  // Phase 1 — calibrate: a faultless pass tells us how long the soak runs
  // in sim time, so the flap windows land mid-run at any --rounds.
  const mpi::ckpt::RunResult calib = mpi::ckpt::run_reference(base, spec);
  const double calib_ns = static_cast<double>(calib.elapsed.count());
  std::printf("# calibrate: %" PRIu64 " events, %.3f ms sim\n",
              executed_events(calib.metrics), calib_ns / 1e6);

  // Fault plan: background packet loss plus two link flaps long enough to
  // exhaust the transport retry budget (QP error -> auto reconnect).
  mpi::WorldConfig faulted = base;
  faulted.fabric.transport_timeout = sim::microseconds(30);
  faulted.fabric.transport_retry_limit = 3;
  faulted.fabric.fault.seed = 0xc0ffee42;
  faulted.fabric.fault.loss_prob = 0.002;
  const auto flap_at = [&](double frac, int node) {
    ib::LinkFlap flap;
    flap.node = node;
    flap.down = sim::TimePoint(sim::nanoseconds(
        static_cast<std::int64_t>(calib_ns * frac)));
    flap.up = flap.down + sim::microseconds(400);
    return flap;
  };
  faulted.fabric.fault.flaps.push_back(flap_at(0.30, 0));
  faulted.fabric.fault.flaps.push_back(flap_at(0.60, 1));

  // Phase 2 — reference: the uninterrupted faulted run is the golden
  // outcome every restored run must reproduce bit-for-bit.
  const mpi::ckpt::RunResult ref = mpi::ckpt::run_reference(faulted, spec);
  const std::uint64_t total_events = executed_events(ref.metrics);
  std::printf("# reference: %" PRIu64 " events, %" PRIu64
              " reconnects, %" PRIu64 " msgs\n",
              total_events, sum_reconnects(ref.stats),
              ref.stats.total_messages());

  // Phase 3 — crash: snapshot at ~1/3 of the run, kill -9 at ~2/3. The
  // snapshot must already be safely on disk when the world dies.
  mpi::ckpt::RestoreOptions crash_opts;
  crash_opts.checkpoint_path = snap_path;
  crash_opts.checkpoint_events = {total_events / 3};
  crash_opts.kill_at = (2 * total_events) / 3;
  const mpi::ckpt::RunResult crashed =
      mpi::ckpt::run_reference(faulted, spec, crash_opts);
  std::printf("# crash: aborted=%d at %" PRIu64 " events\n",
              crashed.aborted ? 1 : 0, executed_events(crashed.metrics));

  // Phase 4 — restore: rebuild from the snapshot, replay to the barrier,
  // byte-audit, continue to completion. The wall clock around this is the
  // restore latency a real operator would pay.
  WallTimer restore_timer;
  const mpi::ckpt::WorldSnapshot snap = mpi::ckpt::read_snapshot(snap_path);
  const mpi::ckpt::RunResult restored = mpi::ckpt::restore_run(snap);
  const double restore_s = restore_timer.seconds();

  const bool identical =
      executed_events(restored.metrics) == total_events &&
      restored.elapsed == ref.elapsed &&
      metrics_crc(restored.metrics) == metrics_crc(ref.metrics);
  const std::uint64_t snap_bytes = util::serial::read_file(snap_path).size();

  util::Table t({"phase", "events", "sim_ms", "msgs", "reconnects",
                 "replayed", "lost_pkts", "flap_dropped"});
  const auto row = [&](const char* name, const mpi::ckpt::RunResult& r) {
    t.add(name, static_cast<double>(executed_events(r.metrics)),
          static_cast<double>(r.elapsed.count()) / 1e6,
          static_cast<double>(r.stats.total_messages()),
          static_cast<double>(sum_reconnects(r.stats)),
          static_cast<double>(sum_replayed(r.stats)),
          static_cast<double>(r.stats.fabric.lost_packets),
          static_cast<double>(r.stats.fabric.flap_dropped_packets));
  };
  row("reference", ref);
  row("crash", crashed);
  row("restore", restored);
  t.print(std::cout);
  std::printf("# restore: %.3f s wall (snapshot %" PRIu64
              " bytes), bit_identical=%d\n",
              restore_s, snap_bytes, identical ? 1 : 0);

  BenchJson json("churn_soak");
  json.add_meta("ranks", ranks);
  json.add_meta("rounds", rounds);
  json.add_meta("messages_survived",
                static_cast<double>(restored.stats.total_messages()));
  json.add_meta("reconnects",
                static_cast<double>(sum_reconnects(restored.stats)));
  json.add_meta("replayed_wire_msgs",
                static_cast<double>(sum_replayed(restored.stats)));
  json.add_meta("lost_packets",
                static_cast<double>(restored.stats.fabric.lost_packets));
  json.add_meta("flap_dropped_packets",
                static_cast<double>(restored.stats.fabric.flap_dropped_packets));
  json.add_meta("snapshot_bytes", static_cast<double>(snap_bytes));
  json.add_meta("restore_latency_s", restore_s);
  json.add_meta("bit_identical", identical ? 1.0 : 0.0);
  json.add_point({{"barrier_events",
                   static_cast<double>(crash_opts.checkpoint_events[0])},
                  {"kill_events", static_cast<double>(crash_opts.kill_at)},
                  {"total_events", static_cast<double>(total_events)}});
  json.write(total.seconds());
  write_metrics("churn_soak", restored.metrics);

  return identical ? 0 : 1;
}
